// Command benchtab regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per quantitative claim of "Information Spreading
// in Dynamic Graphs" (Clementi–Silvestri–Trevisan, PODC 2012).
//
// Usage:
//
//	benchtab            # run every experiment at full scale
//	benchtab -quick     # reduced sizes (CI smoke)
//	benchtab -exp E4    # a single experiment
//	benchtab -list      # list experiment IDs and claims
//	benchtab -seed 7    # change the master seed
//	benchtab -json      # run the microbenchmark suite, write BENCH_<date>.json
//	benchtab -compare a.json b.json   # diff two BENCH records row by row
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size configurations")
	exp := flag.String("exp", "", "run a single experiment by ID (e.g. E4)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Uint64("seed", 1, "master seed (tables are deterministic per seed)")
	workers := flag.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS)")
	jsonBench := flag.Bool("json", false, "run the spreading-core microbenchmark suite and write a machine-readable perf record instead of experiment tables")
	jsonOut := flag.String("json-out", "", "output path for -json (default BENCH_<YYYY-MM-DD>.json)")
	baseline := flag.String("baseline", "", "with -json: committed BENCH_<date>.json to gate against; exits nonzero if the baseline row regressed")
	baselineRow := flag.String("baseline-row", "flood/static-torus/engine-only",
		"row compared against -baseline (must be mode-independent: same workload under -quick and full)")
	baselineSlack := flag.Float64("baseline-slack", 25, "percent slowdown tolerated by -baseline before failing")
	compare := flag.Bool("compare", false, "diff two BENCH_<date>.json records row by row (benchtab -compare a.json b.json); exits nonzero when any row of b regressed beyond -baseline-slack or allocates more than a")
	gateModeIndependent := flag.Bool("gate-mode-independent", false,
		"with -compare: fail only on regressed rows marked mode-independent in both records — the cross-mode CI gate (a -quick record against the committed full-suite baseline)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchtab: -compare wants exactly two record paths (a.json b.json)")
			os.Exit(1)
		}
		a, err := bench.ReadMicroRecord(flag.Arg(0))
		if err == nil {
			var b bench.MicroRecord
			b, err = bench.ReadMicroRecord(flag.Arg(1))
			if err == nil {
				rows := bench.Compare(a, b, *baselineSlack)
				err = bench.WriteCompare(os.Stdout, rows)
				if err == nil {
					bad := bench.Regressions(rows)
					if *gateModeIndependent {
						bad = bench.GatedRegressions(rows)
					}
					if len(bad) > 0 {
						for _, r := range bad {
							fmt.Fprintf(os.Stderr, "benchtab: regressed: %s (%.0f -> %.0f ns/op, allocs %d -> %d)\n",
								r.Name, r.A.NsPerOp, r.B.NsPerOp, r.A.AllocsPerOp, r.B.AllocsPerOp)
						}
						fmt.Fprintf(os.Stderr, "benchtab: %d row(s) regressed beyond %.0f%% slack\n",
							len(bad), *baselineSlack)
						os.Exit(1)
					}
				}
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, Workers: *workers}

	if *jsonBench {
		if *exp != "" {
			fmt.Fprintln(os.Stderr, "benchtab: -json runs the fixed microbenchmark suite and cannot be combined with -exp")
			os.Exit(1)
		}
		now := time.Now()
		path := *jsonOut
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02"))
		}
		f, err := os.Create(path)
		if err == nil {
			err = bench.WriteMicroJSON(cfg, now, f, os.Stderr)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchtab: wrote", path)
		if *baseline != "" {
			rec, err := bench.ReadMicroRecord(path)
			if err == nil {
				var base bench.MicroRecord
				base, err = bench.ReadMicroRecord(*baseline)
				if err == nil {
					err = bench.CheckRegression(rec, base, *baselineRow, *baselineSlack)
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchtab: %s within %.0f%% of %s\n",
				*baselineRow, *baselineSlack, *baseline)
		}
		return
	}

	var err error
	if *exp != "" {
		err = bench.RunOne(*exp, cfg, os.Stdout)
	} else {
		err = bench.RunAll(cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}
