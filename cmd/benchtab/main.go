// Command benchtab regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per quantitative claim of "Information Spreading
// in Dynamic Graphs" (Clementi–Silvestri–Trevisan, PODC 2012).
//
// Usage:
//
//	benchtab            # run every experiment at full scale
//	benchtab -quick     # reduced sizes (CI smoke)
//	benchtab -exp E4    # a single experiment
//	benchtab -list      # list experiment IDs and claims
//	benchtab -seed 7    # change the master seed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size configurations")
	exp := flag.String("exp", "", "run a single experiment by ID (e.g. E4)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Uint64("seed", 1, "master seed (tables are deterministic per seed)")
	workers := flag.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	var err error
	if *exp != "" {
		err = bench.RunOne(*exp, cfg, os.Stdout)
	} else {
		err = bench.RunAll(cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}
