// Command mixing computes stationary distributions and mixing times for the
// Markov chains underlying the paper's models, and prints TV-decay curves.
//
// Usage examples:
//
//	mixing -chain twostate -p 0.02 -q 0.08
//	mixing -chain waypoint -m 6
//	mixing -chain walk -m 12 -stay 0.5
//	mixing -chain walk -m 12 -k 3      # walk on the k-augmented torus
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/markov"
	"repro/internal/mobility"
)

func main() {
	chain := flag.String("chain", "twostate", "chain: twostate | waypoint | walk")
	p := flag.Float64("p", 0.02, "birth rate (twostate)")
	q := flag.Float64("q", 0.08, "death rate (twostate)")
	m := flag.Int("m", 8, "grid side (waypoint, walk)")
	k := flag.Int("k", 1, "torus augmentation distance (walk)")
	stay := flag.Float64("stay", 0.5, "laziness (walk)")
	eps := flag.Float64("eps", markov.DefaultMixingEps, "TV threshold")
	curve := flag.Int("curve", 0, "if > 0, print the TV decay for this many steps")
	flag.Parse()

	switch *chain {
	case "twostate":
		ts := markov.TwoState{P: *p, Q: *q}
		if err := ts.Validate(); err != nil {
			fatal(err)
		}
		fmt.Printf("stationary on-probability alpha = %.6f\n", ts.StationaryOn())
		fmt.Printf("second eigenvalue = %.6f\n", ts.SecondEigenvalue())
		fmt.Printf("mixing time (eps=%g) = %d   [Θ(1/(p+q)) = %.1f]\n",
			*eps, ts.MixingTime(*eps), 1/(*p+*q))
		for t := 1; t <= *curve; t++ {
			fmt.Printf("t=%d TV=%.6f\n", t, ts.TVAt(t))
		}

	case "waypoint":
		pos, tmix, err := mobility.DiscreteWaypointMixing(*m, *eps, 1<<22)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("states = %d (m⁴), mixing time (eps=%g) = %d   [Θ(m) per unit speed]\n",
			(*m)*(*m)*(*m)*(*m), *eps, tmix)
		fmt.Printf("positional distribution (center bias): center=%.5f corner=%.5f uniform=%.5f\n",
			pos[(*m/2)*(*m)+*m/2], pos[0], 1/float64((*m)*(*m)))
		if *curve > 0 {
			chn, err := mobility.DiscreteWaypoint(*m)
			if err != nil {
				fatal(err)
			}
			pi, err := chn.StationaryPower(1e-10, 200000)
			if err != nil {
				fatal(err)
			}
			for t, tv := range chn.TVFromStart(0, pi, *curve) {
				fmt.Printf("t=%d TV=%.6f\n", t+1, tv)
			}
		}

	case "walk":
		var g *graph.Graph
		if *k > 1 {
			g = graph.KAugmentedTorus(*m, *m, *k)
		} else {
			g = graph.Grid(*m, *m)
		}
		ch := markov.LazyRandomWalkChain(g, *stay)
		pi := markov.WalkStationary(g)
		tmix, err := ch.MixingTimeFromStart(0, pi, *eps, 1<<24)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("points = %d, avg degree = %.1f, mixing time (eps=%g) = %d\n",
			g.N(), g.AverageDegree(), *eps, tmix)
		for t, tv := range ch.TVFromStart(0, pi, *curve) {
			fmt.Printf("t=%d TV=%.6f\n", t+1, tv)
		}

	default:
		fatal(fmt.Errorf("unknown chain %q", *chain))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixing:", err)
	os.Exit(1)
}
