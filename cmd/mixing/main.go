// Command mixing analyzes the Markov chain underlying a registered
// dynamic-graph model: exact stationary distribution, single-start mixing
// time, and TV-decay curves. Any model spec whose built model exposes its
// chain (model.ChainAnalyzer) works — no per-model cases here.
//
// Usage examples:
//
//	mixing -model edgemeg:n=2,p=0.02,q=0.08   # the per-edge birth/death chain
//	mixing -model dwaypoint:m=6               # discretized waypoint, m⁴ states
//	mixing -model walk:m=12,stay=0.5
//	mixing -model walk:m=12,rho=3 -curve 50
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/markov"
	"repro/internal/model"
	_ "repro/internal/model/all"
)

func main() {
	modelSpec := flag.String("model", "edgemeg:n=2,p=0.02,q=0.08", "model spec: name[:key=value,...] (see -models)")
	listModels := flag.Bool("models", false, "list registered models and parameters, then exit")
	seed := flag.Uint64("seed", 1, "seed for model construction")
	eps := flag.Float64("eps", markov.DefaultMixingEps, "TV threshold")
	start := flag.Int("start", 0, "start state for the mixing-time bound")
	curve := flag.Int("curve", 0, "if > 0, print the TV decay for this many steps")
	flag.Parse()

	if *listModels {
		fmt.Print(model.Usage())
		return
	}

	spec, err := model.Parse(*modelSpec)
	if err != nil {
		fatal(err)
	}
	d, err := model.Build(spec, *seed)
	if err != nil {
		fatal(err)
	}
	ca, ok := d.(model.ChainAnalyzer)
	if !ok {
		fatal(fmt.Errorf("model %q does not expose its chain (model.ChainAnalyzer); chain-free models have no mixing structure to analyze", spec.Name))
	}
	chain, pi := ca.MixingChain()
	if *start < 0 || *start >= chain.N() {
		fatal(fmt.Errorf("-start %d out of range: the chain has states 0..%d", *start, chain.N()-1))
	}
	if *curve < 0 {
		fatal(fmt.Errorf("-curve must be >= 0, got %d", *curve))
	}

	piMin, piMax := pi[0], pi[0]
	for _, p := range pi {
		if p < piMin {
			piMin = p
		}
		if p > piMax {
			piMax = p
		}
	}
	fmt.Printf("model %s: chain has %d states (%d transitions)\n", spec, chain.N(), chain.NNZ())
	fmt.Printf("stationary law: min=%.6g max=%.6g uniform=%.6g (max/min = %.3g)\n",
		piMin, piMax, 1/float64(chain.N()), piMax/piMin)

	tmix, err := chain.MixingTimeFromStart(*start, pi, *eps, 1<<24)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mixing time from state %d (eps=%g) = %d\n", *start, *eps, tmix)

	for t, tv := range chain.TVFromStart(*start, pi, *curve) {
		fmt.Printf("t=%d TV=%.6f\n", t+1, tv)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixing:", err)
	os.Exit(1)
}
