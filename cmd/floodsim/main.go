// Command floodsim runs a single flooding simulation over a chosen dynamic
// graph model and prints the timeline, phase split, and flooding time.
//
// Models are selected by spec — "name:key=value,..." — against the model
// registry; run with -models for the full list. Examples:
//
//	floodsim -model edgemeg:n=512,p=0.004,q=0.096
//	floodsim -model waypoint:n=200,L=25,r=1.5,vmin=1
//	floodsim -model walk:n=100,m=16,r=1,stay=0.2
//	floodsim -model paths:n=50,m=10,family=l,hop=1
//	floodsim -model edgemeg:n=256,p=0.01,q=0.1 -push 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/rng"
)

func main() {
	modelSpec := flag.String("model", "edgemeg", "model spec: name[:key=value,...] (see -models)")
	listModels := flag.Bool("models", false, "list registered models and parameters, then exit")
	seed := flag.Uint64("seed", 1, "random seed")
	source := flag.Int("source", 0, "flooding source node")
	maxSteps := flag.Int("max-steps", 1<<20, "step cap")
	push := flag.Int("push", 0, "if > 0, run the randomized k-push protocol instead of flooding")
	timeline := flag.Bool("timeline", false, "print the full |I_t| series")
	flag.Parse()

	if *listModels {
		fmt.Print(model.Usage())
		return
	}

	spec, err := model.Parse(*modelSpec)
	if err != nil {
		fatal(err)
	}
	d, err := model.Build(spec, *seed)
	if err != nil {
		fatal(err)
	}
	n := d.N()

	opts := flood.Opts{MaxSteps: *maxSteps, KeepTimeline: true}
	var res flood.Result
	if *push > 0 {
		res = flood.RandomizedPush(d, *source, *push, rng.New(rng.Seed(*seed, 0xF00D)), opts)
	} else {
		res = flood.Run(d, *source, opts)
	}

	if !res.Completed {
		fmt.Printf("flooding did NOT complete within %d steps (informed %d/%d)\n",
			*maxSteps, res.Informed, n)
		os.Exit(2)
	}
	fmt.Printf("flooding time: %d steps\n", res.Time)
	if ps, ok := flood.Phases(res); ok {
		fmt.Printf("spreading phase (to n/2): %d steps\n", ps.Spreading)
		fmt.Printf("saturation phase (to n):  %d steps\n", ps.Saturation)
	}
	fmt.Printf("doubling times: %v\n", flood.Doublings(res.Timeline))
	if *timeline {
		for t, size := range res.Timeline {
			fmt.Printf("t=%d |I|=%d\n", t, size)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floodsim:", err)
	os.Exit(1)
}
