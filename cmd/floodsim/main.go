// Command floodsim runs a single flooding simulation over a chosen dynamic
// graph model and prints the timeline, phase split, and flooding time.
//
// Usage examples:
//
//	floodsim -model edgemeg -n 512 -p 0.004 -q 0.096
//	floodsim -model waypoint -n 200 -L 25 -r 1.5 -v 1
//	floodsim -model walk -n 100 -m 16 -r 1 -stay 0.2
//	floodsim -model lpaths -n 50 -m 10 -hop 1
//	floodsim -model edgemeg -n 256 -p 0.01 -q 0.1 -push 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/flood"
	"repro/internal/graph"
	"repro/internal/mobility"
	"repro/internal/randompath"
	"repro/internal/rng"
)

func main() {
	model := flag.String("model", "edgemeg", "model: edgemeg | waypoint | walk | lpaths")
	n := flag.Int("n", 256, "number of nodes")
	seed := flag.Uint64("seed", 1, "random seed")
	source := flag.Int("source", 0, "flooding source node")
	maxSteps := flag.Int("max-steps", 1<<20, "step cap")
	push := flag.Int("push", 0, "if > 0, run the randomized k-push protocol instead of flooding")
	timeline := flag.Bool("timeline", false, "print the full |I_t| series")

	// Edge-MEG parameters.
	p := flag.Float64("p", 0.004, "edge birth rate (edgemeg)")
	q := flag.Float64("q", 0.096, "edge death rate (edgemeg)")

	// Geometric parameters.
	l := flag.Float64("L", 25, "square side (waypoint)")
	r := flag.Float64("r", 1.5, "transmission radius (waypoint, walk)")
	v := flag.Float64("v", 1, "node speed (waypoint)")

	// Grid parameters.
	m := flag.Int("m", 16, "grid side (walk, lpaths)")
	stay := flag.Float64("stay", 0.2, "laziness of the grid walk")
	hop := flag.Int("hop", 1, "hop-radius connection (lpaths)")
	flag.Parse()

	d, err := build(*model, *n, *seed, *p, *q, *l, *r, *v, *m, *stay, *hop)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(1)
	}

	opts := flood.Opts{MaxSteps: *maxSteps, KeepTimeline: true}
	var res flood.Result
	if *push > 0 {
		res = flood.RandomizedPush(d, *source, *push, rng.New(rng.Seed(*seed, 0xF00D)), opts)
	} else {
		res = flood.Run(d, *source, opts)
	}

	if !res.Completed {
		fmt.Printf("flooding did NOT complete within %d steps (informed %d/%d)\n",
			*maxSteps, res.Timeline[len(res.Timeline)-1], *n)
		os.Exit(2)
	}
	fmt.Printf("flooding time: %d steps\n", res.Time)
	if ps, ok := flood.Phases(res); ok {
		fmt.Printf("spreading phase (to n/2): %d steps\n", ps.Spreading)
		fmt.Printf("saturation phase (to n):  %d steps\n", ps.Saturation)
	}
	fmt.Printf("doubling times: %v\n", flood.Doublings(res.Timeline))
	if *timeline {
		for t, size := range res.Timeline {
			fmt.Printf("t=%d |I|=%d\n", t, size)
		}
	}
}

// build constructs the requested dynamic graph.
func build(model string, n int, seed uint64, p, q, l, r, v float64, m int, stay float64, hop int) (dyngraph.Dynamic, error) {
	rg := rng.New(seed)
	switch model {
	case "edgemeg":
		params := edgemeg.Params{N: n, P: p, Q: q}
		if err := params.Validate(); err != nil {
			return nil, err
		}
		return edgemeg.NewSparse(params, edgemeg.InitStationary, rg), nil
	case "waypoint":
		params := mobility.WaypointParams{N: n, L: l, R: r, VMin: v, VMax: v}
		if err := params.Validate(); err != nil {
			return nil, err
		}
		return mobility.NewWaypoint(params, mobility.InitSteadyState, rg), nil
	case "walk":
		w, err := mobility.NewWalk(mobility.WalkParams{N: n, M: m, R: r, Stay: stay}, rg)
		if err != nil {
			return nil, err
		}
		return w, nil
	case "lpaths":
		rp, err := randompath.New(graph.Grid(m, m), randompath.GridLPaths(m))
		if err != nil {
			return nil, err
		}
		return rp.NewSimHopRadius(n, hop, rg)
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}
