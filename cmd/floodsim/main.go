// Command floodsim runs a single spreading simulation — a chosen protocol
// over a chosen dynamic graph model — and prints the timeline, phase
// split, and completion time.
//
// Models and protocols are both selected by spec — "name:key=value,..." —
// against their registries; run with -models or -protocols for the full
// lists. Examples:
//
//	floodsim -model edgemeg:n=512,p=0.004,q=0.096
//	floodsim -model waypoint:n=200,L=25,r=1.5,vmin=1 -protocol push:k=2
//	floodsim -model walk:n=100,m=16,r=1,stay=0.2 -protocol pull
//	floodsim -model edgemeg:n=128,p=0.02,q=0.2 -protocol pushpull:k=1
//	floodsim -model paths:n=50,m=10,family=l,hop=1 -protocol parsimonious:active=16
//
// (The v2-era -push k flag, deprecated in v3 as an alias for
// -protocol push:k=K, has been removed.)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func main() {
	modelSpec := flag.String("model", "edgemeg", "model spec: name[:key=value,...] (see -models)")
	protoSpec := flag.String("protocol", "flood", "protocol spec: name[:key=value,...] (see -protocols)")
	listModels := flag.Bool("models", false, "list registered models and parameters, then exit")
	listProtocols := flag.Bool("protocols", false, "list registered protocols and parameters, then exit")
	seed := flag.Uint64("seed", 1, "random seed")
	source := flag.Int("source", 0, "initially informed source node")
	maxSteps := flag.Int("max-steps", 1<<20, "step cap")
	timeline := flag.Bool("timeline", false, "print the full |I_t| series")
	flag.Parse()

	if *listModels {
		fmt.Print(model.Usage())
		return
	}
	if *listProtocols {
		fmt.Print(protocol.Usage())
		return
	}

	mspec, err := model.Parse(*modelSpec)
	if err != nil {
		fatal(err)
	}
	d, err := model.Build(mspec, *seed)
	if err != nil {
		fatal(err)
	}
	pspec, err := protocol.Parse(*protoSpec)
	if err != nil {
		fatal(err)
	}
	p, err := protocol.Build(pspec, rng.Seed(*seed, 0xF00D))
	if err != nil {
		fatal(err)
	}
	n := d.N()

	res := p.Run(d, *source, flood.Opts{MaxSteps: *maxSteps, KeepTimeline: true})

	if !res.Completed {
		fmt.Printf("%s did NOT complete within %d steps (informed %d/%d)\n",
			pspec.Name, *maxSteps, res.Informed, n)
		os.Exit(2)
	}
	fmt.Printf("%s completion time: %d steps\n", pspec.Name, res.Time)
	if ps, ok := flood.Phases(res); ok {
		fmt.Printf("spreading phase (to n/2): %d steps\n", ps.Spreading)
		fmt.Printf("saturation phase (to n):  %d steps\n", ps.Saturation)
	}
	fmt.Printf("doubling times: %v\n", flood.Doublings(res.Timeline))
	if *timeline {
		for t, size := range res.Timeline {
			fmt.Printf("t=%d |I|=%d\n", t, size)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floodsim:", err)
	os.Exit(1)
}
