// Command sweepd is the sweep-campaign server: the farm coordinator that
// turns the single-box cmd/sweep runner into a shared service. It accepts
// whole sweep grids over an HTTP/JSON API, leases cells to cmd/sweep
// workers, streams completed records into per-campaign fsync'd JSONL
// checkpoints (the exact format cmd/sweep writes locally, so any campaign
// file is readable by `sweep -report-only`), and serves live progress and
// report endpoints. See docs/SWEEPD.md for the protocol.
//
// Usage:
//
//	sweepd -addr :8377 -dir /var/lib/sweepd
//	sweepd -addr :8377 -dir /var/lib/sweepd -telemetry /var/lib/sweepd/tel
//
// -telemetry enables the internal/telemetry collector: farm-wide gauges
// (campaigns, cells done/leased/pending, heap/GC stats) sampled once per
// second into <dir>/sweepd.ftdc.jsonl, and live snapshots on GET /metrics
// and GET /campaigns/{id}/metrics. See docs/TELEMETRY.md.
//
// Submit, watch, and fetch:
//
//	sweep -server http://host:8377 -submit -file grid.json
//	curl http://host:8377/campaigns/c0
//	curl "http://host:8377/campaigns/c0/report?format=csv"
//
// Run workers (any number of machines):
//
//	sweep -server http://host:8377
//
// Worker death needs no operator action: a cell whose lease expires is
// re-leased, and a late completion from a presumed-dead worker is a
// harmless duplicate (later-duplicate-wins, the checkpoint's existing
// contract). With -dir set the server itself is crash-safe: a restart
// reloads every campaign's sweep definition and checkpoint and re-derives
// the pending set; only in-flight cells rerun.
//
// SIGINT/SIGTERM shut down gracefully: in-flight HTTP requests finish
// (completions hitting the fsync'd checkpoint are never dropped
// mid-write), checkpoint files are closed, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/campaign"
	_ "repro/internal/model/all"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	dir := flag.String("dir", "", "state directory: per-campaign sweep definitions + JSONL checkpoints; empty = in-memory only (campaigns die with the process)")
	leaseTTL := flag.Duration("lease-ttl", campaign.DefaultLeaseTTL, "floor lease duration; leases stretch automatically with observed cell wall time")
	telemetryDir := flag.String("telemetry", "", "directory for the server's FTDC-style metrics capture (sweepd.ftdc.jsonl); also feeds GET /metrics")
	flag.Parse()

	logger := log.New(os.Stderr, "sweepd: ", log.LstdFlags)
	if *dir == "" {
		logger.Printf("no -dir: running in-memory; campaigns will not survive a restart")
	}
	var col *telemetry.Collector
	var capture *telemetry.Capture
	if *telemetryDir != "" {
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			logger.Fatal(err)
		}
		var err error
		capture, err = telemetry.OpenCapture(filepath.Join(*telemetryDir, "sweepd"+telemetry.Ext), telemetry.CaptureOptions{})
		if err != nil {
			logger.Fatal(err)
		}
		col = telemetry.New(telemetry.Options{})
	}
	mgr, err := campaign.NewManager(campaign.Options{Dir: *dir, LeaseTTL: *leaseTTL, Telemetry: col})
	if err != nil {
		logger.Fatal(err)
	}
	if col != nil {
		// Start after NewManager so the very first sample already carries
		// the farm gauges the manager registers.
		col.Start(capture)
		logger.Printf("telemetry capture at %s", capture.Path())
	}
	for _, c := range mgr.Campaigns() {
		p, _ := mgr.Progress(c.ID())
		logger.Printf("reloaded campaign %s: %d/%d cells done", c.ID(), p.Done, p.Cells)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: campaign.NewServer(mgr, logger),
	}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (lease ttl >= %s, state dir %q)", *addr, *leaseTTL, *dir)
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (Shutdown is below).
		logger.Fatal(err)
	case <-ctx.Done():
	}
	logger.Printf("signal received; shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if err := mgr.Close(); err != nil {
		logger.Printf("closing checkpoints: %v", err)
	}
	if col != nil {
		if err := col.Stop(); err != nil {
			logger.Printf("telemetry: %v", err)
		}
		if err := capture.Close(); err != nil {
			logger.Printf("telemetry: %v", err)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}
	fmt.Fprintln(os.Stderr, "sweepd: bye")
}
