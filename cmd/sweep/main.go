// Command sweep runs a declarative parameter-sweep campaign — a grid of
// model specs × protocol specs, each cell a fixed-seed trial set — with
// JSONL checkpointing, crash-safe resume, and CSV/markdown reporting. It
// is the production front end of internal/study: the paper's tables are
// sweeps of flooding time over (n, p, q) and protocol families, and this
// binary runs such grids from a single JSON file with no Go code.
//
// A sweep file declares the grid; specs may be CLI strings or spec
// objects:
//
//	{
//	  "models":    ["edgemeg:n=256,p=0.00625,q=0.19375", "edgemeg:n=512,p=0.003125,q=0.196875"],
//	  "protocols": ["flood", "push:k=3", "pushpull:k=1"],
//	  "trials":    20,
//	  "seed":      1,
//	  "max_steps": 65536
//	}
//
// Usage (single box):
//
//	sweep -file grid.json -checkpoint grid.ckpt.jsonl -csv grid.csv
//	sweep -models "edgemeg:n=128,p=0.02,q=0.2" -protocols "flood;pull" -trials 10
//	sweep -file grid.json -checkpoint grid.ckpt.jsonl -report-only
//
// Usage (farm, against a cmd/sweepd server):
//
//	sweep -server http://host:8377 -submit -file grid.json   # submit, print campaign id
//	sweep -server http://host:8377                           # run as a leased worker
//	sweep -server http://host:8377 -drain                    # worker that exits when the farm is done
//
// Telemetry (any mode):
//
//	sweep -file grid.json -telemetry ./tel          # capture metrics to ./tel/sweep.ftdc.jsonl
//	sweep -server http://host:8377 -telemetry ./tel # worker capture: ./tel/worker-<name>.ftdc.jsonl
//	sweep -telemetry-report ./tel                   # summarize every capture in the directory
//
// -telemetry enables the internal/telemetry collector: one delta-encoded
// sample per second (plus one per completed cell) of throughput counters,
// scratch footprint, and runtime GC/heap stats, written to a size-capped
// ring of *.ftdc.jsonl files that tolerate kill -9 exactly like the
// checkpoint. -telemetry-report decodes a capture file (or every capture
// under a directory) and prints per-metric first/last/min/max/mean and
// per-second rates. See docs/TELEMETRY.md.
//
// Every completed cell is appended to the checkpoint file before the next
// cell starts. Rerunning the same command resumes: cells whose
// (model, protocol, trials, seed) key is already checkpointed are skipped,
// so a killed sweep loses at most the cell in flight, and the final
// reports are byte-identical to an uninterrupted run (cell results depend
// only on the sweep definition, never on workers or interruption). -fresh
// discards an existing checkpoint instead.
//
// SIGINT/SIGTERM are handled gracefully in every mode: the in-flight cell
// is finished and checkpointed (workers post it to the server; a worker
// holding an unstarted lease releases it instead), then the process exits
// 0. A second signal kills immediately — losing, as always, only the cell
// in flight.
//
// The markdown report prints to stdout unless -md redirects it; -csv
// writes the machine-readable form; -report-only aggregates an existing
// checkpoint without running anything.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/spec"
	"repro/internal/study"
	"repro/internal/telemetry"
)

func main() {
	file := flag.String("file", "", "sweep definition file (JSON; see package doc)")
	models := flag.String("models", "", "semicolon-separated model specs (overrides the file's models)")
	protocols := flag.String("protocols", "", "semicolon-separated protocol specs (overrides the file's protocols)")
	trials := flag.Int("trials", 0, "per-cell trial count (overrides the file)")
	seed := flag.Uint64("seed", 0, "master seed (overrides the file)")
	source := flag.Int("source", 0, "initially informed source node (overrides the file)")
	maxSteps := flag.Int("max-steps", 0, "per-run step cap (overrides the file)")
	workers := flag.Int("workers", 0, "trial parallelism, 0 = GOMAXPROCS (overrides the file; never affects results)")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file: completed cells stream here and are skipped on rerun")
	fresh := flag.Bool("fresh", false, "discard an existing checkpoint instead of resuming from it")
	reportOnly := flag.Bool("report-only", false, "skip execution; aggregate the checkpoint into reports")
	csvPath := flag.String("csv", "", "write the CSV report here ('-' for stdout)")
	mdPath := flag.String("md", "-", "write the markdown report here ('-' for stdout, '' to suppress)")
	listModels := flag.Bool("list-models", false, "list registered models and parameters, then exit")
	listProtocols := flag.Bool("list-protocols", false, "list registered protocols and parameters, then exit")
	server := flag.String("server", "", "sweepd base URL: submit to (-submit) or work for a campaign server instead of running locally")
	submit := flag.Bool("submit", false, "with -server: submit the assembled sweep as a campaign and print its id")
	workerName := flag.String("worker", "", "with -server: worker name reported to the server (default host:pid)")
	poll := flag.Duration("poll", 2*time.Second, "with -server: idle re-poll interval")
	drain := flag.Bool("drain", false, "with -server: exit 0 once the server reports every campaign complete")
	hold := flag.Duration("hold", 0, "with -server: fault-injection pause between leasing a cell and running it (testing lease expiry)")
	telemetryDir := flag.String("telemetry", "", "directory for FTDC-style metrics captures (*.ftdc.jsonl): one sample per second plus one per completed cell")
	telemetryReport := flag.String("telemetry-report", "", "capture file or directory: print per-metric summaries and exit")
	flag.Parse()

	if *listModels {
		fmt.Print(model.Usage())
		return
	}
	if *listProtocols {
		fmt.Print(protocol.Usage())
		return
	}
	if *telemetryReport != "" {
		if err := reportTelemetry(*telemetryReport); err != nil {
			fatal(err)
		}
		return
	}

	if *server != "" {
		farm(*server, *submit, *file, *models, *protocols, *trials, *seed, *source, *maxSteps,
			*workerName, *workers, *poll, *drain, *hold, *telemetryDir)
		return
	}

	var records []study.CellRecord
	if *reportOnly {
		if *checkpoint == "" {
			fatal(fmt.Errorf("-report-only needs -checkpoint"))
		}
		f, err := os.Open(*checkpoint)
		if err != nil {
			fatal(err)
		}
		all, err := study.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		// Collapse superseded duplicates (a rerun appends a fresh record
		// for an existing key; the later one wins) so the report carries
		// one row per cell, exactly as a resumed run would produce.
		for _, rec := range study.Index(all) {
			records = append(records, rec)
		}
	} else {
		records = run(*file, *models, *protocols, *trials, *seed, *source, *maxSteps, *workers, *checkpoint, *fresh, *telemetryDir)
	}

	rows := study.Report(records)
	if err := writeReport(*mdPath, rows, study.WriteMarkdown); err != nil {
		fatal(err)
	}
	if err := writeReport(*csvPath, rows, study.WriteCSV); err != nil {
		fatal(err)
	}
}

// assembleSweep builds the sweep from the file and flag overrides. A flag
// overrides the file exactly when the user passed it — tracked via
// flag.Visit, so legal zero values (-seed 0, -max-steps 0) are not
// mistaken for "unset".
func assembleSweep(file, models, protocols string, trials int, seed uint64, source, maxSteps, workers int) study.Sweep {
	var sw study.Sweep
	if file != "" {
		var err error
		sw, err = study.ParseSweepFile(file)
		if err != nil {
			fatal(err)
		}
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["models"] {
		sw.Models = parseSpecs("models", models)
	}
	if set["protocols"] {
		sw.Protocols = parseSpecs("protocols", protocols)
	}
	if set["trials"] {
		sw.Trials = trials
	}
	if set["seed"] {
		sw.Seed = seed
	}
	if set["source"] {
		sw.Source = source
	}
	if set["max-steps"] {
		sw.MaxSteps = maxSteps
	}
	if set["workers"] {
		sw.Workers = workers
	}
	if err := sw.Validate(); err != nil {
		fatal(err)
	}
	return sw
}

// stopOnSignal arms graceful shutdown: the first SIGINT/SIGTERM closes
// the returned channel (finish the in-flight cell, then exit cleanly); a
// second signal exits immediately.
func stopOnSignal() <-chan struct{} {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "sweep: signal received; finishing the in-flight cell (interrupt again to abort)")
		close(stop)
		<-sigc
		fmt.Fprintln(os.Stderr, "sweep: second signal; aborting now")
		os.Exit(1)
	}()
	return stop
}

// run assembles the sweep from the file and flag overrides, wires the
// checkpoint and telemetry, and executes the missing cells.
func run(file, models, protocols string, trials int, seed uint64, source, maxSteps, workers int, checkpoint string, fresh bool, telemetryDir string) []study.CellRecord {
	sw := assembleSweep(file, models, protocols, trials, seed, source, maxSteps, workers)

	col, flushTelemetry := startTelemetry(telemetryDir, "sweep")
	defer flushTelemetry()

	done := map[study.Key]study.CellRecord{}
	var sink func(study.CellRecord) error
	if checkpoint != "" {
		if fresh {
			if err := os.Remove(checkpoint); err != nil && !os.IsNotExist(err) {
				fatal(err)
			}
		}
		// OpenCheckpoint loads the completed cells and truncates a
		// kill-severed partial final line, so appends start on a fresh
		// line rather than gluing onto the fragment.
		f, done2, err := study.OpenCheckpoint(checkpoint)
		if err != nil {
			fatal(err)
		}
		done = done2
		defer f.Close()
		sink = func(rec study.CellRecord) error {
			if err := study.WriteCheckpoint(f, rec); err != nil {
				return err
			}
			// A checkpoint's whole point is surviving a kill: push each
			// cell to disk before its successor starts.
			return f.Sync()
		}
	}

	keys := sw.Keys()
	resumed := 0
	for _, key := range keys {
		if _, ok := done[key]; ok {
			resumed++
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells (%d models × %d protocols), %d trials each; resumed %d from checkpoint\n",
		len(keys), len(sw.Models), len(sw.Protocols), sw.Trials, resumed)

	// The one-line done/total progress log: long sweeps used to be silent
	// until the end; now every cell announces itself as it starts.
	completed := 0
	progress := func(key study.Key, index, total int, wasResumed bool) {
		completed++
		if wasResumed {
			return // already counted in the resumed summary above
		}
		fmt.Fprintf(os.Stderr, "sweep: [%d/%d] %s\n", completed, total, key)
	}

	start := time.Now()
	records, err := study.RunSweepOpts(sw, study.SweepOpts{
		Done:      done,
		Sink:      sink,
		Progress:  progress,
		Stop:      stopOnSignal(),
		Telemetry: col,
	})
	if err == study.ErrStopped {
		// Graceful interruption: the checkpoint holds every finished cell
		// (fsync'd per cell), so the same command resumes where this run
		// stopped. Partial reports would be misleading; skip them.
		flushTelemetry() // os.Exit skips the defer; capture the final sample
		fmt.Fprintf(os.Stderr, "sweep: interrupted after %d/%d cells; checkpoint intact — rerun the same command to resume\n",
			len(records), len(keys))
		os.Exit(0)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells done (%d run, %d resumed) in %.1fs\n",
		len(records), len(records)-resumed, resumed, time.Since(start).Seconds())
	return records
}

// farm is the -server entry point: submit a campaign, or loop as a leased
// worker until drained, signalled, or failed.
func farm(base string, submit bool, file, models, protocols string, trials int, seed uint64, source, maxSteps int,
	workerName string, workers int, poll time.Duration, drain bool, hold time.Duration, telemetryDir string) {
	cl := &campaign.Client{Base: base}
	if submit {
		col, flushTelemetry := startTelemetry(telemetryDir, "submit")
		defer flushTelemetry()
		_ = col // submission registers no extra sources; the capture still records runtime stats
		sw := assembleSweep(file, models, protocols, trials, seed, source, maxSteps, workers)
		id, cells, err := cl.Submit(context.Background(), sw)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: submitted campaign %s (%d cells) to %s\n", id, cells, base)
		fmt.Println(id)
		return
	}

	if workerName == "" {
		host, _ := os.Hostname()
		workerName = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	col, flushTelemetry := startTelemetry(telemetryDir, "worker-"+sanitizeName(workerName))
	defer flushTelemetry()
	// Worker graceful shutdown: first signal cancels the context — the
	// in-flight cell finishes and its record is posted, or an unstarted
	// lease is released (see campaign.Work); second signal aborts.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	logger := log.New(os.Stderr, "sweep: ", log.LstdFlags)
	completed, err := campaign.Work(ctx, cl, campaign.WorkerOpts{
		Name:      workerName,
		Workers:   workers,
		Poll:      poll,
		Drain:     drain,
		Hold:      hold,
		Log:       logger,
		Telemetry: col,
	})
	if err != nil {
		flushTelemetry() // fatal os.Exits past the defer
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: worker %s exiting after %d cells\n", workerName, completed)
}

// startTelemetry opens <dir>/<name>.ftdc.jsonl and starts a periodic
// collector sampling into it. With dir empty it returns a nil collector
// (every consumer treats nil as "telemetry off") and a no-op flush. The
// returned flush is idempotent: it stops the sampler, writes the final
// sample, and closes the capture.
func startTelemetry(dir, name string) (*telemetry.Collector, func()) {
	if dir == "" {
		return nil, func() {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	cw, err := telemetry.OpenCapture(filepath.Join(dir, name+telemetry.Ext), telemetry.CaptureOptions{})
	if err != nil {
		fatal(err)
	}
	col := telemetry.New(telemetry.Options{})
	col.Start(cw)
	var once sync.Once
	return col, func() {
		once.Do(func() {
			if err := col.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: telemetry:", err)
			}
			if err := cw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: telemetry:", err)
			}
		})
	}
}

// sanitizeName maps a worker name (default host:pid) to a safe capture
// filename fragment.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			return r
		}
		return '-'
	}, name)
}

// reportTelemetry decodes a capture file — or every *.ftdc.jsonl under a
// directory — and prints per-metric summaries.
func reportTelemetry(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	paths := []string{path}
	if info.IsDir() {
		paths, err = telemetry.CaptureFiles(path)
		if err != nil {
			return err
		}
		if len(paths) == 0 {
			return fmt.Errorf("no *%s captures under %s", telemetry.Ext, path)
		}
	}
	for i, p := range paths {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s:\n", p)
		samples, err := telemetry.ReadCaptureFile(p)
		if err != nil {
			return err
		}
		if err := telemetry.WriteSummary(os.Stdout, telemetry.Summarize(samples)); err != nil {
			return err
		}
	}
	return nil
}

func parseSpecs(field, text string) []spec.Spec {
	var specs []spec.Spec
	for _, part := range strings.Split(text, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		s, err := spec.Parse(part)
		if err != nil {
			fatal(fmt.Errorf("-%s: %w", field, err))
		}
		specs = append(specs, s)
	}
	return specs
}

// writeReport renders rows to path with the given writer: "-" is stdout,
// "" suppresses the report.
func writeReport(path string, rows []study.Row, write func(w io.Writer, rows []study.Row) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return write(os.Stdout, rows)
	default:
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f, rows); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
