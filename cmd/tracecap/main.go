// Command tracecap records a dynamic-graph model into a binary trace file,
// and analyzes or replays recorded traces. Traces decouple expensive model
// simulation from repeated analysis and make runs shareable.
//
// Usage:
//
//	tracecap -record trace.bin -model edgemeg -n 200 -p 0.01 -q 0.09 -steps 500
//	tracecap -analyze trace.bin          # density, interval connectivity
//	tracecap -flood trace.bin -source 0  # replay flooding over the trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/flood"
	"repro/internal/mobility"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	record := flag.String("record", "", "record a trace to this file")
	analyze := flag.String("analyze", "", "analyze a recorded trace file")
	floodFile := flag.String("flood", "", "replay flooding over a recorded trace file")

	model := flag.String("model", "edgemeg", "model to record: edgemeg | waypoint")
	n := flag.Int("n", 200, "nodes")
	steps := flag.Int("steps", 500, "snapshots to record")
	seed := flag.Uint64("seed", 1, "seed")
	p := flag.Float64("p", 0.01, "edge birth rate (edgemeg)")
	q := flag.Float64("q", 0.09, "edge death rate (edgemeg)")
	l := flag.Float64("L", 25, "square side (waypoint)")
	r := flag.Float64("r", 1.5, "radius (waypoint)")
	v := flag.Float64("v", 1, "speed (waypoint)")
	source := flag.Int("source", 0, "flooding source")
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(*record, *model, *n, *steps, *seed, *p, *q, *l, *r, *v); err != nil {
			fatal(err)
		}
	case *analyze != "":
		if err := doAnalyze(*analyze); err != nil {
			fatal(err)
		}
	case *floodFile != "":
		if err := doFlood(*floodFile, *source); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecap:", err)
	os.Exit(1)
}

func doRecord(path, model string, n, steps int, seed uint64, p, q, l, r, v float64) error {
	var d dyngraph.Dynamic
	switch model {
	case "edgemeg":
		params := edgemeg.Params{N: n, P: p, Q: q}
		if err := params.Validate(); err != nil {
			return err
		}
		d = edgemeg.NewSparse(params, edgemeg.InitStationary, rng.New(seed))
	case "waypoint":
		params := mobility.WaypointParams{N: n, L: l, R: r, VMin: v, VMax: v}
		if err := params.Validate(); err != nil {
			return err
		}
		d = mobility.NewWaypoint(params, mobility.InitSteadyState, rng.New(seed))
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	tr := dyngraph.Capture(d, steps-1)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d snapshots of %d nodes to %s\n", tr.Len(), tr.N(), path)
	return nil
}

func load(path string) (*dyngraph.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dyngraph.ReadTrace(f)
}

func doAnalyze(path string) error {
	tr, err := load(path)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d nodes, %d snapshots\n", tr.N(), tr.Len())
	var degrees []float64
	for s := 0; s < tr.Len(); s++ {
		degrees = append(degrees, 2*float64(len(tr.EdgesAt(s)))/float64(tr.N()))
	}
	sum := stats.Summarize(degrees)
	fmt.Printf("average degree per snapshot: mean=%.2f min=%.2f max=%.2f\n",
		sum.Mean, sum.Min, sum.Max)
	fmt.Printf("T-interval connectivity (Kuhn–Lynch–Oshman): max T = %d\n",
		dyngraph.IntervalConnectivity(tr))
	return nil
}

func doFlood(path string, source int) error {
	tr, err := load(path)
	if err != nil {
		return err
	}
	res := flood.Run(tr.Replay(), source, flood.Opts{MaxSteps: tr.Len() + 1, KeepTimeline: true})
	if !res.Completed {
		fmt.Printf("flooding did not complete within the trace (%d snapshots); informed %d/%d\n",
			tr.Len(), res.Timeline[len(res.Timeline)-1], tr.N())
		return nil
	}
	fmt.Printf("flooding time over the trace: %d steps (half at %d)\n", res.Time, res.HalfTime)
	return nil
}
