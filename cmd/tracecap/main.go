// Command tracecap records a dynamic-graph model into a binary trace file,
// and analyzes or replays recorded traces. Traces decouple expensive model
// simulation from repeated analysis and make runs shareable.
//
// Usage:
//
//	tracecap -record trace.bin -model edgemeg:n=200,p=0.01,q=0.09 -steps 500
//	tracecap -record trace.bin -model waypoint:n=200,L=25,r=1.5
//	tracecap -analyze trace.bin          # density, interval connectivity
//	tracecap -flood trace.bin -source 0  # replay flooding over the trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/stats"
)

func main() {
	record := flag.String("record", "", "record a trace to this file")
	analyze := flag.String("analyze", "", "analyze a recorded trace file")
	floodFile := flag.String("flood", "", "replay flooding over a recorded trace file")
	listModels := flag.Bool("models", false, "list registered models and parameters, then exit")

	modelSpec := flag.String("model", "edgemeg:n=200,p=0.01,q=0.09", "model spec to record: name[:key=value,...] (see -models)")
	steps := flag.Int("steps", 500, "snapshots to record")
	seed := flag.Uint64("seed", 1, "seed")
	source := flag.Int("source", 0, "flooding source")
	flag.Parse()

	switch {
	case *listModels:
		fmt.Print(model.Usage())
	case *record != "":
		if err := doRecord(*record, *modelSpec, *steps, *seed); err != nil {
			fatal(err)
		}
	case *analyze != "":
		if err := doAnalyze(*analyze); err != nil {
			fatal(err)
		}
	case *floodFile != "":
		if err := doFlood(*floodFile, *source); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecap:", err)
	os.Exit(1)
}

func doRecord(path, modelSpec string, steps int, seed uint64) error {
	spec, err := model.Parse(modelSpec)
	if err != nil {
		return err
	}
	d, err := model.Build(spec, seed)
	if err != nil {
		return err
	}
	tr := dyngraph.Capture(d, steps-1)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d snapshots of %d nodes to %s\n", tr.Len(), tr.N(), path)
	return nil
}

func load(path string) (*dyngraph.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dyngraph.ReadTrace(f)
}

func doAnalyze(path string) error {
	tr, err := load(path)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d nodes, %d snapshots\n", tr.N(), tr.Len())
	var degrees []float64
	for s := 0; s < tr.Len(); s++ {
		degrees = append(degrees, 2*float64(len(tr.EdgesAt(s)))/float64(tr.N()))
	}
	sum := stats.Summarize(degrees)
	fmt.Printf("average degree per snapshot: mean=%.2f min=%.2f max=%.2f\n",
		sum.Mean, sum.Min, sum.Max)
	fmt.Printf("T-interval connectivity (Kuhn–Lynch–Oshman): max T = %d\n",
		dyngraph.IntervalConnectivity(tr))
	return nil
}

func doFlood(path string, source int) error {
	tr, err := load(path)
	if err != nil {
		return err
	}
	res := flood.Run(tr.Replay(), source, flood.Opts{MaxSteps: tr.Len() + 1, KeepTimeline: true})
	if !res.Completed {
		fmt.Printf("flooding did not complete within the trace (%d snapshots); informed %d/%d\n",
			tr.Len(), res.Informed, tr.N())
		return nil
	}
	fmt.Printf("flooding time over the trace: %d steps (half at %d)\n", res.Time, res.HalfTime)
	return nil
}
