// Package repro is a from-scratch Go reproduction of "Information Spreading
// in Dynamic Graphs" (A. Clementi, R. Silvestri, L. Trevisan; PODC 2012,
// arXiv:1111.0583): the (M, α, β)-stationarity framework for bounding the
// flooding time of Markovian evolving graphs, together with every model the
// paper instantiates it on — edge-MEGs, node-MEGs, the random waypoint and
// random walk mobility models, and random paths over graphs.
//
// # Simulation API (v6)
//
// The core abstraction is dyngraph.Dynamic — N, Step, ForEachNeighbor —
// with four optional batch extensions that hot paths consume when a
// model offers them:
//
//   - dyngraph.Batcher exposes the whole current snapshot as a flat
//     []Edge batch (AppendEdges). The flooding engine scans it linearly,
//     with no per-edge callbacks; models whose state already is
//     edge-shaped (sparse edge-MEG alive lists, geometry cell lists,
//     recorded traces, static graphs) produce it natively.
//   - dyngraph.ArcBatcher is the directed counterpart (AppendArcs), for
//     virtual graphs whose adjacency is asymmetric: dyngraph.Subsample —
//     the §5 push-gossip reduction — enumerates each node's kept subset
//     as arcs, and the flooding engine propagates along them one-way.
//   - dyngraph.NeighborLister exposes one node's neighbors as a slice
//     (AppendNeighbors), for consumers that touch few nodes per step
//     (random walkers, pull gossip, push subsampling). The per-node
//     protocol engines hoist the interface check out of their hot loops.
//   - dyngraph.DeltaBatcher (v6) exposes the churn of the most recent
//     Step as flat born/died batches (AppendDeltas) — O(n) per step in
//     the paper's sparse regime p = c/n, versus the Θ(n) edges of the
//     snapshot itself. The edge-MEG simulators (sparse, dense,
//     generalized — so also the four-state chain), Static and trace
//     Replay implement it natively from their own step logic;
//     dyngraph.NewDeltifier adapts any other model by diffing consecutive
//     snapshots. Consumers seed a persistent dyngraph.Adjacency from one
//     snapshot batch and Apply the deltas, maintaining the current graph
//     in O(churn) per step.
//
// Two engines consume the delta stream directly through a scratch-held
// Adjacency: flood.Run runs an incremental active-set engine (scan only
// informed nodes that may still reach someone; re-activate the informed
// endpoints of born edges), and flood.Parsimonious reads its
// transmitters' neighborhoods from the store. The order-sensitive
// engines — pull, push–pull, random walks, whose random draws index into
// neighbor lists — win model-side instead: the edge-MEG simulators keep
// their per-node lists live incrementally in rebuild-identical order, so
// fixed-seed trajectories are unchanged while the O(m) per-step rebuild
// disappears. The opt-in edgemeg fastchurn parameter further replaces
// the death sweep with geometric skipping (same law, different stream),
// making the whole model step O(churn).
//
// The v5 spreading core underneath is allocation-free once warm: informed
// sets are word-packed bitsets (internal/bitset) and all per-run working
// state lives in a reusable flood.Scratch threaded through flood.Opts —
// internal/study gives each worker one for all its trials, and `benchtab
// -json` records the resulting perf trajectory machine-readably, gated in
// CI against the committed BENCH_<date>.json baseline (see the README's
// Performance section).
//
// The package-level dyngraph.AppendEdges / dyngraph.AppendNeighbors fall
// back to ForEachNeighbor adapters for models implementing neither, so
// every consumer works with every model and merely runs faster on batch-
// capable ones (see the BenchmarkFlood*/BenchmarkPull* benchmarks in
// bench_test.go).
//
// Construction is spec-driven on both axes of an experiment, through two
// registries sharing the generic internal/spec machinery (name + typed
// parameters, CLI-string and JSON round-trips):
//
//   - internal/model builds dynamic graphs: model.Build(spec, seed) with
//     specs like "edgemeg:n=512,p=0.004,q=0.096". Model packages
//     self-register from init functions; importing repro/internal/model/all
//     links every built-in model into a binary.
//   - internal/protocol builds spreading protocols: protocol.Build(spec,
//     seed) with specs like "flood", "push:k=2", "pull", "pushpull:k=1",
//     "parsimonious:active=8". A built Protocol holds its parameters and
//     (for randomized protocols) a private RNG stream, and runs any model
//     via Run(d, source, opts), returning a flood.Result. All protocol
//     engines live in internal/flood and share one bookkeeping core, so a
//     Result field added once is tracked by every protocol.
//
// Registering a new model or protocol is a one-file change in its own
// package — no CLI, example, or experiment needs edits.
//
// internal/study is the experiment engine over both registries: a
// study.Study crosses one model spec with one protocol spec and runs
// Trials independent executions on a bounded worker pool, deriving
// per-trial model and protocol RNG streams from a master seed via
// rng.Seed — equal Studies yield identical Cells (per-trial Results plus a
// stats.Summary) for any Workers value. study.Grid sweeps whole
// model×protocol grids, and Cell.WriteJSONL emits per-trial JSON lines for
// downstream tooling.
//
// The v4 layer on top of the study engine is the declarative sweep
// runner, the production path for the paper's parameter-sweep campaigns:
//
//   - study.Sweep declares a whole grid — model specs × protocol specs ×
//     a trial count under one master seed — parseable from a JSON file
//     (study.ParseSweepFile) in which specs are CLI strings or spec
//     objects. Cell results are a pure function of the Sweep value.
//   - study.RunSweep executes the grid, skipping cells already present in
//     a loaded checkpoint and streaming each newly completed cell's
//     study.CellRecord — key (model, protocol, trials, seed) plus
//     per-trial times/half-times/informed counts — to a sink before the
//     next cell starts. study.ReadCheckpoint / study.LoadCheckpoint parse
//     the JSONL back, dropping a trailing line truncated by a kill, so an
//     interrupted sweep resumes losing at most the cell in flight.
//   - study.Report aggregates records into canonically sorted rows
//     (median/mean/p95 flooding time, median half time, mean informed
//     fraction); study.WriteCSV and study.WriteMarkdown render them.
//     Resumed and uninterrupted runs report byte-identically for any
//     Workers values.
//
// cmd/sweep drives all of this from the command line; the E18 experiment
// and examples/p2pchurn run their grids through the same path.
//
// The v7 layer distributes those campaigns across machines.
// internal/campaign turns the checkpoint's existing contract — cells
// keyed by (model, protocol, trials, seed), later duplicates win, results
// a pure function of the sweep definition — into a lease-based work
// queue: campaign.Manager holds submitted sweeps and leases cells out
// with expiring random tokens; campaign.NewServer exposes it over
// HTTP/JSON (submit, lease, complete, release, live progress and
// CSV/markdown report endpoints); campaign.Client and campaign.Work are
// the worker side, with transient-error retry and graceful shutdown
// (finish and post the in-flight cell, or release an unstarted lease).
// Worker death is handled purely by lease expiry and duplicate
// completions are accepted as harmless — no fencing, heartbeats, or
// consensus — so a farm of any size, including one suffering mid-cell
// worker kills, reports byte-identically to the offline single-process
// run. cmd/sweepd is the server binary; cmd/sweep -server is the
// submitter and worker. Completed records carry wall_ms (diagnostic
// only, never reported) which feeds adaptive lease TTLs and progress
// throughput. study.RunSweepOpts adds the same graceful-stop and
// progress hooks to local runs, and study.Sweep.CheckRecord gates every
// record a campaign accepts. See docs/SWEEPD.md for the protocol.
//
// The v8 layer makes performance a continuously observed property of all
// of this rather than a benchmark-day artifact. internal/telemetry is an
// FTDC-style metrics-capture subsystem: a telemetry.Collector registers
// gauge and counter sources (sweep cells/trials/steps done, scratch-pool
// footprint via the Bytes accounting on flood.Scratch and the dyngraph
// stores, farm lease/completion churn, runtime heap/GC stats) and samples
// them once per second — plus once per completed cell — into a
// delta-encoded, size-capped, ring-buffered capture file
// (*.ftdc.jsonl) whose reader tolerates kill truncation exactly like the
// sweep checkpoint. The hot paths stay allocation-free: engines and sweep
// loops only bump atomic counters; reading, encoding, and fsync batching
// happen on the collector's goroutine. study.SweepOpts.Telemetry wires a
// local sweep, campaign.WorkerOpts.Telemetry a farm worker, and
// campaign.Options.Telemetry the server (which additionally serves live
// snapshots on GET /metrics and per-campaign worker heartbeats and
// counters on GET /campaigns/{id}/metrics, and supports DELETE
// /campaigns/{id} for finished-state GC). telemetry.ReadCaptureFile and
// telemetry.Summarize decode and aggregate captures — `sweep
// -telemetry-report` renders the table, and `benchtab -compare a.json
// b.json` diffs two microbenchmark records row by row with the same
// slack semantics as the CI baseline gate. See docs/TELEMETRY.md.
//
// The v9 layer scales the sparse stationary regime to n = 10⁶ on one
// box. The edgemeg simulator's alive-pair position map and per-step
// exclude map became one open-addressing rank index (power-of-two
// slots, linear probing, backward-shift deletion); dyngraph.Adjacency
// became a CSR arena — {off, len, cap} segment headers over one shared
// int32 buffer with move-to-end growth and slack-preserving compaction,
// layout-preserved across same-n Resets; the flood frontier sets became
// two-level bitsets (bitset.TwoLevel: a summary word per 64 leaf words)
// so the delta engine's per-step sweep is O(active words) rather than
// O(n/64); and the spec-versioned stream parameter on edgemeg/edgemeg4
// selects the sampling stream — stream=v1 (default) replays every pre-v9
// RNG stream byte-for-byte, stream=v2 draws O(churn) numbers per step
// via geometric skipping over the Bernoulli sweeps and, for the
// generalized chain, per-state-class cohorts with conditional-alias
// destinations. Net: ~3.6 ms/step and zero warm allocations at n = 10⁶
// with ~110 MB tracked resident (Bytes() accounting, pinned under the
// 4 GB budget by internal/flood/million_test.go), per-step churn
// surfaced as born_per_step/died_per_step telemetry gauges, and the CI
// perf gate widened to every mode-independent BENCH row (benchtab
// -compare -gate-mode-independent), including the two new million-node
// rows.
//
// The v10 layer brings the geometric models into the O(churn) regime the
// edge-MEGs have enjoyed since v6. geometry.CellList became a persistent
// incremental index — node→cell assignments with per-cell member lists
// and swap-remove slots, so Move costs O(1) and a step that moves k
// nodes costs O(k) maintenance instead of an O(n) rebuild — and every
// mobility model (waypoint with a new pause parameter, direction,
// region waypoint, grid walk, discrete waypoint) now implements
// dyngraph.DeltaBatcher natively: a two-pass scan classifies died pairs
// against the pre-move index and born pairs against the post-move one,
// deduplicating both-moved pairs, so the per-step churn computation is
// O(moved × local density) and the generic O(m log m) Deltifier diff is
// no longer on any registered model's path. The flood engines report the
// mover counts through the new moved_per_step telemetry gauge
// (dyngraph.MoveReporter), warm mobility steps are allocation-free
// (member-list slack + pinned scratch, internal/mobility/alloc_test.go),
// and the delta/batch/Deltifier dispatch stays byte-identical per seed
// (internal/flood/equiv_test.go, TestMobilityDispatchEquivalence). The
// waypoint-4k delta/deltifier BENCH pair gates the speedup in CI; the
// 64k waypoint rows pin the large-geometry warm regime.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// cmd/ holds the CLIs, examples/ runnable scenarios, and bench_test.go one
// benchmark per experiment of EXPERIMENTS.md plus the flooding and
// protocol-engine hot-loop benchmarks. docs/PAPER_MAP.md maps the paper's
// sections and theorems to packages and experiments.
package repro
