// Package repro is a from-scratch Go reproduction of "Information Spreading
// in Dynamic Graphs" (A. Clementi, R. Silvestri, L. Trevisan; PODC 2012,
// arXiv:1111.0583): the (M, α, β)-stationarity framework for bounding the
// flooding time of Markovian evolving graphs, together with every model the
// paper instantiates it on — edge-MEGs, node-MEGs, the random waypoint and
// random walk mobility models, and random paths over graphs.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// cmd/ holds the CLIs, examples/ runnable scenarios, and bench_test.go one
// benchmark per experiment of EXPERIMENTS.md.
package repro
