// Package repro is a from-scratch Go reproduction of "Information Spreading
// in Dynamic Graphs" (A. Clementi, R. Silvestri, L. Trevisan; PODC 2012,
// arXiv:1111.0583): the (M, α, β)-stationarity framework for bounding the
// flooding time of Markovian evolving graphs, together with every model the
// paper instantiates it on — edge-MEGs, node-MEGs, the random waypoint and
// random walk mobility models, and random paths over graphs.
//
// # Simulation API (v2)
//
// The core abstraction is dyngraph.Dynamic — N, Step, ForEachNeighbor —
// with two optional batch extensions that hot paths consume when a model
// offers them:
//
//   - dyngraph.Batcher exposes the whole current snapshot as a flat
//     []Edge batch (AppendEdges). The flooding engine scans it linearly,
//     with no per-edge callbacks; models whose state already is
//     edge-shaped (sparse edge-MEG alive lists, geometry cell lists,
//     recorded traces, static graphs) produce it natively.
//   - dyngraph.NeighborLister exposes one node's neighbors as a slice
//     (AppendNeighbors), for consumers that touch few nodes per step
//     (random walkers, pull gossip, push subsampling).
//
// The package-level dyngraph.AppendEdges / dyngraph.AppendNeighbors fall
// back to ForEachNeighbor adapters for models implementing neither, so
// every consumer works with every model and merely runs faster on batch-
// capable ones (see the BenchmarkFlood* benchmarks in bench_test.go).
//
// Models are constructed through the internal/model registry: a
// model.Spec — a name plus typed parameters, parseable from CLI strings
// ("edgemeg:n=512,p=0.004,q=0.096") and JSON — is built by
// model.Build(spec, seed). Model packages self-register from init
// functions; importing repro/internal/model/all links every built-in
// model into a binary. Registering a new model is a one-file change in
// the model's own package — no CLI, example, or experiment needs edits.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// cmd/ holds the CLIs, examples/ runnable scenarios, and bench_test.go one
// benchmark per experiment of EXPERIMENTS.md plus the flooding hot-loop
// benchmarks.
package repro
