package balance

import (
	"math"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/graph"
	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMassConservation(t *testing.T) {
	g := dyngraph.NewStatic(graph.Grid(4, 4))
	s := New(g, PointLoad(16, 160))
	want := s.Total()
	for i := 0; i < 100; i++ {
		s.Step()
		if !almostEq(s.Total(), want, 1e-9) {
			t.Fatalf("total load drifted: %v vs %v", s.Total(), want)
		}
	}
}

func TestConvergesOnStaticConnectedGraph(t *testing.T) {
	g := dyngraph.NewStatic(graph.Cycle(10))
	s := New(g, PointLoad(10, 100))
	steps, ok := s.Run(0.01, 100000)
	if !ok {
		t.Fatalf("did not converge in %d steps (imbalance %v)", steps, s.Imbalance())
	}
	for i, x := range s.Loads() {
		if !almostEq(x, 10, 0.02) {
			t.Fatalf("load[%d] = %v, want ~10", i, x)
		}
	}
}

func TestVarianceMonotoneOnStaticGraph(t *testing.T) {
	g := dyngraph.NewStatic(graph.Grid(5, 5))
	s := New(g, PointLoad(25, 25))
	prev := s.Variance()
	for i := 0; i < 200; i++ {
		s.Step()
		v := s.Variance()
		if v > prev+1e-12 {
			t.Fatalf("variance increased at step %d: %v -> %v", i, prev, v)
		}
		prev = v
	}
}

func TestNoBalancingOnDisconnectedStatic(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	s := New(dyngraph.NewStatic(b.Build()), PointLoad(4, 8))
	s.Run(0.001, 5000)
	// Nodes 2 and 3 can never receive load.
	if s.Loads()[2] != 0 || s.Loads()[3] != 0 {
		t.Fatal("load crossed a disconnection")
	}
	// The connected pair balances to 4 each.
	if !almostEq(s.Loads()[0], 4, 0.01) || !almostEq(s.Loads()[1], 4, 0.01) {
		t.Fatalf("pair did not balance: %v", s.Loads()[:2])
	}
}

func TestDynamicGraphBalancesAcrossComponents(t *testing.T) {
	// A sparse edge-MEG's snapshots are disconnected, but churn moves load
	// everywhere — the dynamic-graph analogue of the flooding story.
	params := edgemeg.Params{N: 64, P: 0.002, Q: 0.098}
	d := edgemeg.NewSparse(params, edgemeg.InitStationary, rng.New(7))
	s := New(d, PointLoad(64, 640))
	steps, ok := s.Run(0.5, 200000)
	if !ok {
		t.Fatalf("dynamic balancing did not converge (imbalance %v)", s.Imbalance())
	}
	if steps == 0 {
		t.Fatal("suspiciously instant convergence")
	}
	if !almostEq(s.Total(), 640, 1e-6) {
		t.Fatal("mass not conserved on dynamic graph")
	}
}

func TestFasterChurnBalancesFaster(t *testing.T) {
	halving := func(speed float64, seed uint64) int {
		alpha := 2.0 / 64
		params := edgemeg.Params{N: 64, P: alpha * speed, Q: speed * (1 - alpha)}
		total := 0
		for trial := 0; trial < 5; trial++ {
			d := edgemeg.NewSparse(params, edgemeg.InitStationary, rng.New(seed+uint64(trial)))
			s := New(d, PointLoad(64, 640))
			start := s.Variance()
			steps := 0
			for s.Variance() > start/16 && steps < 100000 {
				s.Step()
				steps++
			}
			total += steps
		}
		return total
	}
	slow := halving(0.02, 11)
	fast := halving(0.4, 17)
	if fast >= slow {
		t.Fatalf("faster churn should balance faster: fast=%d slow=%d", fast, slow)
	}
}

func TestNewPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	New(dyngraph.NewStatic(graph.Cycle(3)), []float64{1})
}

func TestImbalanceAndVariance(t *testing.T) {
	s := New(dyngraph.NewStatic(graph.Cycle(4)), []float64{0, 0, 0, 8})
	if s.Imbalance() != 8 {
		t.Fatal("imbalance wrong")
	}
	if !almostEq(s.Variance(), 12, 1e-12) { // mean 2; (4+4+4+36)/4
		t.Fatalf("variance = %v, want 12", s.Variance())
	}
}
