// Package balance implements diffusive load balancing over dynamic graphs,
// the companion problem the paper's introduction cites alongside
// information spreading ("there are several interesting problems on dynamic
// graph processes, for example load balancing, studied in [16, 28]").
//
// Each node holds a real-valued load. Every step, neighbors exchange load
// along the current snapshot's edges using Metropolis weights
//
//	w_ij = 1 / (1 + max(deg_i, deg_j)),
//
// which make the per-step averaging matrix doubly stochastic on any graph,
// so total load is conserved and, over connected sequences of snapshots,
// loads converge to the global average. On sparse MEGs, convergence speed
// is governed — like the flooding time — by the process's mixing behavior,
// which experiment E17 measures.
package balance

import (
	"math"

	"repro/internal/dyngraph"
)

// State is a load vector being balanced over a dynamic graph.
type State struct {
	d    dyngraph.Dynamic
	load []float64
	next []float64
	deg  []int
}

// New wraps a dynamic graph with an initial load vector (copied). It
// panics if the length mismatches the node count.
func New(d dyngraph.Dynamic, load []float64) *State {
	if len(load) != d.N() {
		panic("balance: load length mismatch")
	}
	return &State{
		d:    d,
		load: append([]float64(nil), load...),
		next: make([]float64, len(load)),
		deg:  make([]int, len(load)),
	}
}

// PointLoad returns an n-vector with all mass `total` on node 0 — the
// worst-case initial imbalance.
func PointLoad(n int, total float64) []float64 {
	load := make([]float64, n)
	load[0] = total
	return load
}

// Loads returns the current load vector (shared; do not modify).
func (s *State) Loads() []float64 { return s.load }

// Total returns the (conserved) total load.
func (s *State) Total() float64 {
	sum := 0.0
	for _, x := range s.load {
		sum += x
	}
	return sum
}

// Imbalance returns max load minus min load.
func (s *State) Imbalance() float64 {
	min, max := s.load[0], s.load[0]
	for _, x := range s.load[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}

// Variance returns the population variance of the loads around the mean —
// the potential function whose decay rate [28] analyzes.
func (s *State) Variance() float64 {
	mean := s.Total() / float64(len(s.load))
	sum := 0.0
	for _, x := range s.load {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(s.load))
}

// Step performs one synchronous Metropolis diffusion round on the current
// snapshot, then advances the dynamic graph.
func (s *State) Step() {
	n := len(s.load)
	// Degrees of the current snapshot.
	for i := 0; i < n; i++ {
		deg := 0
		s.d.ForEachNeighbor(i, func(int) { deg++ })
		s.deg[i] = deg
	}
	copy(s.next, s.load)
	// Each undirected edge moves w_ij·(x_j - x_i) toward i (and the
	// opposite toward j); iterating directed reports applies each
	// direction once.
	for i := 0; i < n; i++ {
		xi := s.load[i]
		di := s.deg[i]
		s.d.ForEachNeighbor(i, func(j int) {
			dj := s.deg[j]
			w := 1.0 / (1.0 + math.Max(float64(di), float64(dj)))
			s.next[i] += w * (s.load[j] - xi)
		})
	}
	s.load, s.next = s.next, s.load
	s.d.Step()
}

// Run advances until the imbalance drops to eps or maxSteps elapse,
// returning the number of steps taken and whether the target was reached.
func (s *State) Run(eps float64, maxSteps int) (steps int, converged bool) {
	for t := 0; t < maxSteps; t++ {
		if s.Imbalance() <= eps {
			return t, true
		}
		s.Step()
	}
	return maxSteps, s.Imbalance() <= eps
}
