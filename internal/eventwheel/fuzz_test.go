package eventwheel

import (
	"sort"
	"testing"
)

// refSched is the obvious-by-inspection reference: a per-node pending map
// drained by scanning for the (tick, node) minimum. The wheel must match
// it event for event under any interleaving of schedules, supersedes,
// cancels, and drains.
type refSched struct {
	next map[int32]int64
}

func (r *refSched) schedule(node int32, tick int64) { r.next[node] = tick }
func (r *refSched) cancel(node int32)               { delete(r.next, node) }

func (r *refSched) popBefore(limit int64) (node int32, tick int64, ok bool) {
	// Deterministic minimum: collect, sort by (tick, node), take the head.
	type ev struct {
		tick int64
		node int32
	}
	pend := make([]ev, 0, len(r.next))
	for n, t := range r.next {
		if t < limit {
			pend = append(pend, ev{t, n})
		}
	}
	if len(pend) == 0 {
		return 0, 0, false
	}
	sort.Slice(pend, func(i, j int) bool {
		return pend[i].tick < pend[j].tick ||
			(pend[i].tick == pend[j].tick && pend[i].node < pend[j].node)
	})
	delete(r.next, pend[0].node)
	return pend[0].node, pend[0].tick, true
}

// FuzzEventWheel drives a small wheel (span 8, 4 buckets — so ring wrap
// and overflow migration are constantly exercised) and the sort-based
// reference through the same operation stream decoded from the fuzz input,
// checking every delivery and every Len agree. Scheduled ticks never
// precede the last delivered tick, per the wheel's forward-only contract.
func FuzzEventWheel(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x33})
	f.Add([]byte{0x01, 0xFF, 0x02, 0x80, 0x03, 0x40, 0x05})
	f.Add([]byte{0x02, 0x02, 0x02, 0x01, 0x00, 0x00, 0xF0, 0x0F})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 12
		w := New(8, 4)
		w.Reset(n)
		ref := &refSched{next: map[int32]int64{}}
		var frontier int64 // last delivered tick: new ticks must not precede it
		var limit int64
		pos := 0
		nextByte := func() (byte, bool) {
			if pos >= len(data) {
				return 0, false
			}
			b := data[pos]
			pos++
			return b, true
		}
		for {
			op, more := nextByte()
			if !more {
				break
			}
			switch op % 4 {
			case 0, 1: // schedule (twice as likely: keeps the wheel busy)
				nodeB, ok1 := nextByte()
				deltaB, ok2 := nextByte()
				if !ok1 || !ok2 {
					break
				}
				node := int32(nodeB) % n
				// Deltas span several buckets and reach past the 32-tick
				// ring horizon, hitting near-bucket, wrap, and overflow.
				tick := frontier + int64(deltaB)
				w.Schedule(node, tick)
				ref.schedule(node, tick)
			case 2: // cancel
				nodeB, ok := nextByte()
				if !ok {
					break
				}
				w.Cancel(int32(nodeB) % n)
				ref.cancel(int32(nodeB) % n)
			case 3: // drain up to a raised limit
				deltaB, ok := nextByte()
				if !ok {
					break
				}
				limit += int64(deltaB)
				for {
					gn, gt, gok := w.PopBefore(limit)
					wn, wt, wok := ref.popBefore(limit)
					if gok != wok || gn != wn || gt != wt {
						t.Fatalf("PopBefore(%d): wheel (%d, %d, %v) != reference (%d, %d, %v)",
							limit, gn, gt, gok, wn, wt, wok)
					}
					if !gok {
						break
					}
					if gt > frontier {
						frontier = gt
					}
				}
			}
			if w.Len() != len(ref.next) {
				t.Fatalf("Len = %d, reference has %d pending", w.Len(), len(ref.next))
			}
		}
		// Final full drain: nothing may be lost or duplicated. Every
		// pending tick is < frontier + 256 (schedule deltas are one byte),
		// and keeping the limit tight matters: PopBefore walks the cursor
		// bucket by bucket toward the limit, as its engine caller — which
		// raises the limit one step per call — never jumps far ahead.
		final := frontier + 256
		for {
			gn, gt, gok := w.PopBefore(final)
			wn, wt, wok := ref.popBefore(final)
			if gok != wok || gn != wn || gt != wt {
				t.Fatalf("final drain: wheel (%d, %d, %v) != reference (%d, %d, %v)", gn, gt, gok, wn, wt, wok)
			}
			if !gok {
				break
			}
		}
	})
}
