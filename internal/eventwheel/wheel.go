// Package eventwheel implements the integer-time event scheduler under the
// asynchronous spreading engine: a bucketed timing wheel for near events
// plus an overflow min-heap for far ones, with one pending event per node
// and O(1) amortized schedule/cancel/pop.
//
// Time is a monotone int64 tick counter. The wheel divides it into
// fixed-span buckets (the async engine uses one bucket per graph step);
// events within the horizon land in their bucket's unordered slice, events
// beyond it in the overflow heap. Draining orders events totally by
// (tick, node): the bucket being drained is held in a small binary heap,
// loaded bucket-by-bucket as the cursor advances and topped up from the
// overflow heap — so per event the wheel pays one bucket append plus one
// small-heap push/pop, instead of a log(all pending) heap for everything.
//
// Each node has at most one pending event (next[node]); Schedule overwrites
// and Cancel removes by lazy invalidation — superseded entries stay in
// their bucket and are skipped at pop time when their tick no longer
// matches the node's. All state is held in reusable buffers: a warm wheel
// schedules, cancels, and drains without allocating, which is what lets the
// async engine keep the package's zero-alloc scratch contract.
//
// The firing order and tick-boundary semantics are pinned exactly against a
// sort-based reference implementation by FuzzEventWheel.
package eventwheel

// event is one pending firing. The zero node is valid, so validity is
// judged solely by next[node] == tick.
type event struct {
	tick int64
	node int32
}

// less orders events by (tick, node) — the wheel's total delivery order.
func less(a, b event) bool {
	return a.tick < b.tick || (a.tick == b.tick && a.node < b.node)
}

// Wheel is a single-owner (not concurrency-safe) event scheduler.
// The zero value is unusable; construct with New and arm with Reset.
type Wheel struct {
	span    int64     // ticks per bucket
	buckets [][]event // ring of unordered near-future buckets
	cur     []event   // binary min-heap of the bucket being drained
	over    []event   // binary min-heap of events beyond the ring horizon
	next    []int64   // per-node pending tick, -1 when none
	cursor  int64     // bucket index (tick/span) being drained
	live    int       // count of valid pending events
}

// New returns a wheel with the given bucket span in ticks and ring size in
// buckets. Span and buckets must be positive; larger rings trade memory
// for fewer overflow-heap operations.
func New(span int64, buckets int) *Wheel {
	if span <= 0 || buckets <= 0 {
		panic("eventwheel: span and buckets must be positive")
	}
	return &Wheel{span: span, buckets: make([][]event, buckets)}
}

// Reset clears all pending events, rewinds time to tick 0, and sizes the
// wheel for nodes 0..n-1, keeping every buffer's capacity for reuse.
func (w *Wheel) Reset(n int) {
	for i := range w.buckets {
		w.buckets[i] = w.buckets[i][:0]
	}
	w.cur = w.cur[:0]
	w.over = w.over[:0]
	if cap(w.next) < n {
		w.next = make([]int64, n)
	}
	w.next = w.next[:n]
	for i := range w.next {
		w.next[i] = -1
	}
	w.cursor = 0
	w.live = 0
}

// Len reports the number of nodes with a pending event.
func (w *Wheel) Len() int { return w.live }

// NextTick returns the tick node is scheduled to fire at, or -1 when it has
// no pending event.
func (w *Wheel) NextTick(node int32) int64 { return w.next[node] }

// Schedule sets node's (single) pending event to tick, superseding any
// earlier one. The tick must not precede an event the wheel has already
// delivered — the drain is forward-only — and must be non-negative;
// schedulers that react to a popped event at tick T by rescheduling at
// T+gap (gap >= 1) satisfy this by construction.
func (w *Wheel) Schedule(node int32, tick int64) {
	if tick < 0 {
		panic("eventwheel: negative tick")
	}
	if w.next[node] < 0 {
		w.live++
	}
	w.next[node] = tick
	step := tick / w.span
	switch {
	case step <= w.cursor:
		// Due in (or before) the bucket being drained: goes through the
		// drain heap so it still pops in (tick, node) order.
		w.cur = heapPush(w.cur, event{tick, node})
	case step < w.cursor+int64(len(w.buckets)):
		b := step % int64(len(w.buckets))
		w.buckets[b] = append(w.buckets[b], event{tick, node})
	default:
		w.over = heapPush(w.over, event{tick, node})
	}
}

// Cancel removes node's pending event, if any. The bucket entry is left
// behind and invalidated lazily at pop time.
func (w *Wheel) Cancel(node int32) {
	if w.next[node] >= 0 {
		w.next[node] = -1
		w.live--
	}
}

// PopBefore delivers the next pending event with tick < limit, in strict
// (tick, node) order, consuming it (the node has no pending event until
// rescheduled). ok is false when no pending event precedes limit; the
// wheel then holds position, and a later call with a larger limit resumes
// exactly where this one stopped.
func (w *Wheel) PopBefore(limit int64) (node int32, tick int64, ok bool) {
	for {
		for len(w.cur) > 0 {
			top := w.cur[0]
			if top.tick >= limit {
				return 0, 0, false
			}
			w.cur = heapPop(w.cur)
			if w.next[top.node] != top.tick {
				continue // superseded or cancelled: lazy invalidation
			}
			w.next[top.node] = -1
			w.live--
			return top.node, top.tick, true
		}
		// Drain heap empty: advance the cursor into the next bucket, but
		// only once limit reaches it — the caller may still schedule into
		// the current bucket before raising the limit.
		if (w.cursor+1)*w.span >= limit {
			return 0, 0, false
		}
		w.cursor++
		w.loadCursor()
	}
}

// loadCursor moves the cursor bucket's entries into the drain heap and tops
// it up with overflow events that now fall inside the cursor bucket.
func (w *Wheel) loadCursor() {
	b := w.cursor % int64(len(w.buckets))
	for _, e := range w.buckets[b] {
		if w.next[e.node] == e.tick { // drop stale entries while copying
			w.cur = heapPush(w.cur, e)
		}
	}
	w.buckets[b] = w.buckets[b][:0]
	end := (w.cursor + 1) * w.span
	for len(w.over) > 0 && w.over[0].tick < end {
		w.cur = heapPush(w.cur, w.over[0])
		w.over = heapPop(w.over)
	}
}

// Bytes reports the wheel's buffer footprint for scratch accounting.
func (w *Wheel) Bytes() int64 {
	const eventSize = 16 // int64 + int32, padded
	total := int64(cap(w.cur)+cap(w.over)) * eventSize
	for _, b := range w.buckets {
		total += int64(cap(b)) * eventSize
	}
	return total + int64(cap(w.next))*8
}

// heapPush appends e to the (tick, node)-keyed binary min-heap h.
func heapPush(h []event, e event) []event {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// heapPop removes the minimum of h (h[0]) and restores the heap property.
func heapPop(h []event) []event {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && less(h[l], h[min]) {
			min = l
		}
		if r < len(h) && less(h[r], h[min]) {
			min = r
		}
		if min == i {
			return h
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
