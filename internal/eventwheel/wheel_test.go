package eventwheel

import "testing"

func TestWheelDeliversInTickNodeOrder(t *testing.T) {
	w := New(8, 4)
	w.Reset(5)
	// Same bucket, different ticks; same tick, different nodes.
	w.Schedule(3, 6)
	w.Schedule(1, 2)
	w.Schedule(4, 6)
	w.Schedule(0, 30) // later bucket
	want := []struct {
		node int32
		tick int64
	}{{1, 2}, {3, 6}, {4, 6}, {0, 30}}
	for i, ev := range want {
		node, tick, ok := w.PopBefore(64)
		if !ok || node != ev.node || tick != ev.tick {
			t.Fatalf("pop %d = (%d, %d, %v), want (%d, %d, true)", i, node, tick, ok, ev.node, ev.tick)
		}
	}
	if _, _, ok := w.PopBefore(64); ok {
		t.Fatal("empty wheel delivered an event")
	}
}

func TestWheelLimitIsExclusive(t *testing.T) {
	w := New(8, 4)
	w.Reset(2)
	w.Schedule(0, 8)
	if _, _, ok := w.PopBefore(8); ok {
		t.Fatal("PopBefore(8) delivered an event AT tick 8; the limit is exclusive")
	}
	node, tick, ok := w.PopBefore(9)
	if !ok || node != 0 || tick != 8 {
		t.Fatalf("PopBefore(9) = (%d, %d, %v), want (0, 8, true)", node, tick, ok)
	}
}

func TestWheelHoldsPositionBetweenLimits(t *testing.T) {
	// The async engine drains step by step: events scheduled into the
	// current step AFTER a failed pop must still be delivered once the
	// limit rises — the cursor must not run ahead of the limit.
	w := New(8, 4)
	w.Reset(3)
	w.Schedule(0, 20)
	if _, _, ok := w.PopBefore(8); ok {
		t.Fatal("delivered an event from a future step")
	}
	w.Schedule(1, 5) // into the current (partially drained) step
	node, tick, ok := w.PopBefore(8)
	if !ok || node != 1 || tick != 5 {
		t.Fatalf("late schedule into the open step: got (%d, %d, %v), want (1, 5, true)", node, tick, ok)
	}
}

func TestWheelSupersedeAndCancel(t *testing.T) {
	w := New(8, 4)
	w.Reset(4)
	w.Schedule(0, 3)
	w.Schedule(1, 4)
	w.Schedule(2, 5)
	if got := w.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	w.Schedule(0, 12) // supersedes tick 3
	if got := w.Len(); got != 3 {
		t.Fatalf("Len after supersede = %d, want 3", got)
	}
	if got := w.NextTick(0); got != 12 {
		t.Fatalf("NextTick(0) = %d, want 12", got)
	}
	w.Cancel(1)
	w.Cancel(1) // idempotent
	if got := w.Len(); got != 2 {
		t.Fatalf("Len after cancel = %d, want 2", got)
	}
	if got := w.NextTick(1); got != -1 {
		t.Fatalf("NextTick of cancelled node = %d, want -1", got)
	}
	node, tick, ok := w.PopBefore(100)
	if !ok || node != 2 || tick != 5 {
		t.Fatalf("first pop = (%d, %d, %v), want (2, 5, true): stale entries must be skipped", node, tick, ok)
	}
	node, tick, ok = w.PopBefore(100)
	if !ok || node != 0 || tick != 12 {
		t.Fatalf("second pop = (%d, %d, %v), want (0, 12, true)", node, tick, ok)
	}
	if w.Len() != 0 {
		t.Fatalf("Len after draining = %d, want 0", w.Len())
	}
}

func TestWheelOverflowBeyondRing(t *testing.T) {
	// span 8 × 4 buckets = a 32-tick horizon: ticks far beyond it live in
	// the overflow heap and must migrate into the ring as the cursor
	// reaches them.
	w := New(8, 4)
	w.Reset(3)
	w.Schedule(0, 1000)
	w.Schedule(1, 100)
	w.Schedule(2, 1)
	var got []int64
	limit := int64(8)
	for len(got) < 3 {
		if node, tick, ok := w.PopBefore(limit); ok {
			if w.NextTick(node) != -1 {
				t.Fatalf("popped node %d still pending", node)
			}
			got = append(got, tick)
		} else {
			limit += 8
		}
	}
	if got[0] != 1 || got[1] != 100 || got[2] != 1000 {
		t.Fatalf("overflow delivery order %v, want [1 100 1000]", got)
	}
}

func TestWheelResetReuses(t *testing.T) {
	w := New(4, 2)
	w.Reset(2)
	w.Schedule(0, 3)
	w.Schedule(1, 90)
	w.PopBefore(4)
	w.Reset(2)
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	if _, _, ok := w.PopBefore(1 << 20); ok {
		t.Fatal("Reset left a stale event behind")
	}
	// Time rewound to 0: near ticks schedule and deliver again.
	w.Schedule(1, 2)
	node, tick, ok := w.PopBefore(4)
	if !ok || node != 1 || tick != 2 {
		t.Fatalf("post-Reset pop = (%d, %d, %v), want (1, 2, true)", node, tick, ok)
	}
}

func TestWheelBytesGrowsWithUse(t *testing.T) {
	w := New(8, 4)
	w.Reset(64)
	before := w.Bytes()
	for i := int32(0); i < 64; i++ {
		w.Schedule(i, int64(i)*7)
	}
	if after := w.Bytes(); after <= before {
		t.Fatalf("Bytes did not grow with buffered events: %d -> %d", before, after)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][2]int{{0, 4}, {8, 0}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", shape[0], shape[1])
				}
			}()
			New(int64(shape[0]), shape[1])
		}()
	}
}
