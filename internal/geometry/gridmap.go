package geometry

// GridMap discretizes a rectangle into an m x m lattice of points, the
// construction the paper uses to turn continuous random-trip models into
// node-MEGs ("a square grid Q formed by m x m points regularly spaced in the
// square region").
type GridMap struct {
	rect Rect
	m    int
}

// NewGridMap builds an m x m discretization of rect. It panics for m < 2 or
// a degenerate rectangle.
func NewGridMap(rect Rect, m int) *GridMap {
	if m < 2 {
		panic("geometry: NewGridMap needs m >= 2")
	}
	if rect.W() <= 0 || rect.H() <= 0 {
		panic("geometry: NewGridMap needs a non-degenerate rect")
	}
	return &GridMap{rect: rect, m: m}
}

// M returns the per-side point count.
func (g *GridMap) M() int { return g.m }

// Points returns the total number of lattice points (m*m).
func (g *GridMap) Points() int { return g.m * g.m }

// Spacing returns the distance between horizontally adjacent lattice points.
func (g *GridMap) Spacing() float64 { return g.rect.W() / float64(g.m-1) }

// PointAt returns the continuous coordinates of lattice point (i, j), with
// i, j in [0, m).
func (g *GridMap) PointAt(i, j int) Point {
	return Point{
		X: g.rect.X0 + float64(i)*g.rect.W()/float64(g.m-1),
		Y: g.rect.Y0 + float64(j)*g.rect.H()/float64(g.m-1),
	}
}

// Index converts lattice coordinates to a flat index in [0, m*m).
func (g *GridMap) Index(i, j int) int { return i*g.m + j }

// Coords converts a flat index back to lattice coordinates.
func (g *GridMap) Coords(idx int) (i, j int) { return idx / g.m, idx % g.m }

// Nearest returns the lattice coordinates of the grid point closest to p
// (with p clamped into the rectangle first).
func (g *GridMap) Nearest(p Point) (i, j int) {
	p = g.rect.Clamp(p)
	fi := (p.X - g.rect.X0) / g.rect.W() * float64(g.m-1)
	fj := (p.Y - g.rect.Y0) / g.rect.H() * float64(g.m-1)
	i = int(fi + 0.5)
	j = int(fj + 0.5)
	if i >= g.m {
		i = g.m - 1
	}
	if j >= g.m {
		j = g.m - 1
	}
	return i, j
}
