package geometry

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, 5}
	if p.Add(q) != (Point{4, 7}) {
		t.Fatal("Add wrong")
	}
	if q.Sub(p) != (Point{2, 3}) {
		t.Fatal("Sub wrong")
	}
	if p.Scale(2) != (Point{2, 4}) {
		t.Fatal("Scale wrong")
	}
}

func TestDist(t *testing.T) {
	if Dist(Point{0, 0}, Point{3, 4}) != 5 {
		t.Fatal("Dist wrong")
	}
	if Dist2(Point{0, 0}, Point{3, 4}) != 25 {
		t.Fatal("Dist2 wrong")
	}
	if (Point{3, 4}).Norm() != 5 {
		t.Fatal("Norm wrong")
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) {
			return true
		}
		p, q := Point{a, b}, Point{c, d}
		return Dist(p, q) == Dist(q, p) && Dist(p, p) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if Lerp(p, q, 0) != p || Lerp(p, q, 1) != q {
		t.Fatal("Lerp endpoints wrong")
	}
	mid := Lerp(p, q, 0.5)
	if mid != (Point{5, 10}) {
		t.Fatal("Lerp midpoint wrong")
	}
}

func TestStepToward(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 0}
	got, reached := StepToward(p, q, 3)
	if reached || got != (Point{3, 0}) {
		t.Fatalf("StepToward partial: %v %v", got, reached)
	}
	got, reached = StepToward(p, q, 15)
	if !reached || got != q {
		t.Fatalf("StepToward overshoot: %v %v", got, reached)
	}
	got, reached = StepToward(q, q, 1)
	if !reached || got != q {
		t.Fatalf("StepToward same point: %v %v", got, reached)
	}
}

func TestStepTowardNeverOvershootsProperty(t *testing.T) {
	r := rng.New(3)
	f := func(uint8) bool {
		p := Point{r.Float64() * 100, r.Float64() * 100}
		q := Point{r.Float64() * 100, r.Float64() * 100}
		step := r.Float64() * 50
		got, reached := StepToward(p, q, step)
		if reached {
			return got == q
		}
		// Must move exactly step and reduce the distance accordingly.
		return math.Abs(Dist(p, got)-step) < 1e-9 &&
			math.Abs(Dist(got, q)-(Dist(p, q)-step)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRect(t *testing.T) {
	r := Square(10)
	if r.W() != 10 || r.H() != 10 || r.Area() != 100 {
		t.Fatal("Square dims wrong")
	}
	if !r.Contains(Point{5, 5}) || r.Contains(Point{11, 5}) {
		t.Fatal("Contains wrong")
	}
	if r.Clamp(Point{-2, 15}) != (Point{0, 10}) {
		t.Fatal("Clamp wrong")
	}
}

func TestRectShrink(t *testing.T) {
	r := Square(10).Shrink(2)
	if r != (Rect{2, 2, 8, 8}) {
		t.Fatalf("Shrink = %+v", r)
	}
	deg := Square(10).Shrink(6)
	if deg.W() != 0 || deg.H() != 0 {
		t.Fatalf("over-shrink should degenerate: %+v", deg)
	}
}

func TestCellListMatchesBruteForce(t *testing.T) {
	r := rng.New(7)
	rect := Square(100)
	const n = 300
	const radius = 8.0
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64() * 100, r.Float64() * 100}
	}
	cl := NewCellList(rect, radius, pts)
	for i := 0; i < n; i++ {
		got := map[int]bool{}
		cl.ForEachWithin(i, func(j int) { got[j] = true })
		want := map[int]bool{}
		for j := 0; j < n; j++ {
			if j != i && Dist(pts[i], pts[j]) <= radius {
				want[j] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("point %d: got %d neighbors, want %d", i, len(got), len(want))
		}
		for j := range want {
			if !got[j] {
				t.Fatalf("point %d: missing neighbor %d", i, j)
			}
		}
	}
}

func TestCellListRebuild(t *testing.T) {
	rect := Square(10)
	pts := []Point{{1, 1}, {2, 1}, {9, 9}}
	cl := NewCellList(rect, 2, pts)
	if cl.CountWithin(0) != 1 {
		t.Fatal("initial neighbors wrong")
	}
	// Move point 2 next to point 0.
	pts[2] = Point{1, 2}
	cl.Rebuild(pts)
	if cl.CountWithin(0) != 2 {
		t.Fatal("rebuild did not update neighbors")
	}
	if cl.Len() != 3 {
		t.Fatal("Len wrong")
	}
}

func TestCellListRebuildPanicsOnResize(t *testing.T) {
	cl := NewCellList(Square(10), 1, []Point{{1, 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("Rebuild with different count did not panic")
		}
	}()
	cl.Rebuild([]Point{{1, 1}, {2, 2}})
}

func TestCellListSmallRadiusLargeRect(t *testing.T) {
	// Radius much smaller than the rect: many cells, queries stay correct.
	r := rng.New(11)
	rect := Square(1000)
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{r.Float64() * 1000, r.Float64() * 1000}
	}
	cl := NewCellList(rect, 0.5, pts)
	for i := range pts {
		cl.ForEachWithin(i, func(j int) {
			if Dist(pts[i], pts[j]) > 0.5 {
				t.Fatalf("reported far neighbor %d-%d", i, j)
			}
		})
	}
}

func TestCellListPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero radius":     func() { NewCellList(Square(1), 0, nil) },
		"degenerate rect": func() { NewCellList(Rect{0, 0, 0, 1}, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGridMapRoundTrip(t *testing.T) {
	g := NewGridMap(Square(10), 5)
	if g.Points() != 25 || g.M() != 5 {
		t.Fatal("size wrong")
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			idx := g.Index(i, j)
			gi, gj := g.Coords(idx)
			if gi != i || gj != j {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", i, j, idx, gi, gj)
			}
			// Nearest of an exact lattice point is itself.
			ni, nj := g.Nearest(g.PointAt(i, j))
			if ni != i || nj != j {
				t.Fatalf("Nearest(%d,%d) = (%d,%d)", i, j, ni, nj)
			}
		}
	}
}

func TestGridMapSpacing(t *testing.T) {
	g := NewGridMap(Square(10), 5)
	if g.Spacing() != 2.5 {
		t.Fatalf("spacing = %v", g.Spacing())
	}
	if g.PointAt(4, 4) != (Point{10, 10}) {
		t.Fatalf("corner = %v", g.PointAt(4, 4))
	}
}

func TestGridMapNearestClamps(t *testing.T) {
	g := NewGridMap(Square(10), 3)
	i, j := g.Nearest(Point{-5, 100})
	if i != 0 || j != 2 {
		t.Fatalf("Nearest out-of-rect = (%d,%d)", i, j)
	}
}

func BenchmarkCellListRebuild(b *testing.B) {
	r := rng.New(1)
	pts := make([]Point, 10000)
	for i := range pts {
		pts[i] = Point{r.Float64() * 100, r.Float64() * 100}
	}
	cl := NewCellList(Square(100), 2, pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Rebuild(pts)
	}
}

func BenchmarkCellListQuery(b *testing.B) {
	r := rng.New(1)
	pts := make([]Point, 10000)
	for i := range pts {
		pts[i] = Point{r.Float64() * 100, r.Float64() * 100}
	}
	cl := NewCellList(Square(100), 2, pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.CountWithin(i % len(pts))
	}
}
