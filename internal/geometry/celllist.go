package geometry

import "math"

// CellList is a uniform-grid spatial index over a fixed set of points in a
// rectangle, supporting neighbor queries within a radius r in O(1) expected
// time per reported neighbor. It is rebuilt in place every simulation step,
// so construction allocates once and Rebuild reuses all storage.
//
// The cell side equals the query radius, so a radius query only inspects the
// 3x3 block of cells around the query point.
type CellList struct {
	rect  Rect
	r     float64
	cols  int
	rows  int
	heads []int32 // head of the linked list per cell, -1 when empty
	next  []int32 // next index per point, -1 at list end
	cell  []int32 // cell id per point
	pts   []Point // the indexed points (caller-owned copy semantics: stored by value)
}

// NewCellList builds an index over pts within rect for radius-r queries.
// It panics if r <= 0 or the rectangle is degenerate.
func NewCellList(rect Rect, r float64, pts []Point) *CellList {
	if r <= 0 {
		panic("geometry: NewCellList needs r > 0")
	}
	if rect.W() <= 0 || rect.H() <= 0 {
		panic("geometry: NewCellList needs a non-degenerate rect")
	}
	cols := int(math.Ceil(rect.W() / r))
	rows := int(math.Ceil(rect.H() / r))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	c := &CellList{
		rect:  rect,
		r:     r,
		cols:  cols,
		rows:  rows,
		heads: make([]int32, cols*rows),
		next:  make([]int32, len(pts)),
		cell:  make([]int32, len(pts)),
		pts:   make([]Point, len(pts)),
	}
	c.Rebuild(pts)
	return c
}

// Rebuild reindexes the (possibly moved) points. len(pts) must equal the
// original point count.
func (c *CellList) Rebuild(pts []Point) {
	if len(pts) != len(c.pts) {
		panic("geometry: Rebuild with different point count")
	}
	copy(c.pts, pts)
	for i := range c.heads {
		c.heads[i] = -1
	}
	for i, p := range c.pts {
		id := c.cellOf(p)
		c.cell[i] = id
		c.next[i] = c.heads[id]
		c.heads[id] = int32(i)
	}
}

// cellOf maps a point (clamped into the rectangle) to its cell id.
func (c *CellList) cellOf(p Point) int32 {
	p = c.rect.Clamp(p)
	col := int((p.X - c.rect.X0) / c.r)
	row := int((p.Y - c.rect.Y0) / c.r)
	if col >= c.cols {
		col = c.cols - 1
	}
	if row >= c.rows {
		row = c.rows - 1
	}
	return int32(row*c.cols + col)
}

// ForEachWithin calls fn(j) for every indexed point j != i whose distance to
// point i is at most the query radius. Iteration order is unspecified.
func (c *CellList) ForEachWithin(i int, fn func(j int)) {
	p := c.pts[i]
	id := int(c.cell[i])
	row := id / c.cols
	col := id % c.cols
	r2 := c.r * c.r
	for dr := -1; dr <= 1; dr++ {
		nr := row + dr
		if nr < 0 || nr >= c.rows {
			continue
		}
		for dc := -1; dc <= 1; dc++ {
			nc := col + dc
			if nc < 0 || nc >= c.cols {
				continue
			}
			for j := c.heads[nr*c.cols+nc]; j >= 0; j = c.next[j] {
				if int(j) != i && Dist2(p, c.pts[j]) <= r2 {
					fn(int(j))
				}
			}
		}
	}
}

// AppendPairsWithin appends every unordered pair {i, j} of indexed points
// within the query radius to dst, normalized to i < j, each pair exactly
// once. It scans each cell against itself and a half stencil of its
// neighbors, so every candidate pair is distance-checked once — half the
// work of querying ForEachWithin from every point.
func (c *CellList) AppendPairsWithin(dst [][2]int32) [][2]int32 {
	r2 := c.r * c.r
	// Half stencil: E, SW, S, SE. Together with the same-cell pass this
	// covers each unordered cell pair once.
	stencil := [4][2]int{{0, 1}, {1, -1}, {1, 0}, {1, 1}}
	for row := 0; row < c.rows; row++ {
		for col := 0; col < c.cols; col++ {
			for i := c.heads[row*c.cols+col]; i >= 0; i = c.next[i] {
				pi := c.pts[i]
				for j := c.next[i]; j >= 0; j = c.next[j] {
					if Dist2(pi, c.pts[j]) <= r2 {
						dst = append(dst, orderPair(i, j))
					}
				}
				for _, off := range stencil {
					nr, nc := row+off[0], col+off[1]
					if nr >= c.rows || nc < 0 || nc >= c.cols {
						continue
					}
					for j := c.heads[nr*c.cols+nc]; j >= 0; j = c.next[j] {
						if Dist2(pi, c.pts[j]) <= r2 {
							dst = append(dst, orderPair(i, j))
						}
					}
				}
			}
		}
	}
	return dst
}

func orderPair(i, j int32) [2]int32 {
	if i < j {
		return [2]int32{i, j}
	}
	return [2]int32{j, i}
}

// AppendWithin appends every indexed point j != i within the query radius
// of point i to dst, in ForEachWithin order.
func (c *CellList) AppendWithin(i int, dst []int32) []int32 {
	p := c.pts[i]
	id := int(c.cell[i])
	row := id / c.cols
	col := id % c.cols
	r2 := c.r * c.r
	for dr := -1; dr <= 1; dr++ {
		nr := row + dr
		if nr < 0 || nr >= c.rows {
			continue
		}
		for dc := -1; dc <= 1; dc++ {
			nc := col + dc
			if nc < 0 || nc >= c.cols {
				continue
			}
			for j := c.heads[nr*c.cols+nc]; j >= 0; j = c.next[j] {
				if int(j) != i && Dist2(p, c.pts[j]) <= r2 {
					dst = append(dst, j)
				}
			}
		}
	}
	return dst
}

// CountWithin returns the number of indexed points within the radius of
// point i, excluding i itself.
func (c *CellList) CountWithin(i int) int {
	n := 0
	c.ForEachWithin(i, func(int) { n++ })
	return n
}

// Len returns the number of indexed points.
func (c *CellList) Len() int { return len(c.pts) }
