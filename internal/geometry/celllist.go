package geometry

import "math"

// CellList is a uniform-grid spatial index over a fixed set of points in a
// rectangle, supporting neighbor queries within a radius r in O(1) expected
// time per reported neighbor. It maintains a persistent node→cell
// assignment with per-cell member lists, so a step that moves k points
// costs O(k) index maintenance via Move instead of the O(n) Rebuild the
// batch path pays. Construction allocates once; Rebuild and Move reuse all
// storage.
//
// The cell side equals the query radius, so a radius query only inspects the
// 3x3 block of cells around the query point.
type CellList struct {
	rect    Rect
	r       float64
	cols    int
	rows    int
	members [][]int32  // per-cell member lists, order unspecified
	slot    []int32    // position of point i inside members[cell[i]]
	cell    []int32    // cell id per point
	pts     []Point    // the indexed points (caller-owned copy semantics: stored by value)
	pairs   [][2]int32 // scratch for Pairs
}

// NewCellList builds an index over pts within rect for radius-r queries.
// It panics if r <= 0 or the rectangle is degenerate.
func NewCellList(rect Rect, r float64, pts []Point) *CellList {
	if r <= 0 {
		panic("geometry: NewCellList needs r > 0")
	}
	if rect.W() <= 0 || rect.H() <= 0 {
		panic("geometry: NewCellList needs a non-degenerate rect")
	}
	cols := int(math.Ceil(rect.W() / r))
	rows := int(math.Ceil(rect.H() / r))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	c := &CellList{
		rect:    rect,
		r:       r,
		cols:    cols,
		rows:    rows,
		members: make([][]int32, cols*rows),
		slot:    make([]int32, len(pts)),
		cell:    make([]int32, len(pts)),
		pts:     make([]Point, len(pts)),
	}
	c.Rebuild(pts)
	// Reserve slack: a cell's member list grows in Move whenever the cell
	// exceeds its all-time-high occupancy, and with many cells those maxima
	// keep trickling in for thousands of steps (extreme-value creep), each
	// costing an allocation. Generous capacity over the build-time
	// occupancy makes later crossings rare enough that warm steps are
	// allocation-free in practice, even where the stationary density runs
	// well above the build-time draw (the waypoint center bias).
	for id, m := range c.members {
		if want := 4*len(m) + 16; cap(m) < want {
			grown := make([]int32, len(m), want)
			copy(grown, m)
			c.members[id] = grown
		}
	}
	return c
}

// Rebuild reindexes the (possibly moved) points from scratch. len(pts) must
// equal the original point count. Member-list capacities are retained, so a
// warm Rebuild allocates nothing.
func (c *CellList) Rebuild(pts []Point) {
	if len(pts) != len(c.pts) {
		panic("geometry: Rebuild with different point count")
	}
	copy(c.pts, pts)
	for i := range c.members {
		c.members[i] = c.members[i][:0]
	}
	for i, p := range c.pts {
		id := c.cellOf(p)
		c.cell[i] = id
		c.slot[i] = int32(len(c.members[id]))
		c.members[id] = append(c.members[id], int32(i))
	}
}

// Move updates point i to position p, maintaining the index incrementally:
// a same-cell move only updates the stored position, and a cell transition
// swap-removes i from its old cell's member list and appends it to the new
// one — O(1) either way.
func (c *CellList) Move(i int, p Point) {
	c.pts[i] = p
	old := c.cell[i]
	id := c.cellOf(p)
	if id == old {
		return
	}
	// Swap-remove from the old cell.
	m := c.members[old]
	k := c.slot[i]
	last := int32(len(m) - 1)
	moved := m[last]
	m[k] = moved
	c.slot[moved] = k
	c.members[old] = m[:last]
	// Append to the new cell.
	c.cell[i] = id
	c.slot[i] = int32(len(c.members[id]))
	c.members[id] = append(c.members[id], int32(i))
}

// Position returns the indexed position of point i.
func (c *CellList) Position(i int) Point { return c.pts[i] }

// RadiusSq returns the squared query radius.
func (c *CellList) RadiusSq() float64 { return c.r * c.r }

// cellOf maps a point (clamped into the rectangle) to its cell id.
func (c *CellList) cellOf(p Point) int32 {
	p = c.rect.Clamp(p)
	col := int((p.X - c.rect.X0) / c.r)
	row := int((p.Y - c.rect.Y0) / c.r)
	if col >= c.cols {
		col = c.cols - 1
	}
	if row >= c.rows {
		row = c.rows - 1
	}
	return int32(row*c.cols + col)
}

// ForEachWithin calls fn(j) for every indexed point j != i whose distance to
// point i is at most the query radius. Iteration order is unspecified.
func (c *CellList) ForEachWithin(i int, fn func(j int)) {
	p := c.pts[i]
	id := int(c.cell[i])
	row := id / c.cols
	col := id % c.cols
	r2 := c.r * c.r
	for dr := -1; dr <= 1; dr++ {
		nr := row + dr
		if nr < 0 || nr >= c.rows {
			continue
		}
		for dc := -1; dc <= 1; dc++ {
			nc := col + dc
			if nc < 0 || nc >= c.cols {
				continue
			}
			for _, j := range c.members[nr*c.cols+nc] {
				if int(j) != i && Dist2(p, c.pts[j]) <= r2 {
					fn(int(j))
				}
			}
		}
	}
}

// AppendPairsWithin appends every unordered pair {i, j} of indexed points
// within the query radius to dst, normalized to i < j, each pair exactly
// once. It scans each cell against itself and a half stencil of its
// neighbors, so every candidate pair is distance-checked once — half the
// work of querying ForEachWithin from every point.
func (c *CellList) AppendPairsWithin(dst [][2]int32) [][2]int32 {
	r2 := c.r * c.r
	// Half stencil: E, SW, S, SE. Together with the same-cell pass this
	// covers each unordered cell pair once.
	stencil := [4][2]int{{0, 1}, {1, -1}, {1, 0}, {1, 1}}
	for row := 0; row < c.rows; row++ {
		for col := 0; col < c.cols; col++ {
			m := c.members[row*c.cols+col]
			for a, i := range m {
				pi := c.pts[i]
				for _, j := range m[a+1:] {
					if Dist2(pi, c.pts[j]) <= r2 {
						dst = append(dst, orderPair(i, j))
					}
				}
				for _, off := range stencil {
					nr, nc := row+off[0], col+off[1]
					if nr >= c.rows || nc < 0 || nc >= c.cols {
						continue
					}
					for _, j := range c.members[nr*c.cols+nc] {
						if Dist2(pi, c.pts[j]) <= r2 {
							dst = append(dst, orderPair(i, j))
						}
					}
				}
			}
		}
	}
	return dst
}

// Pairs returns the current within-radius pairs via AppendPairsWithin into
// an internal scratch buffer reused across calls, so warm callers (the
// mobility batch views) never reallocate. The returned slice is
// invalidated by the next Pairs call and must not be retained or modified.
func (c *CellList) Pairs() [][2]int32 {
	c.pairs = c.AppendPairsWithin(c.pairs[:0])
	return c.pairs
}

func orderPair(i, j int32) [2]int32 {
	if i < j {
		return [2]int32{i, j}
	}
	return [2]int32{j, i}
}

// AppendWithin appends every indexed point j != i within the query radius
// of point i to dst, in ForEachWithin order.
func (c *CellList) AppendWithin(i int, dst []int32) []int32 {
	p := c.pts[i]
	id := int(c.cell[i])
	row := id / c.cols
	col := id % c.cols
	r2 := c.r * c.r
	for dr := -1; dr <= 1; dr++ {
		nr := row + dr
		if nr < 0 || nr >= c.rows {
			continue
		}
		for dc := -1; dc <= 1; dc++ {
			nc := col + dc
			if nc < 0 || nc >= c.cols {
				continue
			}
			for _, j := range c.members[nr*c.cols+nc] {
				if int(j) != i && Dist2(p, c.pts[j]) <= r2 {
					dst = append(dst, j)
				}
			}
		}
	}
	return dst
}

// CountWithin returns the number of indexed points within the radius of
// point i, excluding i itself.
func (c *CellList) CountWithin(i int) int {
	n := 0
	c.ForEachWithin(i, func(int) { n++ })
	return n
}

// Len returns the number of indexed points.
func (c *CellList) Len() int { return len(c.pts) }
