package geometry

import (
	"slices"
	"testing"

	"repro/internal/rng"
)

// equalCellViews asserts that two cell lists over the same points answer
// every query identically up to ordering: per-point neighbor sets and the
// full pair enumeration. This is the contract the incremental Move path
// must share with a from-scratch Rebuild.
func equalCellViews(t *testing.T, tag string, incr, fresh *CellList, n int) {
	t.Helper()
	var a, b []int32
	for i := 0; i < n; i++ {
		if incr.Position(i) != fresh.Position(i) {
			t.Fatalf("%s: point %d stored at %v, rebuild has %v", tag, i, incr.Position(i), fresh.Position(i))
		}
		a = incr.AppendWithin(i, a[:0])
		b = fresh.AppendWithin(i, b[:0])
		slices.Sort(a)
		slices.Sort(b)
		if !slices.Equal(a, b) {
			t.Fatalf("%s: point %d neighbors diverge: incremental %v, rebuild %v", tag, i, a, b)
		}
	}
	ap := slices.Clone(incr.AppendPairsWithin(nil))
	bp := slices.Clone(fresh.AppendPairsWithin(nil))
	sortPairs := func(p [][2]int32) {
		slices.SortFunc(p, func(x, y [2]int32) int {
			if x[0] != y[0] {
				return int(x[0]) - int(y[0])
			}
			return int(x[1]) - int(y[1])
		})
	}
	sortPairs(ap)
	sortPairs(bp)
	if !slices.Equal(ap, bp) {
		t.Fatalf("%s: pair enumeration diverges: incremental %d pairs, rebuild %d", tag, len(ap), len(bp))
	}
}

// TestCellListMoveMatchesRebuild drives an incremental cell list through
// random move streams — local jitters that mostly stay in-cell, long jumps
// that cross many cell boundaries, moves onto exact cell-border
// coordinates, and no-op moves to the current position — and checks after
// every batch that it is indistinguishable from an index rebuilt from
// scratch at the current positions.
func TestCellListMoveMatchesRebuild(t *testing.T) {
	r := rng.New(23)
	const (
		n      = 120
		side   = 40.0
		radius = 3.0
		rounds = 60
	)
	rect := Square(side)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64() * side, r.Float64() * side}
	}
	incr := NewCellList(rect, radius, pts)
	for round := 0; round < rounds; round++ {
		moves := 1 + r.Intn(n/2)
		for k := 0; k < moves; k++ {
			i := r.Intn(n)
			var p Point
			switch r.Intn(5) {
			case 0: // small jitter, usually same cell
				p = Point{pts[i].X + r.Range(-0.3, 0.3), pts[i].Y + r.Range(-0.3, 0.3)}
			case 1: // long jump across many cells
				p = Point{r.Float64() * side, r.Float64() * side}
			case 2: // exact cell-border coordinates
				var s, rad float64 = side, radius
				borders := int(s/rad) + 1
				p = Point{float64(r.Intn(borders)) * radius, float64(r.Intn(borders)) * radius}
			case 3: // no-op move to the current position
				p = pts[i]
			default: // out of the rect: cellOf clamps, the point keeps its value
				p = Point{pts[i].X + r.Range(-2*side, 2*side), pts[i].Y + r.Range(-2*side, 2*side)}
			}
			pts[i] = p
			incr.Move(i, p)
		}
		fresh := NewCellList(rect, radius, pts)
		equalCellViews(t, "move stream", incr, fresh, n)
	}
}

// TestCellListMoveThenRebuild checks that a Rebuild on an index previously
// maintained by Move resets it correctly (the two modes may be freely
// interleaved).
func TestCellListMoveThenRebuild(t *testing.T) {
	r := rng.New(5)
	const n = 50
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64() * 10, r.Float64() * 10}
	}
	cl := NewCellList(Square(10), 1.5, pts)
	for k := 0; k < 200; k++ {
		i := r.Intn(n)
		pts[i] = Point{r.Float64() * 10, r.Float64() * 10}
		cl.Move(i, pts[i])
	}
	for i := range pts {
		pts[i] = Point{r.Float64() * 10, r.Float64() * 10}
	}
	cl.Rebuild(pts)
	equalCellViews(t, "rebuild after moves", cl, NewCellList(Square(10), 1.5, pts), n)
}

// FuzzCellListMove feeds arbitrary byte streams as move sequences: each
// 3-byte group selects a point and a quantized destination (which the
// index clamps into the rect when out of bounds). The incremental index
// must match a from-scratch rebuild after the whole stream.
func FuzzCellListMove(f *testing.F) {
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 255, 128, 2, 0, 255, 1, 1, 1})
	f.Add([]byte{7, 13, 200, 7, 13, 200, 3, 90, 90})
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			n      = 16
			side   = 8.0
			radius = 1.0
		)
		r := rng.New(99)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Float64() * side, r.Float64() * side}
		}
		incr := NewCellList(Square(side), radius, pts)
		for k := 0; k+2 < len(data); k += 3 {
			i := int(data[k]) % n
			// Quantized targets deliberately overshoot the rect by 25% so
			// the fuzzer exercises the clamping path too.
			p := Point{
				X: (float64(data[k+1])/255 - 0.125) * side * 1.25,
				Y: (float64(data[k+2])/255 - 0.125) * side * 1.25,
			}
			pts[i] = p
			incr.Move(i, p)
		}
		fresh := NewCellList(Square(side), radius, pts)
		equalCellViews(t, "fuzz", incr, fresh, n)
	})
}

func BenchmarkCellListMove(b *testing.B) {
	r := rng.New(1)
	const n = 10000
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64() * 100, r.Float64() * 100}
	}
	cl := NewCellList(Square(100), 2, pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		p := Point{r.Float64() * 100, r.Float64() * 100}
		cl.Move(j, p)
	}
}
