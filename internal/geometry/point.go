// Package geometry provides the planar-geometry substrate used by the
// geometric mobility models: points, rectangles, distance functions, grid
// discretization, and a cell-list spatial index for radius neighbor queries.
package geometry

import "math"

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. Prefer it in
// hot loops to avoid the square root.
func Dist2(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// StepToward returns the point reached by moving from p toward q by at most
// dist, and whether q was reached. Moving distance zero or toward the same
// point reports reached.
func StepToward(p, q Point, dist float64) (Point, bool) {
	d := Dist(p, q)
	if d <= dist || d == 0 {
		return q, true
	}
	return Lerp(p, q, dist/d), false
}

// Rect is an axis-aligned rectangle [X0, X1] x [Y0, Y1].
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Square returns the square [0, side] x [0, side].
func Square(side float64) Rect { return Rect{0, 0, side, side} }

// W returns the rectangle's width.
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the rectangle's height.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Contains reports whether p lies in the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.X0), r.X1),
		Y: math.Min(math.Max(p.Y, r.Y0), r.Y1),
	}
}

// Shrink returns the rectangle shrunk by margin on every side. If the margin
// exceeds half a dimension the result is the degenerate center rectangle.
func (r Rect) Shrink(margin float64) Rect {
	out := Rect{r.X0 + margin, r.Y0 + margin, r.X1 - margin, r.Y1 - margin}
	if out.X0 > out.X1 {
		c := (r.X0 + r.X1) / 2
		out.X0, out.X1 = c, c
	}
	if out.Y0 > out.Y1 {
		c := (r.Y0 + r.Y1) / 2
		out.Y0, out.Y1 = c, c
	}
	return out
}
