package study_test

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/spec"
	"repro/internal/study"
	"repro/internal/telemetry"
)

func baseSweep() study.Sweep {
	return study.Sweep{
		Models: []spec.Spec{
			model.New("edgemeg").WithInt("n", 64).WithFloat("p", 0.03).WithFloat("q", 0.27),
			model.New("static").With("topology", "torus").WithInt("m", 8),
		},
		Protocols: []spec.Spec{
			protocol.New("flood"),
			protocol.New("push").WithInt("k", 2),
			protocol.New("pushpull").WithInt("k", 1),
		},
		Trials:   6,
		Seed:     42,
		MaxSteps: 1 << 14,
	}
}

func TestParseSweepStringsAndObjects(t *testing.T) {
	data := []byte(`{
		"models": [
			"edgemeg:n=64,p=0.03,q=0.27",
			{"name": "static", "params": {"topology": "torus", "m": 8}}
		],
		"protocols": ["flood", {"name": "push", "params": {"k": 2}}],
		"trials": 6,
		"seed": 42,
		"max_steps": 16384
	}`)
	sw, err := study.ParseSweep(data)
	if err != nil {
		t.Fatal(err)
	}
	want := baseSweep()
	want.Protocols = want.Protocols[:2]
	if !reflect.DeepEqual(sw.Keys(), want.Keys()) {
		t.Fatalf("parsed keys = %v, want %v", sw.Keys(), want.Keys())
	}
	// The Sweep round-trips through its own JSON marshalling.
	out, err := json.Marshal(sw)
	if err != nil {
		t.Fatal(err)
	}
	sw2, err := study.ParseSweep(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sw, sw2) {
		t.Fatalf("sweep does not round-trip:\n%+v\nvs\n%+v", sw, sw2)
	}
}

func TestParseSweepRejectsBadInput(t *testing.T) {
	bad := []string{
		`{"models": ["no-such-model"], "protocols": ["flood"], "trials": 3}`,
		`{"models": ["edgemeg"], "protocols": ["no-such-protocol"], "trials": 3}`,
		`{"models": ["edgemeg"], "protocols": ["flood"], "trials": 0}`,
		`{"models": [], "protocols": ["flood"], "trials": 3}`,
		`{"models": ["edgemeg"], "protocols": [], "trials": 3}`,
		`{"models": ["edgemeg:n=:="], "protocols": ["flood"], "trials": 3}`,
		`{"models": [42], "protocols": ["flood"], "trials": 3}`,
		`{"models": ["edgemeg:n=64", {"name": "edgemeg", "params": {"n": 64}}], "protocols": ["flood"], "trials": 3}`,
		`{"models": ["edgemeg"], "protocols": ["flood", "flood"], "trials": 3}`,
	}
	for _, data := range bad {
		if _, err := study.ParseSweep([]byte(data)); err == nil {
			t.Errorf("ParseSweep(%s) succeeded, want error", data)
		}
	}
}

// TestRunSweepMatchesGrid pins the re-plumbing contract: the declarative
// sweep path produces exactly the per-trial numbers of the study.Grid call
// it subsumes (the E18 acceptance criterion, in miniature).
func TestRunSweepMatchesGrid(t *testing.T) {
	sw := baseSweep()
	records, err := study.RunSweep(sw, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := study.Grid(study.Study{
		Trials:   sw.Trials,
		Seed:     sw.Seed,
		MaxSteps: sw.MaxSteps,
	}, sw.Models, sw.Protocols)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(cells) {
		t.Fatalf("sweep ran %d cells, grid %d", len(records), len(cells))
	}
	for i, rec := range records {
		cell := cells[i]
		if rec.Model != cell.Model || rec.Protocol != cell.Protocol || rec.N != cell.N {
			t.Fatalf("cell %d identity mismatch: %+v vs %+v", i, rec.Key(), cell)
		}
		for trial, res := range cell.Results {
			if rec.Times[trial] != res.Time || rec.HalfTimes[trial] != res.HalfTime || rec.Informed[trial] != res.Informed {
				t.Fatalf("cell %d trial %d: record (%d, %d, %d) vs result %+v",
					i, trial, rec.Times[trial], rec.HalfTimes[trial], rec.Informed[trial], res)
			}
		}
	}
}

// renderReports aggregates records and renders both report forms.
func renderReports(t *testing.T, records []study.CellRecord) (csv, md string) {
	t.Helper()
	rows := study.Report(records)
	var csvBuf, mdBuf bytes.Buffer
	if err := study.WriteCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	if err := study.WriteMarkdown(&mdBuf, rows); err != nil {
		t.Fatal(err)
	}
	return csvBuf.String(), mdBuf.String()
}

// TestSweepResumeByteIdentical is the checkpoint/resume contract: a sweep
// killed after any prefix of its cells and resumed — with a different
// Workers value, from a checkpoint whose trailing line was truncated
// mid-write — aggregates to byte-identical CSV and markdown reports.
func TestSweepResumeByteIdentical(t *testing.T) {
	sw := baseSweep()
	sw.Workers = 3

	// The uninterrupted run, checkpointing every cell.
	var full bytes.Buffer
	fullRecords, err := study.RunSweep(sw, nil, func(rec study.CellRecord) error {
		return study.WriteCheckpoint(&full, rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, wantMD := renderReports(t, fullRecords)

	lines := strings.SplitAfter(strings.TrimSuffix(full.String(), "\n"), "\n")
	if len(lines) != len(sw.Keys()) {
		t.Fatalf("checkpoint has %d lines, want %d", len(lines), len(sw.Keys()))
	}
	for kill := 0; kill <= len(lines); kill++ {
		// A run killed after `kill` completed cells: the checkpoint holds
		// the first `kill` records plus, when a cell was in flight, a
		// truncated half-written line.
		ckpt := strings.Join(lines[:kill], "")
		if kill < len(lines) {
			ckpt += lines[kill][:len(lines[kill])/2]
		}
		records, err := study.ReadCheckpoint(strings.NewReader(ckpt))
		if err != nil {
			t.Fatalf("kill=%d: reading truncated checkpoint: %v", kill, err)
		}
		if len(records) != kill {
			t.Fatalf("kill=%d: checkpoint recovered %d records", kill, len(records))
		}

		// Resume with a different Workers value; only the missing cells
		// may run.
		resumed := sw
		resumed.Workers = 1
		ran := 0
		mergedRecords, err := study.RunSweep(resumed, study.Index(records), func(study.CellRecord) error {
			ran++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if ran != len(lines)-kill {
			t.Fatalf("kill=%d: resume ran %d cells, want %d", kill, ran, len(lines)-kill)
		}
		gotCSV, gotMD := renderReports(t, mergedRecords)
		if gotCSV != wantCSV {
			t.Fatalf("kill=%d: resumed CSV differs:\n%s\nvs\n%s", kill, gotCSV, wantCSV)
		}
		if gotMD != wantMD {
			t.Fatalf("kill=%d: resumed markdown differs:\n%s\nvs\n%s", kill, gotMD, wantMD)
		}
	}
}

func TestReadCheckpointRejectsMidFileCorruption(t *testing.T) {
	var buf bytes.Buffer
	rec := study.CellRecord{
		Model: "m", Protocol: "p", Trials: 1, Seed: 1, N: 4,
		Times: []int{3}, HalfTimes: []int{2}, Informed: []int{4},
	}
	if err := study.WriteCheckpoint(&buf, rec); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	// Garbage in the middle is corruption, not a crash artifact.
	if _, err := study.ReadCheckpoint(strings.NewReader("{garbage\n" + good)); err == nil {
		t.Fatal("mid-file corruption not rejected")
	}
	// A final line whose slices disagree with its trial count is dropped
	// like any other truncated tail...
	short := `{"model":"m","protocol":"p","trials":3,"times":[1],"half_times":[1],"informed":[1]}`
	records, err := study.ReadCheckpoint(strings.NewReader(good + short + "\n"))
	if err != nil || len(records) != 1 {
		t.Fatalf("inconsistent tail: records=%d err=%v", len(records), err)
	}
	// ...but mid-file it is corruption.
	if _, err := study.ReadCheckpoint(strings.NewReader(short + "\n" + good)); err == nil {
		t.Fatal("mid-file inconsistent record not rejected")
	}
	// Duplicate keys: the later record wins in the index.
	rec2 := rec
	rec2.Times = []int{7}
	var dup bytes.Buffer
	_ = study.WriteCheckpoint(&dup, rec)
	_ = study.WriteCheckpoint(&dup, rec2)
	records, err = study.ReadCheckpoint(&dup)
	if err != nil {
		t.Fatal(err)
	}
	idx := study.Index(records)
	if len(idx) != 1 || idx[rec.Key()].Times[0] != 7 {
		t.Fatalf("duplicate key resolution wrong: %+v", idx)
	}
}

func TestReportAggregates(t *testing.T) {
	records := []study.CellRecord{
		{
			Model: "zzz", Protocol: "flood", Trials: 4, Seed: 1, N: 10,
			Times:     []int{4, 2, -1, 6},
			HalfTimes: []int{2, 1, -1, 3},
			Informed:  []int{10, 10, 5, 10},
		},
		{
			Model: "aaa", Protocol: "flood", Trials: 2, Seed: 1, N: 10,
			Times:     []int{-1, -1},
			HalfTimes: []int{-1, -1},
			Informed:  []int{1, 1},
		},
	}
	rows := study.Report(records)
	if len(rows) != 2 || rows[0].Model != "aaa" || rows[1].Model != "zzz" {
		t.Fatalf("rows not sorted by model: %+v", rows)
	}
	r := rows[1]
	if r.Completed != 3 || r.MedianTime != 4 || r.MeanTime != 4 || r.MedianHalf != 2 {
		t.Fatalf("aggregates wrong: %+v", r)
	}
	if math.Abs(r.InformedFrac-0.875) > 1e-12 {
		t.Fatalf("informed fraction = %v, want 0.875", r.InformedFrac)
	}
	// No completed trials: NaN stats, CSV and markdown still render.
	if !math.IsNaN(rows[0].MedianTime) || rows[0].Completed != 0 {
		t.Fatalf("empty-cell row wrong: %+v", rows[0])
	}
	csv, md := renderReports(t, records)
	if !strings.Contains(csv, "aaa,flood,2,1,0,NaN") {
		t.Fatalf("CSV NaN rendering wrong:\n%s", csv)
	}
	if !strings.Contains(md, "| -") {
		t.Fatalf("markdown NaN rendering wrong:\n%s", md)
	}
	// Spec strings with commas must be quoted in CSV.
	records[0].Model = "edgemeg:n=10,p=0.1"
	csv, _ = renderReports(t, records)
	if !strings.Contains(csv, `"edgemeg:n=10,p=0.1"`) {
		t.Fatalf("CSV comma quoting missing:\n%s", csv)
	}
}

// TestReportCostColumnsGated pins the cost-column gate: the report renders
// median_messages/mean_messages/useless_frac exactly when EVERY record
// carries per-trial costs, so a checkpoint written before cost accounting
// existed — or a resumed mix of old and new records — keeps producing the
// byte stream it always did.
func TestReportCostColumnsGated(t *testing.T) {
	old := study.CellRecord{
		Model: "aaa", Protocol: "flood", Trials: 2, Seed: 1, N: 10,
		Times:     []int{4, 2},
		HalfTimes: []int{2, 1},
		Informed:  []int{10, 10},
	}
	costed := study.CellRecord{
		Model: "zzz", Protocol: "flood", Trials: 2, Seed: 1, N: 10,
		Times:     []int{4, 2},
		HalfTimes: []int{2, 1},
		Informed:  []int{10, 10},
		Messages:  []int64{30, 20},
		Useless:   []int64{21, 11},
	}
	legacyCSV, legacyMD := renderReports(t, []study.CellRecord{old})
	if strings.Contains(legacyCSV, "median_messages") || strings.Contains(legacyMD, "median_messages") {
		t.Fatalf("pre-cost record rendered cost columns:\n%s", legacyCSV)
	}
	mixedCSV, _ := renderReports(t, []study.CellRecord{old, costed})
	if strings.Contains(mixedCSV, "median_messages") {
		t.Fatalf("mixed records rendered cost columns:\n%s", mixedCSV)
	}
	// The legacy record renders the identical line whether or not a costed
	// record sits beside it.
	for _, line := range strings.Split(legacyCSV, "\n")[1:] {
		if line != "" && !strings.Contains(mixedCSV, line) {
			t.Fatalf("legacy row changed in mixed report: %q missing from\n%s", line, mixedCSV)
		}
	}
	csv, md := renderReports(t, []study.CellRecord{costed})
	if !strings.HasPrefix(csv, "model,protocol,trials,seed,completed,median_time,mean_time,p95_time,median_half,informed_frac,median_messages,mean_messages,useless_frac\n") {
		t.Fatalf("all-cost CSV header wrong:\n%s", csv)
	}
	// 50 messages total, 32 useless: median 25, mean 25, frac 0.64.
	if !strings.Contains(csv, ",25,25,0.64") {
		t.Fatalf("cost cells wrong:\n%s", csv)
	}
	if !strings.Contains(md, "| 0.640") {
		t.Fatalf("markdown useless_frac wrong:\n%s", md)
	}
	// Zero messages: useless_frac is NaN, rendered not crashed.
	zero := costed
	zero.Messages = []int64{0, 0}
	zero.Useless = []int64{0, 0}
	csv, md = renderReports(t, []study.CellRecord{zero})
	if !strings.Contains(csv, ",0,0,NaN") || !strings.Contains(md, "| - ") {
		t.Fatalf("0/0 useless_frac rendering wrong:\ncsv: %s\nmd: %s", csv, md)
	}
}

// TestValidateCostPairs pins that a record with half its cost data is
// damage, not a pre-cost record.
func TestValidateCostPairs(t *testing.T) {
	base := study.CellRecord{
		Model: "m", Protocol: "p", Trials: 2, Seed: 1, N: 4,
		Times: []int{1, 2}, HalfTimes: []int{1, 1}, Informed: []int{4, 4},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("pre-cost record must validate: %v", err)
	}
	lone := base
	lone.Messages = []int64{3, 4}
	if err := lone.Validate(); err == nil {
		t.Fatal("record with Messages but no Useless must not validate")
	}
	short := base
	short.Messages = []int64{3}
	short.Useless = []int64{1}
	if err := short.Validate(); err == nil {
		t.Fatal("record with short cost arrays must not validate")
	}
	full := base
	full.Messages = []int64{3, 4}
	full.Useless = []int64{0, 1}
	if err := full.Validate(); err != nil {
		t.Fatalf("costed record must validate: %v", err)
	}
}

// TestOpenCheckpointHealsSeveredTail pins the resume-append contract: a
// checkpoint ending in a kill-severed partial line must be truncated back
// to its last intact record before appending, so the next record starts on
// a fresh line instead of gluing onto the fragment (which would corrupt
// every later load).
func TestOpenCheckpointHealsSeveredTail(t *testing.T) {
	recA := study.CellRecord{
		Model: "a", Protocol: "p", Trials: 1, Seed: 1, N: 4,
		Times: []int{3}, HalfTimes: []int{2}, Informed: []int{4},
	}
	recB := recA
	recB.Model = "b"
	var buf bytes.Buffer
	if err := study.WriteCheckpoint(&buf, recA); err != nil {
		t.Fatal(err)
	}
	full := buf.String()

	path := t.TempDir() + "/ck.jsonl"
	if err := os.WriteFile(path, []byte(full+full[:len(full)/2]), 0o644); err != nil {
		t.Fatal(err)
	}
	f, done, err := study.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("severed checkpoint loaded %d records, want 1", len(done))
	}
	if err := study.WriteCheckpoint(f, recB); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The healed file must hold exactly both records — severed tail gone,
	// appended record intact — and keep loading cleanly.
	records, err := study.ReadCheckpoint(strings.NewReader(readFile(t, path)))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[0].Model != "a" || records[1].Model != "b" {
		t.Fatalf("healed checkpoint wrong: %+v", records)
	}
	if _, done, err = study.OpenCheckpoint(path); err != nil || len(done) != 2 {
		t.Fatalf("reopen: done=%d err=%v", len(done), err)
	}

	// The nastiest cut: the kill severed exactly the trailing newline, so
	// the final record is complete JSON. It must be kept AND the next
	// append must not glue onto it.
	if err := os.WriteFile(path, []byte(full+strings.TrimSuffix(full, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	f, done, err = study.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 { // recA twice — one key
		t.Fatalf("newline-less checkpoint loaded %d keys, want 1", len(done))
	}
	if err := study.WriteCheckpoint(f, recB); err != nil {
		t.Fatal(err)
	}
	f.Close()
	records, err = study.ReadCheckpoint(strings.NewReader(readFile(t, path)))
	if err != nil || len(records) != 3 || records[2].Model != "b" {
		t.Fatalf("newline repair failed: records=%+v err=%v\nfile:\n%s", records, err, readFile(t, path))
	}
}

// TestRunSweepRejectsMismatchedCheckpoint: the resume key omits Source and
// MaxSteps, so RunSweep must refuse a checkpointed cell recorded under
// different values rather than silently reuse it.
func TestRunSweepRejectsMismatchedCheckpoint(t *testing.T) {
	sw := baseSweep()
	records, err := study.RunSweep(sw, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, edit := range []func(*study.Sweep){
		func(s *study.Sweep) { s.MaxSteps = 1 << 10 },
		func(s *study.Sweep) { s.Source = 1 },
	} {
		changed := sw
		edit(&changed)
		if _, err := study.RunSweep(changed, study.Index(records), nil); err == nil {
			t.Fatalf("RunSweep reused a checkpoint recorded under different source/max_steps")
		}
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// captureSink collects telemetry samples in memory.
type captureSink struct {
	mu      sync.Mutex
	samples []telemetry.Sample
}

func (c *captureSink) Append(s telemetry.Sample) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.samples = append(c.samples, s)
	return nil
}

// TestRunSweepTelemetry wires a collector through a small sweep and checks
// the counters a capture would record: cells/trials/steps totals, a
// positive scratch footprint, and one per-cell sample from SampleNow.
func TestRunSweepTelemetry(t *testing.T) {
	sw := baseSweep()
	col := telemetry.New(telemetry.Options{NoRuntime: true})
	sink := &captureSink{}
	col.Start(sink)
	half := sw.Keys()[:3]
	done := map[study.Key]study.CellRecord{}
	records, err := study.RunSweep(sw, nil, func(rec study.CellRecord) error {
		if len(done) < len(half) {
			done[rec.Key()] = rec
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = study.RunSweepOpts(sw, study.SweepOpts{Done: done, Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Stop(); err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot()
	total := int64(len(sw.Keys()))
	resumed := int64(len(done))
	if got := s.Values["sweep_cells_total"]; got != total-resumed {
		t.Fatalf("sweep_cells_total = %d, want %d", got, total-resumed)
	}
	if got := s.Values["sweep_cells_resumed_total"]; got != resumed {
		t.Fatalf("sweep_cells_resumed_total = %d, want %d", got, resumed)
	}
	if got := s.Values["sweep_trials_total"]; got != (total-resumed)*int64(sw.Trials) {
		t.Fatalf("sweep_trials_total = %d, want %d", got, (total-resumed)*int64(sw.Trials))
	}
	var wantSteps int64
	for _, rec := range records[len(half):] {
		for _, steps := range rec.Times {
			wantSteps += int64(steps)
		}
	}
	if got := s.Values["sweep_steps_total"]; got != wantSteps {
		t.Fatalf("sweep_steps_total = %d, want %d", got, wantSteps)
	}
	if got := s.Values["scratch_bytes"]; got <= 0 {
		t.Fatalf("scratch_bytes = %d, want > 0", got)
	}
	// The sweep's edgemeg cells ran through the delta flooding engine, so
	// the churn gauges must report its per-step edge turnover. At n = 64,
	// p = 0.03, q = 0.27 the stationary churn is ≈ 54 edges/step in each
	// direction; the gauges aggregate process-wide, so assert positivity
	// and sanity (bounded by the pair count), not an exact value.
	for _, g := range []string{"born_per_step", "died_per_step"} {
		if got := s.Values[g]; got <= 0 || got > 64*63/2 {
			t.Fatalf("%s = %d, want in (0, pairs]", g, got)
		}
	}
	// SampleNow fires once per fresh cell; Stop appends one more.
	sink.mu.Lock()
	n := len(sink.samples)
	sink.mu.Unlock()
	if n < int(total-resumed)+1 {
		t.Fatalf("got %d samples, want >= %d (per-cell + final)", n, int(total-resumed)+1)
	}
}

// TestRunSweepMovedGauge runs a mobility cell — a model that reports node
// motion through dyngraph.MoveReporter — and checks that the
// moved_per_step gauge is registered and sampled alongside
// born_per_step/died_per_step. The gauges aggregate process-wide (every
// delta-engine step this test binary ran divides the ratio), so the moved
// value itself may round to zero under the full suite; the deterministic
// per-run moved count is pinned at the flood layer
// (TestChurnTotalsCountMovedNodes), and the churn gauges must at least
// report the waypoint cells' edge turnover.
func TestRunSweepMovedGauge(t *testing.T) {
	sw := study.Sweep{
		Models: []spec.Spec{
			model.New("waypoint").WithInt("n", 48).WithFloat("L", 10).
				WithFloat("r", 1.5).WithFloat("vmin", 1),
		},
		Protocols: []spec.Spec{protocol.New("flood")},
		Trials:    4,
		Seed:      11,
		MaxSteps:  1 << 12,
	}
	col := telemetry.New(telemetry.Options{NoRuntime: true})
	col.Start(&captureSink{})
	if _, err := study.RunSweepOpts(sw, study.SweepOpts{Telemetry: col}); err != nil {
		t.Fatal(err)
	}
	if err := col.Stop(); err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot()
	if _, ok := s.Values["moved_per_step"]; !ok {
		t.Fatal("moved_per_step gauge not registered")
	}
	if got := s.Values["moved_per_step"]; got < 0 || got > 48*47/2 {
		t.Fatalf("moved_per_step = %d, want in [0, pairs]", got)
	}
	for _, g := range []string{"born_per_step", "died_per_step"} {
		if got := s.Values[g]; got <= 0 || got > 48*47/2 {
			t.Fatalf("%s = %d, want in (0, pairs]", g, got)
		}
	}
}
