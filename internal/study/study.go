// Package study is the experiment engine of the simulation API: it runs
// (model, protocol) pairs — both selected by spec strings against their
// registries — for many independent trials on a bounded worker pool, and
// reports per-cell statistics. It subsumes the old flood.Trials/Factory
// runner: every grid-style experiment (bench experiments, examples, CLIs)
// goes through this package, so trial seeding, parallelism, and result
// summarization are implemented once.
//
// Reproducibility contract: a Study derives one model seed and one
// protocol seed per trial from its master Seed via rng.Seed, builds a
// fresh model and a fresh protocol instance for every trial, and returns
// results in trial order — so equal Studies yield identical Cells for any
// Workers value. Buffers are another matter: each worker owns one
// flood.Scratch reused by every trial it runs, so a 10k-trial cell pays
// the engine's allocation cost once per worker, not once per trial.
//
// On top of the single-cell engine sits the declarative sweep layer
// (sweep.go, checkpoint.go, report.go): a Sweep declares a whole
// model×protocol grid, RunSweep executes it with JSONL checkpointing and
// crash-safe resume keyed by (model, protocol, trials, seed), and Report/
// WriteCSV/WriteMarkdown aggregate checkpoint records into the tables the
// paper reports. cmd/sweep is the CLI front end.
package study

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/stats"
)

// Stream tags separating the per-trial model and protocol RNG streams
// derived from a Study's master seed.
const (
	modelStream uint64 = 0x4D4F44 // "MOD"
	protoStream uint64 = 0x50524F // "PRO"
)

// Study describes one grid cell: a registered model spec crossed with a
// registered protocol spec, run for Trials independent trials.
type Study struct {
	// Model and Protocol name registered definitions, with parameters.
	Model    spec.Spec
	Protocol spec.Spec
	// Source is the initially informed node (the paper's s).
	Source int
	// Trials is the number of independent executions; each builds a fresh
	// model and protocol from per-trial seeds.
	Trials int
	// Seed is the master seed; every trial's model and protocol streams
	// derive from it via rng.Seed.
	Seed uint64
	// Workers bounds trial parallelism; 0 means GOMAXPROCS.
	Workers int
	// MaxSteps caps each run (0 = flood.DefaultMaxSteps); KeepTimeline
	// records the full |I_t| series per trial.
	MaxSteps     int
	KeepTimeline bool
}

// Cell is the outcome of one Study: per-trial results in trial order plus
// the completed-time summary.
type Cell struct {
	// Model and Protocol are the canonical spec strings of the cell.
	Model    string
	Protocol string
	// N is the node count of the built model (0 when the study ran zero
	// trials and so never built one).
	N int
	// Results holds one entry per trial, in trial order.
	Results []flood.Result
	// Times summarizes the completion times of completed trials.
	Times stats.Summary
	// Messages and Useless summarize the per-trial message costs
	// (flood.Result.Messages/Useless) over ALL trials, completed or not —
	// an incomplete run's cost is real spend, not a missing value.
	Messages stats.Summary
	Useless  stats.Summary
	// Incomplete counts trials that hit MaxSteps (or died) uninformed.
	Incomplete int
}

// Run executes the study and returns its cell. Specs are validated before
// any trial runs; an unknown name or bad parameter fails fast.
func Run(s Study) (Cell, error) {
	if _, _, err := model.Resolve(s.Model); err != nil {
		return Cell{}, err
	}
	if _, _, err := protocol.Resolve(s.Protocol); err != nil {
		return Cell{}, err
	}
	var results []flood.Result
	var n int
	if s.Trials > 0 {
		// Model and protocol constructor errors (parameter validation
		// beyond spec types) do not depend on the seed: run trial 0
		// synchronously so they surface as errors, not worker panics; the
		// pool then covers the remaining trials with MustBuild.
		d0, err := model.Build(s.Model, rng.Seed(s.Seed, modelStream, 0))
		if err != nil {
			return Cell{}, err
		}
		n = d0.N()
		if s.Source < 0 || s.Source >= n {
			return Cell{}, fmt.Errorf("study: source %d out of range for %s (n = %d)", s.Source, s.Model, n)
		}
		p0, err := protocol.Build(s.Protocol, rng.Seed(s.Seed, protoStream, 0))
		if err != nil {
			return Cell{}, err
		}
		opts := flood.Opts{MaxSteps: s.MaxSteps, KeepTimeline: s.KeepTimeline}
		results = make([]flood.Result, 1, s.Trials)
		results[0] = p0.Run(d0, s.Source, opts)
		results = append(results, Trials(func(trial int) (dyngraph.Dynamic, protocol.Protocol, int) {
			trial++ // trial 0 already ran; the pool covers 1..Trials-1
			d := model.MustBuild(s.Model, rng.Seed(s.Seed, modelStream, uint64(trial)))
			p := protocol.MustBuild(s.Protocol, rng.Seed(s.Seed, protoStream, uint64(trial)))
			return d, p, s.Source
		}, s.Trials-1, TrialsOpts{Opts: opts, Workers: s.Workers, ScratchBytes: &scratchHighWater})...)
	}
	cell := Cell{
		Model:    s.Model.String(),
		Protocol: s.Protocol.String(),
		N:        n,
		Results:  results,
	}
	times, incomplete := TimesOf(results)
	cell.Times = stats.Summarize(times)
	cell.Incomplete = incomplete
	msgs, useless := CostsOf(results)
	cell.Messages = stats.Summarize(msgs)
	cell.Useless = stats.Summarize(useless)
	return cell, nil
}

// MustRun is Run for studies whose specs are static program text; it
// panics on error.
func MustRun(s Study) Cell {
	cell, err := Run(s)
	if err != nil {
		panic(err)
	}
	return cell
}

// Grid runs base once per (model, protocol) pair, in the given order
// (models outer, protocols inner), and returns the cells. All cells share
// base's trials/seed/workers/options, so a protocol comparison across
// models is one call.
func Grid(base Study, models, protocols []spec.Spec) ([]Cell, error) {
	cells := make([]Cell, 0, len(models)*len(protocols))
	for _, m := range models {
		for _, p := range protocols {
			s := base
			s.Model, s.Protocol = m, p
			cell, err := Run(s)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// Factory builds the per-trial ingredients of one execution: a fresh
// dynamic graph, a fresh protocol instance, and the source node.
// Implementations must derive both from the trial index (rng.Seed) so
// trials are independent and the whole run is reproducible; randomized
// protocols must not be shared across trials.
type Factory func(trial int) (d dyngraph.Dynamic, p protocol.Protocol, source int)

// TrialsOpts configures a factory-level trial run.
type TrialsOpts struct {
	// Opts configures each execution. Trials gives every worker a private
	// flood.Scratch, overriding Opts.Scratch: one worker's buffers serve
	// all its trials instead of being reallocated per trial, and a
	// caller-supplied scratch shared across workers would race.
	Opts flood.Opts
	// Workers bounds the number of concurrent trials; 0 means GOMAXPROCS.
	Workers int
	// ScratchBytes, when non-nil, receives (atomic max) the largest
	// per-worker scratch footprint after each worker drains its trials —
	// one flood.Scratch.Bytes call per worker, entirely off the trial hot
	// path, feeding the telemetry scratch_bytes gauge.
	ScratchBytes *atomic.Int64
}

// Trials runs `trials` independent executions in a bounded worker pool and
// returns per-trial results in trial order. It is the factory-level core
// under Run, for experiments whose models are built by hand rather than
// registered (custom chains, wrapped instances). Results are identical for
// any Workers value: engines guarantee results never depend on the scratch
// state each worker carries across its trials.
func Trials(factory Factory, trials int, opts TrialsOpts) []flood.Result {
	if trials <= 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	results := make([]flood.Result, trials)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wopts := opts.Opts
			wopts.Scratch = flood.NewScratch()
			for trial := range work {
				d, p, source := factory(trial)
				results[trial] = p.Run(d, source, wopts)
			}
			if opts.ScratchBytes != nil {
				atomicMax(opts.ScratchBytes, wopts.Scratch.Bytes())
			}
			// Harvest the delta engines' churn stream — one read per worker
			// drain, off the trial hot path, like the scratch footprint.
			if b, d, m, s := wopts.Scratch.ChurnTotals(); s > 0 {
				churnBorn.Add(b)
				churnDied.Add(d)
				churnMoved.Add(m)
				churnSteps.Add(s)
			}
		}()
	}
	for trial := 0; trial < trials; trial++ {
		work <- trial
	}
	close(work)
	wg.Wait()
	return results
}

// scratchHighWater tracks the largest per-worker flood.Scratch footprint
// observed by any study run in this process. It is deliberately NOT part
// of Cell: scratch capacities depend on how trials were packed onto
// workers, and a Cell must stay a pure function of the Study for any
// Workers value. A process-wide high-water mark is exactly what the
// telemetry scratch_bytes gauge wants anyway.
var scratchHighWater atomic.Int64

// ScratchHighWater returns the largest per-worker scratch footprint
// (flood.Scratch.Bytes) observed by any study run so far in this process
// — the telemetry scratch_bytes gauge source. Zero until a run with at
// least two trials completes (trial 0 runs without a pooled scratch).
func ScratchHighWater() int64 { return scratchHighWater.Load() }

// churnBorn/churnDied/churnMoved/churnSteps accumulate, process-wide, the
// churn the delta flooding engines streamed through study workers: edges
// born, edges died, nodes moved (models with dyngraph.MoveReporter), and
// model steps consumed. Like scratchHighWater they are deliberately NOT
// part of Cell — they aggregate over whatever mix of runs the process
// performed, which is exactly the shape of a telemetry gauge and nothing
// else.
var churnBorn, churnDied, churnMoved, churnSteps atomic.Int64

// ChurnBornPerStep returns the mean number of edges born per model step
// across every delta-engine trial the process has run (rounded to the
// nearest integer) — the born_per_step telemetry gauge source. Zero until
// a pooled delta-engine trial completes, like ScratchHighWater.
func ChurnBornPerStep() int64 { return ratioRounded(&churnBorn) }

// ChurnDiedPerStep is ChurnBornPerStep for edge deaths (died_per_step).
func ChurnDiedPerStep() int64 { return ratioRounded(&churnDied) }

// ChurnMovedPerStep is ChurnBornPerStep for node motion (moved_per_step):
// the mean number of nodes that changed position or state per model step,
// reported only by models exposing dyngraph.MoveReporter (the geometric
// mobility family and the node-MEGs).
func ChurnMovedPerStep() int64 { return ratioRounded(&churnMoved) }

// ratioRounded divides a churn total by the step total, rounding half up.
func ratioRounded(total *atomic.Int64) int64 {
	steps := churnSteps.Load()
	if steps == 0 {
		return 0
	}
	return (total.Load() + steps/2) / steps
}

// atomicMax raises *a to v if v is larger, preserving concurrent raises.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// TimesOf extracts the completion times of completed runs and the count of
// incomplete ones.
func TimesOf(results []flood.Result) (times []float64, incomplete int) {
	times = make([]float64, 0, len(results))
	for _, r := range results {
		if r.Completed {
			times = append(times, float64(r.Time))
		} else {
			incomplete++
		}
	}
	return times, incomplete
}

// CostsOf extracts the per-trial message costs, over all trials.
func CostsOf(results []flood.Result) (msgs, useless []float64) {
	msgs = make([]float64, len(results))
	useless = make([]float64, len(results))
	for i, r := range results {
		msgs[i] = float64(r.Messages)
		useless[i] = float64(r.Useless)
	}
	return msgs, useless
}

// trialJSON is the JSON-lines record of one trial.
type trialJSON struct {
	Model        string  `json:"model"`
	Protocol     string  `json:"protocol"`
	Trial        int     `json:"trial"`
	Time         int     `json:"time"`
	HalfTime     int     `json:"half_time"`
	Informed     int     `json:"informed"`
	Completed    bool    `json:"completed"`
	Messages     int64   `json:"messages"`
	Useless      int64   `json:"useless"`
	Timeline     []int   `json:"timeline,omitempty"`
	CostTimeline []int64 `json:"cost_timeline,omitempty"`
}

// WriteJSONL emits one JSON object per trial, in trial order — the
// machine-readable form of the cell for downstream tooling. Timelines are
// included when the study recorded them.
func (c Cell) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for trial, r := range c.Results {
		rec := trialJSON{
			Model:        c.Model,
			Protocol:     c.Protocol,
			Trial:        trial,
			Time:         r.Time,
			HalfTime:     r.HalfTime,
			Informed:     r.Informed,
			Completed:    r.Completed,
			Messages:     r.Messages,
			Useless:      r.Useless,
			Timeline:     r.Timeline,
			CostTimeline: r.CostTimeline,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("study: emitting trial %d: %w", trial, err)
		}
	}
	return nil
}
