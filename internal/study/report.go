package study

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Row is one aggregated report line: the cell identity plus the summary
// statistics the paper's tables report — flooding-time quantiles over
// completed trials, the half time (spreading-phase boundary, Lemma 13),
// and the mean final informed fraction (1.0 unless trials hit MaxSteps).
type Row struct {
	Model     string
	Protocol  string
	Trials    int
	Seed      uint64
	Completed int
	// MedianTime, MeanTime, and P95Time summarize completion times over
	// completed trials (NaN when none completed).
	MedianTime float64
	MeanTime   float64
	P95Time    float64
	// MedianHalf is the median time to n/2 informed over trials that
	// reached it (NaN when none did).
	MedianHalf float64
	// InformedFrac is the mean final |I|/n over ALL trials, completed or
	// not.
	InformedFrac float64
	// HasCost reports whether the underlying record carried per-trial
	// message costs; the cost columns below are meaningful only when true.
	// Renderers emit them only when EVERY row has them (see costColumns),
	// so checkpoints from before cost accounting report byte-identically.
	HasCost bool
	// MedianMsgs and MeanMsgs summarize per-trial Messages over ALL
	// trials; UselessFrac is total Useless over total Messages (NaN when
	// no messages were sent).
	MedianMsgs  float64
	MeanMsgs    float64
	UselessFrac float64
}

// Report aggregates checkpoint records into rows sorted by (model,
// protocol, trials, seed) — a canonical order independent of how the
// records were produced, so a resumed sweep reports byte-identically to an
// uninterrupted one.
func Report(records []CellRecord) []Row {
	rows := make([]Row, 0, len(records))
	for _, rec := range records {
		row := Row{
			Model:    rec.Model,
			Protocol: rec.Protocol,
			Trials:   rec.Trials,
			Seed:     rec.Seed,
		}
		var times, halves []float64
		var informed float64
		for i := 0; i < rec.Trials; i++ {
			if rec.Times[i] >= 0 {
				row.Completed++
				times = append(times, float64(rec.Times[i]))
			}
			if rec.HalfTimes[i] >= 0 {
				halves = append(halves, float64(rec.HalfTimes[i]))
			}
			if rec.N > 0 {
				informed += float64(rec.Informed[i]) / float64(rec.N)
			}
		}
		row.MedianTime = stats.Median(times)
		row.MeanTime = stats.Mean(times)
		row.P95Time = stats.Quantile(times, 0.95)
		row.MedianHalf = stats.Median(halves)
		row.InformedFrac = informed / float64(rec.Trials)
		if rec.HasCost() {
			row.HasCost = true
			msgs := make([]float64, rec.Trials)
			var totalMsgs, totalUseless float64
			for i := 0; i < rec.Trials; i++ {
				msgs[i] = float64(rec.Messages[i])
				totalMsgs += float64(rec.Messages[i])
				totalUseless += float64(rec.Useless[i])
			}
			row.MedianMsgs = stats.Median(msgs)
			row.MeanMsgs = stats.Mean(msgs)
			row.UselessFrac = totalUseless / totalMsgs // NaN when 0/0
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Protocol != b.Protocol {
			return a.Protocol < b.Protocol
		}
		if a.Trials != b.Trials {
			return a.Trials < b.Trials
		}
		return a.Seed < b.Seed
	})
	return rows
}

// reportHeader names the always-present report columns, shared by the CSV
// and markdown renderers so the two stay aligned; costHeader appends the
// message-cost columns when the rows carry them.
var reportHeader = []string{
	"model", "protocol", "trials", "seed", "completed",
	"median_time", "mean_time", "p95_time", "median_half", "informed_frac",
}

var costHeader = []string{"median_messages", "mean_messages", "useless_frac"}

// costColumns gates the cost columns: they are rendered only when every
// row carries cost data. A report over pre-cost checkpoint records — or a
// mix of old and new records after resuming an old checkpoint — therefore
// produces the exact byte stream it always did, preserving the sweep
// layer's resume-report-byte-identity contract across the format change.
func costColumns(rows []Row) bool {
	for _, r := range rows {
		if !r.HasCost {
			return false
		}
	}
	return len(rows) > 0
}

// header returns the column names for rows, with cost columns when gated in.
func header(cost bool) []string {
	if !cost {
		return reportHeader
	}
	return append(append([]string{}, reportHeader...), costHeader...)
}

// csvCells renders a row with full float precision, for machine
// consumption.
func (r Row) csvCells(cost bool) []string {
	cells := []string{
		r.Model, r.Protocol,
		strconv.Itoa(r.Trials),
		strconv.FormatUint(r.Seed, 10),
		strconv.Itoa(r.Completed),
		gfloat(r.MedianTime), gfloat(r.MeanTime), gfloat(r.P95Time),
		gfloat(r.MedianHalf),
		gfloat(r.InformedFrac),
	}
	if cost {
		cells = append(cells, gfloat(r.MedianMsgs), gfloat(r.MeanMsgs), gfloat(r.UselessFrac))
	}
	return cells
}

// markdownCells renders a row compactly for human-facing tables; NaN
// (no completed trials) prints as "-".
func (r Row) markdownCells(cost bool) []string {
	cells := []string{
		r.Model, r.Protocol,
		strconv.Itoa(r.Trials),
		strconv.FormatUint(r.Seed, 10),
		fmt.Sprintf("%d/%d", r.Completed, r.Trials),
		ffloat(r.MedianTime), ffloat(r.MeanTime), ffloat(r.P95Time),
		ffloat(r.MedianHalf),
		fmt.Sprintf("%.3f", r.InformedFrac),
	}
	if cost {
		cells = append(cells, ffloat(r.MedianMsgs), ffloat(r.MeanMsgs), pfloat(r.UselessFrac))
	}
	return cells
}

func gfloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func ffloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// pfloat renders a fraction with three decimals for markdown ("-" for NaN).
func pfloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// WriteCSV emits the rows as CSV with a header line. Fields containing
// commas — every parameterized spec string — are quoted. Message-cost
// columns are appended when every row carries them (see costColumns).
func WriteCSV(w io.Writer, rows []Row) error {
	cost := costColumns(rows)
	lines := make([][]string, 0, len(rows)+1)
	lines = append(lines, header(cost))
	for _, r := range rows {
		lines = append(lines, r.csvCells(cost))
	}
	return csv.NewWriter(w).WriteAll(lines)
}

// WriteMarkdown emits the rows as a GitHub-flavored markdown table with
// columns padded to equal width, readable both rendered and raw.
// Message-cost columns are appended when every row carries them.
func WriteMarkdown(w io.Writer, rows []Row) error {
	cost := costColumns(rows)
	head := header(cost)
	table := make([][]string, 0, len(rows)+1)
	table = append(table, head)
	for _, r := range rows {
		table = append(table, r.markdownCells(cost))
	}
	widths := make([]int, len(head))
	for _, cells := range table {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			b.WriteString("| ")
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)+1))
		}
		b.WriteString("|")
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(table[0]); err != nil {
		return err
	}
	rule := make([]string, len(widths))
	for i, width := range widths {
		rule[i] = strings.Repeat("-", width)
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, cells := range table[1:] {
		if err := writeRow(cells); err != nil {
			return err
		}
	}
	return nil
}
