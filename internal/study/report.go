package study

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Row is one aggregated report line: the cell identity plus the summary
// statistics the paper's tables report — flooding-time quantiles over
// completed trials, the half time (spreading-phase boundary, Lemma 13),
// and the mean final informed fraction (1.0 unless trials hit MaxSteps).
type Row struct {
	Model     string
	Protocol  string
	Trials    int
	Seed      uint64
	Completed int
	// MedianTime, MeanTime, and P95Time summarize completion times over
	// completed trials (NaN when none completed).
	MedianTime float64
	MeanTime   float64
	P95Time    float64
	// MedianHalf is the median time to n/2 informed over trials that
	// reached it (NaN when none did).
	MedianHalf float64
	// InformedFrac is the mean final |I|/n over ALL trials, completed or
	// not.
	InformedFrac float64
}

// Report aggregates checkpoint records into rows sorted by (model,
// protocol, trials, seed) — a canonical order independent of how the
// records were produced, so a resumed sweep reports byte-identically to an
// uninterrupted one.
func Report(records []CellRecord) []Row {
	rows := make([]Row, 0, len(records))
	for _, rec := range records {
		row := Row{
			Model:    rec.Model,
			Protocol: rec.Protocol,
			Trials:   rec.Trials,
			Seed:     rec.Seed,
		}
		var times, halves []float64
		var informed float64
		for i := 0; i < rec.Trials; i++ {
			if rec.Times[i] >= 0 {
				row.Completed++
				times = append(times, float64(rec.Times[i]))
			}
			if rec.HalfTimes[i] >= 0 {
				halves = append(halves, float64(rec.HalfTimes[i]))
			}
			if rec.N > 0 {
				informed += float64(rec.Informed[i]) / float64(rec.N)
			}
		}
		row.MedianTime = stats.Median(times)
		row.MeanTime = stats.Mean(times)
		row.P95Time = stats.Quantile(times, 0.95)
		row.MedianHalf = stats.Median(halves)
		row.InformedFrac = informed / float64(rec.Trials)
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Protocol != b.Protocol {
			return a.Protocol < b.Protocol
		}
		if a.Trials != b.Trials {
			return a.Trials < b.Trials
		}
		return a.Seed < b.Seed
	})
	return rows
}

// reportHeader names the report columns, shared by the CSV and markdown
// renderers so the two stay aligned.
var reportHeader = []string{
	"model", "protocol", "trials", "seed", "completed",
	"median_time", "mean_time", "p95_time", "median_half", "informed_frac",
}

// csvCells renders a row with full float precision, for machine
// consumption.
func (r Row) csvCells() []string {
	return []string{
		r.Model, r.Protocol,
		strconv.Itoa(r.Trials),
		strconv.FormatUint(r.Seed, 10),
		strconv.Itoa(r.Completed),
		gfloat(r.MedianTime), gfloat(r.MeanTime), gfloat(r.P95Time),
		gfloat(r.MedianHalf),
		gfloat(r.InformedFrac),
	}
}

// markdownCells renders a row compactly for human-facing tables; NaN
// (no completed trials) prints as "-".
func (r Row) markdownCells() []string {
	return []string{
		r.Model, r.Protocol,
		strconv.Itoa(r.Trials),
		strconv.FormatUint(r.Seed, 10),
		fmt.Sprintf("%d/%d", r.Completed, r.Trials),
		ffloat(r.MedianTime), ffloat(r.MeanTime), ffloat(r.P95Time),
		ffloat(r.MedianHalf),
		fmt.Sprintf("%.3f", r.InformedFrac),
	}
}

func gfloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func ffloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// WriteCSV emits the rows as CSV with a header line. Fields containing
// commas — every parameterized spec string — are quoted.
func WriteCSV(w io.Writer, rows []Row) error {
	lines := make([][]string, 0, len(rows)+1)
	lines = append(lines, reportHeader)
	for _, r := range rows {
		lines = append(lines, r.csvCells())
	}
	return csv.NewWriter(w).WriteAll(lines)
}

// WriteMarkdown emits the rows as a GitHub-flavored markdown table with
// columns padded to equal width, readable both rendered and raw.
func WriteMarkdown(w io.Writer, rows []Row) error {
	table := make([][]string, 0, len(rows)+1)
	table = append(table, reportHeader)
	for _, r := range rows {
		table = append(table, r.markdownCells())
	}
	widths := make([]int, len(reportHeader))
	for _, cells := range table {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			b.WriteString("| ")
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)+1))
		}
		b.WriteString("|")
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(table[0]); err != nil {
		return err
	}
	rule := make([]string, len(widths))
	for i, width := range widths {
		rule[i] = strings.Repeat("-", width)
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, cells := range table[1:] {
		if err := writeRow(cells); err != nil {
			return err
		}
	}
	return nil
}
