package study

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/stats"
)

// Key identifies one sweep cell: the canonical spec strings of its model
// and protocol plus the trial count and master seed. Two cells with equal
// Keys run the identical trial set (the study engine derives every
// per-trial stream from Seed), so a checkpointed record under a Key fully
// replaces re-execution of that cell.
type Key struct {
	Model    string
	Protocol string
	Trials   int
	Seed     uint64
}

// String renders the key for logs and error messages.
func (k Key) String() string {
	return fmt.Sprintf("%s × %s (trials=%d seed=%d)", k.Model, k.Protocol, k.Trials, k.Seed)
}

// CellRecord is the checkpoint form of one completed sweep cell: its Key
// fields, the run configuration, and the per-trial outcomes — everything
// the report layer aggregates, so a finished cell never reruns. Trial i
// completed iff Times[i] >= 0; HalfTimes[i] is -1 when the run never
// reached n/2 informed.
type CellRecord struct {
	Model    string `json:"model"`
	Protocol string `json:"protocol"`
	Trials   int    `json:"trials"`
	Seed     uint64 `json:"seed"`
	Source   int    `json:"source"`
	MaxSteps int    `json:"max_steps"`
	// N is the node count of the model, the denominator of informed
	// fractions.
	N int `json:"n"`
	// Times, HalfTimes, and Informed hold one entry per trial, in trial
	// order.
	Times     []int `json:"times"`
	HalfTimes []int `json:"half_times"`
	Informed  []int `json:"informed"`
	// Messages and Useless hold the per-trial message costs, in trial
	// order (flood.Result.Messages/Useless). Records written before cost
	// accounting existed read as nil — HasCost distinguishes them, and the
	// report layer only emits cost columns when every record carries them,
	// so old checkpoints keep reporting byte-identically.
	Messages []int64 `json:"messages,omitempty"`
	Useless  []int64 `json:"useless,omitempty"`
	// WallMS is the wall-clock milliseconds the cell took on whichever
	// worker executed it. It is diagnostic only — never part of the Key,
	// never reported in CSV/markdown, and two legitimate records for the
	// same key may differ in it (two workers racing a re-leased cell).
	// Records written before the field existed read as 0.
	WallMS int64 `json:"wall_ms,omitempty"`
}

// Key returns the record's cell key.
func (r CellRecord) Key() Key {
	return Key{Model: r.Model, Protocol: r.Protocol, Trials: r.Trials, Seed: r.Seed}
}

// Record converts a completed study cell into its checkpoint record.
func Record(s Study, c Cell) CellRecord {
	rec := CellRecord{
		Model:     c.Model,
		Protocol:  c.Protocol,
		Trials:    s.Trials,
		Seed:      s.Seed,
		Source:    s.Source,
		MaxSteps:  s.MaxSteps,
		N:         c.N,
		Times:     make([]int, len(c.Results)),
		HalfTimes: make([]int, len(c.Results)),
		Informed:  make([]int, len(c.Results)),
		Messages:  make([]int64, len(c.Results)),
		Useless:   make([]int64, len(c.Results)),
	}
	for i, res := range c.Results {
		rec.Times[i] = res.Time
		rec.HalfTimes[i] = res.HalfTime
		rec.Informed[i] = res.Informed
		rec.Messages[i] = res.Messages
		rec.Useless[i] = res.Useless
	}
	return rec
}

// HasCost reports whether the record carries per-trial message costs —
// false exactly for records checkpointed before cost accounting existed.
func (r CellRecord) HasCost() bool {
	return r.Messages != nil && r.Useless != nil
}

// CompletedTimes returns the completion times of completed trials, in
// trial order.
func (r CellRecord) CompletedTimes() []float64 {
	times := make([]float64, 0, len(r.Times))
	for _, t := range r.Times {
		if t >= 0 {
			times = append(times, float64(t))
		}
	}
	return times
}

// MedianTime returns the median completion time over completed trials
// (NaN when none completed).
func (r CellRecord) MedianTime() float64 {
	return stats.Median(r.CompletedTimes())
}

// Validate checks the record's internal consistency: a record whose
// per-trial slices do not match its trial count (a line truncated
// mid-write that still parsed as JSON, or a hostile/buggy remote worker)
// must not suppress re-execution. The checkpoint scanner applies it to
// every line, and the campaign server applies it to every record a worker
// submits before the record reaches a checkpoint.
func (r CellRecord) Validate() error {
	if r.Trials <= 0 {
		return fmt.Errorf("study: record %s: trials must be positive", r.Key())
	}
	if len(r.Times) != r.Trials || len(r.HalfTimes) != r.Trials || len(r.Informed) != r.Trials {
		return fmt.Errorf("study: record %s has %d/%d/%d per-trial entries for %d trials",
			r.Key(), len(r.Times), len(r.HalfTimes), len(r.Informed), r.Trials)
	}
	// Cost arrays are optional as a PAIR (pre-cost records have neither),
	// but a lone or short one is damage, not age.
	if (r.Messages != nil) != (r.Useless != nil) {
		return fmt.Errorf("study: record %s has messages without useless (or vice versa)", r.Key())
	}
	if r.HasCost() && (len(r.Messages) != r.Trials || len(r.Useless) != r.Trials) {
		return fmt.Errorf("study: record %s has %d/%d cost entries for %d trials",
			r.Key(), len(r.Messages), len(r.Useless), r.Trials)
	}
	if r.WallMS < 0 {
		return fmt.Errorf("study: record %s: negative wall_ms %d", r.Key(), r.WallMS)
	}
	return nil
}

// WriteCheckpoint appends the record to w as one JSON line.
func WriteCheckpoint(w io.Writer, rec CellRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("study: encoding checkpoint for %s: %w", rec.Key(), err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("study: writing checkpoint for %s: %w", rec.Key(), err)
	}
	return nil
}

// ReadCheckpoint parses JSONL cell records from r. A malformed or
// inconsistent FINAL line is dropped silently — that is the signature of a
// sweep killed mid-write, and resuming must tolerate it — while damage
// anywhere earlier is a corrupt checkpoint and errors. Later records win
// when a key appears twice (a rerun appended a fresh result).
func ReadCheckpoint(r io.Reader) ([]CellRecord, error) {
	records, _, err := scanCheckpoint(r)
	return records, err
}

// scanCheckpoint is ReadCheckpoint plus the byte length of the valid
// prefix: the offset just past the last intact record, where an appender
// must resume so a kill-severed partial line is overwritten rather than
// glued onto (see OpenCheckpoint).
func scanCheckpoint(r io.Reader) (records []CellRecord, validLen int64, err error) {
	br := bufio.NewReader(r)
	var pendingErr error // a bad line is fatal only if another line follows
	line := 0
	for {
		text, readErr := br.ReadBytes('\n')
		if len(text) > 0 {
			line++
			if pendingErr != nil {
				return nil, 0, pendingErr
			}
			pendingErr = func() error {
				trimmed := bytes.TrimSpace(text)
				if len(trimmed) == 0 {
					return nil
				}
				var rec CellRecord
				if err := json.Unmarshal(trimmed, &rec); err != nil {
					return fmt.Errorf("study: checkpoint line %d: %w", line, err)
				}
				if err := rec.Validate(); err != nil {
					return fmt.Errorf("study: checkpoint line %d: %w", line, err)
				}
				records = append(records, rec)
				return nil
			}()
			if pendingErr == nil {
				validLen += int64(len(text))
			}
		}
		if readErr == io.EOF {
			// A pending error on the final line is the kill signature:
			// drop the line, report the intact prefix.
			return records, validLen, nil
		}
		if readErr != nil {
			return nil, 0, fmt.Errorf("study: reading checkpoint: %w", readErr)
		}
	}
}

// LoadCheckpoint reads the checkpoint file into a key-indexed map; a
// missing file is an empty checkpoint, not an error.
func LoadCheckpoint(path string) (map[Key]CellRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[Key]CellRecord{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := ReadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return Index(records), nil
}

// OpenCheckpoint opens the checkpoint at path for resumption: it loads
// the existing records (creating an empty file when none exists) and
// returns the file positioned for appending. A kill-severed partial final
// line is truncated away first, so the next append starts on a fresh line
// instead of gluing onto the fragment and corrupting the file for every
// later load. The caller owns closing the file.
func OpenCheckpoint(path string) (*os.File, map[Key]CellRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	records, validLen, err := scanCheckpoint(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("study: truncating partial checkpoint line in %s: %w", path, err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	if validLen > 0 {
		// A kill can sever exactly the final record's trailing newline:
		// the record is intact (and counted), but appending after it would
		// glue two JSON objects onto one line. Repair the separator.
		var last [1]byte
		if _, err := f.ReadAt(last[:], validLen-1); err != nil {
			f.Close()
			return nil, nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
	}
	return f, Index(records), nil
}

// Index keys the records, later entries winning duplicates.
func Index(records []CellRecord) map[Key]CellRecord {
	m := make(map[Key]CellRecord, len(records))
	for _, rec := range records {
		m[rec.Key()] = rec
	}
	return m
}
