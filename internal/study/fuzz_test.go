package study

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// fuzzRecord builds a small valid record line for seeding the corpus.
func fuzzRecord(model string, trials int, t0 int) string {
	rec := CellRecord{
		Model: model, Protocol: "flood", Trials: trials, Seed: 7, N: 8,
		Times:     make([]int, trials),
		HalfTimes: make([]int, trials),
		Informed:  make([]int, trials),
		WallMS:    int64(t0),
	}
	for i := range rec.Times {
		rec.Times[i] = t0 + i
		rec.HalfTimes[i] = t0 + i/2
		rec.Informed[i] = 8
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, rec); err != nil {
		panic(err)
	}
	return buf.String()
}

// FuzzScanCheckpoint hammers the checkpoint scanner with the multi-writer
// reality the campaign server creates: interleaved duplicate keys,
// kill-truncated tails, severed newlines, and mid-file garbage. The
// invariants under fuzz:
//
//  1. scanCheckpoint never panics and validLen is a sane offset into the
//     input ending on a record boundary.
//  2. Every returned record passes Validate — garbage never becomes a
//     record that could suppress re-execution.
//  3. Rescanning the reported valid prefix reproduces exactly the same
//     records and the same validLen (the prefix is self-consistent, so
//     OpenCheckpoint's truncate-to-validLen repair converges).
//  4. Appending a fresh valid line after the valid prefix — what resume
//     and the campaign server both do — yields the old records plus the
//     new one.
func FuzzScanCheckpoint(f *testing.F) {
	recA := fuzzRecord("a", 2, 3)
	recB := fuzzRecord("b", 1, 5)
	recA2 := fuzzRecord("a", 2, 9) // duplicate key for recA, later wins
	f.Add([]byte(""))
	f.Add([]byte(recA))
	f.Add([]byte(recA + recB))
	f.Add([]byte(recA + recB + recA2))                                  // interleaved duplicate keys
	f.Add([]byte(recA + recB[:len(recB)/2]))                            // kill-truncated tail
	f.Add([]byte(recA + strings.TrimSuffix(recB, "\n")))                // severed trailing newline
	f.Add([]byte(recA + "{garbage\n" + recB))                           // mid-file garbage
	f.Add([]byte("\n\n" + recA + "\n" + recB))                          // blank lines
	f.Add([]byte(`{"model":"m","trials":3,"times":[1]}` + "\n" + recA)) // inconsistent record mid-file
	f.Add([]byte(recA + `{"model":"m","trials":3,"times":[1]}`))        // inconsistent tail: dropped
	f.Add([]byte(`{"model":"m","trials":-1,"times":[],"half_times":[],"informed":[]}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		records, validLen, err := scanCheckpoint(bytes.NewReader(data))
		if err != nil {
			return // corrupt checkpoints may be rejected; they must not panic
		}
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range for %d input bytes", validLen, len(data))
		}
		for _, rec := range records {
			if verr := rec.Validate(); verr != nil {
				t.Fatalf("scanner returned invalid record %+v: %v", rec, verr)
			}
		}
		prefix := data[:validLen]
		again, againLen, err := scanCheckpoint(bytes.NewReader(prefix))
		if err != nil {
			t.Fatalf("rescanning valid prefix failed: %v\nprefix: %q", err, prefix)
		}
		if againLen != validLen {
			t.Fatalf("rescan of valid prefix shrank: %d -> %d\nprefix: %q", validLen, againLen, prefix)
		}
		if !reflect.DeepEqual(records, again) {
			t.Fatalf("rescan of valid prefix changed records:\n%+v\nvs\n%+v", records, again)
		}
		// The append step mirrors OpenCheckpoint: truncate to validLen,
		// repair a severed trailing newline, then append one fresh line.
		appended := append([]byte{}, prefix...)
		if len(appended) > 0 && appended[len(appended)-1] != '\n' {
			appended = append(appended, '\n')
		}
		fresh := fuzzRecord("appended", 1, 11)
		appended = append(appended, fresh...)
		merged, _, err := scanCheckpoint(bytes.NewReader(appended))
		if err != nil {
			t.Fatalf("append after truncation broke the checkpoint: %v\nfile: %q", err, appended)
		}
		if len(merged) != len(records)+1 {
			t.Fatalf("append after truncation: got %d records, want %d", len(merged), len(records)+1)
		}
		if merged[len(merged)-1].Model != "appended" {
			t.Fatalf("appended record lost: %+v", merged[len(merged)-1])
		}
		if len(records) > 0 && !reflect.DeepEqual(merged[:len(records)], records) {
			t.Fatalf("append disturbed earlier records")
		}
	})
}
