package study_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/graph"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/study"
)

func baseStudy() study.Study {
	return study.Study{
		Model:    model.New("edgemeg").WithInt("n", 96).WithFloat("p", 0.02).WithFloat("q", 0.2),
		Protocol: protocol.New("pushpull").WithInt("k", 1),
		Trials:   8,
		Seed:     42,
		MaxSteps: 1 << 14,
	}
}

// TestRunDeterministicAcrossWorkers pins the reproducibility contract for
// every registered protocol: the same Study yields identical per-trial
// results and summaries for any Workers value. Since each worker reuses
// one flood.Scratch across all its trials, this also pins that results
// never depend on how trials are packed onto warm scratches.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for _, ptext := range []string{"flood", "push:k=2", "pull", "pushpull:k=1", "parsimonious:active=8", "async:rate=1"} {
		pspec, err := protocol.Parse(ptext)
		if err != nil {
			t.Fatal(err)
		}
		var cells []study.Cell
		for _, workers := range []int{1, 2, 7} {
			s := baseStudy()
			s.Protocol = pspec
			s.Workers = workers
			cell, err := study.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, cell)
		}
		for i := 1; i < len(cells); i++ {
			if !reflect.DeepEqual(cells[0], cells[i]) {
				t.Fatalf("%s: cells differ across worker counts:\n%+v\nvs\n%+v", ptext, cells[0], cells[i])
			}
		}
		if cells[0].Times.N+cells[0].Incomplete != 8 {
			t.Fatalf("%s: summary does not account for all trials: %+v", ptext, cells[0])
		}
	}
}

func TestRunValidatesSpecs(t *testing.T) {
	bad := []study.Study{
		func() study.Study { s := baseStudy(); s.Model = spec.New("no-such-model"); return s }(),
		func() study.Study { s := baseStudy(); s.Protocol = spec.New("no-such-protocol"); return s }(),
		func() study.Study { s := baseStudy(); s.Protocol = protocol.New("push").WithInt("k", 0); return s }(),
		func() study.Study { s := baseStudy(); s.Model = s.Model.WithInt("n", 1); return s }(),
		func() study.Study { s := baseStudy(); s.Source = 500; return s }(),
		func() study.Study { s := baseStudy(); s.Source = -1; return s }(),
	}
	for _, s := range bad {
		if _, err := study.Run(s); err == nil {
			t.Errorf("Run(%s × %s) succeeded, want error", s.Model, s.Protocol)
		}
	}
}

func TestGridCrossesModelsAndProtocols(t *testing.T) {
	base := baseStudy()
	base.Trials = 3
	models := []spec.Spec{
		model.New("edgemeg").WithInt("n", 64).WithFloat("p", 0.03).WithFloat("q", 0.27),
		model.New("static").With("topology", "torus").WithInt("m", 8),
	}
	protocols := []spec.Spec{
		protocol.New("flood"),
		protocol.New("pull"),
	}
	cells, err := study.Grid(base, models, protocols)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("grid size = %d, want 4", len(cells))
	}
	// Models outer, protocols inner.
	if cells[0].Protocol != "flood" || cells[1].Protocol != "pull" {
		t.Fatalf("grid order wrong: %s, %s", cells[0].Protocol, cells[1].Protocol)
	}
	if cells[0].Model != cells[1].Model || cells[0].Model == cells[2].Model {
		t.Fatalf("grid model layout wrong: %s, %s, %s", cells[0].Model, cells[1].Model, cells[2].Model)
	}
	for _, c := range cells {
		if len(c.Results) != 3 {
			t.Fatalf("cell %s × %s has %d results", c.Model, c.Protocol, len(c.Results))
		}
	}
}

func TestTrialsFactoryLevel(t *testing.T) {
	if study.Trials(nil, 0, study.TrialsOpts{}) != nil {
		t.Fatal("zero trials should be nil")
	}
	factory := func(trial int) (dyngraph.Dynamic, protocol.Protocol, int) {
		g := graph.Gnp(40, 0.08, rng.New(rng.Seed(99, uint64(trial))))
		return dyngraph.NewStatic(g), protocol.Flooding(), 0
	}
	a := study.Trials(factory, 8, study.TrialsOpts{Opts: floodOpts(200), Workers: 4})
	b := study.Trials(factory, 8, study.TrialsOpts{Opts: floodOpts(200), Workers: 2})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("factory trials differ across worker counts")
	}
	if len(a) != 8 {
		t.Fatalf("got %d results", len(a))
	}
}

func TestTimesOfCountsIncomplete(t *testing.T) {
	results := study.MustRun(func() study.Study {
		s := baseStudy()
		s.Trials = 4
		return s
	}()).Results
	times, inc := study.TimesOf(results)
	if len(times)+inc != 4 {
		t.Fatalf("TimesOf loses trials: %d + %d", len(times), inc)
	}
}

func TestWorstSourcePathEndpoints(t *testing.T) {
	// On a static path, flooding from an endpoint takes n-1 steps, from
	// the middle ⌈(n-1)/2⌉: the endpoint must be the worst source.
	n := 9
	factory := func(trial, source int) (dyngraph.Dynamic, protocol.Protocol) {
		return dyngraph.NewStatic(graph.Path(n)), protocol.Flooding()
	}
	sources := []int{0, n / 2, n - 1}
	medians, worst := study.WorstSource(factory, sources, 3, study.TrialsOpts{Opts: floodOpts(100)})
	if medians[0] != float64(n-1) || medians[2] != float64(n-1) {
		t.Fatalf("endpoint medians = %v", medians)
	}
	if medians[1] != float64(n/2) {
		t.Fatalf("middle median = %v, want %d", medians[1], n/2)
	}
	if worst != 0 && worst != 2 {
		t.Fatalf("worst source index = %d, want an endpoint", worst)
	}
}

func TestWorstSourceAllFailing(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	factory := func(trial, source int) (dyngraph.Dynamic, protocol.Protocol) {
		return dyngraph.NewStatic(g), protocol.Flooding()
	}
	medians, worst := study.WorstSource(factory, []int{0, 2}, 2, study.TrialsOpts{Opts: floodOpts(20)})
	if len(medians) != 2 {
		t.Fatal("medians length wrong")
	}
	// Both sources fail on the disconnected graph; worst must point at a
	// failing source.
	if worst != 0 && worst != 1 {
		t.Fatalf("worst = %d", worst)
	}
}

func TestWriteJSONL(t *testing.T) {
	s := baseStudy()
	s.Trials = 5
	s.KeepTimeline = true
	cell := study.MustRun(s)
	var buf bytes.Buffer
	if err := cell.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(&buf)
	trial := 0
	for scanner.Scan() {
		var rec struct {
			Model     string `json:"model"`
			Protocol  string `json:"protocol"`
			Trial     int    `json:"trial"`
			Time      int    `json:"time"`
			Informed  int    `json:"informed"`
			Completed bool   `json:"completed"`
			Timeline  []int  `json:"timeline"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", trial, err)
		}
		if rec.Trial != trial || rec.Model != cell.Model || rec.Protocol != cell.Protocol {
			t.Fatalf("line %d header wrong: %+v", trial, rec)
		}
		want := cell.Results[trial]
		if rec.Time != want.Time || rec.Informed != want.Informed || rec.Completed != want.Completed ||
			!reflect.DeepEqual(rec.Timeline, want.Timeline) {
			t.Fatalf("line %d payload wrong: %+v vs %+v", trial, rec, want)
		}
		trial++
	}
	if trial != 5 {
		t.Fatalf("emitted %d lines, want 5", trial)
	}
}

func floodOpts(maxSteps int) flood.Opts {
	return flood.Opts{MaxSteps: maxSteps}
}
