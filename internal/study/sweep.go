package study

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// Sweep is the declarative form of a grid campaign: every model spec
// crossed with every protocol spec, each cell run for Trials trials from
// the shared master Seed. It is the unit cmd/sweep reads from a JSON file,
// where specs may be written either as CLI strings ("edgemeg:n=256,p=0.01")
// or as spec objects ({"name":"edgemeg","params":{"n":256,"p":0.01}}):
//
//	{
//	  "models":    ["edgemeg:n=256,p=0.00625,q=0.19375"],
//	  "protocols": ["flood", "push:k=3", "pushpull:k=1"],
//	  "trials":    20,
//	  "seed":      1,
//	  "max_steps": 65536
//	}
//
// Cell enumeration order is deterministic — models outer, protocols inner,
// exactly Grid's order — and each cell's trial streams derive only from
// (Seed, trial), so a sweep's results are a pure function of the Sweep
// value, independent of Workers, interruption, and resume.
type Sweep struct {
	Models    []spec.Spec `json:"models"`
	Protocols []spec.Spec `json:"protocols"`
	// Trials is the per-cell trial count.
	Trials int `json:"trials"`
	// Seed is the master seed shared by every cell.
	Seed uint64 `json:"seed"`
	// Source is the initially informed node (default 0).
	Source int `json:"source,omitempty"`
	// MaxSteps caps each run (0 = flood.DefaultMaxSteps).
	MaxSteps int `json:"max_steps,omitempty"`
	// Workers bounds per-cell trial parallelism (0 = GOMAXPROCS). It
	// affects wall-clock only, never results.
	Workers int `json:"workers,omitempty"`
}

// sweepJSON is the wire form of Sweep: the spec lists accept both CLI
// strings and spec objects.
type sweepJSON struct {
	Models    []json.RawMessage `json:"models"`
	Protocols []json.RawMessage `json:"protocols"`
	Trials    int               `json:"trials"`
	Seed      uint64            `json:"seed"`
	Source    int               `json:"source"`
	MaxSteps  int               `json:"max_steps"`
	Workers   int               `json:"workers"`
}

// UnmarshalJSON implements json.Unmarshaler, accepting each spec as either
// a CLI string or a spec object.
func (sw *Sweep) UnmarshalJSON(data []byte) error {
	var in sweepJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	models, err := parseSpecList("models", in.Models)
	if err != nil {
		return err
	}
	protocols, err := parseSpecList("protocols", in.Protocols)
	if err != nil {
		return err
	}
	*sw = Sweep{
		Models:    models,
		Protocols: protocols,
		Trials:    in.Trials,
		Seed:      in.Seed,
		Source:    in.Source,
		MaxSteps:  in.MaxSteps,
		Workers:   in.Workers,
	}
	return nil
}

func parseSpecList(field string, raws []json.RawMessage) ([]spec.Spec, error) {
	specs := make([]spec.Spec, 0, len(raws))
	for i, raw := range raws {
		var s spec.Spec
		var text string
		if err := json.Unmarshal(raw, &text); err == nil {
			s, err = spec.Parse(text)
			if err != nil {
				return nil, fmt.Errorf("sweep: %s[%d]: %w", field, i, err)
			}
		} else if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("sweep: %s[%d]: want a spec string or object: %w", field, i, err)
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// ParseSweep reads a sweep definition from JSON and validates it.
func ParseSweep(data []byte) (Sweep, error) {
	var sw Sweep
	if err := json.Unmarshal(data, &sw); err != nil {
		return Sweep{}, fmt.Errorf("sweep: %w", err)
	}
	if err := sw.Validate(); err != nil {
		return Sweep{}, err
	}
	return sw, nil
}

// ParseSweepFile reads and validates a sweep definition file.
func ParseSweepFile(path string) (Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Sweep{}, err
	}
	sw, err := ParseSweep(data)
	if err != nil {
		return Sweep{}, fmt.Errorf("%s: %w", path, err)
	}
	return sw, nil
}

// Validate checks the grid axes against the registries and the scalar
// fields for sanity, so a sweep fails before its first trial, not in cell
// 40 of 60.
func (sw Sweep) Validate() error {
	if len(sw.Models) == 0 {
		return fmt.Errorf("sweep: no models")
	}
	if len(sw.Protocols) == 0 {
		return fmt.Errorf("sweep: no protocols")
	}
	if sw.Trials <= 0 {
		return fmt.Errorf("sweep: trials must be positive, got %d", sw.Trials)
	}
	// Duplicate axis entries would rerun identical cells and emit
	// duplicate report rows, so they are grid-definition errors.
	seenModels := map[string]bool{}
	for _, m := range sw.Models {
		if _, _, err := model.Resolve(m); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		text := m.String()
		if seenModels[text] {
			return fmt.Errorf("sweep: model %q listed twice", text)
		}
		seenModels[text] = true
	}
	seenProtocols := map[string]bool{}
	for _, p := range sw.Protocols {
		if _, _, err := protocol.Resolve(p); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		text := p.String()
		if seenProtocols[text] {
			return fmt.Errorf("sweep: protocol %q listed twice", text)
		}
		seenProtocols[text] = true
	}
	return nil
}

// study returns the Study of one cell.
func (sw Sweep) study(m, p spec.Spec) Study {
	return Study{
		Model:    m,
		Protocol: p,
		Source:   sw.Source,
		Trials:   sw.Trials,
		Seed:     sw.Seed,
		Workers:  sw.Workers,
		MaxSteps: sw.MaxSteps,
	}
}

// key returns the checkpoint key of one cell; Keys and RunSweep share it
// so skip decisions and key enumeration cannot diverge.
func (sw Sweep) key(m, p spec.Spec) Key {
	return Key{Model: m.String(), Protocol: p.String(), Trials: sw.Trials, Seed: sw.Seed}
}

// Keys enumerates the sweep's cell keys in execution order (models outer,
// protocols inner — Grid's order).
func (sw Sweep) Keys() []Key {
	keys := make([]Key, 0, len(sw.Models)*len(sw.Protocols))
	for _, m := range sw.Models {
		for _, p := range sw.Protocols {
			keys = append(keys, sw.key(m, p))
		}
	}
	return keys
}

// CheckRecord verifies that rec is a legitimate result for one of the
// sweep's cells: internally consistent, keyed to a cell the sweep
// enumerates, and computed under the sweep-wide Source and MaxSteps (the
// Key omits both, so a record from an edited sweep file — or a confused
// remote worker — could otherwise smuggle in results computed under
// different caps). RunSweep applies it to every resumed checkpoint record
// and the campaign server applies it to every completion a worker posts.
func (sw Sweep) CheckRecord(rec CellRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	key := rec.Key()
	found := false
	for _, m := range sw.Models {
		for _, p := range sw.Protocols {
			if sw.key(m, p) == key {
				found = true
			}
		}
	}
	if !found {
		return fmt.Errorf("sweep: record %s is not a cell of this sweep", key)
	}
	if rec.Source != sw.Source || rec.MaxSteps != sw.MaxSteps {
		return fmt.Errorf(
			"sweep: cell %s ran with source=%d max_steps=%d, sweep wants source=%d max_steps=%d",
			key, rec.Source, rec.MaxSteps, sw.Source, sw.MaxSteps)
	}
	return nil
}

// ErrStopped is returned by RunSweepOpts when its Stop channel fired: the
// in-flight cell was finished and checkpointed, no further cell started,
// and the records completed so far accompany the error. It is a clean
// interruption, not a failure — resuming from the checkpoint continues
// exactly where the run left off.
var ErrStopped = errors.New("study: sweep stopped before completion")

// SweepOpts configures RunSweepOpts beyond the sweep definition itself.
// Every field is optional; the zero value runs the whole grid silently.
type SweepOpts struct {
	// Done maps already-completed cells (a loaded checkpoint) to their
	// records; cells found here are reused, not rerun.
	Done map[Key]CellRecord
	// Sink receives each NEWLY completed cell's record before the next
	// cell starts, so an interrupted sweep loses at most the cell in
	// flight.
	Sink func(CellRecord) error
	// Progress, when non-nil, is called once per cell in grid order just
	// before the cell executes or is skipped: index is the 0-based cell
	// index, total the grid size, and resumed reports whether the cell is
	// being reused from Done.
	Progress func(key Key, index, total int, resumed bool)
	// Stop, when non-nil, makes the run return ErrStopped — after
	// finishing and sinking the in-flight cell — as soon as the channel is
	// closed or receives. This is the graceful-shutdown hook: a SIGINT
	// costs at most the wall time of one cell and zero completed work.
	Stop <-chan struct{}
	// Telemetry, when non-nil, receives sweep progress counters
	// (sweep_cells_total, sweep_cells_resumed_total, sweep_trials_total,
	// sweep_steps_total, sweep_wall_ms_total, plus the message-cost
	// throughput counters messages_total/useless_total) and a
	// scratch_bytes gauge
	// tracking the largest per-worker engine footprint seen so far. All
	// updates happen between cells — never inside the spreading hot path —
	// and each freshly completed cell triggers one extra sample so short
	// sweeps still leave a capture trail.
	Telemetry *telemetry.Collector
}

// RunSweep executes the sweep's grid, skipping every cell whose key is
// already present in done (a loaded checkpoint) and streaming each NEWLY
// completed cell's record to sink before the next cell starts — so an
// interrupted sweep loses at most the cell in flight. Either done or sink
// may be nil. It returns the records of all cells, done and new, in grid
// order; because cell results depend only on the Sweep value, the merged
// records — and every report derived from them — are identical whether the
// sweep ran in one pass or across any sequence of interruptions, for any
// Workers values.
func RunSweep(sw Sweep, done map[Key]CellRecord, sink func(CellRecord) error) ([]CellRecord, error) {
	return RunSweepOpts(sw, SweepOpts{Done: done, Sink: sink})
}

// RunSweepOpts is RunSweep with progress reporting and graceful stop; see
// SweepOpts. Each newly executed cell's record carries the wall-clock
// milliseconds it took (CellRecord.WallMS); resumed records keep whatever
// their checkpoint recorded.
func RunSweepOpts(sw Sweep, opts SweepOpts) ([]CellRecord, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	var cellsDone, cellsResumed, trialsDone, stepsDone, wallMS, msgsTotal, uselessTotal *telemetry.Counter
	if opts.Telemetry != nil {
		cellsDone = opts.Telemetry.Counter("sweep_cells_total")
		cellsResumed = opts.Telemetry.Counter("sweep_cells_resumed_total")
		trialsDone = opts.Telemetry.Counter("sweep_trials_total")
		stepsDone = opts.Telemetry.Counter("sweep_steps_total")
		wallMS = opts.Telemetry.Counter("sweep_wall_ms_total")
		msgsTotal = opts.Telemetry.Counter("messages_total")
		uselessTotal = opts.Telemetry.Counter("useless_total")
		opts.Telemetry.Gauge("scratch_bytes", ScratchHighWater)
		opts.Telemetry.Gauge("born_per_step", ChurnBornPerStep)
		opts.Telemetry.Gauge("died_per_step", ChurnDiedPerStep)
		opts.Telemetry.Gauge("moved_per_step", ChurnMovedPerStep)
	}
	total := len(sw.Models) * len(sw.Protocols)
	records := make([]CellRecord, 0, total)
	index := 0
	for _, m := range sw.Models {
		for _, p := range sw.Protocols {
			key := sw.key(m, p)
			rec, resumed := opts.Done[key]
			if !resumed && opts.Stop != nil {
				// Checked before the cell is announced or started:
				// stopping costs zero compute, and resumed cells are
				// still merged for free on the way out.
				select {
				case <-opts.Stop:
					return records, ErrStopped
				default:
				}
			}
			if opts.Progress != nil {
				opts.Progress(key, index, total, resumed)
			}
			index++
			if resumed {
				if err := sw.CheckRecord(rec); err != nil {
					return records, fmt.Errorf("%w; discard the checkpoint (-fresh) to rerun", err)
				}
				if cellsResumed != nil {
					cellsResumed.Add(1)
				}
				records = append(records, rec)
				continue
			}
			s := sw.study(m, p)
			start := time.Now()
			cell, err := Run(s)
			if err != nil {
				return records, err
			}
			rec = Record(s, cell)
			rec.WallMS = time.Since(start).Milliseconds()
			if opts.Sink != nil {
				if err := opts.Sink(rec); err != nil {
					return records, err
				}
			}
			records = append(records, rec)
			if opts.Telemetry != nil {
				cellsDone.Add(1)
				trialsDone.Add(int64(len(cell.Results)))
				// Cost throughput, summed per completed cell — between
				// cells, never inside the spreading hot path.
				var steps, msgs, useless int64
				for _, r := range cell.Results {
					steps += int64(r.Time)
					msgs += r.Messages
					useless += r.Useless
				}
				stepsDone.Add(steps)
				msgsTotal.Add(msgs)
				uselessTotal.Add(useless)
				wallMS.Add(rec.WallMS)
				opts.Telemetry.SampleNow()
			}
		}
	}
	return records, nil
}
