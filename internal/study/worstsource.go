package study

import (
	"math"

	"repro/internal/dyngraph"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// The paper defines the flooding time of a dynamic graph as the worst case
// over sources: F(G) = max_s F(G, s). For the vertex-transitive models most
// experiments use, any source is representative; WorstSource implements the
// full definition for models where the source matters (e.g. border vs
// center positions).

// SourceFactory builds a fresh dynamic graph and protocol for the given
// (trial, source) pair. Seeds must derive from both so that trials are
// independent and the same graph law is used for every source.
type SourceFactory func(trial, source int) (dyngraph.Dynamic, protocol.Protocol)

// WorstSource runs `trials` executions from every listed source and
// returns the per-source median completion times along with the index
// (into sources) of the worst one. Incomplete runs are excluded from
// medians; a source whose runs all fail yields NaN and is reported as
// worst.
func WorstSource(factory SourceFactory, sources []int, trials int, opts TrialsOpts) (medians []float64, worst int) {
	medians = make([]float64, len(sources))
	worst = 0
	for si, src := range sources {
		src := src
		results := Trials(func(trial int) (dyngraph.Dynamic, protocol.Protocol, int) {
			d, p := factory(trial, src)
			return d, p, src
		}, trials, opts)
		times, incomplete := TimesOf(results)
		if incomplete == len(results) {
			medians[si] = math.NaN()
			continue
		}
		medians[si] = stats.Median(times)
	}
	for si, m := range medians {
		if math.IsNaN(m) { // fully failing source dominates
			return medians, si
		}
		if m > medians[worst] {
			worst = si
		}
	}
	return medians, worst
}
