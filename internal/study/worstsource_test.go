package study_test

// Direct tests of study.WorstSource — the paper's F(G) = max_s F(G, s)
// scan — on a randomized fixed-seed model: determinism for any Workers
// value, and agreement with a brute-force per-source loop that bypasses
// the Trials pool entirely.

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/study"
)

// worstSourceFixture is a small sparse edge-MEG studied from several
// sources with per-(trial, source) derived seeds, as the SourceFactory
// contract requires.
func worstSourceFixture() (factory study.SourceFactory, sources []int, trials int, opts study.TrialsOpts) {
	megSpec := model.New("edgemeg").WithInt("n", 48).WithFloat("p", 0.01).WithFloat("q", 0.19)
	factory = func(trial, source int) (dyngraph.Dynamic, protocol.Protocol) {
		seed := rng.Seed(99, uint64(trial), uint64(source))
		return model.MustBuild(megSpec, seed), protocol.Flooding()
	}
	return factory, []int{0, 17, 31}, 6, study.TrialsOpts{Opts: flood.Opts{MaxSteps: 1 << 14}}
}

func TestWorstSourceDeterministicAcrossWorkers(t *testing.T) {
	factory, sources, trials, opts := worstSourceFixture()
	type outcome struct {
		medians []float64
		worst   int
	}
	var outcomes []outcome
	for _, workers := range []int{1, 2, 5} {
		o := opts
		o.Workers = workers
		medians, worst := study.WorstSource(factory, sources, trials, o)
		outcomes = append(outcomes, outcome{medians, worst})
	}
	for i := 1; i < len(outcomes); i++ {
		if !reflect.DeepEqual(outcomes[0], outcomes[i]) {
			t.Fatalf("WorstSource differs across worker counts:\n%+v\nvs\n%+v",
				outcomes[0], outcomes[i])
		}
	}
}

func TestWorstSourceMatchesBruteForce(t *testing.T) {
	factory, sources, trials, opts := worstSourceFixture()
	gotMedians, gotWorst := study.WorstSource(factory, sources, trials, opts)

	// Brute force: per source, run every trial sequentially and take the
	// median of completed times, NaN when all fail; worst is the first NaN
	// source, else the max-median index (first on ties).
	wantMedians := make([]float64, len(sources))
	for si, src := range sources {
		var times []float64
		failed := 0
		for trial := 0; trial < trials; trial++ {
			d, p := factory(trial, src)
			res := p.Run(d, src, opts.Opts)
			if res.Completed {
				times = append(times, float64(res.Time))
			} else {
				failed++
			}
		}
		if failed == trials {
			wantMedians[si] = math.NaN()
		} else {
			wantMedians[si] = stats.Median(times)
		}
	}
	wantWorst := 0
	for si, m := range wantMedians {
		if math.IsNaN(m) {
			wantWorst = si
			break
		}
		if m > wantMedians[wantWorst] {
			wantWorst = si
		}
	}

	if !reflect.DeepEqual(gotMedians, wantMedians) || gotWorst != wantWorst {
		t.Fatalf("WorstSource = (%v, %d), brute force = (%v, %d)",
			gotMedians, gotWorst, wantMedians, wantWorst)
	}
	// The fixture must actually exercise completed runs from every source.
	for si, m := range gotMedians {
		if math.IsNaN(m) || m <= 0 {
			t.Fatalf("fixture source %d yielded median %v; pick parameters with completing floods", sources[si], m)
		}
	}
}
