// Package all links every built-in model registration into a binary.
// Import it for side effects from CLIs and examples:
//
//	import _ "repro/internal/model/all"
//
// Model packages self-register with the model registry from init
// functions, so any import of the package registers its models; this
// package exists only so binaries need not know which packages those are.
// (The "static" baseline registers inside package model itself.)
package all

import (
	_ "repro/internal/edgemeg"
	_ "repro/internal/mobility"
	_ "repro/internal/randompath"
)
