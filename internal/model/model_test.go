package model_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/model"
	_ "repro/internal/model/all"
)

func TestParseString(t *testing.T) {
	cases := []struct {
		in   string
		want model.Spec
	}{
		{"edgemeg", model.Spec{Name: "edgemeg"}},
		{"edgemeg:n=512,p=0.004", model.New("edgemeg").With("n", "512").With("p", "0.004")},
		{" walk : m = 8 , stay = 0.5 ", model.New("walk").With("m", "8").With("stay", "0.5")},
	}
	for _, c := range cases {
		got, err := model.Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got.Name != c.want.Name || !reflect.DeepEqual(got.Params, c.want.Params) {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String must re-parse to the same spec.
		back, err := model.Parse(got.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)): %v", c.in, err)
		}
		if back.Name != got.Name || !reflect.DeepEqual(back.Params, got.Params) {
			t.Errorf("String round-trip of %q: got %+v", c.in, back)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "  ", "edgemeg:n", "edgemeg:=3", "edgemeg:n=1,n=2"} {
		if _, err := model.Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	spec := model.New("edgemeg").WithInt("n", 512).WithFloat("p", 0.004).WithBool("dense", true)
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back model.Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != spec.Name || !reflect.DeepEqual(back.Params, spec.Params) {
		t.Errorf("JSON round-trip: got %+v, want %+v", back, spec)
	}
}

func TestJSONAcceptsScalars(t *testing.T) {
	raw := `{"model": "edgemeg", "params": {"n": 512, "p": 0.004, "dense": true, "init": "empty"}}`
	var spec model.Spec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	want := model.New("edgemeg").With("n", "512").With("p", "0.004").
		With("dense", "true").With("init", "empty")
	if !reflect.DeepEqual(spec.Params, want.Params) {
		t.Errorf("got params %v, want %v", spec.Params, want.Params)
	}
	if _, err := model.Build(spec, 1); err != nil {
		t.Errorf("building JSON-decoded spec: %v", err)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []model.Spec{
		model.New("no-such-model"),
		model.New("edgemeg").With("bogus", "1"),    // undeclared parameter
		model.New("edgemeg").With("n", "many"),     // type mismatch
		model.New("edgemeg").With("n", "1"),        // model validation (n >= 2)
		model.New("edgemeg").With("init", "warm"),  // bad enum
		model.New("static").With("topology", "?!"), // bad topology
	}
	for _, spec := range cases {
		if _, err := model.Build(spec, 1); err == nil {
			t.Errorf("Build(%v) succeeded, want error", spec)
		}
	}
}

// TestFlagsToBuildRoundTrip exercises the full CLI path: a flag-style
// string parses to a Spec, the Spec renders canonically, and both the
// original and re-parsed specs build the same deterministic model.
func TestFlagsToBuildRoundTrip(t *testing.T) {
	for _, text := range []string{
		"edgemeg:n=64,p=0.05,q=0.3",
		"edgemeg4:n=32",
		"waypoint:n=50,L=10,r=1.5,vmin=1",
		"direction:n=50,L=10,r=1.5",
		"walk:n=30,m=8",
		"dwaypoint:n=10,m=4",
		"paths:n=16,m=6,family=l",
		"static:topology=gnp,n=40,p=0.2",
	} {
		spec, err := model.Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		reparsed, err := model.Parse(spec.String())
		if err != nil {
			t.Fatalf("Parse(String) of %q: %v", text, err)
		}
		a, err := model.Build(spec, 7)
		if err != nil {
			t.Fatalf("Build(%q): %v", text, err)
		}
		b, err := model.Build(reparsed, 7)
		if err != nil {
			t.Fatalf("Build(reparsed %q): %v", text, err)
		}
		if a.N() != b.N() {
			t.Fatalf("%q: node counts differ after round trip", text)
		}
		// Equal (spec, seed) must produce identical trajectories.
		for step := 0; step < 3; step++ {
			ea, eb := edgeSet(a), edgeSet(b)
			if !reflect.DeepEqual(ea, eb) {
				t.Fatalf("%q: snapshots diverge at step %d", text, step)
			}
			a.Step()
			b.Step()
		}
	}
}
