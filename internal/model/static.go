package model

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/rng"
)

// The static baseline — a dynamic graph whose snapshot never changes —
// registers here rather than in dyngraph, which this package imports.
func init() {
	Register(Definition{
		Name: "static",
		Help: "time-invariant graph (the degenerate dynamic baseline)",
		Params: []Param{
			{Name: "topology", Kind: String, Default: "grid",
				Help: "grid | torus | complete | cycle | path | star | gnp"},
			{Name: "m", Kind: Int, Default: "8", Help: "side for grid/torus"},
			{Name: "n", Kind: Int, Default: "0", Help: "nodes for complete/cycle/path/star/gnp (0 means m*m)"},
			{Name: "k", Kind: Int, Default: "1", Help: "hop-augmentation distance for grid/torus"},
			{Name: "p", Kind: Float, Default: "0.05", Help: "edge probability for gnp"},
		},
		Build: func(a Args, r *rng.RNG) (dyngraph.Dynamic, error) {
			m, k := a.Int("m"), a.Int("k")
			n := a.Int("n")
			if n == 0 {
				n = m * m
			}
			var g *graph.Graph
			switch topo := a.String("topology"); topo {
			case "grid":
				if k > 1 {
					g = graph.KAugmentedGrid(m, m, k)
				} else {
					g = graph.Grid(m, m)
				}
			case "torus":
				if k > 1 {
					g = graph.KAugmentedTorus(m, m, k)
				} else {
					g = graph.Torus(m, m)
				}
			case "complete":
				g = graph.Complete(n)
			case "cycle":
				g = graph.Cycle(n)
			case "path":
				g = graph.Path(n)
			case "star":
				g = graph.Star(n)
			case "gnp":
				g = graph.Gnp(n, a.Float("p"), r)
			default:
				return nil, fmt.Errorf("unknown topology %q", topo)
			}
			return dyngraph.NewStatic(g), nil
		},
	})
}
