// Package model is the spec-driven construction layer of the simulation
// API: a registry mapping model names plus typed parameters to ready
// dyngraph.Dynamic instances. Every entry point — CLIs, examples, the
// bench harness — builds dynamic graphs through Build(spec, seed), so
// adding a scenario means registering one Definition in the model's own
// package instead of extending a switch in every binary.
//
// Model packages self-register from an init function (see
// edgemeg/register.go, mobility/register.go, randompath/register.go; the
// static baseline registers here, since dyngraph cannot import this
// package). A Spec is parseable from a CLI string ("edgemeg:n=512,p=0.004")
// and from JSON, and round-trips through both. The spec text/registry
// machinery itself is the generic internal/spec package, shared with the
// protocol registry (internal/protocol).
package model

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/markov"
	"repro/internal/rng"
	"repro/internal/spec"
)

// Definition registers a buildable dynamic-graph model.
type Definition struct {
	// Name is the registry key, as written in specs.
	Name string
	// Help is a one-line description for CLI listings.
	Help string
	// Params declares the accepted parameters; Build sees every declared
	// parameter, with defaults filled in.
	Params []Param
	// Build constructs the model. All randomness must come from r so that
	// equal (Spec, seed) pairs yield identical processes.
	Build func(args Args, r *rng.RNG) (dyngraph.Dynamic, error)
}

// Meta implements spec.Definition.
func (d Definition) Meta() spec.Meta {
	return spec.Meta{Name: d.Name, Help: d.Help, Params: d.Params}
}

// ChainAnalyzer is an optional interface of built models whose per-entity
// dynamics is an explicit Markov chain (the per-edge birth/death chain of
// an edge-MEG, the per-node movement chain of a node-MEG). It feeds the
// mixing-time analyses of cmd/mixing without per-model switches.
type ChainAnalyzer interface {
	// MixingChain returns the chain and its stationary distribution.
	MixingChain() (*markov.Sparse, []float64)
}

var registry = spec.NewRegistry[Definition]("model")

// Register adds a model definition. It panics on duplicate names or
// malformed definitions — registration runs from init functions, where
// failing loudly at program start is the correct behavior.
func Register(def Definition) {
	if def.Build == nil {
		panic("model: Register needs a build function")
	}
	registry.Register(def)
}

// Lookup returns the definition registered under name.
func Lookup(name string) (Definition, bool) { return registry.Lookup(name) }

// Names returns the registered model names, sorted.
func Names() []string { return registry.Names() }

// Usage returns a multi-line listing of every registered model and its
// parameters, for CLI help output.
func Usage() string { return registry.Usage() }

// Resolve validates spec against the registered definition and returns the
// fully-populated argument set.
func Resolve(s Spec) (Definition, Args, error) { return registry.Resolve(s) }

// Build constructs the dynamic graph described by spec, drawing all
// randomness from a fresh rng seeded with seed. Equal (spec, seed) pairs
// build identical processes.
func Build(s Spec, seed uint64) (dyngraph.Dynamic, error) {
	def, args, err := Resolve(s)
	if err != nil {
		return nil, err
	}
	d, err := def.Build(args, rng.New(seed))
	if err != nil {
		return nil, fmt.Errorf("model: building %s: %w", def.Name, err)
	}
	return d, nil
}

// MustBuild is Build for callers whose specs are static program text
// (examples, experiments); it panics on error.
func MustBuild(s Spec, seed uint64) dyngraph.Dynamic {
	d, err := Build(s, seed)
	if err != nil {
		panic(err)
	}
	return d
}
