// Package model is the spec-driven construction layer of the simulation
// API: a registry mapping model names plus typed parameters to ready
// dyngraph.Dynamic instances. Every entry point — CLIs, examples, the
// bench harness — builds dynamic graphs through Build(spec, seed), so
// adding a scenario means registering one Definition in the model's own
// package instead of extending a switch in every binary.
//
// Model packages self-register from an init function (see
// edgemeg/register.go, mobility/register.go, randompath/register.go; the
// static baseline registers here, since dyngraph cannot import this
// package). A Spec is parseable from a CLI string ("edgemeg:n=512,p=0.004")
// and from JSON, and round-trips through both.
package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dyngraph"
	"repro/internal/markov"
	"repro/internal/rng"
)

// Kind is the type of a model parameter.
type Kind int

const (
	Int Kind = iota
	Float
	Bool
	String
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Param declares one typed parameter of a model.
type Param struct {
	Name    string
	Kind    Kind
	Default string // textual default, parsed with the same rules as Spec values
	Help    string
}

// Definition registers a buildable dynamic-graph model.
type Definition struct {
	// Name is the registry key, as written in specs.
	Name string
	// Help is a one-line description for CLI listings.
	Help string
	// Params declares the accepted parameters; Build sees every declared
	// parameter, with defaults filled in.
	Params []Param
	// Build constructs the model. All randomness must come from r so that
	// equal (Spec, seed) pairs yield identical processes.
	Build func(args Args, r *rng.RNG) (dyngraph.Dynamic, error)
}

// ChainAnalyzer is an optional interface of built models whose per-entity
// dynamics is an explicit Markov chain (the per-edge birth/death chain of
// an edge-MEG, the per-node movement chain of a node-MEG). It feeds the
// mixing-time analyses of cmd/mixing without per-model switches.
type ChainAnalyzer interface {
	// MixingChain returns the chain and its stationary distribution.
	MixingChain() (*markov.Sparse, []float64)
}

var (
	mu       sync.RWMutex
	registry = map[string]Definition{}
)

// Register adds a model definition. It panics on duplicate names or
// malformed definitions — registration runs from init functions, where
// failing loudly at program start is the correct behavior.
func Register(def Definition) {
	if def.Name == "" || def.Build == nil {
		panic("model: Register needs a name and a build function")
	}
	seen := map[string]bool{}
	for _, p := range def.Params {
		if seen[p.Name] {
			panic(fmt.Sprintf("model: %s declares parameter %q twice", def.Name, p.Name))
		}
		seen[p.Name] = true
		if _, err := parseValue(p.Kind, p.Default); err != nil {
			panic(fmt.Sprintf("model: %s parameter %q has invalid default %q: %v", def.Name, p.Name, p.Default, err))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[def.Name]; dup {
		panic("model: duplicate registration of " + def.Name)
	}
	registry[def.Name] = def
}

// Lookup returns the definition registered under name.
func Lookup(name string) (Definition, bool) {
	mu.RLock()
	defer mu.RUnlock()
	def, ok := registry[name]
	return def, ok
}

// Names returns the registered model names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Usage returns a multi-line listing of every registered model and its
// parameters, for CLI help output.
func Usage() string {
	var b strings.Builder
	for _, name := range Names() {
		def, _ := Lookup(name)
		fmt.Fprintf(&b, "%s — %s\n", name, def.Help)
		for _, p := range def.Params {
			fmt.Fprintf(&b, "    %-10s %-6s default %-12s %s\n", p.Name, p.Kind, p.Default, p.Help)
		}
	}
	return b.String()
}

// Args holds a model's resolved parameter values: every declared parameter
// is present, with the spec value when provided and the default otherwise.
// The typed getters panic on undeclared names — that is a bug in the model
// definition, not a user error (user errors are caught by Build).
type Args struct {
	model  string
	values map[string]value
}

type value struct {
	kind Kind
	i    int64
	f    float64
	b    bool
	s    string
}

func (a Args) get(name string, kind Kind) value {
	v, ok := a.values[name]
	if !ok || v.kind != kind {
		panic(fmt.Sprintf("model: %s reads undeclared %s parameter %q", a.model, kind, name))
	}
	return v
}

// Int returns the named integer parameter.
func (a Args) Int(name string) int { return int(a.get(name, Int).i) }

// Float returns the named float parameter.
func (a Args) Float(name string) float64 { return a.get(name, Float).f }

// Bool returns the named bool parameter.
func (a Args) Bool(name string) bool { return a.get(name, Bool).b }

// String returns the named string parameter.
func (a Args) String(name string) string { return a.get(name, String).s }

func parseValue(kind Kind, text string) (value, error) {
	switch kind {
	case Int:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return value{}, fmt.Errorf("want an integer, got %q", text)
		}
		return value{kind: Int, i: i}, nil
	case Float:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value{}, fmt.Errorf("want a number, got %q", text)
		}
		return value{kind: Float, f: f}, nil
	case Bool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return value{}, fmt.Errorf("want true/false, got %q", text)
		}
		return value{kind: Bool, b: b}, nil
	case String:
		return value{kind: String, s: text}, nil
	default:
		return value{}, fmt.Errorf("unknown parameter kind %v", kind)
	}
}

// Resolve validates spec against the registered definition and returns the
// fully-populated argument set.
func Resolve(spec Spec) (Definition, Args, error) {
	def, ok := Lookup(spec.Name)
	if !ok {
		return Definition{}, Args{}, fmt.Errorf("model: unknown model %q (registered: %s)", spec.Name, strings.Join(Names(), ", "))
	}
	args := Args{model: def.Name, values: make(map[string]value, len(def.Params))}
	for _, p := range def.Params {
		text, provided := spec.Params[p.Name]
		if !provided {
			text = p.Default
		}
		v, err := parseValue(p.Kind, text)
		if err != nil {
			return Definition{}, Args{}, fmt.Errorf("model: %s parameter %q: %v", def.Name, p.Name, err)
		}
		args.values[p.Name] = v
	}
	for name := range spec.Params {
		if _, ok := args.values[name]; !ok {
			return Definition{}, Args{}, fmt.Errorf("model: %s has no parameter %q", def.Name, name)
		}
	}
	return def, args, nil
}

// Build constructs the dynamic graph described by spec, drawing all
// randomness from a fresh rng seeded with seed. Equal (spec, seed) pairs
// build identical processes.
func Build(spec Spec, seed uint64) (dyngraph.Dynamic, error) {
	def, args, err := Resolve(spec)
	if err != nil {
		return nil, err
	}
	d, err := def.Build(args, rng.New(seed))
	if err != nil {
		return nil, fmt.Errorf("model: building %s: %w", def.Name, err)
	}
	return d, nil
}

// MustBuild is Build for callers whose specs are static program text
// (examples, experiments); it panics on error.
func MustBuild(spec Spec, seed uint64) dyngraph.Dynamic {
	d, err := Build(spec, seed)
	if err != nil {
		panic(err)
	}
	return d
}
