package model_test

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/model"
	_ "repro/internal/model/all"
)

// deltify returns d as a DeltaBatcher-capable Dynamic: the model itself
// when it implements the interface natively (the edge-MEG family, static,
// traces, and — since the incremental mobility work — the geometric
// mobility and node-MEG models) and the generic diff adapter otherwise.
// Stepping must go through the returned value.
func deltify(d dyngraph.Dynamic) dyngraph.Dynamic {
	if _, ok := d.(dyngraph.DeltaBatcher); ok {
		return d
	}
	return dyngraph.NewDeltifier(d)
}

// TestAdjacencyAppliedDeltasMatchSnapshots is the randomized cross-model
// pin of the incremental dynamics API: for every registered model, a
// dyngraph.Adjacency seeded from the initial snapshot batch and then
// maintained purely by AppendDeltas application must describe, after
// every step, exactly the edge set a fresh snapshot batch reports. Native
// DeltaBatcher implementations and the generic Deltifier adapter are both
// exercised (each model through whichever path a consumer would get).
func TestAdjacencyAppliedDeltasMatchSnapshots(t *testing.T) {
	for _, name := range model.Names() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{2, 31} {
				d := deltify(model.MustBuild(specFor(name), seed))
				db := d.(dyngraph.DeltaBatcher)
				var adj dyngraph.Adjacency
				adj.Reset(d.N())
				adj.AddEdges(dyngraph.AppendEdges(d, nil))
				var born, died []dyngraph.Edge
				for step := 1; step <= 60; step++ {
					d.Step()
					born, died = db.AppendDeltas(born[:0], died[:0])
					adj.Apply(born, died)
					got := sortedEdges(adj.AppendEdges(nil))
					want := sortedEdges(dyngraph.AppendEdges(d, nil))
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d step %d: delta-maintained adjacency has %d edges, snapshot %d (churn +%d/-%d)",
							seed, step, len(got), len(want), len(born), len(died))
					}
					for _, e := range born {
						if e.U >= e.V {
							t.Fatalf("seed %d step %d: born edge (%d,%d) not normalized", seed, step, e.U, e.V)
						}
					}
					for _, e := range died {
						if e.U >= e.V {
							t.Fatalf("seed %d step %d: died edge (%d,%d) not normalized", seed, step, e.U, e.V)
						}
					}
				}
			}
		})
	}
}

// TestDeltifierMatchesNativeDeltas cross-checks the two delta sources on
// every model that has both: wrapping a same-seed copy in the generic
// sorted-diff adapter must yield step-by-step churn identical (as sets) to
// the simulator's native AppendDeltas. For the geometric mobility and
// node-MEG models this pins the incremental two-pass churn computation
// (died against the pre-move index, born against the post-move one,
// both-moved pairs deduped) against the brute-force snapshot diff.
func TestDeltifierMatchesNativeDeltas(t *testing.T) {
	for _, name := range model.Names() {
		spec := specFor(name)
		if _, ok := model.MustBuild(spec, 5).(dyngraph.DeltaBatcher); !ok {
			continue
		}
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{5, 77} {
				native := model.MustBuild(spec, seed)
				wrapped := dyngraph.NewDeltifier(model.MustBuild(spec, seed))
				ndb := native.(dyngraph.DeltaBatcher)
				for step := 1; step <= 40; step++ {
					native.Step()
					wrapped.Step()
					nb, nd := ndb.AppendDeltas(nil, nil)
					wb, wd := wrapped.AppendDeltas(nil, nil)
					if !reflect.DeepEqual(sortedEdges(nb), sortedEdges(wb)) {
						t.Fatalf("seed %d step %d: native born %v != diffed born %v", seed, step, nb, wb)
					}
					if !reflect.DeepEqual(sortedEdges(nd), sortedEdges(wd)) {
						t.Fatalf("seed %d step %d: native died %v != diffed died %v", seed, step, nd, wd)
					}
				}
			}
		})
	}
}

func sortedEdges(edges []dyngraph.Edge) []dyngraph.Edge {
	out := append([]dyngraph.Edge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
