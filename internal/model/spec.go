package model

import "repro/internal/spec"

// The spec machinery — Spec text/JSON round-trips, typed parameter
// declarations, resolved Args — is the generic internal/spec layer shared
// with the protocol registry. These aliases keep model's historical
// surface (model.Spec, model.Parse, model.Param, ...) intact for model
// packages and entry points.

// Spec names a model and its parameters in textual form.
type Spec = spec.Spec

// New returns a Spec for the named model with default parameters.
func New(name string) Spec { return spec.New(name) }

// Parse reads a spec from its CLI form "name" or "name:key=value,...".
func Parse(text string) (Spec, error) { return spec.Parse(text) }

// Kind is the type of a model parameter.
type Kind = spec.Kind

const (
	Int    = spec.Int
	Float  = spec.Float
	Bool   = spec.Bool
	String = spec.String
)

// Param declares one typed parameter of a model.
type Param = spec.Param

// Args holds a model's resolved parameter values: every declared parameter
// is present, with the spec value when provided and the default otherwise.
type Args = spec.Args
