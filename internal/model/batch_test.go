package model_test

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/model"
	_ "repro/internal/model/all"
)

// callbackOnly strips a model down to the plain Dynamic interface so the
// generic fallbacks in dyngraph.AppendEdges/AppendNeighbors take over.
type callbackOnly struct{ d dyngraph.Dynamic }

func (c callbackOnly) N() int                                { return c.d.N() }
func (c callbackOnly) Step()                                 { c.d.Step() }
func (c callbackOnly) ForEachNeighbor(i int, fn func(j int)) { c.d.ForEachNeighbor(i, fn) }

// fastSpecs gives every registered model a small configuration so the
// cross-model equivalence tests stay quick. A registered model missing
// here is still tested, with its default parameters.
var fastSpecs = map[string]model.Spec{
	"edgemeg":   model.New("edgemeg").WithInt("n", 64).WithFloat("p", 0.05).WithFloat("q", 0.3),
	"edgemeg4":  model.New("edgemeg4").WithInt("n", 48),
	"waypoint":  model.New("waypoint").WithInt("n", 80).WithFloat("L", 10).WithFloat("r", 1.5),
	"direction": model.New("direction").WithInt("n", 80).WithFloat("L", 10).WithFloat("r", 1.5),
	"walk":      model.New("walk").WithInt("n", 40).WithInt("m", 8),
	"dwaypoint": model.New("dwaypoint").WithInt("n", 20).WithInt("m", 4),
	"paths":     model.New("paths").WithInt("n", 20).WithInt("m", 6),
	"static":    model.New("static").With("topology", "gnp").WithInt("n", 60).WithFloat("p", 0.1),
}

func specFor(name string) model.Spec {
	if spec, ok := fastSpecs[name]; ok {
		return spec
	}
	return model.New(name)
}

func edgeSet(d dyngraph.Dynamic) []dyngraph.Edge {
	edges := dyngraph.AppendEdges(d, nil)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return edges
}

// TestBatchMatchesCallback checks, for every registered model, that the
// batch snapshot view and the ForEachNeighbor callback view describe the
// same edge set — per whole snapshot (Batcher vs fallback vs Snapshot) and
// per node (NeighborLister vs fallback) — across several steps.
func TestBatchMatchesCallback(t *testing.T) {
	for _, name := range model.Names() {
		t.Run(name, func(t *testing.T) {
			spec := specFor(name)
			d := model.MustBuild(spec, 11)
			for step := 0; step < 4; step++ {
				native := edgeSet(d)
				fallback := edgeSet(callbackOnly{d})
				if !reflect.DeepEqual(native, fallback) {
					t.Fatalf("step %d: batch edges (%d) != callback edges (%d)",
						step, len(native), len(fallback))
				}
				for i, e := range native {
					if e.U >= e.V {
						t.Fatalf("step %d: edge %d = (%d,%d) not normalized U < V", step, i, e.U, e.V)
					}
					if i > 0 && native[i-1] == e {
						t.Fatalf("step %d: duplicate edge (%d,%d)", step, e.U, e.V)
					}
				}
				snap := dyngraph.Snapshot(d)
				if snap.M() != len(native) {
					t.Fatalf("step %d: Snapshot has %d edges, batch %d", step, snap.M(), len(native))
				}
				for _, e := range native {
					if !snap.HasEdge(int(e.U), int(e.V)) {
						t.Fatalf("step %d: edge (%d,%d) missing from Snapshot", step, e.U, e.V)
					}
				}
				for i := 0; i < d.N(); i++ {
					nat := append([]int32(nil), dyngraph.AppendNeighbors(d, i, nil)...)
					fb := dyngraph.AppendNeighbors(callbackOnly{d}, i, nil)
					sortInt32(nat)
					sortInt32(fb)
					if !reflect.DeepEqual(nat, fb) {
						t.Fatalf("step %d node %d: lister %v != callback %v", step, i, nat, fb)
					}
				}
				d.Step()
			}
		})
	}
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
