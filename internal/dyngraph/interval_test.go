package dyngraph

import (
	"testing"

	"repro/internal/graph"
)

func TestIntervalConnectivityStatic(t *testing.T) {
	// A static connected graph is T-interval connected for every T up to
	// the trace length.
	tr := Capture(NewStatic(graph.Cycle(6)), 4) // 5 snapshots
	if got := IntervalConnectivity(tr); got != 5 {
		t.Fatalf("static cycle maxT = %d, want 5", got)
	}
	if !IsTIntervalConnected(tr, 3) {
		t.Fatal("static cycle should be 3-interval connected")
	}
}

func TestIntervalConnectivityDisconnectedSnapshot(t *testing.T) {
	// A trace containing a disconnected snapshot is not even 1-interval
	// connected.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	tr := Capture(NewStatic(b.Build()), 2)
	if got := IntervalConnectivity(tr); got != 0 {
		t.Fatalf("disconnected maxT = %d, want 0", got)
	}
}

// alternator switches between two spanning trees of K4 that share no edge:
// star at 0 and the path 1-2, 2-3, 3-1... must share nothing with star
// {01,02,03}: use triangle {12,23,31}? Triangle misses node 0 — not
// spanning. Use path {12,23,30}: contains 30 which the star also... star
// edges are 01,02,03; path edges 12,23,30 — 30 == 03 shared. Choose star
// at 0 vs star at 1: {01,02,03} vs {10,12,13} share 01.
// Any two spanning subgraphs of a 4-clique share an edge? No: {01,23,02}
// (tree) vs {13,12,03}: shared? 01/02/23 vs 13/12/03 — disjoint, both
// spanning trees. Use those.
type alternator struct {
	t     int
	trees [2][][2]int
}

func newAlternator() *alternator {
	return &alternator{trees: [2][][2]int{
		{{0, 1}, {2, 3}, {0, 2}},
		{{1, 3}, {1, 2}, {0, 3}},
	}}
}

func (a *alternator) N() int { return 4 }
func (a *alternator) Step()  { a.t++ }
func (a *alternator) ForEachNeighbor(i int, fn func(j int)) {
	for _, e := range a.trees[a.t%2] {
		if e[0] == i {
			fn(e[1])
		}
		if e[1] == i {
			fn(e[0])
		}
	}
}

func TestIntervalConnectivityAlternatingTrees(t *testing.T) {
	// Each snapshot is a spanning tree (1-interval connected), but
	// consecutive snapshots share no edge, so T = 2 fails.
	tr := Capture(newAlternator(), 5)
	if !IsTIntervalConnected(tr, 1) {
		t.Fatal("each snapshot should be connected")
	}
	if IsTIntervalConnected(tr, 2) {
		t.Fatal("edge-disjoint alternation cannot be 2-interval connected")
	}
	if got := IntervalConnectivity(tr); got != 1 {
		t.Fatalf("maxT = %d, want 1", got)
	}
}

func TestIntervalConnectivityEdgeCases(t *testing.T) {
	tr := NewTrace(3)
	if IntervalConnectivity(tr) != 0 {
		t.Fatal("empty trace should give 0")
	}
	if IsTIntervalConnected(tr, 1) {
		t.Fatal("empty trace is not 1-interval connected")
	}
	full := Capture(NewStatic(graph.Complete(3)), 1)
	if IsTIntervalConnected(full, 0) {
		t.Fatal("T=0 should be rejected")
	}
	if IsTIntervalConnected(full, 99) {
		t.Fatal("T beyond trace length should be rejected")
	}
}
