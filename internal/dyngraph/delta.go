package dyngraph

import "slices"

// DeltaBatcher is the incremental sibling of Batcher: an optional extension
// of Dynamic exposing the edge churn of the most recent Step as two flat
// batches instead of forcing consumers to rescan the whole snapshot. In the
// sparse regimes the paper cares about (p = c/n, stationary degree O(1))
// the expected churn p·(missing) + q·(present) is O(n) per step while the
// snapshot itself has Θ(n) edges that mostly do not change — and the
// edge-MEG Markov steps already know exactly which pairs flipped, so the
// deltas come out of the simulator for free.
//
// Consumers seed their view from a full snapshot (AppendEdges) once, then
// after every Step apply the deltas to a persistent Adjacency, maintaining
// the current graph in O(churn) per step instead of O(m).
type DeltaBatcher interface {
	// AppendDeltas appends the edges born (absent before the most recent
	// Step, present after) to born and the edges that died (present before,
	// absent after) to died, returning the extended slices. Before the
	// first Step both batches are empty. Each edge appears at most once,
	// normalized to U < V; born and died are disjoint; applying them to the
	// pre-Step snapshot yields exactly the current snapshot. Order is
	// unspecified but deterministic. Implementations must not retain the
	// slices, and calls between two Steps are idempotent.
	AppendDeltas(born, died []Edge) (b, d []Edge)
}

// MoveReporter is an optional extension of DeltaBatcher for models whose
// churn follows node motion (mobility positions, node-MEG states): it
// reports how many nodes changed position or state in the most recent
// Step — the k in the O(k × local density) incremental step cost, and the
// numerator of the moved_per_step telemetry gauge. Before the first Step
// it reports 0.
type MoveReporter interface {
	MovedLastStep() int
}

// Adjacency is a persistent neighbor store that consumers of DeltaBatcher
// maintain across steps: per-node neighbor lists over a fixed universe,
// built once from a snapshot batch and then updated in place from delta
// batches — O(degree) per changed edge, so a step costs O(churn) instead
// of the O(m) full rebuild a snapshot view pays. Reset reuses all backing
// arrays, which is what lets flood.Scratch amortize the store across the
// trials of a sweep.
//
// The store is a CSR-style arena: every node's list lives in one shared
// []int32 backing array, addressed by a 12-byte {offset, length,
// capacity} segment header instead of a 24-byte slice header over its
// own allocation. At n = 10^6 that halves the fixed per-node overhead
// and, more importantly, collapses a million tiny heap objects into two
// arrays the GC never walks. Lists keep per-node capacity slack; a list
// outgrowing its segment relocates to the arena tail (amortized O(1),
// the old segment becomes a hole), and when the arena runs out the live
// segments are compacted into a spare buffer — so growth never moves
// more than the arena once per doubling.
//
// Neighbor order within a list is unspecified (removals swap with the
// last entry), so Adjacency serves order-insensitive consumers — the
// flooding and parsimonious engines, which treat neighborhoods as sets.
// Engines whose random draws index into neighbor lists (pull, push–pull,
// random walks) must keep reading the model's own neighbor view, whose
// order is pinned by the fixed-seed equivalence tests.
type Adjacency struct {
	segs  []segment
	arena []int32
	spare []int32 // compaction target, swapped with arena; len 0 between uses
	holes int     // arena slots abandoned by relocated segments
	n     int
}

// segment is one node's list header: arena[off:off+len] is the list,
// arena[off:off+cap] the slots reserved for it.
type segment struct {
	off, len, cap int32
}

// Reset re-sizes the store for a universe of n nodes and empties every
// list. At an unchanged n the arena layout — every node's learned
// capacity — is kept, so a store reused across the trials of a sweep
// (flood.Scratch) re-seeds into slots it already owns and warm trials
// never relocate a segment.
func (a *Adjacency) Reset(n int) {
	if n == a.n && len(a.segs) == n {
		for i := range a.segs {
			a.segs[i].len = 0
		}
		return
	}
	if cap(a.segs) < n {
		a.segs = make([]segment, n)
	} else {
		a.segs = a.segs[:n]
		clear(a.segs)
	}
	a.arena = a.arena[:0]
	a.holes = 0
	a.n = n
}

// N returns the universe size.
func (a *Adjacency) N() int { return a.n }

// Bytes returns the heap bytes retained by the store: the segment
// headers plus both arena buffers. Unlike the per-node-slice store this
// replaces, the accounting is O(1) — three capacities, no walk.
func (a *Adjacency) Bytes() int64 {
	return int64(cap(a.segs))*12 + int64(cap(a.arena))*4 + int64(cap(a.spare))*4
}

// Degree returns the current degree of node i.
func (a *Adjacency) Degree(i int) int { return int(a.segs[i].len) }

// Neighbors returns node i's current neighbor list. The slice aliases the
// arena and is invalidated by the next Add/Remove/Apply/Reset; callers
// must not mutate it.
func (a *Adjacency) Neighbors(i int) []int32 {
	s := a.segs[i]
	return a.arena[s.off : s.off+s.len : s.off+s.cap]
}

// AddEdge inserts the undirected edge {u, v}, which must not be present.
func (a *Adjacency) AddEdge(u, v int32) {
	a.appendTo(u, v)
	a.appendTo(v, u)
}

// appendTo appends w to node u's list, relocating the segment to the
// arena tail when its slack is exhausted.
func (a *Adjacency) appendTo(u, w int32) {
	s := &a.segs[u]
	if s.len == s.cap {
		a.growSeg(u)
		s = &a.segs[u]
	}
	a.arena[s.off+s.len] = w
	s.len++
}

// growSeg moves node u's segment to the arena tail with doubled capacity.
// The vacated slots become a hole; holes are reclaimed wholesale by the
// next compaction.
func (a *Adjacency) growSeg(u int32) {
	s := a.segs[u]
	newCap := s.cap * 2
	if newCap < 2 {
		newCap = 2
	}
	if len(a.arena)+int(newCap) > cap(a.arena) {
		a.ensure(int(newCap))
		s = a.segs[u] // compaction moves offsets
	}
	off := int32(len(a.arena))
	a.arena = a.arena[:len(a.arena)+int(newCap)]
	copy(a.arena[off:off+s.len], a.arena[s.off:s.off+s.len])
	a.holes += int(s.cap)
	a.segs[u] = segment{off: off, len: s.len, cap: newCap}
}

// ensure makes room for need more arena slots: live segments are
// compacted (capacities preserved) into the spare buffer, which is grown
// geometrically only when squeezing the holes out is not enough. The two
// buffers swap roles, so a store at its high-water size compacts with no
// allocation — the delta engines' zero-alloc warm-path contract.
func (a *Adjacency) ensure(need int) {
	live := len(a.arena) - a.holes
	target := cap(a.arena)
	if live+need > target {
		target = 2 * target
		if live+need > target {
			target = live + need
		}
	}
	if target > maxArena {
		panic("dyngraph: Adjacency arena exceeds int32 offsets")
	}
	if cap(a.spare) < target {
		a.spare = make([]int32, 0, target)
	}
	dst := a.spare[:0]
	for i := range a.segs {
		s := &a.segs[i]
		off := int32(len(dst))
		dst = append(dst, a.arena[s.off:s.off+s.len]...)
		dst = dst[:int(off)+int(s.cap)]
		s.off = off
	}
	a.spare = a.arena[:0]
	a.arena = dst
	a.holes = 0
}

// maxArena bounds the arena length addressable by int32 segment offsets.
const maxArena = 1<<31 - 1

// RemoveEdge deletes the undirected edge {u, v}, which must be present.
// The removal swaps with the last entry, perturbing neighbor order.
func (a *Adjacency) RemoveEdge(u, v int32) {
	a.removeFrom(u, v)
	a.removeFrom(v, u)
}

func (a *Adjacency) removeFrom(u, v int32) {
	s := &a.segs[u]
	l := a.arena[s.off : s.off+s.len]
	for i, w := range l {
		if w == v {
			s.len--
			l[i] = l[s.len]
			return
		}
	}
	panic("dyngraph: Adjacency.RemoveEdge of an absent edge")
}

// AddEdges inserts every edge of the batch — the seeding pass that turns a
// fresh (or Reset) store into the current snapshot.
func (a *Adjacency) AddEdges(edges []Edge) {
	for _, e := range edges {
		a.AddEdge(e.U, e.V)
	}
}

// Apply updates the store by one step of churn: every died edge is removed
// and every born edge inserted. Batches must be consistent with the stored
// graph (deltas from the model whose snapshot seeded the store).
func (a *Adjacency) Apply(born, died []Edge) {
	for _, e := range died {
		a.RemoveEdge(e.U, e.V)
	}
	for _, e := range born {
		a.AddEdge(e.U, e.V)
	}
}

// AppendEdges appends the stored graph's edges to dst, each once with
// U < V, in an unspecified deterministic order. It exists so tests can
// compare a delta-maintained store against a fresh snapshot batch.
func (a *Adjacency) AppendEdges(dst []Edge) []Edge {
	for u := range a.segs {
		s := a.segs[u]
		for _, v := range a.arena[s.off : s.off+s.len] {
			if int32(u) < v {
				dst = append(dst, Edge{U: int32(u), V: v})
			}
		}
	}
	return dst
}

// compareEdges orders edges lexicographically by (U, V).
func compareEdges(a, b Edge) int {
	if a.U != b.U {
		return int(a.U) - int(b.U)
	}
	return int(a.V) - int(b.V)
}

// diffSortedEdges merges two (U, V)-sorted edge batches, appending edges
// only in cur to born and edges only in prev to died.
func diffSortedEdges(prev, cur, born, died []Edge) (b, d []Edge) {
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch c := compareEdges(prev[i], cur[j]); {
		case c == 0:
			i++
			j++
		case c < 0:
			died = append(died, prev[i])
			i++
		default:
			born = append(born, cur[j])
			j++
		}
	}
	born = append(born, cur[j:]...)
	died = append(died, prev[i:]...)
	return born, died
}

// Deltifier adapts any Dynamic into a DeltaBatcher by diffing consecutive
// snapshot batches — the generic fallback for models whose step logic does
// not know its own churn (mobility models, whose edges follow node motion,
// and recorded traces replayed without delta support). The diff sorts and
// merges two full snapshots, so Step costs O(m log m): the adapter buys
// the delta API and O(churn) downstream consumption, not a cheaper model
// step. Models with edge-shaped state should implement DeltaBatcher
// natively instead.
//
// The wrapper owns the clock: callers must Step the Deltifier, never the
// wrapped model directly. Snapshot reads (ForEachNeighbor, batch and
// per-node views) are forwarded unchanged.
type Deltifier struct {
	d          Dynamic
	prev, cur  []Edge // (U, V)-sorted snapshots before and after the last Step
	stepped    bool
	downstream NeighborLister // d's native per-node view, if any
}

// NewDeltifier wraps d, capturing its current snapshot as the base the
// first Step's deltas are computed against.
func NewDeltifier(d Dynamic) *Deltifier {
	df := &Deltifier{d: d}
	df.downstream, _ = d.(NeighborLister)
	df.cur = sortEdges(AppendEdges(d, df.cur[:0]))
	return df
}

func sortEdges(edges []Edge) []Edge {
	slices.SortFunc(edges, compareEdges)
	return edges
}

// N implements Dynamic.
func (df *Deltifier) N() int { return df.d.N() }

// Step implements Dynamic: the wrapped model advances, and the sorted
// snapshots before and after are retained for AppendDeltas.
func (df *Deltifier) Step() {
	df.d.Step()
	df.prev, df.cur = df.cur, df.prev[:0]
	df.cur = sortEdges(AppendEdges(df.d, df.cur))
	df.stepped = true
}

// ForEachNeighbor implements Dynamic.
func (df *Deltifier) ForEachNeighbor(i int, fn func(j int)) {
	df.d.ForEachNeighbor(i, fn)
}

// AppendEdges implements Batcher, serving the retained sorted snapshot.
func (df *Deltifier) AppendEdges(dst []Edge) []Edge {
	return append(dst, df.cur...)
}

// AppendNeighbors implements NeighborLister, forwarding to the wrapped
// model's native view when it has one.
func (df *Deltifier) AppendNeighbors(i int, dst []int32) []int32 {
	if df.downstream != nil {
		return df.downstream.AppendNeighbors(i, dst)
	}
	return AppendNeighbors(df.d, i, dst)
}

// AppendDeltas implements DeltaBatcher by merging the retained snapshots.
func (df *Deltifier) AppendDeltas(born, died []Edge) (b, d []Edge) {
	if !df.stepped {
		return born, died
	}
	return diffSortedEdges(df.prev, df.cur, born, died)
}
