package dyngraph

import "repro/internal/rng"

// Subsample wraps a Dynamic so that each node exposes only a uniformly
// random subset of at most K of its current neighbors. This is exactly the
// reduction sketched in the paper's conclusions: "a randomized protocol in
// which, at every step, a node that possesses the information transmits it
// to a randomly chosen subset of neighbors ... can be reduced to the
// analysis of flooding in a 'virtual' dynamic graph in which a subset of the
// edges are removed."
//
// The subset is resampled on every Step, and within one snapshot it is
// stable per node (repeated queries of the same node in the same step see
// the same subset). Note that subsampling is directional: i keeping j does
// not imply j keeps i, matching push-style gossip.
type Subsample struct {
	inner Dynamic
	k     int
	r     *rng.RNG
	epoch uint64
	// Per-node cache of the sampled neighbor subset, keyed by epoch.
	cacheEpoch []uint64
	cache      [][]int32
	scratch    []int32
}

// NewSubsample wraps inner so each node forwards to at most k random
// neighbors per step. It panics if k <= 0.
func NewSubsample(inner Dynamic, k int, r *rng.RNG) *Subsample {
	if k <= 0 {
		panic("dyngraph: NewSubsample needs k > 0")
	}
	return &Subsample{
		inner:      inner,
		k:          k,
		r:          r,
		epoch:      1,
		cacheEpoch: make([]uint64, inner.N()),
		cache:      make([][]int32, inner.N()),
	}
}

// N implements Dynamic.
func (s *Subsample) N() int { return s.inner.N() }

// Step implements Dynamic: advances the inner graph and invalidates all
// sampled subsets.
func (s *Subsample) Step() {
	s.inner.Step()
	s.epoch++
}

// fill samples node i's neighbor subset for the current epoch (at most
// once per epoch; repeated calls in the same step are cache hits).
func (s *Subsample) fill(i int) {
	if s.cacheEpoch[i] == s.epoch {
		return
	}
	s.scratch = AppendNeighbors(s.inner, i, s.scratch[:0])
	chosen := s.cache[i][:0]
	if len(s.scratch) <= s.k {
		chosen = append(chosen, s.scratch...)
	} else {
		for _, idx := range s.r.SampleDistinct(len(s.scratch), s.k) {
			chosen = append(chosen, s.scratch[idx])
		}
	}
	s.cache[i] = chosen
	s.cacheEpoch[i] = s.epoch
}

// ForEachNeighbor implements Dynamic, yielding the sampled subset of i's
// current neighbors.
func (s *Subsample) ForEachNeighbor(i int, fn func(j int)) {
	s.fill(i)
	for _, j := range s.cache[i] {
		fn(int(j))
	}
}

// AppendNeighbors implements NeighborLister. Subsample deliberately does
// NOT implement Batcher: its virtual graph is directed (i keeping j does
// not imply j keeps i), and the sampling is lazy per queried node — batch
// consumers would both break push-gossip semantics and change the random
// stream. Per-node batch access preserves both.
func (s *Subsample) AppendNeighbors(i int, dst []int32) []int32 {
	s.fill(i)
	return append(dst, s.cache[i]...)
}
