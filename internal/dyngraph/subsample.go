package dyngraph

import "repro/internal/rng"

// Subsample wraps a Dynamic so that each node exposes only a uniformly
// random subset of at most K of its current neighbors. This is exactly the
// reduction sketched in the paper's conclusions: "a randomized protocol in
// which, at every step, a node that possesses the information transmits it
// to a randomly chosen subset of neighbors ... can be reduced to the
// analysis of flooding in a 'virtual' dynamic graph in which a subset of the
// edges are removed."
//
// The subset is resampled on every Step, and within one snapshot it is
// stable per node. Each node's subset is drawn from its own (node, epoch)
// stream derived from a base seed fixed at construction, so the sampled
// virtual graph is a pure function of (inner graph, base seed, time) —
// independent of which nodes are queried, in what order, or how often.
// That query-order independence is what lets the whole-snapshot arc batch
// (AppendArcs) and lazy per-node queries (AppendNeighbors) expose the very
// same virtual graph, so the flooding arc-scan and member-scan paths return
// identical results. Note that subsampling is directional: i keeping j does
// not imply j keeps i, matching push-style gossip.
type Subsample struct {
	inner  Dynamic
	lister NeighborLister // inner as NeighborLister, nil if unimplemented
	k      int
	base   uint64 // seed of the per-(node, epoch) sampling streams
	epoch  uint64
	// Per-node cache of the sampled neighbor subset, keyed by epoch.
	cacheEpoch []uint64
	cache      [][]int32
	scratch    []int32 // inner-neighbor buffer
	idx        []int   // SampleDistinctInto buffer
	local      rng.RNG // reseeded per (node, epoch) draw
}

// Bytes returns the heap bytes retained by the wrapper's caches and
// buffers — a telemetry accessor, not a hot-path call.
func (s *Subsample) Bytes() int64 {
	b := int64(cap(s.cacheEpoch))*8 + int64(cap(s.cache))*24 +
		int64(cap(s.scratch))*4 + int64(cap(s.idx))*8
	for _, l := range s.cache[:cap(s.cache)] {
		b += int64(cap(l)) * 4
	}
	return b
}

// NewSubsample wraps inner so each node forwards to at most k random
// neighbors per step, consuming one draw from r as the base seed of the
// per-(node, epoch) sampling streams. It panics if k <= 0.
func NewSubsample(inner Dynamic, k int, r *rng.RNG) *Subsample {
	s := &Subsample{}
	s.Reset(inner, k, r)
	return s
}

// Reset re-targets s at a (possibly different) inner graph with a fresh
// base seed drawn from r, reusing the per-node caches whenever the node
// count allows — the scratch-reuse entry point that lets one Subsample
// serve every trial of a sweep without reallocating. It panics if k <= 0.
func (s *Subsample) Reset(inner Dynamic, k int, r *rng.RNG) {
	if k <= 0 {
		panic("dyngraph: NewSubsample needs k > 0")
	}
	n := inner.N()
	s.inner = inner
	s.lister, _ = inner.(NeighborLister)
	s.k = k
	s.base = r.Uint64()
	s.epoch = 1
	if cap(s.cacheEpoch) < n {
		s.cacheEpoch = make([]uint64, n)
		s.cache = make([][]int32, n)
	} else {
		s.cacheEpoch = s.cacheEpoch[:n]
		clear(s.cacheEpoch)
		s.cache = s.cache[:n]
	}
}

// N implements Dynamic.
func (s *Subsample) N() int { return s.inner.N() }

// Step implements Dynamic: advances the inner graph and invalidates all
// sampled subsets.
func (s *Subsample) Step() {
	s.inner.Step()
	s.epoch++
}

// fill samples node i's neighbor subset for the current epoch (at most
// once per epoch; repeated calls in the same step are cache hits). The
// draw comes from the dedicated (node, epoch) stream, so fill order across
// nodes never shifts any node's subset.
func (s *Subsample) fill(i int) {
	if s.cacheEpoch[i] == s.epoch {
		return
	}
	if s.lister != nil {
		s.scratch = s.lister.AppendNeighbors(i, s.scratch[:0])
	} else {
		s.scratch = AppendNeighbors(s.inner, i, s.scratch[:0])
	}
	chosen := s.cache[i][:0]
	if len(s.scratch) <= s.k {
		chosen = append(chosen, s.scratch...)
	} else {
		s.local.Reseed(rng.Seed(s.base, s.epoch, uint64(i)))
		s.idx = s.local.SampleDistinctInto(len(s.scratch), s.k, s.idx[:0])
		for _, idx := range s.idx {
			chosen = append(chosen, s.scratch[idx])
		}
	}
	s.cache[i] = chosen
	s.cacheEpoch[i] = s.epoch
}

// ForEachNeighbor implements Dynamic, yielding the sampled subset of i's
// current neighbors.
func (s *Subsample) ForEachNeighbor(i int, fn func(j int)) {
	s.fill(i)
	for _, j := range s.cache[i] {
		fn(int(j))
	}
}

// AppendNeighbors implements NeighborLister, the lazy per-node view: only
// queried nodes are sampled, which is what directed push semantics need
// from consumers that touch few nodes per step.
func (s *Subsample) AppendNeighbors(i int, dst []int32) []int32 {
	s.fill(i)
	return append(dst, s.cache[i]...)
}

// AppendArcs implements ArcBatcher, enumerating every node's sampled
// subset as directed arcs i → j ("i transmits to j"). Subsample
// deliberately does NOT implement Batcher: the virtual graph is directed,
// and undirected consumers would propagate against kept arcs. Because
// subsets are drawn from per-(node, epoch) streams, batching samples the
// same virtual graph the lazy view exposes.
func (s *Subsample) AppendArcs(dst []Edge) []Edge {
	n := s.inner.N()
	for i := 0; i < n; i++ {
		s.fill(i)
		for _, j := range s.cache[i] {
			dst = append(dst, Edge{int32(i), j})
		}
	}
	return dst
}
