package dyngraph

import "repro/internal/graph"

// IntervalConnectivity analyzes a recorded trace for the T-interval
// connectivity property of Kuhn, Lynch and Oshman (STOC 2010), the
// worst-case stability condition the paper contrasts its probabilistic
// framework with: a dynamic graph is T-interval connected if for every
// window of T consecutive snapshots there is a *stable* connected spanning
// subgraph (equivalently: the intersection of the window's edge sets is
// connected).
//
// MaxT returns the largest T for which the trace is T-interval connected
// (0 if even single snapshots are disconnected — the typical situation for
// the paper's sparse MEGs, which is exactly why the paper's machinery is
// needed there).
func IntervalConnectivity(tr *Trace) (maxT int) {
	steps := tr.Len()
	if steps == 0 {
		return 0
	}
	for t := 1; t <= steps; t++ {
		if !isTIntervalConnected(tr, t) {
			return t - 1
		}
	}
	return steps
}

// IsTIntervalConnected reports whether the trace satisfies T-interval
// connectivity for the given T >= 1.
func IsTIntervalConnected(tr *Trace, t int) bool {
	if t < 1 {
		return false
	}
	return isTIntervalConnected(tr, t)
}

func isTIntervalConnected(tr *Trace, t int) bool {
	steps := tr.Len()
	if t > steps {
		return false
	}
	for start := 0; start+t <= steps; start++ {
		if !windowIntersectionConnected(tr, start, t) {
			return false
		}
	}
	return true
}

// windowIntersectionConnected intersects the edge sets of snapshots
// [start, start+t) and checks connectivity of the result.
func windowIntersectionConnected(tr *Trace, start, t int) bool {
	// Count occurrences of each edge across the window; an edge is stable
	// iff it appears in all t snapshots.
	counts := make(map[Edge]int)
	for s := start; s < start+t; s++ {
		for _, e := range tr.EdgesAt(s) {
			counts[e]++
		}
	}
	b := graph.NewBuilder(tr.N())
	for e, c := range counts {
		if c == t {
			b.AddEdge(int(e.U), int(e.V))
		}
	}
	return b.Build().IsConnected()
}
