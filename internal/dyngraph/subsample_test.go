package dyngraph

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestSubsampleArcsMatchLazyViews pins the property the per-(node, epoch)
// sampling scheme exists for: the whole-snapshot arc batch and the lazy
// per-node neighbor view expose the same virtual graph, regardless of
// which nodes were queried first, in what order, or across how many
// epochs.
func TestSubsampleArcsMatchLazyViews(t *testing.T) {
	g := graph.Gnp(40, 0.3, rng.New(3))
	// Two identically-seeded wrappers; one is read batch-first, the other
	// lazily and only at scattered nodes before batching.
	mk := func() *Subsample { return NewSubsample(NewStatic(g), 2, rng.New(21)) }
	batchFirst, lazyFirst := mk(), mk()
	for step := 0; step < 5; step++ {
		arcs := batchFirst.AppendArcs(nil)

		// Query the other wrapper lazily, high nodes first.
		perNode := make(map[int][]int32)
		for i := g.N() - 1; i >= 0; i-- {
			perNode[i] = lazyFirst.AppendNeighbors(i, nil)
		}
		var fromLazy []Edge
		for i := 0; i < g.N(); i++ {
			for _, j := range perNode[i] {
				fromLazy = append(fromLazy, Edge{int32(i), j})
			}
		}
		if !reflect.DeepEqual(arcs, fromLazy) {
			t.Fatalf("step %d: arc batch and lazy views disagree:\n%v\nvs\n%v", step, arcs, fromLazy)
		}
		// The batch must also agree with a re-read of the same wrapper
		// (within-epoch stability) and with ForEachNeighbor.
		if again := batchFirst.AppendArcs(nil); !reflect.DeepEqual(arcs, again) {
			t.Fatalf("step %d: arc batch unstable within one epoch", step)
		}
		batchFirst.Step()
		lazyFirst.Step()
	}
}

// TestSubsampleArcsAreDirected checks the ArcBatcher contract: each arc is
// one node's kept edge, at most k per tail, and a valid inner edge.
func TestSubsampleArcsAreDirected(t *testing.T) {
	g := graph.Complete(12)
	sub := NewSubsample(NewStatic(g), 3, rng.New(9))
	arcs := sub.AppendArcs(nil)
	if len(arcs) != 12*3 {
		t.Fatalf("complete graph with k=3 should keep 36 arcs, got %d", len(arcs))
	}
	perTail := map[int32]int{}
	for _, a := range arcs {
		if a.U == a.V {
			t.Fatalf("self arc %v", a)
		}
		if !g.HasEdge(int(a.U), int(a.V)) {
			t.Fatalf("arc %v is not an inner edge", a)
		}
		perTail[a.U]++
	}
	for tail, c := range perTail {
		if c > 3 {
			t.Fatalf("node %d keeps %d arcs, want <= k=3", tail, c)
		}
	}
}

// TestSubsampleResetReuses pins the scratch-reuse contract: a Reset
// re-targets the wrapper with fresh sampling streams and no stale subsets.
func TestSubsampleResetReuses(t *testing.T) {
	g := graph.Complete(16)
	r := rng.New(4)
	sub := NewSubsample(NewStatic(g), 2, r)
	first := sub.AppendArcs(nil)
	sub.Step() // leave mid-epoch state behind

	sub.Reset(NewStatic(g), 2, rng.New(4))
	// Same inner graph, and the base seed comes from an identically-seeded
	// generator at the same position: the resampled snapshot must replay.
	replay := NewSubsample(NewStatic(g), 2, rng.New(4)).AppendArcs(nil)
	got := sub.AppendArcs(nil)
	if !reflect.DeepEqual(got, replay) {
		t.Fatalf("Reset wrapper diverges from fresh wrapper:\n%v\nvs\n%v", got, replay)
	}
	_ = first
	// A different seed must (overwhelmingly) change some subset.
	sub.Reset(NewStatic(g), 2, rng.New(5))
	if reflect.DeepEqual(sub.AppendArcs(nil), replay) {
		t.Fatal("Reset with a new seed replayed the old subsets")
	}
}
