package dyngraph

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestStaticAdapter(t *testing.T) {
	g := graph.Cycle(5)
	d := NewStatic(g)
	if d.N() != 5 {
		t.Fatal("N wrong")
	}
	d.Step() // no-op
	count := 0
	d.ForEachNeighbor(0, func(j int) {
		if j != 1 && j != 4 {
			t.Fatalf("unexpected neighbor %d", j)
		}
		count++
	})
	if count != 2 {
		t.Fatalf("neighbor count = %d", count)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := graph.Grid(4, 4)
	snap := Snapshot(NewStatic(g))
	if snap.N() != g.N() || snap.M() != g.M() {
		t.Fatalf("snapshot differs: %v vs %v", snap, g)
	}
	for _, e := range g.Edges() {
		if !snap.HasEdge(e[0], e[1]) {
			t.Fatalf("snapshot missing edge %v", e)
		}
	}
}

func TestEdgeCount(t *testing.T) {
	g := graph.Complete(6)
	if EdgeCount(NewStatic(g)) != 15 {
		t.Fatal("EdgeCount wrong")
	}
}

func TestAverageDegreeOver(t *testing.T) {
	g := graph.Cycle(10)
	avg := AverageDegreeOver(NewStatic(g), 5)
	if avg != 2 {
		t.Fatalf("average degree = %v, want 2", avg)
	}
}

// flicker is a test Dynamic that alternates between a cycle and the empty
// graph each step.
type flicker struct {
	g  *graph.Graph
	on bool
}

func (f *flicker) N() int { return f.g.N() }
func (f *flicker) Step()  { f.on = !f.on }
func (f *flicker) ForEachNeighbor(i int, fn func(j int)) {
	if f.on {
		f.g.ForEachNeighbor(i, fn)
	}
}

func TestTraceCaptureAndReplay(t *testing.T) {
	src := &flicker{g: graph.Cycle(6), on: true}
	tr := Capture(src, 3) // snapshots: on, off, on, off
	if tr.Len() != 4 || tr.N() != 6 {
		t.Fatalf("trace shape: len=%d n=%d", tr.Len(), tr.N())
	}
	if len(tr.EdgesAt(0)) != 6 || len(tr.EdgesAt(1)) != 0 {
		t.Fatalf("captured edges wrong: %d, %d", len(tr.EdgesAt(0)), len(tr.EdgesAt(1)))
	}
	rep := tr.Replay()
	if EdgeCount(rep) != 6 {
		t.Fatal("replay snapshot 0 wrong")
	}
	rep.Step()
	if EdgeCount(rep) != 0 {
		t.Fatal("replay snapshot 1 wrong")
	}
	rep.Step()
	if EdgeCount(rep) != 6 {
		t.Fatal("replay snapshot 2 wrong")
	}
	// Stepping past the end freezes the final snapshot.
	rep.Step()
	rep.Step()
	rep.Step()
	if EdgeCount(rep) != 0 {
		t.Fatal("replay should freeze at last snapshot")
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	src := &flicker{g: graph.Grid(3, 3), on: true}
	tr := Capture(src, 5)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != tr.N() || got.Len() != tr.Len() {
		t.Fatalf("round trip shape mismatch: %d/%d vs %d/%d", got.N(), got.Len(), tr.N(), tr.Len())
	}
	for s := 0; s < tr.Len(); s++ {
		a, b := tr.EdgesAt(s), got.EdgesAt(s)
		if len(a) != len(b) {
			t.Fatalf("step %d edge count mismatch", s)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("step %d edge %d mismatch: %v vs %v", s, i, a[i], b[i])
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReadTraceTruncatedStreams(t *testing.T) {
	// Failure injection: truncate a valid stream at every prefix length;
	// the reader must error, never panic or return a corrupt trace.
	src := &flicker{g: graph.Grid(3, 3), on: true}
	tr := Capture(src, 4)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 3 {
		if _, err := ReadTrace(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated stream of %d/%d bytes accepted", cut, len(full))
		}
	}
}

func TestReadTraceRejectsCorruptEdges(t *testing.T) {
	// Flip the node count down so recorded edges fall out of range.
	src := &flicker{g: graph.Cycle(8), on: true}
	tr := Capture(src, 1)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 2 // node count little-endian: 8 -> 2
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("out-of-range edges accepted")
	}
}

func TestSubsampleLimitsDegree(t *testing.T) {
	g := graph.Complete(20)
	r := rng.New(7)
	sub := NewSubsample(NewStatic(g), 3, r)
	for i := 0; i < 20; i++ {
		count := 0
		sub.ForEachNeighbor(i, func(j int) {
			if j == i {
				t.Fatal("self neighbor")
			}
			count++
		})
		if count != 3 {
			t.Fatalf("node %d sees %d neighbors, want 3", i, count)
		}
	}
}

func TestSubsampleStableWithinStep(t *testing.T) {
	g := graph.Complete(10)
	sub := NewSubsample(NewStatic(g), 2, rng.New(11))
	grab := func() []int {
		var out []int
		sub.ForEachNeighbor(0, func(j int) { out = append(out, j) })
		return out
	}
	a := grab()
	b := grab()
	if len(a) != len(b) {
		t.Fatal("subset changed within a step")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("subset changed within a step")
		}
	}
	sub.Step()
	// After many steps, the subset should change at least once.
	changed := false
	for trial := 0; trial < 20 && !changed; trial++ {
		c := grab()
		for i := range c {
			if i >= len(a) || c[i] != a[i] {
				changed = true
				break
			}
		}
		sub.Step()
	}
	if !changed {
		t.Fatal("subset never resampled across steps")
	}
}

func TestSubsampleKeepsAllWhenFewNeighbors(t *testing.T) {
	g := graph.Path(3) // middle node has 2 neighbors
	sub := NewSubsample(NewStatic(g), 5, rng.New(13))
	count := 0
	sub.ForEachNeighbor(1, func(j int) { count++ })
	if count != 2 {
		t.Fatalf("should keep all %d neighbors, saw %d", 2, count)
	}
}

func TestSubsamplePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	NewSubsample(NewStatic(graph.Cycle(3)), 0, rng.New(1))
}

func TestTracePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewTrace(0) did not panic")
			}
		}()
		NewTrace(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched Record did not panic")
			}
		}()
		tr := NewTrace(3)
		tr.Record(NewStatic(graph.Cycle(5)))
	}()
}
