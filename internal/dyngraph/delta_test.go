package dyngraph

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
)

func sortedEdgeSet(edges []Edge) []Edge {
	out := append([]Edge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// checkDeltasTrackSnapshots steps d, applying its deltas to an Adjacency
// seeded from the initial snapshot, and fails if the maintained store
// ever diverges from a fresh snapshot batch.
func checkDeltasTrackSnapshots(t *testing.T, d Dynamic, steps int) {
	t.Helper()
	db, ok := d.(DeltaBatcher)
	if !ok {
		t.Fatal("model does not implement DeltaBatcher")
	}
	var adj Adjacency
	adj.Reset(d.N())
	adj.AddEdges(AppendEdges(d, nil))
	prev := sortedEdgeSet(AppendEdges(d, nil))
	for s := 1; s <= steps; s++ {
		d.Step()
		born, died := db.AppendDeltas(nil, nil)
		adj.Apply(born, died)
		cur := sortedEdgeSet(AppendEdges(d, nil))
		if got := sortedEdgeSet(adj.AppendEdges(nil)); !reflect.DeepEqual(got, cur) {
			t.Fatalf("step %d: delta-maintained store %v != snapshot %v (deltas +%v -%v)",
				s, got, cur, born, died)
		}
		if len(born)+len(died) != len(symmetricDiff(prev, cur)) {
			t.Fatalf("step %d: deltas +%d/-%d but snapshots differ in %d edges",
				s, len(born), len(died), len(symmetricDiff(prev, cur)))
		}
		prev = cur
	}
}

func symmetricDiff(a, b []Edge) []Edge {
	in := map[Edge]int{}
	for _, e := range a {
		in[e]++
	}
	for _, e := range b {
		in[e]--
	}
	var out []Edge
	for e, c := range in {
		if c != 0 {
			out = append(out, e)
		}
	}
	return out
}

// TestReplayAppendDeltas pins the trace replay's native delta view: churn
// between recorded snapshots, empty before the first Step and after the
// trace freezes at its end.
func TestReplayAppendDeltas(t *testing.T) {
	src := &flicker{g: graph.Cycle(6), on: true}
	tr := Capture(src, 3) // snapshots: on, off, on, off
	r := tr.Replay()
	if born, died := r.AppendDeltas(nil, nil); len(born)+len(died) != 0 {
		t.Fatalf("deltas before the first Step: +%v -%v", born, died)
	}
	checkDeltasTrackSnapshots(t, tr.Replay(), 6) // 3 recorded steps + 3 frozen

	// Past the end the snapshot is frozen: deltas must stay empty even
	// though the last recorded transition was a full flip.
	r2 := tr.Replay()
	for i := 0; i < 4; i++ {
		r2.Step()
	}
	if born, died := r2.AppendDeltas(nil, nil); len(born)+len(died) != 0 {
		t.Fatalf("deltas past the trace end: +%v -%v", born, died)
	}
}

// TestStaticAppendDeltas: a static graph never churns.
func TestStaticAppendDeltas(t *testing.T) {
	s := NewStatic(graph.Torus(4, 4))
	checkDeltasTrackSnapshots(t, s, 3)
}

// TestDeltifierOnFlicker drives the generic diff adapter over the
// worst-case dynamic — every edge flips every step — and over a no-op.
func TestDeltifierOnFlicker(t *testing.T) {
	checkDeltasTrackSnapshots(t, NewDeltifier(&flicker{g: graph.Cycle(6), on: true}), 7)
	checkDeltasTrackSnapshots(t, NewDeltifier(NewStatic(graph.Grid(3, 3))), 3)
}

// TestAdjacencyBasics covers the store operations the engines compose.
func TestAdjacencyBasics(t *testing.T) {
	var a Adjacency
	a.Reset(4)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	a.AddEdge(0, 3)
	if got := a.Degree(0); got != 2 {
		t.Fatalf("Degree(0) = %d, want 2", got)
	}
	a.RemoveEdge(0, 1)
	if got := sortedEdgeSet(a.AppendEdges(nil)); !reflect.DeepEqual(got, []Edge{{0, 3}, {1, 2}}) {
		t.Fatalf("after removal: %v", got)
	}
	a.Apply([]Edge{{0, 1}, {2, 3}}, []Edge{{1, 2}})
	if got := sortedEdgeSet(a.AppendEdges(nil)); !reflect.DeepEqual(got, []Edge{{0, 1}, {0, 3}, {2, 3}}) {
		t.Fatalf("after Apply: %v", got)
	}
	// Reset reuses storage and empties the universe.
	a.Reset(2)
	if got := a.AppendEdges(nil); len(got) != 0 {
		t.Fatalf("after Reset: %v", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("RemoveEdge of an absent edge did not panic")
		}
	}()
	a.RemoveEdge(0, 1)
}
