package dyngraph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int32
}

// Trace is a recorded sequence of snapshots of a dynamic graph, replayable
// as a Dynamic. Traces decouple expensive model simulation from repeated
// analysis and make dynamics serializable.
type Trace struct {
	n     int
	steps [][]Edge
}

// NewTrace creates an empty trace for an n-node graph.
func NewTrace(n int) *Trace {
	if n <= 0 {
		panic("dyngraph: NewTrace needs n > 0")
	}
	return &Trace{n: n}
}

// Record captures the current snapshot of d and appends it to the trace.
func (tr *Trace) Record(d Dynamic) {
	if d.N() != tr.n {
		panic("dyngraph: Record node count mismatch")
	}
	tr.steps = append(tr.steps, AppendEdges(d, nil))
}

// Capture records steps+1 snapshots of d: the current one and each snapshot
// after the next `steps` Step calls.
func Capture(d Dynamic, steps int) *Trace {
	tr := NewTrace(d.N())
	tr.Record(d)
	for t := 0; t < steps; t++ {
		d.Step()
		tr.Record(d)
	}
	return tr
}

// N returns the node count.
func (tr *Trace) N() int { return tr.n }

// Len returns the number of recorded snapshots.
func (tr *Trace) Len() int { return len(tr.steps) }

// EdgesAt returns the recorded edges of snapshot t.
func (tr *Trace) EdgesAt(t int) []Edge { return tr.steps[t] }

// Replay returns a Dynamic that replays the trace from snapshot 0. Stepping
// past the final snapshot keeps the last snapshot forever (the trace is
// "frozen" at its end).
func (tr *Trace) Replay() *Replay {
	r := &Replay{trace: tr, deltaT: -1}
	r.build()
	return r
}

// Replay is a Dynamic that replays a Trace.
type Replay struct {
	trace *Trace
	t     int
	adj   [][]int32
	// prevSorted/curSorted are lazily maintained sorted snapshot copies
	// backing AppendDeltas; deltaT remembers which step they describe.
	prevSorted, curSorted []Edge
	deltaT                int
}

func (r *Replay) build() {
	if r.adj == nil {
		r.adj = make([][]int32, r.trace.n)
	}
	for i := range r.adj {
		r.adj[i] = r.adj[i][:0]
	}
	for _, e := range r.cur() {
		r.adj[e.U] = append(r.adj[e.U], e.V)
		r.adj[e.V] = append(r.adj[e.V], e.U)
	}
}

// cur returns the recorded edges of the current (clamped) snapshot.
func (r *Replay) cur() []Edge {
	idx := r.t
	if idx >= len(r.trace.steps) {
		idx = len(r.trace.steps) - 1
	}
	if idx < 0 {
		return nil
	}
	return r.trace.steps[idx]
}

// N implements Dynamic.
func (r *Replay) N() int { return r.trace.n }

// Step implements Dynamic.
func (r *Replay) Step() {
	r.t++
	r.build()
}

// ForEachNeighbor implements Dynamic.
func (r *Replay) ForEachNeighbor(i int, fn func(j int)) {
	for _, j := range r.adj[i] {
		fn(int(j))
	}
}

// AppendEdges implements Batcher: recorded snapshots are already flat edge
// batches, so replay serves them with a single copy.
func (r *Replay) AppendEdges(dst []Edge) []Edge {
	return append(dst, r.cur()...)
}

// AppendNeighbors implements NeighborLister.
func (r *Replay) AppendNeighbors(i int, dst []int32) []int32 {
	return append(dst, r.adj[i]...)
}

// AppendDeltas implements DeltaBatcher by diffing the recorded previous and
// current snapshots. A trace stores whole snapshots, not churn, so the diff
// sorts two copies on the first call after a Step (O(m log m), cached until
// the next Step); past the end of the trace the snapshot is frozen and the
// deltas are empty.
func (r *Replay) AppendDeltas(born, died []Edge) (b, d []Edge) {
	if r.t == 0 {
		return born, died
	}
	prevIdx, curIdx := r.t-1, r.t
	if last := len(r.trace.steps) - 1; curIdx > last {
		curIdx = last
	}
	if prevIdx >= curIdx {
		return born, died // frozen: both clamp to the final snapshot
	}
	if r.deltaT != r.t {
		r.prevSorted = sortEdges(append(r.prevSorted[:0], r.trace.steps[prevIdx]...))
		r.curSorted = sortEdges(append(r.curSorted[:0], r.trace.steps[curIdx]...))
		r.deltaT = r.t
	}
	return diffSortedEdges(r.prevSorted, r.curSorted, born, died)
}

// traceMagic identifies the binary trace format.
const traceMagic = uint32(0x44594E47) // "DYNG"

// WriteTo serializes the trace in a compact binary format.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		n, err := bw.Write(buf[:])
		written += int64(n)
		return err
	}
	if err := put32(traceMagic); err != nil {
		return written, err
	}
	if err := put32(uint32(tr.n)); err != nil {
		return written, err
	}
	if err := put32(uint32(len(tr.steps))); err != nil {
		return written, err
	}
	for _, step := range tr.steps {
		if err := put32(uint32(len(step))); err != nil {
			return written, err
		}
		for _, e := range step {
			if err := put32(uint32(e.U)); err != nil {
				return written, err
			}
			if err := put32(uint32(e.V)); err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	get32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, fmt.Errorf("dyngraph: reading trace header: %w", err)
	}
	if magic != traceMagic {
		return nil, errors.New("dyngraph: not a trace stream")
	}
	n, err := get32()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<28 {
		return nil, fmt.Errorf("dyngraph: implausible node count %d", n)
	}
	steps, err := get32()
	if err != nil {
		return nil, err
	}
	tr := NewTrace(int(n))
	for s := uint32(0); s < steps; s++ {
		count, err := get32()
		if err != nil {
			return nil, fmt.Errorf("dyngraph: reading step %d: %w", s, err)
		}
		edges := make([]Edge, count)
		for i := range edges {
			u, err := get32()
			if err != nil {
				return nil, err
			}
			v, err := get32()
			if err != nil {
				return nil, err
			}
			if u >= n || v >= n || u >= v {
				return nil, fmt.Errorf("dyngraph: invalid edge (%d,%d) in step %d", u, v, s)
			}
			edges[i] = Edge{int32(u), int32(v)}
		}
		tr.steps = append(tr.steps, edges)
	}
	return tr, nil
}
