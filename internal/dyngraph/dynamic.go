// Package dyngraph defines the discrete-time dynamic graph abstraction that
// every model in this repository implements (edge-MEGs, node-MEGs, mobility
// models, random-path models) and that the flooding engine consumes. It also
// provides snapshot adapters, trace recording and replay, and the virtual
// subsampled graph used to reduce randomized gossip to flooding (Section 5
// of the paper).
package dyngraph

import "repro/internal/graph"

// Dynamic is a discrete-time dynamic graph G([n], {E_t}) on the vertex set
// {0, ..., n-1}. At any moment the object exposes the current snapshot E_t;
// Step advances the process to E_{t+1}.
//
// Implementations are deterministic given their seed, and are not safe for
// concurrent use: parallel experiments construct one instance per worker.
type Dynamic interface {
	// N returns the number of nodes.
	N() int
	// Step advances the process one time unit.
	Step()
	// ForEachNeighbor calls fn for every node j adjacent to i in the
	// current snapshot. Order is unspecified; fn must not mutate the graph.
	ForEachNeighbor(i int, fn func(j int))
}

// Static adapts a fixed graph.Graph as a Dynamic whose snapshot never
// changes. It is the degenerate baseline in experiments (a dynamic graph
// with mixing time 0) and a convenience in tests.
type Static struct {
	g *graph.Graph
}

// NewStatic wraps g.
func NewStatic(g *graph.Graph) *Static { return &Static{g: g} }

// N implements Dynamic.
func (s *Static) N() int { return s.g.N() }

// Step implements Dynamic; the snapshot is constant.
func (s *Static) Step() {}

// ForEachNeighbor implements Dynamic.
func (s *Static) ForEachNeighbor(i int, fn func(j int)) {
	s.g.ForEachNeighbor(i, fn)
}

// AppendEdges implements Batcher.
func (s *Static) AppendEdges(dst []Edge) []Edge {
	n := s.g.N()
	for i := 0; i < n; i++ {
		for _, j := range s.g.Neighbors(i) {
			if int32(i) < j {
				dst = append(dst, Edge{int32(i), j})
			}
		}
	}
	return dst
}

// AppendNeighbors implements NeighborLister.
func (s *Static) AppendNeighbors(i int, dst []int32) []int32 {
	return append(dst, s.g.Neighbors(i)...)
}

// AppendDeltas implements DeltaBatcher: a static snapshot never churns, so
// delta consumers pay exactly nothing per step — the degenerate best case
// of the incremental dynamics API.
func (s *Static) AppendDeltas(born, died []Edge) (b, d []Edge) {
	return born, died
}

// Graph returns the wrapped static graph.
func (s *Static) Graph() *graph.Graph { return s.g }

// Snapshot materializes the current snapshot of d as a static graph. It
// costs O(n + m) and is used by observers and stationarity estimators.
func Snapshot(d Dynamic) *graph.Graph {
	b := graph.NewBuilder(d.N())
	for _, e := range AppendEdges(d, nil) {
		b.AddEdge(int(e.U), int(e.V))
	}
	return b.Build()
}

// EdgeCount returns the number of edges in the current snapshot.
func EdgeCount(d Dynamic) int {
	if b, ok := d.(Batcher); ok {
		return len(b.AppendEdges(nil))
	}
	total := 0
	for i := 0; i < d.N(); i++ {
		d.ForEachNeighbor(i, func(j int) { total++ })
	}
	return total / 2 // each undirected edge reported from both endpoints
}

// AverageDegreeOver advances d by steps and returns the average per-node
// degree across all visited snapshots (including the initial one).
func AverageDegreeOver(d Dynamic, steps int) float64 {
	total := 0
	for t := 0; t <= steps; t++ {
		total += 2 * EdgeCount(d)
		if t < steps {
			d.Step()
		}
	}
	return float64(total) / float64(d.N()*(steps+1))
}
