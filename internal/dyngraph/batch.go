package dyngraph

// Batcher is an optional extension of Dynamic that exposes the current
// snapshot as a flat edge batch. Implementations append every undirected
// edge {u, v} exactly once, normalized to U < V, in an unspecified but
// deterministic order; the result must be consistent with ForEachNeighbor.
//
// Batch access is the hot path of the flooding engine: a flat []Edge scan
// replaces two closure invocations per edge with a contiguous read, and
// models whose internal state already is edge-shaped (the sparse edge-MEG
// alive list, recorded traces, static graphs, geometry cell lists) produce
// it without materializing adjacency lists at all. Models that cannot
// produce batches cheaply simply do not implement the interface; the
// package-level AppendEdges falls back to ForEachNeighbor for them.
type Batcher interface {
	// AppendEdges appends the current snapshot's edges to dst and returns
	// the extended slice. Implementations must not retain dst.
	AppendEdges(dst []Edge) []Edge
}

// ArcBatcher is the directed counterpart of Batcher: an optional extension
// of Dynamic exposing the current snapshot as a flat batch of directed arcs
// U → V, meaning "U transmits to V". It exists for virtual graphs whose
// adjacency is asymmetric — the push-gossip subsampled graph, where node i
// keeping j does not imply j keeps i — which can therefore never satisfy
// the undirected Batcher contract. Consumers (the flooding arc-scan
// engine) must propagate information only from U to V, never backwards.
//
// A model implements at most one of Batcher and ArcBatcher.
type ArcBatcher interface {
	// AppendArcs appends every directed arc of the current snapshot to dst
	// exactly once and returns the extended slice, reusing Edge with U as
	// the tail and V as the head. Order is unspecified but deterministic;
	// implementations must not retain dst.
	AppendArcs(dst []Edge) []Edge
}

// NeighborLister is an optional extension of Dynamic that exposes one
// node's current neighbors as a slice batch, the per-node counterpart of
// Batcher. It serves consumers that touch few nodes per step (random
// walkers, push-gossip subsampling) where materializing the whole snapshot
// would be wasteful.
type NeighborLister interface {
	// AppendNeighbors appends the current neighbors of node i to dst and
	// returns the extended slice. Implementations must not retain dst, and
	// must report neighbors in the same order as ForEachNeighbor.
	AppendNeighbors(i int, dst []int32) []int32
}

// AppendEdges appends the current snapshot's edges of d to dst, using the
// model's native Batcher implementation when available and an adapter over
// ForEachNeighbor otherwise. The fallback assumes the model reports
// symmetric adjacency (both directions of every edge) and keeps the i < j
// half.
func AppendEdges(d Dynamic, dst []Edge) []Edge {
	if b, ok := d.(Batcher); ok {
		return b.AppendEdges(dst)
	}
	return appendEdgesViaCallback(d, dst)
}

// appendEdgesViaCallback adapts ForEachNeighbor. It lives outside
// AppendEdges so that the closure capturing dst — which costs a heap cell
// per call, even on paths that never reach it — is only materialized on
// the callback path, keeping the Batcher path allocation-free for the
// engine hot loops that seed scratch state through this helper.
func appendEdgesViaCallback(d Dynamic, dst []Edge) []Edge {
	n := d.N()
	for i := 0; i < n; i++ {
		d.ForEachNeighbor(i, func(j int) {
			if i < j {
				dst = append(dst, Edge{int32(i), int32(j)})
			}
		})
	}
	return dst
}

// AppendNeighbors appends the current neighbors of node i in d to dst,
// using the model's native NeighborLister implementation when available
// and an adapter over ForEachNeighbor otherwise.
func AppendNeighbors(d Dynamic, i int, dst []int32) []int32 {
	if l, ok := d.(NeighborLister); ok {
		return l.AppendNeighbors(i, dst)
	}
	d.ForEachNeighbor(i, func(j int) {
		dst = append(dst, int32(j))
	})
	return dst
}
