package nodemeg

import (
	"math"
	"testing"

	"repro/internal/flood"
	"repro/internal/graph"
	"repro/internal/markov"
	"repro/internal/rng"
	"repro/internal/stats"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// iidChain returns the chain whose every row equals pi (mixing time 1).
func iidChain(pi []float64) *markov.Chain {
	rows := make([][]float64, len(pi))
	for i := range rows {
		rows[i] = append([]float64(nil), pi...)
	}
	return markov.MustChain(rows)
}

func TestSimValidation(t *testing.T) {
	pi := []float64{0.5, 0.5}
	sampler := markov.NewSampler(iidChain(pi))
	if _, err := NewSim(0, sampler, SameState{S: 2}, pi, rng.New(1)); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewSim(5, sampler, SameState{S: 3}, pi, rng.New(1)); err == nil {
		t.Fatal("state-count mismatch accepted")
	}
	if _, err := NewSim(5, sampler, SameState{S: 2}, []float64{1}, rng.New(1)); err == nil {
		t.Fatal("short init accepted")
	}
}

func TestSameStateConnection(t *testing.T) {
	c := SameState{S: 4}
	if !c.Connected(2, 2) || c.Connected(1, 2) {
		t.Fatal("SameState semantics wrong")
	}
	if len(c.NeighborStates(3)) != 1 || c.NeighborStates(3)[0] != 3 {
		t.Fatal("SameState gamma wrong")
	}
}

func TestGridRadiusConnection(t *testing.T) {
	g := NewGridRadius(5, 1.5)
	// State (2,2) = 12; (2,3) = 13 at distance 1; (3,3) = 18 at sqrt(2).
	if !g.Connected(12, 13) || !g.Connected(12, 18) {
		t.Fatal("close points not connected")
	}
	// (2,2) and (2,4) at distance 2 > 1.5.
	if g.Connected(12, 14) {
		t.Fatal("far points connected")
	}
	// Symmetry.
	if g.Connected(13, 12) != g.Connected(12, 13) {
		t.Fatal("asymmetric")
	}
}

func TestGridRadiusGammaMatchesConnected(t *testing.T) {
	g := NewGridRadius(6, 2)
	for u := 0; u < g.NumStates(); u++ {
		inGamma := map[int]bool{}
		for _, v := range g.NeighborStates(u) {
			inGamma[int(v)] = true
		}
		for v := 0; v < g.NumStates(); v++ {
			if g.Connected(u, v) != inGamma[v] {
				t.Fatalf("gamma/connected mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func TestGridRadiusZero(t *testing.T) {
	g := NewGridRadius(3, 0)
	if !g.Connected(4, 4) || g.Connected(4, 5) {
		t.Fatal("r=0 should connect same point only")
	}
}

func TestBucketsTrackStates(t *testing.T) {
	pi := []float64{0.3, 0.7}
	sim, err := NewSim(100, markov.NewSampler(iidChain(pi)), SameState{S: 2}, pi, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		counts := sim.StateCounts()
		total := 0
		for st, c := range counts {
			total += c
			// Verify bucket contents match the state array.
			for _, i := range sim.buckets[st] {
				if sim.State(int(i)) != st {
					t.Fatalf("bucket %d contains node %d in state %d", st, i, sim.State(int(i)))
				}
			}
		}
		if total != 100 {
			t.Fatalf("buckets cover %d nodes", total)
		}
		sim.Step()
	}
}

func TestEnumAndScanAgree(t *testing.T) {
	// Same model once with the enumerating map, once with a FuncMap
	// falling back to O(n) scans: neighbor sets must coincide.
	pi := stats.Normalize([]float64{1, 2, 3, 4})
	mk := func(conn ConnectionMap, seed uint64) *Sim {
		sim, err := NewSim(40, markov.NewSampler(iidChain(pi)), conn, pi, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	a := mk(SameState{S: 4}, 7)
	b := mk(FuncMap{S: 4, Fn: func(u, v int) bool { return u == v }}, 7)
	for step := 0; step < 5; step++ {
		for i := 0; i < 40; i++ {
			if a.State(i) != b.State(i) {
				t.Fatal("same-seed sims diverged")
			}
			na := map[int]bool{}
			a.ForEachNeighbor(i, func(j int) { na[j] = true })
			nb := map[int]bool{}
			b.ForEachNeighbor(i, func(j int) { nb[j] = true })
			if len(na) != len(nb) {
				t.Fatalf("neighbor counts differ at node %d: %d vs %d", i, len(na), len(nb))
			}
			for j := range na {
				if !nb[j] {
					t.Fatalf("neighbor sets differ at node %d", i)
				}
			}
		}
		a.Step()
		b.Step()
	}
}

func TestPNMFormulaSameState(t *testing.T) {
	// With C = same-state and iid chain: P_NM = Σ π², P_NM2 = Σ π³.
	pi := stats.Normalize([]float64{1, 1, 2})
	conn := SameState{S: 3}
	wantPNM := 0.0
	wantPNM2 := 0.0
	for _, p := range pi {
		wantPNM += p * p
		wantPNM2 += p * p * p
	}
	if !almostEq(PNM(pi, conn), wantPNM, 1e-12) {
		t.Fatalf("PNM = %v, want %v", PNM(pi, conn), wantPNM)
	}
	if !almostEq(PNM2(pi, conn), wantPNM2, 1e-12) {
		t.Fatalf("PNM2 = %v, want %v", PNM2(pi, conn), wantPNM2)
	}
	if !almostEq(Eta(pi, conn), wantPNM2/(wantPNM*wantPNM), 1e-12) {
		t.Fatal("Eta inconsistent")
	}
}

func TestPNMUniformSameState(t *testing.T) {
	// Uniform π over S states, same-state connection: P_NM = 1/S, η = 1 —
	// incident edges exactly pairwise independent.
	pi := stats.Uniform(16)
	conn := SameState{S: 16}
	if !almostEq(PNM(pi, conn), 1.0/16, 1e-12) {
		t.Fatal("uniform PNM wrong")
	}
	if !almostEq(Eta(pi, conn), 1, 1e-12) {
		t.Fatalf("uniform eta = %v, want 1", Eta(pi, conn))
	}
}

func TestEtaGrowsWithSkew(t *testing.T) {
	// Skewing the stationary distribution concentrates nodes and breaks
	// pairwise independence: η must grow.
	uniform := stats.Uniform(8)
	skewed := stats.Normalize([]float64{100, 1, 1, 1, 1, 1, 1, 1})
	conn := SameState{S: 8}
	if Eta(skewed, conn) <= Eta(uniform, conn) {
		t.Fatalf("eta(skewed)=%v should exceed eta(uniform)=%v",
			Eta(skewed, conn), Eta(uniform, conn))
	}
}

func TestQAgainstEnumerationFallback(t *testing.T) {
	pi := stats.Normalize([]float64{3, 1, 2, 2})
	withEnum := Q(pi, SameState{S: 4})
	without := Q(pi, FuncMap{S: 4, Fn: func(u, v int) bool { return u == v }})
	for i := range withEnum {
		if !almostEq(withEnum[i], without[i], 1e-12) {
			t.Fatal("Q differs between enum and scan paths")
		}
	}
}

func TestEmpiricalMatchesExact(t *testing.T) {
	pi := stats.Normalize([]float64{2, 1, 1, 1})
	conn := SameState{S: 4}
	sim, err := NewSim(10, markov.NewSampler(iidChain(pi)), conn, pi, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	pnm, pnm2 := Empirical(sim, 30000, 1)
	if math.Abs(pnm-PNM(pi, conn)) > 0.01 {
		t.Fatalf("empirical PNM %v, exact %v", pnm, PNM(pi, conn))
	}
	if math.Abs(pnm2-PNM2(pi, conn)) > 0.01 {
		t.Fatalf("empirical PNM2 %v, exact %v", pnm2, PNM2(pi, conn))
	}
}

func TestFloodingOnWalkNodeMEG(t *testing.T) {
	// Integration: random-walk node-MEG on a grid with radius connection.
	// n walkers on an 8x8 grid, connect within sqrt(2): flooding completes.
	m := 8
	g := graph.Grid(m, m)
	chain := markov.LazyRandomWalkChain(g, 0.2)
	pi := markov.WalkStationary(g)
	conn := NewGridRadius(m, 1.5)
	sim, err := NewSim(50, markov.NewSparseSampler(chain), conn, pi, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	res := flood.Run(sim, 0, flood.Opts{MaxSteps: 20000, KeepTimeline: true})
	if !res.Completed {
		t.Fatal("flooding did not complete on walk node-MEG")
	}
	if !flood.GrowthIsMonotone(res.Timeline) {
		t.Fatal("timeline not monotone")
	}
}

func TestWarmUpAdvances(t *testing.T) {
	pi := []float64{0.5, 0.5}
	// Deterministic 2-cycle chain: states alternate every step.
	cyc := markov.MustChain([][]float64{{0, 1}, {1, 0}})
	sim, err := NewSim(4, markov.NewSampler(cyc), SameState{S: 2}, []float64{1, 0}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	_ = pi
	if sim.State(0) != 0 {
		t.Fatal("init should put all nodes in state 0")
	}
	sim.WarmUp(3)
	if sim.State(0) != 1 {
		t.Fatal("warmup should advance the chain 3 steps")
	}
}

func BenchmarkSimStep(b *testing.B) {
	m := 32
	g := graph.Grid(m, m)
	chain := markov.LazyRandomWalkChain(g, 0.2)
	pi := markov.WalkStationary(g)
	sim, err := NewSim(1000, markov.NewSparseSampler(chain), NewGridRadius(m, 1.5), pi, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}
