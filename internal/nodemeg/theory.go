package nodemeg

import (
	"fmt"

	"repro/internal/dyngraph"
)

// Q returns the vector q(x) = π(Γ(x)) = Σ_{y: C(x,y)=1} π(y): the
// stationary probability that a fixed node is connected to another fixed
// node whose state is x. It is the basic quantity of Fact 2 and Lemma 15.
func Q(pi []float64, conn ConnectionMap) []float64 {
	s := conn.NumStates()
	if len(pi) != s {
		panic(fmt.Sprintf("nodemeg: pi has %d entries, map has %d states", len(pi), s))
	}
	q := make([]float64, s)
	if e, ok := conn.(NeighborEnumerator); ok {
		for x := 0; x < s; x++ {
			sum := 0.0
			for _, y := range e.NeighborStates(x) {
				sum += pi[y]
			}
			q[x] = sum
		}
		return q
	}
	for x := 0; x < s; x++ {
		sum := 0.0
		for y := 0; y < s; y++ {
			if conn.Connected(x, y) {
				sum += pi[y]
			}
		}
		q[x] = sum
	}
	return q
}

// PNM returns the stationary probability that a fixed pair of nodes is
// connected: P_NM = Σ_x π(x) q(x). By Fact 2 it does not depend on the
// choice of the pair.
func PNM(pi []float64, conn ConnectionMap) float64 {
	q := Q(pi, conn)
	total := 0.0
	for x, p := range pi {
		total += p * q[x]
	}
	return total
}

// PNM2 returns the stationary probability that two fixed nodes are both
// connected to a third fixed node: P_NM2 = Σ_x π(x) q(x)².
func PNM2(pi []float64, conn ConnectionMap) float64 {
	q := Q(pi, conn)
	total := 0.0
	for x, p := range pi {
		total += p * q[x] * q[x]
	}
	return total
}

// Eta returns η = P_NM2 / P_NM², the pairwise-independence parameter of
// Theorem 3. η = 1 means incident edges are exactly pairwise independent;
// Theorem 3 needs η = O(1) (or polylog) for a near-tight flooding bound.
func Eta(pi []float64, conn ConnectionMap) float64 {
	p := PNM(pi, conn)
	if p == 0 {
		return 0
	}
	return PNM2(pi, conn) / (p * p)
}

// Empirical measures P_NM and P_NM2 from a running node-MEG by sampling
// snapshots: at each of `samples` observation epochs separated by `gap`
// steps it checks whether nodes (0, 1) are connected and whether nodes 1
// and 2 are both connected to node 0. It returns the two empirical
// frequencies, used by tests and E8 to validate the exact formulas.
func Empirical(sim *Sim, samples, gap int) (pnm, pnm2 float64) {
	if sim.N() < 3 {
		panic("nodemeg: Empirical needs at least 3 nodes")
	}
	var hits12, hitsBoth int
	for s := 0; s < samples; s++ {
		if sim.conn.Connected(sim.State(0), sim.State(1)) {
			hits12++
		}
		if sim.conn.Connected(sim.State(0), sim.State(1)) && sim.conn.Connected(sim.State(0), sim.State(2)) {
			hitsBoth++
		}
		for g := 0; g < gap; g++ {
			sim.Step()
		}
	}
	return float64(hits12) / float64(samples), float64(hitsBoth) / float64(samples)
}

// Compile-time check that Sim satisfies the dynamic-graph contract.
var _ dyngraph.Dynamic = (*Sim)(nil)
