package nodemeg

import (
	"math"
)

// SameState connects two nodes exactly when they occupy the same state —
// the connection map of the random-path models of Section 4.1, where
// "two nodes are connected, at any given time t, if they are in the same
// point at time t".
type SameState struct {
	S int
}

var _ ConnectionMap = SameState{}
var _ NeighborEnumerator = SameState{}

// NumStates implements ConnectionMap.
func (c SameState) NumStates() int { return c.S }

// Connected implements ConnectionMap.
func (c SameState) Connected(u, v int) bool { return u == v }

// NeighborStates implements NeighborEnumerator: Γ(s) = {s}.
func (c SameState) NeighborStates(s int) []int32 { return []int32{int32(s)} }

// identityEnum is the allocation-free table Sim substitutes for
// SameState's per-call singleton: gamma[s] is a one-entry view into a
// shared arena.
type identityEnum struct {
	gamma [][]int32
}

func newIdentityEnum(states int) *identityEnum {
	arena := make([]int32, states)
	e := &identityEnum{gamma: make([][]int32, states)}
	for s := range arena {
		arena[s] = int32(s)
		e.gamma[s] = arena[s : s+1 : s+1]
	}
	return e
}

// NeighborStates implements NeighborEnumerator.
func (e *identityEnum) NeighborStates(s int) []int32 { return e.gamma[s] }

// GridRadius connects two nodes when their states, interpreted as points of
// an m x m grid (state = i*m + j), are within Euclidean distance R in grid
// units — the connection map of the discretized geometric mobility models.
// Neighbor state lists are precomputed at construction.
type GridRadius struct {
	m     int
	r     float64
	gamma [][]int32
}

var _ ConnectionMap = (*GridRadius)(nil)
var _ NeighborEnumerator = (*GridRadius)(nil)

// NewGridRadius builds the map for an m x m grid and radius r >= 0. r = 0
// degenerates to SameState semantics (same point only).
func NewGridRadius(m int, r float64) *GridRadius {
	if m < 1 {
		panic("nodemeg: NewGridRadius needs m >= 1")
	}
	if r < 0 || math.IsNaN(r) {
		panic("nodemeg: NewGridRadius needs r >= 0")
	}
	g := &GridRadius{m: m, r: r, gamma: make([][]int32, m*m)}
	ri := int(r)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var nbrs []int32
			for di := -ri; di <= ri; di++ {
				ni := i + di
				if ni < 0 || ni >= m {
					continue
				}
				for dj := -ri; dj <= ri; dj++ {
					nj := j + dj
					if nj < 0 || nj >= m {
						continue
					}
					if float64(di*di+dj*dj) <= r*r {
						nbrs = append(nbrs, int32(ni*m+nj))
					}
				}
			}
			g.gamma[i*m+j] = nbrs
		}
	}
	return g
}

// NumStates implements ConnectionMap.
func (g *GridRadius) NumStates() int { return g.m * g.m }

// Connected implements ConnectionMap.
func (g *GridRadius) Connected(u, v int) bool {
	ui, uj := u/g.m, u%g.m
	vi, vj := v/g.m, v%g.m
	di, dj := float64(ui-vi), float64(uj-vj)
	return di*di+dj*dj <= g.r*g.r
}

// NeighborStates implements NeighborEnumerator.
func (g *GridRadius) NeighborStates(s int) []int32 { return g.gamma[s] }

// FuncMap adapts an arbitrary symmetric predicate as a ConnectionMap, for
// tests and ad-hoc models. It cannot enumerate neighbor states, so
// simulations fall back to O(n) scans.
type FuncMap struct {
	S  int
	Fn func(u, v int) bool
}

var _ ConnectionMap = FuncMap{}

// NumStates implements ConnectionMap.
func (f FuncMap) NumStates() int { return f.S }

// Connected implements ConnectionMap.
func (f FuncMap) Connected(u, v int) bool { return f.Fn(u, v) }
