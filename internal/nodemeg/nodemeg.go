// Package nodemeg implements the paper's node-Markovian evolving graphs
// NM(n, M, C) (Section 4): every node independently follows a Markov chain
// M over states S, and two nodes are connected at time t exactly when the
// symmetric connection map C of their current states is 1.
//
// The package provides the general simulator (any chain, any connection
// map), the state-bucket index that makes neighbor queries cheap when the
// connection map can enumerate Γ(s), and the exact stationary quantities of
// Fact 2 — P_NM, P_NM2 and η = P_NM2 / P_NM² — that drive Theorem 3.
package nodemeg

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// ConnectionMap is the symmetric map C: S × S → {0, 1} of a node-MEG.
// Implementations must be symmetric: Connected(u, v) == Connected(v, u).
type ConnectionMap interface {
	// NumStates returns |S|.
	NumStates() int
	// Connected reports C(u, v) = 1.
	Connected(u, v int) bool
}

// NeighborEnumerator is an optional extension of ConnectionMap that
// enumerates Γ(s) = {s' : C(s, s') = 1}. When available, the simulator
// answers neighbor queries in O(|Γ(s)| + matches) instead of O(n), and the
// theory functions run in O(S·|Γ|) instead of O(S²).
type NeighborEnumerator interface {
	// NeighborStates returns Γ(s). The returned slice is shared and must
	// not be modified.
	NeighborStates(s int) []int32
}

// StateSampler draws Markov chain transitions. Both markov.Sampler (dense)
// and markov.SparseSampler satisfy it.
type StateSampler interface {
	// Next samples the successor of state s.
	Next(s int, r *rng.RNG) int
	// N returns the number of states.
	N() int
}

// Sim simulates a node-MEG as a dyngraph.Dynamic.
type Sim struct {
	n       int
	sampler StateSampler
	conn    ConnectionMap
	enum    NeighborEnumerator // nil when conn cannot enumerate
	r       *rng.RNG
	states  []int32
	buckets [][]int32 // nodes per state
}

// NewSim creates a node-MEG simulator with each node's initial state drawn
// independently from init (a distribution over states). Pass the chain's
// stationary distribution for a stationary start.
func NewSim(n int, sampler StateSampler, conn ConnectionMap, init []float64, r *rng.RNG) (*Sim, error) {
	if n < 1 {
		return nil, fmt.Errorf("nodemeg: need n >= 1, got %d", n)
	}
	if sampler.N() != conn.NumStates() {
		return nil, fmt.Errorf("nodemeg: chain has %d states, connection map %d", sampler.N(), conn.NumStates())
	}
	if len(init) != sampler.N() {
		return nil, fmt.Errorf("nodemeg: init has %d entries, chain has %d states", len(init), sampler.N())
	}
	s := &Sim{
		n:       n,
		sampler: sampler,
		conn:    conn,
		r:       r,
		states:  make([]int32, n),
		buckets: make([][]int32, sampler.N()),
	}
	if e, ok := conn.(NeighborEnumerator); ok {
		s.enum = e
	}
	alias := rng.NewAlias(init)
	for i := range s.states {
		s.states[i] = int32(alias.Sample(r))
	}
	s.rebuildBuckets()
	return s, nil
}

func (s *Sim) rebuildBuckets() {
	for st := range s.buckets {
		s.buckets[st] = s.buckets[st][:0]
	}
	for i, st := range s.states {
		s.buckets[st] = append(s.buckets[st], int32(i))
	}
}

// N implements dyngraph.Dynamic.
func (s *Sim) N() int { return s.n }

// Step implements dyngraph.Dynamic: every node's state advances one step of
// M independently.
func (s *Sim) Step() {
	for i, st := range s.states {
		s.states[i] = int32(s.sampler.Next(int(st), s.r))
	}
	s.rebuildBuckets()
}

// WarmUp advances the process by steps without any observation, used to
// approach stationarity from a non-stationary start.
func (s *Sim) WarmUp(steps int) {
	for t := 0; t < steps; t++ {
		s.Step()
	}
}

// ForEachNeighbor implements dyngraph.Dynamic.
func (s *Sim) ForEachNeighbor(i int, fn func(j int)) {
	ui := s.states[i]
	if s.enum != nil {
		for _, v := range s.enum.NeighborStates(int(ui)) {
			for _, j := range s.buckets[v] {
				if int(j) != i {
					fn(int(j))
				}
			}
		}
		return
	}
	for j, uj := range s.states {
		if j != i && s.conn.Connected(int(ui), int(uj)) {
			fn(j)
		}
	}
}

// AppendEdges implements dyngraph.Batcher. With a NeighborEnumerator the
// scan visits each node's compatible state buckets and keeps the j > i
// half, so every unordered pair is distance-checked once; without one it
// falls back to the O(n²) pair scan the callback path would also pay.
func (s *Sim) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	if s.enum != nil {
		for i, ui := range s.states {
			for _, v := range s.enum.NeighborStates(int(ui)) {
				for _, j := range s.buckets[v] {
					if int(j) > i {
						dst = append(dst, dyngraph.Edge{U: int32(i), V: j})
					}
				}
			}
		}
		return dst
	}
	for i := 0; i < s.n; i++ {
		ui := int(s.states[i])
		for j := i + 1; j < s.n; j++ {
			if s.conn.Connected(ui, int(s.states[j])) {
				dst = append(dst, dyngraph.Edge{U: int32(i), V: int32(j)})
			}
		}
	}
	return dst
}

// AppendNeighbors implements dyngraph.NeighborLister.
func (s *Sim) AppendNeighbors(i int, dst []int32) []int32 {
	ui := s.states[i]
	if s.enum != nil {
		for _, v := range s.enum.NeighborStates(int(ui)) {
			for _, j := range s.buckets[v] {
				if int(j) != i {
					dst = append(dst, j)
				}
			}
		}
		return dst
	}
	for j, uj := range s.states {
		if j != i && s.conn.Connected(int(ui), int(uj)) {
			dst = append(dst, int32(j))
		}
	}
	return dst
}

// State returns node i's current chain state.
func (s *Sim) State(i int) int { return int(s.states[i]) }

// StateCounts returns the number of nodes currently in each state.
func (s *Sim) StateCounts() []int {
	counts := make([]int, len(s.buckets))
	for st, b := range s.buckets {
		counts[st] = len(b)
	}
	return counts
}
