// Package nodemeg implements the paper's node-Markovian evolving graphs
// NM(n, M, C) (Section 4): every node independently follows a Markov chain
// M over states S, and two nodes are connected at time t exactly when the
// symmetric connection map C of their current states is 1.
//
// The package provides the general simulator (any chain, any connection
// map), the state-bucket index that makes neighbor queries cheap when the
// connection map can enumerate Γ(s), and the exact stationary quantities of
// Fact 2 — P_NM, P_NM2 and η = P_NM2 / P_NM² — that drive Theorem 3.
package nodemeg

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// ConnectionMap is the symmetric map C: S × S → {0, 1} of a node-MEG.
// Implementations must be symmetric: Connected(u, v) == Connected(v, u).
type ConnectionMap interface {
	// NumStates returns |S|.
	NumStates() int
	// Connected reports C(u, v) = 1.
	Connected(u, v int) bool
}

// NeighborEnumerator is an optional extension of ConnectionMap that
// enumerates Γ(s) = {s' : C(s, s') = 1}. When available, the simulator
// answers neighbor queries in O(|Γ(s)| + matches) instead of O(n), and the
// theory functions run in O(S·|Γ|) instead of O(S²).
type NeighborEnumerator interface {
	// NeighborStates returns Γ(s). The returned slice is shared and must
	// not be modified.
	NeighborStates(s int) []int32
}

// StateSampler draws Markov chain transitions. Both markov.Sampler (dense)
// and markov.SparseSampler satisfy it.
type StateSampler interface {
	// Next samples the successor of state s.
	Next(s int, r *rng.RNG) int
	// N returns the number of states.
	N() int
}

// Sim simulates a node-MEG as a dyngraph.Dynamic. It maintains the
// state-bucket index incrementally — a step that changes k node states
// touches O(k) bucket entries via swap-remove instead of rebuilding every
// bucket — and implements dyngraph.DeltaBatcher natively: an edge can only
// flip when an endpoint changed state, so the per-step churn is computed
// by comparing the old and new compatible-bucket neighborhoods of just the
// moved nodes (O(moved × bucket density) with a NeighborEnumerator,
// O(moved × n) otherwise — never worse than the O(n²) snapshot scan the
// connection map forces anyway).
type Sim struct {
	n       int
	sampler StateSampler
	conn    ConnectionMap
	enum    NeighborEnumerator // nil when conn cannot enumerate
	r       *rng.RNG
	states  []int32
	buckets [][]int32 // nodes per state, order unspecified
	slot    []int32   // position of node i inside buckets[states[i]]
	// Churn stream of the most recent Step (dyngraph.DeltaBatcher).
	moved   []int32 // nodes whose state changed this step, ascending
	movedF  []bool  // membership flags for moved
	prevSt  []int32 // pre-step states, valid where movedF
	born    []dyngraph.Edge
	died    []dyngraph.Edge
	stepped bool
}

// NewSim creates a node-MEG simulator with each node's initial state drawn
// independently from init (a distribution over states). Pass the chain's
// stationary distribution for a stationary start.
func NewSim(n int, sampler StateSampler, conn ConnectionMap, init []float64, r *rng.RNG) (*Sim, error) {
	if n < 1 {
		return nil, fmt.Errorf("nodemeg: need n >= 1, got %d", n)
	}
	if sampler.N() != conn.NumStates() {
		return nil, fmt.Errorf("nodemeg: chain has %d states, connection map %d", sampler.N(), conn.NumStates())
	}
	if len(init) != sampler.N() {
		return nil, fmt.Errorf("nodemeg: init has %d entries, chain has %d states", len(init), sampler.N())
	}
	s := &Sim{
		n:       n,
		sampler: sampler,
		conn:    conn,
		r:       r,
		states:  make([]int32, n),
		buckets: make([][]int32, sampler.N()),
		slot:    make([]int32, n),
		movedF:  make([]bool, n),
		prevSt:  make([]int32, n),
	}
	if e, ok := conn.(NeighborEnumerator); ok {
		s.enum = e
	}
	if ss, ok := conn.(SameState); ok {
		// SameState's Γ(s) = {s} allocates a fresh singleton per call;
		// replace it with a precomputed identity table so the incremental
		// Step and the neighbor queries stay allocation-free.
		s.enum = newIdentityEnum(ss.S)
	}
	alias := rng.NewAlias(init)
	for i := range s.states {
		s.states[i] = int32(alias.Sample(r))
	}
	s.rebuildBuckets()
	return s, nil
}

func (s *Sim) rebuildBuckets() {
	for st := range s.buckets {
		s.buckets[st] = s.buckets[st][:0]
	}
	for i, st := range s.states {
		s.slot[i] = int32(len(s.buckets[st]))
		s.buckets[st] = append(s.buckets[st], int32(i))
	}
}

// bucketMove relocates node i from bucket old to bucket st by swap-remove
// and append — O(1), the incremental sibling of rebuildBuckets.
func (s *Sim) bucketMove(i int32, old, st int32) {
	b := s.buckets[old]
	k := s.slot[i]
	last := int32(len(b) - 1)
	swapped := b[last]
	b[k] = swapped
	s.slot[swapped] = k
	s.buckets[old] = b[:last]
	s.slot[i] = int32(len(s.buckets[st]))
	s.buckets[st] = append(s.buckets[st], i)
}

// N implements dyngraph.Dynamic.
func (s *Sim) N() int { return s.n }

// Step implements dyngraph.Dynamic: every node's state advances one step of
// M independently. The bucket index is maintained incrementally for the
// nodes that changed state, and the step's edge churn is computed at the
// same time (two passes over just the movers — died against the pre-step
// buckets, born against the post-step ones, pairs where both endpoints
// moved deduped at the smaller index), feeding AppendDeltas.
func (s *Sim) Step() {
	// Advance every chain in node order (the historical RNG draw order),
	// recording movers: states[] becomes the new configuration while
	// buckets still group nodes by the old one.
	s.moved = s.moved[:0]
	s.born, s.died = s.born[:0], s.died[:0]
	for i, st := range s.states {
		ns := int32(s.sampler.Next(int(st), s.r))
		if ns != st {
			s.prevSt[i] = st
			s.movedF[i] = true
			s.moved = append(s.moved, int32(i))
			s.states[i] = ns
		}
	}
	if s.enum != nil {
		// Pass A (died): each mover's old edges are its old-bucket
		// neighborhood Γ(old state); the edge died when the new states no
		// longer connect.
		for _, i := range s.moved {
			ni := s.states[i]
			for _, v := range s.enum.NeighborStates(int(s.prevSt[i])) {
				for _, j := range s.buckets[v] {
					if j == i || (s.movedF[j] && j < i) {
						continue
					}
					if !s.conn.Connected(int(ni), int(s.states[j])) {
						s.died = append(s.died, orderEdge(i, j))
					}
				}
			}
		}
		// Apply: O(moved) bucket maintenance.
		for _, i := range s.moved {
			s.bucketMove(i, s.prevSt[i], s.states[i])
		}
		// Pass B (born): each mover's new edges are its new-bucket
		// neighborhood; the edge is born when the old states did not
		// connect (a moved candidate's old state is prevSt).
		for _, i := range s.moved {
			oi := s.prevSt[i]
			for _, v := range s.enum.NeighborStates(int(s.states[i])) {
				for _, j := range s.buckets[v] {
					if j == i || (s.movedF[j] && j < i) {
						continue
					}
					oj := s.states[j]
					if s.movedF[j] {
						oj = s.prevSt[j]
					}
					if !s.conn.Connected(int(oi), int(oj)) {
						s.born = append(s.born, orderEdge(i, j))
					}
				}
			}
		}
	} else {
		// No enumerator: classify each mover against every node directly —
		// O(moved·n), never worse than the O(n²) snapshot scan this
		// connection map forces on the batch path anyway.
		for _, i := range s.moved {
			oi, ni := int(s.prevSt[i]), int(s.states[i])
			for j := 0; j < s.n; j++ {
				j32 := int32(j)
				if j32 == i || (s.movedF[j] && j32 < i) {
					continue
				}
				oj := int(s.states[j])
				if s.movedF[j] {
					oj = int(s.prevSt[j])
				}
				oldE := s.conn.Connected(oi, oj)
				newE := s.conn.Connected(ni, int(s.states[j]))
				if oldE && !newE {
					s.died = append(s.died, orderEdge(i, j32))
				} else if !oldE && newE {
					s.born = append(s.born, orderEdge(i, j32))
				}
			}
		}
		for _, i := range s.moved {
			s.bucketMove(i, s.prevSt[i], s.states[i])
		}
	}
	for _, i := range s.moved {
		s.movedF[i] = false
	}
	s.stepped = true
}

func orderEdge(i, j int32) dyngraph.Edge {
	if i < j {
		return dyngraph.Edge{U: i, V: j}
	}
	return dyngraph.Edge{U: j, V: i}
}

// AppendDeltas implements dyngraph.DeltaBatcher, serving the churn batches
// retained by the most recent Step; idempotent between steps and empty
// before the first.
func (s *Sim) AppendDeltas(born, died []dyngraph.Edge) (b, d []dyngraph.Edge) {
	if !s.stepped {
		return born, died
	}
	return append(born, s.born...), append(died, s.died...)
}

// MovedLastStep implements dyngraph.MoveReporter: the number of nodes whose
// state changed in the most recent Step (0 before the first).
func (s *Sim) MovedLastStep() int { return len(s.moved) }

// WarmUp advances the process by steps without any observation, used to
// approach stationarity from a non-stationary start.
func (s *Sim) WarmUp(steps int) {
	for t := 0; t < steps; t++ {
		s.Step()
	}
}

// ForEachNeighbor implements dyngraph.Dynamic.
func (s *Sim) ForEachNeighbor(i int, fn func(j int)) {
	ui := s.states[i]
	if s.enum != nil {
		for _, v := range s.enum.NeighborStates(int(ui)) {
			for _, j := range s.buckets[v] {
				if int(j) != i {
					fn(int(j))
				}
			}
		}
		return
	}
	for j, uj := range s.states {
		if j != i && s.conn.Connected(int(ui), int(uj)) {
			fn(j)
		}
	}
}

// AppendEdges implements dyngraph.Batcher. With a NeighborEnumerator the
// scan visits each node's compatible state buckets and keeps the j > i
// half, so every unordered pair is distance-checked once; without one it
// falls back to the O(n²) pair scan the callback path would also pay.
func (s *Sim) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	if s.enum != nil {
		for i, ui := range s.states {
			for _, v := range s.enum.NeighborStates(int(ui)) {
				for _, j := range s.buckets[v] {
					if int(j) > i {
						dst = append(dst, dyngraph.Edge{U: int32(i), V: j})
					}
				}
			}
		}
		return dst
	}
	for i := 0; i < s.n; i++ {
		ui := int(s.states[i])
		for j := i + 1; j < s.n; j++ {
			if s.conn.Connected(ui, int(s.states[j])) {
				dst = append(dst, dyngraph.Edge{U: int32(i), V: int32(j)})
			}
		}
	}
	return dst
}

// AppendNeighbors implements dyngraph.NeighborLister.
func (s *Sim) AppendNeighbors(i int, dst []int32) []int32 {
	ui := s.states[i]
	if s.enum != nil {
		for _, v := range s.enum.NeighborStates(int(ui)) {
			for _, j := range s.buckets[v] {
				if int(j) != i {
					dst = append(dst, j)
				}
			}
		}
		return dst
	}
	for j, uj := range s.states {
		if j != i && s.conn.Connected(int(ui), int(uj)) {
			dst = append(dst, int32(j))
		}
	}
	return dst
}

// State returns node i's current chain state.
func (s *Sim) State(i int) int { return int(s.states[i]) }

// StateCounts returns the number of nodes currently in each state.
func (s *Sim) StateCounts() []int {
	counts := make([]int, len(s.buckets))
	for st, b := range s.buckets {
		counts[st] = len(b)
	}
	return counts
}
