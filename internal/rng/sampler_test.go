package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometricMean(t *testing.T) {
	r := New(101)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		const trials = 100000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / trials
		want := (1 - p) / p
		sd := math.Sqrt((1 - p)) / p
		if math.Abs(mean-want) > 5*sd/math.Sqrt(trials) {
			t.Errorf("Geometric(%v) mean %v, want %v", p, mean, want)
		}
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(103)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) != 0")
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(107)
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0, p) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(n, 0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(n, 1) != n")
	}
}

func TestBinomialRangeProperty(t *testing.T) {
	r := New(109)
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 500)
		p := float64(pRaw%1000) / 1000
		k := r.Binomial(n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(113)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.5},    // small-n path
		{1000, 0.01}, // geometric skipping path
		{1000, 0.9},  // complementary path
		{200, 0.3},
	}
	for _, c := range cases {
		const trials = 50000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			k := float64(r.Binomial(c.n, c.p))
			sum += k
			sumsq += k * k
		}
		mean := sum / trials
		variance := sumsq/trials - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := float64(c.n) * c.p * (1 - c.p)
		tolM := 6 * math.Sqrt(wantVar/trials)
		if math.Abs(mean-wantMean) > tolM {
			t.Errorf("Binomial(%d,%v) mean %v, want %v ± %v", c.n, c.p, mean, wantMean, tolM)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+1 {
			t.Errorf("Binomial(%d,%v) var %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(127)
	for _, lambda := range []float64{0.5, 3, 50, 700} {
		const trials = 30000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / trials
		tol := 6 * math.Sqrt(lambda/trials)
		if math.Abs(mean-lambda) > tol {
			t.Errorf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(131)
	const rate, trials = 2.0, 100000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.Exponential(rate)
	}
	mean := sum / trials
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exponential(%v) mean %v", rate, mean)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := New(137)
	w := []float64{1, 0, 3, 6}
	const trials = 100000
	counts := make([]float64, len(w))
	for i := 0; i < trials; i++ {
		counts[r.Categorical(w)]++
	}
	total := 10.0
	for i, wi := range w {
		got := counts[i] / trials
		want := wi / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Categorical index %d freq %v, want %v", i, got, want)
		}
	}
	if counts[1] != 0 {
		t.Error("Categorical returned zero-weight index")
	}
}

func TestCategoricalPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical over zero weights did not panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestSampleDistinct(t *testing.T) {
	r := New(139)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleDistinct(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinctUniform(t *testing.T) {
	// Each element should appear with probability k/n.
	r := New(149)
	const n, k, trials = 10, 3, 60000
	counts := make([]float64, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleDistinct(n, k) {
			counts[v]++
		}
	}
	want := float64(k) / n
	for i, c := range counts {
		got := c / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("element %d inclusion freq %v, want %v", i, got, want)
		}
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	r := New(151)
	w := []float64{0.1, 0.4, 0.2, 0.3}
	a := NewAlias(w)
	const trials = 200000
	counts := make([]float64, len(w))
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	for i, wi := range w {
		got := counts[i] / trials
		if math.Abs(got-wi) > 0.01 {
			t.Errorf("alias index %d freq %v, want %v", i, got, wi)
		}
	}
}

func TestAliasProbabilitiesReconstruction(t *testing.T) {
	w := []float64{2, 5, 1, 1, 3}
	a := NewAlias(w)
	p := a.Probabilities()
	total := 12.0
	for i, wi := range w {
		if math.Abs(p[i]-wi/total) > 1e-9 {
			t.Errorf("reconstructed p[%d] = %v, want %v", i, p[i], wi/total)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a := NewAlias([]float64{5})
	r := New(157)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias returned nonzero index")
		}
	}
}

func TestAliasDegenerateWeight(t *testing.T) {
	a := NewAlias([]float64{0, 1, 0})
	r := New(163)
	for i := 0; i < 1000; i++ {
		if a.Sample(r) != 1 {
			t.Fatal("alias sampled zero-weight outcome")
		}
	}
}

func TestAliasPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAlias with negative weight did not panic")
		}
	}()
	NewAlias([]float64{1, -1})
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkAliasSample(b *testing.B) {
	r := New(1)
	w := make([]float64, 1000)
	for i := range w {
		w[i] = float64(i + 1)
	}
	a := NewAlias(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Sample(r)
	}
}

func BenchmarkBinomialSparse(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(1_000_000, 1e-5)
	}
}
