package rng

import "math"

// Geometric returns the number of independent Bernoulli(p) failures before
// the first success, i.e. a sample from the geometric distribution on
// {0, 1, 2, ...} with success probability p. It panics if p <= 0 or p > 1.
//
// Sampling uses inversion: floor(ln U / ln(1-p)) for U uniform in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	// 1 - Float64() is uniform in (0, 1], avoiding log(0).
	u := 1 - r.Float64()
	g := math.Floor(math.Log(u) / math.Log(1-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(g)
}

// Binomial returns an exact sample from Binomial(n, p).
//
// For small n it sums Bernoulli trials. For larger n with small success
// counts it uses geometric skipping, which costs O(np) expected time — the
// same order as the number of successes the caller must then process, so it
// never dominates the caller's own work. For large n with large np it falls
// back to the BTRS-free inversion on the complementary parameter so the
// expected cost stays O(n · min(p, 1-p)).
func (r *RNG) Binomial(n int, p float64) int {
	switch {
	case n < 0:
		panic("rng: Binomial needs n >= 0")
	case n == 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	// Work with the smaller tail; successes under p' = 1-p convert back as
	// n - k.
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if n <= 32 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	// Geometric skipping: jump over runs of failures.
	k := 0
	i := r.Geometric(p)
	for i < n {
		k++
		i += 1 + r.Geometric(p)
	}
	return k
}

// Poisson returns an exact sample from Poisson(lambda) using Knuth's
// multiplication method for small lambda and splitting for large lambda.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// Split large rates to avoid exp underflow: Poisson(a+b) is the sum of
	// independent Poisson(a) and Poisson(b).
	const chunk = 500.0
	k := 0
	for lambda > chunk {
		k += r.Poisson(chunk)
		lambda -= chunk
	}
	limit := math.Exp(-lambda)
	prod := r.Float64()
	for prod > limit {
		k++
		prod *= r.Float64()
	}
	return k
}

// Exponential returns a sample from Exp(rate).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential needs rate > 0")
	}
	u := 1 - r.Float64()
	return -math.Log(u) / rate
}

// Categorical samples an index from the (not necessarily normalized)
// non-negative weight vector w by inverse-CDF scanning. It panics if all
// weights are zero or any weight is negative. For repeated sampling from the
// same weights prefer NewAlias.
func (r *RNG) Categorical(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic("rng: Categorical needs non-negative weights")
		}
		total += x
	}
	if total <= 0 {
		panic("rng: Categorical needs a positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return len(w) - 1
}

// SampleDistinct returns k distinct uniform values from [0, n) in
// unspecified order. It panics if k > n or k < 0. It uses Floyd's algorithm,
// costing O(k) expected time and O(k) space regardless of n.
func (r *RNG) SampleDistinct(n, k int) []int {
	return r.SampleDistinctInto(n, k, make([]int, 0, k))
}

// SampleDistinctInto is SampleDistinct appending into dst, for hot loops
// that reuse one buffer across many draws (gossip fan-out selection every
// step of every trial). It consumes exactly the random stream of
// SampleDistinct — the two are interchangeable without perturbing any
// seeded experiment — and allocates nothing when dst has capacity k.
// Duplicate detection scans the appended prefix, which beats a map for the
// small k of gossip protocols.
func (r *RNG) SampleDistinctInto(n, k int, dst []int) []int {
	if k < 0 || k > n {
		panic("rng: SampleDistinct needs 0 <= k <= n")
	}
	base := len(dst)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		for _, prev := range dst[base:] {
			if prev == t {
				t = j
				break
			}
		}
		dst = append(dst, t)
	}
	return dst
}
