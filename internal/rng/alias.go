package rng

import "math"

// Alias samples from a fixed discrete distribution in O(1) per draw using
// Walker's alias method (Vose's stable construction). It is the workhorse
// for stepping Markov chains whose rows are sampled millions of times.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the (not necessarily normalized)
// non-negative weight vector w. It panics on negative, NaN, or all-zero
// weights.
func NewAlias(w []float64) *Alias {
	n := len(w)
	if n == 0 {
		panic("rng: NewAlias needs at least one weight")
	}
	total := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic("rng: NewAlias needs non-negative weights")
		}
		total += x
	}
	if total <= 0 {
		panic("rng: NewAlias needs a positive total weight")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities: mean 1.
	scaled := make([]float64, n)
	for i, x := range w {
		scaled[i] = x * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]

		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	// Leftover small entries are a floating-point artifact; they are
	// probability-1 columns.
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one outcome index using r.
func (a *Alias) Sample(r *RNG) int {
	// One uniform drives both the column choice and the coin flip.
	u := r.Float64() * float64(len(a.prob))
	i := int(u)
	if i >= len(a.prob) { // guard against u == n from rounding
		i = len(a.prob) - 1
	}
	frac := u - float64(i)
	if frac < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Probabilities reconstructs the normalized probability of each outcome from
// the table. It is intended for tests.
func (a *Alias) Probabilities() []float64 {
	n := len(a.prob)
	p := make([]float64, n)
	for i := 0; i < n; i++ {
		p[i] += a.prob[i] / float64(n)
		p[a.alias[i]] += (1 - a.prob[i]) / float64(n)
	}
	return p
}
