package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
	// Parent continues after splits without repeating child outputs.
	p := r.Uint64()
	if p == c1.state || p == c2.state {
		t.Fatal("parent output collided with child state")
	}
}

func TestSplitN(t *testing.T) {
	r := New(3)
	gens := r.SplitN(8)
	seen := make(map[uint64]bool)
	for _, g := range gens {
		v := g.Uint64()
		if seen[v] {
			t.Fatal("SplitN produced colliding streams")
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(19)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d: count %d too far from %v", i, c, want)
		}
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(29)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(p) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bool(%v) frequency %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	r := New(37)
	for i := 0; i < 10000; i++ {
		v := r.Range(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(41)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	if Seed(1, 2, 3) != Seed(1, 2, 3) {
		t.Fatal("Seed not deterministic")
	}
	if Seed(1, 2, 3) == Seed(1, 3, 2) {
		t.Fatal("Seed ignores tag order")
	}
	if Seed(1, 2) == Seed(2, 2) {
		t.Fatal("Seed ignores base")
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(43)
	for i := 0; i < 1000; i++ {
		v := r.Uint64n(64)
		if v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}
