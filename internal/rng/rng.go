// Package rng provides a deterministic, splittable pseudo-random number
// generator and the exact discrete samplers used by every simulator in this
// repository.
//
// All simulations in this project take explicit seeds so that every
// experiment table is reproducible bit-for-bit. The generator is a SplitMix64
// core (Steele, Lea, Flood; "Fast splittable pseudorandom number generators",
// OOPSLA 2014) which is statistically strong enough for Monte-Carlo
// simulation and, unlike math/rand.Source, cheap to split into independent
// streams for parallel trials.
package rng

import "math"

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// RNG is a deterministic pseudo-random number generator. The zero value is a
// valid generator seeded with 0; prefer New for clarity.
//
// RNG is not safe for concurrent use; use Split to derive independent
// generators for concurrent workers.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Reseed re-initializes the generator in place to the stream New(seed)
// would produce, without allocating. Hot paths that need many short-lived
// derived streams (per-node, per-epoch sampling in dyngraph.Subsample)
// keep one RNG value and Reseed it instead of calling New per draw.
func (r *RNG) Reseed(seed uint64) { r.state = seed }

// mix64 is the SplitMix64 output function.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix64(r.state)
}

// Split returns a new generator whose stream is independent of the
// receiver's continuation. The receiver advances by one step.
func (r *RNG) Split() *RNG {
	// Advance once and derive the child seed through a second mixing so the
	// child stream does not collide with the parent's future outputs.
	s := r.Uint64()
	return &RNG{state: mix64(s + golden)}
}

// SplitN returns n generators with pairwise independent streams.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a uniformly distributed mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching the
// contract of math/rand.Intn.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method (unbiased).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Classic unbiased modulo rejection. The loop terminates quickly because
	// the rejection probability is < 1/2 for every n.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the Box–Muller
// transform. It is used only by statistical tests, not by the simulators.
func (r *RNG) NormFloat64() float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Seed derives a named sub-seed from a base seed. It is a pure function used
// to give each distinct component of an experiment its own reproducible
// stream.
func Seed(base uint64, tags ...uint64) uint64 {
	s := base
	for _, t := range tags {
		s = mix64(s ^ (t + golden))
	}
	return s
}
