package core

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/rng"
)

// ConditionReport summarizes an empirical check of the two
// (M, α, β)-stationarity conditions of Section 3 on a dynamic-graph model:
//
//	Density:        P(e_{i,j} at epoch boundaries) >= α for all pairs;
//	β-Independence: P(e_{i,A}·e_{j,A}) <= β·P(e_{i,A})·P(e_{j,A}).
//
// The estimator samples epoch-boundary snapshots and measures the
// probabilities marginally (the paper's conditions are conditional on the
// past; for the stationary Markovian models measured here the marginal
// stationary quantities are the relevant instantiation, as in Theorem 3's
// proof).
type ConditionReport struct {
	Epochs  int // epoch boundaries observed (per trial)
	Trials  int
	Samples int // Epochs · Trials

	// Density condition: empirical edge probability over sampled pairs.
	AlphaMin  float64
	AlphaMean float64

	// β-independence: ratio P(ei,A ej,A) / (P(ei,A) P(ej,A)) over sampled
	// (i, j, A) triples. NaN-free: triples whose denominator is zero are
	// dropped and counted in SkippedTriples.
	BetaMax        float64
	BetaMean       float64
	SkippedTriples int
}

// EstimateOpts configures EstimateConditions.
type EstimateOpts struct {
	M       int // epoch length (steps between observed snapshots)
	Epochs  int // snapshots per trial
	Trials  int // independent model instances
	Pairs   int // sampled node pairs for the density condition
	Triples int // sampled (i, j, A) triples for β-independence
	SetSize int // |A| for the sampled triples
	Seed    uint64
}

// EstimateConditions measures the two stationarity conditions on the
// dynamic graphs produced by factory (one fresh instance per trial; the
// factory must seed each instance from its trial index for independence).
func EstimateConditions(factory func(trial int) dyngraph.Dynamic, opts EstimateOpts) (ConditionReport, error) {
	if opts.M < 1 || opts.Epochs < 1 || opts.Trials < 1 {
		return ConditionReport{}, fmt.Errorf("core: need M, Epochs, Trials >= 1, got %+v", opts)
	}
	probe := factory(0)
	n := probe.N()
	if opts.Pairs < 1 || opts.Triples < 1 || opts.SetSize < 1 || opts.SetSize > n-2 {
		return ConditionReport{}, fmt.Errorf("core: invalid sampling sizes for n=%d: %+v", n, opts)
	}

	r := rng.New(rng.Seed(opts.Seed, 0xC04D17))
	// Fixed sampled pairs and triples, shared across epochs and trials so
	// per-pair probabilities accumulate.
	type pair struct{ i, j int }
	pairs := make([]pair, opts.Pairs)
	for k := range pairs {
		i := r.Intn(n)
		j := r.Intn(n)
		for j == i {
			j = r.Intn(n)
		}
		pairs[k] = pair{i, j}
	}
	type triple struct {
		i, j int
		inA  []bool
	}
	triples := make([]triple, opts.Triples)
	for k := range triples {
		i := r.Intn(n)
		j := r.Intn(n)
		for j == i {
			j = r.Intn(n)
		}
		inA := make([]bool, n)
		// Sample A ⊆ [n] - {i, j} of the requested size.
		count := 0
		for count < opts.SetSize {
			v := r.Intn(n)
			if v != i && v != j && !inA[v] {
				inA[v] = true
				count++
			}
		}
		triples[k] = triple{i, j, inA}
	}

	pairHits := make([]int, opts.Pairs)
	hitI := make([]int, opts.Triples)
	hitJ := make([]int, opts.Triples)
	hitBoth := make([]int, opts.Triples)

	samples := 0
	for trial := 0; trial < opts.Trials; trial++ {
		d := factory(trial)
		if d.N() != n {
			return ConditionReport{}, fmt.Errorf("core: factory node count changed across trials")
		}
		for e := 0; e < opts.Epochs; e++ {
			for s := 0; s < opts.M; s++ {
				d.Step()
			}
			snap := dyngraph.Snapshot(d)
			samples++
			for k, p := range pairs {
				if snap.HasEdge(p.i, p.j) {
					pairHits[k]++
				}
			}
			for k := range triples {
				tr := &triples[k]
				ei := touchesSet(snap, tr.i, tr.inA)
				ej := touchesSet(snap, tr.j, tr.inA)
				if ei {
					hitI[k]++
				}
				if ej {
					hitJ[k]++
				}
				if ei && ej {
					hitBoth[k]++
				}
			}
		}
	}

	rep := ConditionReport{Epochs: opts.Epochs, Trials: opts.Trials, Samples: samples}
	rep.AlphaMin = 2 // above any probability
	for _, h := range pairHits {
		p := float64(h) / float64(samples)
		rep.AlphaMean += p
		if p < rep.AlphaMin {
			rep.AlphaMin = p
		}
	}
	rep.AlphaMean /= float64(opts.Pairs)

	used := 0
	for k := range triples {
		pi := float64(hitI[k]) / float64(samples)
		pj := float64(hitJ[k]) / float64(samples)
		if pi == 0 || pj == 0 {
			rep.SkippedTriples++
			continue
		}
		ratio := (float64(hitBoth[k]) / float64(samples)) / (pi * pj)
		rep.BetaMean += ratio
		if ratio > rep.BetaMax {
			rep.BetaMax = ratio
		}
		used++
	}
	if used > 0 {
		rep.BetaMean /= float64(used)
	}
	return rep, nil
}

// touchesSet reports whether node i has an edge into the indicator set inA.
func touchesSet(g *graph.Graph, i int, inA []bool) bool {
	found := false
	g.ForEachNeighbor(i, func(j int) {
		if inA[j] {
			found = true
		}
	})
	return found
}
