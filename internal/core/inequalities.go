package core

import "math"

// PaleyZygmund returns the Paley–Zygmund lower bound
//
//	P(X > θ·E[X]) >= (1-θ)² · E[X]² / E[X²]
//
// for a non-negative random variable X with the given first and second
// moments and 0 < θ < 1. The proofs of Lemmas 9–10 use it with θ = 1/2 to
// convert the β-independence condition into per-epoch expansion. It returns
// 0 for degenerate inputs (meanSq <= 0).
func PaleyZygmund(theta, mean, meanSq float64) float64 {
	if meanSq <= 0 || mean < 0 || theta <= 0 || theta >= 1 {
		return 0
	}
	b := (1 - theta) * (1 - theta) * mean * mean / meanSq
	if b > 1 {
		return 1
	}
	return b
}

// ChernoffBelow returns the multiplicative Chernoff upper bound
//
//	P(X < (1-δ)·μ) < exp(-δ²μ/2)
//
// for a sum of independent binary variables with mean μ (Lemma 8).
func ChernoffBelow(mu, delta float64) float64 {
	if delta <= 0 || mu <= 0 {
		return 1
	}
	return math.Exp(-delta * delta * mu / 2)
}

// BinomialTailBelow bounds P(B(n, p) <= k) using ChernoffBelow. For
// k >= np the bound is vacuous and 1 is returned.
func BinomialTailBelow(n int, p float64, k float64) float64 {
	mu := float64(n) * p
	if mu <= 0 || k >= mu {
		return 1
	}
	delta := 1 - k/mu
	return ChernoffBelow(mu, delta)
}

// DegreeExpansionLowerBound evaluates the Lemma 9 guarantee: for an
// (M, α, β)-stationary graph, the probability that a node has at least
// |A|α/2 neighbors in a set A at an epoch boundary is at least
//
//	|A|α / (2 + 2|A|αβ).
func DegreeExpansionLowerBound(setSize int, alpha, beta float64) float64 {
	a := float64(setSize) * alpha
	return a / (2 + 2*a*beta)
}

// SpreadEpochLength evaluates the T of Lemma 11: the number of epochs
// within which a set A of size a doubles its reach with probability
// >= 1 - exp(-t):
//
//	T = 256·(1/(a n² α²) + β/(nα) + aβ²/n) + (4/(a n α) + 3β)·t.
func SpreadEpochLength(a, n int, alpha, beta, t float64) float64 {
	an := float64(a)
	nn := float64(n)
	base := 256 * (1/(an*nn*nn*alpha*alpha) + beta/(nn*alpha) + an*beta*beta/nn)
	slope := 4/(an*nn*alpha) + 3*beta
	return base + slope*t
}
