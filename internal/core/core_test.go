package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/graph"
	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTheorem1BoundShape(t *testing.T) {
	// Denser graphs (larger alpha) flood faster; larger beta slows.
	if Theorem1Bound(10, 0.5, 1, 100) >= Theorem1Bound(10, 0.01, 1, 100) {
		t.Fatal("bound should decrease in alpha")
	}
	if Theorem1Bound(10, 0.1, 5, 100) <= Theorem1Bound(10, 0.1, 1, 100) {
		t.Fatal("bound should increase in beta")
	}
	if Theorem1Bound(20, 0.1, 1, 100) != 2*Theorem1Bound(10, 0.1, 1, 100) {
		t.Fatal("bound should be linear in M")
	}
}

func TestTheorem1BoundValue(t *testing.T) {
	// M=1, alpha=1/n, beta=1 -> (1+1)²·ln²n.
	n := 100
	want := 4 * math.Log(100) * math.Log(100)
	if got := Theorem1Bound(1, 1.0/float64(n), 1, n); !almostEq(got, want, 1e-9) {
		t.Fatalf("bound = %v, want %v", got, want)
	}
}

func TestTheorem3BoundMonotoneInEta(t *testing.T) {
	lo := Theorem3Bound(10, 0.01, 1, 1000)
	hi := Theorem3Bound(10, 0.01, 8, 1000)
	if hi <= lo {
		t.Fatal("bound should grow with eta")
	}
}

func TestCorollary4BoundSparseRegime(t *testing.T) {
	// In the sparse standard setting L ~ √n, r = Θ(1), δ, λ constants, the
	// bound collapses to ~ (L/v)·polylog: doubling n with L = √n should
	// roughly double L/v · const — i.e. grow ~ √n up to logs.
	bound := func(n int) float64 {
		l := math.Sqrt(float64(n))
		return Corollary4Bound(l/1.0, 2.25, 0.25, l*l, 1, 2, n)
	}
	g1, g2 := bound(1000), bound(4000)
	ratio := g2 / g1
	// √n doubles; the log³ n factor contributes another (ln 4000/ln 1000)³
	// ≈ 1.73, so the exact ratio is ≈ 3.46.
	want := 2 * math.Pow(math.Log(4000)/math.Log(1000), 3)
	if math.Abs(ratio-want) > 0.01 {
		t.Fatalf("sparse-regime growth ratio = %v, want %v (√n · polylog)", ratio, want)
	}
}

func TestCorollary5And6Relationship(t *testing.T) {
	// For δ = 1 both corollaries have the same (|V|/n + 1)² core; C6 is
	// never smaller than C5 at equal inputs for δ >= 1.
	if Corollary6Bound(10, 500, 100, 1.5) < Corollary5Bound(10, 500, 100, 1.5) {
		t.Fatal("C6 should dominate C5 for delta > 1")
	}
	if !almostEq(Corollary5Bound(10, 500, 100, 1), Corollary6Bound(10, 500, 100, 1), 1e-9) {
		t.Fatal("C5 and C6 should coincide at delta = 1")
	}
}

func TestEdgeMEGBoundVsPrior(t *testing.T) {
	// The paper: our bound is almost tight whenever q >= np. Check that in
	// that regime the two bounds are within polylog factors (ratio grows
	// slower than log² n), and that for q << np the prior bound is far
	// smaller.
	n := 1 << 12
	p := 1.0 / float64(n) // np = 1
	qTight := 0.5         // q >= np regime
	ours := EdgeMEGBound(p, qTight, n)
	prior := PriorEdgeMEGBound(n, p)
	ratio := ours / prior
	ln := math.Log(float64(n))
	if ratio > 20*ln*ln {
		t.Fatalf("tight regime ratio = %v, want O(log² n) = %v-ish", ratio, ln*ln)
	}
	// Loose regime: q tiny, graph nearly static and dense over time.
	qLoose := 1e-6
	looseRatio := EdgeMEGBound(p, qLoose, n) / PriorEdgeMEGBound(n, p)
	if looseRatio < 10*ratio {
		t.Fatalf("loose regime should be much worse: %v vs %v", looseRatio, ratio)
	}
}

func TestRWPBounds(t *testing.T) {
	// Sparse setting: L = √n, r = 1 -> bound ~ (√n/v)·(1+1)²·log³n; the
	// ratio to the lower bound √n/v is polylog.
	n := 10000
	l := math.Sqrt(float64(n))
	v := 1.0
	up := RWPBound(l, v, 1, n)
	low := RWPLowerBound(n, v)
	ratio := up / low
	ln := math.Log(float64(n))
	if ratio > 10*ln*ln*ln {
		t.Fatalf("RWP bound gap = %v, want polylog (%v)", ratio, ln*ln*ln)
	}
	if up < low {
		t.Fatal("upper bound below lower bound")
	}
}

func TestMeetingTimeBound(t *testing.T) {
	if MeetingTimeBound(100, 1000) != 100*math.Log(1000) {
		t.Fatal("meeting-time bound wrong")
	}
}

func TestPaleyZygmund(t *testing.T) {
	// For a constant variable X = c: E[X]² / E[X²] = 1, bound = (1-θ)².
	if !almostEq(PaleyZygmund(0.5, 2, 4), 0.25, 1e-12) {
		t.Fatalf("PZ constant case = %v", PaleyZygmund(0.5, 2, 4))
	}
	// Degenerate inputs.
	if PaleyZygmund(0.5, 1, 0) != 0 || PaleyZygmund(0, 1, 1) != 0 || PaleyZygmund(1, 1, 1) != 0 {
		t.Fatal("degenerate PZ should be 0")
	}
	// Bound is a probability.
	f := func(m, s uint16) bool {
		mean := float64(m%100) / 10
		meanSq := mean*mean + float64(s%100)/10 // E[X²] >= E[X]²
		b := PaleyZygmund(0.5, mean, meanSq)
		return b >= 0 && b <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaleyZygmundHoldsEmpirically(t *testing.T) {
	// X = Binomial(20, 0.3): estimate P(X > θE[X]) and compare against the
	// PZ lower bound computed from exact moments.
	r := rng.New(5)
	const n, p, theta = 20, 0.3, 0.5
	mean := float64(n) * p
	variance := float64(n) * p * (1 - p)
	meanSq := variance + mean*mean
	bound := PaleyZygmund(theta, mean, meanSq)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if float64(r.Binomial(n, p)) > theta*mean {
			hits++
		}
	}
	emp := float64(hits) / trials
	if emp < bound {
		t.Fatalf("empirical %v below PZ bound %v", emp, bound)
	}
}

func TestChernoffBelowHoldsEmpirically(t *testing.T) {
	r := rng.New(7)
	const n, p, delta = 1000, 0.1, 0.3
	mu := float64(n) * p
	bound := ChernoffBelow(mu, delta)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if float64(r.Binomial(n, p)) < (1-delta)*mu {
			hits++
		}
	}
	emp := float64(hits) / trials
	if emp > bound {
		t.Fatalf("empirical %v above Chernoff bound %v", emp, bound)
	}
}

func TestBinomialTailBelow(t *testing.T) {
	if BinomialTailBelow(100, 0.5, 60) != 1 {
		t.Fatal("above-mean tail should be vacuous")
	}
	b := BinomialTailBelow(100, 0.5, 25)
	if b <= 0 || b >= 1 {
		t.Fatalf("tail bound = %v", b)
	}
}

func TestDegreeExpansionLowerBound(t *testing.T) {
	// Matches |A|α / (2 + 2|A|αβ).
	if !almostEq(DegreeExpansionLowerBound(10, 0.1, 2), 1.0/(2+4), 1e-12) {
		t.Fatal("expansion bound wrong")
	}
}

func TestSpreadEpochLengthGrowsWithT(t *testing.T) {
	a := SpreadEpochLength(4, 100, 0.05, 1, 1)
	b := SpreadEpochLength(4, 100, 0.05, 1, 10)
	if b <= a {
		t.Fatal("epoch length should grow with t")
	}
}

func TestEstimateConditionsOnStationaryEdgeMEG(t *testing.T) {
	// Two-state edge-MEG started stationary: alpha should concentrate near
	// p/(p+q) for every pair and beta near 1 (independent edges).
	params := edgemeg.Params{N: 60, P: 0.1, Q: 0.1} // alpha = 0.5
	factory := func(trial int) dyngraph.Dynamic {
		return edgemeg.NewDense(params, edgemeg.InitStationary, rng.New(rng.Seed(31, uint64(trial))))
	}
	rep, err := EstimateConditions(factory, EstimateOpts{
		M: 5, Epochs: 60, Trials: 6, Pairs: 40, Triples: 25, SetSize: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.AlphaMean-0.5) > 0.05 {
		t.Fatalf("alpha mean = %v, want ~0.5", rep.AlphaMean)
	}
	if rep.AlphaMin < 0.3 {
		t.Fatalf("alpha min = %v, implausibly low for 360 samples", rep.AlphaMin)
	}
	if math.Abs(rep.BetaMean-1) > 0.1 {
		t.Fatalf("beta mean = %v, want ~1 (independent edges)", rep.BetaMean)
	}
	if rep.Samples != 360 {
		t.Fatalf("samples = %d", rep.Samples)
	}
}

func TestEstimateConditionsValidation(t *testing.T) {
	factory := func(trial int) dyngraph.Dynamic {
		return dyngraph.NewStatic(graph.Complete(5))
	}
	if _, err := EstimateConditions(factory, EstimateOpts{}); err == nil {
		t.Fatal("zero opts accepted")
	}
	if _, err := EstimateConditions(factory, EstimateOpts{
		M: 1, Epochs: 1, Trials: 1, Pairs: 1, Triples: 1, SetSize: 4,
	}); err == nil {
		t.Fatal("oversized SetSize accepted")
	}
}

func TestEstimateConditionsStaticCompleteGraph(t *testing.T) {
	// The static complete graph: every pair always connected -> alpha = 1,
	// and all e(i,A) indicators are constant 1 -> beta ratios exactly 1.
	factory := func(trial int) dyngraph.Dynamic {
		return dyngraph.NewStatic(graph.Complete(12))
	}
	rep, err := EstimateConditions(factory, EstimateOpts{
		M: 1, Epochs: 5, Trials: 2, Pairs: 10, Triples: 5, SetSize: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlphaMin != 1 || rep.AlphaMean != 1 {
		t.Fatalf("complete graph alpha: %+v", rep)
	}
	if rep.BetaMax != 1 || rep.BetaMean != 1 {
		t.Fatalf("complete graph beta: %+v", rep)
	}
}

func TestSpreadOnCompleteGraph(t *testing.T) {
	d := dyngraph.NewStatic(graph.Complete(10))
	// From any set, every outside node is reached at the first snapshot.
	if got := Spread(d, []int{0, 1}, 0); got != 8 {
		t.Fatalf("Spread = %d, want 8", got)
	}
}

func TestSpreadAccumulatesOverTime(t *testing.T) {
	// Sparse edge-MEG: a single snapshot reaches few nodes; over many
	// epochs the spread accumulates — the heart of the dynamic-expansion
	// argument.
	params := edgemeg.Params{N: 100, P: 0.0005, Q: 0.0495} // alpha=0.01
	d := edgemeg.NewSparse(params, edgemeg.InitStationary, rng.New(41))
	a := []int{0, 1, 2, 3, 4}
	short := Spread(d, a, 0)
	d2 := edgemeg.NewSparse(params, edgemeg.InitStationary, rng.New(41))
	long := Spread(d2, a, 200)
	if long <= short {
		t.Fatalf("spread should accumulate: %d then %d", short, long)
	}
	if long > 95 {
		t.Fatalf("spread cannot exceed outside-set size: %d", long)
	}
}

func TestSpreadUntilDoubled(t *testing.T) {
	params := edgemeg.Params{N: 80, P: 0.002, Q: 0.098}
	d := edgemeg.NewSparse(params, edgemeg.InitStationary, rng.New(43))
	steps := SpreadUntilDoubled(d, []int{0, 1, 2, 3}, 5000)
	if steps < 0 {
		t.Fatal("doubling never happened within cap")
	}
	// Tiny cap: must report -1.
	d2 := edgemeg.NewSparse(edgemeg.Params{N: 80, P: 1e-6, Q: 0.1}, edgemeg.InitEmpty, rng.New(47))
	if got := SpreadUntilDoubled(d2, []int{0, 1, 2, 3}, 2); got != -1 {
		t.Fatalf("expected -1 under cap, got %d", got)
	}
}

func TestSpreadPanicsOnBadSet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range set member did not panic")
		}
	}()
	Spread(dyngraph.NewStatic(graph.Complete(3)), []int{5}, 1)
}
