package core

import (
	"fmt"

	"repro/internal/dyngraph"
)

// Spread measures the dynamic-expansion quantity spread_{τ,T}(A) of
// Section 3 on a live dynamic graph: starting from the graph's current
// time, it advances T steps and counts how many nodes outside A were
// connected to some node of A in at least one of the visited snapshots
// (including the current one, matching the half-open epoch interval of the
// definition up to the time origin).
//
// Lemma 11 predicts spread_{τ,T}(A) >= |A| within
// T = O(1/(|A|n²α²) + β/(nα) + |A|β²/n + (1/(|A|nα) + β)·t epochs with
// probability 1 - exp(-t); experiment E7 and the core tests exercise this.
func Spread(d dyngraph.Dynamic, a []int, t int) int {
	n := d.N()
	inA := make([]bool, n)
	for _, v := range a {
		if v < 0 || v >= n {
			panic(fmt.Sprintf("core: Spread set member %d out of range", v))
		}
		inA[v] = true
	}
	reached := make([]bool, n)
	count := 0
	observe := func() {
		for _, v := range a {
			d.ForEachNeighbor(v, func(j int) {
				if !inA[j] && !reached[j] {
					reached[j] = true
					count++
				}
			})
		}
	}
	observe()
	for step := 0; step < t; step++ {
		d.Step()
		observe()
	}
	return count
}

// SpreadUntilDoubled advances the graph until spread reaches |A| (the
// doubling event of Lemma 11) and returns the number of steps taken, or
// -1 if maxSteps elapsed first.
func SpreadUntilDoubled(d dyngraph.Dynamic, a []int, maxSteps int) int {
	n := d.N()
	inA := make([]bool, n)
	for _, v := range a {
		inA[v] = true
	}
	reached := make([]bool, n)
	count := 0
	target := len(a)
	if target > n-len(a) {
		target = n - len(a)
	}
	observe := func() {
		for _, v := range a {
			d.ForEachNeighbor(v, func(j int) {
				if !inA[j] && !reached[j] {
					reached[j] = true
					count++
				}
			})
		}
	}
	observe()
	for step := 0; step <= maxSteps; step++ {
		if count >= target {
			return step
		}
		d.Step()
		observe()
	}
	return -1
}
