// Package core implements the paper's primary contribution: the
// (M, α, β)-stationarity framework of Sections 2–3 and the flooding-time
// bounds it yields — Theorem 1 for general dynamic graphs, Theorem 3 for
// node-MEGs, Corollaries 4–6 for geometric and graph mobility models, and
// the Appendix A edge-MEG instantiation — together with empirical
// estimators for the Density and β-Independence conditions and the
// dynamic-expansion measurements (spread) used in the proofs.
package core

import "math"

// Theorem1Bound evaluates the Theorem 1 flooding-time bound
//
//	O( M · (1/(nα) + β)² · log² n )
//
// for an (M, α, β)-stationary dynamic graph on n nodes, with the implicit
// constant set to 1 (the experiments compare shapes, not constants).
func Theorem1Bound(m, alpha, beta float64, n int) float64 {
	ln := math.Log(float64(n))
	t := 1/(float64(n)*alpha) + beta
	return m * t * t * ln * ln
}

// Theorem3Bound evaluates the Theorem 3 node-MEG bound
//
//	O( Tmix · (1/(n·P_NM) + η)² · log³ n ).
func Theorem3Bound(tmix, pnm, eta float64, n int) float64 {
	ln := math.Log(float64(n))
	t := 1/(float64(n)*pnm) + eta
	return tmix * t * t * ln * ln * ln
}

// Corollary4Bound evaluates the geometric random-trip bound
//
//	O( Tmix · (δ²·vol(R)/(λ·n·r^d) + δ⁶/λ²)² · log³ n )
//
// for a d-dimensional region of volume vol with positional-uniformity
// constants δ and λ and transmission radius r.
func Corollary4Bound(tmix, delta, lambda, vol, r float64, d, n int) float64 {
	ln := math.Log(float64(n))
	t := delta*delta*vol/(lambda*float64(n)*math.Pow(r, float64(d))) +
		math.Pow(delta, 6)/(lambda*lambda)
	return tmix * t * t * ln * ln * ln
}

// Corollary5Bound evaluates the random-path bound
//
//	O( Tmix · (|V|/n + δ³)² · log³ n )
//
// for a simple, reversible, δ-regular path family over a point set V.
func Corollary5Bound(tmix float64, v, n int, delta float64) float64 {
	ln := math.Log(float64(n))
	t := float64(v)/float64(n) + math.Pow(delta, 3)
	return tmix * t * t * ln * ln * ln
}

// Corollary6Bound evaluates the random-walk bound
//
//	O( Tmix · (δ²|V|/n + δ⁷)² · log³ n )
//
// for the walk over a δ-regular mobility graph on |V| points.
func Corollary6Bound(tmix float64, v, n int, delta float64) float64 {
	ln := math.Log(float64(n))
	t := delta*delta*float64(v)/float64(n) + math.Pow(delta, 7)
	return tmix * t * t * ln * ln * ln
}

// EdgeMEGBound evaluates the paper's Appendix A bound for the two-state
// edge-MEG with birth rate p and death rate q:
//
//	O( 1/(p+q) · ((p+q)/(np) + 1)² · log² n ).
func EdgeMEGBound(p, q float64, n int) float64 {
	ln := math.Log(float64(n))
	t := (p+q)/(float64(n)*p) + 1
	return 1 / (p + q) * t * t * ln * ln
}

// PriorEdgeMEGBound evaluates the almost-tight bound of [10]
// (Clementi–Macci–Monti–Pasquale–Silvestri, PODC 2008) for the same model:
//
//	O( log n / log(1 + np) ).
//
// Appendix A compares the Theorem 1 instantiation against it: the general
// bound is almost tight whenever q >= np.
func PriorEdgeMEGBound(n int, p float64) float64 {
	return math.Log(float64(n)) / math.Log1p(float64(n)*p)
}

// RWPBound evaluates the random waypoint flooding bound of Section 4.1:
//
//	O( L/vmax · (L²/(n r²) + 1)² · log³ n ).
func RWPBound(l, vmax, r float64, n int) float64 {
	ln := math.Log(float64(n))
	t := l*l/(float64(n)*r*r) + 1
	return l / vmax * t * t * ln * ln * ln
}

// RWPLowerBound evaluates the trivial flooding lower bound Ω(√n / vmax)
// quoted for the sparse setting L ~ √n, r = Θ(1): information must
// physically traverse the square.
func RWPLowerBound(n int, vmax float64) float64 {
	return math.Sqrt(float64(n)) / vmax
}

// TransportLowerBound is the constant-explicit version of the trivial
// lower bound: in one step information advances at most r (one radio hop)
// plus v (carrier movement), so flooding between opposite corners needs at
// least L√2/(r+v) steps. For r = Θ(v) this is Θ(L/v), matching
// RWPLowerBound up to constants.
func TransportLowerBound(l, r, v float64) float64 {
	return l * math.Sqrt2 / (r + v)
}

// MeetingTimeBound evaluates the baseline flooding bound O(T* log n) of
// Dimitriou–Nikoletseas–Spirakis [15], where tstar is the expected meeting
// time of two independent random walks on the mobility graph. Section 4.1
// compares Corollary 6 against it on k-augmented grids.
func MeetingTimeBound(tstar float64, n int) float64 {
	return tstar * math.Log(float64(n))
}
