// Package telemetry is the always-on metrics-capture subsystem: full-time
// diagnostic data capture (FTDC-style) for sweeps, workers, and the
// campaign server, so throughput, churn, and GC behavior are continuously
// observed properties of the running system rather than benchmark-day
// artifacts.
//
// The design has three layers:
//
//   - A Collector registers named int64 metric sources — gauges (current
//     value: heap bytes, outstanding leases, scratch footprint) and
//     counters (monotonic totals: cells, trials, steps, GC pauses; the
//     "_total" suffix marks them) — and snapshots all of them into a
//     Sample, either on its own ticker goroutine (default 1 s, injectable
//     clock for tests) or on demand. Sampling is strictly off the
//     simulation hot path: engines and sweep loops only bump atomic
//     Counters; the reads, the map building, and the encoding all happen
//     on the collector's goroutine.
//   - A Capture appends samples to a delta-encoded, size-capped,
//     ring-buffered file (<name>.ftdc.jsonl): one full reference sample
//     every RefEvery lines, compact per-metric deltas in between, fsync
//     batched every SyncEvery appends, rotation to <name>.ftdc.jsonl.1
//     keeping the total footprint bounded. The reader tolerates a
//     kill-truncated tail exactly like the sweep checkpoint scanner.
//   - Reader/Summarize decode a capture back into absolute samples and
//     aggregate them (first/last/min/max/mean per metric, per-second
//     rates for counters) — the API behind `sweep -telemetry-report`.
//
// All values are int64 by design: delta encoding of integers round-trips
// exactly, and every metric of interest (bytes, counts, nanoseconds,
// milliseconds) is naturally integral. Rates are derived at read time.
package telemetry

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultInterval is the periodic sampling cadence when Options does not
// override it. One sample per second keeps a multi-hour run's capture in
// the low megabytes while still resolving per-cell throughput shifts.
const DefaultInterval = time.Second

// Sample is one point-in-time reading of every registered metric.
type Sample struct {
	// TimeMS is the sample's wall-clock timestamp in Unix milliseconds.
	TimeMS int64
	// Values maps metric name to its sampled value. Counters (names
	// suffixed "_total") are cumulative; gauges are instantaneous.
	Values map[string]int64
}

// SampleWriter receives samples; *Capture implements it, and tests use
// in-memory implementations.
type SampleWriter interface {
	Append(Sample) error
}

// Counter is a monotonic cumulative metric, safe for concurrent use. Hot
// paths only Add; the collector Loads on its own goroutine.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current cumulative value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Options configures a Collector. The zero value is production-ready:
// 1 s interval, real clock, runtime metrics on.
type Options struct {
	// Interval is the periodic sampling cadence (DefaultInterval when 0).
	Interval time.Duration
	// Now overrides the clock, for tests. Defaults to time.Now.
	Now func() time.Time
	// NoRuntime disables the built-in runtime.MemStats metrics
	// (heap_bytes, gc_pause_total_ns, gc_total, alloc_bytes_total,
	// goroutines) — tests asserting exact sample contents set it.
	NoRuntime bool
}

// Collector registers metric sources and snapshots them into Samples.
// Registration (Gauge, Counter) is expected at startup; Snapshot, Sample,
// and the ticker may run concurrently with Counter.Add from any goroutine.
type Collector struct {
	interval time.Duration
	now      func() time.Time
	runtime  bool

	mu       sync.Mutex
	names    []string // registration order of gauges
	gauges   map[string]func() int64
	counters map[string]*Counter
	cnames   []string // registration order of counters

	writer   SampleWriter
	writeErr error
	stop     chan struct{}
	done     chan struct{}
}

// New creates a collector.
func New(opts Options) *Collector {
	c := &Collector{
		interval: opts.Interval,
		now:      opts.Now,
		runtime:  !opts.NoRuntime,
		gauges:   make(map[string]func() int64),
		counters: make(map[string]*Counter),
	}
	if c.interval <= 0 {
		c.interval = DefaultInterval
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Gauge registers a named instantaneous source. fn is called on the
// collector's sampling goroutine and must be safe for concurrent use with
// whatever state it reads. Registering an existing name replaces the
// source (so a resumed sweep in the same process re-wires cleanly).
func (c *Collector) Gauge(name string, fn func() int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.gauges[name]; !ok {
		c.names = append(c.names, name)
	}
	c.gauges[name] = fn
}

// Counter returns the named counter, creating and registering it on first
// use. By convention counter names end in "_total"; Summarize derives
// per-second rates from that suffix.
func (c *Collector) Counter(name string) *Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr, ok := c.counters[name]; ok {
		return ctr
	}
	ctr := &Counter{}
	c.counters[name] = ctr
	c.cnames = append(c.cnames, name)
	return ctr
}

// Snapshot reads every registered source into one Sample. The built-in
// runtime metrics are read once per snapshot (a single ReadMemStats),
// never per source.
func (c *Collector) Snapshot() Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := make(map[string]int64, len(c.names)+len(c.cnames)+5)
	for _, name := range c.names {
		v[name] = c.gauges[name]()
	}
	for _, name := range c.cnames {
		v[name] = c.counters[name].Load()
	}
	if c.runtime {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		v["heap_bytes"] = int64(ms.HeapAlloc)
		v["alloc_bytes_total"] = int64(ms.TotalAlloc)
		v["gc_total"] = int64(ms.NumGC)
		v["gc_pause_total_ns"] = int64(ms.PauseTotalNs)
		v["goroutines"] = int64(runtime.NumGoroutine())
	}
	return Sample{TimeMS: c.now().UnixMilli(), Values: v}
}

// Sample snapshots and appends to w.
func (c *Collector) Sample(w SampleWriter) error {
	return w.Append(c.Snapshot())
}

// Start launches the periodic sampler: one sample to w per interval until
// Stop. Write errors do not stop sampling (a full disk must not take down
// the sweep it observes); the first error is reported by Stop.
func (c *Collector) Start(w SampleWriter) {
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		panic("telemetry: Collector.Start called twice")
	}
	c.writer = w
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.recordErr(c.Sample(w))
			}
		}
	}()
}

// SampleNow writes one immediate sample to the writer Start installed —
// the per-event hook (e.g. one sample per completed sweep cell) layered on
// top of the periodic ticker. A no-op before Start.
func (c *Collector) SampleNow() {
	c.mu.Lock()
	w := c.writer
	c.mu.Unlock()
	if w == nil {
		return
	}
	c.recordErr(c.Sample(w))
}

// recordErr remembers the first write failure.
func (c *Collector) recordErr(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.writeErr == nil {
		c.writeErr = err
	}
	c.mu.Unlock()
}

// Stop halts the periodic sampler, writes one final sample (so even a
// sub-interval run captures its end state), and returns the first write
// error encountered over the collector's lifetime.
func (c *Collector) Stop() error {
	c.mu.Lock()
	stop, done, w := c.stop, c.done, c.writer
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if w != nil {
		c.recordErr(c.Sample(w))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.writeErr
	c.writeErr = nil
	return err
}

// MetricNames returns the registered metric names (gauges, counters, and
// — when enabled — the built-in runtime metrics), sorted.
func (c *Collector) MetricNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.names)+len(c.cnames)+5)
	names = append(names, c.names...)
	names = append(names, c.cnames...)
	if c.runtime {
		names = append(names, "heap_bytes", "alloc_bytes_total", "gc_total", "gc_pause_total_ns", "goroutines")
	}
	sort.Strings(names)
	return names
}

// String renders a sample compactly for logs.
func (s Sample) String() string {
	names := make([]string, 0, len(s.Values))
	for name := range s.Values {
		names = append(names, name)
	}
	sort.Strings(names)
	out := fmt.Sprintf("t=%d", s.TimeMS)
	for _, name := range names {
		out += fmt.Sprintf(" %s=%d", name, s.Values[name])
	}
	return out
}
