package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// mkSample builds a sample with the given metrics.
func mkSample(ts int64, kv ...any) Sample {
	v := map[string]int64{}
	for i := 0; i < len(kv); i += 2 {
		v[kv[i].(string)] = int64(kv[i+1].(int))
	}
	return Sample{TimeMS: ts, Values: v}
}

// writeAll appends samples to a fresh capture at path and closes it.
func writeAll(t *testing.T, path string, opts CaptureOptions, samples []Sample) {
	t.Helper()
	c, err := OpenCapture(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := c.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCaptureRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t"+Ext)
	samples := []Sample{
		mkSample(1000, "a_total", 0, "heap", 100),
		mkSample(2000, "a_total", 3, "heap", 90),             // mixed-sign deltas
		mkSample(3000, "a_total", 3, "heap", 90),             // no change: empty delta
		mkSample(4100, "a_total", 7, "heap", 250, "late", 5), // metric appears mid-run
		mkSample(5000, "a_total", 7, "heap", 240, "late", 5),
		mkSample(6000, "a_total", 9, "heap", 240), // metric disappears: forces a ref
		mkSample(7000, "a_total", 12, "heap", 300),
	}
	writeAll(t, path, CaptureOptions{}, samples)
	got, err := ReadCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, samples) {
		t.Fatalf("round trip mismatch:\ngot  %v\nwant %v", got, samples)
	}
}

// TestCaptureDeltaEncoding checks the wire shape: refs only where the
// format requires them, deltas carrying only changed metrics.
func TestCaptureDeltaEncoding(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t"+Ext)
	var samples []Sample
	for i := 0; i < 10; i++ {
		samples = append(samples, mkSample(int64(1000*(i+1)), "a_total", i, "g", 42))
	}
	writeAll(t, path, CaptureOptions{RefEvery: 4}, samples)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(samples) {
		t.Fatalf("got %d lines, want %d", len(lines), len(samples))
	}
	for i, line := range lines {
		var obj captureLine
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		wantRef := i%4 == 0 // RefEvery=4: lines 0, 4, 8 are refs
		if gotRef := obj.Ref != nil; gotRef != wantRef {
			t.Fatalf("line %d: ref=%v, want %v (%s)", i, gotRef, wantRef, line)
		}
		if obj.Delta != nil {
			// Only a_total changed between consecutive samples.
			if len(obj.Delta.V) != 1 || obj.Delta.V["a_total"] != 1 {
				t.Fatalf("line %d: delta %v, want {a_total:1}", i, obj.Delta.V)
			}
		}
	}
}

func TestCaptureRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t"+Ext)
	opts := CaptureOptions{MaxBytes: 4096, RefEvery: 8, SyncEvery: 4}
	c, err := OpenCapture(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	for i := 0; i < 400; i++ {
		s := mkSample(int64(1000*(i+1)), "a_total", i, "gauge_one", i%7, "gauge_two", 1000+i)
		samples = append(samples, s)
		if err := c.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The ring stayed bounded: live + rotated files within MaxBytes plus
	// one line of slack (rotation triggers after the append that crosses
	// half the cap).
	live, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	old, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("expected a rotation after %d samples in %d bytes: %v", len(samples), opts.MaxBytes, err)
	}
	slack := int64(512)
	if total := live.Size() + old.Size(); total > opts.MaxBytes+slack {
		t.Fatalf("ring exceeded cap: %d bytes total > %d", total, opts.MaxBytes+slack)
	}

	// The reader sees a contiguous recent suffix of what was written.
	got, err := ReadCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(samples) {
		t.Fatalf("got %d samples, want a proper suffix of %d", len(got), len(samples))
	}
	tail := samples[len(samples)-len(got):]
	if !reflect.DeepEqual(got, tail) {
		t.Fatalf("ring contents are not the written suffix:\nfirst got  %v\nfirst want %v", got[0], tail[0])
	}
}

func TestCaptureTruncatedTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t"+Ext)
	samples := []Sample{
		mkSample(1000, "a_total", 1),
		mkSample(2000, "a_total", 2),
		mkSample(3000, "a_total", 3),
	}
	writeAll(t, path, CaptureOptions{}, samples)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way into the final line: the kill signature. (Cutting only
	// the trailing newline is not damage — the line still parses, exactly
	// as the checkpoint scanner treats a severed final newline.)
	for cut := len(data) - 2; cut > len(data)-10; cut-- {
		got, err := ReadCapture(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 2 || !reflect.DeepEqual(got, samples[:2]) {
			t.Fatalf("cut %d: got %v, want first two samples", cut, got)
		}
	}
}

func TestCaptureMidFileGarbageErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t"+Ext)
	writeAll(t, path, CaptureOptions{}, []Sample{mkSample(1000, "a_total", 1), mkSample(2000, "a_total", 2)})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	corrupt := lines[0] + "{garbage\n" + lines[1]
	if _, err := ReadCapture(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-file garbage read cleanly")
	}
	// A delta with no preceding ref is corruption, not a decodable line.
	if _, err := ReadCapture(strings.NewReader(`{"d":{"dt":1,"v":{"x":1}}}` + "\n" + lines[0])); err == nil {
		t.Fatal("leading delta read cleanly")
	}
}

// TestOpenCaptureHealsSeveredTail reopens a capture whose final line was
// cut by a kill: the fragment must be truncated away and the resumed file
// must read cleanly end to end, with the first new append a full ref.
func TestOpenCaptureHealsSeveredTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t"+Ext)
	samples := []Sample{
		mkSample(1000, "a_total", 1),
		mkSample(2000, "a_total", 2),
		mkSample(3000, "a_total", 3),
	}
	writeAll(t, path, CaptureOptions{}, samples)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCapture(path, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := mkSample(9000, "b_total", 9)
	if err := c.Append(fresh); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Sample{}, samples[:2]...), fresh)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("healed capture mismatch:\ngot  %v\nwant %v", got, want)
	}
}

func TestCaptureFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b" + Ext, "a" + Ext, "a" + Ext + ".1", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := CaptureFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "a"+Ext), filepath.Join(dir, "b"+Ext)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
