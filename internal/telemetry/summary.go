package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// MetricSummary aggregates one metric over a decoded capture.
type MetricSummary struct {
	Name                  string
	First, Last, Min, Max int64
	// Mean is the arithmetic mean over samples (meaningful for gauges).
	Mean float64
	// Counter reports whether the metric follows the monotonic "_total"
	// naming convention; Rate is then (Last-First) per elapsed second.
	Counter bool
	Rate    float64
}

// Summary aggregates a decoded capture: the sample span plus per-metric
// statistics — what `sweep -telemetry-report` renders and what CI asserts
// against.
type Summary struct {
	Samples        int
	StartMS, EndMS int64
	ElapsedSec     float64
	Metrics        []MetricSummary // name-sorted
	byName         map[string]int
}

// Metric returns the named metric's summary.
func (s Summary) Metric(name string) (MetricSummary, bool) {
	i, ok := s.byName[name]
	if !ok {
		return MetricSummary{}, false
	}
	return s.Metrics[i], true
}

// IsCounter reports whether a metric name follows the monotonic-total
// convention.
func IsCounter(name string) bool { return strings.HasSuffix(name, "_total") }

// Summarize aggregates samples (as returned by ReadCaptureFile) into
// per-metric statistics. Metrics absent from some samples (registered
// mid-run) aggregate over the samples that carry them.
func Summarize(samples []Sample) Summary {
	s := Summary{Samples: len(samples), byName: map[string]int{}}
	if len(samples) == 0 {
		return s
	}
	s.StartMS = samples[0].TimeMS
	s.EndMS = samples[len(samples)-1].TimeMS
	s.ElapsedSec = float64(s.EndMS-s.StartMS) / 1000
	type acc struct {
		first, last, min, max int64
		sum                   float64
		n                     int
	}
	accs := map[string]*acc{}
	var names []string
	for _, sample := range samples {
		for name, v := range sample.Values {
			a, ok := accs[name]
			if !ok {
				a = &acc{first: v, min: v, max: v}
				accs[name] = a
				names = append(names, name)
			}
			a.last = v
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
			a.sum += float64(v)
			a.n++
		}
	}
	sort.Strings(names)
	for _, name := range names {
		a := accs[name]
		m := MetricSummary{
			Name:    name,
			First:   a.first,
			Last:    a.last,
			Min:     a.min,
			Max:     a.max,
			Mean:    a.sum / float64(a.n),
			Counter: IsCounter(name),
		}
		if m.Counter && s.ElapsedSec > 0 {
			m.Rate = float64(m.Last-m.First) / s.ElapsedSec
		}
		s.byName[name] = len(s.Metrics)
		s.Metrics = append(s.Metrics, m)
	}
	return s
}

// WriteSummary renders the summary as an aligned text table: one metric
// per row with first/last/min/max/mean and, for counters, the per-second
// rate.
func WriteSummary(w io.Writer, s Summary) error {
	if _, err := fmt.Fprintf(w, "%d samples over %.1fs\n", s.Samples, s.ElapsedSec); err != nil {
		return err
	}
	if s.Samples == 0 {
		return nil
	}
	width := len("metric")
	for _, m := range s.Metrics {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s %14s %14s %14s %14s %14s %12s\n",
		width, "metric", "first", "last", "min", "max", "mean", "rate/s"); err != nil {
		return err
	}
	for _, m := range s.Metrics {
		rate := ""
		if m.Counter {
			rate = fmt.Sprintf("%.2f", m.Rate)
		}
		if _, err := fmt.Fprintf(w, "%-*s %14d %14d %14d %14d %14.1f %12s\n",
			width, m.Name, m.First, m.Last, m.Min, m.Max, m.Mean, rate); err != nil {
			return err
		}
	}
	return nil
}
