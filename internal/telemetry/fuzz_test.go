package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// fuzzLines renders a few samples through the real encoder and returns the
// file contents, for seeding the corpus.
func fuzzLines(opts CaptureOptions, samples ...Sample) string {
	c := &Capture{opts: opts.withDefaults()}
	var buf bytes.Buffer
	for _, s := range samples {
		line, isRef, err := c.encodeLocked(s)
		if err != nil {
			panic(err)
		}
		if isRef {
			c.sinceRef = 1
		} else {
			c.sinceRef++
		}
		c.prev = cloneValues(s.Values)
		c.prevTS = s.TimeMS
		buf.Write(line)
	}
	return buf.String()
}

// FuzzReadCapture hammers the capture scanner with the kill-and-rotate
// reality a long-lived telemetry writer creates: truncated tails, severed
// newlines, mid-file garbage, deltas with no reference, and negative
// deltas. The invariants mirror FuzzScanCheckpoint:
//
//  1. scanCapture never panics and validLen is a sane offset ending on a
//     decodable-prefix boundary.
//  2. Rescanning the reported valid prefix reproduces exactly the same
//     samples and the same validLen (so OpenCapture's truncate-to-validLen
//     repair converges).
//  3. Appending a fresh reference line after the valid prefix — what
//     OpenCapture's resume path does — yields the old samples plus the new
//     one.
func FuzzReadCapture(f *testing.F) {
	s1 := Sample{TimeMS: 1000, Values: map[string]int64{"a_total": 1, "g": 50}}
	s2 := Sample{TimeMS: 2000, Values: map[string]int64{"a_total": 3, "g": 40}}
	s3 := Sample{TimeMS: 3000, Values: map[string]int64{"a_total": 3}}
	full := fuzzLines(CaptureOptions{}, s1, s2, s3)
	dense := fuzzLines(CaptureOptions{RefEvery: 2}, s1, s2, s3)
	f.Add([]byte(""))
	f.Add([]byte(full))
	f.Add([]byte(dense))
	f.Add([]byte(full[:len(full)/2]))                     // kill-truncated tail
	f.Add([]byte(strings.TrimSuffix(full, "\n")))         // severed trailing newline
	f.Add([]byte(full + "{garbage\n" + dense))            // mid-file garbage
	f.Add([]byte(`{"d":{"dt":5,"v":{"x":1}}}` + "\n"))    // delta before any ref
	f.Add([]byte(`{"ref":{"ts":1},"d":{"dt":1}}` + "\n")) // both sides set
	f.Add([]byte("\n\n" + full))                          // blank lines
	f.Add([]byte(`{"ref":{"ts":9,"v":{}}}` + "\n"))       // empty metric set
	f.Fuzz(func(t *testing.T, data []byte) {
		samples, validLen, err := scanCapture(bytes.NewReader(data))
		if err != nil {
			return // corrupt captures may be rejected; they must not panic
		}
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range for %d input bytes", validLen, len(data))
		}
		prefix := data[:validLen]
		again, againLen, err := scanCapture(bytes.NewReader(prefix))
		if err != nil {
			t.Fatalf("rescanning valid prefix failed: %v\nprefix: %q", err, prefix)
		}
		if againLen != validLen {
			t.Fatalf("rescan of valid prefix shrank: %d -> %d\nprefix: %q", validLen, againLen, prefix)
		}
		if !reflect.DeepEqual(samples, again) {
			t.Fatalf("rescan of valid prefix changed samples:\n%+v\nvs\n%+v", samples, again)
		}
		// The append step mirrors OpenCapture: truncate to validLen, repair
		// a severed trailing newline, then append one fresh reference.
		appended := append([]byte{}, prefix...)
		if len(appended) > 0 && appended[len(appended)-1] != '\n' {
			appended = append(appended, '\n')
		}
		fresh := fuzzLines(CaptureOptions{}, Sample{TimeMS: 77, Values: map[string]int64{"appended_total": 1}})
		appended = append(appended, fresh...)
		merged, _, err := scanCapture(bytes.NewReader(appended))
		if err != nil {
			t.Fatalf("append after truncation broke the capture: %v\nfile: %q", err, appended)
		}
		if len(merged) != len(samples)+1 {
			t.Fatalf("append after truncation: got %d samples, want %d", len(merged), len(samples)+1)
		}
		last := merged[len(merged)-1]
		if last.TimeMS != 77 || last.Values["appended_total"] != 1 {
			t.Fatalf("appended sample lost: %+v", last)
		}
		if len(samples) > 0 && !reflect.DeepEqual(merged[:len(samples)], samples) {
			t.Fatalf("append disturbed earlier samples")
		}
	})
}
