package telemetry

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// memWriter collects samples in memory.
type memWriter struct {
	mu      sync.Mutex
	samples []Sample
}

func (m *memWriter) Append(s Sample) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples = append(m.samples, s)
	return nil
}

func (m *memWriter) all() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sample{}, m.samples...)
}

// testClock is an injectable, manually advanced clock.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestCollectorSample(t *testing.T) {
	clock := &testClock{t: time.UnixMilli(50_000)}
	c := New(Options{Now: clock.now, NoRuntime: true})
	g := int64(7)
	c.Gauge("g", func() int64 { return g })
	ctr := c.Counter("work_total")
	ctr.Add(3)

	s := c.Snapshot()
	if s.TimeMS != 50_000 {
		t.Fatalf("TimeMS = %d, want 50000", s.TimeMS)
	}
	if s.Values["g"] != 7 || s.Values["work_total"] != 3 || len(s.Values) != 2 {
		t.Fatalf("sample = %v", s.Values)
	}

	// Sources are read live, and Counter is get-or-create idempotent.
	g = 9
	if c.Counter("work_total") != ctr {
		t.Fatal("Counter is not idempotent")
	}
	ctr.Add(2)
	clock.advance(time.Second)
	w := &memWriter{}
	if err := c.Sample(w); err != nil {
		t.Fatal(err)
	}
	s = w.all()[0]
	if s.TimeMS != 51_000 || s.Values["g"] != 9 || s.Values["work_total"] != 5 {
		t.Fatalf("sample = %+v", s)
	}

	// Re-registering a gauge replaces the source rather than panicking.
	c.Gauge("g", func() int64 { return -1 })
	if got := c.Snapshot().Values["g"]; got != -1 {
		t.Fatalf("re-registered gauge read %d, want -1", got)
	}
}

func TestCollectorRuntimeMetrics(t *testing.T) {
	c := New(Options{})
	s := c.Snapshot()
	for _, name := range []string{"heap_bytes", "alloc_bytes_total", "gc_total", "gc_pause_total_ns", "goroutines"} {
		if _, ok := s.Values[name]; !ok {
			t.Fatalf("runtime metric %s missing from %v", name, s.Values)
		}
	}
	if s.Values["heap_bytes"] <= 0 || s.Values["goroutines"] <= 0 {
		t.Fatalf("implausible runtime metrics: %v", s.Values)
	}
	names := c.MetricNames()
	if len(names) != 5 {
		t.Fatalf("MetricNames = %v", names)
	}
}

func TestCollectorTicker(t *testing.T) {
	c := New(Options{Interval: 5 * time.Millisecond, NoRuntime: true})
	ctr := c.Counter("ticks_total")
	w := &memWriter{}
	c.Start(w)
	deadline := time.After(2 * time.Second)
	for len(w.all()) < 3 {
		ctr.Add(1)
		select {
		case <-deadline:
			t.Fatal("ticker produced fewer than 3 samples in 2s")
		case <-time.After(time.Millisecond):
		}
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	// Stop appends a final sample on top of the ticker's.
	got := w.all()
	if len(got) < 4 {
		t.Fatalf("got %d samples, want >= 4 (ticker + final)", len(got))
	}
	// SampleNow before Start must be a silent no-op.
	c2 := New(Options{NoRuntime: true})
	c2.SampleNow() // must not panic or write anywhere
}

func TestCollectorCaptureEndToEnd(t *testing.T) {
	clock := &testClock{t: time.UnixMilli(1_000)}
	c := New(Options{Now: clock.now, NoRuntime: true})
	cells := c.Counter("cells_total")
	path := filepath.Join(t.TempDir(), "run"+Ext)
	cp, err := OpenCapture(path, CaptureOptions{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		cells.Add(2)
		clock.advance(time.Second)
		if err := c.Sample(cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	samples, err := ReadCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10", len(samples))
	}
	sum := Summarize(samples)
	m, ok := sum.Metric("cells_total")
	if !ok {
		t.Fatal("cells_total missing from summary")
	}
	if m.First != 2 || m.Last != 20 || !m.Counter {
		t.Fatalf("cells_total summary = %+v", m)
	}
	// 18 cells over 9 seconds of samples = 2/s.
	if m.Rate < 1.99 || m.Rate > 2.01 {
		t.Fatalf("rate = %f, want 2/s", m.Rate)
	}
}

func TestSummarizeAndWrite(t *testing.T) {
	samples := []Sample{
		{TimeMS: 0, Values: map[string]int64{"g": 5, "n_total": 0}},
		{TimeMS: 1000, Values: map[string]int64{"g": 1, "n_total": 10}},
		{TimeMS: 2000, Values: map[string]int64{"g": 3, "n_total": 30}},
	}
	s := Summarize(samples)
	if s.Samples != 3 || s.ElapsedSec != 2 {
		t.Fatalf("summary = %+v", s)
	}
	g, _ := s.Metric("g")
	if g.Min != 1 || g.Max != 5 || g.First != 5 || g.Last != 3 || g.Counter {
		t.Fatalf("g = %+v", g)
	}
	if g.Mean != 3 {
		t.Fatalf("g mean = %f, want 3", g.Mean)
	}
	n, _ := s.Metric("n_total")
	if !n.Counter || n.Rate != 15 {
		t.Fatalf("n_total = %+v", n)
	}
	var buf bytes.Buffer
	if err := WriteSummary(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"3 samples over 2.0s", "n_total", "15.00", "metric"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary output missing %q:\n%s", want, out)
		}
	}

	empty := Summarize(nil)
	if empty.Samples != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	if _, ok := empty.Metric("g"); ok {
		t.Fatal("empty summary has metrics")
	}
	if err := WriteSummary(&buf, empty); err != nil {
		t.Fatal(err)
	}
}
