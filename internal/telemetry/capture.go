package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The capture file format: one JSON object per line, each either a full
// reference sample or a delta against the previous line's decoded state.
//
//	{"ref":{"ts":1733262000123,"v":{"heap_bytes":104857,"sweep_cells_total":0}}}
//	{"d":{"dt":1000,"v":{"sweep_cells_total":2}}}
//
// A ref carries the absolute value of every metric; a delta carries only
// the metrics whose value changed, as signed differences (omitted = 0; a
// metric absent from every earlier line of the chain decodes from base 0).
// Every file begins with a ref, a fresh ref is emitted every RefEvery
// samples (bounding the damage a corrupt line can do), and a delta can
// never express a metric disappearing — the writer forces a ref when the
// metric set shrinks, and the reader treats a delta with no preceding ref
// as corruption.
//
// Durability and bounding mirror the sweep checkpoint contract:
//
//   - Appends are fsync-batched (every SyncEvery lines and on Close), so a
//     kill loses at most SyncEvery samples.
//   - The reader drops a malformed FINAL line silently (the kill
//     signature) but errors on damage anywhere earlier.
//   - When the current file exceeds MaxBytes/2 it rotates to <path>.1
//     (replacing any previous rotation), so the pair never holds more
//     than ~MaxBytes — a ring buffer over the most recent history.

// Capture defaults.
const (
	// DefaultMaxBytes bounds the current + rotated file pair.
	DefaultMaxBytes = 8 << 20
	// DefaultRefEvery is the full-reference cadence.
	DefaultRefEvery = 32
	// DefaultSyncEvery is the fsync batch size.
	DefaultSyncEvery = 8
)

// Ext is the conventional capture-file suffix.
const Ext = ".ftdc.jsonl"

// CaptureOptions configures a Capture; zero values take the defaults.
type CaptureOptions struct {
	// MaxBytes caps the total capture footprint across the live file and
	// its one rotation (DefaultMaxBytes when 0). Rotation triggers at
	// MaxBytes/2.
	MaxBytes int64
	// RefEvery is how many samples may share one reference before a fresh
	// full sample is emitted (DefaultRefEvery when 0).
	RefEvery int
	// SyncEvery is how many appends may accumulate before an fsync
	// (DefaultSyncEvery when 0). 1 syncs every sample.
	SyncEvery int
}

func (o CaptureOptions) withDefaults() CaptureOptions {
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.RefEvery <= 0 {
		o.RefEvery = DefaultRefEvery
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	return o
}

// Capture is the appending side of a capture file. Safe for concurrent
// use (the periodic ticker and per-event SampleNow hooks share one).
type Capture struct {
	mu   sync.Mutex
	path string
	opts CaptureOptions

	f         *os.File
	size      int64
	sinceRef  int
	sinceSync int
	prev      map[string]int64
	prevTS    int64
}

// refLine is a full sample: absolute timestamp and every metric's value.
type refLine struct {
	TS int64            `json:"ts"`
	V  map[string]int64 `json:"v"`
}

// deltaLine is a delta sample: timestamp delta and changed metrics only.
type deltaLine struct {
	DT int64            `json:"dt"`
	V  map[string]int64 `json:"v,omitempty"`
}

// captureLine is the wire union; exactly one side is set.
type captureLine struct {
	Ref   *refLine   `json:"ref,omitempty"`
	Delta *deltaLine `json:"d,omitempty"`
}

// OpenCapture opens (creating if needed) the capture at path for
// appending. An existing file's kill-truncated tail is healed exactly as
// the sweep checkpoint's: the valid prefix is kept, the severed fragment
// truncated away, and — since the previous process's delta chain is not
// recoverable state — the first new append always writes a full reference,
// so the resumed file stays decodable end to end.
func OpenCapture(path string, opts CaptureOptions) (*Capture, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	_, validLen, err := scanCapture(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: truncating partial capture line in %s: %w", path, err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if validLen > 0 {
		// A kill can sever exactly the trailing newline of an intact
		// final line; repair the separator before appending.
		var last [1]byte
		if _, err := f.ReadAt(last[:], validLen-1); err != nil {
			f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
			validLen++
		}
	}
	return &Capture{path: path, opts: opts.withDefaults(), f: f, size: validLen}, nil
}

// Append encodes the sample (reference or delta, per the rules above),
// writes it, fsyncs on the batch boundary, and rotates when the live file
// crosses half the byte cap.
func (c *Capture) Append(s Sample) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return fmt.Errorf("telemetry: append to closed capture %s", c.path)
	}
	line, isRef, err := c.encodeLocked(s)
	if err != nil {
		return err
	}
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("telemetry: writing capture %s: %w", c.path, err)
	}
	c.size += int64(len(line))
	if isRef {
		c.sinceRef = 1
	} else {
		c.sinceRef++
	}
	// Remember the decoded state this line produces, for the next delta.
	c.prev = cloneValues(s.Values)
	c.prevTS = s.TimeMS
	c.sinceSync++
	if c.sinceSync >= c.opts.SyncEvery {
		if err := c.f.Sync(); err != nil {
			return fmt.Errorf("telemetry: fsync capture %s: %w", c.path, err)
		}
		c.sinceSync = 0
	}
	if c.size > c.opts.MaxBytes/2 {
		return c.rotateLocked()
	}
	return nil
}

// encodeLocked renders s as a ref or delta line against c.prev.
func (c *Capture) encodeLocked(s Sample) (line []byte, isRef bool, err error) {
	needRef := c.prev == nil || c.sinceRef >= c.opts.RefEvery
	if !needRef {
		// A delta cannot express a metric disappearing.
		for name := range c.prev {
			if _, ok := s.Values[name]; !ok {
				needRef = true
				break
			}
		}
	}
	var obj captureLine
	if needRef {
		obj.Ref = &refLine{TS: s.TimeMS, V: s.Values}
		if obj.Ref.V == nil {
			obj.Ref.V = map[string]int64{}
		}
	} else {
		d := &deltaLine{DT: s.TimeMS - c.prevTS}
		for name, v := range s.Values {
			if dv := v - c.prev[name]; dv != 0 {
				if d.V == nil {
					d.V = make(map[string]int64)
				}
				d.V[name] = dv
			}
		}
		obj.Delta = d
	}
	data, err := json.Marshal(obj)
	if err != nil {
		return nil, false, fmt.Errorf("telemetry: encoding capture sample: %w", err)
	}
	return append(data, '\n'), needRef, nil
}

// rotateLocked moves the live file to <path>.1 (replacing any previous
// rotation) and starts a fresh file whose first append will be a ref.
func (c *Capture) rotateLocked() error {
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("telemetry: fsync before rotating %s: %w", c.path, err)
	}
	if err := c.f.Close(); err != nil {
		return err
	}
	c.f = nil
	if err := os.Rename(c.path, c.path+".1"); err != nil {
		return fmt.Errorf("telemetry: rotating capture %s: %w", c.path, err)
	}
	f, err := os.OpenFile(c.path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	c.f = f
	c.size = 0
	c.sinceRef = 0
	c.sinceSync = 0
	c.prev = nil
	return nil
}

// Path returns the capture's live file path.
func (c *Capture) Path() string { return c.path }

// Close fsyncs and closes the capture.
func (c *Capture) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Sync()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	return err
}

func cloneValues(v map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// ReadCapture decodes capture lines from r into absolute samples. A
// malformed or chain-breaking FINAL line is dropped silently — the
// signature of a process killed mid-write — while damage anywhere earlier
// is a corrupt capture and errors.
func ReadCapture(r io.Reader) ([]Sample, error) {
	samples, _, err := scanCapture(r)
	return samples, err
}

// scanCapture is ReadCapture plus the byte length of the valid prefix —
// the offset just past the last intact line, where OpenCapture truncates
// so a resumed file stays self-consistent.
func scanCapture(r io.Reader) (samples []Sample, validLen int64, err error) {
	br := bufio.NewReader(r)
	var cur map[string]int64 // decoded state of the last intact line
	var curTS int64
	var pendingErr error // a bad line is fatal only if another line follows
	line := 0
	for {
		text, readErr := br.ReadBytes('\n')
		if len(text) > 0 {
			line++
			if pendingErr != nil {
				return nil, 0, pendingErr
			}
			pendingErr = func() error {
				trimmed := bytes.TrimSpace(text)
				if len(trimmed) == 0 {
					return nil
				}
				var obj captureLine
				if err := json.Unmarshal(trimmed, &obj); err != nil {
					return fmt.Errorf("telemetry: capture line %d: %w", line, err)
				}
				switch {
				case obj.Ref != nil && obj.Delta == nil:
					cur = cloneValues(obj.Ref.V)
					curTS = obj.Ref.TS
				case obj.Delta != nil && obj.Ref == nil:
					if cur == nil {
						return fmt.Errorf("telemetry: capture line %d: delta with no preceding reference", line)
					}
					cur = cloneValues(cur)
					for name, dv := range obj.Delta.V {
						cur[name] += dv
					}
					curTS += obj.Delta.DT
				default:
					return fmt.Errorf("telemetry: capture line %d: want exactly one of ref/d", line)
				}
				samples = append(samples, Sample{TimeMS: curTS, Values: cur})
				return nil
			}()
			if pendingErr == nil {
				validLen += int64(len(text))
			}
		}
		if readErr == io.EOF {
			// A pending error on the final line is the kill signature:
			// drop the line, report the intact prefix.
			return samples, validLen, nil
		}
		if readErr != nil {
			return nil, 0, fmt.Errorf("telemetry: reading capture: %w", readErr)
		}
	}
}

// ReadCaptureFile loads a capture including its rotation: <path>.1 first
// (the older half of the ring, if a rotation happened), then <path>. A
// missing live file is an error; a missing rotation is simply a capture
// that never wrapped.
func ReadCaptureFile(path string) ([]Sample, error) {
	var samples []Sample
	if older, err := os.Open(path + ".1"); err == nil {
		s, rerr := ReadCapture(older)
		older.Close()
		if rerr != nil {
			return nil, fmt.Errorf("%s.1: %w", path, rerr)
		}
		samples = s
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadCapture(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return append(samples, s...), nil
}

// CaptureFiles lists the live capture files under dir (by the *.ftdc.jsonl
// convention; rotations are picked up by ReadCaptureFile automatically),
// sorted by name.
func CaptureFiles(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+Ext))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
