package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"repro/internal/study"
)

// The HTTP/JSON API. Every request and response body is JSON except the
// report endpoint, which returns the rendered table. See docs/SWEEPD.md
// for the protocol description.
//
//	POST   /campaigns            submit a study.Sweep        -> SubmitResponse
//	GET    /campaigns            list campaign progress      -> ListResponse
//	GET    /campaigns/{id}       one campaign's progress     -> Progress
//	DELETE /campaigns/{id}       delete campaign + state     -> {} (409 while leased)
//	GET    /campaigns/{id}/report?format=csv|md  rendered report
//	GET    /campaigns/{id}/metrics  progress + event counters -> Metrics
//	GET    /metrics              farm-wide snapshot          -> FarmMetrics
//	POST   /lease                request work                -> LeaseResponse
//	POST   /complete             submit a finished cell      -> CompleteResponse
//	POST   /release              return a leased cell        -> statusBody
//	GET    /healthz              liveness                    -> "ok"

// maxBodyBytes bounds request bodies; sweeps and cell records are small,
// so anything larger is a confused client.
const maxBodyBytes = 16 << 20

// SubmitResponse answers POST /campaigns.
type SubmitResponse struct {
	ID    string `json:"id"`
	Cells int    `json:"cells"`
}

// ListResponse answers GET /campaigns.
type ListResponse struct {
	Campaigns []Progress `json:"campaigns"`
}

// LeaseRequest is the body of POST /lease.
type LeaseRequest struct {
	// Worker names the requester, for logs and lease bookkeeping only —
	// it carries no authority.
	Worker string `json:"worker"`
}

// LeaseResponse answers POST /lease. Lease is set only when Status is
// StatusLeased.
type LeaseResponse struct {
	Status LeaseStatus `json:"status"`
	Lease  *Lease      `json:"lease,omitempty"`
}

// CompleteRequest is the body of POST /complete.
type CompleteRequest struct {
	Campaign string           `json:"campaign"`
	Token    string           `json:"token"`
	Record   study.CellRecord `json:"record"`
}

// CompleteResponse answers POST /complete. Duplicate reports whether the
// cell was already complete (the submission was accepted and idempotent).
type CompleteResponse struct {
	Duplicate bool `json:"duplicate"`
}

// ReleaseRequest is the body of POST /release.
type ReleaseRequest struct {
	Campaign string `json:"campaign"`
	Token    string `json:"token"`
}

// FarmMetrics answers GET /metrics: the farm-wide cell-state aggregate
// plus, when the server runs with a telemetry collector, the collector's
// current sample (runtime numbers included) — so a scraper or the kill
// drill can see liveness and load in one round trip.
type FarmMetrics struct {
	Campaigns int `json:"campaigns"`
	Done      int `json:"done"`
	Leased    int `json:"leased"`
	Pending   int `json:"pending"`
	// Telemetry is the collector snapshot, absent when telemetry is off.
	Telemetry map[string]int64 `json:"telemetry,omitempty"`
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}

// Server exposes a Manager over HTTP.
type Server struct {
	m   *Manager
	log *log.Logger
	mux *http.ServeMux
}

// NewServer wires the manager's HTTP API. logger may be nil for a silent
// server (tests).
func NewServer(m *Manager, logger *log.Logger) *Server {
	s := &Server{m: m, log: logger}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleProgress)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleDelete)
	mux.HandleFunc("GET /campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /campaigns/{id}/metrics", s.handleCampaignMetrics)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /lease", s.handleLease)
	mux.HandleFunc("POST /complete", s.handleComplete)
	mux.HandleFunc("POST /release", s.handleRelease)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

// decodeJSON reads and decodes a bounded request body.
func decodeJSON(r *http.Request, into any) error {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return err
	}
	if len(data) > maxBodyBytes {
		return errors.New("request body too large")
	}
	return json.Unmarshal(data, into)
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sw study.Sweep
	if err := decodeJSON(r, &sw); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.m.Submit(sw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.logf("campaign %s submitted: %d cells (%d models × %d protocols, %d trials)",
		c.ID(), len(c.keys), len(sw.Models), len(sw.Protocols), sw.Trials)
	writeJSON(w, http.StatusCreated, SubmitResponse{ID: c.ID(), Cells: len(c.keys)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	resp := ListResponse{Campaigns: []Progress{}}
	for _, c := range s.m.Campaigns() {
		resp.Campaigns = append(resp.Campaigns, c.progress(s.m.now()))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	p, ok := s.m.Progress(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Delete(id); err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrUnknown):
			status = http.StatusNotFound
		case errors.Is(err, ErrBusy):
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	s.logf("campaign %s deleted", id)
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleCampaignMetrics(w http.ResponseWriter, r *http.Request) {
	mx, ok := s.m.Metrics(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, mx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	t := s.m.cellTotals()
	fm := FarmMetrics{
		Campaigns: len(s.m.Campaigns()),
		Done:      int(t.done),
		Leased:    int(t.leased),
		Pending:   int(t.pending),
	}
	if col := s.m.Telemetry(); col != nil {
		fm.Telemetry = col.Snapshot().Values
	}
	writeJSON(w, http.StatusOK, fm)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	c, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	rows := study.Report(c.records())
	format := r.URL.Query().Get("format")
	switch strings.ToLower(format) {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := study.WriteCSV(w, rows); err != nil {
			s.logf("campaign %s: writing csv report: %v", c.ID(), err)
		}
	case "", "md", "markdown":
		w.Header().Set("Content-Type", "text/markdown")
		if err := study.WriteMarkdown(w, rows); err != nil {
			s.logf("campaign %s: writing markdown report: %v", c.ID(), err)
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown report format %q (want csv or md)", format))
	}
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	l, status := s.m.Lease(req.Worker)
	resp := LeaseResponse{Status: status}
	if status == StatusLeased {
		resp.Lease = &l
		s.logf("campaign %s: leased %s to %q (ttl %dms)", l.Campaign, l.Cell.Key(), req.Worker, l.TTLMS)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fresh, err := s.m.Complete(req.Campaign, req.Token, req.Record)
	if err != nil {
		// A record failing validation is the client's fault (permanent);
		// a checkpoint write failing is ours (retryable) — the worker's
		// result is correct and not yet durable, so it must resubmit.
		status := http.StatusBadRequest
		if errors.Is(err, ErrInternal) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	if fresh {
		if p, ok := s.m.Progress(req.Campaign); ok {
			s.logf("campaign %s: completed %s (%d/%d done)", req.Campaign, req.Record.Key(), p.Done, p.Cells)
		}
	}
	writeJSON(w, http.StatusOK, CompleteResponse{Duplicate: !fresh})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.m.Release(req.Campaign, req.Token); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}
