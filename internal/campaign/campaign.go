// Package campaign turns the single-box sweep runner into a shared farm:
// a long-running server (cmd/sweepd) accepts whole study.Sweep grids over
// HTTP, decomposes them into their study.Key cells, and leases cells to
// remote workers (cmd/sweep -server). Completed cells stream into the same
// fsync'd JSONL checkpoint format cmd/sweep writes locally, so a campaign
// file is readable by `sweep -report-only` unchanged, and the live report
// endpoint renders the identical CSV/markdown tables.
//
// The design leans entirely on two properties the checkpoint layer already
// guarantees:
//
//   - Cell results are a pure function of the cell key (model, protocol,
//     trials, seed) plus the sweep-wide source/max_steps — independent of
//     which worker runs the cell, its Workers parallelism, and when.
//   - The checkpoint is idempotent with later-duplicate-wins semantics, so
//     a cell completed twice is harmless.
//
// Together they make worker failure handling trivial: a lease that expires
// is simply re-leased, and if the presumed-dead worker completes after
// all, its record is a byte-equal duplicate (modulo diagnostic wall_ms)
// that the checkpoint absorbs. There is no fencing, no worker registry,
// and no distributed state beyond the lease table in server memory — the
// JSONL file is the only source of truth, which is what makes the server
// itself crash-safe (reboot reloads the checkpoint and re-derives
// pending = grid − done).
package campaign

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/study"
)

// ErrInternal marks server-side failures (checkpoint I/O) as opposed to
// invalid client input; the HTTP layer maps it to a 5xx so workers retry
// instead of discarding their result.
var ErrInternal = errors.New("campaign: internal error")

// ErrUnknown marks a request naming a campaign the server does not have;
// the HTTP layer maps it to 404.
var ErrUnknown = errors.New("campaign: unknown campaign")

// ErrBusy marks a deletion refused because unexpired leases are out — a
// worker is (presumably) computing one of the campaign's cells. The HTTP
// layer maps it to 409; retry after the leases complete or expire.
var ErrBusy = errors.New("campaign: campaign has active leases")

// cellState is the lifecycle of one grid cell on the server.
type cellState uint8

const (
	cellPending cellState = iota // never leased, or lease expired/released
	cellLeased                   // leased to a worker, lease unexpired
	cellDone                     // a valid record is checkpointed
)

// Cell is the wire form of one leased work unit: everything a worker
// needs to execute the cell with study.Run. Model and Protocol are
// canonical spec strings (the same convention sweep files use).
type Cell struct {
	Model    string `json:"model"`
	Protocol string `json:"protocol"`
	Trials   int    `json:"trials"`
	Seed     uint64 `json:"seed"`
	Source   int    `json:"source"`
	MaxSteps int    `json:"max_steps,omitempty"`
}

// Key returns the checkpoint key of the cell.
func (c Cell) Key() study.Key {
	return study.Key{Model: c.Model, Protocol: c.Protocol, Trials: c.Trials, Seed: c.Seed}
}

// Lease is a granted work unit: the cell, the campaign it belongs to, an
// unguessable token the worker echoes on completion or release, and the
// lease duration. A worker that never completes simply lets the lease
// expire; the cell returns to pending and is re-leased.
type Lease struct {
	Campaign string `json:"campaign"`
	Token    string `json:"token"`
	Cell     Cell   `json:"cell"`
	// TTLMS is the lease duration in milliseconds; the worker should
	// finish (or re-lease) within it, but exceeding it is safe — a late
	// completion is still accepted, it just may duplicate work.
	TTLMS int64 `json:"ttl_ms"`
}

// lease is the server-side record of one outstanding lease.
type lease struct {
	token   string
	worker  string
	cell    int // index into the campaign's grid
	expires time.Time
}

// Progress is a point-in-time snapshot of a campaign, served by
// GET /campaigns/{id}.
type Progress struct {
	ID    string `json:"id"`
	Cells int    `json:"cells"`
	// Done, Leased, and Pending partition Cells.
	Done     int  `json:"done"`
	Leased   int  `json:"leased"`
	Pending  int  `json:"pending"`
	Complete bool `json:"complete"`
	// ElapsedSec is the wall time since submission (frozen at completion).
	ElapsedSec float64 `json:"elapsed_sec"`
	// CellsPerSec is observed campaign throughput: Done / ElapsedSec.
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
	// MeanWallMS is the mean per-cell compute time over done cells, from
	// the records' wall_ms field — the honest per-cell cost, independent
	// of farm idle time (records from old checkpoints without wall_ms
	// count as 0 and drag the mean down; they are rare and transitional).
	MeanWallMS float64 `json:"mean_wall_ms,omitempty"`
	// Workers are per-worker heartbeats (sorted by name), present once any
	// worker has leased from the campaign.
	Workers []WorkerProgress `json:"workers,omitempty"`
}

// WorkerProgress is the heartbeat the server keeps per worker name: when
// the worker last interacted with the campaign (lease, completion, or
// release), how many cell completions it posted, and its mean per-cell
// wall time. It is diagnostic bookkeeping, not scheduling state — the farm
// still has no worker registry; a worker that vanishes simply stops
// appearing fresh here while lease expiry recovers its cells.
type WorkerProgress struct {
	Worker string `json:"worker"`
	// LastSeenMS is the last interaction, as Unix milliseconds.
	LastSeenMS int64 `json:"last_seen_ms"`
	// Completed counts completion posts (including duplicates — the worker
	// did the work either way).
	Completed int `json:"completed"`
	// MeanWallMS is the mean wall_ms over this worker's completions.
	MeanWallMS float64 `json:"mean_wall_ms,omitempty"`
}

// workerStats is the mutable server-side form of WorkerProgress.
type workerStats struct {
	lastSeen  time.Time
	completed int
	wallMS    int64
}

// Metrics extends Progress with the campaign's lifetime event counters —
// the GET /campaigns/{id}/metrics payload. Counter semantics follow the
// telemetry "_total" convention: monotonic over the campaign's in-memory
// lifetime (reset by a server restart, like the lease table itself).
type Metrics struct {
	Progress
	LeasesTotal      int64 `json:"leases_total"`
	CompletionsTotal int64 `json:"completions_total"`
	DuplicatesTotal  int64 `json:"duplicates_total"`
	ReleasesTotal    int64 `json:"releases_total"`
	ExpiriesTotal    int64 `json:"expiries_total"`
}

// Campaign is one submitted sweep being executed by the farm. All methods
// are safe for concurrent use; the campaign's mutex also serializes
// checkpoint appends so records hit the file in acceptance order.
type Campaign struct {
	id    string
	sweep study.Sweep
	keys  []study.Key
	index map[study.Key]int

	mu       sync.Mutex
	state    []cellState
	leases   map[string]*lease // token -> lease (only current, unexpired-or-not-yet-swept)
	byCell   []string          // cell index -> current token ("" when none)
	done     map[study.Key]study.CellRecord
	ckpt     *os.File // nil when the manager is memory-only
	created  time.Time
	finished time.Time // zero until all cells are done
	doneWall int64     // sum of wall_ms over done cells (first completion per cell)

	// workers holds per-worker heartbeats; counters are the lifetime event
	// totals Metrics reports (in-memory only, like the lease table).
	workers     map[string]*workerStats
	leaseCount  int64
	completions int64
	duplicates  int64
	releases    int64
	expiries    int64
}

// newCampaign builds the in-memory state for a submitted sweep, marking
// the cells already present in done (a reloaded checkpoint) complete.
// ckpt, when non-nil, is an append-positioned checkpoint file the campaign
// takes ownership of.
func newCampaign(id string, sw study.Sweep, done map[study.Key]study.CellRecord, ckpt *os.File, now time.Time) *Campaign {
	keys := sw.Keys()
	c := &Campaign{
		id:      id,
		sweep:   sw,
		keys:    keys,
		index:   make(map[study.Key]int, len(keys)),
		state:   make([]cellState, len(keys)),
		leases:  make(map[string]*lease),
		byCell:  make([]string, len(keys)),
		done:    make(map[study.Key]study.CellRecord, len(keys)),
		ckpt:    ckpt,
		created: now,
		workers: make(map[string]*workerStats),
	}
	for i, k := range keys {
		c.index[k] = i
	}
	for k, rec := range done {
		i, ok := c.index[k]
		if !ok {
			continue // a stale record from an edited sweep: ignored, not served
		}
		c.state[i] = cellDone
		c.done[k] = rec
		c.doneWall += rec.WallMS
	}
	if c.doneCountLocked() == len(keys) {
		c.finished = now
	}
	return c
}

// ID returns the campaign's identifier.
func (c *Campaign) ID() string { return c.id }

// Sweep returns the campaign's sweep definition.
func (c *Campaign) Sweep() study.Sweep { return c.sweep }

// cellPayload renders grid cell i as a wire Cell.
func (c *Campaign) cellPayload(i int) Cell {
	k := c.keys[i]
	return Cell{
		Model:    k.Model,
		Protocol: k.Protocol,
		Trials:   k.Trials,
		Seed:     k.Seed,
		Source:   c.sweep.Source,
		MaxSteps: c.sweep.MaxSteps,
	}
}

// expireLocked returns every cell whose lease has lapsed to pending.
func (c *Campaign) expireLocked(now time.Time) {
	for token, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, token)
		c.expiries++
		if c.byCell[l.cell] == token {
			c.byCell[l.cell] = ""
			if c.state[l.cell] == cellLeased {
				c.state[l.cell] = cellPending
			}
		}
	}
}

// touchWorkerLocked updates the worker's heartbeat ("" names no worker —
// e.g. a completion whose lease already expired and whose request did not
// carry a name).
func (c *Campaign) touchWorkerLocked(worker string, now time.Time) *workerStats {
	if worker == "" {
		return nil
	}
	ws, ok := c.workers[worker]
	if !ok {
		ws = &workerStats{}
		c.workers[worker] = ws
	}
	ws.lastSeen = now
	return ws
}

// doneCountLocked counts completed cells.
func (c *Campaign) doneCountLocked() int {
	n := 0
	for _, s := range c.state {
		if s == cellDone {
			n++
		}
	}
	return n
}

// lease grants the first pending cell (grid order) to worker for ttl,
// expiring lapsed leases first. ok is false when no cell is pending —
// which means either the campaign is complete or every remaining cell is
// out on an unexpired lease.
func (c *Campaign) lease(worker string, ttl time.Duration, now time.Time) (Lease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	for i, s := range c.state {
		if s != cellPending {
			continue
		}
		token := newToken()
		c.state[i] = cellLeased
		c.byCell[i] = token
		c.leases[token] = &lease{token: token, worker: worker, cell: i, expires: now.Add(ttl)}
		c.leaseCount++
		c.touchWorkerLocked(worker, now)
		return Lease{
			Campaign: c.id,
			Token:    token,
			Cell:     c.cellPayload(i),
			TTLMS:    ttl.Milliseconds(),
		}, true
	}
	return Lease{}, false
}

// complete accepts a worker's finished record. The token identifies the
// lease being fulfilled but is deliberately NOT required to be current:
// a worker whose lease expired (or was never granted — a resubmitted
// duplicate) still carries a correct result, because cell results are a
// pure function of the key. Validation therefore gates on the record, not
// the token. Returns whether the record was fresh (first completion of
// its cell); duplicates are accepted and idempotent.
func (c *Campaign) complete(token string, rec study.CellRecord, now time.Time) (fresh bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.sweep.CheckRecord(rec); err != nil {
		return false, err
	}
	key := rec.Key()
	i := c.index[key] // CheckRecord proved membership
	// Attribute the completion before the lease disappears: a stale token
	// (expired, or a resubmitted duplicate) no longer names a worker, so
	// the completion still counts but credits no heartbeat.
	var worker string
	if l, ok := c.leases[token]; ok {
		worker = l.worker
	}
	// Whatever lease is out on this cell — this worker's, or a re-lease
	// granted after this worker was presumed dead — the cell is done now.
	if cur := c.byCell[i]; cur != "" {
		delete(c.leases, cur)
		c.byCell[i] = ""
	}
	delete(c.leases, token)
	fresh = c.state[i] != cellDone
	if fresh {
		// Only the first completion counts toward doneWall so MeanWallMS
		// reflects per-cell cost, not duplicated work.
		c.doneWall += rec.WallMS
	} else {
		c.duplicates++
	}
	c.completions++
	if ws := c.touchWorkerLocked(worker, now); ws != nil {
		ws.completed++
		ws.wallMS += rec.WallMS
	}
	c.state[i] = cellDone
	c.done[key] = rec // later duplicate wins, matching checkpoint replay
	if err := c.appendLocked(rec); err != nil {
		return fresh, err
	}
	if c.finished.IsZero() && c.doneCountLocked() == len(c.keys) {
		c.finished = now
	}
	return fresh, nil
}

// appendLocked streams a record to the campaign checkpoint and fsyncs it,
// exactly as the local sweep runner does — the record must be durable
// before the completion is acknowledged.
func (c *Campaign) appendLocked(rec study.CellRecord) error {
	if c.ckpt == nil {
		return nil
	}
	if err := study.WriteCheckpoint(c.ckpt, rec); err != nil {
		return fmt.Errorf("%w: %v", ErrInternal, err)
	}
	if err := c.ckpt.Sync(); err != nil {
		return fmt.Errorf("%w: campaign %s: fsync checkpoint: %v", ErrInternal, c.id, err)
	}
	return nil
}

// release returns a leased cell to pending. Only the current lease holder
// can release (a stale token is a no-op): release exists for graceful
// worker shutdown, and a dead worker's stale token must not yank a cell
// from the worker it was re-leased to.
func (c *Campaign) release(token string, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	l, ok := c.leases[token]
	if !ok {
		return false
	}
	delete(c.leases, token)
	c.releases++
	c.touchWorkerLocked(l.worker, now)
	if c.byCell[l.cell] == token {
		c.byCell[l.cell] = ""
		if c.state[l.cell] == cellLeased {
			c.state[l.cell] = cellPending
		}
	}
	return true
}

// progress snapshots the campaign.
func (c *Campaign) progress(now time.Time) Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.progressLocked(now)
}

func (c *Campaign) progressLocked(now time.Time) Progress {
	c.expireLocked(now)
	p := Progress{ID: c.id, Cells: len(c.keys)}
	for _, s := range c.state {
		switch s {
		case cellDone:
			p.Done++
		case cellLeased:
			p.Leased++
		default:
			p.Pending++
		}
	}
	p.Complete = p.Done == p.Cells
	end := now
	if p.Complete && !c.finished.IsZero() {
		end = c.finished
	}
	p.ElapsedSec = end.Sub(c.created).Seconds()
	if p.ElapsedSec > 0 {
		p.CellsPerSec = float64(p.Done) / p.ElapsedSec
	}
	if p.Done > 0 {
		p.MeanWallMS = float64(c.doneWall) / float64(p.Done)
	}
	if len(c.workers) > 0 {
		p.Workers = make([]WorkerProgress, 0, len(c.workers))
		for name, ws := range c.workers {
			wp := WorkerProgress{
				Worker:     name,
				LastSeenMS: ws.lastSeen.UnixMilli(),
				Completed:  ws.completed,
			}
			if ws.completed > 0 {
				wp.MeanWallMS = float64(ws.wallMS) / float64(ws.completed)
			}
			p.Workers = append(p.Workers, wp)
		}
		sort.Slice(p.Workers, func(i, j int) bool { return p.Workers[i].Worker < p.Workers[j].Worker })
	}
	return p
}

// metrics snapshots the campaign's progress plus lifetime event counters.
func (c *Campaign) metrics(now time.Time) Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metrics{
		Progress:         c.progressLocked(now),
		LeasesTotal:      c.leaseCount,
		CompletionsTotal: c.completions,
		DuplicatesTotal:  c.duplicates,
		ReleasesTotal:    c.releases,
		ExpiriesTotal:    c.expiries,
	}
}

// activeLeases counts unexpired leases — the guard Delete checks so a
// campaign is never yanked out from under a working worker.
func (c *Campaign) activeLeases(now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	return len(c.leases)
}

// meanWallMS returns the observed mean per-cell wall time, 0 when no cell
// has completed yet. The manager uses it to scale lease TTLs to the
// campaign's actual cell cost.
func (c *Campaign) meanWallMS() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := c.doneCountLocked()
	if done == 0 {
		return 0
	}
	return float64(c.doneWall) / float64(done)
}

// records returns the completed cells' records in grid order — the input
// the report layer aggregates. For a complete campaign this is the full
// grid, and the rendered report is byte-identical to a local cmd/sweep
// run of the same sweep.
func (c *Campaign) records() []study.CellRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs := make([]study.CellRecord, 0, len(c.done))
	for _, k := range c.keys {
		if rec, ok := c.done[k]; ok {
			recs = append(recs, rec)
		}
	}
	return recs
}

// close releases the campaign's checkpoint file handle.
func (c *Campaign) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ckpt == nil {
		return nil
	}
	err := c.ckpt.Close()
	c.ckpt = nil
	return err
}

// newToken returns an unguessable lease token. Tokens are capability
// handles, not security boundaries — the farm trusts its workers — but
// unguessability keeps a confused worker from fulfilling someone else's
// lease by accident.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("campaign: reading random token: %v", err))
	}
	return hex.EncodeToString(b[:])
}
