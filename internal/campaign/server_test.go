package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/spec"
	"repro/internal/study"
	"repro/internal/telemetry"
)

func farmSweep() study.Sweep {
	return study.Sweep{
		Models: []spec.Spec{
			model.New("edgemeg").WithInt("n", 48).WithFloat("p", 0.04).WithFloat("q", 0.26),
			model.New("static").With("topology", "torus").WithInt("m", 6),
		},
		Protocols: []spec.Spec{
			protocol.New("flood"),
			protocol.New("push").WithInt("k", 2),
			protocol.New("pushpull").WithInt("k", 1),
		},
		Trials:   4,
		Seed:     5,
		MaxSteps: 1 << 13,
	}
}

// startServer boots a manager + HTTP server for tests. ttl is the real
// lease TTL — keep it short so expiry is testable.
func startServer(t *testing.T, dir string, ttl time.Duration) (*httptest.Server, *campaign.Manager) {
	t.Helper()
	mgr, err := campaign.NewManager(campaign.Options{Dir: dir, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(campaign.NewServer(mgr, nil))
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv, mgr
}

// offlineReports runs the sweep locally — the single-process cmd/sweep
// path — and renders both report forms.
func offlineReports(t *testing.T, sw study.Sweep) (csv, md string) {
	t.Helper()
	records, err := study.RunSweep(sw, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := study.Report(records)
	var csvBuf, mdBuf bytes.Buffer
	if err := study.WriteCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	if err := study.WriteMarkdown(&mdBuf, rows); err != nil {
		t.Fatal(err)
	}
	return csvBuf.String(), mdBuf.String()
}

// TestFarmEndToEnd is the acceptance test of the subsystem: a campaign
// executed by two concurrent workers over real HTTP, with a third worker
// dying mid-cell (lease acquired, never completed) so its cell must
// travel the expiry → re-lease path, produces CSV and markdown reports
// byte-identical to the same sweep run offline by the single-process
// runner — and the server's on-disk checkpoint is a plain sweep
// checkpoint readable by the -report-only path.
func TestFarmEndToEnd(t *testing.T) {
	dir := t.TempDir()
	const ttl = 200 * time.Millisecond
	srv, _ := startServer(t, dir, ttl)
	cl := &campaign.Client{Base: srv.URL}
	ctx := context.Background()

	sw := farmSweep()
	id, cells, err := cl.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sw.Keys()); cells != want {
		t.Fatalf("submitted %d cells, want %d", cells, want)
	}

	// The dying worker: leases a cell over HTTP and is never heard from
	// again — exactly what kill -9 mid-cell looks like to the server.
	dead, status, err := cl.Lease(ctx, "doomed")
	if err != nil || status != campaign.StatusLeased {
		t.Fatalf("doomed lease: %v %q", err, status)
	}

	// Two live workers drain the farm concurrently. Their polls must
	// outlive the dead worker's lease TTL, which they do by retrying.
	var wg sync.WaitGroup
	results := make([]struct {
		completed int
		err       error
	}, 2)
	for w := range results {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w].completed, results[w].err = campaign.Work(ctx, cl, campaign.WorkerOpts{
				Name:    []string{"alpha", "beta"}[w],
				Workers: 1,
				Poll:    20 * time.Millisecond,
				Drain:   true,
			})
		}(w)
	}
	wg.Wait()
	for w, r := range results {
		if r.err != nil {
			t.Fatalf("worker %d: %v", w, r.err)
		}
	}
	if got := results[0].completed + results[1].completed; got != cells {
		t.Fatalf("workers completed %d cells, want %d (every cell exactly once, incl. the re-leased one)", got, cells)
	}

	p, err := cl.Progress(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Complete || p.Done != cells || p.Leased != 0 || p.Pending != 0 {
		t.Fatalf("final progress = %+v", p)
	}
	if p.MeanWallMS < 0 {
		t.Fatalf("mean wall ms = %v", p.MeanWallMS)
	}

	// Byte-identical reports vs the offline single-process run.
	wantCSV, wantMD := offlineReports(t, sw)
	gotCSV, err := cl.Report(ctx, id, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCSV) != wantCSV {
		t.Fatalf("farm CSV differs from offline run:\n%s\nvs\n%s", gotCSV, wantCSV)
	}
	gotMD, err := cl.Report(ctx, id, "md")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotMD) != wantMD {
		t.Fatalf("farm markdown differs from offline run:\n%s\nvs\n%s", gotMD, wantMD)
	}

	// The dead worker rises and posts its stale completion: accepted,
	// flagged duplicate, and the report is unchanged.
	lateRec, err := study.RunSweep(study.Sweep{
		Models:    sw.Models[:1],
		Protocols: sw.Protocols[:1],
		Trials:    sw.Trials,
		Seed:      sw.Seed,
		MaxSteps:  sw.MaxSteps,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lateRec[0].Key() != dead.Cell.Key() {
		t.Fatalf("test setup: dead cell %s is not the first grid cell %s", dead.Cell.Key(), lateRec[0].Key())
	}
	dup, err := cl.Complete(ctx, dead.Campaign, dead.Token, lateRec[0])
	if err != nil {
		t.Fatalf("late duplicate completion rejected: %v", err)
	}
	if !dup {
		t.Fatal("late completion not flagged duplicate")
	}
	gotCSV2, err := cl.Report(ctx, id, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCSV2) != wantCSV {
		t.Fatalf("duplicate completion changed the report:\n%s\nvs\n%s", gotCSV2, wantCSV)
	}

	// The campaign checkpoint on disk is an ordinary sweep checkpoint:
	// -report-only aggregation over it reproduces the same CSV.
	ckpt := filepath.Join(dir, id+".ckpt.jsonl")
	done, err := study.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var recs []study.CellRecord
	for _, rec := range done {
		recs = append(recs, rec)
	}
	var b strings.Builder
	if err := study.WriteCSV(&b, study.Report(recs)); err != nil {
		t.Fatal(err)
	}
	if b.String() != wantCSV {
		t.Fatalf("checkpoint-file aggregation differs:\n%s\nvs\n%s", b.String(), wantCSV)
	}
}

// TestWorkerGracefulRelease: a worker cancelled while holding an
// unstarted lease hands the cell back immediately instead of letting the
// TTL run out.
func TestWorkerGracefulRelease(t *testing.T) {
	srv, mgr := startServer(t, "", time.Hour) // TTL so long expiry can't mask release
	cl := &campaign.Client{Base: srv.URL}
	if _, _, err := cl.Submit(context.Background(), farmSweep()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	donec := make(chan error, 1)
	go func() {
		_, err := campaign.Work(ctx, cl, campaign.WorkerOpts{
			Name: "held",
			Hold: time.Hour, // parks between lease and run until cancelled
		})
		donec <- err
	}()
	// Wait until the worker holds its lease, then shut it down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, _ := mgr.Progress("c0")
		if p.Leased == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never leased")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-donec; err != nil {
		t.Fatal(err)
	}
	p, _ := mgr.Progress("c0")
	if p.Leased != 0 || p.Done != 0 {
		t.Fatalf("cancelled worker did not release: %+v", p)
	}
}

// TestServerRejects covers the HTTP error surface.
func TestServerRejects(t *testing.T) {
	srv, _ := startServer(t, "", time.Minute)
	post := func(path, body string) (int, string) {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e.Error
	}

	if code, _ := post("/campaigns", `{"models":[],"protocols":["flood"],"trials":3}`); code != http.StatusBadRequest {
		t.Fatalf("empty sweep: %d", code)
	}
	if code, _ := post("/campaigns", `not json`); code != http.StatusBadRequest {
		t.Fatalf("bad json: %d", code)
	}
	if code, _ := post("/complete", `{"campaign":"nope","token":"t","record":{}}`); code != http.StatusBadRequest {
		t.Fatalf("unknown campaign complete: %d", code)
	}
	if code, _ := post("/release", `{"campaign":"nope","token":"t"}`); code != http.StatusNotFound {
		t.Fatalf("unknown campaign release: %d", code)
	}
	resp, err := http.Get(srv.URL + "/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign progress: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/campaigns/nope/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign report: %d", resp.StatusCode)
	}

	// A submitted campaign with a bad report format.
	if code, _ := post("/campaigns", `{"models":["edgemeg:n=32,p=0.05,q=0.3"],"protocols":["flood"],"trials":2,"seed":1}`); code != http.StatusCreated {
		t.Fatalf("valid submit: %d", code)
	}
	resp, err = http.Get(srv.URL + "/campaigns/c0/report?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad report format: %d", resp.StatusCode)
	}
}

// TestDeleteAndMetricsHTTP exercises the new endpoints over real HTTP:
// DELETE /campaigns/{id} (409 while leased, 200 when idle, 404 after),
// GET /campaigns/{id}/metrics, and GET /metrics with a telemetry
// collector wired into the manager.
func TestDeleteAndMetricsHTTP(t *testing.T) {
	dir := t.TempDir()
	col := telemetry.New(telemetry.Options{})
	mgr, err := campaign.NewManager(campaign.Options{Dir: dir, LeaseTTL: time.Minute, Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(campaign.NewServer(mgr, nil))
	defer func() {
		srv.Close()
		mgr.Close()
	}()
	cl := &campaign.Client{Base: srv.URL, Retries: 2, Backoff: 10 * time.Millisecond}
	ctx := context.Background()

	sw := farmSweep()
	id, _, err := cl.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	l, status, err := cl.Lease(ctx, "worker-a")
	if err != nil || status != campaign.StatusLeased {
		t.Fatalf("lease: %v %q", err, status)
	}
	// The first lease is the first grid cell; compute its record offline.
	recs, err := study.RunSweep(study.Sweep{
		Models:    sw.Models[:1],
		Protocols: sw.Protocols[:1],
		Trials:    sw.Trials,
		Seed:      sw.Seed,
		MaxSteps:  sw.MaxSteps,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Key() != l.Cell.Key() {
		t.Fatalf("test setup: leased cell %s is not the first grid cell", l.Cell.Key())
	}
	if _, err := cl.Complete(ctx, id, l.Token, recs[0]); err != nil {
		t.Fatal(err)
	}

	// Heartbeat surfaces in GET /campaigns/{id}.
	p, err := cl.Progress(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Workers) != 1 || p.Workers[0].Worker != "worker-a" ||
		p.Workers[0].Completed != 1 || p.Workers[0].LastSeenMS == 0 {
		t.Fatalf("progress workers = %+v", p.Workers)
	}

	// Campaign metrics counters over HTTP.
	mx, err := cl.Metrics(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if mx.LeasesTotal != 1 || mx.CompletionsTotal != 1 || mx.Done != 1 {
		t.Fatalf("campaign metrics = %+v", mx)
	}

	// Farm-wide metrics include the collector snapshot (runtime rows).
	fm, err := cl.FarmMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Campaigns != 1 || fm.Done != 1 {
		t.Fatalf("farm metrics = %+v", fm)
	}
	if fm.Telemetry["heap_bytes"] <= 0 || fm.Telemetry["campaigns"] != 1 {
		t.Fatalf("farm telemetry snapshot = %v", fm.Telemetry)
	}

	// Delete refuses while a lease is out (409 = permanent, no retry).
	l2, status, err := cl.Lease(ctx, "worker-b")
	if err != nil || status != campaign.StatusLeased {
		t.Fatalf("second lease: %v %q", err, status)
	}
	if err := cl.Delete(ctx, id); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("delete while leased: %v, want 409", err)
	}
	if err := cl.Release(ctx, id, l2.Token); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(ctx, id); err != nil {
		t.Fatalf("delete idle: %v", err)
	}
	if _, err := cl.Progress(ctx, id); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("progress after delete: %v, want 404", err)
	}
	if err := cl.Delete(ctx, id); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("double delete: %v, want 404", err)
	}
	for _, name := range []string{id + ".sweep.json", id + ".ckpt.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s survived deletion (err=%v)", name, err)
		}
	}
}
