package campaign

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/spec"
	"repro/internal/study"
	"repro/internal/telemetry"
)

// WorkerOpts configures one worker process's lease loop.
type WorkerOpts struct {
	// Name identifies the worker to the server (logs only).
	Name string
	// Workers is the per-cell trial parallelism handed to study.Run
	// (0 = GOMAXPROCS). It affects wall-clock only, never results.
	Workers int
	// Poll is the idle re-poll interval when the server has no pending
	// cell (default 2s).
	Poll time.Duration
	// Drain makes the loop exit cleanly once the server reports every
	// campaign complete; without it the worker polls forever, waiting for
	// future submissions (the long-lived farm deployment mode).
	Drain bool
	// Hold injects a pause between leasing a cell and running it — a
	// fault-injection aid: killing the worker inside the hold window is a
	// deterministic "died mid-cell" for lease-expiry tests. Zero in
	// production.
	Hold time.Duration
	// Log receives progress lines; nil silences the worker.
	Log *log.Logger
	// Telemetry, when non-nil, receives worker-side counters
	// (worker_cells_total, worker_duplicates_total,
	// worker_cell_wall_ms_total, worker_idle_polls_total) plus one sample
	// per completed cell, so a worker's capture shows throughput even when
	// cells outlast the ticker interval.
	Telemetry *telemetry.Collector
}

func (o WorkerOpts) poll() time.Duration {
	if o.Poll > 0 {
		return o.Poll
	}
	return 2 * time.Second
}

func (o WorkerOpts) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log.Printf(format, args...)
	}
}

// Work runs the worker loop: lease a cell, execute it with study.Run,
// post the record, repeat. It returns the number of cells completed.
//
// Shutdown semantics: when ctx is cancelled while a cell is in flight the
// cell is finished and completed first (study.Run is not preemptible, and
// a computed result should never be discarded); when cancelled while
// holding an unstarted lease, the lease is released so another worker can
// take the cell immediately instead of waiting out the TTL; when
// cancelled while idle, the loop returns at once. A worker that dies
// without any of this — kill -9, OOM, power loss — is handled entirely by
// lease expiry on the server.
//
// Every trial a worker runs reuses its per-worker flood.Scratch through
// study.Run's pool, so farm workers get the same zero-allocation warm
// path as local sweeps.
func Work(ctx context.Context, cl *Client, opts WorkerOpts) (completed int, err error) {
	var cellsDone, dupes, wallMS, idlePolls *telemetry.Counter
	if opts.Telemetry != nil {
		cellsDone = opts.Telemetry.Counter("worker_cells_total")
		dupes = opts.Telemetry.Counter("worker_duplicates_total")
		wallMS = opts.Telemetry.Counter("worker_cell_wall_ms_total")
		idlePolls = opts.Telemetry.Counter("worker_idle_polls_total")
		opts.Telemetry.Gauge("scratch_bytes", study.ScratchHighWater)
	}
	for {
		if ctx.Err() != nil {
			return completed, nil
		}
		l, status, err := cl.Lease(ctx, opts.Name)
		if err != nil {
			if ctx.Err() != nil {
				return completed, nil
			}
			return completed, err
		}
		switch status {
		case StatusLeased:
			// fall through to execution below
		case StatusDrained:
			if opts.Drain {
				opts.logf("worker %s: all campaigns complete, draining", opts.Name)
				return completed, nil
			}
			fallthrough
		case StatusIdle:
			if idlePolls != nil {
				idlePolls.Add(1)
			}
			select {
			case <-ctx.Done():
				return completed, nil
			case <-time.After(opts.poll()):
			}
			continue
		default:
			return completed, fmt.Errorf("campaign: server returned unknown lease status %q", status)
		}

		if opts.Hold > 0 {
			select {
			case <-ctx.Done():
				// Cancelled before starting: hand the cell back rather
				// than making the farm wait out the lease TTL. Release is
				// best-effort — expiry covers a failed call.
				releaseCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_ = cl.Release(releaseCtx, l.Campaign, l.Token)
				cancel()
				opts.logf("worker %s: released %s on shutdown", opts.Name, l.Cell.Key())
				return completed, nil
			case <-time.After(opts.Hold):
			}
		}

		rec, err := runCell(l.Cell, opts.Workers)
		if err != nil {
			// The cell itself is unrunnable by this worker (e.g. version
			// skew in registered model names). Release and stop — retrying
			// locally would spin.
			_ = cl.Release(ctx, l.Campaign, l.Token)
			return completed, fmt.Errorf("campaign: running cell %s: %w", l.Cell.Key(), err)
		}
		// Completion must survive a mid-shutdown signal: the result is
		// computed, so push it even when ctx is already cancelled (with a
		// bounded context so a dead server can't hang shutdown).
		compCtx := ctx
		if ctx.Err() != nil {
			var cancel context.CancelFunc
			compCtx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
		}
		duplicate, err := cl.Complete(compCtx, l.Campaign, l.Token, rec)
		if err != nil {
			return completed, fmt.Errorf("campaign: completing cell %s: %w", l.Cell.Key(), err)
		}
		completed++
		if opts.Telemetry != nil {
			cellsDone.Add(1)
			wallMS.Add(rec.WallMS)
			if duplicate {
				dupes.Add(1)
			}
			opts.Telemetry.SampleNow()
		}
		dup := ""
		if duplicate {
			dup = " (duplicate)"
		}
		opts.logf("worker %s: completed %s in %dms%s", opts.Name, l.Cell.Key(), rec.WallMS, dup)
	}
}

// runCell executes one leased cell exactly as the local sweep runner
// would, stamping the record's wall_ms.
func runCell(cell Cell, workers int) (study.CellRecord, error) {
	ms, err := spec.Parse(cell.Model)
	if err != nil {
		return study.CellRecord{}, err
	}
	ps, err := spec.Parse(cell.Protocol)
	if err != nil {
		return study.CellRecord{}, err
	}
	s := study.Study{
		Model:    ms,
		Protocol: ps,
		Source:   cell.Source,
		Trials:   cell.Trials,
		Seed:     cell.Seed,
		Workers:  workers,
		MaxSteps: cell.MaxSteps,
	}
	start := time.Now()
	c, err := study.Run(s)
	if err != nil {
		return study.CellRecord{}, err
	}
	rec := study.Record(s, c)
	rec.WallMS = time.Since(start).Milliseconds()
	return rec, nil
}
