package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/study"
	"repro/internal/telemetry"
)

// DefaultLeaseTTL is the floor lease duration when the server is not
// configured otherwise. Leases additionally stretch with the observed
// per-cell wall time (see Options.LeaseTTL), so the default only needs to
// cover cheap cells plus network slack.
const DefaultLeaseTTL = 2 * time.Minute

// leaseWallFactor scales the observed mean per-cell wall time into a
// lease TTL: a worker is presumed dead only after several multiples of
// the time cells actually take, so slow grids do not thrash with spurious
// expiry while fast grids still recover from dead workers quickly.
const leaseWallFactor = 8

// LeaseStatus reports what a lease request yielded.
type LeaseStatus string

const (
	// StatusLeased: a cell was granted.
	StatusLeased LeaseStatus = "leased"
	// StatusIdle: no cell is pending right now, but unexpired leases are
	// outstanding (work may reappear if one expires) or campaigns may
	// still arrive. Workers should poll again.
	StatusIdle LeaseStatus = "idle"
	// StatusDrained: every cell of every campaign is done. Workers
	// running with -drain exit on this.
	StatusDrained LeaseStatus = "drained"
)

// Options configures a Manager.
type Options struct {
	// Dir is the state directory: each campaign persists a sweep
	// definition (<id>.sweep.json) and its checkpoint (<id>.ckpt.jsonl)
	// there, and a restarted manager reloads both, so a server crash
	// costs only the cells that were in flight. Empty means memory-only.
	Dir string
	// LeaseTTL is the floor lease duration (DefaultLeaseTTL when 0). The
	// effective TTL per campaign is max(LeaseTTL, leaseWallFactor × mean
	// observed cell wall time), so TTLs adapt to the grid's actual cost.
	LeaseTTL time.Duration
	// Now overrides the clock, for tests. Defaults to time.Now.
	Now func() time.Time
	// Telemetry, when non-nil, gains farm-wide gauges (campaigns,
	// farm_cells_done, farm_cells_leased, farm_cells_pending) that the
	// collector's ticker samples by walking the campaign table — entirely
	// off the request path.
	Telemetry *telemetry.Collector
}

// Manager owns every campaign on the server: submission, persistence,
// lease scheduling across campaigns, and completion routing. All methods
// are safe for concurrent use.
type Manager struct {
	dir string
	ttl time.Duration
	now func() time.Time

	telemetry *telemetry.Collector

	mu        sync.RWMutex
	campaigns map[string]*Campaign
	order     []string // submission order: oldest campaign leases first
	seq       int
}

// NewManager creates a manager, reloading any campaigns persisted in
// opts.Dir (creating the directory when missing).
func NewManager(opts Options) (*Manager, error) {
	m := &Manager{
		dir:       opts.Dir,
		ttl:       opts.LeaseTTL,
		now:       opts.Now,
		telemetry: opts.Telemetry,
		campaigns: make(map[string]*Campaign),
	}
	if m.ttl <= 0 {
		m.ttl = DefaultLeaseTTL
	}
	if m.now == nil {
		m.now = time.Now
	}
	if m.dir != "" {
		if err := os.MkdirAll(m.dir, 0o755); err != nil {
			return nil, err
		}
		if err := m.reload(); err != nil {
			return nil, err
		}
	}
	if m.telemetry != nil {
		m.telemetry.Gauge("campaigns", func() int64 {
			m.mu.RLock()
			defer m.mu.RUnlock()
			return int64(len(m.campaigns))
		})
		m.telemetry.Gauge("farm_cells_done", func() int64 { return m.cellTotals().done })
		m.telemetry.Gauge("farm_cells_leased", func() int64 { return m.cellTotals().leased })
		m.telemetry.Gauge("farm_cells_pending", func() int64 { return m.cellTotals().pending })
	}
	return m, nil
}

// cellTotals sums the cell-state partition over every campaign — the
// farm-wide gauge source and the GET /metrics aggregate.
func (m *Manager) cellTotals() (t struct{ done, leased, pending int64 }) {
	now := m.now()
	for _, c := range m.Campaigns() {
		p := c.progress(now)
		t.done += int64(p.Done)
		t.leased += int64(p.Leased)
		t.pending += int64(p.Pending)
	}
	return t
}

// reload restores persisted campaigns: for every <id>.sweep.json the
// checkpoint is reopened (kill-severed tails healed by OpenCheckpoint)
// and done cells are re-derived from it. Lease state is deliberately not
// persisted — leases are short-lived by construction, and re-leasing a
// cell that was in flight during the crash is exactly the expiry path.
func (m *Manager) reload() error {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".sweep.json"); ok {
			ids = append(ids, name)
		}
	}
	// Submission order is encoded in the numeric id suffix ("c12").
	sort.Slice(ids, func(i, j int) bool { return idSeq(ids[i]) < idSeq(ids[j]) })
	for _, id := range ids {
		data, err := os.ReadFile(filepath.Join(m.dir, id+".sweep.json"))
		if err != nil {
			return err
		}
		sw, err := study.ParseSweep(data)
		if err != nil {
			return fmt.Errorf("campaign %s: %w", id, err)
		}
		ckpt, done, err := study.OpenCheckpoint(m.checkpointPath(id))
		if err != nil {
			return fmt.Errorf("campaign %s: %w", id, err)
		}
		m.campaigns[id] = newCampaign(id, sw, done, ckpt, m.now())
		m.order = append(m.order, id)
		if s := idSeq(id); s >= m.seq {
			m.seq = s + 1
		}
	}
	return nil
}

// idSeq extracts the numeric suffix of a campaign id ("c12" -> 12), -1
// for foreign names.
func idSeq(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "c"))
	if err != nil || !strings.HasPrefix(id, "c") {
		return -1
	}
	return n
}

// checkpointPath returns the campaign's checkpoint file path — the
// ordinary sweep checkpoint format, directly usable by
// `sweep -report-only -checkpoint <path>`.
func (m *Manager) checkpointPath(id string) string {
	return filepath.Join(m.dir, id+".ckpt.jsonl")
}

// Submit validates and registers a sweep as a new campaign, persisting
// its definition and opening its checkpoint when the manager has a state
// directory. Submitting is idempotent in effect, not identity: the same
// sweep submitted twice is two campaigns, but their cells produce
// identical records.
func (m *Manager) Submit(sw study.Sweep) (*Campaign, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := "c" + strconv.Itoa(m.seq)
	var ckpt *os.File
	done := map[study.Key]study.CellRecord{}
	if m.dir != "" {
		data, err := json.Marshal(sw)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(m.dir, id+".sweep.json"), data, 0o644); err != nil {
			return nil, err
		}
		ckpt, done, err = study.OpenCheckpoint(m.checkpointPath(id))
		if err != nil {
			return nil, err
		}
	}
	m.seq++
	c := newCampaign(id, sw, done, ckpt, m.now())
	m.campaigns[id] = c
	m.order = append(m.order, id)
	return c, nil
}

// Get returns a campaign by id.
func (m *Manager) Get(id string) (*Campaign, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.campaigns[id]
	return c, ok
}

// Campaigns returns every campaign in submission order.
func (m *Manager) Campaigns() []*Campaign {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Campaign, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.campaigns[id])
	}
	return out
}

// Lease grants the next pending cell to worker, scanning campaigns in
// submission order (oldest first — campaigns complete in FIFO order
// rather than interleaving, so early submitters get reports soonest).
// When nothing is pending the status distinguishes "poll again" (leases
// outstanding, or no campaigns yet) from "everything is done".
func (m *Manager) Lease(worker string) (Lease, LeaseStatus) {
	now := m.now()
	allDone := true
	for _, c := range m.Campaigns() {
		ttl := m.leaseTTLFor(c)
		if l, ok := c.lease(worker, ttl, now); ok {
			return l, StatusLeased
		}
		if !c.progress(now).Complete {
			allDone = false
		}
	}
	if allDone && len(m.Campaigns()) > 0 {
		return Lease{}, StatusDrained
	}
	return Lease{}, StatusIdle
}

// leaseTTLFor computes the campaign's effective lease TTL: the configured
// floor, stretched to leaseWallFactor× the observed mean cell wall time
// once completions exist (wall_ms is what makes this honest — see
// study.CellRecord.WallMS).
func (m *Manager) leaseTTLFor(c *Campaign) time.Duration {
	ttl := m.ttl
	if mean := c.meanWallMS(); mean > 0 {
		adaptive := time.Duration(mean*leaseWallFactor) * time.Millisecond
		if adaptive > ttl {
			ttl = adaptive
		}
	}
	return ttl
}

// Complete routes a worker's finished record to its campaign. fresh
// reports whether this was the first completion of the cell; duplicates
// are accepted and idempotent by design.
func (m *Manager) Complete(campaignID, token string, rec study.CellRecord) (fresh bool, err error) {
	c, ok := m.Get(campaignID)
	if !ok {
		return false, fmt.Errorf("campaign: unknown campaign %q", campaignID)
	}
	return c.complete(token, rec, m.now())
}

// Release returns a leased cell to pending (graceful worker shutdown).
// Unknown or stale tokens are no-ops: the lease may simply have expired
// already, which reaches the same state.
func (m *Manager) Release(campaignID, token string) error {
	c, ok := m.Get(campaignID)
	if !ok {
		return fmt.Errorf("campaign: unknown campaign %q", campaignID)
	}
	c.release(token, m.now())
	return nil
}

// Progress snapshots one campaign.
func (m *Manager) Progress(id string) (Progress, bool) {
	c, ok := m.Get(id)
	if !ok {
		return Progress{}, false
	}
	return c.progress(m.now()), true
}

// Metrics snapshots one campaign's progress plus event counters.
func (m *Manager) Metrics(id string) (Metrics, bool) {
	c, ok := m.Get(id)
	if !ok {
		return Metrics{}, false
	}
	return c.metrics(m.now()), true
}

// Telemetry returns the collector wired at construction, nil when none.
func (m *Manager) Telemetry() *telemetry.Collector { return m.telemetry }

// Delete removes a campaign and its persisted state (<id>.sweep.json and
// <id>.ckpt.jsonl) — the GC path for finished or abandoned campaigns. It
// refuses with ErrBusy while unexpired leases are out: a worker may be
// mid-cell, and its completion must not land on a missing campaign (it
// would surface to the worker as an unknown-campaign rejection). Deleting
// an incomplete campaign with no leases is allowed — that is how an
// abandoned grid is withdrawn. Returns ErrUnknown for foreign ids and
// wraps file-removal failures in ErrInternal (the campaign is gone from
// memory either way; a restart may resurrect it from leftover files).
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.campaigns[id]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknown, id)
	}
	if n := c.activeLeases(m.now()); n > 0 {
		return fmt.Errorf("%w: %d unexpired leases on %s", ErrBusy, n, id)
	}
	delete(m.campaigns, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	err := c.close()
	if m.dir != "" {
		for _, path := range []string{filepath.Join(m.dir, id+".sweep.json"), m.checkpointPath(id)} {
			if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) && err == nil {
				err = rmErr
			}
		}
	}
	if err != nil {
		return fmt.Errorf("%w: deleting campaign %s: %v", ErrInternal, id, err)
	}
	return nil
}

// Close flushes and closes every campaign checkpoint. The manager must
// not be used afterwards.
func (m *Manager) Close() error {
	var first error
	for _, c := range m.Campaigns() {
		if err := c.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
