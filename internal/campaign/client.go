package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/study"
)

// Client speaks the sweepd HTTP API. The zero value is unusable; fill
// Base. Transient failures — connection errors, 5xx, 408/429 — are
// retried with exponential backoff; 4xx responses are permanent and
// surface immediately.
type Client struct {
	// Base is the server root, e.g. "http://farm-host:8377".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Retries is the number of attempts per call (default 5).
	Retries int
	// Backoff is the initial retry delay, doubling per attempt
	// (default 250ms).
	Backoff time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 5
}

func (c *Client) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 250 * time.Millisecond
}

// permanentError is a non-retryable (4xx) server rejection.
type permanentError struct {
	status int
	msg    string
}

func (e *permanentError) Error() string {
	return fmt.Sprintf("server rejected request (%d): %s", e.status, e.msg)
}

// call POSTs (or GETs, when body is nil and method says so) JSON and
// decodes the JSON response into out (ignored when nil), retrying
// transient failures with exponential backoff until ctx is done or
// attempts run out.
func (c *Client) call(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return err
		}
	}
	var lastErr error
	delay := c.backoff()
	for attempt := 0; attempt < c.retries(); attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			delay *= 2
		}
		data, err := c.once(ctx, method, path, payload)
		if err == nil {
			if out == nil {
				return nil
			}
			return json.Unmarshal(data, out)
		}
		if perm, ok := err.(*permanentError); ok {
			return perm
		}
		if ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("campaign: %s %s failed after %d attempts: %w", method, path, c.retries(), lastErr)
}

// once performs a single HTTP exchange, classifying failures.
func (c *Client) once(ctx context.Context, method, path string, payload []byte) ([]byte, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.Base, "/")+path, body)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err // network-level: transient
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return data, nil
	case resp.StatusCode == http.StatusRequestTimeout,
		resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode >= 500:
		return nil, fmt.Errorf("server returned %d: %s", resp.StatusCode, errorMessage(data))
	default:
		return nil, &permanentError{status: resp.StatusCode, msg: errorMessage(data)}
	}
}

// errorMessage extracts the JSON error envelope, falling back to the raw
// body.
func errorMessage(data []byte) string {
	var e errorBody
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// Submit registers a sweep and returns the campaign id and cell count.
func (c *Client) Submit(ctx context.Context, sw study.Sweep) (string, int, error) {
	var resp SubmitResponse
	if err := c.call(ctx, http.MethodPost, "/campaigns", sw, &resp); err != nil {
		return "", 0, err
	}
	return resp.ID, resp.Cells, nil
}

// Lease requests work.
func (c *Client) Lease(ctx context.Context, worker string) (*Lease, LeaseStatus, error) {
	var resp LeaseResponse
	if err := c.call(ctx, http.MethodPost, "/lease", LeaseRequest{Worker: worker}, &resp); err != nil {
		return nil, "", err
	}
	return resp.Lease, resp.Status, nil
}

// Complete submits a finished cell; duplicate reports whether the cell
// was already done (still a success).
func (c *Client) Complete(ctx context.Context, campaignID, token string, rec study.CellRecord) (duplicate bool, err error) {
	var resp CompleteResponse
	req := CompleteRequest{Campaign: campaignID, Token: token, Record: rec}
	if err := c.call(ctx, http.MethodPost, "/complete", req, &resp); err != nil {
		return false, err
	}
	return resp.Duplicate, nil
}

// Release returns a leased cell to the pending pool.
func (c *Client) Release(ctx context.Context, campaignID, token string) error {
	return c.call(ctx, http.MethodPost, "/release", ReleaseRequest{Campaign: campaignID, Token: token}, nil)
}

// Progress fetches one campaign's progress.
func (c *Client) Progress(ctx context.Context, id string) (Progress, error) {
	var p Progress
	err := c.call(ctx, http.MethodGet, "/campaigns/"+id, nil, &p)
	return p, err
}

// Metrics fetches one campaign's progress plus event counters.
func (c *Client) Metrics(ctx context.Context, id string) (Metrics, error) {
	var mx Metrics
	err := c.call(ctx, http.MethodGet, "/campaigns/"+id+"/metrics", nil, &mx)
	return mx, err
}

// FarmMetrics fetches the farm-wide snapshot.
func (c *Client) FarmMetrics(ctx context.Context) (FarmMetrics, error) {
	var fm FarmMetrics
	err := c.call(ctx, http.MethodGet, "/metrics", nil, &fm)
	return fm, err
}

// Delete removes a campaign and its server-side state. The server refuses
// (409, surfaced as a permanent error) while unexpired leases are out.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.call(ctx, http.MethodDelete, "/campaigns/"+id, nil, nil)
}

// Report fetches the rendered report (format "csv" or "md").
func (c *Client) Report(ctx context.Context, id, format string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(c.Base, "/")+"/campaigns/"+id+"/report?format="+format, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("campaign: report %s: server returned %d: %s", id, resp.StatusCode, errorMessage(data))
	}
	return data, nil
}
