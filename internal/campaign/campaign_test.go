package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/spec"
	"repro/internal/study"
)

// testSweep is a tiny 2×2 grid (4 cells) cheap enough to execute for real
// when a test needs genuine records.
func testSweep() study.Sweep {
	return study.Sweep{
		Models: []spec.Spec{
			model.New("edgemeg").WithInt("n", 32).WithFloat("p", 0.05).WithFloat("q", 0.3),
			model.New("static").With("topology", "torus").WithInt("m", 4),
		},
		Protocols: []spec.Spec{
			protocol.New("flood"),
			protocol.New("push").WithInt("k", 2),
		},
		Trials:   3,
		Seed:     11,
		MaxSteps: 1 << 12,
	}
}

// fakeClock is a mutable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// newTestManager builds a memory-only manager on a fake clock.
func newTestManager(t *testing.T, ttl time.Duration) (*Manager, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	m, err := NewManager(Options{LeaseTTL: ttl, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	return m, clock
}

// recordFor executes a leased cell for real, as a worker would.
func recordFor(t *testing.T, cell Cell) study.CellRecord {
	t.Helper()
	rec, err := runCell(cell, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestLeaseLifecycle(t *testing.T) {
	m, clock := newTestManager(t, time.Minute)
	sw := testSweep()
	c, err := m.Submit(sw)
	if err != nil {
		t.Fatal(err)
	}
	total := len(sw.Keys())

	// Every cell leases exactly once; grid order; distinct tokens.
	seen := map[string]bool{}
	var leases []Lease
	for i := 0; i < total; i++ {
		l, status := m.Lease("w1")
		if status != StatusLeased {
			t.Fatalf("lease %d: status %q", i, status)
		}
		if l.Campaign != c.ID() {
			t.Fatalf("lease %d: campaign %q", i, l.Campaign)
		}
		if l.Cell.Key() != sw.Keys()[i] {
			t.Fatalf("lease %d: got %s, want %s (grid order)", i, l.Cell.Key(), sw.Keys()[i])
		}
		if seen[l.Token] || l.Token == "" {
			t.Fatalf("lease %d: token %q reused or empty", i, l.Token)
		}
		seen[l.Token] = true
		leases = append(leases, l)
	}
	// Everything is out on lease: idle, not drained.
	if _, status := m.Lease("w2"); status != StatusIdle {
		t.Fatalf("all-leased status = %q, want idle", status)
	}
	p, _ := m.Progress(c.ID())
	if p.Leased != total || p.Done != 0 || p.Pending != 0 {
		t.Fatalf("progress = %+v", p)
	}

	// Complete them all.
	for _, l := range leases {
		rec := recordFor(t, l.Cell)
		fresh, err := m.Complete(l.Campaign, l.Token, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			t.Fatalf("first completion of %s reported duplicate", l.Cell.Key())
		}
	}
	p, _ = m.Progress(c.ID())
	if !p.Complete || p.Done != total {
		t.Fatalf("after completions: %+v", p)
	}
	if _, status := m.Lease("w1"); status != StatusDrained {
		t.Fatal("complete campaign does not drain")
	}

	// The report over the campaign records matches a local run of the
	// same sweep byte for byte.
	clock.advance(time.Hour) // report must not depend on the clock
	local, err := study.RunSweep(sw, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := renderCSV(t, local)
	got := renderCSV(t, c.records())
	if want != got {
		t.Fatalf("campaign report differs from local run:\n%s\nvs\n%s", got, want)
	}
}

func renderCSV(t *testing.T, recs []study.CellRecord) string {
	t.Helper()
	var b strings.Builder
	if err := study.WriteCSV(&b, study.Report(recs)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestLeaseExpiryRelease(t *testing.T) {
	m, clock := newTestManager(t, time.Minute)
	sw := testSweep()
	c, _ := m.Submit(sw)

	// Lease a cell and let it expire: it must be re-leased, with a new
	// token, to the next asker.
	l1, status := m.Lease("dying")
	if status != StatusLeased {
		t.Fatal(status)
	}
	clock.advance(2 * time.Minute)
	l2, status := m.Lease("healthy")
	if status != StatusLeased {
		t.Fatal(status)
	}
	if l2.Cell.Key() != l1.Cell.Key() {
		t.Fatalf("expired cell not re-leased first: got %s, want %s", l2.Cell.Key(), l1.Cell.Key())
	}
	if l2.Token == l1.Token {
		t.Fatal("re-lease reused the dead token")
	}

	// The dead worker completes anyway: accepted, and the healthy
	// worker's in-flight lease on the same cell is retired with it.
	rec := recordFor(t, l1.Cell)
	fresh, err := m.Complete(c.ID(), l1.Token, rec)
	if err != nil || !fresh {
		t.Fatalf("late completion: fresh=%v err=%v", fresh, err)
	}
	// The healthy worker's duplicate completion is accepted, idempotent.
	fresh, err = m.Complete(c.ID(), l2.Token, rec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatal("duplicate completion reported fresh")
	}
	p, _ := m.Progress(c.ID())
	if p.Done != 1 || p.Leased != 0 {
		t.Fatalf("after duplicate completion: %+v", p)
	}

	// Graceful release returns a cell to pending immediately.
	l3, _ := m.Lease("w")
	if err := m.Release(c.ID(), l3.Token); err != nil {
		t.Fatal(err)
	}
	l4, status := m.Lease("w")
	if status != StatusLeased || l4.Cell.Key() != l3.Cell.Key() {
		t.Fatalf("released cell not immediately re-leased: %q %s vs %s", status, l4.Cell.Key(), l3.Cell.Key())
	}
	// A stale release token must not yank the re-leased cell.
	if err := m.Release(c.ID(), l3.Token); err != nil {
		t.Fatal(err)
	}
	p, _ = m.Progress(c.ID())
	if p.Leased != 1 {
		t.Fatalf("stale release disturbed the live lease: %+v", p)
	}
}

func TestCompleteValidation(t *testing.T) {
	m, _ := newTestManager(t, time.Minute)
	sw := testSweep()
	c, _ := m.Submit(sw)
	l, _ := m.Lease("w")
	good := recordFor(t, l.Cell)

	bad := []struct {
		name string
		edit func(*study.CellRecord)
	}{
		{"foreign key", func(r *study.CellRecord) { r.Model = "edgemeg:n=999,p=0.05,q=0.3" }},
		{"truncated slices", func(r *study.CellRecord) { r.Times = r.Times[:1] }},
		{"zero trials", func(r *study.CellRecord) { r.Trials = 0 }},
		{"wrong max_steps", func(r *study.CellRecord) { r.MaxSteps = 7 }},
		{"wrong source", func(r *study.CellRecord) { r.Source = 3 }},
		{"negative wall", func(r *study.CellRecord) { r.WallMS = -5 }},
	}
	for _, tc := range bad {
		rec := good
		rec.Times = append([]int{}, good.Times...)
		tc.edit(&rec)
		if _, err := m.Complete(c.ID(), l.Token, rec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The cell must still be completable after the rejections.
	if fresh, err := m.Complete(c.ID(), l.Token, good); err != nil || !fresh {
		t.Fatalf("good completion after rejects: fresh=%v err=%v", fresh, err)
	}
	// Unknown campaign.
	if _, err := m.Complete("nope", l.Token, good); err == nil {
		t.Fatal("unknown campaign accepted")
	}
}

// TestCompletionWithoutLease pins the trust model: a valid record for a
// never-leased cell is accepted (results are a pure function of the key,
// so provenance does not matter), which is exactly why worker death needs
// no fencing.
func TestCompletionWithoutLease(t *testing.T) {
	m, _ := newTestManager(t, time.Minute)
	sw := testSweep()
	c, _ := m.Submit(sw)
	cell := c.cellPayload(2)
	rec := recordFor(t, cell)
	fresh, err := m.Complete(c.ID(), "no-such-token", rec)
	if err != nil || !fresh {
		t.Fatalf("unleased completion: fresh=%v err=%v", fresh, err)
	}
	p, _ := m.Progress(c.ID())
	if p.Done != 1 {
		t.Fatalf("progress after unleased completion: %+v", p)
	}
}

// TestAdaptiveLeaseTTL: once cells complete with wall_ms, lease TTLs
// stretch to leaseWallFactor × the observed mean.
func TestAdaptiveLeaseTTL(t *testing.T) {
	m, _ := newTestManager(t, time.Millisecond)
	sw := testSweep()
	c, _ := m.Submit(sw)
	l, _ := m.Lease("w")
	rec := recordFor(t, l.Cell)
	rec.WallMS = 10_000 // pretend the cell took 10s
	if _, err := m.Complete(c.ID(), l.Token, rec); err != nil {
		t.Fatal(err)
	}
	l2, status := m.Lease("w")
	if status != StatusLeased {
		t.Fatal(status)
	}
	if want := int64(10_000 * leaseWallFactor); l2.TTLMS != want {
		t.Fatalf("adaptive ttl = %dms, want %dms", l2.TTLMS, want)
	}
}

// TestManagerPersistence: a manager restarted on the same directory
// reloads campaigns, keeps completed cells done, and re-derives pending —
// including a kill-severed checkpoint tail.
func TestManagerPersistence(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	m1, err := NewManager(Options{Dir: dir, LeaseTTL: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	sw := testSweep()
	c1, err := m1.Submit(sw)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := m1.Lease("w")
	rec := recordFor(t, l.Cell)
	if _, err := m1.Complete(c1.ID(), l.Token, rec); err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Sever the checkpoint tail as a crash would, then restart.
	path := filepath.Join(dir, c1.ID()+".ckpt.jsonl")
	appendBytes(t, path, `{"model":"half-writ`)
	m2, err := NewManager(Options{Dir: dir, LeaseTTL: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	p, ok := m2.Progress(c1.ID())
	if !ok {
		t.Fatalf("campaign %s not reloaded", c1.ID())
	}
	if p.Done != 1 || p.Pending != len(sw.Keys())-1 || p.Leased != 0 {
		t.Fatalf("reloaded progress = %+v", p)
	}
	// The reloaded campaign serves the remaining cells — not the done one.
	l2, status := m2.Lease("w")
	if status != StatusLeased {
		t.Fatal(status)
	}
	if l2.Cell.Key() == rec.Key() {
		t.Fatal("reloaded campaign re-served a completed cell")
	}
	// A fresh submission gets a fresh id (the sequence survives restart).
	c2, err := m2.Submit(sw)
	if err != nil {
		t.Fatal(err)
	}
	if c2.ID() == c1.ID() {
		t.Fatalf("id collision after restart: %s", c2.ID())
	}
}

func appendBytes(t *testing.T, path, chunk string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(chunk); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentFarm hammers one campaign from many goroutines under the
// race detector: concurrent lease/complete/release/progress with an
// aggressive TTL so expiry and duplicate completion interleave. The farm
// must converge to a complete campaign whose report matches a local run.
func TestConcurrentFarm(t *testing.T) {
	// Real clock: expiry genuinely races against the workers.
	m, err := NewManager(Options{LeaseTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sw := testSweep()
	c, err := m.Submit(sw)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				l, status := m.Lease(fmt.Sprintf("w%d", w))
				switch status {
				case StatusDrained:
					return
				case StatusIdle:
					time.Sleep(time.Millisecond)
					continue
				}
				rec := recordFor(t, l.Cell)
				if w%3 == 0 {
					// An unreliable worker: sometimes release, sometimes
					// complete late with a stale token.
					_ = m.Release(l.Campaign, l.Token)
				}
				if _, err := m.Complete(l.Campaign, l.Token, rec); err != nil {
					t.Error(err)
					return
				}
				_, _ = m.Progress(l.Campaign)
			}
		}(w)
	}
	wg.Wait()
	p, _ := m.Progress(c.ID())
	if !p.Complete {
		t.Fatalf("farm did not converge: %+v", p)
	}
	local, err := study.RunSweep(sw, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderCSV(t, c.records()), renderCSV(t, local); got != want {
		t.Fatalf("concurrent farm report differs:\n%s\nvs\n%s", got, want)
	}
}

// TestWorkerHeartbeatsAndMetrics pins the diagnostic bookkeeping: per-
// worker last-seen/completed/mean-wall attribution and the campaign's
// lifetime event counters, including the stale-token path (completion
// counted, no worker credited) and expiry counting.
func TestWorkerHeartbeatsAndMetrics(t *testing.T) {
	m, clock := newTestManager(t, time.Minute)
	sw := testSweep()
	c, err := m.Submit(sw)
	if err != nil {
		t.Fatal(err)
	}

	l1, _ := m.Lease("alpha")
	rec1 := recordFor(t, l1.Cell)
	clock.advance(10 * time.Second)
	if _, err := m.Complete(c.ID(), l1.Token, rec1); err != nil {
		t.Fatal(err)
	}

	// beta leases and releases: seen, zero completions.
	l2, _ := m.Lease("beta")
	if err := m.Release(c.ID(), l2.Token); err != nil {
		t.Fatal(err)
	}

	// gamma leases and dies; expiry must not credit a completion.
	if _, status := m.Lease("gamma"); status != StatusLeased {
		t.Fatalf("gamma lease status %q", status)
	}
	clock.advance(2 * time.Minute) // past TTL

	// A duplicate completion with a stale token still counts the event but
	// credits no worker (the lease is gone).
	if _, err := m.Complete(c.ID(), "stale-token", rec1); err != nil {
		t.Fatal(err)
	}

	p, ok := m.Progress(c.ID())
	if !ok {
		t.Fatal("campaign vanished")
	}
	if len(p.Workers) != 3 {
		t.Fatalf("got %d workers, want 3: %+v", len(p.Workers), p.Workers)
	}
	byName := map[string]WorkerProgress{}
	for _, wp := range p.Workers {
		byName[wp.Worker] = wp
	}
	alpha := byName["alpha"]
	if alpha.Completed != 1 || alpha.MeanWallMS != float64(rec1.WallMS) {
		t.Fatalf("alpha = %+v, want 1 completion of %dms", alpha, rec1.WallMS)
	}
	wantSeen := clock.now().Add(-2*time.Minute - 10*time.Second).UnixMilli()
	if alpha.LastSeenMS != wantSeen+10_000 {
		t.Fatalf("alpha last seen %d, want %d", alpha.LastSeenMS, wantSeen+10_000)
	}
	if beta := byName["beta"]; beta.Completed != 0 {
		t.Fatalf("beta = %+v, want 0 completions", beta)
	}
	if gamma := byName["gamma"]; gamma.Completed != 0 {
		t.Fatalf("gamma = %+v, want 0 completions", gamma)
	}

	mx, ok := m.Metrics(c.ID())
	if !ok {
		t.Fatal("metrics vanished")
	}
	if mx.LeasesTotal != 3 || mx.CompletionsTotal != 2 || mx.DuplicatesTotal != 1 ||
		mx.ReleasesTotal != 1 || mx.ExpiriesTotal != 1 {
		t.Fatalf("counters = %+v", mx)
	}
	if mx.Done != 1 {
		t.Fatalf("done = %d, want 1", mx.Done)
	}
}

// TestDeleteCampaign pins the GC contract: refuse while leased, remove
// memory and disk state when idle, ErrUnknown for foreign ids, and no
// resurrection on manager reload.
func TestDeleteCampaign(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	m, err := NewManager(Options{Dir: dir, LeaseTTL: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	sw := testSweep()
	c, err := m.Submit(sw)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := m.Submit(sw) // a second campaign that must survive
	if err != nil {
		t.Fatal(err)
	}

	l, _ := m.Lease("w")
	if err := m.Delete(c.ID()); !errors.Is(err, ErrBusy) {
		t.Fatalf("delete while leased: %v, want ErrBusy", err)
	}
	if err := m.Release(c.ID(), l.Token); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(c.ID()); err != nil {
		t.Fatalf("delete idle campaign: %v", err)
	}
	if _, ok := m.Get(c.ID()); ok {
		t.Fatal("deleted campaign still resolvable")
	}
	for _, name := range []string{c.ID() + ".sweep.json", c.ID() + ".ckpt.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s survived deletion (err=%v)", name, err)
		}
	}
	if err := m.Delete("c999"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("delete unknown: %v, want ErrUnknown", err)
	}

	// The surviving campaign still leases, and a reload sees only it.
	if _, status := m.Lease("w"); status != StatusLeased {
		t.Fatalf("surviving campaign does not lease: %q", status)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(Options{Dir: dir, LeaseTTL: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := len(m2.Campaigns()); got != 1 {
		t.Fatalf("reload found %d campaigns, want 1", got)
	}
	if _, ok := m2.Get(keep.ID()); !ok {
		t.Fatalf("reload lost surviving campaign %s", keep.ID())
	}
	// Deleted-id sequence is not reused: a new submission gets a fresh id.
	c3, err := m2.Submit(sw)
	if err != nil {
		t.Fatal(err)
	}
	if c3.ID() == c.ID() {
		t.Fatalf("deleted id %s was reused", c.ID())
	}
}
