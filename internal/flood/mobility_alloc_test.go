package flood_test

import (
	"testing"

	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
)

// TestChurnTotalsCountMovedNodes is the deterministic pin of the
// moved-node accounting behind the moved_per_step telemetry gauge
// (TestRunSweepMovedGauge at the study layer can only check registration —
// its gauges divide by a process-wide step count). A pause-free waypoint
// moves every node every step, so the scratch-local totals must satisfy
// moved == n × steps exactly.
func TestChurnTotalsCountMovedNodes(t *testing.T) {
	const n = 64
	ms := model.New("waypoint").WithInt("n", n).WithFloat("L", 12).WithFloat("r", 1.5).
		WithFloat("vmin", 0.5)
	sc := flood.NewScratch()
	opts := flood.Opts{MaxSteps: 1 << 12, Scratch: sc}
	for _, seed := range []uint64{3, 19} {
		res := flood.Run(model.MustBuild(ms, seed), 0, opts)
		if !res.Completed {
			t.Fatalf("seed %d: flood did not complete in %d steps", seed, opts.MaxSteps)
		}
	}
	born, died, moved, steps := sc.ChurnTotals()
	if steps <= 0 {
		t.Fatalf("no delta steps recorded — waypoint not dispatched to the delta engine?")
	}
	if moved != int64(n)*steps {
		t.Errorf("moved = %d over %d steps, want exactly n×steps = %d (pause-free waypoint moves every node)",
			moved, steps, int64(n)*steps)
	}
	if born <= 0 || died <= 0 {
		t.Errorf("churn totals born=%d died=%d, want both positive", born, died)
	}

	// A pause-heavy waypoint must report strictly fewer moved nodes than
	// steps×n — resting nodes are not movers.
	paused := model.New("waypoint").WithInt("n", n).WithFloat("L", 12).WithFloat("r", 1.5).
		WithFloat("vmin", 0.5).WithInt("pause", 8).With("init", "uniform").WithInt("warmup", 5)
	sc2 := flood.NewScratch()
	flood.Run(model.MustBuild(paused, 7), 0, flood.Opts{MaxSteps: 1 << 12, Scratch: sc2})
	_, _, pMoved, pSteps := sc2.ChurnTotals()
	if pSteps <= 0 {
		t.Fatalf("paused waypoint recorded no delta steps")
	}
	if pMoved >= int64(n)*pSteps {
		t.Errorf("paused waypoint moved %d over %d steps — expected < n×steps = %d", pMoved, pSteps, int64(n)*pSteps)
	}
	if pMoved <= 0 {
		t.Errorf("paused waypoint reported no movers at all")
	}
}

// TestMobilityDeltaFloodZeroAlloc pins the full mobility delta pipeline —
// incremental cell-list maintenance, native AppendDeltas, adjacency apply,
// active-set scan — at 0 allocs per warm run.
func TestMobilityDeltaFloodZeroAlloc(t *testing.T) {
	ms := model.New("waypoint").WithInt("n", 64).WithFloat("L", 12).WithFloat("r", 1.5).
		WithFloat("vmin", 0.5)
	d := model.MustBuild(ms, 17)
	sc := flood.NewScratch()
	opts := flood.Opts{MaxSteps: 1 << 12, Scratch: sc}
	run := func() { flood.Run(d, 0, opts) }
	// Warm: the model keeps stepping across runs, so this drives the cell
	// lists, churn batches, and scratch adjacency to their high-water sizes.
	for i := 0; i < 60; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("warm mobility delta flood run: %.1f allocs, want 0", allocs)
	}
}
