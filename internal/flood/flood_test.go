package flood

import (
	"testing"
	"testing/quick"

	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestFloodCompleteGraphOneStep(t *testing.T) {
	d := dyngraph.NewStatic(graph.Complete(10))
	r := Run(d, 0, Opts{KeepTimeline: true})
	if !r.Completed || r.Time != 1 {
		t.Fatalf("complete graph flood: %+v", r)
	}
	if r.Timeline[0] != 1 || r.Timeline[1] != 10 {
		t.Fatalf("timeline: %v", r.Timeline)
	}
}

func TestFloodPathTakesDiameterSteps(t *testing.T) {
	g := graph.Path(8)
	r := Run(dyngraph.NewStatic(g), 0, Opts{})
	if r.Time != 7 {
		t.Fatalf("path flood time = %d, want 7", r.Time)
	}
	mid := Run(dyngraph.NewStatic(g), 3, Opts{})
	if mid.Time != 4 {
		t.Fatalf("mid-path flood time = %d, want 4", mid.Time)
	}
}

func TestFloodSingleNode(t *testing.T) {
	b := graph.NewBuilder(1)
	r := Run(dyngraph.NewStatic(b.Build()), 0, Opts{})
	if !r.Completed || r.Time != 0 {
		t.Fatalf("single node: %+v", r)
	}
}

func TestFloodDisconnectedNeverCompletes(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	r := Run(dyngraph.NewStatic(b.Build()), 0, Opts{MaxSteps: 50})
	if r.Completed || r.Time != -1 {
		t.Fatalf("disconnected flood should not complete: %+v", r)
	}
}

func TestFloodHalfTime(t *testing.T) {
	g := graph.Path(8)
	r := Run(dyngraph.NewStatic(g), 0, Opts{KeepTimeline: true})
	// From node 0, after t steps 1+t nodes informed; half = 4 nodes at t=3.
	if r.HalfTime != 3 {
		t.Fatalf("half time = %d, want 3", r.HalfTime)
	}
	if r.SaturationTime() != r.Time-3 {
		t.Fatal("saturation time inconsistent")
	}
}

func TestFloodSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad source did not panic")
		}
	}()
	Run(dyngraph.NewStatic(graph.Cycle(3)), 5, Opts{})
}

func TestTimelineMonotoneProperty(t *testing.T) {
	f := func(seed uint16) bool {
		g := graph.Gnp(30, 0.1, rng.New(uint64(seed)))
		r := Run(dyngraph.NewStatic(g), 0, Opts{MaxSteps: 100, KeepTimeline: true})
		return GrowthIsMonotone(r.Timeline)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// onceThenEmpty exposes a perfect matching at time 0 and nothing afterward,
// checking that flooding consumes E_t before stepping (I_{t+1} from E_t).
type onceThenEmpty struct {
	n int
	t int
}

func (o *onceThenEmpty) N() int { return o.n }
func (o *onceThenEmpty) Step()  { o.t++ }
func (o *onceThenEmpty) ForEachNeighbor(i int, fn func(j int)) {
	if o.t == 0 {
		// Perfect matching i <-> i^1.
		fn(i ^ 1)
	}
}

func TestFloodUsesSnapshotBeforeStep(t *testing.T) {
	d := &onceThenEmpty{n: 2}
	r := Run(d, 0, Opts{MaxSteps: 5})
	if !r.Completed || r.Time != 1 {
		t.Fatalf("matching at t=0 should inform at t=1: %+v", r)
	}
}

// dynamicLine connects node t to t+1 only at time t, so information moves
// one hop per step along a changing graph — a minimal genuinely dynamic
// test of old-informed nodes meeting new neighbors.
type dynamicLine struct {
	n int
	t int
}

func (d *dynamicLine) N() int { return d.n }
func (d *dynamicLine) Step()  { d.t++ }
func (d *dynamicLine) ForEachNeighbor(i int, fn func(j int)) {
	if i == d.t && i+1 < d.n {
		fn(i + 1)
	}
	if i == d.t+1 && i-1 >= 0 {
		fn(i - 1)
	}
}

func TestFloodFollowsDynamicEdges(t *testing.T) {
	d := &dynamicLine{n: 6}
	r := Run(d, 0, Opts{MaxSteps: 20})
	if !r.Completed || r.Time != 5 {
		t.Fatalf("dynamic line flood: %+v", r)
	}
}

// laterMeeting checks that an anciently informed node still spreads: node 0
// informs node 1 at t=0; node 0 meets node 2 only at t=5.
type laterMeeting struct{ t int }

func (d *laterMeeting) N() int { return 3 }
func (d *laterMeeting) Step()  { d.t++ }
func (d *laterMeeting) ForEachNeighbor(i int, fn func(j int)) {
	switch {
	case d.t == 0 && i == 0:
		fn(1)
	case d.t == 0 && i == 1:
		fn(0)
	case d.t == 5 && i == 0:
		fn(2)
	case d.t == 5 && i == 2:
		fn(0)
	}
}

func TestFloodRescansAllInformed(t *testing.T) {
	r := Run(&laterMeeting{}, 0, Opts{MaxSteps: 10})
	if !r.Completed || r.Time != 6 {
		t.Fatalf("old informed node should spread at t=5: %+v", r)
	}
}

func TestTimeToFraction(t *testing.T) {
	r := Result{Timeline: []int{1, 2, 4, 8, 16}, Completed: true}
	if got := r.TimeToFraction(16, 0.5); got != 3 {
		t.Fatalf("TimeToFraction(0.5) = %d, want 3", got)
	}
	if got := r.TimeToFraction(16, 1.0); got != 4 {
		t.Fatalf("TimeToFraction(1.0) = %d, want 4", got)
	}
	// A completed run's timeline is the whole trajectory, so a level it
	// never hits is provably never reached — not merely unobserved.
	if got := r.TimeToFraction(32, 1.0); got != TimeNever {
		t.Fatalf("unreachable fraction should be TimeNever, got %d", got)
	}
	// The same timeline cut off at MaxSteps proves nothing about later
	// steps: the level might have been reached after the cutoff.
	cut := Result{Timeline: []int{1, 2, 4, 8, 16}, Completed: false}
	if got := cut.TimeToFraction(32, 1.0); got != TimeUnknown {
		t.Fatalf("cut-off fraction should be TimeUnknown, got %d", got)
	}
	// Levels the cut-off timeline does reach are still answered exactly.
	if got := cut.TimeToFraction(16, 0.5); got != 3 {
		t.Fatalf("cut-off reached fraction = %d, want 3", got)
	}
}

func TestTimeToFractionWithoutTimeline(t *testing.T) {
	// A completed run executed without KeepTimeline still answers the
	// fractions its tracked events pin down exactly.
	n := 16
	r := Result{Time: 9, HalfTime: 5, Informed: n, Completed: true}
	if got := r.TimeToFraction(n, 1.0); got != 9 {
		t.Fatalf("full fraction should fall back on Time: got %d", got)
	}
	if got := r.TimeToFraction(n, 0.5); got != 5 {
		t.Fatalf("half fraction should fall back on HalfTime: got %d", got)
	}
	if got := r.TimeToFraction(n, 0.05); got != 0 {
		t.Fatalf("source-only fraction should be 0: got %d", got)
	}
	// Reached fractions at unrecorded times are unknown, not never: the
	// run did pass through 0.75·n, the tracked events just don't say when.
	if got := r.TimeToFraction(n, 0.75); got != TimeUnknown {
		t.Fatalf("unrecorded fraction should be TimeUnknown: got %d", got)
	}
	// A run cut off at MaxSteps below the level proves nothing — the
	// level might have been reached had the run continued.
	capped := Result{Time: -1, HalfTime: 3, Informed: 10}
	if got := capped.TimeToFraction(n, 1.0); got != TimeUnknown {
		t.Fatalf("cut-off full fraction should be TimeUnknown: got %d", got)
	}
	// A COMPLETED run's trajectory is final, so a level above its final
	// informed count (here: measured against a larger denominator n) was
	// provably never reached.
	island := Result{Time: 4, HalfTime: -1, Informed: 6, Completed: true}
	if got := island.TimeToFraction(n, 1.0); got != TimeNever {
		t.Fatalf("level above a completed run should be TimeNever: got %d", got)
	}
	if got := capped.TimeToFraction(n, 0.5); got != 3 {
		t.Fatalf("incomplete run half fraction should be HalfTime: got %d", got)
	}
	// An odd n pins the half threshold at ceil(n/2).
	odd := Result{Time: 7, HalfTime: 4, Informed: 9, Completed: true}
	if got := odd.TimeToFraction(9, 5.0/9.0); got != 4 {
		t.Fatalf("ceil(n/2) fraction on odd n should be HalfTime: got %d", got)
	}
}

func TestPhases(t *testing.T) {
	r := Result{Time: 10, HalfTime: 7, Completed: true}
	ps, ok := Phases(r)
	if !ok || ps.Spreading != 7 || ps.Saturation != 3 {
		t.Fatalf("phases: %+v ok=%v", ps, ok)
	}
	if _, ok := Phases(Result{Completed: false}); ok {
		t.Fatal("incomplete run should have no phases")
	}
}

func TestDoublings(t *testing.T) {
	timeline := []int{1, 1, 2, 3, 5, 9, 16}
	ds := Doublings(timeline)
	// Reached 2 at t=2, 4 at t=4, 8 at t=5, 16 at t=6.
	want := []int{2, 4, 5, 6}
	if len(ds) != len(want) {
		t.Fatalf("doublings = %v, want %v", ds, want)
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("doublings = %v, want %v", ds, want)
		}
	}
	if Doublings(nil) != nil {
		t.Fatal("empty timeline should give nil")
	}
}

func TestGrowthIsMonotone(t *testing.T) {
	if !GrowthIsMonotone([]int{1, 1, 2, 5}) {
		t.Fatal("monotone timeline rejected")
	}
	if GrowthIsMonotone([]int{1, 3, 2}) {
		t.Fatal("non-monotone timeline accepted")
	}
}

func TestRandomizedPushCompleteGraph(t *testing.T) {
	// Push with k=1 on the complete graph is the classic random phone-call
	// model; it must complete but slower than full flooding.
	d := dyngraph.NewStatic(graph.Complete(64))
	r := RandomizedPush(d, 0, 1, rng.New(17), Opts{MaxSteps: 1000})
	if !r.Completed {
		t.Fatal("push gossip did not complete")
	}
	if r.Time < 2 {
		t.Fatalf("push gossip suspiciously fast: %d", r.Time)
	}
	full := Run(dyngraph.NewStatic(graph.Complete(64)), 0, Opts{})
	if r.Time <= full.Time {
		t.Fatalf("push (%d) should be slower than flooding (%d)", r.Time, full.Time)
	}
}

func BenchmarkFloodStaticGrid(b *testing.B) {
	g := graph.Grid(60, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(dyngraph.NewStatic(g), 0, Opts{})
	}
}
