package flood

import (
	"repro/internal/bitset"
	"repro/internal/dyngraph"
	"repro/internal/eventwheel"
	"repro/internal/rng"
)

// Scratch is the reusable working state of one spreading run: the informed
// and pending bitsets, the snapshot edge buffer, the per-node neighbor
// buffer, the member/active queues, and (for k-push) the subsampled-graph
// wrapper. Every engine in this package draws its state from a Scratch, so
// a caller that runs many trials — internal/study gives each worker one —
// pays the allocation cost once and every later trial runs the hot loop
// with zero heap allocations (asserted by TestFloodRunZeroAlloc*).
//
// A Scratch may be reused freely across sequential runs of any engines and
// any models (each run resets exactly the state it uses), but never shared
// across concurrent runs. The zero value is ready to use; a nil
// Opts.Scratch simply makes the run allocate private state, preserving the
// fire-and-forget call style.
type Scratch struct {
	// informed is I_t; pending accumulates the nodes reached during the
	// current step, committed into informed at step end (Absorb) so that
	// same-step chained propagation — wrong in a dynamic graph — cannot
	// happen.
	informed bitset.Set
	pending  bitset.Set
	// edges receives the flat snapshot batch (edge-scan and arc-scan).
	edges []dyngraph.Edge
	// nbrs receives one node's neighbor batch (member-scan, pull,
	// push–pull, parsimonious).
	nbrs []int32
	// queue holds the node list driving a round: informed members
	// (member-scan), uninformed nodes (pull), or active transmitters
	// (parsimonious).
	queue []int32
	// newly collects nodes informed this round when the engine needs them
	// individually (parsimonious window bookkeeping).
	newly []int32
	// expiry is parsimonious' per-node last-transmission step.
	expiry []int32
	// idx is the SampleDistinctInto buffer of the push–pull fan-out draw.
	idx []int
	// sub is the reusable subsampled-graph wrapper of RandomizedPush.
	sub *dyngraph.Subsample
	// adj is the persistent neighbor store of the delta fast paths: seeded
	// from one snapshot batch at run start, then maintained in place from
	// the model's per-step churn (dyngraph.DeltaBatcher), so the engine
	// never rescans unchanged edges.
	adj dyngraph.Adjacency
	// active marks informed nodes that may still have uninformed neighbors
	// — the only nodes the delta flood engine scans each step. A node
	// leaves the set when a scan finds its neighborhood fully informed and
	// re-enters only when a born edge touches it. Two-level: the per-step
	// member sweep walks O(active words), not O(n/64) — at n = 10^6 the
	// active set collapses to a handful of nodes for most of the run and a
	// flat sweep would dominate the step.
	active bitset.TwoLevel
	// fresh is the delta engine's pending set — the nodes reached during
	// the current step. Two-level for the same reason as active: listing
	// and committing the step's few newly informed nodes must not cost a
	// walk over the whole universe.
	fresh bitset.TwoLevel
	// born and died receive the per-step churn batches.
	born, died []dyngraph.Edge
	// bornTotal/diedTotal/movedTotal/deltaSteps accumulate the delta
	// engines' churn stream across every run sharing this scratch: edges
	// born, edges died, nodes moved (models exposing
	// dyngraph.MoveReporter), and model steps consumed. internal/study
	// harvests them into the born_per_step/died_per_step/moved_per_step
	// telemetry gauges. Plain counters on the owning worker's scratch — no
	// atomics on the hot path.
	bornTotal, diedTotal, movedTotal, deltaSteps int64
	// wheel is the async engine's event scheduler; clocks its per-node
	// Poisson-clock RNG streams. Both are sized lazily by the first async
	// run and reused across trials like every other buffer.
	wheel  *eventwheel.Wheel
	clocks []rng.RNG
}

// NewScratch returns an empty Scratch. Buffers are sized lazily by the
// first run and grow monotonically, so one Scratch serves mixed workloads.
func NewScratch() *Scratch { return &Scratch{} }

// Bytes returns the heap bytes currently retained by the scratch's
// buffers — the number a telemetry gauge reports as the per-worker memory
// footprint of the spreading engine. It is an accounting sum over backing
// array capacities (bitset words, edge and index buffers, adjacency lists,
// subsample caches), not a runtime measurement, so it is cheap enough to
// call between trials but is NOT part of the zero-alloc hot path contract.
func (sc *Scratch) Bytes() int64 {
	b := sc.informed.Bytes() + sc.pending.Bytes() + sc.active.Bytes() + sc.fresh.Bytes()
	b += int64(cap(sc.edges))*8 + int64(cap(sc.born))*8 + int64(cap(sc.died))*8
	b += int64(cap(sc.nbrs))*4 + int64(cap(sc.queue))*4 + int64(cap(sc.newly))*4 + int64(cap(sc.expiry))*4
	b += int64(cap(sc.idx)) * 8
	b += sc.adj.Bytes()
	if sc.sub != nil {
		b += sc.sub.Bytes()
	}
	if sc.wheel != nil {
		b += sc.wheel.Bytes()
	}
	b += int64(cap(sc.clocks)) * 8
	return b
}

// ChurnTotals returns the cumulative churn the delta engines streamed
// through this scratch across every run that shared it: edges born, edges
// died, nodes moved (0 unless the model reports motion via
// dyngraph.MoveReporter), and model steps consumed. internal/study turns
// the totals into the born_per_step/died_per_step/moved_per_step
// telemetry gauges.
func (sc *Scratch) ChurnTotals() (born, died, moved, steps int64) {
	return sc.bornTotal, sc.diedTotal, sc.movedTotal, sc.deltaSteps
}

// reset prepares the scratch for a run over n nodes. Only the bitsets need
// clearing — slice buffers are truncated at use sites and expiry is fully
// overwritten before any read.
func (sc *Scratch) reset(n int) {
	sc.informed.Reset(n)
	sc.pending.Reset(n)
}

// subsample returns a subsampled view of d with fan-out k, reusing the
// scratch-held wrapper across trials when possible.
func (sc *Scratch) subsample(d dyngraph.Dynamic, k int, r *rng.RNG) *dyngraph.Subsample {
	if sc.sub == nil {
		sc.sub = dyngraph.NewSubsample(d, k, r)
	} else {
		sc.sub.Reset(d, k, r)
	}
	return sc.sub
}

// expirySlice returns the expiry buffer sized to n. Values are garbage
// until assigned; parsimonious assigns every entry it later reads.
func (sc *Scratch) expirySlice(n int) []int32 {
	if cap(sc.expiry) < n {
		sc.expiry = make([]int32, n)
	}
	return sc.expiry[:n]
}

// asyncState returns the event wheel (reset for n nodes) and the per-node
// clock buffer of the async engine. Clock entries are garbage until
// reseeded; Async reseeds every entry before any draw.
func (sc *Scratch) asyncState(n int) (*eventwheel.Wheel, []rng.RNG) {
	if sc.wheel == nil {
		sc.wheel = eventwheel.New(TicksPerStep, asyncWheelBuckets)
	}
	sc.wheel.Reset(n)
	if cap(sc.clocks) < n {
		sc.clocks = make([]rng.RNG, n)
	}
	return sc.wheel, sc.clocks[:n]
}
