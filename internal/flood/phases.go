package flood

// PhaseSplit decomposes a completed run with a recorded timeline into the
// paper's two phases: the spreading phase (to n/2 informed, Lemma 13) and
// the saturation phase (n/2 to n, Lemma 14).
type PhaseSplit struct {
	Spreading  int // steps from 1 informed to >= n/2 informed
	Saturation int // steps from >= n/2 informed to all informed
}

// Phases returns the phase split of a completed result, or ok == false for
// incomplete runs or runs without half-time tracking.
func Phases(r Result) (PhaseSplit, bool) {
	if !r.Completed || r.HalfTime < 0 {
		return PhaseSplit{}, false
	}
	return PhaseSplit{
		Spreading:  r.HalfTime,
		Saturation: r.Time - r.HalfTime,
	}, true
}

// Doublings returns the times at which the informed set first reached
// 2, 4, 8, ... nodes, from a recorded timeline. Lemma 11 predicts these
// events are spaced ~T epochs apart during the spreading phase, giving the
// log n factor in Theorem 1.
func Doublings(timeline []int) []int {
	if len(timeline) == 0 {
		return nil
	}
	var out []int
	target := 2
	for t, size := range timeline {
		for size >= target {
			out = append(out, t)
			target *= 2
		}
	}
	return out
}

// GrowthIsMonotone verifies the fundamental flooding invariant
// I_0 ⊆ I_1 ⊆ I_2 ⊆ ... on a recorded timeline. It exists for tests and
// sanity checks of new Dynamic implementations.
func GrowthIsMonotone(timeline []int) bool {
	for i := 1; i < len(timeline); i++ {
		if timeline[i] < timeline[i-1] {
			return false
		}
	}
	return true
}
