package flood

import (
	"runtime"
	"sync"

	"repro/internal/dyngraph"
	"repro/internal/stats"
)

// Factory builds a fresh dynamic graph and source node for one trial.
// Implementations must derive per-trial seeds from the trial index so that
// trials are independent and the whole experiment is reproducible.
type Factory func(trial int) (d dyngraph.Dynamic, source int)

// TrialsOpts configures a multi-trial flooding experiment.
type TrialsOpts struct {
	Opts
	// Workers bounds the number of concurrent trials; 0 means GOMAXPROCS.
	Workers int
}

// Trials runs `trials` independent flooding executions in a bounded worker
// pool and returns per-trial results in trial order. Each worker owns its
// graph instance, so no synchronization is needed beyond work distribution.
func Trials(factory Factory, trials int, opts TrialsOpts) []Result {
	if trials <= 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	results := make([]Result, trials)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range work {
				d, source := factory(trial)
				results[trial] = Run(d, source, opts.Opts)
			}
		}()
	}
	for trial := 0; trial < trials; trial++ {
		work <- trial
	}
	close(work)
	wg.Wait()
	return results
}

// TimesOf extracts the flooding times of completed runs and the count of
// incomplete ones.
func TimesOf(results []Result) (times []float64, incomplete int) {
	times = make([]float64, 0, len(results))
	for _, r := range results {
		if r.Completed {
			times = append(times, float64(r.Time))
		} else {
			incomplete++
		}
	}
	return times, incomplete
}

// SummarizeTimes runs Trials and summarizes the completed flooding times.
// The second return value counts incomplete (capped) runs.
func SummarizeTimes(factory Factory, trials int, opts TrialsOpts) (stats.Summary, int) {
	times, incomplete := TimesOf(Trials(factory, trials, opts))
	return stats.Summarize(times), incomplete
}
