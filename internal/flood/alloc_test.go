package flood

// Allocation-regression pins of the scratch refactor: once a run has
// warmed its Scratch, the engine hot loops must not touch the heap at all.
// The graphs are static (Step is a no-op and snapshot access appends into
// caller buffers), so every measured allocation would belong to the engine
// itself, not the model.

import (
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/rng"
)

// assertZeroAlloc warms the scratch with one run, then measures.
func assertZeroAlloc(t *testing.T, name string, run func()) {
	t.Helper()
	run() // warm the scratch
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("%s: %.1f allocs per warm run, want 0", name, allocs)
	}
}

func TestFloodDeltaScanZeroAlloc(t *testing.T) {
	// Static implements DeltaBatcher, so the default path is the
	// incremental delta-scan engine (persistent adjacency + active set).
	d := dyngraph.NewStatic(graph.Torus(16, 16))
	opts := Opts{MaxSteps: 1 << 10, Scratch: NewScratch()}
	if res := Run(d, 0, opts); !res.Completed {
		t.Fatal("flood on the torus did not complete")
	}
	assertZeroAlloc(t, "flood delta-scan", func() { Run(d, 0, opts) })
}

// batcherOnly hides DeltaBatcher (and the per-node view) so the run takes
// the flat edge-scan path.
type batcherOnly struct{ s *dyngraph.Static }

func (b batcherOnly) N() int                                { return b.s.N() }
func (b batcherOnly) Step()                                 { b.s.Step() }
func (b batcherOnly) ForEachNeighbor(i int, fn func(j int)) { b.s.ForEachNeighbor(i, fn) }
func (b batcherOnly) AppendEdges(d []dyngraph.Edge) []dyngraph.Edge {
	return b.s.AppendEdges(d)
}

func TestFloodEdgeScanZeroAlloc(t *testing.T) {
	d := batcherOnly{dyngraph.NewStatic(graph.Torus(16, 16))}
	opts := Opts{MaxSteps: 1 << 10, Scratch: NewScratch()}
	if res := Run(d, 0, opts); !res.Completed {
		t.Fatal("flood on the torus did not complete")
	}
	assertZeroAlloc(t, "flood edge-scan", func() { Run(d, 0, opts) })
}

// listerOnly hides Batcher/ArcBatcher so the run takes the member-scan
// path, keeping the cheap per-node batch view.
type listerOnly struct{ s *dyngraph.Static }

func (l listerOnly) N() int                                     { return l.s.N() }
func (l listerOnly) Step()                                      { l.s.Step() }
func (l listerOnly) ForEachNeighbor(i int, fn func(j int))      { l.s.ForEachNeighbor(i, fn) }
func (l listerOnly) AppendNeighbors(i int, dst []int32) []int32 { return l.s.AppendNeighbors(i, dst) }

func TestFloodMemberScanZeroAlloc(t *testing.T) {
	d := listerOnly{dyngraph.NewStatic(graph.Torus(16, 16))}
	opts := Opts{MaxSteps: 1 << 10, Scratch: NewScratch()}
	assertZeroAlloc(t, "flood member-scan", func() { Run(d, 0, opts) })
}

func TestPullZeroAlloc(t *testing.T) {
	d := dyngraph.NewStatic(graph.Torus(12, 12))
	r := rng.New(5)
	opts := Opts{MaxSteps: 1 << 12, Scratch: NewScratch()}
	if res := Pull(d, 0, r, opts); !res.Completed {
		t.Fatal("pull on the torus did not complete")
	}
	assertZeroAlloc(t, "pull", func() { Pull(d, 0, r, opts) })
}

func TestPushPullZeroAlloc(t *testing.T) {
	d := dyngraph.NewStatic(graph.Torus(12, 12))
	r := rng.New(5)
	opts := Opts{MaxSteps: 1 << 12, Scratch: NewScratch()}
	assertZeroAlloc(t, "pushpull", func() { PushPull(d, 0, 2, r, opts) })
}

func TestParsimoniousZeroAlloc(t *testing.T) {
	// The static model is delta-capable, so this exercises the
	// adjacency-backed incremental window engine.
	d := dyngraph.NewStatic(graph.Torus(12, 12))
	opts := Opts{MaxSteps: 1 << 12, Scratch: NewScratch()}
	assertZeroAlloc(t, "parsimonious delta", func() { Parsimonious(d, 0, 64, opts) })
}

func TestParsimoniousMemberPathZeroAlloc(t *testing.T) {
	d := listerOnly{dyngraph.NewStatic(graph.Torus(12, 12))}
	opts := Opts{MaxSteps: 1 << 12, Scratch: NewScratch()}
	assertZeroAlloc(t, "parsimonious member-path", func() { Parsimonious(d, 0, 64, opts) })
}

func TestRandomizedPushZeroAlloc(t *testing.T) {
	d := dyngraph.NewStatic(graph.Torus(12, 12))
	r := rng.New(5)
	opts := Opts{MaxSteps: 1 << 12, Scratch: NewScratch()}
	assertZeroAlloc(t, "randomized push (arc-scan)", func() { RandomizedPush(d, 0, 2, r, opts) })
}

// The async engine owes the same contract on all three dispatch paths: a
// warm scratch (event wheel ring/heaps, per-node clocks, adjacency) serves
// every run without heap traffic. Runs are deterministic per clock seed,
// so the warm-up run reaches every buffer's high-water capacity.

func TestAsyncDeltaZeroAlloc(t *testing.T) {
	d := dyngraph.NewStatic(graph.Torus(12, 12))
	opts := Opts{MaxSteps: 1 << 12, Scratch: NewScratch()}
	if res := Async(d, 0, 1, 7, opts); !res.Completed {
		t.Fatal("async on the torus did not complete")
	}
	assertZeroAlloc(t, "async delta", func() { Async(d, 0, 1, 7, opts) })
}

func TestAsyncBatchZeroAlloc(t *testing.T) {
	d := batcherOnly{dyngraph.NewStatic(graph.Torus(12, 12))}
	opts := Opts{MaxSteps: 1 << 12, Scratch: NewScratch()}
	assertZeroAlloc(t, "async batch", func() { Async(d, 0, 1, 7, opts) })
}

func TestAsyncMemberZeroAlloc(t *testing.T) {
	d := listerOnly{dyngraph.NewStatic(graph.Torus(12, 12))}
	opts := Opts{MaxSteps: 1 << 12, Scratch: NewScratch()}
	assertZeroAlloc(t, "async member", func() { Async(d, 0, 1, 7, opts) })
}
