package flood_test

// Million-node single-box pin: the sparse edge-MEG at n = 10⁶ must build,
// step, and flood inside a few hundred MB of tracked state — far under the
// 4 GB acceptance budget — because every structure on the hot path is
// rank-indexed (open addressing), arena-backed (CSR adjacency), or
// summary-swept (two-level bitsets). The footprint is asserted through the
// structures' own Bytes() accounting rather than OS RSS so the bound is
// deterministic and portable.

import (
	"testing"

	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
)

type bytesReporter interface{ Bytes() int64 }

func TestMillionNodeFloodFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node footprint pin skipped under -short")
	}
	spec, err := model.Parse("edgemeg:n=1000000,p=2e-8,q=0.01,stream=v2")
	if err != nil {
		t.Fatal(err)
	}
	d := model.MustBuild(spec, 1)

	// α = p/(p+q) = 2e-6 over ~5·10¹¹ pairs ⇒ ~10⁶ alive edges (mean
	// degree ≈ 2), with ~2·10⁴ edges churning per step. A 512-step
	// flooding window over the evolving graph reaches the vast majority
	// of nodes even though degree-2 stragglers keep it from completing.
	opts := flood.Opts{MaxSteps: 512, Scratch: flood.NewScratch()}
	res := flood.Run(d, 0, opts)
	if res.Informed < 900_000 {
		t.Fatalf("flood reached %d of 1000000 nodes in %d steps; the sparse MEG should inform the vast majority",
			res.Informed, opts.MaxSteps)
	}

	br, ok := d.(bytesReporter)
	if !ok {
		t.Fatalf("%T does not report Bytes(); the million-node budget cannot be audited", d)
	}
	modelBytes := br.Bytes()
	scratchBytes := opts.Scratch.Bytes()
	total := modelBytes + scratchBytes
	t.Logf("resident: model %d MB + scratch %d MB = %d MB", modelBytes>>20, scratchBytes>>20, total>>20)
	const budget = 4 << 30
	if total >= budget {
		t.Fatalf("resident footprint %d bytes (model %d + scratch %d) exceeds the 4 GB single-box budget",
			total, modelBytes, scratchBytes)
	}

	born, died, _, steps := opts.Scratch.ChurnTotals()
	if steps == 0 || born == 0 || died == 0 {
		t.Fatalf("churn totals born=%d died=%d steps=%d; the delta engine should observe churn every step",
			born, died, steps)
	}
	// O(churn) stepping means per-step churn is ~pairs·2pq/(p+q) ≈ 2·10⁴
	// edges, about 2% of the edge set — the engine never touches the
	// other 98%.
	if perStep := born / steps; perStep < 10_000 || perStep > 40_000 {
		t.Errorf("born per step = %d, want ≈ 2e4 for p=2e-8, q=0.01", perStep)
	}
}
