package flood

import (
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/graph"
)

func TestParsimoniousLargeWindowMatchesFlooding(t *testing.T) {
	// With an activity window longer than the flooding time, parsimonious
	// flooding on a static graph behaves exactly like flooding.
	g := graph.Grid(6, 6)
	full := Run(dyngraph.NewStatic(g), 0, Opts{})
	pars := Parsimonious(dyngraph.NewStatic(g), 0, full.Time+1, Opts{})
	if !pars.Completed || pars.Time != full.Time {
		t.Fatalf("parsimonious (window > flood time) = %+v, flooding time %d", pars, full.Time)
	}
}

func TestParsimoniousStaticAlwaysCompletes(t *testing.T) {
	// On a static connected graph even window 1 completes: the frontier
	// nodes are always freshly informed, so BFS still happens.
	g := graph.Path(10)
	res := Parsimonious(dyngraph.NewStatic(g), 0, 1, Opts{MaxSteps: 100})
	if !res.Completed || res.Time != 9 {
		t.Fatalf("window-1 parsimonious on a path: %+v", res)
	}
}

// blinker exposes edges only at chosen times: node 0-1 at t=0, node 0-2 at
// time 5 — nothing else.
type blinker struct{ t int }

func (b *blinker) N() int { return 3 }
func (b *blinker) Step()  { b.t++ }
func (b *blinker) ForEachNeighbor(i int, fn func(j int)) {
	switch {
	case b.t == 0 && i == 0:
		fn(1)
	case b.t == 0 && i == 1:
		fn(0)
	case b.t == 5 && i == 0:
		fn(2)
	case b.t == 5 && i == 2:
		fn(0)
	}
}

func TestParsimoniousCanStrand(t *testing.T) {
	// Flooding completes (node 0 meets node 2 at t=5), but a 2-step
	// activity window silences node 0 before the meeting: node 2 is
	// stranded and the process dies.
	if full := Run(&blinker{}, 0, Opts{MaxSteps: 10}); !full.Completed {
		t.Fatal("plain flooding should complete on the blinker")
	}
	res := Parsimonious(&blinker{}, 0, 2, Opts{MaxSteps: 10, KeepTimeline: true})
	if res.Completed {
		t.Fatal("short-window parsimonious should strand node 2")
	}
	if last := res.Timeline[len(res.Timeline)-1]; last != 2 {
		t.Fatalf("stranded size = %d, want 2", last)
	}
}

func TestParsimoniousWindowCoversLateMeeting(t *testing.T) {
	// A 6-step window keeps node 0 active through the t=5 meeting.
	res := Parsimonious(&blinker{}, 0, 6, Opts{MaxSteps: 10})
	if !res.Completed || res.Time != 6 {
		t.Fatalf("long-window parsimonious: %+v", res)
	}
}

func TestParsimoniousDiesEarlyWithoutScanningToCap(t *testing.T) {
	// Once all windows expire the run returns promptly (timeline length
	// far below MaxSteps).
	res := Parsimonious(&blinker{}, 0, 2, Opts{MaxSteps: 1 << 20, KeepTimeline: true})
	if res.Completed {
		t.Fatal("should not complete")
	}
	if len(res.Timeline) > 10 {
		t.Fatalf("dead process kept running: %d timeline entries", len(res.Timeline))
	}
}

func TestParsimoniousPanics(t *testing.T) {
	g := dyngraph.NewStatic(graph.Cycle(3))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad source did not panic")
			}
		}()
		Parsimonious(g, 9, 1, Opts{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero window did not panic")
			}
		}()
		Parsimonious(g, 0, 0, Opts{})
	}()
}

func TestParsimoniousSingleNode(t *testing.T) {
	b := graph.NewBuilder(1)
	res := Parsimonious(dyngraph.NewStatic(b.Build()), 0, 3, Opts{})
	if !res.Completed || res.Time != 0 {
		t.Fatalf("single node: %+v", res)
	}
}

func TestParsimoniousTimelineMonotone(t *testing.T) {
	g := graph.Grid(5, 5)
	res := Parsimonious(dyngraph.NewStatic(g), 12, 3, Opts{MaxSteps: 100, KeepTimeline: true})
	if !GrowthIsMonotone(res.Timeline) {
		t.Fatal("timeline not monotone")
	}
	if res.HalfTime < 0 {
		t.Fatal("half time not recorded")
	}
}
