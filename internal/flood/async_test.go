package flood_test

// Pins for the asynchronous Poisson-clock engine: the three dispatch paths
// (delta-maintained adjacency, per-step rebuilt adjacency, per-node member
// view) must produce byte-identical Results including the cost fields, the
// trajectory must be a pure function of (graph realization, clockSeed), and
// the rate parameter must obey the law it claims — λ-fold more firings per
// step completes proportionally faster, and λ=1 lands in the same regime as
// synchronous push.

import (
	"reflect"
	"testing"

	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/rng"
)

// TestAsyncDispatchPathsAgree pins the order-insensitive contact draw: the
// delta path (swap-remove perturbs neighbor order), the batch path (rebuilt
// sorted-by-insertion order), and the member path (the model's own order)
// must agree exactly, cost fields included.
func TestAsyncDispatchPathsAgree(t *testing.T) {
	opts := flood.Opts{MaxSteps: 1 << 13, KeepTimeline: true}
	for _, ms := range equivModels {
		for _, seed := range []uint64{3, 77} {
			const clockSeed = 0xA57C
			native := flood.Async(model.MustBuild(ms, seed), 0, 1, clockSeed, opts)
			batch := flood.Async(forceBatchScan{model.MustBuild(ms, seed)}, 0, 1, clockSeed, opts)
			member := flood.Async(forceMemberScan{model.MustBuild(ms, seed)}, 0, 1, clockSeed, opts)
			if !reflect.DeepEqual(native, batch) {
				t.Errorf("%v seed %d: native path %+v != batch path %+v", ms, seed, native, batch)
			}
			if !reflect.DeepEqual(native, member) {
				t.Errorf("%v seed %d: native path %+v != member path %+v", ms, seed, native, member)
			}
			checkCost(t, native)
		}
	}
}

// TestAsyncDeterministicInClockSeed pins the reproducibility contract: the
// trajectory is a pure function of (graph realization, clockSeed), and the
// clock seed genuinely matters.
func TestAsyncDeterministicInClockSeed(t *testing.T) {
	ms := model.New("edgemeg").WithInt("n", 96).WithFloat("p", 0.02).WithFloat("q", 0.18)
	opts := flood.Opts{MaxSteps: 1 << 13, KeepTimeline: true}
	a := flood.Async(model.MustBuild(ms, 5), 0, 1, 11, opts)
	b := flood.Async(model.MustBuild(ms, 5), 0, 1, 11, opts)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same (graph, clockSeed) produced different runs: %+v vs %+v", a, b)
	}
	c := flood.Async(model.MustBuild(ms, 5), 0, 1, 12, opts)
	if reflect.DeepEqual(a.Timeline, c.Timeline) && a.Messages == c.Messages {
		t.Errorf("different clock seeds produced an identical run: %+v", a)
	}
}

// asyncMeanTime runs trials of the async engine on fresh realizations of ms
// and returns the mean completion time in graph steps.
func asyncMeanTime(t *testing.T, ms model.Spec, rate float64, trials int) float64 {
	t.Helper()
	var sum float64
	for trial := 0; trial < trials; trial++ {
		d := model.MustBuild(ms, rng.Seed(9000, uint64(trial)))
		res := flood.Async(d, 0, rate, rng.Seed(9001, uint64(trial)), flood.Opts{MaxSteps: 1 << 14})
		if !res.Completed {
			t.Fatalf("async rate=%v trial %d did not complete on %v", rate, trial, ms)
		}
		sum += float64(res.Time)
	}
	return sum / float64(trials)
}

// TestAsyncRateLaw pins the meaning of λ: quadrupling the clock rate
// completes in about a quarter of the steps (event time per step scales
// with λ), and λ=1 — one expected firing per node per step — lands in the
// same regime as synchronous push:k=1, which gives every informed node
// exactly one transmission per step. Async is moderately faster than push
// at equal budget (a node informed mid-step can fire within that step, and
// firing counts over a step concentrate above their mean for the informed
// frontier); the band below is wide enough to hold for any seed drift yet
// tight enough to catch a rate wired in upside down or off by a factor.
func TestAsyncRateLaw(t *testing.T) {
	ms := model.New("static").With("topology", "complete").WithInt("n", 64)
	const trials = 40
	mean1 := asyncMeanTime(t, ms, 1, trials)
	mean4 := asyncMeanTime(t, ms, 4, trials)
	if ratio := mean1 / mean4; ratio < 2.5 || ratio > 6 {
		t.Errorf("rate 4 should be ~4x faster than rate 1: means %.2f vs %.2f (ratio %.2f)", mean1, mean4, ratio)
	}

	var pushSum float64
	for trial := 0; trial < trials; trial++ {
		d := model.MustBuild(ms, rng.Seed(9000, uint64(trial)))
		res := flood.RandomizedPush(d, 0, 1, rng.New(rng.Seed(9002, uint64(trial))), flood.Opts{MaxSteps: 1 << 14})
		if !res.Completed {
			t.Fatalf("push trial %d did not complete", trial)
		}
		pushSum += float64(res.Time)
	}
	pushMean := pushSum / trials
	if ratio := mean1 / pushMean; ratio < 0.4 || ratio > 1.2 {
		t.Errorf("async rate=1 (mean %.2f) out of band against push:k=1 (mean %.2f): ratio %.2f", mean1, pushMean, ratio)
	}
}
