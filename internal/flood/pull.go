package flood

import (
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// Pull runs the pull-gossip protocol over a dynamic graph: at every step,
// each *uninformed* node queries one uniformly random current neighbor and
// becomes informed if that neighbor is. The paper's conclusions note that
// such protocols "might also be reduced to flooding by folding the actions
// of the protocol into the dynamic graph process" — pull is flooding on the
// virtual graph keeping, per uninformed node, one incoming edge.
//
// Pull inverts flooding's cost profile: per-step work is O(Σ_{uninformed}
// deg) and the saturation phase is fast (stragglers pull from an almost
// fully informed population) while the early phase is slow. The sweep is
// synchronous: all pulls observe the informed set as of the start of the
// step.
func Pull(d dyngraph.Dynamic, source int, r *rng.RNG, opts Opts) Result {
	n := d.N()
	informed, res, done := start(n, source, opts)
	if done {
		return res
	}
	neighbors := neighborSource(d)

	size := 1
	var nbrs []int32
	newly := make([]int32, 0, n)
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		newly = newly[:0]
		for i := 0; i < n; i++ {
			if informed[i] {
				continue
			}
			nbrs = neighbors(i, nbrs[:0])
			if len(nbrs) == 0 {
				continue
			}
			if informed[nbrs[r.Intn(len(nbrs))]] {
				newly = append(newly, int32(i))
			}
		}
		for _, i := range newly {
			informed[i] = true
		}
		size += len(newly)
		if record(&res, opts, n, size, t) {
			return res
		}
		d.Step()
	}
	return res
}
