package flood

import (
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// Pull runs the pull-gossip protocol over a dynamic graph: at every step,
// each *uninformed* node queries one uniformly random current neighbor and
// becomes informed if that neighbor is. The paper's conclusions note that
// such protocols "might also be reduced to flooding by folding the actions
// of the protocol into the dynamic graph process" — pull is flooding on the
// virtual graph keeping, per uninformed node, one incoming edge.
//
// Pull inverts flooding's cost profile: per-step work is O(Σ_{uninformed}
// deg) and the saturation phase is fast (stragglers pull from an almost
// fully informed population) while the early phase is slow. The sweep is
// synchronous: all pulls observe the informed set as of the start of the
// step — successful pulls land in the pending bitset and are committed at
// step end. The uninformed sweep itself iterates the complement of the
// informed bitset word-wise, so fully-informed words (the common case in
// the late phase pull is good at) cost one compare.
//
// Pull deliberately has no engine-side delta fast path: the r.Intn draw
// indexes into the neighbor list, so the trajectory at a fixed seed
// depends on neighbor ORDER, which a scratch-held delta-maintained
// adjacency does not preserve. The incremental win lands model-side
// instead — edge-MEG simulators keep their own neighbor lists live in
// O(churn) per step (in rebuild-identical order), so the per-node batches
// this engine reads no longer pay an O(m) per-step rebuild.
func Pull(d dyngraph.Dynamic, source int, r *rng.RNG, opts Opts) Result {
	n := d.N()
	sc, res, done := start(n, source, opts)
	if done {
		return res
	}
	nr := newNeighborReader(d)
	informed, pending := sc.informed, sc.pending

	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		sc.queue = informed.AppendUnset(sc.queue[:0])
		// Message accounting: only an answered query moves the rumor — a
		// query to an uninformed neighbor transfers nothing and costs
		// nothing — and each success first-informs its own querier, so pull
		// is the zero-waste engine: Useless stays 0 by construction.
		var msgs int64
		for _, i := range sc.queue {
			sc.nbrs = nr.append(int(i), sc.nbrs[:0])
			if len(sc.nbrs) == 0 {
				continue
			}
			if informed.Get(int(sc.nbrs[r.Intn(len(sc.nbrs))])) {
				msgs++
				pending.Set(int(i))
			}
		}
		if record(&res, opts, n, informed.Absorb(&pending), t, msgs) {
			return res
		}
		d.Step()
	}
	return res
}
