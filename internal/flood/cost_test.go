package flood_test

// The message-cost property layer: every registered protocol on every
// registered model must satisfy the conservation law
//
//	Messages == Useless + (Informed - 1)
//
// because every node beyond the source was informed by exactly one
// delivery, and every other delivery was useless. record() enforces it by
// construction; this test pins the msgs each engine FEEDS record() —
// an engine that forgets a transmission (or double-counts one) breaks the
// law through the Useless derivation going negative or the informed count
// outrunning the messages.
//
// Both registries are iterated in full, so a newly registered model or
// protocol is covered automatically — and a registry that shrank fails
// loudly instead of silently testing less.

import (
	"testing"

	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/rng"
)

const (
	costModelStream uint64 = 0xC057 << 1
	costProtoStream uint64 = 0xC057<<1 | 1
)

func TestCostConservationAcrossRegistries(t *testing.T) {
	models := model.Names()
	protocols := protocol.Names()
	if len(models) < 8 {
		t.Fatalf("model registry shrank: %d models %v", len(models), models)
	}
	if len(protocols) < 6 {
		t.Fatalf("protocol registry shrank: %d protocols %v", len(protocols), protocols)
	}
	opts := flood.Opts{MaxSteps: 1 << 11, KeepTimeline: true}
	for _, mname := range models {
		for _, pname := range protocols {
			t.Run(mname+"/"+pname, func(t *testing.T) {
				seed := rng.Seed(42, costModelStream, uint64(len(mname)+13*len(pname)))
				d := model.MustBuild(model.New(mname), seed)
				p := protocol.MustBuild(protocol.New(pname), rng.Seed(seed, costProtoStream))
				res := p.Run(d, 0, opts)
				checkCost(t, res)
				if pname == "pull" && res.Useless != 0 {
					// Pull counts only answered queries, and an answer
					// reaching an already-informed asker never happens —
					// the asker would not have asked.
					t.Errorf("pull reported %d useless messages, want 0", res.Useless)
				}
			})
		}
	}
}

// checkCost asserts the cost invariants every engine owes: conservation,
// non-negative waste, and a cost timeline aligned with the size timeline.
func checkCost(t *testing.T, res flood.Result) {
	t.Helper()
	if res.Useless < 0 {
		t.Errorf("negative Useless %d (an engine reported fewer messages than first-time informs)", res.Useless)
	}
	if got, want := res.Messages, res.Useless+int64(res.Informed-1); got != want {
		t.Errorf("conservation violated: Messages = %d, Useless + (Informed-1) = %d", got, want)
	}
	if int64(res.Informed-1) > res.Messages {
		t.Errorf("informed %d nodes with only %d messages", res.Informed, res.Messages)
	}
	if len(res.CostTimeline) != len(res.Timeline) {
		t.Fatalf("CostTimeline has %d entries, Timeline has %d", len(res.CostTimeline), len(res.Timeline))
	}
	if len(res.CostTimeline) == 0 {
		return
	}
	if res.CostTimeline[0] != 0 {
		t.Errorf("CostTimeline[0] = %d, want 0 (no messages before step 1)", res.CostTimeline[0])
	}
	for i := 1; i < len(res.CostTimeline); i++ {
		if res.CostTimeline[i] < res.CostTimeline[i-1] {
			t.Fatalf("CostTimeline decreases at %d: %d -> %d", i, res.CostTimeline[i-1], res.CostTimeline[i])
		}
	}
	if last := res.CostTimeline[len(res.CostTimeline)-1]; last != res.Messages {
		t.Errorf("CostTimeline ends at %d, Messages = %d", last, res.Messages)
	}
}

// TestCostTimelineOptional pins that cost TOTALS are engine output
// regardless of KeepTimeline — sweeps run timeline-free and still
// checkpoint per-trial costs — and that the per-step series appears only
// when asked for.
func TestCostTimelineOptional(t *testing.T) {
	seed := uint64(7)
	ms := model.New("edgemeg").WithInt("n", 96).WithFloat("p", 0.03).WithFloat("q", 0.2)
	with := flood.Run(model.MustBuild(ms, seed), 0, flood.Opts{MaxSteps: 1 << 12, KeepTimeline: true})
	without := flood.Run(model.MustBuild(ms, seed), 0, flood.Opts{MaxSteps: 1 << 12})
	if without.CostTimeline != nil {
		t.Errorf("KeepTimeline=false still recorded a CostTimeline of %d entries", len(without.CostTimeline))
	}
	if with.Messages != without.Messages || with.Useless != without.Useless {
		t.Errorf("cost totals depend on KeepTimeline: %d/%d vs %d/%d",
			with.Messages, with.Useless, without.Messages, without.Useless)
	}
	if with.Messages == 0 {
		t.Error("flooding an edge-MEG sent no messages")
	}
}
