package flood

import (
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/graph"
)

// TestScratchBytes pins the footprint accessor: zero for a fresh scratch,
// positive once a run has sized the buffers, monotone under a larger
// universe, and stable across repeat runs at the same size (buffers are
// retained, not reallocated).
func TestScratchBytes(t *testing.T) {
	sc := NewScratch()
	if got := sc.Bytes(); got != 0 {
		t.Fatalf("fresh scratch reports %d bytes, want 0", got)
	}

	small := dyngraph.NewStatic(graph.Cycle(64))
	Run(small, 0, Opts{Scratch: sc})
	afterSmall := sc.Bytes()
	if afterSmall <= 0 {
		t.Fatalf("warmed scratch reports %d bytes, want > 0", afterSmall)
	}

	Run(small, 0, Opts{Scratch: sc})
	if got := sc.Bytes(); got != afterSmall {
		t.Fatalf("repeat run changed footprint: %d -> %d", afterSmall, got)
	}

	big := dyngraph.NewStatic(graph.Cycle(4096))
	Run(big, 0, Opts{Scratch: sc})
	if got := sc.Bytes(); got <= afterSmall {
		t.Fatalf("64x universe did not grow footprint: %d -> %d", afterSmall, got)
	}
}
