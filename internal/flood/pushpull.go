package flood

import (
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// PushPull runs the combined push–pull gossip protocol over a dynamic
// graph: at every step each *informed* node transmits to at most k
// uniformly random current neighbors (the §5 randomized push) while each
// *uninformed* node queries one uniformly random current neighbor and
// becomes informed if that neighbor is (pull). It is the classic
// push–pull rumor spreading of Karp et al., run on dynamic snapshots —
// the variant compared across dynamic-graph families by Clementi et al.
// (2013) and Pourmiri–Mans (2020).
//
// The per-step cost profile sits between push and pull: early rounds are
// driven by the cheap push half (few informed nodes transmitting), late
// rounds by the pull half (few uninformed nodes querying an almost fully
// informed population), so neither phase pays the other's weakness. Both
// halves observe the informed set as of the start of the step
// (synchronous sweep), and RNG consumption is in node order — informed
// nodes draw their push targets, uninformed nodes their pull target — so
// equal (graph realization, RNG stream) pairs replay exactly.
//
// Like Pull, this engine keeps reading the model's own neighbor view
// rather than a scratch-held delta adjacency: both the k-subset draw and
// the pull draw index into the neighbor list, pinning the fixed-seed
// trajectory to the model's neighbor order. Edge-MEG models serve that
// view incrementally in O(churn) per step, which is where the delta
// refactor speeds this engine up.
func PushPull(d dyngraph.Dynamic, source, k int, r *rng.RNG, opts Opts) Result {
	if k <= 0 {
		panic("flood: PushPull needs k > 0")
	}
	n := d.N()
	sc, res, done := start(n, source, opts)
	if done {
		return res
	}
	nr := newNeighborReader(d)
	informed, pending := sc.informed, sc.pending

	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		// Message accounting: every push contact delivers the rumor (one
		// message each, useful or not); a pull costs one only when the
		// queried neighbor is informed and answers, like the Pull engine.
		var msgs int64
		for i := 0; i < n; i++ {
			sc.nbrs = nr.append(i, sc.nbrs[:0])
			if len(sc.nbrs) == 0 {
				continue
			}
			if informed.Get(i) {
				// Push: contact at most k distinct random neighbors.
				if len(sc.nbrs) <= k {
					msgs += int64(len(sc.nbrs))
					for _, j := range sc.nbrs {
						pending.Set(int(j))
					}
				} else {
					msgs += int64(k)
					sc.idx = r.SampleDistinctInto(len(sc.nbrs), k, sc.idx[:0])
					for _, idx := range sc.idx {
						pending.Set(int(sc.nbrs[idx]))
					}
				}
			} else if !pending.Get(i) {
				// Pull: query one random neighbor's start-of-step state.
				// A node already pushed to this step skips its pull (and
				// its RNG draw), preserving the engine's historical
				// random-stream consumption.
				if informed.Get(int(sc.nbrs[r.Intn(len(sc.nbrs))])) {
					msgs++
					pending.Set(i)
				}
			}
		}
		if record(&res, opts, n, informed.Absorb(&pending), t, msgs) {
			return res
		}
		d.Step()
	}
	return res
}
