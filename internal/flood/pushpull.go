package flood

import (
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// PushPull runs the combined push–pull gossip protocol over a dynamic
// graph: at every step each *informed* node transmits to at most k
// uniformly random current neighbors (the §5 randomized push) while each
// *uninformed* node queries one uniformly random current neighbor and
// becomes informed if that neighbor is (pull). It is the classic
// push–pull rumor spreading of Karp et al., run on dynamic snapshots —
// the variant compared across dynamic-graph families by Clementi et al.
// (2013) and Pourmiri–Mans (2020).
//
// The per-step cost profile sits between push and pull: early rounds are
// driven by the cheap push half (few informed nodes transmitting), late
// rounds by the pull half (few uninformed nodes querying an almost fully
// informed population), so neither phase pays the other's weakness. Both
// halves observe the informed set as of the start of the step
// (synchronous sweep), and RNG consumption is in node order — informed
// nodes draw their push targets, uninformed nodes their pull target — so
// equal (graph realization, RNG stream) pairs replay exactly.
func PushPull(d dyngraph.Dynamic, source, k int, r *rng.RNG, opts Opts) Result {
	if k <= 0 {
		panic("flood: PushPull needs k > 0")
	}
	n := d.N()
	informed, res, done := start(n, source, opts)
	if done {
		return res
	}
	neighbors := neighborSource(d)

	size := 1
	// pending marks nodes informed during this step (committed after the
	// sweep, so same-step chaining cannot happen).
	pending := make([]bool, n)
	newly := make([]int32, 0, n)
	var nbrs []int32
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		newly = newly[:0]
		for i := 0; i < n; i++ {
			nbrs = neighbors(i, nbrs[:0])
			if len(nbrs) == 0 {
				continue
			}
			if informed[i] {
				// Push: contact at most k distinct random neighbors.
				if len(nbrs) <= k {
					for _, j := range nbrs {
						if !informed[j] && !pending[j] {
							pending[j] = true
							newly = append(newly, j)
						}
					}
				} else {
					for _, idx := range r.SampleDistinct(len(nbrs), k) {
						if j := nbrs[idx]; !informed[j] && !pending[j] {
							pending[j] = true
							newly = append(newly, j)
						}
					}
				}
			} else if !pending[i] {
				// Pull: query one random neighbor's start-of-step state.
				if informed[nbrs[r.Intn(len(nbrs))]] {
					pending[i] = true
					newly = append(newly, int32(i))
				}
			}
		}
		for _, j := range newly {
			informed[j] = true
			pending[j] = false
		}
		size += len(newly)
		if record(&res, opts, n, size, t) {
			return res
		}
		d.Step()
	}
	return res
}
