// Package flood implements the spreading-process engines studied by the
// paper over any dynamic graph: the flooding process of Section 2, the
// randomized k-push protocol of Section 5, pull gossip, the combined
// push–pull protocol, and the parsimonious flooding of Baumann–Crescenzi–
// Fraigniaud [4] — all sharing one Result bookkeeping and phase-tracking
// core (start/record), plus the timeline instrumentation of Lemmas 13–14.
//
// The engines here are the low-level deterministic processes; entry points
// select and build them through the spec-driven registry of
// internal/protocol and run trial grids through internal/study.
//
// Flooding semantics follow the paper exactly: I_0 = {s}, and a node j
// becomes informed at time t+1 iff some edge of the snapshot E_t connects j
// to a node of I_t. Because the graph changes every step, the engine
// rescans every informed node each round — in a dynamic graph a node
// informed long ago can meet an uninformed node at any later time, so
// frontier-only propagation would be incorrect.
package flood

import (
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// Result reports one spreading-process execution.
type Result struct {
	// Time is the completion time: the first t with I_t = [n], or -1 if the
	// run hit MaxSteps (or died) before completing.
	Time int
	// HalfTime is the first t with |I_t| >= n/2 (the spreading phase
	// boundary of Lemma 13), or -1 if never reached.
	HalfTime int
	// Informed is the final informed-set size |I_t| when the run ended
	// (== n iff Completed). It is always populated, unlike Timeline,
	// which requires KeepTimeline.
	Informed int
	// Timeline records |I_t| for t = 0, 1, ..., up to completion or cutoff.
	Timeline []int
	// Completed reports whether every node was informed within MaxSteps.
	Completed bool
	// Messages counts rumor transmissions over the whole run: every
	// delivery of the rumor from an informed node to a neighbor. Flooding
	// transmits once per (informed endpoint, edge) per step — an edge with
	// both endpoints informed costs two messages; push-style engines
	// transmit once per contact; pull once per answered query (a query to
	// an uninformed node transfers nothing and costs nothing).
	Messages int64
	// Useless counts messages that informed no one: deliveries to nodes
	// already informed, or first informed by another message of the same
	// step. Every non-source node is first informed by exactly one
	// message, so the conservation law
	//
	//	Messages == Useless + (Informed - 1)
	//
	// holds exactly for every engine — the cost metric of Ahmadi–Kuhn–
	// Kutten–Molla that the parsimonious strategy competes on.
	Useless int64
	// CostTimeline records cumulative Messages after each step, aligned
	// index-by-index with Timeline (CostTimeline[0] == 0 at t = 0).
	// Recorded only under KeepTimeline, like Timeline.
	CostTimeline []int64
}

// SaturationTime returns Time - HalfTime, the duration of the saturation
// phase (Lemma 14), or -1 when the run did not complete.
func (r Result) SaturationTime() int {
	if !r.Completed || r.HalfTime < 0 {
		return -1
	}
	return r.Time - r.HalfTime
}

// Sentinel returns of TimeToFraction. Both are negative, so callers that
// only care whether a time is available can keep testing `>= 0`; callers
// that care WHY it is not must distinguish them.
const (
	// TimeNever: the process provably never reached the fraction — the
	// trajectory is fully known (run completed, or its whole Timeline is
	// on record) and tops out below the target.
	TimeNever = -1
	// TimeUnknown: the run cannot answer — it was cut off at MaxSteps
	// before reaching the fraction (the process might have reached it
	// later), or it ran without a Timeline and the tracked events do not
	// pin the requested fraction even though the run did reach it.
	TimeUnknown = -2
)

// TimeToFraction returns the first time at which at least frac·n nodes
// were informed. With a recorded Timeline every reached fraction is
// answerable; an unreached one is TimeNever when the recorded trajectory
// is the whole process (Completed) and TimeUnknown when the run was cut
// off, since later steps might have reached it. Without a Timeline
// (KeepTimeline == false) the run only tracked three exact events, and
// the method falls back on them: t = 0 for fractions the source alone
// satisfies, HalfTime when frac·n is exactly the half threshold ⌈n/2⌉,
// and Time for frac == 1 on completed runs. Any other fraction the run
// reached at an unrecorded time — and any fraction beyond Informed on a
// cut-off run — is TimeUnknown; fractions beyond n on a completed run
// are TimeNever.
func (r Result) TimeToFraction(n int, frac float64) int {
	need := int(frac * float64(n))
	if need < 1 {
		need = 1
	}
	if len(r.Timeline) > 0 {
		for t, size := range r.Timeline {
			if size >= need {
				return t
			}
		}
		if r.Completed {
			return TimeNever // full trajectory on record; it never got there
		}
		return TimeUnknown // cut off at MaxSteps short of the fraction
	}
	// Timeline-free fallback: answer from the always-tracked events when
	// they pin the requested fraction exactly.
	switch {
	case need <= 1:
		return 0 // the source satisfies it from the start
	case need > r.Informed:
		if r.Completed {
			return TimeNever // Informed == n is the process maximum
		}
		return TimeUnknown // cut off; the process might still get there
	case need == n && r.Completed:
		return r.Time
	case need == (n+1)/2 && r.HalfTime >= 0:
		return r.HalfTime
	}
	return TimeUnknown // reached, but at a time the run did not record
}

// Opts configures a spreading run.
type Opts struct {
	// MaxSteps caps the run; a run that does not finish within the cap
	// reports Completed == false. Zero means DefaultMaxSteps.
	MaxSteps int
	// KeepTimeline controls whether the full |I_t| series is recorded.
	// When false only Time/HalfTime are tracked, saving memory in sweeps.
	KeepTimeline bool
	// Scratch optionally supplies reusable working state (bitsets, edge
	// and neighbor buffers, queues), amortizing all engine allocations
	// across the runs that share it. Results never depend on whether — or
	// how warm — a Scratch is supplied; nil makes the run allocate private
	// state. A Scratch must not be shared across concurrent runs.
	Scratch *Scratch
}

// maxSteps returns the effective step cap.
func (o Opts) maxSteps() int {
	if o.MaxSteps <= 0 {
		return DefaultMaxSteps
	}
	return o.MaxSteps
}

// DefaultMaxSteps bounds runs whose caller did not choose a cap.
const DefaultMaxSteps = 1 << 20

// start validates the source, readies the run's scratch (the caller's via
// Opts, or fresh private state), initializes the informed set and the
// Result for a run over n nodes (the source is informed at t = 0), and
// reports done == true for the trivial single-node network. It is the
// shared entry bookkeeping of every engine in this package.
func start(n, source int, opts Opts) (sc *Scratch, res Result, done bool) {
	if source < 0 || source >= n {
		panic("flood: source out of range")
	}
	sc = opts.Scratch
	if sc == nil {
		sc = &Scratch{}
	}
	sc.reset(n)
	sc.informed.Set(source)
	res = Result{Time: -1, HalfTime: -1, Informed: 1}
	if opts.KeepTimeline {
		res.Timeline = append(res.Timeline, 1)
		res.CostTimeline = append(res.CostTimeline, 0)
	}
	if 2 >= n {
		res.HalfTime = 0
	}
	if n == 1 {
		res.Time = 0
		res.Completed = true
		return sc, res, true
	}
	return sc, res, false
}

// record updates the result after step t produced informed-set size size
// (engines obtain it by popcount over the informed bitset, usually fused
// into the pending-set commit via bitset.Absorb), reporting whether the
// run completed. It is the shared per-step bookkeeping of every engine in
// this package: a field added to Result is tracked by all protocols at
// once.
//
// msgs is the number of rumor transmissions the step performed; record
// derives Useless from it as msgs minus the step's first-time informs
// (size - previous Informed), which makes the conservation law
// Messages == Useless + (Informed - 1) hold by construction in every
// engine — the property test's anchor.
func record(res *Result, opts Opts, n, size, t int, msgs int64) bool {
	res.Messages += msgs
	res.Useless += msgs - int64(size-res.Informed)
	res.Informed = size
	if opts.KeepTimeline {
		res.Timeline = append(res.Timeline, size)
		res.CostTimeline = append(res.CostTimeline, res.Messages)
	}
	if res.HalfTime < 0 && 2*size >= n {
		res.HalfTime = t + 1
	}
	if size == n {
		res.Time = t + 1
		res.Completed = true
		return true
	}
	return false
}

// neighborReader is the cheapest per-node neighbor accessor d offers: the
// native dyngraph.NeighborLister batch when implemented, else an adapter
// over ForEachNeighbor. Engines that touch nodes individually (member-scan
// flooding, pull, parsimonious, push–pull) build one per run, hoisting the
// interface check out of their per-node hot loops; unlike a bound method
// value, the plain struct keeps the lister path allocation-free.
type neighborReader struct {
	lister dyngraph.NeighborLister // nil when d does not implement it
	d      dyngraph.Dynamic
}

func newNeighborReader(d dyngraph.Dynamic) neighborReader {
	l, _ := d.(dyngraph.NeighborLister)
	return neighborReader{lister: l, d: d}
}

// append appends node i's current neighbors to dst.
func (nr neighborReader) append(i int, dst []int32) []int32 {
	if nr.lister != nil {
		return nr.lister.AppendNeighbors(i, dst)
	}
	return appendViaCallback(nr.d, i, dst)
}

// appendViaCallback adapts ForEachNeighbor. It lives outside
// neighborReader.append so that the closure capturing dst — which costs a
// heap cell per call — is only materialized on the callback path, keeping
// the lister path allocation-free.
func appendViaCallback(d dyngraph.Dynamic, i int, dst []int32) []int32 {
	d.ForEachNeighbor(i, func(j int) {
		dst = append(dst, int32(j))
	})
	return dst
}

// Run floods d from source and returns the result. It panics if source is
// out of range (a programming error in the caller).
//
// The engine picks the cheapest snapshot access the model offers. Models
// implementing dyngraph.DeltaBatcher are flooded by the incremental
// engine: a persistent adjacency maintained from per-step churn plus an
// active-set sweep that scans only neighborhoods which can still spread —
// O(churn + frontier) per step instead of O(m). Models implementing only
// dyngraph.Batcher are flooded by a linear scan of the flat edge batch —
// one contiguous read per snapshot, no per-edge callbacks and no adjacency
// materialization; directed virtual graphs implementing
// dyngraph.ArcBatcher get the same scan with one-way propagation. All
// other models are flooded by rescanning the informed set against per-node
// neighbor batches. Every path computes the identical deterministic
// process I_0 = {s}, I_{t+1} = I_t ∪ Γ_t(I_t), so Results agree exactly
// for a given model state — pinned per path by the fixed-seed equivalence
// tests.
func Run(d dyngraph.Dynamic, source int, opts Opts) Result {
	n := d.N()
	sc, res, done := start(n, source, opts)
	if done {
		return res
	}
	if ab, ok := d.(dyngraph.ArcBatcher); ok {
		runArcScan(ab, d, sc, opts, &res)
	} else if db, ok := d.(dyngraph.DeltaBatcher); ok {
		runDeltaScan(db, d, sc, opts, &res)
	} else if b, ok := d.(dyngraph.Batcher); ok {
		runEdgeScan(b, d, sc, opts, &res)
	} else {
		runMemberScan(d, sc, opts, &res)
	}
	return res
}

// runEdgeScan floods over the batch snapshot view: every step scans the
// flat edge list once, marking the far side of every edge that crosses the
// informed-set boundary in the pending bitset — a branch-light loop whose
// membership tests are single-word mask probes, with no per-step dedup
// bookkeeping because bit sets are idempotent. Pending bits are committed
// into the informed set only at step end (Absorb), so the scan propagates
// from I_t alone: chained same-step propagation would be wrong in a
// dynamic graph.
func runEdgeScan(b dyngraph.Batcher, d dyngraph.Dynamic, sc *Scratch, opts Opts, res *Result) {
	// Hoist the bitset headers into locals: accessed through sc they would
	// be reloaded after every store, since the compiler cannot prove the
	// bit writes don't alias the scratch struct. The words arrays stay
	// shared; only the headers are copied.
	informed, pending := sc.informed, sc.pending
	n := informed.Len()
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		sc.edges = b.AppendEdges(sc.edges[:0])
		var msgs int64
		for _, e := range sc.edges {
			ui, vi := informed.Get(int(e.U)), informed.Get(int(e.V))
			if ui {
				msgs++
				if !vi {
					pending.Set(int(e.V))
				}
			}
			if vi {
				msgs++
				if !ui {
					pending.Set(int(e.U))
				}
			}
		}
		if record(res, opts, n, informed.Absorb(&pending), t, msgs) {
			return
		}
		d.Step()
	}
}

// runDeltaScan is the incremental flooding engine for models that expose
// their per-step churn (dyngraph.DeltaBatcher). It seeds a persistent
// adjacency from one snapshot batch, then per step (a) scans only the
// ACTIVE nodes — informed nodes that may still have uninformed neighbors —
// and (b) applies the model's born/died deltas to the adjacency instead of
// rescanning the snapshot, for O(churn + Σ_{i active} deg i) work per step
// instead of O(m).
//
// The active set makes the dynamic-graph rescan rule cheap without
// breaking it: a node leaves the set only after a scan finds every current
// neighbor informed, and from then on its neighborhood can gain an
// uninformed member only through a born edge — deaths cannot, and informed
// nodes never revert — so re-activating the informed endpoints of born
// edges restores the invariant that every informed node with an uninformed
// neighbor is scanned. In the saturation phase (Lemma 14) the active set
// collapses to the few nodes adjacent to stragglers, which is where the
// asymptotic win over the full edge scan comes from.
//
// The informed-set trajectory is the exact flooding process — identical to
// the edge-scan and member-scan engines for a given model state, because
// marking the uninformed neighbors of every informed node that has any is
// the same set union regardless of scan order.
//
// The active and pending sets are two-level bitsets and the informed-set
// size is tracked incrementally (AbsorbInto returns the step's new
// members), so the per-step set work is O(active words + frontier), not
// O(n/64): no flat sweep over the universe survives in the loop, which is
// what keeps a million-node step proportional to churn + frontier once
// the spreading process has localized.
func runDeltaScan(db dyngraph.DeltaBatcher, d dyngraph.Dynamic, sc *Scratch, opts Opts, res *Result) {
	n := sc.informed.Len()
	sc.edges = dyngraph.AppendEdges(d, sc.edges[:0])
	sc.adj.Reset(n)
	sc.adj.AddEdges(sc.edges)
	sc.active.Reset(n)
	sc.fresh.Reset(n)
	// load maintains Σ_{i ∈ informed} deg(i) over the CURRENT adjacency —
	// the step's message count under flooding semantics (every informed
	// endpoint of every edge transmits once per step, whether or not the
	// active-set sweep visits it). Maintained incrementally from the same
	// events the active set consumes: + deg of each newly informed node,
	// ±1 per informed endpoint of each born/died edge — so the cost matches
	// the full edge scan exactly without an O(m) rescan.
	var load int64
	// Seed the active set with the informed set (the source).
	sc.queue = sc.informed.AppendMembers(sc.queue[:0])
	size := len(sc.queue)
	for _, i := range sc.queue {
		sc.active.Set(int(i))
		load += int64(sc.adj.Degree(int(i)))
	}
	informed, pending, active := sc.informed, &sc.fresh, &sc.active
	mr, _ := db.(dyngraph.MoveReporter)
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		msgs := load
		sc.queue = active.AppendMembers(sc.queue[:0])
		for _, ii := range sc.queue {
			i := int(ii)
			frontier := false
			for _, j := range sc.adj.Neighbors(i) {
				if !informed.Get(int(j)) {
					pending.Set(int(j))
					frontier = true
				}
			}
			if !frontier {
				active.Unset(i)
			}
		}
		// The pending set is exactly the newly informed nodes (pending is
		// only ever set on uninformed nodes, and informed is frozen within
		// a step): list them before the absorb clears the set, then
		// activate them — they may have uninformed neighbors of their own.
		sc.newly = pending.AppendMembers(sc.newly[:0])
		size += pending.AbsorbInto(&informed)
		for _, f := range sc.newly {
			active.Set(int(f))
			load += int64(sc.adj.Degree(int(f)))
		}
		if record(res, opts, n, size, t, msgs) {
			return
		}
		d.Step()
		sc.born, sc.died = db.AppendDeltas(sc.born[:0], sc.died[:0])
		sc.adj.Apply(sc.born, sc.died)
		sc.bornTotal += int64(len(sc.born))
		sc.diedTotal += int64(len(sc.died))
		if mr != nil {
			sc.movedTotal += int64(mr.MovedLastStep())
		}
		sc.deltaSteps++
		for _, e := range sc.born {
			if informed.Get(int(e.U)) {
				active.Set(int(e.U))
				load++
			}
			if informed.Get(int(e.V)) {
				active.Set(int(e.V))
				load++
			}
		}
		for _, e := range sc.died {
			if informed.Get(int(e.U)) {
				load--
			}
			if informed.Get(int(e.V)) {
				load--
			}
		}
	}
}

// runArcScan is runEdgeScan for directed virtual graphs: arcs carry
// information only from tail to head, so only U → V with U informed and V
// not marks pending.
func runArcScan(ab dyngraph.ArcBatcher, d dyngraph.Dynamic, sc *Scratch, opts Opts, res *Result) {
	informed, pending := sc.informed, sc.pending
	n := informed.Len()
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		sc.edges = ab.AppendArcs(sc.edges[:0])
		var msgs int64
		for _, e := range sc.edges {
			if informed.Get(int(e.U)) {
				msgs++ // an informed tail transmits along every arc it keeps
				if !informed.Get(int(e.V)) {
					pending.Set(int(e.V))
				}
			}
		}
		if record(res, opts, n, informed.Absorb(&pending), t, msgs) {
			return
		}
		d.Step()
	}
}

// runMemberScan floods by rescanning every informed node's current
// neighbors — the fallback for models without batch snapshot access. The
// member list is rebuilt each round from the informed bitset by word-level
// iteration, and neighbors are marked pending and committed at step end,
// like the scan engines.
func runMemberScan(d dyngraph.Dynamic, sc *Scratch, opts Opts, res *Result) {
	informed, pending := sc.informed, sc.pending
	n := informed.Len()
	nr := newNeighborReader(d)
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		// Scan snapshot E_t for edges leaving the informed set.
		sc.queue = informed.AppendMembers(sc.queue[:0])
		var msgs int64
		for _, i := range sc.queue {
			sc.nbrs = nr.append(int(i), sc.nbrs[:0])
			msgs += int64(len(sc.nbrs)) // one transmission per neighbor
			for _, j := range sc.nbrs {
				pending.Set(int(j))
			}
		}
		if record(res, opts, n, informed.Absorb(&pending), t, msgs) {
			return
		}
		d.Step()
	}
}

// RandomizedPush floods d with the §5 randomized protocol: each informed
// node contacts at most k uniformly random current neighbors per step. It
// is implemented, as the paper suggests, as plain flooding on the virtual
// subsampled dynamic graph — which implements dyngraph.ArcBatcher, so the
// flood runs as a directed arc scan. With a Scratch in opts the
// subsampled-graph wrapper itself is reused across trials.
func RandomizedPush(d dyngraph.Dynamic, source, k int, r *rng.RNG, opts Opts) Result {
	if opts.Scratch != nil {
		return Run(opts.Scratch.subsample(d, k, r), source, opts)
	}
	return Run(dyngraph.NewSubsample(d, k, r), source, opts)
}
