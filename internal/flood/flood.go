// Package flood implements the spreading-process engines studied by the
// paper over any dynamic graph: the flooding process of Section 2, the
// randomized k-push protocol of Section 5, pull gossip, the combined
// push–pull protocol, and the parsimonious flooding of Baumann–Crescenzi–
// Fraigniaud [4] — all sharing one Result bookkeeping and phase-tracking
// core (start/record), plus the timeline instrumentation of Lemmas 13–14.
//
// The engines here are the low-level deterministic processes; entry points
// select and build them through the spec-driven registry of
// internal/protocol and run trial grids through internal/study.
//
// Flooding semantics follow the paper exactly: I_0 = {s}, and a node j
// becomes informed at time t+1 iff some edge of the snapshot E_t connects j
// to a node of I_t. Because the graph changes every step, the engine
// rescans every informed node each round — in a dynamic graph a node
// informed long ago can meet an uninformed node at any later time, so
// frontier-only propagation would be incorrect.
package flood

import (
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// Result reports one spreading-process execution.
type Result struct {
	// Time is the completion time: the first t with I_t = [n], or -1 if the
	// run hit MaxSteps (or died) before completing.
	Time int
	// HalfTime is the first t with |I_t| >= n/2 (the spreading phase
	// boundary of Lemma 13), or -1 if never reached.
	HalfTime int
	// Informed is the final informed-set size |I_t| when the run ended
	// (== n iff Completed). It is always populated, unlike Timeline,
	// which requires KeepTimeline.
	Informed int
	// Timeline records |I_t| for t = 0, 1, ..., up to completion or cutoff.
	Timeline []int
	// Completed reports whether every node was informed within MaxSteps.
	Completed bool
}

// SaturationTime returns Time - HalfTime, the duration of the saturation
// phase (Lemma 14), or -1 when the run did not complete.
func (r Result) SaturationTime() int {
	if !r.Completed || r.HalfTime < 0 {
		return -1
	}
	return r.Time - r.HalfTime
}

// TimeToFraction returns the first time at which at least frac·n nodes
// were informed, or -1 if that time is unknown. With a recorded Timeline
// every fraction is answerable. Without one (KeepTimeline == false) the
// run only tracked three exact events, and the method falls back on them:
// t = 0 for fractions the source alone satisfies, HalfTime when frac·n is
// exactly the half threshold ⌈n/2⌉, and Time for frac == 1 on completed
// runs. Any other fraction — including ones the run did reach, at an
// unrecorded time — returns -1; fractions beyond the final Informed count
// return -1 always.
func (r Result) TimeToFraction(n int, frac float64) int {
	need := int(frac * float64(n))
	if need < 1 {
		need = 1
	}
	if len(r.Timeline) > 0 {
		for t, size := range r.Timeline {
			if size >= need {
				return t
			}
		}
		return -1
	}
	// Timeline-free fallback: answer from the always-tracked events when
	// they pin the requested fraction exactly.
	switch {
	case need > r.Informed:
		return -1 // never reached
	case need <= 1:
		return 0 // the source satisfies it from the start
	case need == n && r.Completed:
		return r.Time
	case need == (n+1)/2 && r.HalfTime >= 0:
		return r.HalfTime
	}
	return -1
}

// Opts configures a spreading run.
type Opts struct {
	// MaxSteps caps the run; a run that does not finish within the cap
	// reports Completed == false. Zero means DefaultMaxSteps.
	MaxSteps int
	// KeepTimeline controls whether the full |I_t| series is recorded.
	// When false only Time/HalfTime are tracked, saving memory in sweeps.
	KeepTimeline bool
}

// maxSteps returns the effective step cap.
func (o Opts) maxSteps() int {
	if o.MaxSteps <= 0 {
		return DefaultMaxSteps
	}
	return o.MaxSteps
}

// DefaultMaxSteps bounds runs whose caller did not choose a cap.
const DefaultMaxSteps = 1 << 20

// start validates the source, initializes the informed set and the Result
// for a run over n nodes (the source is informed at t = 0), and reports
// done == true for the trivial single-node network. It is the shared
// entry bookkeeping of every engine in this package.
func start(n, source int, opts Opts) (informed []bool, res Result, done bool) {
	if source < 0 || source >= n {
		panic("flood: source out of range")
	}
	informed = make([]bool, n)
	informed[source] = true
	res = Result{Time: -1, HalfTime: -1, Informed: 1}
	if opts.KeepTimeline {
		res.Timeline = append(res.Timeline, 1)
	}
	if 2 >= n {
		res.HalfTime = 0
	}
	if n == 1 {
		res.Time = 0
		res.Completed = true
		return informed, res, true
	}
	return informed, res, false
}

// record updates the result after step t produced informed-set size size,
// reporting whether the run completed. It is the shared per-step
// bookkeeping of every engine in this package: a field added to Result is
// tracked by all protocols at once.
func record(res *Result, opts Opts, n, size, t int) bool {
	res.Informed = size
	if opts.KeepTimeline {
		res.Timeline = append(res.Timeline, size)
	}
	if res.HalfTime < 0 && 2*size >= n {
		res.HalfTime = t + 1
	}
	if size == n {
		res.Time = t + 1
		res.Completed = true
		return true
	}
	return false
}

// neighborSource returns the cheapest per-node neighbor accessor d offers:
// the native dyngraph.NeighborLister batch when implemented, else an
// adapter over ForEachNeighbor. Engines that touch nodes individually
// (member-scan flooding, pull, parsimonious, push–pull) call this once per
// run, hoisting the interface check out of their per-node hot loops.
func neighborSource(d dyngraph.Dynamic) func(i int, dst []int32) []int32 {
	if l, ok := d.(dyngraph.NeighborLister); ok {
		return l.AppendNeighbors
	}
	return func(i int, dst []int32) []int32 {
		d.ForEachNeighbor(i, func(j int) {
			dst = append(dst, int32(j))
		})
		return dst
	}
}

// Run floods d from source and returns the result. It panics if source is
// out of range (a programming error in the caller).
//
// The engine picks the cheapest snapshot access the model offers. Models
// implementing dyngraph.Batcher are flooded by a linear scan of the flat
// edge batch — one contiguous read per snapshot, no per-edge callbacks and
// no adjacency materialization. All other models are flooded by rescanning
// the informed set against per-node neighbor batches. Both paths compute
// the identical deterministic process I_0 = {s}, I_{t+1} = I_t ∪ Γ_t(I_t),
// so Results agree exactly for a given model state.
func Run(d dyngraph.Dynamic, source int, opts Opts) Result {
	n := d.N()
	informed, res, done := start(n, source, opts)
	if done {
		return res
	}
	if b, ok := d.(dyngraph.Batcher); ok {
		runEdgeScan(b, d, informed, opts, &res)
	} else {
		runMemberScan(d, informed, source, opts, &res)
	}
	return res
}

// runEdgeScan floods over the batch snapshot view: every step scans the
// flat edge list once, collecting edges that cross the informed-set
// boundary. Nodes reached this step are marked pending, not informed, so
// the scan only propagates from I_t (chained same-step propagation would
// be wrong in a dynamic graph).
func runEdgeScan(b dyngraph.Batcher, d dyngraph.Dynamic, informed []bool, opts Opts, res *Result) {
	n := len(informed)
	size := 1
	pending := make([]bool, n)
	newly := make([]int32, 0, n)
	var edges []dyngraph.Edge
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		edges = b.AppendEdges(edges[:0])
		newly = newly[:0]
		for _, e := range edges {
			if informed[e.U] {
				if !informed[e.V] && !pending[e.V] {
					pending[e.V] = true
					newly = append(newly, e.V)
				}
			} else if informed[e.V] && !pending[e.U] {
				pending[e.U] = true
				newly = append(newly, e.U)
			}
		}
		for _, v := range newly {
			informed[v] = true
			pending[v] = false
		}
		size += len(newly)
		if record(res, opts, n, size, t) {
			return
		}
		d.Step()
	}
}

// runMemberScan floods by rescanning every informed node's current
// neighbors — the fallback for models without batch snapshot access, and
// the only correct option for directed virtual graphs (push subsampling),
// whose uninformed nodes' neighbor sets must never be evaluated.
func runMemberScan(d dyngraph.Dynamic, informed []bool, source int, opts Opts, res *Result) {
	n := len(informed)
	neighbors := neighborSource(d)
	// members holds the informed set; scanned fully each round.
	members := make([]int32, 1, n)
	members[0] = int32(source)
	newly := make([]int32, 0, n)
	var nbrs []int32
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		// Scan snapshot E_t for edges leaving the informed set.
		newly = newly[:0]
		for _, i := range members {
			nbrs = neighbors(int(i), nbrs[:0])
			for _, j := range nbrs {
				if !informed[j] {
					informed[j] = true
					newly = append(newly, j)
				}
			}
		}
		members = append(members, newly...)
		if record(res, opts, n, len(members), t) {
			return
		}
		d.Step()
	}
}

// RandomizedPush floods d with the §5 randomized protocol: each informed
// node contacts at most k uniformly random current neighbors per step. It
// is implemented, as the paper suggests, as plain flooding on the virtual
// subsampled dynamic graph.
func RandomizedPush(d dyngraph.Dynamic, source, k int, r *rng.RNG, opts Opts) Result {
	return Run(dyngraph.NewSubsample(d, k, r), source, opts)
}
