// Package flood implements the flooding process of Section 2 of the paper
// over any dynamic graph, plus the timeline instrumentation (spreading and
// saturation phases, Lemmas 13–14) and the randomized push-gossip variant
// sketched in the conclusions.
//
// Flooding semantics follow the paper exactly: I_0 = {s}, and a node j
// becomes informed at time t+1 iff some edge of the snapshot E_t connects j
// to a node of I_t. Because the graph changes every step, the engine
// rescans every informed node each round — in a dynamic graph a node
// informed long ago can meet an uninformed node at any later time, so
// frontier-only propagation would be incorrect.
package flood

import (
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// Result reports one flooding execution.
type Result struct {
	// Time is the flooding time: the first t with I_t = [n], or -1 if the
	// run hit MaxSteps before completing.
	Time int
	// HalfTime is the first t with |I_t| >= n/2 (the spreading phase
	// boundary of Lemma 13), or -1 if never reached.
	HalfTime int
	// Informed is the final informed-set size |I_t| when the run ended
	// (== n iff Completed). It is always populated, unlike Timeline,
	// which requires KeepTimeline.
	Informed int
	// Timeline records |I_t| for t = 0, 1, ..., up to completion or cutoff.
	Timeline []int
	// Completed reports whether every node was informed within MaxSteps.
	Completed bool
}

// SaturationTime returns Time - HalfTime, the duration of the saturation
// phase (Lemma 14), or -1 when the run did not complete.
func (r Result) SaturationTime() int {
	if !r.Completed || r.HalfTime < 0 {
		return -1
	}
	return r.Time - r.HalfTime
}

// TimeToFraction returns the first time at which at least frac·n nodes were
// informed, or -1 if the run never reached it.
func (r Result) TimeToFraction(n int, frac float64) int {
	need := int(frac * float64(n))
	if need < 1 {
		need = 1
	}
	for t, size := range r.Timeline {
		if size >= need {
			return t
		}
	}
	return -1
}

// Opts configures a flooding run.
type Opts struct {
	// MaxSteps caps the run; a run that does not finish within the cap
	// reports Completed == false. Zero means DefaultMaxSteps.
	MaxSteps int
	// KeepTimeline controls whether the full |I_t| series is recorded.
	// When false only Time/HalfTime are tracked, saving memory in sweeps.
	KeepTimeline bool
}

// DefaultMaxSteps bounds runs whose caller did not choose a cap.
const DefaultMaxSteps = 1 << 20

// Run floods d from source and returns the result. It panics if source is
// out of range (a programming error in the caller).
//
// The engine picks the cheapest snapshot access the model offers. Models
// implementing dyngraph.Batcher are flooded by a linear scan of the flat
// edge batch — one contiguous read per snapshot, no per-edge callbacks and
// no adjacency materialization. All other models are flooded by rescanning
// the informed set against per-node neighbor batches. Both paths compute
// the identical deterministic process I_0 = {s}, I_{t+1} = I_t ∪ Γ_t(I_t),
// so Results agree exactly for a given model state.
func Run(d dyngraph.Dynamic, source int, opts Opts) Result {
	n := d.N()
	if source < 0 || source >= n {
		panic("flood: source out of range")
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	informed := make([]bool, n)
	informed[source] = true

	res := Result{Time: -1, HalfTime: -1, Informed: 1}
	if opts.KeepTimeline {
		res.Timeline = append(res.Timeline, 1)
	}
	if 2*1 >= n {
		res.HalfTime = 0
	}
	if n == 1 {
		res.Time = 0
		res.Completed = true
		return res
	}

	if b, ok := d.(dyngraph.Batcher); ok {
		runEdgeScan(b, d, informed, source, maxSteps, opts, &res)
	} else {
		runMemberScan(d, informed, source, maxSteps, opts, &res)
	}
	return res
}

// runEdgeScan floods over the batch snapshot view: every step scans the
// flat edge list once, collecting edges that cross the informed-set
// boundary. Nodes reached this step are marked pending, not informed, so
// the scan only propagates from I_t (chained same-step propagation would
// be wrong in a dynamic graph).
func runEdgeScan(b dyngraph.Batcher, d dyngraph.Dynamic, informed []bool, source, maxSteps int, opts Opts, res *Result) {
	n := len(informed)
	size := 1
	pending := make([]bool, n)
	newly := make([]int32, 0, n)
	var edges []dyngraph.Edge
	for t := 0; t < maxSteps; t++ {
		edges = b.AppendEdges(edges[:0])
		newly = newly[:0]
		for _, e := range edges {
			if informed[e.U] {
				if !informed[e.V] && !pending[e.V] {
					pending[e.V] = true
					newly = append(newly, e.V)
				}
			} else if informed[e.V] && !pending[e.U] {
				pending[e.U] = true
				newly = append(newly, e.U)
			}
		}
		for _, v := range newly {
			informed[v] = true
			pending[v] = false
		}
		size += len(newly)
		if record(res, opts, n, size, t) {
			return
		}
		d.Step()
	}
}

// runMemberScan floods by rescanning every informed node's current
// neighbors — the fallback for models without batch snapshot access, and
// the only correct option for directed virtual graphs (push subsampling),
// whose uninformed nodes' neighbor sets must never be evaluated.
func runMemberScan(d dyngraph.Dynamic, informed []bool, source, maxSteps int, opts Opts, res *Result) {
	n := len(informed)
	// members holds the informed set; scanned fully each round.
	members := make([]int32, 1, n)
	members[0] = int32(source)
	newly := make([]int32, 0, n)
	var nbrs []int32
	for t := 0; t < maxSteps; t++ {
		// Scan snapshot E_t for edges leaving the informed set.
		newly = newly[:0]
		for _, i := range members {
			nbrs = dyngraph.AppendNeighbors(d, int(i), nbrs[:0])
			for _, j := range nbrs {
				if !informed[j] {
					informed[j] = true
					newly = append(newly, j)
				}
			}
		}
		members = append(members, newly...)
		if record(res, opts, n, len(members), t) {
			return
		}
		d.Step()
	}
}

// record updates the result after step t produced informed-set size size,
// reporting whether the run completed.
func record(res *Result, opts Opts, n, size, t int) bool {
	res.Informed = size
	if opts.KeepTimeline {
		res.Timeline = append(res.Timeline, size)
	}
	if res.HalfTime < 0 && 2*size >= n {
		res.HalfTime = t + 1
	}
	if size == n {
		res.Time = t + 1
		res.Completed = true
		return true
	}
	return false
}

// RandomizedPush floods d with the §5 randomized protocol: each informed
// node contacts at most k uniformly random current neighbors per step. It
// is implemented, as the paper suggests, as plain flooding on the virtual
// subsampled dynamic graph.
func RandomizedPush(d dyngraph.Dynamic, source, k int, r *rng.RNG, opts Opts) Result {
	return Run(dyngraph.NewSubsample(d, k, r), source, opts)
}
