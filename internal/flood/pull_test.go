package flood

import (
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestPullCompleteGraphCompletes(t *testing.T) {
	d := dyngraph.NewStatic(graph.Complete(64))
	res := Pull(d, 0, rng.New(3), Opts{MaxSteps: 10000, KeepTimeline: true})
	if !res.Completed {
		t.Fatal("pull did not complete on K64")
	}
	if !GrowthIsMonotone(res.Timeline) {
		t.Fatal("timeline not monotone")
	}
	// Pull on K_n needs Θ(log n) + coupon-ish early phase; it cannot be 1.
	if res.Time < 3 {
		t.Fatalf("pull suspiciously fast: %d", res.Time)
	}
}

func TestPullSlowerEarlyFasterLate(t *testing.T) {
	// Compared to push-style flooding, pull's early phase is slow (few
	// informed to find) — total time must exceed flooding's on K_n.
	full := Run(dyngraph.NewStatic(graph.Complete(64)), 0, Opts{})
	pull := Pull(dyngraph.NewStatic(graph.Complete(64)), 0, rng.New(5), Opts{MaxSteps: 1000})
	if pull.Time <= full.Time {
		t.Fatalf("pull (%d) should be slower than flooding (%d) on K_n", pull.Time, full.Time)
	}
}

func TestPullSynchronousSweep(t *testing.T) {
	// On a path with the source at one end, information moves at most one
	// hop per step under pull (a node informed this step must not serve
	// later pulls in the same step).
	n := 6
	res := Pull(dyngraph.NewStatic(graph.Path(n)), 0, rng.New(7), Opts{MaxSteps: 10000})
	if !res.Completed {
		t.Fatal("pull on path did not complete")
	}
	if res.Time < n-1 {
		t.Fatalf("pull time %d beats the hop limit %d — sweep not synchronous", res.Time, n-1)
	}
}

func TestPullIsolatedNodesStall(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	res := Pull(dyngraph.NewStatic(b.Build()), 0, rng.New(9), Opts{MaxSteps: 200})
	if res.Completed {
		t.Fatal("pull completed despite isolated node")
	}
}

func TestPullSingleNodeAndPanics(t *testing.T) {
	b := graph.NewBuilder(1)
	res := Pull(dyngraph.NewStatic(b.Build()), 0, rng.New(1), Opts{})
	if !res.Completed || res.Time != 0 {
		t.Fatalf("single-node pull: %+v", res)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad source did not panic")
		}
	}()
	Pull(dyngraph.NewStatic(graph.Cycle(3)), 9, rng.New(1), Opts{})
}
