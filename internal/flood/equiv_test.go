package flood_test

// Fixed-seed equivalence pins of the bitset/scratch engine refactor AND
// the incremental-dynamics (delta) refactor on top of it: every engine in
// this package is re-run against a verbatim copy of its pre-refactor
// implementation ([]bool informed sets, per-run allocation, incremental
// size bookkeeping) over every registered model, and must return
// byte-identical Results, timeline included. Because delta-capable models
// steer flood.Run and Parsimonious onto the adjacency-backed incremental
// engines, those paths are pinned here too — directly, via forced batch
// fallback, and through the generic Deltifier adapter.
//
// One deliberate behavior change is NOT covered by these pins: the
// dyngraph.Subsample sampling scheme moved from one sequential RNG stream
// to per-(node, epoch) derived streams so that its arc batch and its lazy
// per-node view expose the same virtual graph. Randomized-push
// trajectories at a fixed seed therefore differ from pre-refactor binaries
// (same law, different draws); what is pinned here instead is that the new
// directed arc-scan engine and the pre-refactor member-scan engine agree
// exactly on the subsampled graph — the equivalence that scheme buys.

import (
	"reflect"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/graph"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/rng"
)

// ---------------------------------------------------------------------------
// Reference implementations: the engines as they were before the refactor,
// copied verbatim (modulo exported names and the Opts.Scratch field, which
// they ignore).

func refMaxSteps(o flood.Opts) int {
	if o.MaxSteps <= 0 {
		return flood.DefaultMaxSteps
	}
	return o.MaxSteps
}

func refStart(n, source int, opts flood.Opts) (informed []bool, res flood.Result, done bool) {
	if source < 0 || source >= n {
		panic("flood: source out of range")
	}
	informed = make([]bool, n)
	informed[source] = true
	res = flood.Result{Time: -1, HalfTime: -1, Informed: 1}
	if opts.KeepTimeline {
		res.Timeline = append(res.Timeline, 1)
	}
	if 2 >= n {
		res.HalfTime = 0
	}
	if n == 1 {
		res.Time = 0
		res.Completed = true
		return informed, res, true
	}
	return informed, res, false
}

func refRecord(res *flood.Result, opts flood.Opts, n, size, t int) bool {
	res.Informed = size
	if opts.KeepTimeline {
		res.Timeline = append(res.Timeline, size)
	}
	if res.HalfTime < 0 && 2*size >= n {
		res.HalfTime = t + 1
	}
	if size == n {
		res.Time = t + 1
		res.Completed = true
		return true
	}
	return false
}

func refNeighborSource(d dyngraph.Dynamic) func(i int, dst []int32) []int32 {
	if l, ok := d.(dyngraph.NeighborLister); ok {
		return l.AppendNeighbors
	}
	return func(i int, dst []int32) []int32 {
		d.ForEachNeighbor(i, func(j int) {
			dst = append(dst, int32(j))
		})
		return dst
	}
}

func refRun(d dyngraph.Dynamic, source int, opts flood.Opts) flood.Result {
	n := d.N()
	informed, res, done := refStart(n, source, opts)
	if done {
		return res
	}
	if b, ok := d.(dyngraph.Batcher); ok {
		refEdgeScan(b, d, informed, opts, &res)
	} else {
		refMemberScan(d, informed, source, opts, &res)
	}
	return res
}

func refEdgeScan(b dyngraph.Batcher, d dyngraph.Dynamic, informed []bool, opts flood.Opts, res *flood.Result) {
	n := len(informed)
	size := 1
	pending := make([]bool, n)
	newly := make([]int32, 0, n)
	var edges []dyngraph.Edge
	maxSteps := refMaxSteps(opts)
	for t := 0; t < maxSteps; t++ {
		edges = b.AppendEdges(edges[:0])
		newly = newly[:0]
		for _, e := range edges {
			if informed[e.U] {
				if !informed[e.V] && !pending[e.V] {
					pending[e.V] = true
					newly = append(newly, e.V)
				}
			} else if informed[e.V] && !pending[e.U] {
				pending[e.U] = true
				newly = append(newly, e.U)
			}
		}
		for _, v := range newly {
			informed[v] = true
			pending[v] = false
		}
		size += len(newly)
		if refRecord(res, opts, n, size, t) {
			return
		}
		d.Step()
	}
}

func refMemberScan(d dyngraph.Dynamic, informed []bool, source int, opts flood.Opts, res *flood.Result) {
	n := len(informed)
	neighbors := refNeighborSource(d)
	members := make([]int32, 1, n)
	members[0] = int32(source)
	newly := make([]int32, 0, n)
	var nbrs []int32
	maxSteps := refMaxSteps(opts)
	for t := 0; t < maxSteps; t++ {
		newly = newly[:0]
		for _, i := range members {
			nbrs = neighbors(int(i), nbrs[:0])
			for _, j := range nbrs {
				if !informed[j] {
					informed[j] = true
					newly = append(newly, j)
				}
			}
		}
		members = append(members, newly...)
		if refRecord(res, opts, n, len(members), t) {
			return
		}
		d.Step()
	}
}

// refPush is pre-refactor RandomizedPush: plain flooding on the subsampled
// virtual graph. The old Run had no arc-scan, so the wrapper was flooded by
// member-scan over its lazy per-node views.
func refPush(d dyngraph.Dynamic, source, k int, r *rng.RNG, opts flood.Opts) flood.Result {
	sub := dyngraph.NewSubsample(d, k, r)
	n := sub.N()
	informed, res, done := refStart(n, source, opts)
	if done {
		return res
	}
	refMemberScan(sub, informed, source, opts, &res)
	return res
}

func refPull(d dyngraph.Dynamic, source int, r *rng.RNG, opts flood.Opts) flood.Result {
	n := d.N()
	informed, res, done := refStart(n, source, opts)
	if done {
		return res
	}
	neighbors := refNeighborSource(d)

	size := 1
	var nbrs []int32
	newly := make([]int32, 0, n)
	maxSteps := refMaxSteps(opts)
	for t := 0; t < maxSteps; t++ {
		newly = newly[:0]
		for i := 0; i < n; i++ {
			if informed[i] {
				continue
			}
			nbrs = neighbors(i, nbrs[:0])
			if len(nbrs) == 0 {
				continue
			}
			if informed[nbrs[r.Intn(len(nbrs))]] {
				newly = append(newly, int32(i))
			}
		}
		for _, i := range newly {
			informed[i] = true
		}
		size += len(newly)
		if refRecord(&res, opts, n, size, t) {
			return res
		}
		d.Step()
	}
	return res
}

func refPushPull(d dyngraph.Dynamic, source, k int, r *rng.RNG, opts flood.Opts) flood.Result {
	n := d.N()
	informed, res, done := refStart(n, source, opts)
	if done {
		return res
	}
	neighbors := refNeighborSource(d)

	size := 1
	pending := make([]bool, n)
	newly := make([]int32, 0, n)
	var nbrs []int32
	maxSteps := refMaxSteps(opts)
	for t := 0; t < maxSteps; t++ {
		newly = newly[:0]
		for i := 0; i < n; i++ {
			nbrs = neighbors(i, nbrs[:0])
			if len(nbrs) == 0 {
				continue
			}
			if informed[i] {
				if len(nbrs) <= k {
					for _, j := range nbrs {
						if !informed[j] && !pending[j] {
							pending[j] = true
							newly = append(newly, j)
						}
					}
				} else {
					for _, idx := range r.SampleDistinct(len(nbrs), k) {
						if j := nbrs[idx]; !informed[j] && !pending[j] {
							pending[j] = true
							newly = append(newly, j)
						}
					}
				}
			} else if !pending[i] {
				if informed[nbrs[r.Intn(len(nbrs))]] {
					pending[i] = true
					newly = append(newly, int32(i))
				}
			}
		}
		for _, j := range newly {
			informed[j] = true
			pending[j] = false
		}
		size += len(newly)
		if refRecord(&res, opts, n, size, t) {
			return res
		}
		d.Step()
	}
	return res
}

func refParsimonious(d dyngraph.Dynamic, source, active int, opts flood.Opts) flood.Result {
	n := d.N()
	informed, res, done := refStart(n, source, opts)
	if done {
		return res
	}
	neighbors := refNeighborSource(d)

	expiry := make([]int32, n)
	activeList := make([]int32, 1, n)
	activeList[0] = int32(source)
	expiry[source] = int32(active - 1)

	size := 1
	newly := make([]int32, 0, n)
	var nbrs []int32
	maxSteps := refMaxSteps(opts)
	for t := 0; t < maxSteps; t++ {
		newly = newly[:0]
		for _, i := range activeList {
			nbrs = neighbors(int(i), nbrs[:0])
			for _, j := range nbrs {
				if !informed[j] {
					informed[j] = true
					newly = append(newly, j)
				}
			}
		}
		keep := activeList[:0]
		for _, i := range activeList {
			if int(expiry[i]) > t {
				keep = append(keep, i)
			}
		}
		activeList = keep
		for _, j := range newly {
			expiry[j] = int32(t + active)
			activeList = append(activeList, j)
		}
		size += len(newly)
		if refRecord(&res, opts, n, size, t) {
			return res
		}
		if len(activeList) == 0 {
			return res
		}
		d.Step()
	}
	return res
}

// ---------------------------------------------------------------------------
// The pins.

// equivModels covers every registered model family at small sizes.
var equivModels = []model.Spec{
	model.New("edgemeg").WithInt("n", 96).WithFloat("p", 0.01).WithFloat("q", 0.09),
	model.New("edgemeg").WithInt("n", 64).WithFloat("p", 0.02).WithFloat("q", 0.18).WithBool("dense", true),
	model.New("edgemeg").WithInt("n", 96).WithFloat("p", 0.01).WithFloat("q", 0.09).WithBool("fastchurn", true),
	model.New("edgemeg4").WithInt("n", 64),
	model.New("waypoint").WithInt("n", 64).WithFloat("L", 12).WithFloat("r", 1.5),
	model.New("direction").WithInt("n", 64).WithFloat("L", 12).WithFloat("r", 1.5),
	model.New("dwaypoint").WithInt("n", 40).WithInt("m", 5),
	model.New("walk").WithInt("n", 48).WithInt("m", 8),
	model.New("paths").WithInt("n", 24).WithInt("m", 6),
	model.New("static").With("topology", "torus").WithInt("m", 7),
}

// stripCost zeroes the message-cost fields PR 8 added to Result, for
// comparisons against the verbatim pre-refactor reference engines, which
// never tracked cost.
func stripCost(r flood.Result) flood.Result {
	r.Messages, r.Useless, r.CostTimeline = 0, 0, nil
	return r
}

// forceMemberScan hides batch interfaces so the engine falls back to the
// per-node path, while keeping NeighborLister visible to match how the old
// engine saw the same model.
type forceMemberScan struct{ d dyngraph.Dynamic }

func (f forceMemberScan) N() int                                { return f.d.N() }
func (f forceMemberScan) Step()                                 { f.d.Step() }
func (f forceMemberScan) ForEachNeighbor(i int, fn func(j int)) { f.d.ForEachNeighbor(i, fn) }
func (f forceMemberScan) AppendNeighbors(i int, dst []int32) []int32 {
	return dyngraph.AppendNeighbors(f.d, i, dst)
}

// forceBatchScan hides DeltaBatcher (and the per-node view) while keeping
// Batcher, pinning the flat-edge-scan path that models without delta
// support still take — and that the delta engine must agree with exactly.
type forceBatchScan struct{ d dyngraph.Dynamic }

func (f forceBatchScan) N() int                                { return f.d.N() }
func (f forceBatchScan) Step()                                 { f.d.Step() }
func (f forceBatchScan) ForEachNeighbor(i int, fn func(j int)) { f.d.ForEachNeighbor(i, fn) }
func (f forceBatchScan) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	return dyngraph.AppendEdges(f.d, dst)
}

func TestEnginesMatchPreRefactorReference(t *testing.T) {
	opts := flood.Opts{MaxSteps: 1 << 14, KeepTimeline: true}
	for _, ms := range equivModels {
		for _, seed := range []uint64{1, 42} {
			build := func() dyngraph.Dynamic { return model.MustBuild(ms, seed) }
			// The flood and parsimonious references are shared by several
			// cases below (the runs are deterministic per (spec, seed)).
			refFlood := refRun(build(), 0, opts)
			refPars := refParsimonious(build(), 0, 6, opts)
			cases := []struct {
				name      string
				got, want flood.Result
			}{
				// For delta-capable models (the edge-MEG family, static,
				// traces) the first case exercises the incremental
				// delta-scan engine against the pre-refactor reference.
				{"flood", flood.Run(build(), 0, opts), refFlood},
				{"flood/batch-scan",
					flood.Run(forceBatchScan{build()}, 0, opts),
					refFlood},
				{"flood/deltified",
					// The generic diff adapter must expose the same virtual
					// graph as the model it wraps, whatever path Run picks.
					flood.Run(dyngraph.NewDeltifier(build()), 0, opts),
					refFlood},
				{"flood/member-scan",
					flood.Run(forceMemberScan{build()}, 0, opts),
					refRun(forceMemberScan{build()}, 0, opts)},
				{"push/arc-scan-vs-member-scan",
					flood.RandomizedPush(build(), 0, 2, rng.New(7), opts),
					refPush(build(), 0, 2, rng.New(7), opts)},
				{"pull",
					flood.Pull(build(), 0, rng.New(11), opts),
					refPull(build(), 0, rng.New(11), opts)},
				{"pushpull",
					flood.PushPull(build(), 0, 1, rng.New(13), opts),
					refPushPull(build(), 0, 1, rng.New(13), opts)},
				{"parsimonious",
					// Delta-capable models take the incremental
					// adjacency-backed window engine here.
					flood.Parsimonious(build(), 0, 6, opts),
					refPars},
				{"parsimonious/deltified",
					flood.Parsimonious(dyngraph.NewDeltifier(build()), 0, 6, opts),
					refPars},
			}
			for _, c := range cases {
				// The references predate message-cost accounting, so the
				// comparison strips the cost fields — the trajectory pins
				// stay exact, and the cost fields have their own pins
				// (cost_test.go conservation, async dispatch equivalence).
				if !reflect.DeepEqual(stripCost(c.got), c.want) {
					t.Errorf("%v seed %d %s: refactored %+v != reference %+v",
						ms, seed, c.name, c.got, c.want)
				}
			}
		}
	}
}

// TestMobilityDispatchEquivalence pins the incremental-mobility tentpole:
// for every geometric model the native delta path (the dispatch flood.Run
// and Parsimonious now pick, fed by the models' own AppendDeltas), the
// forced batch path, and the generic Deltifier wrapper must produce
// byte-identical Results at fixed seeds — including the PR 8 cost fields
// and timelines, which stripCost hides in the pre-refactor pins above.
func TestMobilityDispatchEquivalence(t *testing.T) {
	opts := flood.Opts{MaxSteps: 1 << 14, KeepTimeline: true}
	mobilitySpecs := []model.Spec{
		model.New("waypoint").WithInt("n", 64).WithFloat("L", 12).WithFloat("r", 1.5),
		// Pause-heavy waypoint: most nodes rest most steps, so the moved
		// set is a small fraction of n — the regime the O(moved × density)
		// step is built for, and the dedup rule's hardest case (moved and
		// unmoved endpoints mix freely).
		model.New("waypoint").WithInt("n", 64).WithFloat("L", 12).WithFloat("r", 1.5).
			WithInt("pause", 8).With("init", "uniform").WithInt("warmup", 5),
		model.New("direction").WithInt("n", 64).WithFloat("L", 12).WithFloat("r", 1.5),
		model.New("dwaypoint").WithInt("n", 40).WithInt("m", 5),
		model.New("walk").WithInt("n", 48).WithInt("m", 8),
	}
	for _, ms := range mobilitySpecs {
		for _, seed := range []uint64{1, 7, 42, 1234} {
			build := func() dyngraph.Dynamic { return model.MustBuild(ms, seed) }
			if _, ok := build().(dyngraph.DeltaBatcher); !ok {
				t.Fatalf("%v: expected a native DeltaBatcher", ms)
			}
			native := flood.Run(build(), 0, opts)
			if batch := flood.Run(forceBatchScan{build()}, 0, opts); !reflect.DeepEqual(native, batch) {
				t.Errorf("%v seed %d: flood delta %+v != batch %+v", ms, seed, native, batch)
			}
			if df := flood.Run(dyngraph.NewDeltifier(build()), 0, opts); !reflect.DeepEqual(native, df) {
				t.Errorf("%v seed %d: flood delta %+v != deltified %+v", ms, seed, native, df)
			}
			pNative := flood.Parsimonious(build(), 0, 6, opts)
			if pb := flood.Parsimonious(forceBatchScan{build()}, 0, 6, opts); !reflect.DeepEqual(pNative, pb) {
				t.Errorf("%v seed %d: parsimonious delta %+v != batch %+v", ms, seed, pNative, pb)
			}
			if pd := flood.Parsimonious(dyngraph.NewDeltifier(build()), 0, 6, opts); !reflect.DeepEqual(pNative, pd) {
				t.Errorf("%v seed %d: parsimonious delta %+v != deltified %+v", ms, seed, pNative, pd)
			}
		}
	}
}

// BenchmarkEngineOnly* isolate the spreading core from model simulation
// (static graph: Step is free, snapshot access is an append), pitting the
// bitset/scratch engines against their pre-refactor references. This is
// the apples-to-apples number behind the README's performance table — the
// end-to-end BenchmarkFlood* family is dominated by model construction
// and per-step Markov simulation.

func BenchmarkEngineOnlyBitset(b *testing.B) {
	d := dyngraph.NewStatic(graph.Torus(64, 64))
	b.ReportAllocs()
	opts := flood.Opts{MaxSteps: 1 << 10, Scratch: flood.NewScratch()}
	for i := 0; i < b.N; i++ {
		if res := flood.Run(d, 0, opts); !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkEngineOnlyReference(b *testing.B) {
	d := dyngraph.NewStatic(graph.Torus(64, 64))
	b.ReportAllocs()
	opts := flood.Opts{MaxSteps: 1 << 10}
	for i := 0; i < b.N; i++ {
		if res := refRun(d, 0, opts); !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkEngineOnlyPullBitset(b *testing.B) {
	d := dyngraph.NewStatic(graph.Torus(32, 32))
	r := rng.New(5)
	b.ReportAllocs()
	opts := flood.Opts{MaxSteps: 1 << 14, Scratch: flood.NewScratch()}
	for i := 0; i < b.N; i++ {
		if res := flood.Pull(d, 0, r, opts); !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkEngineOnlyPullReference(b *testing.B) {
	d := dyngraph.NewStatic(graph.Torus(32, 32))
	r := rng.New(5)
	b.ReportAllocs()
	opts := flood.Opts{MaxSteps: 1 << 14}
	for i := 0; i < b.N; i++ {
		if res := refPull(d, 0, r, opts); !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

// TestScratchWarmthDoesNotChangeResults runs every engine over every model
// twice through one shared scratch — cold, then warm, in an order designed
// to leave stale state from a different engine in the buffers — and checks
// each result equals the scratch-free run. This is the contract that lets
// internal/study hand one Scratch to a worker serving thousands of
// heterogeneous trials.
func TestScratchWarmthDoesNotChangeResults(t *testing.T) {
	sc := flood.NewScratch()
	for round := 0; round < 2; round++ {
		for _, ms := range equivModels {
			seed := uint64(3)
			plain := flood.Opts{MaxSteps: 1 << 14, KeepTimeline: true}
			shared := plain
			shared.Scratch = sc
			run := func(o flood.Opts) []flood.Result {
				return []flood.Result{
					flood.Run(model.MustBuild(ms, seed), 0, o),
					flood.RandomizedPush(model.MustBuild(ms, seed), 0, 2, rng.New(7), o),
					flood.Pull(model.MustBuild(ms, seed), 0, rng.New(11), o),
					flood.PushPull(model.MustBuild(ms, seed), 0, 1, rng.New(13), o),
					flood.Parsimonious(model.MustBuild(ms, seed), 0, 6, o),
					flood.Async(model.MustBuild(ms, seed), 0, 1, 17, o),
				}
			}
			if got, want := run(shared), run(plain); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d %v: scratch-backed results differ:\n%+v\nvs\n%+v",
					round, ms, got, want)
			}
		}
	}
}
