package flood

import (
	"repro/internal/dyngraph"
)

// Parsimonious runs the parsimonious flooding protocol of Baumann,
// Crescenzi and Fraigniaud [4] (cited in the paper's protocol family): a
// node forwards the information only during the first `active` steps after
// becoming informed, then falls silent — informed forever, but no longer
// transmitting. Plain flooding is the limit active → ∞.
//
// Parsimonious flooding trades completion time (and possibly completion
// itself) for a bounded per-node transmission budget: in a dynamic graph a
// silent informed node may be the only one ever to meet some isolated node,
// so too-small activity windows can strand nodes. The returned Result
// reports Completed accordingly.
func Parsimonious(d dyngraph.Dynamic, source, active int, opts Opts) Result {
	if active <= 0 {
		panic("flood: Parsimonious needs active > 0")
	}
	n := d.N()
	sc, res, done := start(n, source, opts)
	if done {
		return res
	}
	if db, ok := d.(dyngraph.DeltaBatcher); ok {
		parsimoniousDelta(db, d, sc, source, active, opts, &res)
		return res
	}
	nr := newNeighborReader(d)
	informed := sc.informed

	// expiry[i] is the last step at which node i still transmits; every
	// entry read below is assigned first, so the buffer needs no clearing.
	expiry := sc.expirySlice(n)
	// activeList holds nodes still within their transmission window.
	activeList := append(sc.queue[:0], int32(source))
	expiry[source] = int32(active - 1)

	// newly is duplicate-free, so incremental size tracking is exact —
	// cheaper than a per-step popcount in the one engine that can run for
	// thousands of near-idle steps (small windows strand progress).
	size := 1
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		newly := sc.newly[:0]
		// Only active nodes transmit on snapshot E_t — that restriction is
		// the whole point of the protocol, and the message count shows it:
		// one transmission per (transmitter, neighbor), so silent informed
		// nodes cost nothing where plain flooding keeps paying degree.
		// Marking informed immediately is safe — activeList is fixed for
		// the round, so a node informed mid-round cannot transmit until the
		// next one — and keeps newly duplicate-free.
		var msgs int64
		for _, i := range activeList {
			sc.nbrs = nr.append(int(i), sc.nbrs[:0])
			msgs += int64(len(sc.nbrs))
			for _, j := range sc.nbrs {
				if !informed.Get(int(j)) {
					informed.Set(int(j))
					newly = append(newly, j)
				}
			}
		}
		// Expire nodes whose window ended at step t, then add the newly
		// informed with fresh windows.
		keep := activeList[:0]
		for _, i := range activeList {
			if int(expiry[i]) > t {
				keep = append(keep, i)
			}
		}
		activeList = keep
		for _, j := range newly {
			expiry[j] = int32(t + active)
			activeList = append(activeList, j)
		}
		// Store the (possibly re-grown) buffers back for reuse by the next
		// run sharing this scratch.
		sc.newly, sc.queue = newly[:0], activeList
		size += len(newly)
		if record(&res, opts, n, size, t, msgs) {
			return res
		}
		// All transmitters silent and nobody newly informed: the process
		// is dead — no future step can inform anyone.
		if len(activeList) == 0 {
			return res
		}
		d.Step()
	}
	return res
}

// parsimoniousDelta is the incremental variant for models that expose
// their per-step churn: transmitters read their neighborhoods from a
// persistent scratch adjacency maintained by delta application, so a step
// costs O(churn + Σ_{i transmitting} deg i) with no snapshot rebuilds.
// Neighbor order in the store differs from the model's own view, but the
// protocol draws no random numbers and treats neighborhoods as sets, so
// the informed-set trajectory — and the Result — is identical to the
// per-node path (pinned by the fixed-seed equivalence tests).
func parsimoniousDelta(db dyngraph.DeltaBatcher, d dyngraph.Dynamic, sc *Scratch, source, active int, opts Opts, res *Result) {
	n := sc.informed.Len()
	sc.edges = dyngraph.AppendEdges(d, sc.edges[:0])
	sc.adj.Reset(n)
	sc.adj.AddEdges(sc.edges)
	informed := sc.informed

	expiry := sc.expirySlice(n)
	activeList := append(sc.queue[:0], int32(source))
	expiry[source] = int32(active - 1)

	size := 1
	mr, _ := db.(dyngraph.MoveReporter)
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		newly := sc.newly[:0]
		var msgs int64
		for _, i := range activeList {
			nbrs := sc.adj.Neighbors(int(i))
			msgs += int64(len(nbrs))
			for _, j := range nbrs {
				if !informed.Get(int(j)) {
					informed.Set(int(j))
					newly = append(newly, j)
				}
			}
		}
		keep := activeList[:0]
		for _, i := range activeList {
			if int(expiry[i]) > t {
				keep = append(keep, i)
			}
		}
		activeList = keep
		for _, j := range newly {
			expiry[j] = int32(t + active)
			activeList = append(activeList, j)
		}
		sc.newly, sc.queue = newly[:0], activeList
		size += len(newly)
		if record(res, opts, n, size, t, msgs) {
			return
		}
		if len(activeList) == 0 {
			return
		}
		d.Step()
		sc.born, sc.died = db.AppendDeltas(sc.born[:0], sc.died[:0])
		sc.adj.Apply(sc.born, sc.died)
		sc.bornTotal += int64(len(sc.born))
		sc.diedTotal += int64(len(sc.died))
		if mr != nil {
			sc.movedTotal += int64(mr.MovedLastStep())
		}
		sc.deltaSteps++
	}
}
