package flood

import (
	"repro/internal/dyngraph"
)

// Parsimonious runs the parsimonious flooding protocol of Baumann,
// Crescenzi and Fraigniaud [4] (cited in the paper's protocol family): a
// node forwards the information only during the first `active` steps after
// becoming informed, then falls silent — informed forever, but no longer
// transmitting. Plain flooding is the limit active → ∞.
//
// Parsimonious flooding trades completion time (and possibly completion
// itself) for a bounded per-node transmission budget: in a dynamic graph a
// silent informed node may be the only one ever to meet some isolated node,
// so too-small activity windows can strand nodes. The returned Result
// reports Completed accordingly.
func Parsimonious(d dyngraph.Dynamic, source, active int, opts Opts) Result {
	n := d.N()
	if source < 0 || source >= n {
		panic("flood: source out of range")
	}
	if active <= 0 {
		panic("flood: Parsimonious needs active > 0")
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	informed := make([]bool, n)
	informed[source] = true
	// expiry[i] is the last step at which node i still transmits.
	expiry := make([]int32, n)

	// activeList holds nodes still within their transmission window.
	activeList := make([]int32, 1, n)
	activeList[0] = int32(source)
	expiry[source] = int32(active - 1)

	size := 1
	res := Result{Time: -1, HalfTime: -1, Informed: 1}
	if opts.KeepTimeline {
		res.Timeline = append(res.Timeline, 1)
	}
	if 2*size >= n {
		res.HalfTime = 0
	}
	if size == n {
		res.Time = 0
		res.Completed = true
		return res
	}

	newly := make([]int32, 0, n)
	var nbrs []int32
	for t := 0; t < maxSteps; t++ {
		newly = newly[:0]
		// Only active nodes transmit on snapshot E_t.
		for _, i := range activeList {
			nbrs = dyngraph.AppendNeighbors(d, int(i), nbrs[:0])
			for _, j := range nbrs {
				if !informed[j] {
					informed[j] = true
					newly = append(newly, j)
				}
			}
		}
		// Expire nodes whose window ended at step t, then add the newly
		// informed with fresh windows.
		keep := activeList[:0]
		for _, i := range activeList {
			if int(expiry[i]) > t {
				keep = append(keep, i)
			}
		}
		activeList = keep
		for _, j := range newly {
			expiry[j] = int32(t + active)
			activeList = append(activeList, j)
		}
		size += len(newly)
		res.Informed = size
		if opts.KeepTimeline {
			res.Timeline = append(res.Timeline, size)
		}
		if res.HalfTime < 0 && 2*size >= n {
			res.HalfTime = t + 1
		}
		if size == n {
			res.Time = t + 1
			res.Completed = true
			return res
		}
		// All transmitters silent and nobody newly informed: the process
		// is dead — no future step can inform anyone.
		if len(activeList) == 0 {
			return res
		}
		d.Step()
	}
	return res
}
