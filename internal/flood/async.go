package flood

import (
	"math"

	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// The asynchronous engine's integer clock: TicksPerStep ticks of event time
// span one graph step, so the snapshot E_t holds during ticks
// [t·TicksPerStep, (t+1)·TicksPerStep). The resolution bounds the
// quantization of the exponential inter-firing gaps (a gap is never rounded
// below one tick); 2^16 keeps the rounding error orders of magnitude below
// the law-of-large-numbers noise of any feasible trial count while leaving
// int64 event time effectively unbounded (~10^14 steps).
const TicksPerStep = 1 << 16

// asyncWheelBuckets is the event wheel's ring size in graph steps. Gaps are
// exponential with mean 1/rate steps, so for any sane rate almost every
// reschedule lands within the ring; the overflow heap absorbs the tail.
const asyncWheelBuckets = 64

// Async runs the asynchronous push protocol of Pourmiri–Mans over a
// dynamic graph: every node carries a private Poisson clock of the given
// rate (expected firings per graph step), and when an informed node's
// clock fires it transmits the rumor to one uniformly random CURRENT
// neighbor, which is informed immediately — no lockstep rounds, so a node
// informed early in a step can itself transmit before the step ends. The
// graph still evolves in discrete steps (snapshot E_t holds while clocks
// fire during step t), which is exactly the regime the dynamic-graph
// rumor-spreading analyses study: node clocks are asynchronous, the
// adversary's rewiring is not.
//
// Clocks are integer-valued under the hood (TicksPerStep ticks per step)
// and driven by the event wheel of internal/eventwheel. Determinism and
// worker-independence come from per-node RNG streams: node i's clock (and
// its contact draws) consume rng.Seed(clockSeed, i) exclusively, so the
// trajectory is a pure function of (graph realization, clockSeed) — the
// wheel fires in deterministic (tick, node) order, and no draw depends on
// scheduling.
//
// The contact draw is insensitive to neighbor-list ORDER: one draw s per
// firing gives every current neighbor j the priority rng.Seed(s, j), and
// the minimum wins — uniform over the neighbor set, ties broken by node
// id. A delta-maintained adjacency (whose swap-remove perturbs order), a
// per-step rebuilt one, and the model's own neighbor view therefore
// produce byte-identical runs, pinned by the async equivalence tests.
//
// Result semantics match the synchronous engines at step granularity:
// Time/HalfTime/Timeline record informed-set sizes at step boundaries, and
// Messages/Useless count every transmission (an isolated node's firing
// sends nothing and costs nothing). Completion is detected at the end of
// the step that informed the last node, and the whole step's messages are
// counted — the nodes don't know the rumor saturated mid-step.
func Async(d dyngraph.Dynamic, source int, rate float64, clockSeed uint64, opts Opts) Result {
	if !(rate > 0) {
		panic("flood: Async needs rate > 0")
	}
	n := d.N()
	sc, res, done := start(n, source, opts)
	if done {
		return res
	}
	wheel, clocks := sc.asyncState(n)
	for i := range clocks {
		clocks[i].Reseed(rng.Seed(clockSeed, uint64(i)))
	}
	for i := 0; i < n; i++ {
		wheel.Schedule(int32(i), gapTicks(&clocks[i], rate))
	}
	// Pick the cheapest neighbor access the model offers, mirroring Run:
	// delta-maintained adjacency when the model streams churn, per-step
	// rebuilt adjacency for plain batchers, the model's own per-node view
	// otherwise. All three compute the identical trajectory (see above).
	if db, ok := d.(dyngraph.DeltaBatcher); ok {
		asyncDelta(db, d, sc, rate, opts, &res)
	} else if b, ok := d.(dyngraph.Batcher); ok {
		asyncBatch(b, d, sc, rate, opts, &res)
	} else {
		asyncMember(d, sc, rate, opts, &res)
	}
	return res
}

// gapTicks draws one exponential inter-firing gap of mean 1/rate graph
// steps from cl, quantized to ticks with a one-tick floor so firings
// always advance the clock.
func gapTicks(cl *rng.RNG, rate float64) int64 {
	u := cl.Float64() // in [0, 1), so 1-u is in (0, 1] and the log is finite
	ticks := int64(-math.Log(1-u) / rate * TicksPerStep)
	if ticks < 1 {
		ticks = 1
	}
	return ticks
}

// contact picks the transmission target among the current neighbors of a
// firing node: draw s names priority rng.Seed(s, j) for every neighbor j
// and the minimum wins, with ties broken by smaller id. Uniform over the
// neighbor SET and independent of list order — the property the async
// dispatch-path equivalence rests on. nbrs must be non-empty.
func contact(s uint64, nbrs []int32) int32 {
	best := nbrs[0]
	bestH := rng.Seed(s, uint64(best))
	for _, j := range nbrs[1:] {
		h := rng.Seed(s, uint64(j))
		if h < bestH || (h == bestH && j < best) {
			best, bestH = j, h
		}
	}
	return best
}

// asyncFires drains one step's firings (ticks below limit) against the
// neighbor lists of adj, informing contacts immediately, and returns the
// step's message count and first-time informs. Shared by the delta and
// batch dispatch paths.
func asyncFires(sc *Scratch, rate float64, limit int64) (msgs int64, newly int) {
	wheel, clocks, informed := sc.wheel, sc.clocks, sc.informed
	for {
		node, tick, ok := wheel.PopBefore(limit)
		if !ok {
			return msgs, newly
		}
		cl := &clocks[node]
		if informed.Get(int(node)) {
			if nbrs := sc.adj.Neighbors(int(node)); len(nbrs) > 0 {
				msgs++
				j := int(contact(cl.Uint64(), nbrs))
				if !informed.Get(j) {
					informed.Set(j)
					newly++
				}
			}
		}
		wheel.Schedule(node, tick+gapTicks(cl, rate))
	}
}

// asyncDelta is the incremental dispatch path: the adjacency is seeded from
// one snapshot batch and maintained from per-step churn, so a step costs
// O(firings + churn).
func asyncDelta(db dyngraph.DeltaBatcher, d dyngraph.Dynamic, sc *Scratch, rate float64, opts Opts, res *Result) {
	n := sc.informed.Len()
	sc.edges = dyngraph.AppendEdges(d, sc.edges[:0])
	sc.adj.Reset(n)
	sc.adj.AddEdges(sc.edges)
	size := 1
	mr, _ := db.(dyngraph.MoveReporter)
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		msgs, newly := asyncFires(sc, rate, int64(t+1)*TicksPerStep)
		size += newly
		if record(res, opts, n, size, t, msgs) {
			return
		}
		d.Step()
		sc.born, sc.died = db.AppendDeltas(sc.born[:0], sc.died[:0])
		sc.adj.Apply(sc.born, sc.died)
		sc.bornTotal += int64(len(sc.born))
		sc.diedTotal += int64(len(sc.died))
		if mr != nil {
			sc.movedTotal += int64(mr.MovedLastStep())
		}
		sc.deltaSteps++
	}
}

// asyncBatch rebuilds the adjacency from the flat snapshot batch every
// step — the path for models with batch access but no delta stream.
func asyncBatch(b dyngraph.Batcher, d dyngraph.Dynamic, sc *Scratch, rate float64, opts Opts, res *Result) {
	n := sc.informed.Len()
	size := 1
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		sc.edges = b.AppendEdges(sc.edges[:0])
		sc.adj.Reset(n)
		sc.adj.AddEdges(sc.edges)
		msgs, newly := asyncFires(sc, rate, int64(t+1)*TicksPerStep)
		size += newly
		if record(res, opts, n, size, t, msgs) {
			return
		}
		d.Step()
	}
}

// asyncMember reads each firing node's neighbors from the model's own
// per-node view — the fallback path, and the reference the adjacency
// paths are pinned against.
func asyncMember(d dyngraph.Dynamic, sc *Scratch, rate float64, opts Opts, res *Result) {
	n := sc.informed.Len()
	nr := newNeighborReader(d)
	wheel, clocks, informed := sc.wheel, sc.clocks, sc.informed
	size := 1
	maxSteps := opts.maxSteps()
	for t := 0; t < maxSteps; t++ {
		limit := int64(t+1) * TicksPerStep
		var msgs int64
		for {
			node, tick, ok := wheel.PopBefore(limit)
			if !ok {
				break
			}
			cl := &clocks[node]
			if informed.Get(int(node)) {
				sc.nbrs = nr.append(int(node), sc.nbrs[:0])
				if len(sc.nbrs) > 0 {
					msgs++
					j := int(contact(cl.Uint64(), sc.nbrs))
					if !informed.Get(j) {
						informed.Set(j)
						size++
					}
				}
			}
			wheel.Schedule(node, tick+gapTicks(cl, rate))
		}
		if record(res, opts, n, size, t, msgs) {
			return
		}
		d.Step()
	}
}
