package flood

import (
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestPushPullCompleteGraphCompletes(t *testing.T) {
	d := dyngraph.NewStatic(graph.Complete(64))
	res := PushPull(d, 0, 1, rng.New(3), Opts{MaxSteps: 1000, KeepTimeline: true})
	if !res.Completed {
		t.Fatal("push–pull did not complete on K64")
	}
	if !GrowthIsMonotone(res.Timeline) {
		t.Fatal("timeline not monotone")
	}
	if res.Informed != res.Timeline[len(res.Timeline)-1] {
		t.Fatal("Informed disagrees with final timeline entry")
	}
}

func TestPushPullNoFasterThanHopLimit(t *testing.T) {
	// On a path with the source at one end, both push and pull move the
	// information at most one hop per step: the synchronous sweep must not
	// chain same-step transmissions.
	n := 7
	res := PushPull(dyngraph.NewStatic(graph.Path(n)), 0, 2, rng.New(5), Opts{MaxSteps: 10000})
	if !res.Completed {
		t.Fatal("push–pull on path did not complete")
	}
	if res.Time < n-1 {
		t.Fatalf("push–pull time %d beats the hop limit %d — sweep not synchronous", res.Time, n-1)
	}
}

func TestPushPullBeatsPullAlone(t *testing.T) {
	// Push–pull does strictly more contact work per step than pull alone;
	// on K_n it must not be slower for matched runs (fixed seeds).
	pp := PushPull(dyngraph.NewStatic(graph.Complete(64)), 0, 1, rng.New(11), Opts{MaxSteps: 1000})
	pull := Pull(dyngraph.NewStatic(graph.Complete(64)), 0, rng.New(11), Opts{MaxSteps: 1000})
	if !pp.Completed || !pull.Completed {
		t.Fatal("runs did not complete")
	}
	if pp.Time > pull.Time {
		t.Fatalf("push–pull (%d) slower than pull alone (%d)", pp.Time, pull.Time)
	}
}

func TestPushPullIsolatedNodesStall(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	res := PushPull(dyngraph.NewStatic(b.Build()), 0, 2, rng.New(9), Opts{MaxSteps: 200})
	if res.Completed {
		t.Fatal("push–pull completed despite isolated node")
	}
	if res.Informed != 2 {
		t.Fatalf("informed = %d, want 2", res.Informed)
	}
}

func TestPushPullSingleNodeAndPanics(t *testing.T) {
	b := graph.NewBuilder(1)
	res := PushPull(dyngraph.NewStatic(b.Build()), 0, 1, rng.New(1), Opts{})
	if !res.Completed || res.Time != 0 {
		t.Fatalf("single-node push–pull: %+v", res)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad source did not panic")
			}
		}()
		PushPull(dyngraph.NewStatic(graph.Cycle(3)), 9, 1, rng.New(1), Opts{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k = 0 did not panic")
			}
		}()
		PushPull(dyngraph.NewStatic(graph.Cycle(3)), 0, 0, rng.New(1), Opts{})
	}()
}

func TestPushPullDeterministicPerSeed(t *testing.T) {
	run := func() Result {
		g := graph.Gnp(48, 0.08, rng.New(77))
		return PushPull(dyngraph.NewStatic(g), 0, 2, rng.New(13), Opts{MaxSteps: 500, KeepTimeline: true})
	}
	a, b := run(), run()
	if a.Time != b.Time || a.Informed != b.Informed || len(a.Timeline) != len(b.Timeline) {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
