package randompath

import (
	"fmt"

	"repro/internal/graph"
)

// EdgePaths returns the family containing (u, v) and (v, u) for every edge
// of h. The resulting model is exactly the random walk over h (ρ = 1): at
// every step a node jumps to a uniform neighbor. The family is simple and
// reversible, with #P(u) = deg(u).
func EdgePaths(h *graph.Graph) []Path {
	out := make([]Path, 0, 2*h.M())
	for _, e := range h.Edges() {
		u, v := int32(e[0]), int32(e[1])
		out = append(out, Path{u, v}, Path{v, u})
	}
	return out
}

// GridLPaths returns, for every ordered pair (u, v) of distinct points of
// an m x m grid, the two L-shaped shortest paths between them (row-first
// and column-first; they coincide when the points share a row or column).
// This realizes the paper's "basic instance ... H is a grid and the
// feasible paths are the shortest ones" with a polynomial-size family that
// is simple and reversible: the reverse of a row-first path is the
// column-first path of the reversed pair.
func GridLPaths(m int) []Path {
	if m < 2 {
		panic("randompath: GridLPaths needs m >= 2")
	}
	points := m * m
	var out []Path
	for u := 0; u < points; u++ {
		ui, uj := u/m, u%m
		for v := 0; v < points; v++ {
			if u == v {
				continue
			}
			vi, vj := v/m, v%m
			rowFirst := lPath(ui, uj, vi, vj, m, true)
			out = append(out, rowFirst)
			if ui != vi && uj != vj {
				out = append(out, lPath(ui, uj, vi, vj, m, false))
			}
		}
	}
	return out
}

// lPath builds the L-shaped path from (ui, uj) to (vi, vj). rowFirst moves
// along the row index first, then the column index.
func lPath(ui, uj, vi, vj, m int, rowFirst bool) Path {
	p := Path{int32(ui*m + uj)}
	ci, cj := ui, uj
	stepRow := func() {
		for ci != vi {
			if ci < vi {
				ci++
			} else {
				ci--
			}
			p = append(p, int32(ci*m+cj))
		}
	}
	stepCol := func() {
		for cj != vj {
			if cj < vj {
				cj++
			} else {
				cj--
			}
			p = append(p, int32(ci*m+cj))
		}
	}
	if rowFirst {
		stepRow()
		stepCol()
	} else {
		stepCol()
		stepRow()
	}
	return p
}

// StarPaths returns a deliberately congested family on the m x m grid: for
// every point u other than the center, the row-first L-path from u to the
// center and its reverse. Every path passes through the center, so
// #P(center) ≈ |V| while typical points see O(m) paths — a δ-regularity
// violation used by experiment E10 to show the flooding penalty that
// Corollary 5 predicts for congested crossroads.
func StarPaths(m int) []Path {
	if m < 2 {
		panic("randompath: StarPaths needs m >= 2")
	}
	center := (m/2)*m + m/2
	ci, cj := center/m, center%m
	var out []Path
	for u := 0; u < m*m; u++ {
		if u == center {
			continue
		}
		ui, uj := u/m, u%m
		toCenter := lPath(ui, uj, ci, cj, m, true)
		out = append(out, toCenter, reversePath(toCenter))
	}
	return out
}

// reversePath returns a new Path traversing p backwards.
func reversePath(p Path) Path {
	out := make(Path, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}

// MakeReversible returns the family extended with any missing reverse
// paths, so that Model.IsReversible holds.
func MakeReversible(paths []Path) []Path {
	index := make(map[string]bool, len(paths))
	for _, p := range paths {
		index[pathKey(p)] = true
	}
	out := append([]Path(nil), paths...)
	for _, p := range paths {
		r := reversePath(p)
		if k := pathKey(r); !index[k] {
			index[k] = true
			out = append(out, r)
		}
	}
	return out
}

// NewGridWalk builds the random-walk-over-H model for an arbitrary graph,
// via the edge family. It errors on graphs with isolated vertices (no
// outgoing paths).
func NewGridWalk(h *graph.Graph) (*Model, error) {
	if h.Degrees().Min == 0 {
		return nil, fmt.Errorf("randompath: graph has isolated vertices")
	}
	return New(h, EdgePaths(h))
}
