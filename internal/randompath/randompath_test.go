package randompath

import (
	"math"
	"testing"

	"repro/internal/flood"
	"repro/internal/graph"
	"repro/internal/nodemeg"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestNewValidation(t *testing.T) {
	h := graph.Grid(3, 3)
	if _, err := New(h, nil); err == nil {
		t.Fatal("empty family accepted")
	}
	if _, err := New(h, []Path{{0}}); err == nil {
		t.Fatal("length-1 path accepted")
	}
	if _, err := New(h, []Path{{0, 8}}); err == nil {
		t.Fatal("non-adjacent step accepted")
	}
	if _, err := New(h, []Path{{0, 99}}); err == nil {
		t.Fatal("invalid point accepted")
	}
	// Closure violation: a path ends at 2 but nothing starts there.
	if _, err := New(h, []Path{{0, 1, 2}, {1, 0}, {0, 1}}); err == nil {
		t.Fatal("closure violation accepted")
	}
}

func TestEdgePathsIsRandomWalk(t *testing.T) {
	h := graph.Cycle(6)
	m, err := NewGridWalk(h)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsSimple() || !m.IsReversible() {
		t.Fatal("edge family should be simple and reversible")
	}
	// #P(u) = deg(u) = 2 on a cycle.
	for u, c := range m.Congestion() {
		if c != 2 {
			t.Fatalf("congestion[%d] = %d, want 2", u, c)
		}
	}
	if m.DeltaRegularity() != 1 {
		t.Fatalf("cycle edge family delta = %v, want 1", m.DeltaRegularity())
	}
	// State space: one state per directed edge.
	if m.NumStates() != 2*h.M() {
		t.Fatalf("states = %d, want %d", m.NumStates(), 2*h.M())
	}
}

func TestEdgePathsChainUniformStationary(t *testing.T) {
	// Simple + reversible => uniform stationary distribution over states.
	h := graph.Grid(3, 3)
	m, err := NewGridWalk(h)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.Chain().StationaryPower(1e-11, 200000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / float64(m.NumStates())
	for s, p := range pi {
		if math.Abs(p-want) > 1e-6 {
			t.Fatalf("stationary[%d] = %v, want %v", s, p, want)
		}
	}
}

func TestGridLPathsProperties(t *testing.T) {
	paths := GridLPaths(4)
	m, err := New(graph.Grid(4, 4), paths)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsSimple() {
		t.Fatal("L-paths must be simple")
	}
	if !m.IsReversible() {
		t.Fatal("L-path family must be reversible")
	}
	// δ-regularity should be modest (constant-ish): the busiest point sees
	// at most a small multiple of the average congestion.
	if d := m.DeltaRegularity(); d > 4 {
		t.Fatalf("L-path delta = %v, want small", d)
	}
}

func TestGridLPathsAreShortest(t *testing.T) {
	mSide := 4
	h := graph.Grid(mSide, mSide)
	for _, p := range GridLPaths(mSide) {
		u, v := int(p[0]), int(p[len(p)-1])
		want := h.BFS(u)[v]
		if len(p)-1 != want {
			t.Fatalf("path %v has length %d, shortest is %d", p, len(p)-1, want)
		}
	}
}

func TestGridLPathsUniformStationary(t *testing.T) {
	m, err := New(graph.Grid(3, 3), GridLPaths(3))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.Chain().StationaryPower(1e-11, 500000)
	if err != nil {
		t.Fatal(err)
	}
	tv := stats.TV(pi, stats.Uniform(m.NumStates()))
	if tv > 1e-6 {
		t.Fatalf("L-path stationary TV from uniform = %v", tv)
	}
}

func TestStarPathsCongested(t *testing.T) {
	mSide := 5
	m, err := New(graph.Grid(mSide, mSide), StarPaths(mSide))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsReversible() {
		t.Fatal("star family must be reversible")
	}
	c := m.Congestion()
	center := (mSide/2)*mSide + mSide/2
	// #P(u) counts positions 2..ℓ(h) — the start point is excluded — so
	// only the m²-1 to-center paths hit the center, not the center-starting
	// reverses.
	if c[center] != mSide*mSide-1 {
		t.Fatalf("center congestion = %d, want %d", c[center], mSide*mSide-1)
	}
	if d := m.DeltaRegularity(); d < 3 {
		t.Fatalf("star family delta = %v, want large", d)
	}
}

func TestMakeReversible(t *testing.T) {
	h := graph.Path(3)
	oneWay := []Path{{0, 1, 2}, {2, 1, 0}}
	if got := MakeReversible(oneWay); len(got) != 2 {
		t.Fatalf("already-reversible family grew: %d", len(got))
	}
	asym := []Path{{0, 1, 2}}
	got := MakeReversible(asym)
	if len(got) != 2 {
		t.Fatalf("MakeReversible should add the reverse: %d paths", len(got))
	}
	m, err := New(h, got)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsReversible() {
		t.Fatal("family not reversible after MakeReversible")
	}
}

func TestIsSimpleDetectsRepeats(t *testing.T) {
	h := graph.Cycle(4)
	// 0-1-2-1 repeats interior point 1... but 1 is visited at positions 1
	// and 3 (not start/end coincidence), so not simple.
	m, err := New(h, MakeReversible([]Path{{0, 1, 2, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if m.IsSimple() {
		t.Fatal("repeated interior point accepted as simple")
	}
	// A closed tour 0-1-2-3-0 repeats only start==end: simple by the
	// paper's definition.
	loop, err := New(h, MakeReversible([]Path{{0, 1, 2, 3, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if !loop.IsSimple() {
		t.Fatal("closed tour should count as simple")
	}
}

func TestChainMovesAlongPath(t *testing.T) {
	// Single path pair: deterministic traversal back and forth.
	h := graph.Path(3)
	m, err := New(h, []Path{{0, 1, 2}, {2, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	chain := m.Chain()
	// State 0: path 0 at point 1; state 1: path 0 at point 2 (end);
	// state 2: path 1 at point 1; state 3: path 1 at point 0 (end).
	if m.PointOfState(0) != 1 || m.PointOfState(1) != 2 ||
		m.PointOfState(2) != 1 || m.PointOfState(3) != 0 {
		t.Fatalf("state points wrong: %d %d %d %d",
			m.PointOfState(0), m.PointOfState(1), m.PointOfState(2), m.PointOfState(3))
	}
	// Deterministic transitions: 0->1, 1->2 (start reverse), 2->3, 3->0.
	expect := map[int]int{0: 1, 1: 2, 2: 3, 3: 0}
	for from, to := range expect {
		found := false
		chain.Row(from, func(j int, p float64) {
			if j == to && p == 1 {
				found = true
			}
		})
		if !found {
			t.Fatalf("transition %d->%d missing", from, to)
		}
	}
}

func TestPointConnection(t *testing.T) {
	m, err := New(graph.Path(3), []Path{{0, 1, 2}, {2, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	conn := m.Connection()
	// States 0 and 2 are both at point 1.
	if !conn.Connected(0, 2) {
		t.Fatal("same-point states not connected")
	}
	if conn.Connected(0, 1) {
		t.Fatal("different-point states connected")
	}
	nbrs := conn.NeighborStates(0)
	if len(nbrs) != 2 {
		t.Fatalf("point-1 states = %v, want 2 entries", nbrs)
	}
}

func TestSimFloodingCompletesOnAugmentedGridWalk(t *testing.T) {
	// The 2-augmented grid contains triangles, so it is not bipartite and
	// the same-point connection has no parity obstruction.
	h := graph.KAugmentedGrid(5, 5, 2)
	m, err := NewGridWalk(h)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := m.NewSim(40, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res := flood.Run(sim, 0, flood.Opts{MaxSteps: 100000})
	if !res.Completed {
		t.Fatal("random-walk model flooding did not complete")
	}
}

func TestParityObstructionOnBipartiteWalk(t *testing.T) {
	// On a plain (bipartite) grid with unit-hop movement and same-point
	// connection, a node's position parity class is invariant, so flooding
	// provably stalls at the source's parity class. This is a genuine
	// property of the paper's ρ=1, r=0 setting on bipartite H.
	h := graph.Grid(4, 4)
	m, err := NewGridWalk(h)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := m.NewSim(24, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	res := flood.Run(sim, 0, flood.Opts{MaxSteps: 20000, KeepTimeline: true})
	if res.Completed {
		t.Fatal("bipartite same-point flooding should stall on the parity class")
	}
	// The informed set must saturate strictly between 1 and n.
	final := res.Timeline[len(res.Timeline)-1]
	if final <= 1 || final >= 24 {
		t.Fatalf("stalled informed set size = %d, want strictly inside (1, 24)", final)
	}
	// Hop radius 1 restores cross-parity contact and completes.
	sim2, err := m.NewSimHopRadius(24, 1, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	res2 := flood.Run(sim2, 0, flood.Opts{MaxSteps: 100000})
	if !res2.Completed {
		t.Fatal("hop-radius-1 flooding should complete on bipartite grid")
	}
}

func TestSimFloodingLPathsFasterThanWalk(t *testing.T) {
	// On the same grid with the same node count and connection radius,
	// long shortest-path trips mix positions in O(diameter) rather than
	// O(diameter²): flooding over L-paths should beat the one-hop walk.
	// The gap needs a sparse-contact regime (few nodes, large grid); with
	// dense contact both models flood in a handful of steps.
	mSide := 10
	h := graph.Grid(mSide, mSide)
	median := func(mk func() *nodemeg.Sim) float64 {
		var times []float64
		for trial := 0; trial < 9; trial++ {
			res := flood.Run(mk(), 0, flood.Opts{MaxSteps: 60000})
			if res.Completed {
				times = append(times, float64(res.Time))
			}
		}
		return stats.Median(times)
	}
	walkModel, err := NewGridWalk(h)
	if err != nil {
		t.Fatal(err)
	}
	lModel, err := New(h, GridLPaths(mSide))
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(100)
	walkTime := median(func() *nodemeg.Sim {
		seed++
		s, err := walkModel.NewSimHopRadius(8, 1, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	lTime := median(func() *nodemeg.Sim {
		seed++
		s, err := lModel.NewSimHopRadius(8, 1, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	if !(lTime < walkTime) {
		t.Fatalf("L-paths (%v) should flood faster than walk (%v)", lTime, walkTime)
	}
}

func TestHopConnectionRadiusZeroMatchesPointConnection(t *testing.T) {
	m, err := New(graph.Path(3), []Path{{0, 1, 2}, {2, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	hop, err := m.HopConnection(0)
	if err != nil {
		t.Fatal(err)
	}
	pt := m.Connection()
	for u := 0; u < m.NumStates(); u++ {
		for v := 0; v < m.NumStates(); v++ {
			if hop.Connected(u, v) != pt.Connected(u, v) {
				t.Fatalf("r=0 hop connection differs at (%d,%d)", u, v)
			}
		}
	}
	if _, err := m.HopConnection(-1); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestHopConnectionRadiusOne(t *testing.T) {
	m, err := New(graph.Path(3), []Path{{0, 1, 2}, {2, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	hop, err := m.HopConnection(1)
	if err != nil {
		t.Fatal(err)
	}
	// State 0 is at point 1; state 1 at point 2; state 3 at point 0.
	if !hop.Connected(0, 1) || !hop.Connected(0, 3) {
		t.Fatal("adjacent-point states should connect at r=1")
	}
	// States 1 (point 2) and 3 (point 0) are two hops apart.
	if hop.Connected(1, 3) {
		t.Fatal("distance-2 states connected at r=1")
	}
	// NeighborStates covers the same set Connected accepts.
	for s := 0; s < m.NumStates(); s++ {
		inEnum := map[int]bool{}
		for _, v := range hop.NeighborStates(s) {
			inEnum[int(v)] = true
		}
		for v := 0; v < m.NumStates(); v++ {
			if hop.Connected(s, v) != inEnum[v] {
				t.Fatalf("enum/connected mismatch at (%d,%d)", s, v)
			}
		}
	}
}

func TestNewGridWalkRejectsIsolated(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	if _, err := NewGridWalk(b.Build()); err == nil {
		t.Fatal("isolated vertex accepted")
	}
}

func BenchmarkLPathSimStep(b *testing.B) {
	m, err := New(graph.Grid(8, 8), GridLPaths(8))
	if err != nil {
		b.Fatal(err)
	}
	sim, err := m.NewSim(500, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}
