package randompath

import (
	"fmt"
	"sync"

	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/rng"
)

// FamilyPaths returns the named built-in path family over an m×m grid.
// The same names are accepted by the "paths" model spec.
func FamilyPaths(family string, m int, h *graph.Graph) ([]Path, error) {
	switch family {
	case "l":
		return GridLPaths(m), nil
	case "edges":
		return EdgePaths(h), nil
	case "star":
		return StarPaths(m), nil
	}
	return nil, fmt.Errorf("randompath: unknown family %q (want l, edges, or star)", family)
}

// Experiment harnesses build one simulation per trial from the same spec,
// so the registry memoizes the indexed Model per (family, m): generating
// and validating a grid path family costs O(m⁵), while the Model itself is
// immutable after New and safe to share across concurrent sims.
var modelCache struct {
	sync.Mutex
	byKey map[[2]any]*Model
}

func cachedGridModel(family string, m int) (*Model, error) {
	key := [2]any{family, m}
	modelCache.Lock()
	defer modelCache.Unlock()
	if mod, ok := modelCache.byKey[key]; ok {
		return mod, nil
	}
	h := graph.Grid(m, m)
	paths, err := FamilyPaths(family, m, h)
	if err != nil {
		return nil, err
	}
	mod, err := New(h, paths)
	if err != nil {
		return nil, err
	}
	if modelCache.byKey == nil {
		modelCache.byKey = map[[2]any]*Model{}
	}
	modelCache.byKey[key] = mod
	return mod, nil
}

func init() {
	model.Register(model.Definition{
		Name: "paths",
		Help: "random-path mobility RP = (H, P) over an m×m grid, hop-radius connection",
		Params: []model.Param{
			{Name: "n", Kind: model.Int, Default: "30", Help: "nodes"},
			{Name: "m", Kind: model.Int, Default: "10", Help: "grid side of the mobility graph H"},
			{Name: "family", Kind: model.String, Default: "l", Help: "path family: l (L-shaped shortest paths) | edges (walk) | star (congested)"},
			{Name: "hop", Kind: model.Int, Default: "1", Help: "transmission hop radius in H"},
		},
		Build: func(a model.Args, r *rng.RNG) (dyngraph.Dynamic, error) {
			mod, err := cachedGridModel(a.String("family"), a.Int("m"))
			if err != nil {
				return nil, err
			}
			return mod.NewSimHopRadius(a.Int("n"), a.Int("hop"), r)
		},
	})
}
