package randompath

import (
	"fmt"
	"sort"

	"repro/internal/markov"
	"repro/internal/nodemeg"
	"repro/internal/rng"
)

// HopConnection connects two states when their points are within hop
// distance r in the mobility graph H. r = 0 degenerates to the same-point
// PointConnection. This is the general transmission model of Section 4.1
// for walks on graphs: "The transmission radius r determines the maximal
// distance (again in terms of number of hops in H(V,A)) within which a
// message can be successfully transmitted."
//
// Beyond fidelity, hop radius r >= 1 matters on bipartite mobility graphs
// (grids!): with unit-hop movement and same-point connection, every node's
// position parity class is invariant, so nodes in different classes never
// co-locate and flooding provably stalls at one parity class. A hop radius
// of 1 restores cross-parity contact. See TestParityObstruction.
type HopConnection struct {
	pointOf    []int32
	nearStates [][]int32 // per point: states at points within distance r
	nearPoints [][]int32 // per point: sorted points within distance r
}

var _ nodemeg.ConnectionMap = (*HopConnection)(nil)
var _ nodemeg.NeighborEnumerator = (*HopConnection)(nil)

// HopConnection builds the radius-r connection map for the model. The
// precomputation runs one truncated BFS per point, O(|V| · ball size).
func (m *Model) HopConnection(r int) (*HopConnection, error) {
	if r < 0 {
		return nil, fmt.Errorf("randompath: hop radius %d < 0", r)
	}
	h := m.h
	c := &HopConnection{
		pointOf:    m.pointOf,
		nearStates: make([][]int32, h.N()),
		nearPoints: make([][]int32, h.N()),
	}
	dist := make([]int, h.N())
	for src := 0; src < h.N(); src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int32{int32(src)}
		ball := []int32{int32(src)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if dist[v] == r {
				continue
			}
			h.ForEachNeighbor(int(v), func(u int) {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, int32(u))
					ball = append(ball, int32(u))
				}
			})
		}
		sort.Slice(ball, func(i, j int) bool { return ball[i] < ball[j] })
		c.nearPoints[src] = ball
		var states []int32
		for _, u := range ball {
			states = append(states, m.byPoint[u]...)
		}
		c.nearStates[src] = states
	}
	return c, nil
}

// NumStates implements nodemeg.ConnectionMap.
func (c *HopConnection) NumStates() int { return len(c.pointOf) }

// Connected implements nodemeg.ConnectionMap.
func (c *HopConnection) Connected(u, v int) bool {
	pu, pv := c.pointOf[u], c.pointOf[v]
	ball := c.nearPoints[pu]
	i := sort.Search(len(ball), func(i int) bool { return ball[i] >= pv })
	return i < len(ball) && ball[i] == pv
}

// NeighborStates implements nodemeg.NeighborEnumerator.
func (c *HopConnection) NeighborStates(s int) []int32 {
	return c.nearStates[c.pointOf[s]]
}

// NewSimHopRadius builds the node-MEG simulation with the radius-r hop
// connection, starting from the uniform state distribution.
func (m *Model) NewSimHopRadius(n, r int, rg *rng.RNG) (*nodemeg.Sim, error) {
	conn, err := m.HopConnection(r)
	if err != nil {
		return nil, err
	}
	init := make([]float64, m.nstates)
	for i := range init {
		init[i] = 1 / float64(m.nstates)
	}
	sim, err := nodemeg.NewSim(n, markov.NewSparseSampler(m.Chain()), conn, init, rg)
	if err != nil {
		return nil, fmt.Errorf("randompath: building hop-radius sim: %w", err)
	}
	return sim, nil
}
