// Package randompath implements the random paths mobility model
// RP = (H, P) of Section 4.1: nodes travel along paths drawn from a fixed
// feasible family P of simple paths of a mobility graph H, choosing
// uniformly among the paths leaving their current endpoint; two nodes are
// connected when they occupy the same point. The random walk over H is the
// special case where P is the edge set.
//
// The package provides the path-family builders used in the experiments
// (edge families, L-shaped shortest paths on grids, congested star
// families), the per-node Markov chain of the node-MEG realization, the
// point-congestion statistics #P(u) and δ-regularity of Corollary 5, and
// the simplicity/reversibility checks under which the chain's stationary
// distribution is uniform (Markov trace models, Theorem 11 of [14]).
package randompath

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/markov"
	"repro/internal/nodemeg"
	"repro/internal/rng"
)

// Path is a sequence of at least two points, consecutive ones adjacent
// in the mobility graph.
type Path []int32

// Model is a validated random-path model RP = (H, P).
type Model struct {
	h       *graph.Graph
	paths   []Path
	startAt [][]int32 // path indices starting at each point
	// State space: states are (path, position) pairs with position in
	// [1, len(path)) (the paper indexes 2..ℓ(h); we use 0-based slices).
	// stateOf[p] is the id of path p's first state (position 1).
	stateOf []int32
	nstates int
	pointOf []int32   // state -> point
	byPoint [][]int32 // point -> states at that point
}

// New validates and indexes a random-path model. Requirements:
//   - every path has length >= 2 and consecutive points adjacent in h;
//   - every path's endpoint has at least one outgoing path (the closure
//     property "there is a path h' ∈ P such that h' starts where h ends").
func New(h *graph.Graph, paths []Path) (*Model, error) {
	if len(paths) == 0 {
		return nil, errors.New("randompath: empty path family")
	}
	m := &Model{
		h:       h,
		paths:   paths,
		startAt: make([][]int32, h.N()),
		stateOf: make([]int32, len(paths)),
	}
	for pi, p := range paths {
		if len(p) < 2 {
			return nil, fmt.Errorf("randompath: path %d has %d points, need >= 2", pi, len(p))
		}
		for k := 0; k < len(p); k++ {
			if p[k] < 0 || int(p[k]) >= h.N() {
				return nil, fmt.Errorf("randompath: path %d visits invalid point %d", pi, p[k])
			}
			if k > 0 && !h.HasEdge(int(p[k-1]), int(p[k])) {
				return nil, fmt.Errorf("randompath: path %d step %d-%d is not an edge of H", pi, p[k-1], p[k])
			}
		}
		m.startAt[p[0]] = append(m.startAt[p[0]], int32(pi))
	}
	for pi, p := range paths {
		end := p[len(p)-1]
		if len(m.startAt[end]) == 0 {
			return nil, fmt.Errorf("randompath: no path starts at point %d, the endpoint of path %d", end, pi)
		}
	}
	// Enumerate states.
	for pi, p := range paths {
		m.stateOf[pi] = int32(m.nstates)
		m.nstates += len(p) - 1
	}
	m.pointOf = make([]int32, m.nstates)
	m.byPoint = make([][]int32, h.N())
	for pi, p := range paths {
		base := int(m.stateOf[pi])
		for k := 1; k < len(p); k++ {
			s := base + k - 1
			m.pointOf[s] = p[k]
			m.byPoint[p[k]] = append(m.byPoint[p[k]], int32(s))
		}
	}
	return m, nil
}

// H returns the mobility graph.
func (m *Model) H() *graph.Graph { return m.h }

// Paths returns the path family (shared storage; do not modify).
func (m *Model) Paths() []Path { return m.paths }

// NumStates returns |S| of the node-MEG realization.
func (m *Model) NumStates() int { return m.nstates }

// PointOfState returns the grid point a state occupies.
func (m *Model) PointOfState(s int) int { return int(m.pointOf[s]) }

// IsSimple reports whether every path visits no point twice, except that
// the start and end points may coincide (the paper's definition).
func (m *Model) IsSimple() bool {
	seen := make(map[int32]int)
	for _, p := range m.paths {
		clear(seen)
		for k, pt := range p {
			if prev, dup := seen[pt]; dup {
				// Allowed only for start == end.
				if !(prev == 0 && k == len(p)-1) {
					return false
				}
			}
			seen[pt] = k
		}
	}
	return true
}

// IsReversible reports whether the reverse of every path is in the family.
func (m *Model) IsReversible() bool {
	index := make(map[string]bool, len(m.paths))
	for _, p := range m.paths {
		index[pathKey(p)] = true
	}
	rev := make(Path, 0, 64)
	for _, p := range m.paths {
		rev = rev[:0]
		for k := len(p) - 1; k >= 0; k-- {
			rev = append(rev, p[k])
		}
		if !index[pathKey(rev)] {
			return false
		}
	}
	return true
}

func pathKey(p Path) string {
	// Paths are small; a byte-packed key is fine and avoids a custom
	// comparable wrapper.
	buf := make([]byte, 0, len(p)*4)
	for _, v := range p {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// Congestion returns #P(u) for every point u: the number of paths passing
// through u at some position 2..ℓ(h) (the paper's definition, which counts
// the end point but not the start point).
func (m *Model) Congestion() []int {
	c := make([]int, m.h.N())
	for u := range c {
		c[u] = len(m.byPoint[u])
	}
	// byPoint counts states, which are exactly (path, position>=2) pairs —
	// but a path visiting u twice (start==end case) still contributes one
	// state per visit. The paper counts paths, so deduplicate per path.
	for u := range c {
		c[u] = 0
	}
	counted := make(map[[2]int32]bool)
	for pi, p := range m.paths {
		for k := 1; k < len(p); k++ {
			key := [2]int32{int32(pi), p[k]}
			if !counted[key] {
				counted[key] = true
				c[p[k]]++
			}
		}
	}
	return c
}

// DeltaRegularity returns the smallest δ for which the family is δ-regular:
// max_u #P(u) / (Σ_v #P(v) / |V|).
func (m *Model) DeltaRegularity() float64 {
	c := m.Congestion()
	max, total := 0, 0
	for _, v := range c {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	avg := float64(total) / float64(len(c))
	return float64(max) / avg
}

// Chain builds the sparse per-node Markov chain M_RP of the node-MEG
// realization: deterministic advancement inside a path, uniform choice
// among P(endpoint) at the end.
func (m *Model) Chain() *markov.Sparse {
	b := markov.NewSparseBuilder(m.nstates)
	for pi, p := range m.paths {
		base := int(m.stateOf[pi])
		last := len(p) - 2 // index of the final state of this path
		for k := 0; k < last; k++ {
			b.Set(base+k, base+k+1, 1)
		}
		// End of path: jump to position 1 of a uniform outgoing path.
		end := p[len(p)-1]
		outgoing := m.startAt[end]
		prob := 1 / float64(len(outgoing))
		for _, qi := range outgoing {
			b.Set(base+last, int(m.stateOf[qi]), prob)
		}
	}
	return b.MustBuild()
}

// Connection returns the same-point connection map over the state space.
func (m *Model) Connection() *PointConnection {
	return &PointConnection{pointOf: m.pointOf, byPoint: m.byPoint}
}

// NewSim builds the node-MEG simulation of n nodes moving under the model,
// starting from the uniform distribution over states — the exact stationary
// law when the family is simple and reversible.
func (m *Model) NewSim(n int, r *rng.RNG) (*nodemeg.Sim, error) {
	init := make([]float64, m.nstates)
	for i := range init {
		init[i] = 1 / float64(m.nstates)
	}
	sim, err := nodemeg.NewSim(n, markov.NewSparseSampler(m.Chain()), m.Connection(), init, r)
	if err != nil {
		return nil, fmt.Errorf("randompath: building sim: %w", err)
	}
	return sim, nil
}

// PointConnection connects states that map to the same point of H.
type PointConnection struct {
	pointOf []int32
	byPoint [][]int32
}

var _ nodemeg.ConnectionMap = (*PointConnection)(nil)
var _ nodemeg.NeighborEnumerator = (*PointConnection)(nil)

// NumStates implements nodemeg.ConnectionMap.
func (c *PointConnection) NumStates() int { return len(c.pointOf) }

// Connected implements nodemeg.ConnectionMap.
func (c *PointConnection) Connected(u, v int) bool {
	return c.pointOf[u] == c.pointOf[v]
}

// NeighborStates implements nodemeg.NeighborEnumerator: all states at the
// same point (including the state itself; the simulator skips self-pairs).
func (c *PointConnection) NeighborStates(s int) []int32 {
	return c.byPoint[c.pointOf[s]]
}
