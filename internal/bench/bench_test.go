package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/study"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registry has %d experiments, want 18", len(all))
	}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
	}
	// Ordered E1..E18.
	if all[0].ID != "E1" || all[17].ID != "E18" {
		t.Fatalf("ordering wrong: first %s last %s", all[0].ID, all[17].ID)
	}
	for i := 1; i < len(all); i++ {
		if idNum(all[i-1].ID) >= idNum(all[i].ID) {
			t.Fatal("registry not sorted numerically")
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("E999"); ok {
		t.Fatal("unknown experiment found")
	}
	if err := RunOne("E999", Config{}, io.Discard); err == nil {
		t.Fatal("RunOne with unknown ID should error")
	}
}

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	tab := NewTable(&buf, "col-a", "b")
	tab.Row(1, "xx")
	tab.Row(100000, "y")
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d", len(lines))
	}
	// The second column must start at the same offset in every line.
	off := strings.Index(lines[0], "b")
	if strings.Index(lines[1], "xx") != off || strings.Index(lines[2], "y") != off {
		t.Fatalf("columns not aligned:\n%s", buf.String())
	}
}

func TestFormatters(t *testing.T) {
	if f1(1.26) != "1.3" || f2(1.267) != "1.27" || f3(1.2675) != "1.267" && f3(1.2675) != "1.268" {
		t.Fatal("fixed formatters wrong")
	}
	if g3(123456) != "1.23e+05" {
		t.Fatalf("g3 = %s", g3(123456.0))
	}
}

// TestQuickExperimentsRun smoke-tests every registered experiment at quick
// scale, ensuring tables render without error and are deterministic for a
// fixed seed.
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take tens of seconds")
	}
	cfg := Config{Quick: true, Seed: 7}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := RunOne(e.ID, cfg, &buf); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "check:") {
				t.Fatalf("%s output has no check line:\n%s", e.ID, out)
			}
			if strings.Contains(out, "NaN") {
				t.Fatalf("%s output contains NaN:\n%s", e.ID, out)
			}
		})
	}
}

func TestDeterministicOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick experiment twice")
	}
	run := func() string {
		var buf bytes.Buffer
		if err := RunOne("E3", Config{Quick: true, Seed: 42, Workers: 3}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run() != run() {
		t.Fatal("same seed produced different tables")
	}
}

// TestE18SweepMatchesGrid pins the re-plumbing of E18 through the
// declarative sweep path: for the exact campaign benchtab runs, the sweep
// records carry the same per-trial numbers as the study.Grid call the
// experiment used before.
func TestE18SweepMatchesGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the E18 quick grid twice")
	}
	cfg := Config{Quick: true, Seed: 7}
	sw := e18Sweep(cfg)
	records, err := study.RunSweep(sw, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := study.Grid(study.Study{
		Trials:   sw.Trials,
		Seed:     sw.Seed,
		Workers:  sw.Workers,
		MaxSteps: sw.MaxSteps,
	}, sw.Models, sw.Protocols)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(cells) {
		t.Fatalf("sweep ran %d cells, grid %d", len(records), len(cells))
	}
	for i, rec := range records {
		cell := cells[i]
		if rec.Model != cell.Model || rec.Protocol != cell.Protocol {
			t.Fatalf("cell %d identity mismatch: %v vs %s × %s", i, rec.Key(), cell.Model, cell.Protocol)
		}
		for trial, res := range cell.Results {
			if rec.Times[trial] != res.Time || rec.HalfTimes[trial] != res.HalfTime {
				t.Fatalf("cell %d trial %d: sweep (%d, %d) vs grid (%d, %d)",
					i, trial, rec.Times[trial], rec.HalfTimes[trial], res.Time, res.HalfTime)
			}
			if rec.Messages[trial] != res.Messages || rec.Useless[trial] != res.Useless {
				t.Fatalf("cell %d trial %d: sweep cost (%d, %d) vs grid (%d, %d)",
					i, trial, rec.Messages[trial], rec.Useless[trial], res.Messages, res.Useless)
			}
		}
	}
}
