package bench

// Row-by-row diffing of two BENCH_<date>.json records, behind
// `benchtab -compare a.json b.json`: where the baseline gate answers "did
// THE pinned row regress against the committed record", compare answers
// "what moved between these two runs" — every row, with percentage deltas
// for ns/op and B/op and absolute allocs/op, plus a regression verdict per
// row using the same slack semantics as the gate. Telemetry summaries
// (telemetry.Summarize) cover runtime behavior of a sweep; this covers the
// microbenchmark trajectory between PRs.

import (
	"fmt"
	"io"
)

// CompareRow is the diff of one benchmark row between record A (the
// reference, usually older) and record B (the candidate).
type CompareRow struct {
	Name string
	// A and B are the matched rows; OnlyIn marks rows present in just one
	// record ("a" or "b"), in which case the other side and the deltas are
	// zero and the row is never a regression.
	A, B   MicroResult
	OnlyIn string
	// DeltaNsPct and DeltaBytesPct are B relative to A in percent
	// (+10 = B is 10% slower / bigger).
	DeltaNsPct    float64
	DeltaBytesPct float64
	// Regressed reports whether B exceeds A's ns/op by more than the slack
	// or allocates more per op — allocation growth has no slack, matching
	// the zero-alloc engine pins.
	Regressed bool
}

// Compare diffs two records row by row. Rows are emitted in A's order,
// followed by rows that exist only in B; matching is by name. slackPct is
// the ns/op slowdown tolerated before a row counts as regressed.
func Compare(a, b MicroRecord, slackPct float64) []CompareRow {
	inB := make(map[string]MicroResult, len(b.Benchmarks))
	for _, r := range b.Benchmarks {
		inB[r.Name] = r
	}
	rows := make([]CompareRow, 0, len(a.Benchmarks))
	for _, ra := range a.Benchmarks {
		rb, ok := inB[ra.Name]
		if !ok {
			rows = append(rows, CompareRow{Name: ra.Name, A: ra, OnlyIn: "a"})
			continue
		}
		delete(inB, ra.Name)
		row := CompareRow{Name: ra.Name, A: ra, B: rb}
		if ra.NsPerOp > 0 {
			row.DeltaNsPct = 100 * (rb.NsPerOp/ra.NsPerOp - 1)
		}
		if ra.BytesPerOp > 0 {
			row.DeltaBytesPct = 100 * (float64(rb.BytesPerOp)/float64(ra.BytesPerOp) - 1)
		}
		row.Regressed = rb.NsPerOp > ra.NsPerOp*(1+slackPct/100) || rb.AllocsPerOp > ra.AllocsPerOp
		rows = append(rows, row)
	}
	for _, rb := range b.Benchmarks {
		if _, ok := inB[rb.Name]; ok {
			rows = append(rows, CompareRow{Name: rb.Name, B: rb, OnlyIn: "b"})
		}
	}
	return rows
}

// Regressions filters the regressed rows.
func Regressions(rows []CompareRow) []CompareRow {
	var out []CompareRow
	for _, r := range rows {
		if r.Regressed {
			out = append(out, r)
		}
	}
	return out
}

// GatedRegressions filters the regressed rows whose workload is
// comparable across run modes: rows marked ModeIndependent in BOTH
// records. This is the CI cross-mode gate — a quick CI record diffed
// against the committed full-suite baseline may only fail on rows whose
// workload is identical in the two modes; every other row legitimately
// differs (reduced sizes under -quick) and is reported but never gates.
// Records written before the mode_independent field parse with it false
// everywhere, so gating against an old baseline fails nothing until a
// fresh baseline is committed.
func GatedRegressions(rows []CompareRow) []CompareRow {
	var out []CompareRow
	for _, r := range rows {
		if r.Regressed && r.A.ModeIndependent && r.B.ModeIndependent {
			out = append(out, r)
		}
	}
	return out
}

// WriteCompare renders the diff as an aligned text table: one line per
// row with both sides' ns/op, the percentage delta, both sides' allocs,
// and a REGRESSED marker.
func WriteCompare(w io.Writer, rows []CompareRow) error {
	width := len("benchmark")
	for _, r := range rows {
		if len(r.Name) > width {
			width = len(r.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s %14s %14s %9s %13s %s\n",
		width, "benchmark", "a ns/op", "b ns/op", "Δns", "allocs a→b", ""); err != nil {
		return err
	}
	for _, r := range rows {
		switch r.OnlyIn {
		case "a":
			if _, err := fmt.Fprintf(w, "%-*s %14.0f %14s %9s %13s only in a\n",
				width, r.Name, r.A.NsPerOp, "-", "-", "-"); err != nil {
				return err
			}
		case "b":
			if _, err := fmt.Fprintf(w, "%-*s %14s %14.0f %9s %13s only in b\n",
				width, r.Name, "-", r.B.NsPerOp, "-", "-"); err != nil {
				return err
			}
		default:
			mark := ""
			if r.Regressed {
				mark = "REGRESSED"
			}
			if _, err := fmt.Fprintf(w, "%-*s %14.0f %14.0f %8.1f%% %13s %s\n",
				width, r.Name, r.A.NsPerOp, r.B.NsPerOp, r.DeltaNsPct,
				fmt.Sprintf("%d→%d", r.A.AllocsPerOp, r.B.AllocsPerOp), mark); err != nil {
				return err
			}
		}
	}
	return nil
}
