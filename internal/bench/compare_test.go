package bench

import (
	"strings"
	"testing"
)

func rec(rows ...MicroResult) MicroRecord {
	return MicroRecord{Schema: "repro-bench/v1", Benchmarks: rows}
}

func TestCompare(t *testing.T) {
	a := rec(
		MicroResult{Name: "fast", NsPerOp: 1000, AllocsPerOp: 0, BytesPerOp: 0},
		MicroResult{Name: "slow", NsPerOp: 2000, AllocsPerOp: 3, BytesPerOp: 100},
		MicroResult{Name: "gone", NsPerOp: 500},
	)
	b := rec(
		MicroResult{Name: "fast", NsPerOp: 1100, AllocsPerOp: 0, BytesPerOp: 0},  // +10%: within slack
		MicroResult{Name: "slow", NsPerOp: 2900, AllocsPerOp: 3, BytesPerOp: 50}, // +45%: regressed
		MicroResult{Name: "new", NsPerOp: 700},
	)
	rows := Compare(a, b, 25)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	byName := map[string]CompareRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	fast := byName["fast"]
	if fast.Regressed || fast.DeltaNsPct < 9.9 || fast.DeltaNsPct > 10.1 {
		t.Fatalf("fast = %+v", fast)
	}
	slow := byName["slow"]
	if !slow.Regressed || slow.DeltaBytesPct < -51 || slow.DeltaBytesPct > -49 {
		t.Fatalf("slow = %+v", slow)
	}
	if byName["gone"].OnlyIn != "a" || byName["new"].OnlyIn != "b" {
		t.Fatalf("unmatched rows: %+v / %+v", byName["gone"], byName["new"])
	}
	if byName["gone"].Regressed || byName["new"].Regressed {
		t.Fatal("unmatched rows must not count as regressions")
	}
	if got := Regressions(rows); len(got) != 1 || got[0].Name != "slow" {
		t.Fatalf("regressions = %+v", got)
	}

	// Allocation growth regresses with zero slack, even when faster.
	b2 := rec(MicroResult{Name: "fast", NsPerOp: 900, AllocsPerOp: 1})
	if got := Regressions(Compare(rec(a.Benchmarks[0]), b2, 25)); len(got) != 1 {
		t.Fatalf("alloc growth not flagged: %+v", got)
	}

	// Identical records: no regressions, table renders every row.
	same := Compare(a, a, 25)
	if len(Regressions(same)) != 0 {
		t.Fatalf("self-compare regressed: %+v", Regressions(same))
	}
	var buf strings.Builder
	if err := WriteCompare(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"benchmark", "REGRESSED", "only in a", "only in b", "3→3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare table missing %q:\n%s", want, out)
		}
	}
}
