// Package bench is the experiment harness that regenerates every
// quantitative claim of the paper as a table: the experiment registry
// (E1–E13, indexed in DESIGN.md), parameter sweeps, and the shared
// configuration used by cmd/benchtab and the root bench_test.go.
package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/study"
)

// Config selects the scale of an experiment run.
type Config struct {
	// Quick selects reduced sizes/trials for CI and testing.B usage;
	// the full configuration reproduces EXPERIMENTS.md.
	Quick bool
	// Seed is the master seed; every experiment derives all randomness
	// from it, so equal (Config, experiment) pairs print identical tables.
	Seed uint64
	// Workers bounds trial parallelism (0 = GOMAXPROCS).
	Workers int
}

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the stable identifier (e.g. "E4") used across DESIGN.md,
	// EXPERIMENTS.md and bench_test.go.
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the paper statement the experiment checks.
	Claim string
	// Run executes the experiment, writing its table to w.
	Run func(cfg Config, w io.Writer) error
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs are a programming error.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment ordered by ID (E1, E2, ..., E13).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware ordering of "E<k>".
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

func idNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// RunOne executes experiment id with a standard header.
func RunOne(id string, cfg Config, w io.Writer) error {
	e, ok := Get(id)
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
	fmt.Fprintf(w, "== %s: %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "   claim: %s\n", e.Claim)
	if err := e.Run(cfg, w); err != nil {
		return fmt.Errorf("bench: %s failed: %w", e.ID, err)
	}
	fmt.Fprintln(w)
	return nil
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range All() {
		if err := RunOne(e.ID, cfg, w); err != nil {
			return err
		}
	}
	return nil
}

// buildModel constructs a registered model from its spec with the trial
// seed derived from the given seed words. Experiment specs are static
// program text, so spec errors are programming errors and panic.
func buildModel(spec model.Spec, base uint64, tags ...uint64) dyngraph.Dynamic {
	return model.MustBuild(spec, rng.Seed(base, tags...))
}

// edgemegSpec is the spec of a stationary two-state edge-MEG, the
// workhorse model of the Appendix A experiments.
func edgemegSpec(n int, p, q float64) model.Spec {
	return model.New("edgemeg").WithInt("n", n).WithFloat("p", p).WithFloat("q", q)
}

// waypointSpec is the spec of a steady-state random waypoint model with
// fixed speed v.
func waypointSpec(n int, l, r, v float64) model.Spec {
	return model.New("waypoint").WithInt("n", n).WithFloat("L", l).WithFloat("r", r).WithFloat("vmin", v)
}

// modelFactory builds the (graph, source) pair for one trial of a
// flooding grid; experiments that wrap or hand-build models use it with
// medianFlood instead of a registered spec.
type modelFactory func(trial int) (d dyngraph.Dynamic, source int)

// medianFlood runs trials floods through the study engine and returns the
// median completed time, the count of incomplete runs, and the full
// summary. Flooding is deterministic, so the shared protocol.Flooding()
// instance serves every trial.
func medianFlood(factory modelFactory, trials, maxSteps, workers int) (median float64, incomplete int, sum stats.Summary) {
	results := study.Trials(func(trial int) (dyngraph.Dynamic, protocol.Protocol, int) {
		d, source := factory(trial)
		return d, protocol.Flooding(), source
	}, trials, study.TrialsOpts{
		Opts:    flood.Opts{MaxSteps: maxSteps},
		Workers: workers,
	})
	times, inc := study.TimesOf(results)
	return stats.Median(times), inc, stats.Summarize(times)
}

// cellStats extracts the (median, incomplete) table cells of a study cell.
func cellStats(c study.Cell) (median float64, incomplete int) {
	return c.Times.Median, c.Incomplete
}
