package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/markov"
	"repro/internal/nodemeg"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/study"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Randomized push gossip as flooding on a virtual subsampled MEG (Section 5)",
		Claim: "the k-neighbor randomized protocol reduces to flooding on a dynamic graph with edges removed; completion degrades gracefully as k shrinks and matches flooding for large k",
		Run:   runE12,
	})

	register(Experiment{
		ID:    "E13",
		Title: "Theorem 3 η-dependence on a tunable node-MEG",
		Claim: "with Tmix = 1 and same-state connection, skewing the occupancy law raises η; measured flooding stays below the Theorem 3 bound while the bound inflates as (1/(nP_NM)+η)²",
		Run:   runE13,
	})
}

func runE12(cfg Config, w io.Writer) error {
	n := 256
	trials := 20
	if cfg.Quick {
		n = 128
		trials = 8
	}
	// Moderately dense edge-MEG so nodes have several neighbors to sample.
	alpha := 8.0 / float64(n)
	speed := 0.2
	base := study.Study{
		Model:    edgemegSpec(n, alpha*speed, speed-alpha*speed),
		Trials:   trials,
		Seed:     rng.Seed(cfg.Seed, 15),
		Workers:  cfg.Workers,
		MaxSteps: 1 << 16,
	}

	full := base
	full.Protocol = protocol.New("flood")
	fullCell, err := study.Run(full)
	if err != nil {
		return err
	}
	fullMed := fullCell.Times.Median

	tab := NewTable(w, "push limit k", "median-completion", "slowdown vs flooding")
	for _, k := range []int{1, 2, 4, 8} {
		s := base
		s.Protocol = protocol.New("push").WithInt("k", k)
		cell, err := study.Run(s)
		if err != nil {
			return err
		}
		med, inc := cellStats(cell)
		if inc > 0 {
			tab.Row(k, fmt.Sprintf("%v (%d incomplete)", med, inc), "")
			continue
		}
		tab.Row(k, med, f2(med/fullMed))
	}
	tab.Row("∞ (flooding)", fullMed, f2(1.0))
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: slowdown shrinks toward 1 as k grows; even k=1 completes — the virtual-graph reduction preserves the flooding analysis")
	return nil
}

func runE13(cfg Config, w io.Writer) error {
	n := 128
	states := 64
	trials := 20
	if cfg.Quick {
		trials = 8
	}
	conn := nodemeg.SameState{S: states}
	tab := NewTable(w, "hotspot weight", "P_NM", "eta", "median-flood", "Thm3 bound", "bound/measured")
	for _, hot := range []float64{1, 4, 16, 64} {
		weights := make([]float64, states)
		for i := range weights {
			weights[i] = 1
		}
		weights[0] = hot
		pi := stats.Normalize(weights)
		pnm := nodemeg.PNM(pi, conn)
		eta := nodemeg.Eta(pi, conn)
		// IID chain: every row equals π, so Tmix = 1 and the stationary law
		// is exactly π from the first step.
		rows := make([][]float64, states)
		for i := range rows {
			rows[i] = append([]float64(nil), pi...)
		}
		sampler := markov.NewSampler(markov.MustChain(rows))
		factory := func(trial int) (dyngraph.Dynamic, int) {
			sim, err := nodemeg.NewSim(n, sampler, conn, pi,
				rng.New(rng.Seed(cfg.Seed, 17, uint64(hot), uint64(trial))))
			if err != nil {
				panic(err)
			}
			return sim, 0
		}
		med, _, _ := medianFlood(factory, trials, 1<<16, cfg.Workers)
		bound := core.Theorem3Bound(1, pnm, eta, n)
		tab.Row(f1(hot), g3(pnm), f2(eta), med, g3(bound), f1(bound/med))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: η rises with moderate skew (and falls again toward a point mass, where meetings re-concentrate); the bound inflates quadratically in η while measured times stay safely below it (Theorem 3 is an upper bound)")
	return nil
}
