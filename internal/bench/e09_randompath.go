package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/randompath"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/study"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Random paths on grids with shortest-path families: flooding vs diameter",
		Claim: "with one feasible simple path family per pair and δ = polylog, flooding = O(D polylog n), within polylog of the trivial Ω(D) lower bound",
		Run:   runE9,
	})

	register(Experiment{
		ID:    "E10",
		Title: "δ-regularity ablation: balanced vs congested path families",
		Claim: "Corollary 5 charges (|V|/n + δ³)²; the congested star family blows the bound up by δ³ ≈ |V|-scale factors while the balanced L-family keeps δ = O(1)",
		Run:   runE10,
	})
}

func runE9(cfg Config, w io.Writer) error {
	ms := []int{6, 9, 12, 15}
	trials := 15
	if cfg.Quick {
		ms = []int{6, 9, 12}
		trials = 6
	}
	// Corollary 5's core is (|V|/n + δ³)²·Tmix: keep n proportional to |V|
	// so the D-dependence (Tmix ~ D for shortest-path families) is
	// isolated from the |V|/n density term.
	tab := NewTable(w, "m", "|V|", "n", "D", "delta", "median-flood", "flood/D", "incomplete")
	var ds, floods []float64
	for _, m := range ms {
		h := graph.Grid(m, m)
		rp, err := randompath.New(h, randompath.GridLPaths(m))
		if err != nil {
			return err
		}
		diam := h.Diameter()
		nodes := m * m / 2
		cell, err := study.Run(study.Study{
			Model:    model.New("paths").WithInt("n", nodes).WithInt("m", m).With("family", "l").WithInt("hop", 1),
			Protocol: protocol.New("flood"),
			Trials:   trials,
			Seed:     rng.Seed(cfg.Seed, 11, uint64(m)),
			Workers:  cfg.Workers,
			MaxSteps: 1 << 17,
		})
		if err != nil {
			return err
		}
		med, inc := cellStats(cell)
		tab.Row(m, m*m, nodes, diam, f2(rp.DeltaRegularity()), med, f2(med/float64(diam)), inc)
		ds = append(ds, float64(diam))
		floods = append(floods, med)
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fit := stats.LogLogFit(ds, floods)
	fmt.Fprintf(w, "   check: log-log slope of flooding vs D = %s (O(D·polylog) predicts ≈ 1)\n", f2(fit.Slope))
	return nil
}

func runE10(cfg Config, w io.Writer) error {
	m := 9
	nodes := 30
	trials := 15
	if cfg.Quick {
		m = 7
		trials = 6
	}
	h := graph.Grid(m, m)
	fams := []struct {
		name   string
		family string
	}{
		{"edge paths (walk)", "edges"},
		{"L-paths (balanced)", "l"},
		{"star paths (congested)", "star"},
	}
	tab := NewTable(w, "family", "paths", "states", "delta", "Cor5 bound (Tmix=D)", "median-flood", "incomplete")
	for fi, f := range fams {
		paths, err := randompath.FamilyPaths(f.family, m, h)
		if err != nil {
			return err
		}
		rp, err := randompath.New(h, paths)
		if err != nil {
			return err
		}
		delta := rp.DeltaRegularity()
		bound := core.Corollary5Bound(float64(h.Diameter()), h.N(), nodes, delta)
		cell, err := study.Run(study.Study{
			Model:    model.New("paths").WithInt("n", nodes).WithInt("m", m).With("family", f.family).WithInt("hop", 1),
			Protocol: protocol.New("flood"),
			Trials:   trials,
			Seed:     rng.Seed(cfg.Seed, 12, uint64(fi)),
			Workers:  cfg.Workers,
			MaxSteps: 1 << 18,
		})
		if err != nil {
			return err
		}
		med, inc := cellStats(cell)
		tab.Row(f.name, len(paths), rp.NumStates(), f2(delta), g3(bound), med, inc)
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: measured times stay below the bounds everywhere; the δ³ factor makes the star-family bound orders of magnitude looser — the price Corollary 5 pays for congested crossroads")
	return nil
}
