package bench

import (
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/markov"
	"repro/internal/mobility"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Mixing-time curves of the paper's chains",
		Claim: "two-state edge chain mixes in Θ(1/(p+q)); the discretized waypoint chain in Θ(L/v) (linear in grid side m); the lazy grid walk in Θ(m² log m)",
		Run:   runE6,
	})
}

func runE6(cfg Config, w io.Writer) error {
	// (a) Two-state chain: exact mixing time vs 1/(p+q).
	fmt.Fprintln(w, "   (a) two-state edge chain, eps = 1/4:")
	tab := NewTable(w, "p", "q", "1/(p+q)", "Tmix(exact)", "Tmix·(p+q)")
	for _, pq := range []struct{ p, q float64 }{
		{0.1, 0.1}, {0.05, 0.05}, {0.02, 0.02}, {0.01, 0.01}, {0.002, 0.018},
	} {
		ts := markov.TwoState{P: pq.p, Q: pq.q}
		tm := ts.MixingTime(markov.DefaultMixingEps)
		tab.Row(g3(pq.p), g3(pq.q), f1(1/(pq.p+pq.q)), tm, f2(float64(tm)*(pq.p+pq.q)))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: Tmix·(p+q) is ~constant — the Θ(1/(p+q)) law")

	// (b) Discretized waypoint chain: mixing vs m (unit speed → Θ(m)).
	ms := []int{4, 5, 6, 7}
	if cfg.Quick {
		ms = []int{4, 5, 6}
	}
	fmt.Fprintln(w, "   (b) discretized (Manhattan) waypoint chain, corner start, eps = 1/4:")
	tab = NewTable(w, "m", "states", "Tmix", "Tmix/m")
	for _, m := range ms {
		_, tmix, err := mobility.DiscreteWaypointMixing(m, markov.DefaultMixingEps, 1<<20)
		if err != nil {
			return err
		}
		tab.Row(m, m*m*m*m, tmix, f2(float64(tmix)/float64(m)))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: Tmix/m is ~constant — the Θ(L/v) law of Section 4.1")

	// (c) Lazy random walk on the grid: mixing vs m (Θ(m² log m)).
	wm := []int{4, 8, 12, 16}
	if cfg.Quick {
		wm = []int{4, 8, 12}
	}
	fmt.Fprintln(w, "   (c) lazy random walk on the m×m grid, corner start, eps = 1/4:")
	tab = NewTable(w, "m", "points", "Tmix", "Tmix/m²")
	for _, m := range wm {
		g := graph.Grid(m, m)
		chain := markov.LazyRandomWalkChain(g, 0.5)
		pi := markov.WalkStationary(g)
		tmix, err := chain.MixingTimeFromStart(0, pi, markov.DefaultMixingEps, 1<<22)
		if err != nil {
			return err
		}
		tab.Row(m, m*m, tmix, f3(float64(tmix)/float64(m*m)))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: Tmix/m² is ~constant (up to log m) — quadratically slower than waypoint trips over the same space")
	return nil
}
