package bench

// The perf-trajectory gate behind `benchtab -baseline`: every PR commits a
// BENCH_<date>.json record (the full suite), and CI re-runs the quick
// suite and compares the one row whose workload is identical in both
// modes — the engine-only micro — against the committed record. The check
// is a smoke gate, not a precision benchmark: the slack absorbs
// machine-to-machine variance, while a real engine regression (an O(m)
// rescan sneaking back into the hot loop) overshoots any plausible slack.

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadMicroRecord loads a BENCH_<date>.json document.
func ReadMicroRecord(path string) (MicroRecord, error) {
	var rec MicroRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, fmt.Errorf("bench: reading baseline: %w", err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("bench: parsing baseline %s: %w", path, err)
	}
	if rec.Schema != "repro-bench/v1" {
		return rec, fmt.Errorf("bench: baseline %s has schema %q, want repro-bench/v1", path, rec.Schema)
	}
	return rec, nil
}

// findRow returns the named benchmark row of rec.
func findRow(rec MicroRecord, name string) (MicroResult, error) {
	for _, r := range rec.Benchmarks {
		if r.Name == name {
			return r, nil
		}
	}
	return MicroResult{}, fmt.Errorf("bench: row %q not in record (have %d rows)", name, len(rec.Benchmarks))
}

// CheckRegression compares the named row of a fresh record against the
// committed baseline: the run fails if the row allocates at all (the
// zero-alloc engine pin) or if its ns/op exceeds the baseline by more
// than slackPct percent. A faster row always passes — the gate only has a
// ceiling.
func CheckRegression(rec, baseline MicroRecord, row string, slackPct float64) error {
	got, err := findRow(rec, row)
	if err != nil {
		return err
	}
	want, err := findRow(baseline, row)
	if err != nil {
		return fmt.Errorf("%w (regenerate the committed baseline?)", err)
	}
	if got.AllocsPerOp != 0 {
		return fmt.Errorf("bench: %s allocates %d/op, want 0", row, got.AllocsPerOp)
	}
	limit := want.NsPerOp * (1 + slackPct/100)
	if got.NsPerOp > limit {
		return fmt.Errorf("bench: %s regressed: %.0f ns/op vs baseline %.0f ns/op (+%.0f%% > %.0f%% slack)",
			row, got.NsPerOp, want.NsPerOp, 100*(got.NsPerOp/want.NsPerOp-1), slackPct)
	}
	return nil
}
