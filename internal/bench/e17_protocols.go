package bench

import (
	"fmt"
	"io"

	"repro/internal/balance"
	"repro/internal/edgemeg"
	"repro/internal/flood"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/study"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Load balancing over MEGs [16, 28]: convergence vs dynamics speed",
		Claim: "diffusive averaging over a sparse MEG converges despite every snapshot being disconnected, and — like the flooding time — its convergence speed is governed by the chain speed of the graph process",
		Run:   runE17,
	})

	register(Experiment{
		ID:    "E18",
		Title: "Protocol family on one MEG: flooding vs k-push vs pull vs push–pull (§5 reductions)",
		Claim: "the §5 folding argument covers the whole gossip family: all complete on the stationary MEG, push-k and pull trade early-phase vs late-phase speed around the flooding baseline, and push–pull pays neither penalty",
		Run:   runE18,
	})
}

func runE17(cfg Config, w io.Writer) error {
	n := 128
	trials := 10
	if cfg.Quick {
		n = 64
		trials = 5
	}
	alpha := 2.0 / float64(n)
	tab := NewTable(w, "chain speed p+q", "per-edge Tmix", "median steps to 1/16 variance", "converged")
	for _, speed := range []float64{0.02, 0.1, 0.4} {
		params := edgemeg.Params{N: n, P: alpha * speed, Q: speed * (1 - alpha)}
		spec := edgemegSpec(n, params.P, params.Q)
		var steps []float64
		converged := 0
		for trial := 0; trial < trials; trial++ {
			d := buildModel(spec, cfg.Seed, 26, uint64(speed*1e6), uint64(trial))
			s := balance.New(d, balance.PointLoad(n, float64(n)))
			start := s.Variance()
			count := 0
			for s.Variance() > start/16 && count < 1<<17 {
				s.Step()
				count++
			}
			if s.Variance() <= start/16 {
				converged++
				steps = append(steps, float64(count))
			}
		}
		tab.Row(g3(speed), params.MixingTime(0.25), f1(stats.Median(steps)), fmt.Sprintf("%d/%d", converged, trials))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: variance-halving time falls as the chain speeds up — the same mixing-time dependence Theorem 1 charges flooding, now for the companion load-balancing problem")
	return nil
}

func runE18(cfg Config, w io.Writer) error {
	n := 256
	trials := 20
	if cfg.Quick {
		n = 128
		trials = 8
	}
	alpha := 8.0 / float64(n)
	speed := 0.2
	base := study.Study{
		Trials:   trials,
		Seed:     rng.Seed(cfg.Seed, 27),
		Workers:  cfg.Workers,
		MaxSteps: 1 << 16,
	}
	models := []spec.Spec{edgemegSpec(n, alpha*speed, speed*(1-alpha))}
	protos := []spec.Spec{
		protocol.New("flood"),
		protocol.New("push").WithInt("k", 1),
		protocol.New("push").WithInt("k", 3),
		protocol.New("pushpull").WithInt("k", 1),
		protocol.New("pull"),
	}
	cells, err := study.Grid(base, models, protos)
	if err != nil {
		return err
	}

	tab := NewTable(w, "protocol", "median total", "median to n/2", "median n/2 -> n", "incomplete")
	for _, cell := range cells {
		var total, spread, sat []float64
		for _, res := range cell.Results {
			if !res.Completed {
				continue
			}
			total = append(total, float64(res.Time))
			if ps, ok := flood.Phases(res); ok {
				spread = append(spread, float64(ps.Spreading))
				sat = append(sat, float64(ps.Saturation))
			}
		}
		tab.Row(cell.Protocol, f1(stats.Median(total)), f1(stats.Median(spread)), f1(stats.Median(sat)), cell.Incomplete)
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: all protocols complete; push variants pay in the saturation phase (fan-out caps slow the last stragglers), pull pays in the spreading phase (few informed nodes to find early), and push–pull stays near flooding in both — each is flooding on a virtual thinned MEG, as §5 argues")
	return nil
}
