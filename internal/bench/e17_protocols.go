package bench

import (
	"fmt"
	"io"

	"repro/internal/balance"
	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/flood"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Load balancing over MEGs [16, 28]: convergence vs dynamics speed",
		Claim: "diffusive averaging over a sparse MEG converges despite every snapshot being disconnected, and — like the flooding time — its convergence speed is governed by the chain speed of the graph process",
		Run:   runE17,
	})

	register(Experiment{
		ID:    "E18",
		Title: "Protocol family on one MEG: flooding vs k-push vs pull (§5 reductions)",
		Claim: "the §5 folding argument covers pull and push variants: all complete on the stationary MEG, with push-k and pull trading early-phase vs late-phase speed around the flooding baseline",
		Run:   runE18,
	})
}

func runE17(cfg Config, w io.Writer) error {
	n := 128
	trials := 10
	if cfg.Quick {
		n = 64
		trials = 5
	}
	alpha := 2.0 / float64(n)
	tab := NewTable(w, "chain speed p+q", "per-edge Tmix", "median steps to 1/16 variance", "converged")
	for _, speed := range []float64{0.02, 0.1, 0.4} {
		params := edgemeg.Params{N: n, P: alpha * speed, Q: speed * (1 - alpha)}
		spec := edgemegSpec(n, params.P, params.Q)
		var steps []float64
		converged := 0
		for trial := 0; trial < trials; trial++ {
			d := buildModel(spec, cfg.Seed, 26, uint64(speed*1e6), uint64(trial))
			s := balance.New(d, balance.PointLoad(n, float64(n)))
			start := s.Variance()
			count := 0
			for s.Variance() > start/16 && count < 1<<17 {
				s.Step()
				count++
			}
			if s.Variance() <= start/16 {
				converged++
				steps = append(steps, float64(count))
			}
		}
		tab.Row(g3(speed), params.MixingTime(0.25), f1(stats.Median(steps)), fmt.Sprintf("%d/%d", converged, trials))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: variance-halving time falls as the chain speeds up — the same mixing-time dependence Theorem 1 charges flooding, now for the companion load-balancing problem")
	return nil
}

func runE18(cfg Config, w io.Writer) error {
	n := 256
	trials := 20
	if cfg.Quick {
		n = 128
		trials = 8
	}
	alpha := 8.0 / float64(n)
	speed := 0.2
	spec := edgemegSpec(n, alpha*speed, speed*(1-alpha))
	mk := func(trial int) dyngraph.Dynamic {
		return buildModel(spec, cfg.Seed, 27, uint64(trial))
	}

	type proto struct {
		name string
		run  func(trial int) flood.Result
	}
	protos := []proto{
		{"flooding", func(trial int) flood.Result {
			return flood.Run(mk(trial), 0, flood.Opts{MaxSteps: 1 << 16})
		}},
		{"push k=1", func(trial int) flood.Result {
			return flood.RandomizedPush(mk(trial), 0, 1,
				rng.New(rng.Seed(cfg.Seed, 28, uint64(trial))), flood.Opts{MaxSteps: 1 << 16})
		}},
		{"push k=3", func(trial int) flood.Result {
			return flood.RandomizedPush(mk(trial), 0, 3,
				rng.New(rng.Seed(cfg.Seed, 29, uint64(trial))), flood.Opts{MaxSteps: 1 << 16})
		}},
		{"pull", func(trial int) flood.Result {
			return flood.Pull(mk(trial), 0,
				rng.New(rng.Seed(cfg.Seed, 30, uint64(trial))), flood.Opts{MaxSteps: 1 << 16})
		}},
	}

	tab := NewTable(w, "protocol", "median total", "median to n/2", "median n/2 -> n", "incomplete")
	for _, p := range protos {
		var total, spread, sat []float64
		incomplete := 0
		for trial := 0; trial < trials; trial++ {
			res := p.run(trial)
			if !res.Completed {
				incomplete++
				continue
			}
			total = append(total, float64(res.Time))
			if ps, ok := flood.Phases(res); ok {
				spread = append(spread, float64(ps.Spreading))
				sat = append(sat, float64(ps.Saturation))
			}
		}
		tab.Row(p.name, f1(stats.Median(total)), f1(stats.Median(spread)), f1(stats.Median(sat)), incomplete)
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: all protocols complete; push variants pay in the saturation phase (fan-out caps slow the last stragglers), pull pays in the spreading phase (few informed nodes to find early) — each is flooding on a virtual thinned MEG, as §5 argues")
	return nil
}
