package bench

import (
	"fmt"
	"io"

	"repro/internal/balance"
	"repro/internal/edgemeg"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/study"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Load balancing over MEGs [16, 28]: convergence vs dynamics speed",
		Claim: "diffusive averaging over a sparse MEG converges despite every snapshot being disconnected, and — like the flooding time — its convergence speed is governed by the chain speed of the graph process",
		Run:   runE17,
	})

	register(Experiment{
		ID:    "E18",
		Title: "Protocol family on one MEG: flooding vs k-push vs pull vs push–pull vs async (§5 reductions)",
		Claim: "the §5 folding argument covers the whole gossip family: all complete on the stationary MEG, push-k and pull trade early-phase vs late-phase speed around the flooding baseline, push–pull pays neither penalty, and the message columns show what each buys its speed with — flooding's time optimality costs Θ(m) messages per step, the gossip variants run orders of magnitude leaner",
		Run:   runE18,
	})
}

func runE17(cfg Config, w io.Writer) error {
	n := 128
	trials := 10
	if cfg.Quick {
		n = 64
		trials = 5
	}
	alpha := 2.0 / float64(n)
	tab := NewTable(w, "chain speed p+q", "per-edge Tmix", "median steps to 1/16 variance", "converged")
	for _, speed := range []float64{0.02, 0.1, 0.4} {
		params := edgemeg.Params{N: n, P: alpha * speed, Q: speed * (1 - alpha)}
		spec := edgemegSpec(n, params.P, params.Q)
		var steps []float64
		converged := 0
		for trial := 0; trial < trials; trial++ {
			d := buildModel(spec, cfg.Seed, 26, uint64(speed*1e6), uint64(trial))
			s := balance.New(d, balance.PointLoad(n, float64(n)))
			start := s.Variance()
			count := 0
			for s.Variance() > start/16 && count < 1<<17 {
				s.Step()
				count++
			}
			if s.Variance() <= start/16 {
				converged++
				steps = append(steps, float64(count))
			}
		}
		tab.Row(g3(speed), params.MixingTime(0.25), f1(stats.Median(steps)), fmt.Sprintf("%d/%d", converged, trials))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: variance-halving time falls as the chain speeds up — the same mixing-time dependence Theorem 1 charges flooding, now for the companion load-balancing problem")
	return nil
}

// e18Sweep is the declarative form of E18's grid: one stationary MEG
// crossed with the whole protocol family. It exists as a function so the
// sweep-path equivalence test can rerun the exact campaign benchtab runs.
func e18Sweep(cfg Config) study.Sweep {
	n := 256
	trials := 20
	if cfg.Quick {
		n = 128
		trials = 8
	}
	alpha := 8.0 / float64(n)
	speed := 0.2
	return study.Sweep{
		Models: []spec.Spec{edgemegSpec(n, alpha*speed, speed*(1-alpha))},
		Protocols: []spec.Spec{
			protocol.New("flood"),
			protocol.New("push").WithInt("k", 1),
			protocol.New("push").WithInt("k", 3),
			protocol.New("pushpull").WithInt("k", 1),
			protocol.New("pull"),
			protocol.New("async").WithFloat("rate", 1),
		},
		Trials:   trials,
		Seed:     rng.Seed(cfg.Seed, 27),
		Workers:  cfg.Workers,
		MaxSteps: 1 << 16,
	}
}

func runE18(cfg Config, w io.Writer) error {
	// The grid runs through the declarative sweep path — the same engine
	// cmd/sweep drives from JSON files — with no checkpoint to resume
	// from, which reduces to exactly the study.Grid execution it replaced.
	records, err := study.RunSweep(e18Sweep(cfg), nil, nil)
	if err != nil {
		return err
	}

	tab := NewTable(w, "protocol", "median total", "median to n/2", "median n/2 -> n", "incomplete", "median msgs", "useless frac")
	for _, rec := range records {
		var total, spread, sat, msgs []float64
		var sumMsgs, sumUseless float64
		incomplete := 0
		for i := 0; i < rec.Trials; i++ {
			msgs = append(msgs, float64(rec.Messages[i]))
			sumMsgs += float64(rec.Messages[i])
			sumUseless += float64(rec.Useless[i])
			if rec.Times[i] < 0 {
				incomplete++
				continue
			}
			total = append(total, float64(rec.Times[i]))
			if rec.HalfTimes[i] >= 0 {
				spread = append(spread, float64(rec.HalfTimes[i]))
				sat = append(sat, float64(rec.Times[i]-rec.HalfTimes[i]))
			}
		}
		tab.Row(rec.Protocol, f1(stats.Median(total)), f1(stats.Median(spread)), f1(stats.Median(sat)), incomplete,
			f1(stats.Median(msgs)), fmt.Sprintf("%.3f", sumUseless/sumMsgs))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: all protocols complete; push variants pay in the saturation phase (fan-out caps slow the last stragglers), pull pays in the spreading phase (few informed nodes to find early), and push–pull stays near flooding in both — each is flooding on a virtual thinned MEG, as §5 argues. The cost columns invert the ranking: flooding tops the message bill, the capped-fan-out protocols (and the asynchronous Poisson-clock push) finish on a fraction of it")
	return nil
}
