package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dyngraph"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Appendix A: two-state edge-MEG birth-rate sweep vs the bound of [10]",
		Claim: "our Theorem 1 instantiation O(1/(p+q)·((p+q)/(np)+1)²·log²n) is almost tight (within polylog of [10]'s O(log n / log(1+np))) whenever q ≥ np",
		Run:   runE2,
	})

	register(Experiment{
		ID:    "E3",
		Title: "Appendix A: two-state edge-MEG flooding vs n at fixed (p, q)",
		Claim: "measured flooding follows the O(log n / log(1+np)) shape of [10] as n grows",
		Run:   runE3,
	})
}

func runE2(cfg Config, w io.Writer) error {
	n := 256
	trials := 25
	ps := []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2}
	if cfg.Quick {
		trials = 8
		ps = []float64{3e-4, 1e-3, 3e-3}
	}
	const q = 0.3

	tab := NewTable(w, "p", "np", "regime(q>=np)", "median-flood", "ours", "prior[10]", "ours/prior", "incomplete")
	for _, p := range ps {
		spec := edgemegSpec(n, p, q)
		factory := func(trial int) (dyngraph.Dynamic, int) {
			return buildModel(spec, cfg.Seed, 2, uint64(p*1e9), uint64(trial)), 0
		}
		med, inc, _ := medianFlood(factory, trials, 1<<17, cfg.Workers)
		ours := core.EdgeMEGBound(p, q, n)
		prior := core.PriorEdgeMEGBound(n, p)
		regime := "tight"
		if q < float64(n)*p {
			regime = "loose"
		}
		tab.Row(g3(p), g3(float64(n)*p), regime, med, f1(ours), f1(prior), f1(ours/prior), inc)
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: in the tight regime ours/prior stays within polylog; measured decreases as p grows")
	return nil
}

func runE3(cfg Config, w io.Writer) error {
	ns := []int{64, 128, 256, 512, 1024}
	trials := 25
	if cfg.Quick {
		ns = []int{64, 128, 256}
		trials = 8
	}
	const q = 0.2

	tab := NewTable(w, "n", "np", "median-flood", "prior-bound[10]", "measured/prior", "incomplete")
	var prior, measured []float64
	for _, n := range ns {
		p := 2.0 / float64(n) // np = 2 at every n
		spec := edgemegSpec(n, p, q)
		factory := func(trial int) (dyngraph.Dynamic, int) {
			return buildModel(spec, cfg.Seed, 3, uint64(n), uint64(trial)), 0
		}
		med, inc, _ := medianFlood(factory, trials, 1<<16, cfg.Workers)
		pb := core.PriorEdgeMEGBound(n, p)
		tab.Row(n, f1(float64(n)*p), med, f1(pb), f2(med/pb), inc)
		prior = append(prior, pb)
		measured = append(measured, med)
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	// Shape check: measured/prior should be roughly constant across n.
	lo, hi := measured[0]/prior[0], measured[0]/prior[0]
	for i := range measured {
		r := measured[i] / prior[i]
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	fmt.Fprintf(w, "   check: measured/prior ratio spans [%s, %s] across n — flat ratio confirms the log n/log(1+np) shape\n", f2(lo), f2(hi))
	return nil
}
