package bench

import (
	"fmt"
	"io"

	"repro/internal/dyngraph"
	"repro/internal/dynwalk"
	"repro/internal/edgemeg"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/study"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Parsimonious flooding [4]: activity window vs completion",
		Claim: "limiting each node to an `active`-step transmission window trades bandwidth for latency: windows comparable to the edge mixing time complete reliably, shorter ones strand nodes — dynamics make silence costly",
		Run:   runE14,
	})

	register(Experiment{
		ID:    "E15",
		Title: "Random walk ON a MEG [2]: cover time vs dynamics speed",
		Claim: "on a sparse disconnected stationary graph a walker can never cover; edge churn carries it across components, and the cover time falls as the chain speed (p+q) rises — the phenomenon that motivated MEGs in [2]",
		Run:   runE15,
	})

	register(Experiment{
		ID:    "E16",
		Title: "Bursty four-state edge-MEG [5] vs two-state at equal density",
		Claim: "the generalized edge-MEG of Appendix A subsumes the four-state model: at equal stationary α, bursty contacts change the flooding time through the chain's (slower) mixing time, exactly as the Tmix·(1/(nα)+1)²·log²n bound charges; every trace is 0-interval connected, outside the [21] worst-case regime",
		Run:   runE16,
	})
}

func runE14(cfg Config, w io.Writer) error {
	n := 512
	trials := 30
	if cfg.Quick {
		n = 192
		trials = 12
	}
	alpha := 3.0 / float64(n)
	speed := 0.1 // per-edge mixing ≈ 14
	params := edgemeg.Params{N: n, P: alpha * speed, Q: speed * (1 - alpha)}
	tmix := params.MixingTime(0.25)
	base := study.Study{
		Model:    edgemegSpec(n, params.P, params.Q),
		Trials:   trials,
		Seed:     rng.Seed(cfg.Seed, 20),
		Workers:  cfg.Workers,
		MaxSteps: 1 << 16,
	}

	full := base
	full.Protocol = protocol.New("flood")
	fullCell, err := study.Run(full)
	if err != nil {
		return err
	}
	fullMed := fullCell.Times.Median

	tab := NewTable(w, "active window", "window/Tmix", "completed", "median (completed)", "vs flooding")
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		active := int(mult * float64(tmix))
		if active < 1 {
			active = 1
		}
		s := base
		s.Protocol = protocol.New("parsimonious").WithInt("active", active)
		cell, err := study.Run(s)
		if err != nil {
			return err
		}
		completed := trials - cell.Incomplete
		medCell, ratio := "n/a", "n/a"
		if completed > 0 {
			medCell = f1(cell.Times.Median)
			ratio = f2(cell.Times.Median / fullMed)
		}
		tab.Row(active, f2(mult), fmt.Sprintf("%d/%d", completed, trials), medCell, ratio)
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "   flooding reference median: %s (per-edge Tmix = %d)\n", f1(fullMed), tmix)
	fmt.Fprintln(w, "   check: completion rises with the window; at ≈ Tmix-scale windows the protocol matches flooding — in dynamic graphs an informed node must stay active long enough for fresh edges to arrive")
	return nil
}

func runE15(cfg Config, w io.Writer) error {
	n := 128
	trials := 30
	if cfg.Quick {
		n = 64
		trials = 12
	}
	alpha := 1.5 / float64(n) // sparse: snapshots are disconnected
	tab := NewTable(w, "chain speed p+q", "per-edge Tmix", "covered", "median cover time", "visited@cap (median)")
	for _, speed := range []float64{0, 0.01, 0.05, 0.2} {
		var covers []float64
		var visited []float64
		completed := 0
		for trial := 0; trial < trials; trial++ {
			var d dyngraph.Dynamic
			if speed == 0 {
				// Frozen graph: one stationary snapshot forever.
				probe := buildModel(edgemegSpec(n, alpha*0.1, 0.1*(1-alpha)),
					cfg.Seed, 21, uint64(speed*1e6), uint64(trial))
				d = dyngraph.NewStatic(dyngraph.Snapshot(probe))
			} else {
				d = buildModel(edgemegSpec(n, alpha*speed, speed*(1-alpha)),
					cfg.Seed, 21, uint64(speed*1e6), uint64(trial))
			}
			res := dynwalk.CoverTime(d, 0, 1<<18, rng.New(rng.Seed(cfg.Seed, 22, uint64(speed*1e6), uint64(trial))))
			if res.Steps >= 0 {
				completed++
				covers = append(covers, float64(res.Steps))
			}
			visited = append(visited, float64(res.Visited))
		}
		tmixCell := "∞ (frozen)"
		if speed > 0 {
			tmixCell = fmt.Sprint((edgemeg.Params{N: n, P: alpha * speed, Q: speed * (1 - alpha)}).MixingTime(0.25))
		}
		medCover := "n/a"
		if len(covers) > 0 {
			medCover = f1(stats.Median(covers))
		}
		tab.Row(g3(speed), tmixCell, fmt.Sprintf("%d/%d", completed, trials), medCover, f1(stats.Median(visited)))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: the frozen graph never covers (the walker is trapped in its component); any churn makes covering possible and faster churn covers sooner")
	return nil
}

func runE16(cfg Config, w io.Writer) error {
	n := 256
	trials := 20
	if cfg.Quick {
		n = 128
		trials = 8
	}
	// A bursty four-state model in the sparse regime; its stationary alpha
	// (an n-independent property of the per-edge chain) defines the
	// matched two-state comparators.
	fp := edgemeg.FourStateParams{
		N: n, WakeUp: 0.0024, Rebound: 0.3, Calm: 0.3, Drop: 0.4, Settle: 0.05, Detach: 0.2,
	}
	alpha, err := fp.Alpha()
	if err != nil {
		return err
	}
	fourTmix, err := fp.Chain().MixingTime(0.25, 1<<20)
	if err != nil {
		return err
	}
	fourSpec := model.New("edgemeg4").WithInt("n", n).
		WithFloat("wake", fp.WakeUp).WithFloat("rebound", fp.Rebound).WithFloat("calm", fp.Calm).
		WithFloat("drop", fp.Drop).WithFloat("settle", fp.Settle).WithFloat("detach", fp.Detach)
	fourMed, fourInc, _ := medianFlood(func(trial int) (dyngraph.Dynamic, int) {
		return buildModel(fourSpec, cfg.Seed, 23, uint64(trial)), 0
	}, trials, 1<<17, cfg.Workers)

	// Two-state family at the same alpha, sweeping the chain speed: the
	// flooding-vs-Tmix curve the four-state point should land on.
	tab := NewTable(w, "model", "alpha", "Tmix", "median-flood", "incomplete")
	for _, speed := range []float64{0.3, 0.14, 0.05} {
		params := edgemeg.Params{N: n, P: alpha * speed, Q: speed * (1 - alpha)}
		med, inc, _ := medianFlood(func(trial int) (dyngraph.Dynamic, int) {
			return buildModel(edgemegSpec(n, params.P, params.Q),
				cfg.Seed, 24, uint64(speed*1e6), uint64(trial)), 0
		}, trials, 1<<17, cfg.Workers)
		tab.Row(fmt.Sprintf("two-state p+q=%.2f", speed), g3(alpha), params.MixingTime(0.25), f1(med), inc)
	}
	tab.Row("four-state (bursty)", g3(alpha), fourTmix, f1(fourMed), fourInc)
	if err := tab.Flush(); err != nil {
		return err
	}

	// T-interval connectivity of a four-state trace: sparse MEG snapshots
	// are disconnected, so even T=1 generally fails — outside the [21]
	// worst-case machinery, while Theorem 1 still applies.
	tr := dyngraph.Capture(buildModel(fourSpec, cfg.Seed, 25), 20)
	fmt.Fprintf(w, "   T-interval connectivity of a 21-snapshot trace: max T = %d (sparse snapshots are disconnected)\n",
		dyngraph.IntervalConnectivity(tr))
	fmt.Fprintln(w, "   check: at equal density, flooding rises with the per-edge mixing time along the two-state sweep, and the bursty four-state model lands on the same flooding-vs-Tmix curve (within ~1.5×) — density alone does not determine the flooding time; Tmix does, as the Appendix A bound charges")
	return nil
}
