package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Table renders aligned experiment tables. Columns are separated by at
// least two spaces; all values are formatted with %v unless given as
// pre-formatted strings.
type Table struct {
	tw *tabwriter.Writer
}

// NewTable starts a table on w with the given column headers.
func NewTable(w io.Writer, headers ...string) *Table {
	t := &Table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
	t.Row(toAny(headers)...)
	return t
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// Row appends one row.
func (t *Table) Row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprintf(t.tw, "%v", c)
	}
	fmt.Fprintln(t.tw)
}

// Flush writes the aligned table.
func (t *Table) Flush() error { return t.tw.Flush() }

// f1, f2, f3 format floats to fixed decimals for table cells.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// g3 formats with three significant digits, for wide-ranging magnitudes.
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
