package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/graph"
	"repro/internal/markov"
	"repro/internal/nodemeg"
	"repro/internal/randompath"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Density and β-independence conditions across model families",
		Claim: "edge-MEGs satisfy β ≈ 1 exactly (independence); node-MEGs satisfy η = P_NM2/P_NM² = O(1) when the positional law is near-uniform, and η grows with positional skew (Fact 2, Lemma 15)",
		Run:   runE8,
	})
}

func runE8(cfg Config, w io.Writer) error {
	epochs, trialsN := 60, 5
	if cfg.Quick {
		epochs, trialsN = 25, 3
	}

	// (a) Empirical (α, β) of a stationary sparse edge-MEG.
	params := edgemeg.Params{N: 80, P: 0.01, Q: 0.09} // alpha = 0.1
	spec := edgemegSpec(params.N, params.P, params.Q).WithBool("dense", true)
	rep, err := core.EstimateConditions(func(trial int) dyngraph.Dynamic {
		return buildModel(spec, cfg.Seed, 10, uint64(trial))
	}, core.EstimateOpts{
		M: params.MixingTime(markov.DefaultMixingEps), Epochs: epochs, Trials: trialsN,
		Pairs: 40, Triples: 25, SetSize: 20, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "   (a) empirical stationarity conditions, two-state edge-MEG (α-target 0.1, independent edges):")
	tab := NewTable(w, "alpha-target", "alpha-min", "alpha-mean", "beta-mean", "beta-max", "samples")
	tab.Row(f3(params.Alpha()), f3(rep.AlphaMin), f3(rep.AlphaMean), f2(rep.BetaMean), f2(rep.BetaMax), rep.Samples)
	if err := tab.Flush(); err != nil {
		return err
	}

	// (b) Exact η for node-MEG connection structures (Fact 2).
	fmt.Fprintln(w, "   (b) exact P_NM, P_NM2, η for node-MEG families:")
	tab = NewTable(w, "model", "states", "P_NM", "P_NM2", "eta")
	// Uniform same-point occupancy: η = 1 exactly.
	uni := stats.Uniform(64)
	conn := nodemeg.SameState{S: 64}
	tab.Row("same-point, uniform π", 64, g3(nodemeg.PNM(uni, conn)), g3(nodemeg.PNM2(uni, conn)), f2(nodemeg.Eta(uni, conn)))
	// Skewed occupancy: η grows.
	for _, hot := range []float64{4, 16, 64} {
		skew := make([]float64, 64)
		for i := range skew {
			skew[i] = 1
		}
		skew[0] = hot
		pi := stats.Normalize(skew)
		tab.Row(fmt.Sprintf("same-point, %gx hotspot", hot), 64,
			g3(nodemeg.PNM(pi, conn)), g3(nodemeg.PNM2(pi, conn)), f2(nodemeg.Eta(pi, conn)))
	}
	// Grid walk with radius connection (stationary = degree-biased).
	m := 8
	g := graph.Grid(m, m)
	walkPi := markov.WalkStationary(g)
	gr := nodemeg.NewGridRadius(m, 1.5)
	tab.Row("grid walk, radius 1.5", m*m, g3(nodemeg.PNM(walkPi, gr)), g3(nodemeg.PNM2(walkPi, gr)), f2(nodemeg.Eta(walkPi, gr)))
	// Random-path families: L-paths (balanced) vs star (congested).
	lm, err := randompath.New(g, randompath.GridLPaths(m))
	if err != nil {
		return err
	}
	lPi := stats.Uniform(lm.NumStates())
	tab.Row("L-paths on grid", lm.NumStates(), g3(nodemeg.PNM(lPi, lm.Connection())), g3(nodemeg.PNM2(lPi, lm.Connection())), f2(nodemeg.Eta(lPi, lm.Connection())))
	sm, err := randompath.New(g, randompath.StarPaths(m))
	if err != nil {
		return err
	}
	sPi := stats.Uniform(sm.NumStates())
	tab.Row("star paths on grid", sm.NumStates(), g3(nodemeg.PNM(sPi, sm.Connection())), g3(nodemeg.PNM2(sPi, sm.Connection())), f2(nodemeg.Eta(sPi, sm.Connection())))
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   check: β ≈ 1 for edge-MEGs; η = 1 exactly for uniform occupancy and rises with moderate hotspots and path congestion — exactly the quantities Theorem 3 and Corollary 5 charge for. (η is non-monotone at extreme skew: a full point mass has η = 1 again, since all meetings then happen at one state.)")
	return nil
}
