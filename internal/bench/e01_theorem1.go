package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/markov"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Theorem 1: flooding time vs n on an (M, α, β)-stationary MEG",
		Claim: "flooding time = O(M (1/(nα) + β)² log² n); with α = Θ(1/n), β = 1 the measured time grows polylogarithmically and stays below the bound",
		Run:   runE1,
	})
}

func runE1(cfg Config, w io.Writer) error {
	ns := []int{64, 128, 256, 512, 1024}
	trials := 25
	if cfg.Quick {
		ns = []int{64, 128, 256}
		trials = 8
	}
	// Sparse stationary edge-MEG: stationary expected degree ~ 3 at every
	// n, per-edge chain speed p+q = 0.2 (Tmix ≈ 7 at eps = 1/4), β = 1 by
	// edge independence.
	const chainSpeed = 0.2
	const targetDeg = 3.0

	tab := NewTable(w, "n", "alpha", "Tmix(M)", "median-flood", "mean", "Thm1-bound", "bound/measured", "incomplete")
	var measured, bounds, logns []float64
	for _, n := range ns {
		alpha := targetDeg / float64(n-1)
		p := alpha * chainSpeed
		q := chainSpeed - p
		params := edgemeg.Params{N: n, P: p, Q: q}
		tmix := params.MixingTime(markov.DefaultMixingEps)
		spec := edgemegSpec(n, p, q)
		factory := func(trial int) (dyngraph.Dynamic, int) {
			return buildModel(spec, cfg.Seed, 1, uint64(n), uint64(trial)), 0
		}
		med, inc, sum := medianFlood(factory, trials, 1<<16, cfg.Workers)
		bound := core.Theorem1Bound(float64(tmix), alpha, 1, n)
		tab.Row(n, g3(alpha), tmix, med, f1(sum.Mean), f1(bound), f2(bound/med), inc)
		measured = append(measured, med)
		bounds = append(bounds, bound)
		logns = append(logns, float64(n))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	// Shape check: measured should grow like polylog(n) — i.e. strongly
	// sublinear. Report the log-log slope (≈0 for polylog, 1 for linear).
	fit := stats.LogLogFit(logns, measured)
	fmt.Fprintf(w, "   check: log-log slope of measured vs n = %s (polylog predicts ≈ 0.1–0.4, linear would be 1)\n", f2(fit.Slope))
	for i := range measured {
		if bounds[i] < measured[i] {
			fmt.Fprintf(w, "   WARNING: bound below measurement at n=%v\n", ns[i])
		}
	}
	return nil
}
