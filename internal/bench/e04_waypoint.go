package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/mobility"
	"repro/internal/model"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Random waypoint in the sparse setting: flooding vs n and vs speed",
		Claim: "with L ~ √n, r = Θ(1): flooding = O((√n/vmax)·log³n), almost matching the Ω(√n/vmax) lower bound; flooding × v is ~constant in v",
		Run:   runE4,
	})

	register(Experiment{
		ID:    "E5",
		Title: "Random waypoint stationary positional density (Corollary 4 conditions)",
		Claim: "the positional density is center-biased with sup f·vol ≈ 2.25 (δ), a constant λ survives r-shrinking, and the empirical density matches the Bettstetter polynomial",
		Run:   runE5,
	})
}

func runE4(cfg Config, w io.Writer) error {
	// Sparse transport-limited regime: node density 1/4 per unit², r = 1,
	// so the expected snapshot degree is π r² /4 ≈ 0.8 and every snapshot
	// is heavily disconnected — information must be physically carried.
	ns := []int{64, 100, 225, 400}
	vs := []float64{0.5, 1, 2}
	trials := 15
	if cfg.Quick {
		ns = []int{64, 100, 225}
		trials = 6
	}
	const radius = 1.0

	fmt.Fprintln(w, "   (a) n sweep, L = 2√n (constant density), r = 1, v = 1:")
	tab := NewTable(w, "n", "L", "median-flood", "transport lower", "upper bound", "meas/lower", "incomplete")
	var xs, ys []float64
	for _, n := range ns {
		l := 2 * math.Sqrt(float64(n))
		spec := waypointSpec(n, l, radius, 1)
		factory := func(trial int) (dyngraph.Dynamic, int) {
			return buildModel(spec, cfg.Seed, 4, uint64(n), uint64(trial)), 0
		}
		med, inc, _ := medianFlood(factory, trials, 1<<17, cfg.Workers)
		lower := core.TransportLowerBound(l, radius, 1)
		upper := core.RWPBound(l, 1, radius, n)
		tab.Row(n, f1(l), med, f1(lower), f1(upper), f2(med/lower), inc)
		xs = append(xs, float64(n))
		ys = append(ys, med)
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	fit := stats.LogLogFit(xs, ys)
	fmt.Fprintf(w, "   check: log-log slope of flooding vs n = %s (√n scaling predicts ≈ 0.5); meas/lower stays polylog\n", f2(fit.Slope))

	// Part (b): speed sweep at fixed geometry, r = Θ(v) regime (the paper
	// assumes r = O(vmax); for v >> r contacts last under one time step
	// and the model leaves its assumptions).
	fmt.Fprintln(w, "   (b) speed sweep, n = 100, L = 20, r = 1:")
	tab = NewTable(w, "v", "median-flood", "flood × (r+v)", "incomplete")
	var fv []float64
	for _, v := range vs {
		spec := waypointSpec(100, 20, radius, v)
		factory := func(trial int) (dyngraph.Dynamic, int) {
			return buildModel(spec, cfg.Seed, 5, uint64(v*1000), uint64(trial)), 0
		}
		med, inc, _ := medianFlood(factory, trials, 1<<17, cfg.Workers)
		tab.Row(f2(v), med, f1(med*(radius+v)), inc)
		fv = append(fv, med*(radius+v))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	lo, hi := fv[0], fv[0]
	for _, x := range fv {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	fmt.Fprintf(w, "   check: flood×(r+v) spans [%s, %s] while v varies 4× — the Θ(L/v) transport law\n", f1(lo), f1(hi))
	return nil
}

func runE5(cfg Config, w io.Writer) error {
	n, l := 300, 12.0
	steps, every, bins := 6000, 10, 12
	if cfg.Quick {
		steps = 1500
	}
	const radius = 1.2
	wp := buildModel(waypointSpec(n, l, radius, 1), cfg.Seed, 6).(mobility.Positioned)
	h := mobility.PositionalDensity(wp, l, bins, steps, every)
	rep := mobility.MeasureUniformity(h, l, radius)
	tvAnalytic := mobility.DensityTVToAnalytic(h, l, func(x, y float64) float64 {
		return mobility.WaypointDensity(x, y, l)
	})

	// Contrast: the random-direction model has a uniform stationary law.
	dirSpec := model.New("direction").
		WithInt("n", n).WithFloat("L", l).WithFloat("r", radius).
		WithFloat("speed", 1).WithFloat("turn", 0.1).WithInt("warmup", 200)
	dir := buildModel(dirSpec, cfg.Seed, 7).(mobility.Positioned)
	hd := mobility.PositionalDensity(dir, l, bins, steps, every)
	repD := mobility.MeasureUniformity(hd, l, radius)

	tab := NewTable(w, "model", "delta (sup f · vol)", "lambda", "TV-to-uniform", "TV-to-analytic-RWP")
	tab.Row("random waypoint", f2(rep.Delta), f2(rep.Lambda), f3(rep.TVToUniform), f3(tvAnalytic))
	tab.Row("random direction", f2(repD.Delta), f2(repD.Lambda), f3(repD.TVToUniform), "n/a")
	if err := tab.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "   check: waypoint δ ≈ 2.25 (analytic sup), direction δ ≈ 1; both λ > 0 — Corollary 4's conditions hold with absolute constants\n")
	// Center-vs-corner contrast of the waypoint density.
	den := h.Density()
	center := den[(bins/2)*bins+bins/2]
	corner := den[0]
	fmt.Fprintf(w, "   waypoint center/corner density ratio = %s (analytic polynomial diverges at the exact corner; sampled cells give a large finite ratio)\n", f1(center/math.Max(corner, 1e-12)))
	return nil
}
