package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/markov"
	"repro/internal/nodemeg"
	"repro/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "k-augmented tori: Corollary 6 vs the meeting-time bound of [15]",
		Claim: "augmenting with k-hop edges shrinks the walk's mixing time ~1/k² (and with it Corollary 6's bound and measured flooding), while the meeting time T* — and thus [15]'s O(T* log n) — improves far less: our bound gains ~k² on theirs",
		Run:   runE11,
	})
}

func runE11(cfg Config, w io.Writer) error {
	m := 12
	nodes := 60
	ks := []int{1, 2, 3, 4}
	trials := 12
	meetTrials := 200
	if cfg.Quick {
		m = 8
		ks = []int{1, 2, 3}
		trials = 6
		meetTrials = 80
	}
	const stay = 0.2 // lazy walk: breaks torus parity, standard for mixing

	type row struct {
		k                 int
		tmix              int
		tstar             float64
		flood             float64
		ourBound, prBound float64
	}
	var rows []row
	for _, k := range ks {
		h := graph.KAugmentedTorus(m, m, k)
		chain := markov.LazyRandomWalkChain(h, stay)
		pi := markov.WalkStationary(h)
		tmix, err := chain.MixingTimeFromStart(0, pi, markov.DefaultMixingEps, 1<<22)
		if err != nil {
			return err
		}
		tstar := markov.MeetingTime(h, stay, meetTrials, 1<<20, rng.New(rng.Seed(cfg.Seed, 13, uint64(k))))

		sampler := markov.NewSparseSampler(chain)
		conn := nodemeg.SameState{S: h.N()}
		factory := func(trial int) (dyngraph.Dynamic, int) {
			sim, err := nodemeg.NewSim(nodes, sampler, conn, pi,
				rng.New(rng.Seed(cfg.Seed, 14, uint64(k), uint64(trial))))
			if err != nil {
				panic(err)
			}
			return sim, 0
		}
		med, _, _ := medianFlood(factory, trials, 1<<19, cfg.Workers)
		delta := h.DegreeRegularity() // = 1 on a torus
		rows = append(rows, row{
			k:        k,
			tmix:     tmix,
			tstar:    tstar,
			flood:    med,
			ourBound: core.Corollary6Bound(float64(tmix), h.N(), nodes, delta),
			prBound:  core.MeetingTimeBound(tstar, nodes),
		})
	}

	base := rows[0]
	tab := NewTable(w, "k", "Tmix", "speedup", "T*", "speedup", "median-flood", "speedup", "ours(C6)", "[15]", "gain vs [15]")
	for _, r := range rows {
		tab.Row(r.k,
			r.tmix, f2(float64(base.tmix)/float64(r.tmix)),
			f1(r.tstar), f2(base.tstar/r.tstar),
			r.flood, f2(base.flood/r.flood),
			g3(r.ourBound), g3(r.prBound),
			f2((base.ourBound/r.ourBound)/(base.prBound/r.prBound)))
	}
	if err := tab.Flush(); err != nil {
		return err
	}
	last := rows[len(rows)-1]
	fmt.Fprintf(w, "   check: at k=%d the mixing/flooding speedups are ~k²-scale (%s×, %s×) while T* improves only %s× — Corollary 6 exploits augmentation, the meeting-time bound of [15] cannot (its k-relative gain: %s×)\n",
		last.k,
		f1(float64(base.tmix)/float64(last.tmix)), f1(base.flood/last.flood),
		f1(base.tstar/last.tstar),
		f1((base.ourBound/last.ourBound)/(base.prBound/last.prBound)))
	return nil
}
