package bench

// The microbenchmark suite behind `benchtab -json`: the spreading-core hot
// loops measured via testing.Benchmark and emitted as a machine-readable
// record, so every PR can append a BENCH_<date>.json point to the perf
// trajectory without scraping `go test -bench` text output.
//
// Each micro measures one production-shaped trial: build the model from
// its registered spec, build the protocol from the registry, run to
// completion with a warm flood.Scratch shared across iterations — exactly
// how internal/study workers execute trials, so allocs/op here is the
// per-trial allocation cost a sweep pays (model construction included; the
// engines themselves are pinned to zero warm allocations by the
// regression tests in internal/flood).

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/dyngraph"
	"repro/internal/dynwalk"
	"repro/internal/flood"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// MicroResult is one benchmark row of the perf record.
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// ModeIndependent marks rows whose workload is identical under -quick
	// and full runs — the rows a quick CI record may be gated against a
	// committed full-suite baseline on (see GatedRegressions). Additive
	// field: records written before it parse with it false, which gates
	// nothing.
	ModeIndependent bool `json:"mode_independent,omitempty"`
	// ResidentBytes reports the workload's resident engine + model
	// footprint per Bytes() accounting, for rows that measure memory
	// (the million-node rows); zero when the row does not report it.
	ResidentBytes int64 `json:"resident_bytes,omitempty"`
}

// MicroRecord is the whole BENCH_<date>.json document.
type MicroRecord struct {
	// Schema names the document format; bump on breaking changes.
	Schema string `json:"schema"`
	// Date is the RFC 3339 timestamp of the run.
	Date string `json:"date"`
	// Go, GOOS and GOARCH identify the toolchain and platform.
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// Seed and Quick echo the benchtab configuration.
	Seed  uint64 `json:"seed"`
	Quick bool   `json:"quick"`
	// Benchmarks holds one row per micro, in suite order.
	Benchmarks []MicroResult `json:"benchmarks"`
}

// micro is one named benchmark of the suite.
type micro struct {
	name string
	run  func(b *testing.B)
	// modeIndependent marks the workload as identical under -quick and
	// full runs, making the row eligible for the cross-mode CI gate.
	modeIndependent bool
	// resident, when non-nil, reports the workload's resident footprint
	// (Bytes() accounting) after the benchmark ran.
	resident func() int64
}

// memberScanOnly hides batch snapshot interfaces, forcing the flooding
// engine onto the member-scan fallback while keeping the per-node batch
// view — the cost profile of models without edge-shaped state.
type memberScanOnly struct{ d dyngraph.Dynamic }

func (m memberScanOnly) N() int                                { return m.d.N() }
func (m memberScanOnly) Step()                                 { m.d.Step() }
func (m memberScanOnly) ForEachNeighbor(i int, fn func(j int)) { m.d.ForEachNeighbor(i, fn) }
func (m memberScanOnly) AppendNeighbors(i int, dst []int32) []int32 {
	return dyngraph.AppendNeighbors(m.d, i, dst)
}

// batchScanOnly hides DeltaBatcher while keeping the flat batch view,
// forcing the flooding engine onto the PR 4 full-snapshot edge scan — the
// before side of the delta-vs-batch rows.
type batchScanOnly struct{ d dyngraph.Dynamic }

func (m batchScanOnly) N() int                                { return m.d.N() }
func (m batchScanOnly) Step()                                 { m.d.Step() }
func (m batchScanOnly) ForEachNeighbor(i int, fn func(j int)) { m.d.ForEachNeighbor(i, fn) }
func (m batchScanOnly) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	return dyngraph.AppendEdges(m.d, dst)
}

// floodMicro measures one flood trial per iteration: model built fresh
// (trials never reuse model state), scratch warm across iterations. A
// non-nil wrap narrows the model's interface surface to steer engine
// dispatch.
func floodMicro(cfg Config, spec model.Spec, wrap func(dyngraph.Dynamic) dyngraph.Dynamic) func(b *testing.B) {
	return func(b *testing.B) {
		opts := flood.Opts{MaxSteps: 1 << 17, Scratch: flood.NewScratch()}
		for i := 0; i < b.N; i++ {
			d := model.MustBuild(spec, cfg.Seed)
			if wrap != nil {
				d = wrap(d)
			}
			if res := flood.Run(d, 0, opts); !res.Completed {
				b.Fatal("flood did not complete")
			}
		}
	}
}

// walkMicro measures a fixed-length random walk ON the model — the
// workload whose per-step cost used to be dominated by the O(m) adjacency
// rebuild that the walker's single neighbor read forced every step, and
// that the live incremental adjacency reduces to O(churn).
func walkMicro(cfg Config, spec model.Spec, steps int) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := model.MustBuild(spec, cfg.Seed)
			w := dynwalk.NewWalker(d, 0, rng.New(cfg.Seed+3))
			for s := 0; s < steps; s++ {
				w.Step()
			}
		}
	}
}

// protoMicro measures one registry-built protocol trial per iteration.
func protoMicro(cfg Config, mspec model.Spec, ptext string) func(b *testing.B) {
	return func(b *testing.B) {
		pspec, err := protocol.Parse(ptext)
		if err != nil {
			b.Fatal(err)
		}
		opts := flood.Opts{MaxSteps: 1 << 17, Scratch: flood.NewScratch()}
		for i := 0; i < b.N; i++ {
			d := model.MustBuild(mspec, cfg.Seed)
			p := protocol.MustBuild(pspec, cfg.Seed+1)
			if res := p.Run(d, 0, opts); !res.Completed {
				b.Fatalf("%s did not complete", ptext)
			}
		}
	}
}

// micros assembles the suite. Sizes mirror the root bench_test.go hot-loop
// workloads (sparse edge-MEG ≈ stationary degree 2, waypoint, and a denser
// edge-MEG ≈ degree 20 for the per-node protocols), reduced under -quick.
//
// The delta-vs-edge-scan pairs are the headline numbers of the
// incremental-dynamics refactor: same model, same seed, same trajectory
// (engine choice consumes no randomness) — one row consumes the per-step
// churn (O(churn + frontier) engine work), the other rescans the full
// snapshot (O(m) with a rank decode per alive edge per step). They run in
// the paper's sparse stationary regime with long-lived edges (p = c/n,
// q = 0.01, expected degree ≈ 2 — churn ≈ 2% of edges per step) on the
// fastchurn simulator, so the whole step is O(churn) and the engine
// difference is what the pair measures. The n = 65536 pair is a scale at
// which the batch engine made benching impractical.
func micros(cfg Config) []micro {
	sparse := model.New("edgemeg").WithInt("n", 2048).
		WithFloat("p", 0.0001).WithFloat("q", 0.0999)
	sparse4k := model.New("edgemeg").WithInt("n", 4096).
		WithFloat("p", 0.0000049).WithFloat("q", 0.01).WithBool("fastchurn", true)
	sparse64k := model.New("edgemeg").WithInt("n", 65536).
		WithFloat("p", 0.0000003).WithFloat("q", 0.01).WithBool("fastchurn", true)
	walkSpec := model.New("edgemeg").WithInt("n", 2048).
		WithFloat("p", 0.0000098).WithFloat("q", 0.01).WithBool("fastchurn", true)
	waypoint := model.New("waypoint").WithInt("n", 512).
		WithFloat("L", 45).WithFloat("r", 1).WithFloat("vmin", 1)
	dense := model.New("edgemeg").WithInt("n", 512).
		WithFloat("p", 0.004).WithFloat("q", 0.096)
	walkSteps := 1 << 13
	if cfg.Quick {
		sparse = model.New("edgemeg").WithInt("n", 512).
			WithFloat("p", 0.0004).WithFloat("q", 0.0996)
		sparse4k = model.New("edgemeg").WithInt("n", 1024).
			WithFloat("p", 0.0000196).WithFloat("q", 0.01).WithBool("fastchurn", true)
		sparse64k = model.New("edgemeg").WithInt("n", 8192).
			WithFloat("p", 0.0000024).WithFloat("q", 0.01).WithBool("fastchurn", true)
		waypoint = model.New("waypoint").WithInt("n", 128).
			WithFloat("L", 18).WithFloat("r", 1.5).WithFloat("vmin", 1)
		dense = model.New("edgemeg").WithInt("n", 128).
			WithFloat("p", 0.016).WithFloat("q", 0.084)
		walkSteps = 1 << 11
	}
	forceBatch := func(d dyngraph.Dynamic) dyngraph.Dynamic { return batchScanOnly{d} }
	forceMember := func(d dyngraph.Dynamic) dyngraph.Dynamic { return memberScanOnly{d} }
	// forceDeltify reproduces the pre-incremental mobility pipeline: the
	// generic snapshot-diff adapter (full AppendEdges + sort + diff every
	// step) feeding the same delta engine the native AppendDeltas now feeds
	// directly. The waypoint-4k delta/deltifier pair is the headline
	// before/after of the O(churn) mobility work.
	forceDeltify := func(d dyngraph.Dynamic) dyngraph.Dynamic { return dyngraph.NewDeltifier(d) }
	// Not reduced under -quick: the pair is the cross-mode CI gate's
	// mobility coverage, so both modes must run the identical workload.
	// Pause-heavy (fast trips, long rests): a modest fraction of the nodes
	// move on any step, so the native path's O(moved × density) churn scan
	// is far below the adapter's unconditional O(m log m) snapshot diff —
	// the regime the incremental work targets (sensor fields, parked
	// vehicles, duty-cycled radios all rest most of the time).
	waypoint4k := model.New("waypoint").WithInt("n", 4096).
		WithFloat("L", 64).WithFloat("r", 1).WithFloat("vmin", 8).
		WithFloat("vmax", 8).WithInt("pause", 32)
	megamicros := millionNodeMicros(cfg)
	rows := []micro{
		{name: "flood/edgemeg-sparse/delta-scan", run: floodMicro(cfg, sparse, nil)},
		{name: "flood/edgemeg-sparse/edge-scan", run: floodMicro(cfg, sparse, forceBatch)},
		{name: "flood/edgemeg-sparse/member-scan", run: floodMicro(cfg, sparse, forceMember)},
		{name: "flood/edgemeg-sparse-4k/delta-scan", run: floodMicro(cfg, sparse4k, nil)},
		{name: "flood/edgemeg-sparse-4k/edge-scan", run: floodMicro(cfg, sparse4k, forceBatch)},
		{name: "flood/edgemeg-sparse-64k/delta-scan", run: floodMicro(cfg, sparse64k, nil)},
		{name: "flood/edgemeg-sparse-64k/edge-scan", run: floodMicro(cfg, sparse64k, forceBatch)},
		{name: "flood/waypoint/delta-scan", run: floodMicro(cfg, waypoint, nil)},
		{name: "flood/waypoint/edge-scan", run: floodMicro(cfg, waypoint, forceBatch)},
		{name: "flood/waypoint-4k/delta", modeIndependent: true, run: floodMicro(cfg, waypoint4k, nil)},
		{name: "flood/waypoint-4k/deltifier", modeIndependent: true, run: floodMicro(cfg, waypoint4k, forceDeltify)},
		{name: "flood/static-torus/engine-only", modeIndependent: true, run: func(b *testing.B) {
			// Pure engine cost: the static model is stateless across runs,
			// so nothing but the spreading core is measured (since the
			// delta refactor, the incremental engine: per-run adjacency
			// seeding + active-set sweeps over a churn-free graph).
			d := dyngraph.NewStatic(graph.Torus(32, 32))
			opts := flood.Opts{MaxSteps: 1 << 10, Scratch: flood.NewScratch()}
			for i := 0; i < b.N; i++ {
				if res := flood.Run(d, 0, opts); !res.Completed {
					b.Fatal("flood did not complete")
				}
			}
		}},
		{name: "walk/edgemeg-sparse/8k-steps", run: walkMicro(cfg, walkSpec, walkSteps)},
		{name: "push/edgemeg-dense/k=2", run: protoMicro(cfg, dense, "push:k=2")},
		{name: "pull/edgemeg-dense", run: protoMicro(cfg, dense, "pull")},
		{name: "pushpull/edgemeg-dense/k=1", run: protoMicro(cfg, dense, "pushpull:k=1")},
		{name: "parsimonious/edgemeg-dense/active=32", run: protoMicro(cfg, dense, "parsimonious:active=32")},
		{name: "async/edgemeg-dense/rate=1", run: protoMicro(cfg, dense, "async:rate=1")},
	}
	rows = append(rows, mobilityMicros(cfg)...)
	return append(rows, megamicros...)
}

// edgeMEG1M is the million-node workload of the n = 10^6 rows: the sparse
// two-state MEG at stationary average degree ≈ 2 with long-lived edges
// (q = 0.01, so churn ≈ 1% of edges per step) on the stream=v2 fast
// samplers — α = p/(p+q) = 2·10⁻⁶ over ≈ 5·10¹¹ pairs gives ≈ 10⁶ alive
// edges and ≈ 2·10⁴ churn events per step.
var edgeMEG1M = model.New("edgemeg").WithInt("n", 1_000_000).
	WithFloat("p", 2e-8).WithFloat("q", 0.01).With("stream", "v2")

// bytesReporter is the Bytes() accounting the engines and models expose.
type bytesReporter interface{ Bytes() int64 }

// millionNodeMicros returns the n = 10^6 rows — the tentpole evidence that
// the sparse engine steps in O(churn) and floods in O(churn + frontier)
// at a million nodes inside a small resident footprint. Both rows run the
// SAME workload under -quick and full (they are already step-scoped, not
// completion-scoped), so they are mode-independent and the CI cross-mode
// gate covers them.
func millionNodeMicros(cfg Config) []micro {
	var stepResident, floodResident int64
	return []micro{
		{
			name:            "step/edgemeg-1m/stream-v2",
			modeIndependent: true,
			resident:        func() int64 { return stepResident },
			run: func(b *testing.B) {
				// One model for the whole benchmark: the row measures the
				// warm per-step cost (O(churn) draws + index maintenance),
				// not the one-time stationary construction.
				d := model.MustBuild(edgeMEG1M, cfg.Seed)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Step()
				}
				b.StopTimer()
				stepResident = d.(bytesReporter).Bytes()
			},
		},
		{
			name:            "flood/edgemeg-1m/delta-128steps",
			modeIndependent: true,
			resident:        func() int64 { return floodResident },
			run: func(b *testing.B) {
				// A fixed 128-step flooding window per op over the evolving
				// graph (the model persists across iterations; each op seeds
				// the adjacency from the current snapshot and floods from
				// scratch). Degree ≈ 2 leaves stragglers, so the window
				// never completes — the row measures per-step engine work,
				// not completion time.
				d := model.MustBuild(edgeMEG1M, cfg.Seed+1)
				opts := flood.Opts{MaxSteps: 128, Scratch: flood.NewScratch()}
				// Two untimed windows grow the scratch and the adjacency
				// arena to their high-water marks so the timed ops report
				// the warm zero-alloc regime.
				flood.Run(d, 0, opts)
				flood.Run(d, 0, opts)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if res := flood.Run(d, 0, opts); res.Informed < 2 {
						b.Fatal("flood spread nowhere")
					}
				}
				b.StopTimer()
				floodResident = d.(bytesReporter).Bytes() + opts.Scratch.Bytes()
			},
		},
	}
}

// waypoint64K is the large geometric workload: 65536 nodes in a 256×256
// square at radius 1 (average degree ≈ π), fast trips (speed 8) separated
// by long rests (pause 32), so roughly a quarter of the nodes move on any
// step — the partial-churn regime the incremental cell lists target, at a
// scale where the per-step full rebuild + pair rescan used to dominate.
var waypoint64K = model.New("waypoint").WithInt("n", 65536).
	WithFloat("L", 256).WithFloat("r", 1).WithFloat("vmin", 8).
	WithFloat("vmax", 8).WithInt("pause", 32)

// mobilityMicros returns the 64k geometric rows. Like the million-node
// edge-MEG rows they are step-scoped rather than completion-scoped, run the
// identical workload under -quick and full, and persist the model across
// iterations to measure the warm regime.
func mobilityMicros(cfg Config) []micro {
	return []micro{
		{
			name:            "step/waypoint-64k",
			modeIndependent: true,
			run: func(b *testing.B) {
				// Warm per-step cost of the model alone: O(moved) cell-list
				// maintenance plus the two-pass churn detection, no engine.
				d := model.MustBuild(waypoint64K, cfg.Seed)
				for i := 0; i < 256; i++ {
					d.Step() // untimed: reach the steady mover mix and buffer high-waters
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Step()
				}
			},
		},
		{
			name:            "flood/waypoint-64k/delta",
			modeIndependent: true,
			run: func(b *testing.B) {
				// A fixed 128-step flooding window per op over the evolving
				// positions — completion at degree ≈ π depends on mobility
				// mixing and would make the row completion-scoped, so the
				// window measures per-step engine + model work instead.
				d := model.MustBuild(waypoint64K, cfg.Seed+1)
				opts := flood.Opts{MaxSteps: 128, Scratch: flood.NewScratch()}
				flood.Run(d, 0, opts)
				flood.Run(d, 0, opts)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if res := flood.Run(d, 0, opts); res.Informed < 2 {
						b.Fatal("flood spread nowhere")
					}
				}
			},
		},
	}
}

// RunMicros executes the microbenchmark suite and returns one row per
// benchmark. Progress is reported to w (one line per micro) because a full
// suite takes tens of seconds.
func RunMicros(cfg Config, w io.Writer) []MicroResult {
	var out []MicroResult
	for _, m := range micros(cfg) {
		r := testing.Benchmark(m.run)
		row := MicroResult{
			Name:            m.name,
			Iterations:      r.N,
			NsPerOp:         float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:     r.AllocsPerOp(),
			BytesPerOp:      r.AllocedBytesPerOp(),
			ModeIndependent: m.modeIndependent,
		}
		if m.resident != nil {
			row.ResidentBytes = m.resident()
		}
		fmt.Fprintf(w, "%-40s %12.0f ns/op %8d B/op %6d allocs/op\n",
			row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
		out = append(out, row)
	}
	return out
}

// WriteMicroJSON runs the suite and writes the BENCH_<date>.json document
// to w, with progress lines on progress.
func WriteMicroJSON(cfg Config, now time.Time, w, progress io.Writer) error {
	rec := MicroRecord{
		Schema:     "repro-bench/v1",
		Date:       now.Format(time.RFC3339),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Seed:       cfg.Seed,
		Quick:      cfg.Quick,
		Benchmarks: RunMicros(cfg, progress),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
