package bench

// The microbenchmark suite behind `benchtab -json`: the spreading-core hot
// loops measured via testing.Benchmark and emitted as a machine-readable
// record, so every PR can append a BENCH_<date>.json point to the perf
// trajectory without scraping `go test -bench` text output.
//
// Each micro measures one production-shaped trial: build the model from
// its registered spec, build the protocol from the registry, run to
// completion with a warm flood.Scratch shared across iterations — exactly
// how internal/study workers execute trials, so allocs/op here is the
// per-trial allocation cost a sweep pays (model construction included; the
// engines themselves are pinned to zero warm allocations by the
// regression tests in internal/flood).

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/protocol"
)

// MicroResult is one benchmark row of the perf record.
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// MicroRecord is the whole BENCH_<date>.json document.
type MicroRecord struct {
	// Schema names the document format; bump on breaking changes.
	Schema string `json:"schema"`
	// Date is the RFC 3339 timestamp of the run.
	Date string `json:"date"`
	// Go, GOOS and GOARCH identify the toolchain and platform.
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// Seed and Quick echo the benchtab configuration.
	Seed  uint64 `json:"seed"`
	Quick bool   `json:"quick"`
	// Benchmarks holds one row per micro, in suite order.
	Benchmarks []MicroResult `json:"benchmarks"`
}

// micro is one named benchmark of the suite.
type micro struct {
	name string
	run  func(b *testing.B)
}

// memberScanOnly hides batch snapshot interfaces, forcing the flooding
// engine onto the member-scan fallback while keeping the per-node batch
// view — the cost profile of models without edge-shaped state.
type memberScanOnly struct{ d dyngraph.Dynamic }

func (m memberScanOnly) N() int                                { return m.d.N() }
func (m memberScanOnly) Step()                                 { m.d.Step() }
func (m memberScanOnly) ForEachNeighbor(i int, fn func(j int)) { m.d.ForEachNeighbor(i, fn) }
func (m memberScanOnly) AppendNeighbors(i int, dst []int32) []int32 {
	return dyngraph.AppendNeighbors(m.d, i, dst)
}

// floodMicro measures one flood trial per iteration: model built fresh
// (trials never reuse model state), scratch warm across iterations.
func floodMicro(cfg Config, spec model.Spec, wrap bool) func(b *testing.B) {
	return func(b *testing.B) {
		opts := flood.Opts{MaxSteps: 1 << 17, Scratch: flood.NewScratch()}
		for i := 0; i < b.N; i++ {
			d := model.MustBuild(spec, cfg.Seed)
			if wrap {
				d = memberScanOnly{d}
			}
			if res := flood.Run(d, 0, opts); !res.Completed {
				b.Fatal("flood did not complete")
			}
		}
	}
}

// protoMicro measures one registry-built protocol trial per iteration.
func protoMicro(cfg Config, mspec model.Spec, ptext string) func(b *testing.B) {
	return func(b *testing.B) {
		pspec, err := protocol.Parse(ptext)
		if err != nil {
			b.Fatal(err)
		}
		opts := flood.Opts{MaxSteps: 1 << 17, Scratch: flood.NewScratch()}
		for i := 0; i < b.N; i++ {
			d := model.MustBuild(mspec, cfg.Seed)
			p := protocol.MustBuild(pspec, cfg.Seed+1)
			if res := p.Run(d, 0, opts); !res.Completed {
				b.Fatalf("%s did not complete", ptext)
			}
		}
	}
}

// micros assembles the suite. Sizes mirror the root bench_test.go hot-loop
// workloads (sparse edge-MEG ≈ stationary degree 2, waypoint, and a denser
// edge-MEG ≈ degree 20 for the per-node protocols), reduced under -quick.
func micros(cfg Config) []micro {
	sparse := model.New("edgemeg").WithInt("n", 2048).
		WithFloat("p", 0.0001).WithFloat("q", 0.0999)
	waypoint := model.New("waypoint").WithInt("n", 512).
		WithFloat("L", 45).WithFloat("r", 1).WithFloat("vmin", 1)
	dense := model.New("edgemeg").WithInt("n", 512).
		WithFloat("p", 0.004).WithFloat("q", 0.096)
	if cfg.Quick {
		sparse = model.New("edgemeg").WithInt("n", 512).
			WithFloat("p", 0.0004).WithFloat("q", 0.0996)
		waypoint = model.New("waypoint").WithInt("n", 128).
			WithFloat("L", 18).WithFloat("r", 1.5).WithFloat("vmin", 1)
		dense = model.New("edgemeg").WithInt("n", 128).
			WithFloat("p", 0.016).WithFloat("q", 0.084)
	}
	return []micro{
		{"flood/edgemeg-sparse/edge-scan", floodMicro(cfg, sparse, false)},
		{"flood/edgemeg-sparse/member-scan", floodMicro(cfg, sparse, true)},
		{"flood/waypoint/edge-scan", floodMicro(cfg, waypoint, false)},
		{"flood/static-torus/engine-only", func(b *testing.B) {
			// Pure engine cost: the static model is stateless across runs,
			// so nothing but the spreading core is measured.
			d := dyngraph.NewStatic(graph.Torus(32, 32))
			opts := flood.Opts{MaxSteps: 1 << 10, Scratch: flood.NewScratch()}
			for i := 0; i < b.N; i++ {
				if res := flood.Run(d, 0, opts); !res.Completed {
					b.Fatal("flood did not complete")
				}
			}
		}},
		{"push/edgemeg-dense/k=2", protoMicro(cfg, dense, "push:k=2")},
		{"pull/edgemeg-dense", protoMicro(cfg, dense, "pull")},
		{"pushpull/edgemeg-dense/k=1", protoMicro(cfg, dense, "pushpull:k=1")},
		{"parsimonious/edgemeg-dense/active=32", protoMicro(cfg, dense, "parsimonious:active=32")},
	}
}

// RunMicros executes the microbenchmark suite and returns one row per
// benchmark. Progress is reported to w (one line per micro) because a full
// suite takes tens of seconds.
func RunMicros(cfg Config, w io.Writer) []MicroResult {
	var out []MicroResult
	for _, m := range micros(cfg) {
		r := testing.Benchmark(m.run)
		row := MicroResult{
			Name:        m.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(w, "%-40s %12.0f ns/op %8d B/op %6d allocs/op\n",
			row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
		out = append(out, row)
	}
	return out
}

// WriteMicroJSON runs the suite and writes the BENCH_<date>.json document
// to w, with progress lines on progress.
func WriteMicroJSON(cfg Config, now time.Time, w, progress io.Writer) error {
	rec := MicroRecord{
		Schema:     "repro-bench/v1",
		Date:       now.Format(time.RFC3339),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Seed:       cfg.Seed,
		Quick:      cfg.Quick,
		Benchmarks: RunMicros(cfg, progress),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
