package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/edgemeg"
	"repro/internal/flood"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Spreading vs saturation phases of the flooding process (Lemmas 13–14)",
		Claim: "|I_t| doubles at short regular intervals until n/2 (log n doublings, Lemma 11/13); both measured phases sit far below their lemma budgets of M(1/nα+β)²log²n (spreading) and M(1/nα+β)log n (saturation)",
		Run:   runE7,
	})
}

func runE7(cfg Config, w io.Writer) error {
	n := 1024
	trials := 20
	if cfg.Quick {
		n = 256
		trials = 8
	}
	// Sparse edge-MEG with stationary edge probability alpha = 2/n and
	// chain speed p+q = 0.1.
	alpha := 2.0 / float64(n)
	speed := 0.1
	params := edgemeg.Params{N: n, P: alpha * speed, Q: speed - alpha*speed}

	spec := edgemegSpec(n, params.P, params.Q)

	// One representative timeline.
	d := buildModel(spec, cfg.Seed, 8)
	res := flood.Run(d, 0, flood.Opts{MaxSteps: 1 << 17, KeepTimeline: true})
	if !res.Completed {
		return fmt.Errorf("representative run did not complete")
	}
	doublings := flood.Doublings(res.Timeline)
	fmt.Fprintf(w, "   representative run (n=%d): flood=%d, half=%d, saturation=%d\n",
		n, res.Time, res.HalfTime, res.SaturationTime())
	tab := NewTable(w, "informed reaches", "time", "gap since previous")
	prev := 0
	for i, t := range doublings {
		tab.Row(fmt.Sprintf("2^%d", i+1), t, t-prev)
		prev = t
	}
	if err := tab.Flush(); err != nil {
		return err
	}

	// Phase statistics across trials; one scratch serves them all (the
	// loop is sequential, unlike the study worker pools which hold one
	// scratch per worker).
	var spread, sat []float64
	opts := flood.Opts{MaxSteps: 1 << 17, Scratch: flood.NewScratch()}
	for trial := 0; trial < trials; trial++ {
		d := buildModel(spec, cfg.Seed, 9, uint64(trial))
		r := flood.Run(d, 0, opts)
		if ps, ok := flood.Phases(r); ok {
			spread = append(spread, float64(ps.Spreading))
			sat = append(sat, float64(ps.Saturation))
		}
	}
	// Lemma budgets, in steps (epoch length M = per-edge mixing time).
	m := float64(params.MixingTime(0.25))
	lnN := math.Log(float64(n))
	term := 1/(float64(n)*alpha) + 1 // β = 1 for independent edges
	spreadBudget := m * term * term * lnN * lnN
	satBudget := m * term * lnN
	fmt.Fprintf(w, "   over %d trials: spreading median=%s (Lemma 13 budget %s), saturation median=%s (Lemma 14 budget %s)\n",
		len(spread), f1(stats.Median(spread)), f1(spreadBudget),
		f1(stats.Median(sat)), f1(satBudget))
	fmt.Fprintln(w, "   check: doubling gaps during spreading are a handful of steps each; both phases sit far below their lemma budgets. Saturation is dominated by the slowest node's wait for a fresh edge (≈ M·log n), which the coarser Lemma 13 budget would overcharge by a (1/nα+β)·log n factor — exactly why the paper analyzes the phases separately")
	return nil
}
