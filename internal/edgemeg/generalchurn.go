package edgemeg

import (
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// classChains is the O(churn)-per-step state of the generalized edge-MEG's
// fast sampler (stream=v2): pairs are bucketed by hidden state, and a step
// samples, per state class s, which members leave — geometric skipping
// over the class list with success probability leave(s) = 1 − M[s][s],
// the same device the sparse two-state fast path uses — and, for each
// leaver, its destination from the conditional law M[s][·]/leave(s) by
// one alias draw. The per-pair sweep draws one transition per pair per
// step, O(pairs) RNG calls; this draws O(moves), which in the
// slowly-mixing regimes the paper studies (leave(s) ≪ 1) is smaller by
// the mixing time.
//
// The transition law is exactly the chain's: a member of class s moves
// with probability leave(s), and conditionally on moving lands on j ≠ s
// with probability M[s][j]/leave(s) — the decomposition of one M-step.
// The RNG STREAM differs from the sweep, so fixed-seed trajectories
// differ (same distribution); the sweep remains the stream=v1 default and
// keeps every pin.
type classChains struct {
	// members[s] lists the ranks currently in state s; cpos[rank] is the
	// rank's index in its class list (swap-remove maintenance, like
	// Sparse.pos). Membership is scanned per class in list order, and
	// moves apply only after every class was sampled, so each step reads
	// pre-step membership exactly.
	members [][]int64
	cpos    []int32
	// leave[s] = 1 − M[s][s]; dest[s] enumerates the states reachable from
	// s in one move; alias[s] draws from dest[s] with the conditional
	// weights M[s][j] (nil when a single destination makes the draw
	// trivial). Built once per simulator, no RNG consumed.
	leave []float64
	dest  [][]int32
	alias []*rng.Alias
	moves []classMove // per-step scratch, reused
}

// classMove is one sampled transition: rank leaves its current state for to.
type classMove struct {
	rank int64
	to   int32
}

// UseClassChains switches the simulator's Step to the per-state-class
// O(moves) sampler — the stream=v2 fast path. It must be called before
// the first Step; the class lists are built from the current state vector
// in rank order, deterministically, consuming no randomness.
func (g *General) UseClassChains() {
	if g.pairs > maxAlive {
		panic("edgemeg: class-chain sampler exceeds int32 class positions")
	}
	S := g.chain.N()
	cc := &classChains{
		members: make([][]int64, S),
		cpos:    make([]int32, g.pairs),
		leave:   make([]float64, S),
		dest:    make([][]int32, S),
		alias:   make([]*rng.Alias, S),
	}
	for s := 0; s < S; s++ {
		row := g.chain.Row(s)
		var w []float64
		for j, pj := range row {
			if j == s || pj <= 0 {
				continue
			}
			cc.dest[s] = append(cc.dest[s], int32(j))
			w = append(w, pj)
		}
		cc.leave[s] = 1 - row[s]
		if len(cc.dest[s]) > 1 {
			cc.alias[s] = rng.NewAlias(w)
		}
	}
	for rank, s := range g.states {
		cc.cpos[rank] = int32(len(cc.members[s]))
		cc.members[s] = append(cc.members[s], int64(rank))
	}
	g.cc = cc
}

// stepClasses is Step under the class-chain sampler. Every class is
// sampled from its pre-step membership before any move applies, so a pair
// moved into class s' this step cannot be re-drawn from s'.
func (g *General) stepClasses() {
	g.born, g.died = g.born[:0], g.died[:0]
	cc := g.cc
	cc.moves = cc.moves[:0]
	for s := range cc.members {
		leave := cc.leave[s]
		if leave <= 0 {
			continue
		}
		list := cc.members[s]
		for i := int64(g.r.Geometric(leave)); i < int64(len(list)); i += 1 + int64(g.r.Geometric(leave)) {
			cc.moves = append(cc.moves, classMove{rank: list[i], to: g.drawDest(s)})
		}
	}
	for _, mv := range cc.moves {
		g.applyMove(mv)
	}
}

// drawDest samples the destination of a leaver of class s from the
// conditional law M[s][·]/leave(s).
func (g *General) drawDest(s int) int32 {
	cc := g.cc
	if a := cc.alias[s]; a != nil {
		return cc.dest[s][a.Sample(g.r)]
	}
	return cc.dest[s][0]
}

// applyMove commits one sampled transition: class lists (swap-remove +
// append), the state vector, the delta record when presence flips, and
// the live adjacency.
func (g *General) applyMove(mv classMove) {
	cc := g.cc
	from := g.states[mv.rank]
	l := cc.members[from]
	i := cc.cpos[mv.rank]
	last := int32(len(l) - 1)
	moved := l[last]
	l[i] = moved
	cc.cpos[moved] = i
	cc.members[from] = l[:last]
	cc.cpos[mv.rank] = int32(len(cc.members[mv.to]))
	cc.members[mv.to] = append(cc.members[mv.to], mv.rank)
	g.states[mv.rank] = mv.to
	if was, is := g.chi[from], g.chi[mv.to]; is != was {
		u, v := pairFromRank(mv.rank, g.n)
		if is {
			g.born = append(g.born, dyngraph.Edge{U: int32(u), V: int32(v)})
			if g.adjLive {
				g.adjInsort(u, int32(v))
				g.adjInsort(v, int32(u))
			}
		} else {
			g.died = append(g.died, dyngraph.Edge{U: int32(u), V: int32(v)})
			if g.adjLive {
				g.adjDelete(u, int32(v))
				g.adjDelete(v, int32(u))
			}
		}
	}
}
