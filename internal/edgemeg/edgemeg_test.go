package edgemeg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/markov"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{N: 1, P: 0.1, Q: 0.1}).Validate(); err == nil {
		t.Fatal("n=1 accepted")
	}
	if err := (Params{N: 5, P: -1, Q: 0.1}).Validate(); err == nil {
		t.Fatal("negative p accepted")
	}
	if err := (Params{N: 5, P: 0.1, Q: 0.2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsDerived(t *testing.T) {
	p := Params{N: 11, P: 0.1, Q: 0.3}
	if !almostEq(p.Alpha(), 0.25, 1e-12) {
		t.Fatalf("Alpha = %v", p.Alpha())
	}
	if !almostEq(p.ExpectedDegree(), 2.5, 1e-12) {
		t.Fatalf("ExpectedDegree = %v", p.ExpectedDegree())
	}
	if p.MixingTime(0.25) < 1 {
		t.Fatal("mixing time must be >= 1")
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPairRankBijectionProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%30) + 2
		seen := make(map[int64]bool)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				rank := pairRank(u, v, n)
				if rank < 0 || rank >= pairCount(n) || seen[rank] {
					return false
				}
				seen[rank] = true
				gu, gv := pairFromRank(rank, n)
				if gu != u || gv != v {
					return false
				}
			}
		}
		return int64(len(seen)) == pairCount(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPairRankSymmetric(t *testing.T) {
	if pairRank(3, 7, 10) != pairRank(7, 3, 10) {
		t.Fatal("pairRank not symmetric")
	}
}

func TestDenseInitModes(t *testing.T) {
	params := Params{N: 20, P: 0.3, Q: 0.3}
	empty := NewDense(params, InitEmpty, rng.New(1))
	if empty.EdgeCount() != 0 {
		t.Fatal("InitEmpty has edges")
	}
	full := NewDense(params, InitFull, rng.New(1))
	if int64(full.EdgeCount()) != pairCount(20) {
		t.Fatal("InitFull incomplete")
	}
	stat := NewDense(params, InitStationary, rng.New(1))
	frac := float64(stat.EdgeCount()) / float64(pairCount(20))
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("stationary init density %v, want ~0.5", frac)
	}
}

func TestDenseStationaryDensityHolds(t *testing.T) {
	// Run the chain; time-averaged density should match alpha.
	params := Params{N: 30, P: 0.05, Q: 0.15} // alpha = 0.25
	d := NewDense(params, InitStationary, rng.New(5))
	var o stats.Online
	for step := 0; step < 400; step++ {
		o.Add(float64(d.EdgeCount()) / float64(pairCount(30)))
		d.Step()
	}
	if math.Abs(o.Mean()-0.25) > 0.02 {
		t.Fatalf("time-averaged density %v, want 0.25", o.Mean())
	}
}

func TestDenseConvergesFromEmpty(t *testing.T) {
	params := Params{N: 25, P: 0.1, Q: 0.1}
	d := NewDense(params, InitEmpty, rng.New(7))
	// After many mixing times the density reaches alpha = 0.5.
	for step := 0; step < 200; step++ {
		d.Step()
	}
	frac := float64(d.EdgeCount()) / float64(pairCount(25))
	if math.Abs(frac-0.5) > 0.1 {
		t.Fatalf("density after mixing %v, want ~0.5", frac)
	}
}

func TestDenseNeighborsConsistent(t *testing.T) {
	params := Params{N: 15, P: 0.2, Q: 0.2}
	d := NewDense(params, InitStationary, rng.New(9))
	for step := 0; step < 5; step++ {
		for i := 0; i < 15; i++ {
			d.ForEachNeighbor(i, func(j int) {
				if !d.HasEdge(i, j) || !d.HasEdge(j, i) {
					t.Fatalf("neighbor inconsistency %d-%d", i, j)
				}
				if i == j {
					t.Fatal("self loop")
				}
			})
		}
		d.Step()
	}
}

func TestSparseMatchesDenseMoments(t *testing.T) {
	// Same distribution: compare time-averaged edge counts across many
	// steps between the two simulators.
	params := Params{N: 40, P: 0.02, Q: 0.08} // alpha = 0.2
	dense := NewDense(params, InitStationary, rng.New(11))
	sparse := NewSparse(params, InitStationary, rng.New(13))
	var od, os stats.Online
	for step := 0; step < 600; step++ {
		od.Add(float64(dense.EdgeCount()))
		os.Add(float64(sparse.EdgeCount()))
		dense.Step()
		sparse.Step()
	}
	want := params.Alpha() * float64(pairCount(40))
	if math.Abs(od.Mean()-want) > 0.08*want {
		t.Fatalf("dense mean edges %v, want ~%v", od.Mean(), want)
	}
	if math.Abs(os.Mean()-want) > 0.08*want {
		t.Fatalf("sparse mean edges %v, want ~%v", os.Mean(), want)
	}
	// Standard deviations should match too (Binomial variance).
	wantSD := math.Sqrt(float64(pairCount(40)) * params.Alpha() * (1 - params.Alpha()))
	if math.Abs(od.Std()-wantSD) > 0.5*wantSD || math.Abs(os.Std()-wantSD) > 0.5*wantSD {
		t.Fatalf("edge-count SDs: dense %v sparse %v want ~%v", od.Std(), os.Std(), wantSD)
	}
}

func TestSparseNeighborsConsistent(t *testing.T) {
	params := Params{N: 30, P: 0.05, Q: 0.2}
	s := NewSparse(params, InitStationary, rng.New(15))
	for step := 0; step < 10; step++ {
		count := 0
		for i := 0; i < 30; i++ {
			s.ForEachNeighbor(i, func(j int) {
				count++
				if !s.HasEdge(i, j) {
					t.Fatalf("phantom neighbor %d-%d", i, j)
				}
			})
		}
		if count != 2*s.EdgeCount() {
			t.Fatalf("adjacency count %d != 2x edges %d", count, 2*s.EdgeCount())
		}
		s.Step()
	}
}

func TestSparseBirthDeathExtremes(t *testing.T) {
	// q=1: all edges die each step; p=1: all pairs born each step.
	params := Params{N: 10, P: 1, Q: 1}
	s := NewSparse(params, InitEmpty, rng.New(17))
	s.Step()
	if int64(s.EdgeCount()) != pairCount(10) {
		t.Fatalf("p=1 should fill graph, have %d", s.EdgeCount())
	}
	// Next step: all alive die, all dead (none) born... with p=1 the dead
	// set before the step is empty, so the graph empties.
	s.Step()
	if s.EdgeCount() != 0 {
		t.Fatalf("q=1 should empty graph, have %d", s.EdgeCount())
	}
}

func TestSparseVsDenseFloodingDistribution(t *testing.T) {
	// The flooding-time distributions of the two exact simulators must
	// agree. Compare medians over repeated trials.
	params := Params{N: 48, P: 0.01, Q: 0.19} // alpha=0.05, E[deg]≈2.35
	const trials = 60
	run := func(mk func(seed uint64) dyngraph.Dynamic) []float64 {
		times := make([]float64, 0, trials)
		for trial := 0; trial < trials; trial++ {
			d := mk(rng.Seed(23, uint64(trial)))
			r := flood.Run(d, 0, flood.Opts{MaxSteps: 2000})
			if r.Completed {
				times = append(times, float64(r.Time))
			}
		}
		return times
	}
	denseTimes := run(func(seed uint64) dyngraph.Dynamic {
		return NewDense(params, InitStationary, rng.New(seed))
	})
	sparseTimes := run(func(seed uint64) dyngraph.Dynamic {
		return NewSparse(params, InitStationary, rng.New(seed+1))
	})
	if len(denseTimes) < trials*9/10 || len(sparseTimes) < trials*9/10 {
		t.Fatalf("too many incomplete runs: %d, %d", len(denseTimes), len(sparseTimes))
	}
	md := stats.Median(denseTimes)
	ms := stats.Median(sparseTimes)
	if math.Abs(md-ms) > 0.35*math.Max(md, ms) {
		t.Fatalf("flooding medians diverge: dense %v sparse %v", md, ms)
	}
}

func TestSparseDeterministicPerSeed(t *testing.T) {
	// Two same-seed simulators must produce identical trajectories — this
	// is a regression test for map-iteration-order nondeterminism in the
	// death sweep.
	params := Params{N: 50, P: 0.01, Q: 0.09}
	a := NewSparse(params, InitStationary, rng.New(99))
	b := NewSparse(params, InitStationary, rng.New(99))
	for step := 0; step < 50; step++ {
		if a.EdgeCount() != b.EdgeCount() {
			t.Fatalf("edge counts diverged at step %d", step)
		}
		for i := 0; i < 50; i++ {
			for j := i + 1; j < 50; j++ {
				if a.HasEdge(i, j) != b.HasEdge(i, j) {
					t.Fatalf("edge sets diverged at step %d (%d,%d)", step, i, j)
				}
			}
		}
		a.Step()
		b.Step()
	}
}

func TestGeneralTwoStateReducesToBasic(t *testing.T) {
	// A general edge-MEG with the 2-state chain and chi = [off, on] is the
	// basic model; check the stationary alpha and density.
	ts := markov.TwoState{P: 0.1, Q: 0.3}
	chi := []bool{false, true}
	alpha, err := StationaryAlpha(ts.Chain(), chi)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(alpha, 0.25, 1e-9) {
		t.Fatalf("alpha = %v, want 0.25", alpha)
	}
	pi, _ := ts.Chain().StationaryExact()
	g, err := NewGeneral(25, ts.Chain(), chi, pi, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	var o stats.Online
	for step := 0; step < 300; step++ {
		o.Add(float64(g.EdgeCount()) / float64(pairCount(25)))
		g.Step()
	}
	if math.Abs(o.Mean()-0.25) > 0.03 {
		t.Fatalf("general MEG density %v, want 0.25", o.Mean())
	}
}

func TestGeneralHiddenStates(t *testing.T) {
	// A 3-state chain where only state 2 means "edge on": a hidden model
	// the basic 2-state MEG cannot express (two distinct off states).
	chain := markov.MustChain([][]float64{
		{0.8, 0.2, 0.0},
		{0.1, 0.7, 0.2},
		{0.0, 0.5, 0.5},
	})
	chi := []bool{false, false, true}
	pi, err := chain.StationaryExact()
	if err != nil {
		t.Fatal(err)
	}
	wantAlpha, _ := StationaryAlpha(chain, chi)
	g, err := NewGeneral(20, chain, chi, pi, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	var o stats.Online
	for step := 0; step < 500; step++ {
		o.Add(float64(g.EdgeCount()) / float64(pairCount(20)))
		g.Step()
	}
	if math.Abs(o.Mean()-wantAlpha) > 0.05 {
		t.Fatalf("hidden MEG density %v, want %v", o.Mean(), wantAlpha)
	}
}

func TestGeneralValidation(t *testing.T) {
	ts := markov.TwoState{P: 0.1, Q: 0.1}
	pi, _ := ts.Chain().StationaryExact()
	if _, err := NewGeneral(1, ts.Chain(), []bool{false, true}, pi, rng.New(1)); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewGeneral(5, ts.Chain(), []bool{true}, pi, rng.New(1)); err == nil {
		t.Fatal("short chi accepted")
	}
	if _, err := NewGeneral(5, ts.Chain(), []bool{false, true}, []float64{1}, rng.New(1)); err == nil {
		t.Fatal("short init accepted")
	}
}

func TestGeneralNeighborsSymmetric(t *testing.T) {
	ts := markov.TwoState{P: 0.3, Q: 0.3}
	pi, _ := ts.Chain().StationaryExact()
	g, err := NewGeneral(12, ts.Chain(), []bool{false, true}, pi, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		for i := 0; i < 12; i++ {
			g.ForEachNeighbor(i, func(j int) {
				if !g.HasEdge(j, i) {
					t.Fatalf("asymmetric edge %d-%d", i, j)
				}
			})
		}
		g.Step()
	}
}

func TestFloodingOnEdgeMEGCompletes(t *testing.T) {
	// Integration: flooding over a sparse stationary edge-MEG completes
	// even though every snapshot is sparse and disconnected — the central
	// point of the paper's analysis.
	params := Params{N: 200, P: 0.002, Q: 0.198} // alpha=0.01, E[deg]≈2
	d := NewSparse(params, InitStationary, rng.New(27))
	snapshotDegree := float64(2*d.EdgeCount()) / 200
	if snapshotDegree > 4 {
		t.Fatalf("setup not sparse: avg degree %v", snapshotDegree)
	}
	r := flood.Run(d, 0, flood.Opts{MaxSteps: 5000, KeepTimeline: true})
	if !r.Completed {
		t.Fatal("flooding did not complete on sparse edge-MEG")
	}
	if !flood.GrowthIsMonotone(r.Timeline) {
		t.Fatal("timeline not monotone")
	}
}

func BenchmarkDenseStep(b *testing.B) {
	d := NewDense(Params{N: 500, P: 0.001, Q: 0.099}, InitStationary, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step()
	}
}

func BenchmarkSparseStep(b *testing.B) {
	d := NewSparse(Params{N: 5000, P: 2e-5, Q: 0.0498}, InitStationary, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step()
	}
}
