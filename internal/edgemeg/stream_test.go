package edgemeg_test

// Stream-generation tests for the spec-versioned samplers: stream=v1 must
// be byte-identical to an unset stream param (every fixed-seed pin in the
// repo rides on that), and stream=v2 — a DIFFERENT RNG stream — must obey
// the same law, checked on the two invariants with known closed forms:
// the stationary edge count pairs·α and the stationary per-step churn
// pairs·p·q/(p+q) (two-state), resp. the class-chain General against its
// per-pair sweep on deterministic chains (exact) and on the four-state
// stationary mean (statistical).

import (
	"math"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/rng"
)

func edgeCount(d dyngraph.Dynamic) int {
	type counter interface{ EdgeCount() int }
	return d.(counter).EdgeCount()
}

// TestStreamV1IsDefault pins that stream=v1 is the identity: a spec with
// the param set explicitly builds a simulator whose fixed-seed trajectory
// is edge-for-edge identical to the same spec without it.
func TestStreamV1IsDefault(t *testing.T) {
	for _, base := range []model.Spec{
		model.New("edgemeg").WithInt("n", 128).WithFloat("p", 0.004).WithFloat("q", 0.096),
		model.New("edgemeg4").WithInt("n", 64),
	} {
		plain, err := model.Build(base, 42)
		if err != nil {
			t.Fatalf("%v: %v", base, err)
		}
		tagged, err := model.Build(base.With("stream", "v1"), 42)
		if err != nil {
			t.Fatalf("%v stream=v1: %v", base, err)
		}
		var pe, te []dyngraph.Edge
		for step := 0; step < 50; step++ {
			pe = dyngraph.AppendEdges(plain, pe[:0])
			te = dyngraph.AppendEdges(tagged, te[:0])
			if len(pe) != len(te) {
				t.Fatalf("%v: step %d: %d edges vs %d with stream=v1", base, step, len(pe), len(te))
			}
			for k := range pe {
				if pe[k] != te[k] {
					t.Fatalf("%v: step %d: edge %d differs: %v vs %v", base, step, k, pe[k], te[k])
				}
			}
			plain.Step()
			tagged.Step()
		}
	}
}

// TestStreamV2UnknownRejected pins the param's error path.
func TestStreamV2UnknownRejected(t *testing.T) {
	spec := model.New("edgemeg").WithInt("n", 64).With("stream", "v3")
	if _, err := model.Build(spec, 1); err == nil {
		t.Fatal("stream=v3 built without error")
	}
	dense := model.New("edgemeg").WithInt("n", 64).WithBool("dense", true).With("stream", "v2")
	if _, err := model.Build(dense, 1); err == nil {
		t.Fatal("dense with stream=v2 built without error")
	}
}

// TestStreamV2TwoStateLaw checks the v2 sparse sampler against the
// two-state model's closed-form stationary moments: mean edge count
// pairs·α and mean churn (births and deaths separately) pairs·p·q/(p+q)
// per step, each within 5 standard errors under the independent-edges
// product law.
func TestStreamV2TwoStateLaw(t *testing.T) {
	const (
		n     = 256
		p     = 0.004
		q     = 0.096
		steps = 4000
	)
	spec := model.New("edgemeg").WithInt("n", n).
		WithFloat("p", p).WithFloat("q", q).With("stream", "v2")
	d, err := model.Build(spec, 97)
	if err != nil {
		t.Fatal(err)
	}
	db := d.(dyngraph.DeltaBatcher)
	pairs := float64(n) * (n - 1) / 2
	alpha := p / (p + q)

	var edgeSum, bornSum, diedSum float64
	var born, died []dyngraph.Edge
	for step := 0; step < steps; step++ {
		edgeSum += float64(edgeCount(d))
		d.Step()
		born, died = db.AppendDeltas(born[:0], died[:0])
		bornSum += float64(len(born))
		diedSum += float64(len(died))
	}

	// Edge count: mean pairs·α, per-snapshot variance pairs·α(1−α).
	// Snapshots are correlated across steps, so allow the full per-sample
	// deviation rather than dividing by √steps.
	meanEdges := edgeSum / steps
	wantEdges := pairs * alpha
	if sd := math.Sqrt(pairs * alpha * (1 - alpha)); math.Abs(meanEdges-wantEdges) > 5*sd {
		t.Errorf("v2 mean edge count %.1f, want %.1f ± %.1f", meanEdges, wantEdges, 5*sd)
	}

	// Churn: births ~ Binomial(dead, p), deaths ~ Binomial(alive, q); at
	// stationarity both means are pairs·pq/(p+q). Per-step samples are
	// nearly independent (each edge's flip depends on its own fresh
	// draws), so the standard error shrinks with √steps; stay
	// conservative with the per-sample deviation.
	wantChurn := pairs * p * q / (p + q)
	sdChurn := math.Sqrt(pairs * p * q / (p + q)) // ≈ √mean for small rates
	if got := bornSum / steps; math.Abs(got-wantChurn) > 5*sdChurn {
		t.Errorf("v2 mean births/step %.2f, want %.2f ± %.2f", got, wantChurn, 5*sdChurn)
	}
	if got := diedSum / steps; math.Abs(got-wantChurn) > 5*sdChurn {
		t.Errorf("v2 mean deaths/step %.2f, want %.2f ± %.2f", got, wantChurn, 5*sdChurn)
	}
}

// TestClassChainsDeterministic runs the class-chain sampler against the
// per-pair sweep on a DETERMINISTIC chain (a 3-cycle: every state moves to
// the next with probability 1). Both samplers then make the same moves
// regardless of their RNG streams, so the trajectories must agree exactly
// — an end-to-end check of the class bookkeeping (swap-remove, cpos,
// delta recording) with no statistical slack.
func TestClassChainsDeterministic(t *testing.T) {
	cycle := markov.MustChain([][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{1, 0, 0},
	})
	chi := []bool{false, true, true}
	init := []float64{1, 0, 0} // all pairs start in state 0, deterministically
	const n = 24

	sweep, err := edgemeg.NewGeneral(n, cycle, chi, init, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := edgemeg.NewGeneral(n, cycle, chi, init, rng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	fast.UseClassChains()

	var se, fe, fb, fd []dyngraph.Edge
	fdb := dyngraph.DeltaBatcher(fast)
	for step := 0; step < 12; step++ {
		se = dyngraph.AppendEdges(sweep, se[:0])
		fe = dyngraph.AppendEdges(fast, fe[:0])
		if len(se) != len(fe) {
			t.Fatalf("step %d: sweep has %d edges, class chains %d", step, len(se), len(fe))
		}
		for k := range se {
			if se[k] != fe[k] {
				t.Fatalf("step %d: edge %d differs: %v vs %v", step, k, se[k], fe[k])
			}
		}
		if sweep.EdgeCount() != fast.EdgeCount() {
			t.Fatalf("step %d: EdgeCount %d vs %d", step, sweep.EdgeCount(), fast.EdgeCount())
		}
		sweep.Step()
		fast.Step()
		// Deltas must describe the same flips (same set; order may differ,
		// but on a deterministic cycle both samplers visit in a canonical
		// order — compare counts and the post-step snapshot above).
		fb, fd = fdb.AppendDeltas(fb[:0], fd[:0])
		if bn, dn := deltaCounts(sweep), [2]int{len(fb), len(fd)}; bn != dn {
			t.Fatalf("step %d: sweep deltas %v, class chains %v", step, bn, dn)
		}
	}
}

func deltaCounts(g *edgemeg.General) [2]int {
	var b, d []dyngraph.Edge
	b, d = g.AppendDeltas(b, d)
	return [2]int{len(b), len(d)}
}

// TestStreamV2FourStateLaw checks the class-chain four-state model
// (edgemeg4 stream=v2) against its exact stationary mean edge count.
func TestStreamV2FourStateLaw(t *testing.T) {
	const n = 128
	spec := model.New("edgemeg4").WithInt("n", n).With("stream", "v2")
	d, err := model.Build(spec, 31)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := edgemeg.FourStateParams{
		N: n, WakeUp: 0.0024, Rebound: 0.3, Calm: 0.3,
		Drop: 0.4, Settle: 0.05, Detach: 0.2,
	}.Alpha()
	if err != nil {
		t.Fatal(err)
	}
	pairs := float64(n) * (n - 1) / 2
	const steps = 2000
	sum := 0.0
	for step := 0; step < steps; step++ {
		sum += float64(edgeCount(d))
		d.Step()
	}
	mean := sum / steps
	want := pairs * alpha
	if sd := math.Sqrt(pairs * alpha * (1 - alpha)); math.Abs(mean-want) > 5*sd {
		t.Errorf("v2 four-state mean edge count %.1f, want %.1f ± %.1f", mean, want, 5*sd)
	}
}
