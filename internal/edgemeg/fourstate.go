package edgemeg

import (
	"fmt"

	"repro/internal/markov"
	"repro/internal/rng"
)

// FourStateParams configures the four-state refinement of the edge-MEG
// model studied by Becchetti et al. [5] ("Information Spreading in
// Opportunistic Networks is Fast", arXiv:1107.5241), which the paper cites
// as a link-based model its generalized edge-MEG subsumes. Each edge cycles
// through
//
//	0: long-off  — dormant; wakes up slowly
//	1: short-off — brief gap inside a contact burst
//	2: short-on  — brief contact
//	3: long-on   — sustained contact
//
// capturing the bursty inter-contact statistics of opportunistic networks
// (power-law-ish bursts of short contacts separated by long quiet periods,
// cf. Karagiannis et al. [19]). States 2 and 3 mean "edge present".
type FourStateParams struct {
	N int
	// WakeUp is the long-off -> short-on rate (a new contact burst).
	WakeUp float64
	// Rebound is the short-off -> short-on rate (burst continues).
	Rebound float64
	// Calm is the short-off -> long-off rate (burst ends).
	Calm float64
	// Drop is the short-on -> short-off rate (contact gap).
	Drop float64
	// Settle is the short-on -> long-on rate (contact stabilizes).
	Settle float64
	// Detach is the long-on -> long-off rate (sustained contact ends).
	Detach float64
}

// Validate checks rates are probabilities and rows remain stochastic.
func (p FourStateParams) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("edgemeg: need at least 2 nodes, got %d", p.N)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"WakeUp", p.WakeUp}, {"Rebound", p.Rebound}, {"Calm", p.Calm},
		{"Drop", p.Drop}, {"Settle", p.Settle}, {"Detach", p.Detach},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("edgemeg: %s = %v out of [0,1]", r.name, r.v)
		}
	}
	if p.Rebound+p.Calm > 1 {
		return fmt.Errorf("edgemeg: Rebound+Calm = %v > 1", p.Rebound+p.Calm)
	}
	if p.Drop+p.Settle > 1 {
		return fmt.Errorf("edgemeg: Drop+Settle = %v > 1", p.Drop+p.Settle)
	}
	if p.WakeUp == 0 {
		return fmt.Errorf("edgemeg: WakeUp = 0 leaves long-off absorbing")
	}
	return nil
}

// Chain returns the per-edge four-state chain.
func (p FourStateParams) Chain() *markov.Chain {
	return markov.MustChain([][]float64{
		{1 - p.WakeUp, 0, p.WakeUp, 0},
		{p.Calm, 1 - p.Calm - p.Rebound, p.Rebound, 0},
		{0, p.Drop, 1 - p.Drop - p.Settle, p.Settle},
		{p.Detach, 0, 0, 1 - p.Detach},
	})
}

// Chi returns the presence map: the edge exists in the two "on" states.
func (p FourStateParams) Chi() []bool { return []bool{false, false, true, true} }

// Alpha returns the stationary probability that an edge is present.
func (p FourStateParams) Alpha() (float64, error) {
	return StationaryAlpha(p.Chain(), p.Chi())
}

// NewFourState builds the four-state edge-MEG in its stationary regime as
// a generalized edge-MEG.
func NewFourState(p FourStateParams, r *rng.RNG) (*General, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	chain := p.Chain()
	pi, err := chain.StationaryExact()
	if err != nil {
		return nil, fmt.Errorf("edgemeg: four-state stationary: %w", err)
	}
	return NewGeneral(p.N, chain, p.Chi(), pi, r)
}
