package edgemeg

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/rng"
)

// ParseInit maps the textual initial-distribution names used in model
// specs to Init values.
func ParseInit(text string) (Init, error) {
	switch text {
	case "stationary":
		return InitStationary, nil
	case "empty":
		return InitEmpty, nil
	case "full":
		return InitFull, nil
	}
	return 0, fmt.Errorf("edgemeg: unknown init %q (want stationary, empty, or full)", text)
}

// MixingChain returns the per-edge birth/death chain and its stationary
// law as a generic Markov chain.
func (p Params) MixingChain() (*markov.Sparse, []float64) {
	b := markov.NewSparseBuilder(2)
	if p.P > 0 {
		b.Set(0, 1, p.P)
	}
	if p.P < 1 {
		b.Set(0, 0, 1-p.P)
	}
	if p.Q > 0 {
		b.Set(1, 0, p.Q)
	}
	if p.Q < 1 {
		b.Set(1, 1, 1-p.Q)
	}
	alpha := p.Alpha()
	return b.MustBuild(), []float64{1 - alpha, alpha}
}

// MixingChain implements model.ChainAnalyzer.
func (s *Sparse) MixingChain() (*markov.Sparse, []float64) { return s.params.MixingChain() }

// MixingChain implements model.ChainAnalyzer.
func (d *Dense) MixingChain() (*markov.Sparse, []float64) { return d.params.MixingChain() }

func init() {
	model.Register(model.Definition{
		Name: "edgemeg",
		Help: "two-state edge-MEG: every potential edge follows an independent birth/death chain",
		Params: []model.Param{
			{Name: "n", Kind: model.Int, Default: "256", Help: "nodes"},
			{Name: "p", Kind: model.Float, Default: "0.004", Help: "edge birth rate (off -> on)"},
			{Name: "q", Kind: model.Float, Default: "0.096", Help: "edge death rate (on -> off)"},
			{Name: "init", Kind: model.String, Default: "stationary", Help: "initial law: stationary | empty | full"},
			{Name: "dense", Kind: model.Bool, Default: "false", Help: "use the dense O(n²)-per-step simulator"},
			{Name: "fastchurn", Kind: model.Bool, Default: "false", Help: "O(churn)-draw death sampler (same law, different RNG stream; sparse only)"},
			{Name: "stream", Kind: model.String, Default: "v1", Help: "RNG stream generation: v1 (pinned legacy draws) | v2 (O(churn) samplers on; same law)"},
		},
		Build: func(a model.Args, r *rng.RNG) (dyngraph.Dynamic, error) {
			params := Params{N: a.Int("n"), P: a.Float("p"), Q: a.Float("q")}
			if err := params.Validate(); err != nil {
				return nil, err
			}
			init, err := ParseInit(a.String("init"))
			if err != nil {
				return nil, err
			}
			fast, err := parseStream(a.String("stream"), a.Bool("fastchurn"))
			if err != nil {
				return nil, err
			}
			if a.Bool("dense") {
				if fast {
					return nil, fmt.Errorf("edgemeg: fastchurn/stream=v2 apply to the sparse simulator only")
				}
				return NewDense(params, init, r), nil
			}
			if fast {
				return NewSparseChurn(params, init, r), nil
			}
			return NewSparse(params, init, r), nil
		},
	})

	model.Register(model.Definition{
		Name: "edgemeg4",
		Help: "bursty four-state edge-MEG of Becchetti et al. [5] (contact bursts and quiet periods)",
		Params: []model.Param{
			{Name: "n", Kind: model.Int, Default: "256", Help: "nodes"},
			{Name: "wake", Kind: model.Float, Default: "0.0024", Help: "long-off -> short-on rate (new burst)"},
			{Name: "rebound", Kind: model.Float, Default: "0.3", Help: "short-off -> short-on rate (burst continues)"},
			{Name: "calm", Kind: model.Float, Default: "0.3", Help: "short-off -> long-off rate (burst ends)"},
			{Name: "drop", Kind: model.Float, Default: "0.4", Help: "short-on -> short-off rate (contact gap)"},
			{Name: "settle", Kind: model.Float, Default: "0.05", Help: "short-on -> long-on rate (contact stabilizes)"},
			{Name: "detach", Kind: model.Float, Default: "0.2", Help: "long-on -> long-off rate (contact ends)"},
			{Name: "stream", Kind: model.String, Default: "v1", Help: "RNG stream generation: v1 (pinned per-pair sweep) | v2 (per-state-class O(churn) sampler; same law)"},
		},
		Build: func(a model.Args, r *rng.RNG) (dyngraph.Dynamic, error) {
			g, err := NewFourState(FourStateParams{
				N:       a.Int("n"),
				WakeUp:  a.Float("wake"),
				Rebound: a.Float("rebound"),
				Calm:    a.Float("calm"),
				Drop:    a.Float("drop"),
				Settle:  a.Float("settle"),
				Detach:  a.Float("detach"),
			}, r)
			if err != nil {
				return nil, err
			}
			fast, err := parseStream(a.String("stream"), false)
			if err != nil {
				return nil, err
			}
			if fast {
				g.UseClassChains()
			}
			return g, nil
		},
	})
}

// parseStream resolves the stream spec param against the legacy fastchurn
// flag: v1 keeps the pinned RNG draws (unless fastchurn opts into the
// sparse fast sampler explicitly, as before), v2 turns the O(churn)
// samplers on. Unset specs parse as v1, so every pre-existing spec string
// — and every fixed-seed pin over one — is untouched.
func parseStream(stream string, fastchurn bool) (fast bool, err error) {
	switch stream {
	case "v1":
		return fastchurn, nil
	case "v2":
		return true, nil
	}
	return false, fmt.Errorf("edgemeg: unknown stream %q (want v1 or v2)", stream)
}
