package edgemeg

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/markov"
	"repro/internal/rng"
)

// General is the paper's generalized edge-MEG EM(n, M, χ) (Appendix A):
// every potential edge independently follows an arbitrary hidden Markov
// chain M over states S, and the edge is present exactly when χ(state) is
// true. The basic two-state model is the special case S = {off, on},
// χ = identity.
//
// Because edges are independent, the β-independence condition of Theorem 1
// always holds with β = 1, and the flooding bound reduces to
// O(Tmix (1/(nα) + 1)² log² n) with α the stationary probability of
// {χ(s) = 1}.
type General struct {
	n       int
	chain   *markov.Chain
	sampler *markov.Sampler
	chi     []bool
	r       *rng.RNG
	states  []int32 // per pair, pairRank order
	pairs   int64
	adj     [][]int32
	// adjLive reports that adj mirrors the presence map. It flips true on
	// the first neighbor access (the lazy build) and stays true: Step then
	// maintains the lists in place, each sorted ascending by neighbor id —
	// exactly the order a full rank-order rebuild produces — at O(degree)
	// per presence flip. Batch and delta consumers never force the build.
	adjLive bool
	// born and died record the edges whose presence flipped in the most
	// recent Step, backing dyngraph.DeltaBatcher; buffers are reused.
	born, died []dyngraph.Edge
	// cc is the per-state-class fast sampler (stream=v2), nil under the
	// default per-pair sweep; see UseClassChains.
	cc *classChains
}

// NewGeneral builds a generalized edge-MEG with each edge's initial state
// drawn independently from init (a distribution over the chain's states).
// Pass the chain's stationary distribution to start the MEG stationary.
func NewGeneral(n int, chain *markov.Chain, chi []bool, init []float64, r *rng.RNG) (*General, error) {
	if n < 2 {
		return nil, fmt.Errorf("edgemeg: need at least 2 nodes, got %d", n)
	}
	if len(chi) != chain.N() {
		return nil, fmt.Errorf("edgemeg: chi has %d entries, chain has %d states", len(chi), chain.N())
	}
	if len(init) != chain.N() {
		return nil, fmt.Errorf("edgemeg: init has %d entries, chain has %d states", len(init), chain.N())
	}
	pairs := pairCount(n)
	g := &General{
		n:       n,
		chain:   chain,
		sampler: markov.NewSampler(chain),
		chi:     append([]bool(nil), chi...),
		r:       r,
		states:  make([]int32, pairs),
		pairs:   pairs,
		adj:     make([][]int32, n),
	}
	initAlias := rng.NewAlias(init)
	for i := range g.states {
		g.states[i] = int32(initAlias.Sample(r))
	}
	return g, nil
}

// StationaryAlpha returns the stationary probability that an edge exists:
// Σ_{s: χ(s)} π(s), computed from the chain's exact stationary law.
func StationaryAlpha(chain *markov.Chain, chi []bool) (float64, error) {
	pi, err := chain.StationaryExact()
	if err != nil {
		return 0, fmt.Errorf("edgemeg: stationary alpha: %w", err)
	}
	alpha := 0.0
	for s, on := range chi {
		if on {
			alpha += pi[s]
		}
	}
	return alpha, nil
}

// N implements dyngraph.Dynamic.
func (g *General) N() int { return g.n }

// Step implements dyngraph.Dynamic: every edge's hidden state advances one
// step of M independently. The sweep tracks the pair coordinates alongside
// the rank, recording each presence flip as a delta edge and mirroring it
// into the live adjacency.
func (g *General) Step() {
	if g.cc != nil {
		g.stepClasses()
		return
	}
	g.born, g.died = g.born[:0], g.died[:0]
	rank := int64(0)
	for u := 0; u < g.n-1; u++ {
		for v := u + 1; v < g.n; v++ {
			old := g.states[rank]
			next := int32(g.sampler.Next(int(old), g.r))
			g.states[rank] = next
			if was, is := g.chi[old], g.chi[next]; is != was {
				if is {
					g.born = append(g.born, dyngraph.Edge{U: int32(u), V: int32(v)})
					if g.adjLive {
						g.adjInsort(u, int32(v))
						g.adjInsort(v, int32(u))
					}
				} else {
					g.died = append(g.died, dyngraph.Edge{U: int32(u), V: int32(v)})
					if g.adjLive {
						g.adjDelete(u, int32(v))
						g.adjDelete(v, int32(u))
					}
				}
			}
			rank++
		}
	}
}

// adjInsort inserts neighbor v into adj[u], keeping the list sorted
// ascending — the order a full rank-order rebuild produces.
func (g *General) adjInsort(u int, v int32) {
	l := append(g.adj[u], v)
	k := len(l) - 1
	for k > 0 && l[k-1] > v {
		l[k] = l[k-1]
		k--
	}
	l[k] = v
	g.adj[u] = l
}

// adjDelete removes neighbor v from adj[u], preserving order.
func (g *General) adjDelete(u int, v int32) {
	l := g.adj[u]
	for k, w := range l {
		if w == v {
			g.adj[u] = append(l[:k], l[k+1:]...)
			return
		}
	}
	panic("edgemeg: adjacency out of sync (missing neighbor)")
}

// rebuildAdj materializes the per-node neighbor lists by one rank-order
// scan, each list coming out sorted ascending by neighbor id. It runs at
// most once per simulator — the lazy build on the first neighbor access;
// from then on Step maintains the lists incrementally in the same order.
func (g *General) rebuildAdj() {
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	for rank := int64(0); rank < g.pairs; rank++ {
		if g.chi[g.states[rank]] {
			u, v := pairFromRank(rank, g.n)
			g.adj[u] = append(g.adj[u], int32(v))
			g.adj[v] = append(g.adj[v], int32(u))
		}
	}
	g.adjLive = true
}

// ForEachNeighbor implements dyngraph.Dynamic.
func (g *General) ForEachNeighbor(i int, fn func(j int)) {
	if !g.adjLive {
		g.rebuildAdj()
	}
	for _, j := range g.adj[i] {
		fn(int(j))
	}
}

// AppendEdges implements dyngraph.Batcher by scanning the per-pair state
// vector once in rank order, tracking the pair coordinates incrementally
// instead of inverting each rank.
func (g *General) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	rank := int64(0)
	for u := 0; u < g.n-1; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.chi[g.states[rank]] {
				dst = append(dst, dyngraph.Edge{U: int32(u), V: int32(v)})
			}
			rank++
		}
	}
	return dst
}

// AppendNeighbors implements dyngraph.NeighborLister.
func (g *General) AppendNeighbors(i int, dst []int32) []int32 {
	if !g.adjLive {
		g.rebuildAdj()
	}
	return append(dst, g.adj[i]...)
}

// AppendDeltas implements dyngraph.DeltaBatcher, serving the presence
// flips the last Step recorded.
func (g *General) AppendDeltas(born, died []dyngraph.Edge) (b, d []dyngraph.Edge) {
	return append(born, g.born...), append(died, g.died...)
}

// HasEdge reports whether {i, j} currently exists.
func (g *General) HasEdge(i, j int) bool {
	if i == j {
		return false
	}
	return g.chi[g.states[pairRank(i, j, g.n)]]
}

// EdgeCount returns the current number of edges.
func (g *General) EdgeCount() int {
	total := 0
	for rank := int64(0); rank < g.pairs; rank++ {
		if g.chi[g.states[rank]] {
			total++
		}
	}
	return total
}
