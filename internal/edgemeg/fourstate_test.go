package edgemeg

import (
	"math"
	"testing"

	"repro/internal/flood"
	"repro/internal/rng"
	"repro/internal/stats"
)

func validFourState(n int) FourStateParams {
	return FourStateParams{
		N:       n,
		WakeUp:  0.02, // bursts start rarely
		Rebound: 0.5,  // bursts continue eagerly
		Calm:    0.2,
		Drop:    0.3,
		Settle:  0.1,
		Detach:  0.05,
	}
}

func TestFourStateValidate(t *testing.T) {
	if err := validFourState(10).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := validFourState(10)
	bad.N = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("n=1 accepted")
	}
	bad = validFourState(10)
	bad.Rebound, bad.Calm = 0.7, 0.7
	if err := bad.Validate(); err == nil {
		t.Fatal("overfull row accepted")
	}
	bad = validFourState(10)
	bad.WakeUp = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("absorbing long-off accepted")
	}
	bad = validFourState(10)
	bad.Drop = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestFourStateChainStochastic(t *testing.T) {
	p := validFourState(10)
	c := p.Chain()
	for i := 0; i < 4; i++ {
		sum := 0.0
		for j := 0; j < 4; j++ {
			sum += c.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestFourStateAlphaMatchesSimulation(t *testing.T) {
	p := validFourState(25)
	alpha, err := p.Alpha()
	if err != nil {
		t.Fatal(err)
	}
	if alpha <= 0 || alpha >= 1 {
		t.Fatalf("alpha = %v", alpha)
	}
	g, err := NewFourState(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var o stats.Online
	for step := 0; step < 600; step++ {
		o.Add(float64(g.EdgeCount()) / float64(pairCount(25)))
		g.Step()
	}
	if math.Abs(o.Mean()-alpha) > 0.15*alpha+0.01 {
		t.Fatalf("simulated density %v, stationary alpha %v", o.Mean(), alpha)
	}
}

func TestFourStateOffDurationsOverdispersed(t *testing.T) {
	// The defining feature versus the two-state chain: a two-state chain's
	// off-durations are geometric (variance ≈ μ²−μ for mean μ), while the
	// four-state chain's two off timescales (long-off vs short-off) make
	// off-durations overdispersed — the bursty inter-contact statistics of
	// [5, 19]. Measure the off-run length distribution on one edge.
	p := validFourState(2)
	chain := p.Chain()
	pi, _ := chain.StationaryExact()
	r := rng.New(7)
	state := rng.NewAlias(pi).Sample(r)
	isOn := func(s int) bool { return s >= 2 }

	var runs []float64
	runLen := 0
	const steps = 400000
	for i := 0; i < steps; i++ {
		state = sampleRow(chain.Row(state), r)
		if isOn(state) {
			if runLen > 0 {
				runs = append(runs, float64(runLen))
				runLen = 0
			}
		} else {
			runLen++
		}
	}
	s := stats.Summarize(runs)
	if s.N < 1000 {
		t.Fatalf("too few off-runs observed: %d", s.N)
	}
	// Geometric (support 1, 2, ...) with mean μ has variance μ² − μ.
	geomVar := s.Mean*s.Mean - s.Mean
	if s.Var < 1.5*geomVar {
		t.Fatalf("off-durations not overdispersed: var %v vs geometric %v (mean %v)",
			s.Var, geomVar, s.Mean)
	}
}

func sampleRow(row []float64, r *rng.RNG) int {
	u := r.Float64()
	acc := 0.0
	for j, p := range row {
		acc += p
		if u < acc {
			return j
		}
	}
	return len(row) - 1
}

func TestFourStateFloodingCompletes(t *testing.T) {
	p := validFourState(60)
	g, err := NewFourState(p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	res := flood.Run(g, 0, flood.Opts{MaxSteps: 50000})
	if !res.Completed {
		t.Fatal("four-state edge-MEG flooding did not complete")
	}
}
