package edgemeg

import (
	"math"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// The incremental adjacency maintenance must be invisible: a simulator
// whose neighbor lists went live early (and were then maintained in place
// across hundreds of steps of churn) must expose neighbor sequences
// byte-identical to a same-seed simulator that rebuilds lazily at the
// checkpoint. Neighbor ORDER matters, not just set equality — pull,
// push–pull and random-walk draws index into these lists, so any order
// drift would silently change fixed-seed trajectories.

// neighborMatrix snapshots every node's AppendNeighbors output.
func neighborMatrix(d dyngraph.Dynamic, n int) [][]int32 {
	out := make([][]int32, n)
	for i := 0; i < n; i++ {
		out[i] = dyngraph.AppendNeighbors(d, i, nil)
	}
	return out
}

func matricesEqual(a, b [][]int32) (int, bool) {
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return i, false
			}
		}
	}
	return 0, true
}

func testIncrementalMatchesRebuild(t *testing.T, build func(seed uint64) dyngraph.Dynamic, n int) {
	t.Helper()
	const steps = 220
	for _, seed := range []uint64{1, 7, 1234} {
		live := build(seed)
		neighborMatrix(live, n) // force the adjacency live at t = 0
		fresh := func(upto int) dyngraph.Dynamic {
			d := build(seed)
			for s := 0; s < upto; s++ {
				d.Step() // never accessed: adjacency stays unbuilt
			}
			return d
		}
		checkpoints := map[int]bool{1: true, 2: true, 13: true, 100: true, steps: true}
		for s := 1; s <= steps; s++ {
			live.Step()
			got := neighborMatrix(live, n) // maintained incrementally
			if !checkpoints[s] {
				continue
			}
			want := neighborMatrix(fresh(s), n) // built by one lazy rebuild
			if node, ok := matricesEqual(got, want); !ok {
				t.Fatalf("seed %d step %d node %d: incremental %v != rebuilt %v",
					seed, s, node, got[node], want[node])
			}
		}
	}
}

func TestSparseIncrementalAdjacencyMatchesRebuild(t *testing.T) {
	const n = 48
	testIncrementalMatchesRebuild(t, func(seed uint64) dyngraph.Dynamic {
		return NewSparse(Params{N: n, P: 0.02, Q: 0.2}, InitStationary, rng.New(seed))
	}, n)
}

func TestSparseChurnIncrementalAdjacencyMatchesRebuild(t *testing.T) {
	const n = 48
	testIncrementalMatchesRebuild(t, func(seed uint64) dyngraph.Dynamic {
		return NewSparseChurn(Params{N: n, P: 0.02, Q: 0.2}, InitStationary, rng.New(seed))
	}, n)
}

// TestSparseChurnMatchesSweepMoments pins the fastchurn death sampler to
// the sweep sampler's law: time-averaged edge counts and their Binomial
// fluctuations agree (the geometric-skipping deaths are the same
// product-Bernoulli(q) law consumed through fewer draws), and the extreme
// rates behave exactly.
func TestSparseChurnMatchesSweepMoments(t *testing.T) {
	params := Params{N: 40, P: 0.02, Q: 0.08} // alpha = 0.2
	sweep := NewSparse(params, InitStationary, rng.New(11))
	churn := NewSparseChurn(params, InitStationary, rng.New(13))
	var mSweep, mChurn, deaths, alive float64
	const steps = 600
	for step := 0; step < steps; step++ {
		mSweep += float64(sweep.EdgeCount())
		before := churn.EdgeCount()
		mChurn += float64(before)
		churn.Step()
		sweep.Step()
		_, died := churn.AppendDeltas(nil, nil)
		deaths += float64(len(died))
		alive += float64(before)
	}
	want := params.Alpha() * float64(pairCount(40))
	for name, mean := range map[string]float64{"sweep": mSweep / steps, "fastchurn": mChurn / steps} {
		if math.Abs(mean-want) > 0.08*want {
			t.Fatalf("%s mean edges %v, want ~%v", name, mean, want)
		}
	}
	// Per-step deaths average q per alive edge.
	if got, want := deaths/alive, params.Q; math.Abs(got-want) > 0.15*want {
		t.Fatalf("fastchurn death rate %v, want ~%v", got, want)
	}

	// Extremes: q = 1 kills every edge in one step; q = 0 kills none
	// (starting full, no pair is dead before the step, so no births
	// interfere in either case).
	all := NewSparseChurn(Params{N: 20, P: 0.01, Q: 1}, InitFull, rng.New(3))
	all.Step()
	if all.EdgeCount() != 0 {
		t.Fatalf("q=1 fastchurn left %d edges alive", all.EdgeCount())
	}
	none := NewSparseChurn(Params{N: 20, P: 0.01, Q: 0}, InitFull, rng.New(3))
	none.Step()
	if got, want := none.EdgeCount(), int(pairCount(20)); got != want {
		t.Fatalf("q=0 fastchurn killed edges: %d alive, want %d", got, want)
	}
}

func TestGeneralIncrementalAdjacencyMatchesRebuild(t *testing.T) {
	const n = 32
	testIncrementalMatchesRebuild(t, func(seed uint64) dyngraph.Dynamic {
		g, err := NewFourState(FourStateParams{
			N: n, WakeUp: 0.05, Rebound: 0.3, Calm: 0.3,
			Drop: 0.4, Settle: 0.05, Detach: 0.2,
		}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}, n)
}

// TestSparseDeltasMatchSnapshots pins AppendDeltas against brute-force
// snapshot diffs: born = cur \ prev, died = prev \ cur, disjoint, and
// empty before the first Step.
func TestSparseDeltasMatchSnapshots(t *testing.T) {
	for _, dense := range []bool{false, true} {
		params := Params{N: 40, P: 0.03, Q: 0.25}
		var d dyngraph.Dynamic
		if dense {
			d = NewDense(params, InitStationary, rng.New(9))
		} else {
			d = NewSparse(params, InitStationary, rng.New(9))
		}
		db := d.(dyngraph.DeltaBatcher)
		if born, died := db.AppendDeltas(nil, nil); len(born)+len(died) != 0 {
			t.Fatalf("dense=%v: nonzero deltas before the first Step: +%v -%v", dense, born, died)
		}
		prev := edgeSet(dyngraph.AppendEdges(d, nil))
		for s := 0; s < 150; s++ {
			d.Step()
			cur := edgeSet(dyngraph.AppendEdges(d, nil))
			born, died := db.AppendDeltas(nil, nil)
			// Idempotent between steps.
			born2, died2 := db.AppendDeltas(nil, nil)
			if len(born2) != len(born) || len(died2) != len(died) {
				t.Fatalf("dense=%v step %d: AppendDeltas not idempotent", dense, s)
			}
			seen := map[dyngraph.Edge]bool{}
			for _, e := range born {
				if seen[e] || prev[e] || !cur[e] {
					t.Fatalf("dense=%v step %d: bad born edge %v", dense, s, e)
				}
				seen[e] = true
			}
			for _, e := range died {
				if seen[e] || !prev[e] || cur[e] {
					t.Fatalf("dense=%v step %d: bad died edge %v", dense, s, e)
				}
				seen[e] = true
			}
			// Completeness: |prev Δ cur| == |born| + |died|.
			diff := 0
			for e := range prev {
				if !cur[e] {
					diff++
				}
			}
			for e := range cur {
				if !prev[e] {
					diff++
				}
			}
			if diff != len(born)+len(died) {
				t.Fatalf("dense=%v step %d: %d churned edges, deltas report %d",
					dense, s, diff, len(born)+len(died))
			}
			prev = cur
		}
	}
}

func edgeSet(edges []dyngraph.Edge) map[dyngraph.Edge]bool {
	m := make(map[dyngraph.Edge]bool, len(edges))
	for _, e := range edges {
		m[e] = true
	}
	return m
}
