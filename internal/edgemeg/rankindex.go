package edgemeg

import "math/bits"

// rankIndex is an open-addressing hash index from pair ranks (int64) to
// small integers (int32) — the million-node replacement for the
// map[int64]int that used to back Sparse.pos. A Go map costs ~50 B per
// entry (bucket headers, tophash bytes, padding) and allocates on insert;
// this table costs exactly 12 B per slot (8 B key + 4 B value) at a
// bounded load factor, and a warm table performs insert, delete, and
// lookup with zero heap traffic — which is what lets the sparse model
// step stay alloc-free under churn.
//
// Layout: power-of-two slot count, linear probing, and tombstone-free
// deletion by backward shifting (Knuth 6.4 algorithm R): deleting a key
// re-slots the probe chain behind it instead of leaving a tombstone, so
// the table never degrades under the insert/delete churn of a long
// simulation and lookups stay O(1 / (1 - load)).
//
// Keys are pair ranks, always >= 0; slots store rank+1 so the zero word
// means "empty" and clearing is one memclr. The zero rankIndex is an
// empty, ready-to-use table.
type rankIndex struct {
	keys []int64 // rank+1; 0 = empty slot
	vals []int32
	mask uint64 // len(keys) - 1; len is a power of two
	size int
}

// hashRank scatters a rank over the table (murmur3 finalizer: full
// avalanche, so the low bits taken by the mask are well mixed).
func hashRank(rank int64) uint64 {
	z := uint64(rank)
	z ^= z >> 33
	z *= 0xff51afd7ed558ccd
	z ^= z >> 33
	z *= 0xc4ceb9fe1a85ec53
	z ^= z >> 33
	return z
}

// Len returns the number of stored keys.
func (ri *rankIndex) Len() int { return ri.size }

// Bytes returns the heap bytes retained by the table.
func (ri *rankIndex) Bytes() int64 { return int64(cap(ri.keys))*8 + int64(cap(ri.vals))*4 }

// Get returns the value stored under rank.
func (ri *rankIndex) Get(rank int64) (int32, bool) {
	if ri.size == 0 {
		return 0, false
	}
	k := rank + 1
	for i := hashRank(rank) & ri.mask; ; i = (i + 1) & ri.mask {
		switch ri.keys[i] {
		case k:
			return ri.vals[i], true
		case 0:
			return 0, false
		}
	}
}

// Has reports whether rank is present.
func (ri *rankIndex) Has(rank int64) bool {
	_, ok := ri.Get(rank)
	return ok
}

// Put stores value under rank, replacing any previous value.
func (ri *rankIndex) Put(rank int64, value int32) {
	// Grow at 3/4 load: linear probing stays O(1) expected and the table
	// never fills (the probe loops below rely on at least one empty slot).
	if 4*(ri.size+1) > 3*len(ri.keys) {
		ri.grow()
	}
	k := rank + 1
	for i := hashRank(rank) & ri.mask; ; i = (i + 1) & ri.mask {
		switch ri.keys[i] {
		case k:
			ri.vals[i] = value
			return
		case 0:
			ri.keys[i] = k
			ri.vals[i] = value
			ri.size++
			return
		}
	}
}

// Delete removes rank, reporting whether it was present. The probe chain
// behind the vacated slot is shifted back (no tombstones), preserving the
// invariant that every key is reachable from its home slot by a
// contiguous run of occupied slots.
func (ri *rankIndex) Delete(rank int64) bool {
	if ri.size == 0 {
		return false
	}
	k := rank + 1
	i := hashRank(rank) & ri.mask
	for {
		switch ri.keys[i] {
		case k:
			goto found
		case 0:
			return false
		}
		i = (i + 1) & ri.mask
	}
found:
	// Backward-shift deletion: walk the chain after i; any entry whose
	// home slot does not lie in the cyclic interval (i, j] would become
	// unreachable with slot i empty, so move it into i and continue from
	// its old slot.
	for {
		ri.keys[i] = 0
		j := i
		for {
			j = (j + 1) & ri.mask
			kj := ri.keys[j]
			if kj == 0 {
				ri.size--
				return true
			}
			home := hashRank(kj-1) & ri.mask
			// "home in cyclic (i, j]" means the entry is still reachable
			// with i empty; otherwise relocate it into i.
			if cyclicBetween(i, home, j) {
				continue
			}
			ri.keys[i] = kj
			ri.vals[i] = ri.vals[j]
			i = j
			break
		}
	}
}

// cyclicBetween reports whether home lies in the half-open cyclic
// interval (i, j] of table slots.
func cyclicBetween(i, home, j uint64) bool {
	if i < j {
		return home > i && home <= j
	}
	return home > i || home <= j
}

// Clear empties the table, keeping its capacity. Cost is one memclr over
// the slots, so tables sized to their content (the per-step exclude set)
// clear in time proportional to what they held.
func (ri *rankIndex) Clear() {
	clear(ri.keys)
	ri.size = 0
}

// Reserve grows the table so that n keys fit without rehashing.
func (ri *rankIndex) Reserve(n int) {
	need := nextPow2(n*4/3 + 1)
	if need > len(ri.keys) {
		ri.rehash(need)
	}
}

// grow doubles the slot count (from a small floor) and rehashes.
func (ri *rankIndex) grow() {
	n := 2 * len(ri.keys)
	if n < 16 {
		n = 16
	}
	ri.rehash(n)
}

// rehash re-slots every key into a table of n slots (a power of two).
func (ri *rankIndex) rehash(n int) {
	oldKeys, oldVals := ri.keys, ri.vals
	ri.keys = make([]int64, n)
	ri.vals = make([]int32, n)
	ri.mask = uint64(n - 1)
	for s, k := range oldKeys {
		if k == 0 {
			continue
		}
		for i := hashRank(k-1) & ri.mask; ; i = (i + 1) & ri.mask {
			if ri.keys[i] == 0 {
				ri.keys[i] = k
				ri.vals[i] = oldVals[s]
				break
			}
		}
	}
}

// AppendKeys appends every stored rank to dst in unspecified order — the
// test/fuzz iteration hook, not a hot-path call.
func (ri *rankIndex) AppendKeys(dst []int64) []int64 {
	for _, k := range ri.keys {
		if k != 0 {
			dst = append(dst, k-1)
		}
	}
	return dst
}

// nextPow2 returns the smallest power of two >= n (and >= 16).
func nextPow2(n int) int {
	if n < 16 {
		return 16
	}
	return 1 << bits.Len(uint(n-1))
}
