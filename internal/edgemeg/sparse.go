package edgemeg

import (
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// Sparse is the exact O(alive + births)-per-step simulator of the two-state
// edge-MEG, for the sparse regimes the paper cares about (stationary average
// degree O(polylog n)). Its per-step transition law is identical to Dense:
//
//   - every alive edge dies independently with probability q;
//   - the number of births is Binomial(#dead, p) and the born edges are a
//     uniform subset of the dead pairs — exactly the law of independent
//     per-dead-pair Bernoulli(p) births.
//
// Alive edges are stored in an insertion-ordered slice with a position
// index, so the random-number stream is consumed in a deterministic order
// and runs are reproducible per seed (Go map iteration order would not be).
//
// The simulator knows exactly which ranks flip each step, so it exposes
// the churn through dyngraph.DeltaBatcher, and its per-node adjacency is
// never rebuilt from scratch after its first construction: once a neighbor
// consumer forces the lists into existence they are maintained in place —
// O(degree) per changed edge — in an order provably identical to a full
// rebuild, so order-sensitive consumers (pull's and push–pull's random
// draws, random walks) see byte-identical neighbor sequences per seed.
// Consumers that only read batches or deltas never pay for adjacency at
// all.
type Sparse struct {
	params Params
	r      *rng.RNG
	edges  []int64 // alive edge ranks, arbitrary but deterministic order
	// pos maps rank -> index in edges. It is an open-addressed table
	// (12 B/slot at <= 3/4 load) rather than a Go map (~50 B/entry),
	// which is most of what makes n = 10^6 fit in memory; warm
	// insert/delete/lookup touch no heap, so steps stay alloc-free.
	pos rankIndex
	// excl is the reusable per-step exclude set of sampleNewEdges (the
	// ranks that died this step); rebuilding a map here used to be the
	// only per-step allocation left in Step.
	excl rankIndex
	adj  [][]adjEntry // per-node neighbor lists, nil until rebuildAdj; see adjLive
	// adjLive reports that adj mirrors the alive set. It flips true on the
	// first neighbor access (the lazy build) and stays true: insert/remove
	// then maintain the lists incrementally, sorted by the incident edge's
	// position in edges — exactly the order rebuildAdj produces.
	adjLive bool
	// born and died record the ranks that flipped in the most recent Step,
	// backing AppendDeltas; buffers are reused across steps.
	born, died []int64
	// fastChurn selects the O(churn)-draw death sampler (geometric
	// skipping over the alive slice) instead of the per-edge Bernoulli
	// sweep. Same transition law, different RNG stream; see NewSparseChurn.
	fastChurn bool
}

// adjEntry is one neighbor-list slot: the neighbor plus the incident
// edge's current position in the alive slice. Carrying the position in
// the entry keeps incremental maintenance free of pos-map lookups — the
// relocation compare after a swap-remove is a plain integer read.
// Positions index the alive slice (not pair ranks), so int32 spans any
// realistic alive set.
type adjEntry struct {
	nbr int32
	pos int32
}

// NewSparse builds a sparse simulator with the given initial distribution.
func NewSparse(params Params, init Init, r *rng.RNG) *Sparse {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	s := &Sparse{
		params: params,
		r:      r,
	}
	pairs := pairCount(params.N)
	switch init {
	case InitEmpty:
		// empty
	case InitFull:
		for rank := int64(0); rank < pairs; rank++ {
			s.insert(rank)
		}
	case InitStationary:
		// Sample Binomial(pairs, alpha) edges uniformly without
		// replacement — the exact product-Bernoulli law.
		k := binomialInt64(pairs, params.Alpha(), r)
		s.pos.Reserve(int(k))
		s.sampleNewEdges(k, nil)
	default:
		panic("edgemeg: unknown Init")
	}
	s.born = s.born[:0] // initial edges are the base snapshot, not churn
	return s
}

// NewSparseChurn builds a sparse simulator whose whole Step costs
// O(churn): deaths are sampled by geometric skipping over the alive slice
// — each alive edge still dies independently with probability q (gaps
// between successes of a Bernoulli(q) sequence are iid Geometric(q), the
// same device binomialInt64 uses for births) — instead of the per-edge
// Bernoulli sweep, whose O(alive) draws dominate the step once delta
// consumers stop paying for snapshot scans. The trajectory law is
// identical to NewSparse; the random-number STREAM is not, so fixed-seed
// runs differ (same distribution). Every stream-compatibility pin
// therefore stays on NewSparse, which remains the default; this variant
// is opt-in (spec param fastchurn) for large-scale work where the sweep
// is the bottleneck.
func NewSparseChurn(params Params, init Init, r *rng.RNG) *Sparse {
	s := NewSparse(params, init, r)
	s.fastChurn = true
	return s
}

// insert adds rank to the alive set (at the maximal position) and records
// it as born; it must not already be present.
func (s *Sparse) insert(rank int64) {
	p := len(s.edges)
	if p > maxAlive {
		panic("edgemeg: alive set exceeds int32 positions")
	}
	s.pos.Put(rank, int32(p))
	s.edges = append(s.edges, rank)
	s.born = append(s.born, rank)
	if s.adjLive {
		// The new edge holds the maximal position, so appending keeps both
		// endpoint lists sorted by edge position.
		u, v := pairFromRank(rank, s.params.N)
		s.adj[u] = append(s.adj[u], adjEntry{nbr: int32(v), pos: int32(p)})
		s.adj[v] = append(s.adj[v], adjEntry{nbr: int32(u), pos: int32(p)})
	}
}

// remove deletes rank from the alive set by swap-with-last, mirroring the
// change into the live adjacency so the lists stay exactly what a full
// rebuild from the post-removal edge slice would produce.
func (s *Sparse) remove(rank int64) {
	pi, ok := s.pos.Get(rank)
	if !ok {
		panic("edgemeg: remove of a dead rank")
	}
	i := int(pi)
	last := len(s.edges) - 1
	moved := s.edges[last]
	s.edges[i] = moved
	s.pos.Put(moved, int32(i))
	s.edges = s.edges[:last]
	s.pos.Delete(rank)
	if s.adjLive {
		n := s.params.N
		u, v := pairFromRank(rank, n)
		s.adjDelete(u, int32(v))
		s.adjDelete(v, int32(u))
		if moved != rank {
			// The swapped edge's position dropped from the maximum to i, so
			// its entries — currently last in both endpoint lists — must
			// move to the slot that keeps the lists position-sorted.
			mu, mv := pairFromRank(moved, n)
			s.adjRelocateLast(mu, int32(mv), i)
			s.adjRelocateLast(mv, int32(mu), i)
		}
	}
}

// adjDelete removes neighbor v from adj[u], preserving the order of the
// remaining entries.
func (s *Sparse) adjDelete(u int, v int32) {
	l := s.adj[u]
	for k := range l {
		if l[k].nbr == v {
			s.adj[u] = append(l[:k], l[k+1:]...)
			return
		}
	}
	panic("edgemeg: adjacency out of sync (missing neighbor)")
}

// adjRelocateLast moves adj[u]'s final entry (neighbor v, whose incident
// edge just moved to position newPos in the alive slice) to the slot that
// keeps adj[u] sorted by edge position. The stored positions make the
// compare a plain integer read — no pos-map lookups on this hot path.
func (s *Sparse) adjRelocateLast(u int, v int32, newPos int) {
	l := s.adj[u]
	k := len(l) - 1 // v's current slot
	for k > 0 && l[k-1].pos > int32(newPos) {
		l[k] = l[k-1]
		k--
	}
	l[k] = adjEntry{nbr: v, pos: int32(newPos)}
}

// binomialInt64 samples Binomial(n, p) for potentially huge n via geometric
// skipping (exact; expected cost O(np)).
func binomialInt64(n int64, p float64, r *rng.RNG) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	var k, i int64
	i = int64(r.Geometric(p))
	for i < n {
		k++
		i += 1 + int64(r.Geometric(p))
	}
	return k
}

// sampleNewEdges inserts k uniformly random currently-dead pairs into the
// alive set. exclude optionally holds ranks that must also be avoided (the
// pairs that died this step: births apply to pre-step dead pairs only).
// The rejection draws are identical to the historical map-backed version,
// so the RNG stream — and every fixed-seed pin — is unchanged.
func (s *Sparse) sampleNewEdges(k int64, exclude *rankIndex) {
	pairs := pairCount(s.params.N)
	for added := int64(0); added < k; {
		rank := int64(s.r.Uint64n(uint64(pairs)))
		if s.pos.Has(rank) {
			continue
		}
		if exclude != nil && exclude.Has(rank) {
			continue
		}
		s.insert(rank)
		added++
	}
}

// N implements dyngraph.Dynamic.
func (s *Sparse) N() int { return s.params.N }

// Step implements dyngraph.Dynamic.
func (s *Sparse) Step() {
	p, q := s.params.P, s.params.Q
	pairs := pairCount(s.params.N)
	aliveBefore := int64(len(s.edges))
	s.born, s.died = s.born[:0], s.died[:0]

	// Deaths: collect in deterministic order, then remove. The default
	// sweep draws one Bernoulli per alive edge (the stream-compatible
	// path); fastChurn draws one Geometric per death instead — identical
	// law over the died set, O(churn) draws.
	if q > 0 {
		if s.fastChurn {
			for i := int64(s.r.Geometric(q)); i < int64(len(s.edges)); i += 1 + int64(s.r.Geometric(q)) {
				s.died = append(s.died, s.edges[i])
			}
		} else {
			for _, rank := range s.edges {
				if s.r.Bool(q) {
					s.died = append(s.died, rank)
				}
			}
		}
		for _, rank := range s.died {
			s.remove(rank)
		}
	}

	// Births apply to pairs dead *before* the step: skip both the
	// surviving alive set and the just-died ranks. insert records them
	// into s.born.
	if p > 0 {
		dead := pairs - aliveBefore
		births := binomialInt64(dead, p, s.r)
		var exclude *rankIndex
		if len(s.died) > 0 && births > 0 {
			// Reuse the scratch-held exclude table: clearing and refilling
			// it is O(churn) with no heap traffic once its capacity covers
			// the step's deaths — warm steps allocate nothing.
			s.excl.Clear()
			s.excl.Reserve(len(s.died))
			for _, rank := range s.died {
				s.excl.Put(rank, 0)
			}
			exclude = &s.excl
		}
		s.sampleNewEdges(births, exclude)
	}
}

// rebuildAdj materializes the per-node neighbor lists from the alive
// slice. It runs at most once per simulator — the lazy build on the first
// neighbor access; from then on insert/remove keep the lists current, in
// this same order (each list sorted by the incident edge's position), at
// O(degree) per changed edge instead of O(alive) per step.
func (s *Sparse) rebuildAdj() {
	n := s.params.N
	if s.adj == nil {
		// Allocated here, not in NewSparse: delta and batch consumers
		// never touch per-node lists, and at n = 10^6 even the empty
		// slice headers are 24 MB.
		s.adj = make([][]adjEntry, n)
	}
	for i := range s.adj {
		s.adj[i] = s.adj[i][:0]
	}
	for p, rank := range s.edges {
		u, v := pairFromRank(rank, n)
		s.adj[u] = append(s.adj[u], adjEntry{nbr: int32(v), pos: int32(p)})
		s.adj[v] = append(s.adj[v], adjEntry{nbr: int32(u), pos: int32(p)})
	}
	s.adjLive = true
}

// ForEachNeighbor implements dyngraph.Dynamic.
func (s *Sparse) ForEachNeighbor(i int, fn func(j int)) {
	if !s.adjLive {
		s.rebuildAdj()
	}
	for _, e := range s.adj[i] {
		fn(int(e.nbr))
	}
}

// AppendEdges implements dyngraph.Batcher: the alive-edge list IS the
// snapshot, so the batch view decodes each rank once and never touches the
// per-node adjacency lists (which batch consumers then never force us to
// rebuild).
func (s *Sparse) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	n := s.params.N
	for _, rank := range s.edges {
		u, v := pairFromRank(rank, n)
		dst = append(dst, dyngraph.Edge{U: int32(u), V: int32(v)})
	}
	return dst
}

// AppendNeighbors implements dyngraph.NeighborLister.
func (s *Sparse) AppendNeighbors(i int, dst []int32) []int32 {
	if !s.adjLive {
		s.rebuildAdj()
	}
	for _, e := range s.adj[i] {
		dst = append(dst, e.nbr)
	}
	return dst
}

// AppendDeltas implements dyngraph.DeltaBatcher: the Markov step already
// knows exactly which ranks flipped, so the churn batches cost one rank
// decode per changed edge — no snapshot rescans.
func (s *Sparse) AppendDeltas(born, died []dyngraph.Edge) (b, d []dyngraph.Edge) {
	n := s.params.N
	for _, rank := range s.born {
		u, v := pairFromRank(rank, n)
		born = append(born, dyngraph.Edge{U: int32(u), V: int32(v)})
	}
	for _, rank := range s.died {
		u, v := pairFromRank(rank, n)
		died = append(died, dyngraph.Edge{U: int32(u), V: int32(v)})
	}
	return born, died
}

// HasEdge reports whether {i, j} is currently alive.
func (s *Sparse) HasEdge(i, j int) bool {
	if i == j {
		return false
	}
	return s.pos.Has(pairRank(i, j, s.params.N))
}

// EdgeCount returns the current number of alive edges.
func (s *Sparse) EdgeCount() int { return len(s.edges) }

// Bytes returns the heap bytes retained by the simulator's state — the
// alive slice, the rank index, the exclude scratch, the churn buffers,
// and the per-node adjacency when a neighbor consumer has forced it. It
// is the model side of the resident-footprint accounting that gates the
// million-node engine.
func (s *Sparse) Bytes() int64 {
	b := int64(cap(s.edges))*8 + s.pos.Bytes() + s.excl.Bytes()
	b += int64(cap(s.born))*8 + int64(cap(s.died))*8
	if s.adj != nil {
		b += int64(cap(s.adj)) * 24
		for _, l := range s.adj {
			b += int64(cap(l)) * 8
		}
	}
	return b
}

// maxAlive bounds the alive-slice positions the rank index and the
// adjacency entries store as int32.
const maxAlive = 1<<31 - 2
