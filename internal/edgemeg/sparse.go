package edgemeg

import (
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// Sparse is the exact O(alive + births)-per-step simulator of the two-state
// edge-MEG, for the sparse regimes the paper cares about (stationary average
// degree O(polylog n)). Its per-step transition law is identical to Dense:
//
//   - every alive edge dies independently with probability q;
//   - the number of births is Binomial(#dead, p) and the born edges are a
//     uniform subset of the dead pairs — exactly the law of independent
//     per-dead-pair Bernoulli(p) births.
//
// Alive edges are stored in an insertion-ordered slice with a position
// index, so the random-number stream is consumed in a deterministic order
// and runs are reproducible per seed (Go map iteration order would not be).
type Sparse struct {
	params Params
	r      *rng.RNG
	edges  []int64       // alive edge ranks, arbitrary but deterministic order
	pos    map[int64]int // rank -> index in edges
	adj    [][]int32     // current adjacency lists, rebuilt on change
	dirty  bool
}

// NewSparse builds a sparse simulator with the given initial distribution.
func NewSparse(params Params, init Init, r *rng.RNG) *Sparse {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	s := &Sparse{
		params: params,
		r:      r,
		pos:    make(map[int64]int),
		adj:    make([][]int32, params.N),
		dirty:  true,
	}
	pairs := pairCount(params.N)
	switch init {
	case InitEmpty:
		// empty
	case InitFull:
		for rank := int64(0); rank < pairs; rank++ {
			s.insert(rank)
		}
	case InitStationary:
		// Sample Binomial(pairs, alpha) edges uniformly without
		// replacement — the exact product-Bernoulli law.
		k := binomialInt64(pairs, params.Alpha(), r)
		s.sampleNewEdges(k, nil)
	default:
		panic("edgemeg: unknown Init")
	}
	return s
}

// insert adds rank to the alive set; it must not already be present.
func (s *Sparse) insert(rank int64) {
	s.pos[rank] = len(s.edges)
	s.edges = append(s.edges, rank)
}

// remove deletes rank from the alive set by swap-with-last.
func (s *Sparse) remove(rank int64) {
	i := s.pos[rank]
	last := len(s.edges) - 1
	moved := s.edges[last]
	s.edges[i] = moved
	s.pos[moved] = i
	s.edges = s.edges[:last]
	delete(s.pos, rank)
}

// binomialInt64 samples Binomial(n, p) for potentially huge n via geometric
// skipping (exact; expected cost O(np)).
func binomialInt64(n int64, p float64, r *rng.RNG) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	var k, i int64
	i = int64(r.Geometric(p))
	for i < n {
		k++
		i += 1 + int64(r.Geometric(p))
	}
	return k
}

// sampleNewEdges inserts k uniformly random currently-dead pairs into the
// alive set. exclude optionally holds ranks that must also be avoided (the
// pairs that died this step: births apply to pre-step dead pairs only).
func (s *Sparse) sampleNewEdges(k int64, exclude map[int64]struct{}) {
	pairs := pairCount(s.params.N)
	for added := int64(0); added < k; {
		rank := int64(s.r.Uint64n(uint64(pairs)))
		if _, isAlive := s.pos[rank]; isAlive {
			continue
		}
		if exclude != nil {
			if _, was := exclude[rank]; was {
				continue
			}
		}
		s.insert(rank)
		added++
	}
}

// N implements dyngraph.Dynamic.
func (s *Sparse) N() int { return s.params.N }

// Step implements dyngraph.Dynamic.
func (s *Sparse) Step() {
	p, q := s.params.P, s.params.Q
	pairs := pairCount(s.params.N)
	aliveBefore := int64(len(s.edges))

	// Deaths: sweep the slice in deterministic order; collect then remove.
	var died []int64
	if q > 0 {
		for _, rank := range s.edges {
			if s.r.Bool(q) {
				died = append(died, rank)
			}
		}
		for _, rank := range died {
			s.remove(rank)
		}
	}

	// Births apply to pairs dead *before* the step: skip both the
	// surviving alive set and the just-died ranks.
	if p > 0 {
		dead := pairs - aliveBefore
		births := binomialInt64(dead, p, s.r)
		var exclude map[int64]struct{}
		if len(died) > 0 && births > 0 {
			exclude = make(map[int64]struct{}, len(died))
			for _, rank := range died {
				exclude[rank] = struct{}{}
			}
		}
		s.sampleNewEdges(births, exclude)
	}
	s.dirty = true
}

func (s *Sparse) rebuildAdj() {
	for i := range s.adj {
		s.adj[i] = s.adj[i][:0]
	}
	n := s.params.N
	for _, rank := range s.edges {
		u, v := pairFromRank(rank, n)
		s.adj[u] = append(s.adj[u], int32(v))
		s.adj[v] = append(s.adj[v], int32(u))
	}
	s.dirty = false
}

// ForEachNeighbor implements dyngraph.Dynamic.
func (s *Sparse) ForEachNeighbor(i int, fn func(j int)) {
	if s.dirty {
		s.rebuildAdj()
	}
	for _, j := range s.adj[i] {
		fn(int(j))
	}
}

// AppendEdges implements dyngraph.Batcher: the alive-edge list IS the
// snapshot, so the batch view decodes each rank once and never touches the
// per-node adjacency lists (which batch consumers then never force us to
// rebuild).
func (s *Sparse) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	n := s.params.N
	for _, rank := range s.edges {
		u, v := pairFromRank(rank, n)
		dst = append(dst, dyngraph.Edge{U: int32(u), V: int32(v)})
	}
	return dst
}

// AppendNeighbors implements dyngraph.NeighborLister.
func (s *Sparse) AppendNeighbors(i int, dst []int32) []int32 {
	if s.dirty {
		s.rebuildAdj()
	}
	return append(dst, s.adj[i]...)
}

// HasEdge reports whether {i, j} is currently alive.
func (s *Sparse) HasEdge(i, j int) bool {
	if i == j {
		return false
	}
	_, ok := s.pos[pairRank(i, j, s.params.N)]
	return ok
}

// EdgeCount returns the current number of alive edges.
func (s *Sparse) EdgeCount() int { return len(s.edges) }
