// Package edgemeg implements edge-Markovian evolving graphs: the two-state
// birth/death model of [Clementi–Macci–Monti–Pasquale–Silvestri, PODC 2008]
// that Appendix A of the paper benchmarks against, and the paper's
// generalized edge-MEG EM(n, M, χ) in which every edge follows an arbitrary
// hidden Markov chain.
//
// Two exact simulators are provided for the two-state model: a dense one
// (per-pair Bernoulli flips, any parameters, O(n²) per step) and a sparse
// one (alive-edge list plus binomial birth sampling, O(alive + births) per
// step) whose distribution over trajectories is identical — this is
// property-tested. The sparse simulator handles the paper's interesting
// regime, sparse stationary graphs with n·α = O(1), at n up to 10⁵.
package edgemeg

import (
	"fmt"
	"math"

	"repro/internal/markov"
)

// Params defines a two-state edge-MEG: every one of the n(n-1)/2 potential
// edges independently follows the birth/death chain with birth rate P and
// death rate Q.
type Params struct {
	N int     // number of nodes
	P float64 // edge birth rate: off -> on
	Q float64 // edge death rate: on -> off
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("edgemeg: need at least 2 nodes, got %d", p.N)
	}
	return markov.TwoState{P: p.P, Q: p.Q}.Validate()
}

// Chain returns the per-edge two-state chain.
func (p Params) Chain() markov.TwoState { return markov.TwoState{P: p.P, Q: p.Q} }

// Alpha returns the stationary edge probability p/(p+q) — the density
// parameter α of the Theorem 1 instantiation in Appendix A.
func (p Params) Alpha() float64 { return p.Chain().StationaryOn() }

// MixingTime returns the per-edge chain's mixing time at threshold eps.
// Because edges are independent, Appendix A uses Θ(1/(p+q)) for the whole
// graph process; see core.EdgeMEGBound for the resulting flooding bound.
func (p Params) MixingTime(eps float64) int { return p.Chain().MixingTime(eps) }

// ExpectedDegree returns (n-1)·α, the stationary expected degree.
func (p Params) ExpectedDegree() float64 { return float64(p.N-1) * p.Alpha() }

// Init selects the initial edge distribution of a simulator.
type Init int

const (
	// InitStationary samples each edge independently from the stationary
	// law (on with probability α). This realizes the paper's stationary
	// MEG assumption from time zero.
	InitStationary Init = iota
	// InitEmpty starts with no edges — the worst case for the Density
	// condition until the process mixes.
	InitEmpty
	// InitFull starts with all edges present.
	InitFull
)

// String implements fmt.Stringer.
func (in Init) String() string {
	switch in {
	case InitStationary:
		return "stationary"
	case InitEmpty:
		return "empty"
	case InitFull:
		return "full"
	default:
		return fmt.Sprintf("Init(%d)", int(in))
	}
}

// pairCount returns n(n-1)/2.
func pairCount(n int) int64 { return int64(n) * int64(n-1) / 2 }

// pairRank maps an unordered pair {u, v} with u < v to its rank in the
// ordering (0,1),(0,2),...,(0,n-1),(1,2),...
func pairRank(u, v, n int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)*int64(n) - int64(u)*int64(u+1)/2 + int64(v-u-1)
}

// rowStart returns the rank of pair (u, u+1), the first pair of row u.
func rowStart(u, n int) int64 {
	return int64(u)*int64(n) - int64(u)*int64(u+1)/2
}

// pairFromRank inverts pairRank in O(1): a closed-form estimate of the row
// from the quadratic rank formula, corrected by at most a couple of steps
// for floating-point error. Batch snapshot enumeration calls it once per
// alive edge, so constant time matters.
func pairFromRank(rank int64, n int) (int, int) {
	nf := float64(n) - 0.5
	disc := nf*nf - 2*float64(rank)
	if disc < 0 {
		disc = 0
	}
	u := int(nf - math.Sqrt(disc))
	if u < 0 {
		u = 0
	}
	if u > n-2 {
		u = n - 2
	}
	for u > 0 && rowStart(u, n) > rank {
		u--
	}
	for u < n-2 && rowStart(u+1, n) <= rank {
		u++
	}
	return u, u + 1 + int(rank-rowStart(u, n))
}
