package edgemeg

// Allocation pins on the MODEL step itself, extending the engine-side
// zero-alloc contract (flood's alloc_test) to the simulator: once the rank
// index, the exclude scratch, and the churn buffers have reached their
// high-water capacities, a sparse edge-MEG step touches the heap only when
// a buffer genuinely grows — which a warmed stationary run never does.

import (
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// assertStepsZeroAlloc warms the simulator, then measures Step. Runs are
// deterministic per seed, so the pin cannot flake: either the warm-up
// reaches every buffer's high water for this stream or it does not.
func assertStepsZeroAlloc(t *testing.T, name string, s *Sparse) {
	t.Helper()
	for i := 0; i < 500; i++ {
		s.Step()
	}
	if allocs := testing.AllocsPerRun(100, s.Step); allocs != 0 {
		t.Errorf("%s: %.2f allocs per warm step, want 0", name, allocs)
	}
}

func TestSparseStepZeroAlloc(t *testing.T) {
	p := Params{N: 4096, P: 0.0000049, Q: 0.01}
	assertStepsZeroAlloc(t, "sparse v1 step",
		NewSparse(p, InitStationary, rng.New(11)))
}

func TestSparseChurnStepZeroAlloc(t *testing.T) {
	p := Params{N: 4096, P: 0.0000049, Q: 0.01}
	assertStepsZeroAlloc(t, "sparse fastchurn step",
		NewSparseChurn(p, InitStationary, rng.New(11)))
}

// The delta view rides on the same buffers: model step + AppendDeltas is
// the per-step work a delta consumer (the incremental flood engine) pays.
func TestSparseStepAndDeltasZeroAlloc(t *testing.T) {
	p := Params{N: 4096, P: 0.0000049, Q: 0.01}
	s := NewSparseChurn(p, InitStationary, rng.New(11))
	for i := 0; i < 500; i++ {
		s.Step()
	}
	var bb, db []dyngraph.Edge
	run := func() {
		s.Step()
		bb, db = s.AppendDeltas(bb[:0], db[:0])
	}
	run()
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("step+deltas: %.2f allocs per warm step, want 0", allocs)
	}
}
