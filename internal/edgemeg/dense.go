package edgemeg

import (
	"math/bits"

	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// Dense is the exact O(n²)-per-step simulator of the two-state edge-MEG.
// It stores one bit per potential edge and flips each independently every
// step. Use it for moderate n or dense parameter regimes; prefer Sparse
// when the stationary graph is sparse.
type Dense struct {
	params Params
	r      *rng.RNG
	bits   []uint64 // one bit per pair, pairRank order
	pairs  int64
	// born and died record the edges that flipped in the most recent Step,
	// backing dyngraph.DeltaBatcher; buffers are reused across steps.
	born, died []dyngraph.Edge
}

// NewDense builds a dense simulator with the given initial distribution.
// It panics on invalid parameters (validated construction is the caller's
// job in library code paths; see Params.Validate).
func NewDense(params Params, init Init, r *rng.RNG) *Dense {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	pairs := pairCount(params.N)
	d := &Dense{
		params: params,
		r:      r,
		bits:   make([]uint64, (pairs+63)/64),
		pairs:  pairs,
	}
	switch init {
	case InitEmpty:
		// zero value
	case InitFull:
		for rank := int64(0); rank < pairs; rank++ {
			d.set(rank, true)
		}
	case InitStationary:
		alpha := params.Alpha()
		for rank := int64(0); rank < pairs; rank++ {
			if r.Bool(alpha) {
				d.set(rank, true)
			}
		}
	default:
		panic("edgemeg: unknown Init")
	}
	return d
}

func (d *Dense) get(rank int64) bool {
	return d.bits[rank>>6]&(1<<(uint(rank)&63)) != 0
}

func (d *Dense) set(rank int64, on bool) {
	if on {
		d.bits[rank>>6] |= 1 << (uint(rank) & 63)
	} else {
		d.bits[rank>>6] &^= 1 << (uint(rank) & 63)
	}
}

// N implements dyngraph.Dynamic.
func (d *Dense) N() int { return d.params.N }

// Step implements dyngraph.Dynamic: every edge flips according to its
// two-state chain, independently. The sweep tracks the pair coordinates
// alongside the rank, so each flip is recorded as a ready-made delta edge
// without a rank inversion.
func (d *Dense) Step() {
	p, q := d.params.P, d.params.Q
	d.born, d.died = d.born[:0], d.died[:0]
	n := d.params.N
	rank := int64(0)
	for u := 0; u < n-1; u++ {
		for v := u + 1; v < n; v++ {
			if d.get(rank) {
				if d.r.Bool(q) {
					d.set(rank, false)
					d.died = append(d.died, dyngraph.Edge{U: int32(u), V: int32(v)})
				}
			} else {
				if d.r.Bool(p) {
					d.set(rank, true)
					d.born = append(d.born, dyngraph.Edge{U: int32(u), V: int32(v)})
				}
			}
			rank++
		}
	}
}

// ForEachNeighbor implements dyngraph.Dynamic by scanning the i-th row of
// the pair matrix.
func (d *Dense) ForEachNeighbor(i int, fn func(j int)) {
	n := d.params.N
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		if d.get(pairRank(i, j, n)) {
			fn(j)
		}
	}
}

// AppendEdges implements dyngraph.Batcher by scanning the bitset one word
// at a time and decoding only the set bits.
func (d *Dense) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	n := d.params.N
	for w, word := range d.bits {
		base := int64(w) << 6
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &= word - 1
			u, v := pairFromRank(base+int64(bit), n)
			dst = append(dst, dyngraph.Edge{U: int32(u), V: int32(v)})
		}
	}
	return dst
}

// AppendNeighbors implements dyngraph.NeighborLister.
func (d *Dense) AppendNeighbors(i int, dst []int32) []int32 {
	n := d.params.N
	for j := 0; j < n; j++ {
		if j != i && d.get(pairRank(i, j, n)) {
			dst = append(dst, int32(j))
		}
	}
	return dst
}

// AppendDeltas implements dyngraph.DeltaBatcher, serving the flips the
// last Step recorded.
func (d *Dense) AppendDeltas(born, died []dyngraph.Edge) (b, dd []dyngraph.Edge) {
	return append(born, d.born...), append(died, d.died...)
}

// HasEdge reports whether {i, j} is currently on.
func (d *Dense) HasEdge(i, j int) bool {
	if i == j {
		return false
	}
	return d.get(pairRank(i, j, d.params.N))
}

// EdgeCount returns the current number of on edges.
func (d *Dense) EdgeCount() int {
	total := 0
	for rank := int64(0); rank < d.pairs; rank++ {
		if d.get(rank) {
			total++
		}
	}
	return total
}
