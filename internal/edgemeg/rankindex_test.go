package edgemeg

// The open-addressed rank index is exercised against a plain map reference
// under interleaved insert/delete/lookup churn: the backshift deletion is
// the one subtle piece (a wrong cyclic-interval test silently strands keys
// mid-chain), so both the fuzz harness and the deterministic test compare
// the full key set, not just the operations' return values.

import (
	"slices"
	"testing"

	"repro/internal/rng"
)

// applyRankOps drives idx and ref through the same operation stream and
// fails on any divergence. Keys are folded into a small range so chains
// collide and deletions regularly hit mid-chain entries.
func applyRankOps(t *testing.T, data []byte, keySpace int64) {
	t.Helper()
	var idx rankIndex
	ref := make(map[int64]int32)
	for i := 0; i+1 < len(data); i += 2 {
		op, kb := data[i], data[i+1]
		key := int64(kb) % keySpace
		switch op % 4 {
		case 0, 1: // insert/overwrite
			val := int32(op) + int32(i)
			idx.Put(key, val)
			ref[key] = val
		case 2: // delete
			got := idx.Delete(key)
			_, want := ref[key]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, key, got, want)
			}
			delete(ref, key)
		case 3: // lookup
			gv, gok := idx.Get(key)
			wv, wok := ref[key]
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Get(%d) = (%d, %v), want (%d, %v)", i, key, gv, gok, wv, wok)
			}
		}
		if idx.Len() != len(ref) {
			t.Fatalf("op %d: Len() = %d, want %d", i, idx.Len(), len(ref))
		}
	}
	// Full-state comparison: iteration must surface exactly the reference
	// key set, and every key must still resolve from its home slot.
	keys := idx.AppendKeys(nil)
	if len(keys) != len(ref) {
		t.Fatalf("AppendKeys returned %d keys, want %d", len(keys), len(ref))
	}
	slices.Sort(keys)
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			t.Fatalf("AppendKeys returned duplicate key %d", keys[i])
		}
	}
	for k, v := range ref {
		if gv, ok := idx.Get(k); !ok || gv != v {
			t.Fatalf("final: Get(%d) = (%d, %v), want (%d, true)", k, gv, ok, v)
		}
	}
}

func FuzzRankIndex(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 3, 1})
	f.Add([]byte{0, 0, 0, 16, 0, 32, 2, 16, 3, 0, 3, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		applyRankOps(t, data, 64)
	})
}

// TestRankIndexChurn runs a long random insert/delete/lookup workload —
// the shape a sparse MEG step produces — at sizes that force several
// rehashes, against the map reference.
func TestRankIndexChurn(t *testing.T) {
	r := rng.New(7)
	var idx rankIndex
	ref := make(map[int64]int32)
	live := make([]int64, 0, 4096)
	for step := 0; step < 200_000; step++ {
		switch {
		case len(live) == 0 || r.Float64() < 0.55:
			key := int64(r.Uint64n(1 << 40))
			if _, dup := ref[key]; dup {
				continue
			}
			idx.Put(key, int32(step))
			ref[key] = int32(step)
			live = append(live, key)
		default:
			i := r.Intn(len(live))
			key := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !idx.Delete(key) {
				t.Fatalf("step %d: Delete(%d) lost a live key", step, key)
			}
			delete(ref, key)
		}
		if step%1000 == 0 {
			probe := int64(r.Uint64n(1 << 40))
			gv, gok := idx.Get(probe)
			wv, wok := ref[probe]
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("step %d: Get(%d) = (%d, %v), want (%d, %v)", step, probe, gv, gok, wv, wok)
			}
		}
	}
	if idx.Len() != len(ref) {
		t.Fatalf("final Len() = %d, want %d", idx.Len(), len(ref))
	}
	for k, v := range ref {
		if gv, ok := idx.Get(k); !ok || gv != v {
			t.Fatalf("final: Get(%d) = (%d, %v), want (%d, true)", k, gv, ok, v)
		}
	}
}

// TestRankIndexClearReserve pins the scratch-table contract sampleNewEdges
// relies on: Clear empties without shrinking, and a cleared+reserved table
// re-fills with no rehash-induced surprises.
func TestRankIndexClearReserve(t *testing.T) {
	var idx rankIndex
	idx.Reserve(100)
	capBefore := cap(idx.keys)
	if capBefore < 100 {
		t.Fatalf("Reserve(100) left capacity %d", capBefore)
	}
	for i := int64(0); i < 100; i++ {
		idx.Put(i*3, int32(i))
	}
	if cap(idx.keys) != capBefore {
		t.Fatalf("reserved table rehashed: cap %d -> %d", capBefore, cap(idx.keys))
	}
	idx.Clear()
	if idx.Len() != 0 || cap(idx.keys) != capBefore {
		t.Fatalf("Clear: Len %d cap %d, want 0 and %d", idx.Len(), cap(idx.keys), capBefore)
	}
	for i := int64(0); i < 50; i++ {
		if idx.Has(i * 3) {
			t.Fatalf("cleared table still has %d", i*3)
		}
	}
}
