package markov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randomChain builds a random dense ergodic chain for property tests.
func randomChain(n int, r *rng.RNG) *Chain {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		sum := 0.0
		for j := range rows[i] {
			v := r.Float64() + 0.01 // strictly positive: irreducible, aperiodic
			rows[i][j] = v
			sum += v
		}
		for j := range rows[i] {
			rows[i][j] /= sum
		}
	}
	return MustChain(rows)
}

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := NewChain([][]float64{{0.5, 0.4}}); err == nil {
		t.Fatal("ragged chain accepted")
	}
	if _, err := NewChain([][]float64{{0.5, 0.4}, {0.5, 0.5}}); err == nil {
		t.Fatal("non-stochastic row accepted")
	}
	if _, err := NewChain([][]float64{{1.5, -0.5}, {0.5, 0.5}}); err == nil {
		t.Fatal("negative entry accepted")
	}
	c, err := NewChain([][]float64{{0.3, 0.7}, {0.6, 0.4}})
	if err != nil || c.N() != 2 || c.At(0, 1) != 0.7 {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestEvolveDistPreservesMass(t *testing.T) {
	r := rng.New(3)
	f := func(nRaw uint8) bool {
		n := int(nRaw%8) + 2
		c := randomChain(n, r)
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = r.Float64()
		}
		total := 0.0
		for _, d := range dist {
			total += d
		}
		for i := range dist {
			dist[i] /= total
		}
		out := c.EvolveDist(dist)
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMulMatchesTwoSteps(t *testing.T) {
	r := rng.New(5)
	c := randomChain(4, r)
	c2 := c.Mul(c)
	dist := []float64{1, 0, 0, 0}
	viaMatrix := Identity(4).Mul(c2).EvolveDist(dist)
	viaSteps := c.EvolveDist(c.EvolveDist(dist))
	for i := range viaMatrix {
		if !almostEq(viaMatrix[i], viaSteps[i], 1e-12) {
			t.Fatalf("two-step mismatch at %d: %v vs %v", i, viaMatrix[i], viaSteps[i])
		}
	}
}

func TestPowerMatchesRepeatedMul(t *testing.T) {
	r := rng.New(7)
	c := randomChain(3, r)
	p5 := c.Power(5)
	manual := c.Copy()
	for i := 0; i < 4; i++ {
		manual = manual.Mul(c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(p5.At(i, j), manual.At(i, j), 1e-12) {
				t.Fatalf("Power(5) mismatch at (%d,%d)", i, j)
			}
		}
	}
	id := c.Power(0)
	if id.At(0, 0) != 1 || id.At(0, 1) != 0 {
		t.Fatal("Power(0) is not identity")
	}
}

func TestPowerRowStochasticProperty(t *testing.T) {
	r := rng.New(9)
	f := func(tRaw uint8) bool {
		c := randomChain(5, r)
		p := c.Power(int(tRaw%20) + 1)
		for i := 0; i < 5; i++ {
			sum := 0.0
			for j := 0; j < 5; j++ {
				v := p.At(i, j)
				if v < -1e-12 {
					return false
				}
				sum += v
			}
			if !almostEq(sum, 1, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyPreservesStationary(t *testing.T) {
	r := rng.New(11)
	c := randomChain(4, r)
	pi, err := c.StationaryExact()
	if err != nil {
		t.Fatal(err)
	}
	lazyPi, err := c.Lazy().StationaryExact()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if !almostEq(pi[i], lazyPi[i], 1e-9) {
			t.Fatalf("lazy stationary differs at %d: %v vs %v", i, pi[i], lazyPi[i])
		}
	}
}

func TestStationaryExactFixedPoint(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%6
		c := randomChain(n, r)
		pi, err := c.StationaryExact()
		if err != nil {
			t.Fatal(err)
		}
		evolved := c.EvolveDist(pi)
		if tv := tvDist(pi, evolved); tv > 1e-10 {
			t.Fatalf("stationary not fixed: TV = %v", tv)
		}
	}
}

func TestStationaryPowerMatchesExact(t *testing.T) {
	r := rng.New(17)
	c := randomChain(6, r)
	exact, err := c.StationaryExact()
	if err != nil {
		t.Fatal(err)
	}
	iter, err := c.StationaryPower(1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if tv := tvDist(exact, iter); tv > 1e-8 {
		t.Fatalf("power vs exact TV = %v", tv)
	}
}

func TestStationaryKnownChain(t *testing.T) {
	// Birth/death 2-state chain has closed-form stationary distribution.
	c := MustChain([][]float64{{0.9, 0.1}, {0.3, 0.7}})
	pi, err := c.StationaryExact()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(pi[0], 0.75, 1e-12) || !almostEq(pi[1], 0.25, 1e-12) {
		t.Fatalf("pi = %v, want [0.75 0.25]", pi)
	}
}

func TestIsReversible(t *testing.T) {
	// Symmetric chains are reversible w.r.t. uniform.
	c := MustChain([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	if !c.IsReversible([]float64{0.5, 0.5}, 1e-12) {
		t.Fatal("symmetric chain should be reversible")
	}
	// A 3-cycle with asymmetric rotation is not reversible.
	rot := MustChain([][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
	if rot.IsReversible([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 1e-12) {
		t.Fatal("rotation chain should not be reversible")
	}
}

func TestSamplerFrequencies(t *testing.T) {
	c := MustChain([][]float64{{0.2, 0.8}, {0.5, 0.5}})
	s := NewSampler(c)
	r := rng.New(19)
	const trials = 100000
	ones := 0
	for i := 0; i < trials; i++ {
		if s.Next(0, r) == 1 {
			ones++
		}
	}
	got := float64(ones) / trials
	if math.Abs(got-0.8) > 0.01 {
		t.Fatalf("sampled P(0->1) = %v, want 0.8", got)
	}
	if s.N() != 2 {
		t.Fatal("Sampler.N wrong")
	}
}

func TestSamplerLongRunMatchesStationary(t *testing.T) {
	r := rng.New(23)
	c := randomChain(5, r)
	pi, err := c.StationaryExact()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(c)
	state := 0
	counts := make([]float64, 5)
	const steps = 400000
	for i := 0; i < steps; i++ {
		state = s.Next(state, r)
		counts[state]++
	}
	for i := range counts {
		counts[i] /= steps
	}
	if tv := tvDist(counts, pi); tv > 0.01 {
		t.Fatalf("empirical occupancy TV to stationary = %v", tv)
	}
}
