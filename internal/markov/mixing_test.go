package markov

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestWorstTVZeroAtStationarity(t *testing.T) {
	// The uniform chain is exactly mixed after one step.
	c := UniformChain(4)
	pi, _ := c.StationaryExact()
	if tv := WorstTV(c, pi); tv > 1e-12 {
		t.Fatalf("uniform chain worst TV = %v", tv)
	}
}

func TestMixingTimeUniformChain(t *testing.T) {
	c := UniformChain(8)
	mt, err := c.MixingTime(DefaultMixingEps, 100)
	if err != nil {
		t.Fatal(err)
	}
	if mt != 1 {
		t.Fatalf("uniform chain mixing time = %d, want 1", mt)
	}
}

func TestMixingTimeMatchesTwoStateClosedForm(t *testing.T) {
	for _, ts := range []TwoState{
		{P: 0.1, Q: 0.2},
		{P: 0.02, Q: 0.05},
		{P: 0.5, Q: 0.5},
	} {
		c := ts.Chain()
		mt, err := c.MixingTime(DefaultMixingEps, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		want := ts.MixingTime(DefaultMixingEps)
		if mt != want {
			t.Errorf("TwoState{%v,%v}: matrix mixing %d, closed form %d", ts.P, ts.Q, mt, want)
		}
	}
}

func TestMixingTimeMonotoneInEps(t *testing.T) {
	ts := TwoState{P: 0.03, Q: 0.07}
	c := ts.Chain()
	coarse, err := c.MixingTime(0.25, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := c.MixingTime(0.01, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if fine <= coarse {
		t.Fatalf("finer eps should take longer: %d vs %d", fine, coarse)
	}
}

func TestMixingTimeErrorsWhenCapped(t *testing.T) {
	ts := TwoState{P: 1e-6, Q: 1e-6}
	if _, err := ts.Chain().MixingTime(0.01, 10); err == nil {
		t.Fatal("expected cap error for slow chain")
	}
}

func TestTVProfileDecreases(t *testing.T) {
	ts := TwoState{P: 0.1, Q: 0.15}
	c := ts.Chain()
	pi, _ := c.StationaryExact()
	prof := c.TVProfile(pi, 50)
	for i := 1; i < len(prof); i++ {
		if prof[i] > prof[i-1]+1e-12 {
			t.Fatalf("TV profile increased at %d: %v > %v", i, prof[i], prof[i-1])
		}
	}
	// Matches the closed form.
	for i, tv := range prof {
		want := ts.TVAt(i + 1)
		if !almostEq(tv, want, 1e-9) {
			t.Fatalf("profile[%d] = %v, closed form %v", i, tv, want)
		}
	}
}

func TestSparseTVFromStartMatchesDense(t *testing.T) {
	g := graph.Cycle(8)
	sp := LazyRandomWalkChain(g, 0.5)
	dense := sp.Dense()
	pi, err := dense.StationaryExact()
	if err != nil {
		t.Fatal(err)
	}
	prof := sp.TVFromStart(0, pi, 30)
	// Evolve dense dist manually for comparison.
	dist := make([]float64, 8)
	dist[0] = 1
	for i := 0; i < 30; i++ {
		dist = dense.EvolveDist(dist)
		if !almostEq(prof[i], tvDist(dist, pi), 1e-12) {
			t.Fatalf("sparse profile diverges at t=%d", i+1)
		}
	}
}

func TestMixingTimeFromStart(t *testing.T) {
	g := graph.Cycle(16)
	sp := LazyRandomWalkChain(g, 0.5)
	pi := WalkStationary(g)
	mt, err := sp.MixingTimeFromStart(0, pi, DefaultMixingEps, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle mixing time is Θ(n²); for n=16 expect tens of steps.
	if mt < 10 || mt > 1000 {
		t.Fatalf("cycle-16 mixing time = %d, implausible", mt)
	}
	if _, err := sp.MixingTimeFromStart(0, pi, 0.001, 3); err == nil {
		t.Fatal("expected cap error")
	}
}

func TestMixingTimeScalesWithCycleLength(t *testing.T) {
	mix := func(n int) int {
		g := graph.Cycle(n)
		sp := LazyRandomWalkChain(g, 0.5)
		mt, err := sp.MixingTimeFromStart(0, WalkStationary(g), DefaultMixingEps, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return mt
	}
	m16, m32 := mix(16), mix(32)
	ratio := float64(m32) / float64(m16)
	// Θ(n²) scaling: doubling n should roughly quadruple the mixing time.
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("cycle mixing scaling ratio = %v, want ~4", ratio)
	}
}

func TestSpectralGapTwoState(t *testing.T) {
	ts := TwoState{P: 0.1, Q: 0.3}
	c := ts.Chain()
	pi, _ := c.StationaryExact()
	gap, slem := c.SpectralGapReversible(pi, 200)
	if !almostEq(slem, math.Abs(ts.SecondEigenvalue()), 1e-6) {
		t.Fatalf("SLEM = %v, want %v", slem, math.Abs(ts.SecondEigenvalue()))
	}
	if !almostEq(gap, 1-math.Abs(ts.SecondEigenvalue()), 1e-6) {
		t.Fatalf("gap = %v", gap)
	}
}

func TestSpectralGapLazyWalkOnCompleteGraph(t *testing.T) {
	g := graph.Complete(6)
	c := LazyRandomWalkChain(g, 0.5).Dense()
	pi := WalkStationary(g)
	gap, _ := c.SpectralGapReversible(pi, 500)
	// Lazy walk on K_n: eigenvalues of the walk are 1 and -1/(n-1); the lazy
	// version maps λ -> (1+λ)/2, giving SLEM = (1 - 1/5)/2 = 0.4.
	if !almostEq(gap, 0.6, 1e-6) {
		t.Fatalf("gap = %v, want 0.6", gap)
	}
}

func TestMeetingTimeCompleteVsCycle(t *testing.T) {
	r := rng.New(31)
	complete := MeetingTime(graph.Complete(16), 0.5, 200, 100000, r)
	cycle := MeetingTime(graph.Cycle(16), 0.5, 200, 100000, r)
	if complete >= cycle {
		t.Fatalf("meeting on K_16 (%v) should beat cycle-16 (%v)", complete, cycle)
	}
	if complete < 1 {
		t.Fatalf("meeting time below 1: %v", complete)
	}
}

func TestMeetingTimeGrowsWithCycle(t *testing.T) {
	r := rng.New(37)
	small := MeetingTime(graph.Cycle(8), 0.5, 150, 100000, r)
	big := MeetingTime(graph.Cycle(32), 0.5, 150, 100000, r)
	if big < 2*small {
		t.Fatalf("meeting time should grow superlinearly: %v vs %v", small, big)
	}
}
