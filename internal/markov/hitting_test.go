package markov

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestHittingTimesPathEndToEnd(t *testing.T) {
	// Simple random walk on a path of n vertices: E[hit n-1 from 0] =
	// (n-1)².
	for _, n := range []int{3, 5, 8} {
		c := RandomWalkChain(graph.Path(n)).Dense()
		h, err := c.ExpectedHittingTimes(n - 1)
		if err != nil {
			t.Fatal(err)
		}
		want := float64((n - 1) * (n - 1))
		if !almostEq(h[0], want, 1e-8) {
			t.Fatalf("path-%d hitting = %v, want %v", n, h[0], want)
		}
		if h[n-1] != 0 {
			t.Fatal("hitting target from itself must be 0")
		}
	}
}

func TestHittingTimesCycle(t *testing.T) {
	// Simple random walk on a cycle of n: E[hit 0 from distance d] =
	// d(n-d).
	n := 10
	c := RandomWalkChain(graph.Cycle(n)).Dense()
	h, err := c.ExpectedHittingTimes(0)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d < n; d++ {
		want := float64(d * (n - d))
		if !almostEq(h[d], want, 1e-8) {
			t.Fatalf("cycle hitting from %d = %v, want %v", d, h[d], want)
		}
	}
}

func TestHittingTimesUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	c := RandomWalkChain(b.Build()).Dense()
	if _, err := c.ExpectedHittingTimes(0); err == nil {
		t.Fatal("disconnected hitting system should fail")
	}
	if _, err := c.ExpectedHittingTimes(9); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestHittingTimesLazyDoubles(t *testing.T) {
	// A lazy walk with stay = 1/2 takes exactly twice as long in
	// expectation.
	g := graph.Cycle(8)
	plain, err := RandomWalkChain(g).Dense().ExpectedHittingTimes(0)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := LazyRandomWalkChain(g, 0.5).Dense().ExpectedHittingTimes(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if !almostEq(lazy[i], 2*plain[i], 1e-8) {
			t.Fatalf("lazy hitting from %d = %v, want %v", i, lazy[i], 2*plain[i])
		}
	}
}

func TestExpectedMeetingTimeMatchesSimulation(t *testing.T) {
	g := graph.Cycle(6)
	exact, err := LazyRandomWalkChain(g, 0.5).Dense().ExpectedMeetingTime()
	if err != nil {
		t.Fatal(err)
	}
	sim := MeetingTime(g, 0.5, 3000, 1<<20, rng.New(3))
	if math.Abs(sim-exact) > 0.1*exact {
		t.Fatalf("meeting time: simulated %v vs exact %v", sim, exact)
	}
}

func TestExpectedMeetingTimeCompleteGraph(t *testing.T) {
	// On K_n (non-lazy), two walkers collide in the next step with
	// probability 1/(n-1)... plus they may swap. Exact value from the
	// solver must at least be positive and finite; verify against
	// simulation.
	g := graph.Complete(5)
	exact, err := RandomWalkChain(g).Dense().ExpectedMeetingTime()
	if err != nil {
		t.Fatal(err)
	}
	sim := MeetingTime(g, 0, 5000, 1<<20, rng.New(5))
	if math.Abs(sim-exact) > 0.15*exact {
		t.Fatalf("K5 meeting: simulated %v vs exact %v", sim, exact)
	}
}
