package markov

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Sparse is a row-stochastic transition matrix stored in compressed sparse
// row form. It is the representation of choice for the structured chains in
// this repository (random walks on graphs, discretized mobility chains),
// whose rows have O(1) non-zeros.
type Sparse struct {
	n    int
	rowp []int32   // row pointers, len n+1
	cols []int32   // column indices
	vals []float64 // probabilities
}

// SparseBuilder accumulates entries for a Sparse chain.
type SparseBuilder struct {
	n    int
	cols [][]int32
	vals [][]float64
}

// NewSparseBuilder creates a builder for an n-state sparse chain.
func NewSparseBuilder(n int) *SparseBuilder {
	if n <= 0 {
		panic("markov: NewSparseBuilder needs n > 0")
	}
	return &SparseBuilder{
		n:    n,
		cols: make([][]int32, n),
		vals: make([][]float64, n),
	}
}

// Set appends the entry P[i][j] = p. Entries in a row must not repeat.
func (b *SparseBuilder) Set(i, j int, p float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("markov: Set(%d, %d) out of range [0,%d)", i, j, b.n))
	}
	if p == 0 {
		return
	}
	b.cols[i] = append(b.cols[i], int32(j))
	b.vals[i] = append(b.vals[i], p)
}

// Build validates row stochasticity and produces the chain.
func (b *SparseBuilder) Build() (*Sparse, error) {
	s := &Sparse{n: b.n, rowp: make([]int32, b.n+1)}
	nnz := 0
	for i := 0; i < b.n; i++ {
		sum := 0.0
		for _, v := range b.vals[i] {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("markov: invalid probability in row %d", i)
			}
			sum += v
		}
		if math.Abs(sum-1) > rowSumTol {
			return nil, fmt.Errorf("markov: sparse row %d sums to %v, want 1", i, sum)
		}
		nnz += len(b.vals[i])
	}
	s.cols = make([]int32, 0, nnz)
	s.vals = make([]float64, 0, nnz)
	for i := 0; i < b.n; i++ {
		s.rowp[i] = int32(len(s.cols))
		s.cols = append(s.cols, b.cols[i]...)
		s.vals = append(s.vals, b.vals[i]...)
	}
	s.rowp[b.n] = int32(len(s.cols))
	return s, nil
}

// MustBuild is Build that panics on error.
func (b *SparseBuilder) MustBuild() *Sparse {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the number of states.
func (s *Sparse) N() int { return s.n }

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.vals) }

// Row calls fn(j, p) for each non-zero entry P[i][j] = p.
func (s *Sparse) Row(i int, fn func(j int, p float64)) {
	for k := s.rowp[i]; k < s.rowp[i+1]; k++ {
		fn(int(s.cols[k]), s.vals[k])
	}
}

// EvolveDist returns dist · P.
func (s *Sparse) EvolveDist(dist []float64) []float64 {
	if len(dist) != s.n {
		panic("markov: EvolveDist dimension mismatch")
	}
	out := make([]float64, s.n)
	for i, d := range dist {
		if d == 0 {
			continue
		}
		for k := s.rowp[i]; k < s.rowp[i+1]; k++ {
			out[s.cols[k]] += d * s.vals[k]
		}
	}
	return out
}

// EvolveDistInto computes dist · P into out (both length n), allowing the
// caller to ping-pong two buffers without allocation.
func (s *Sparse) EvolveDistInto(dist, out []float64) {
	if len(dist) != s.n || len(out) != s.n {
		panic("markov: EvolveDistInto dimension mismatch")
	}
	for j := range out {
		out[j] = 0
	}
	for i, d := range dist {
		if d == 0 {
			continue
		}
		for k := s.rowp[i]; k < s.rowp[i+1]; k++ {
			out[s.cols[k]] += d * s.vals[k]
		}
	}
}

// Dense expands the sparse chain to a dense Chain (for small n).
func (s *Sparse) Dense() *Chain {
	c := &Chain{n: s.n, p: make([]float64, s.n*s.n)}
	for i := 0; i < s.n; i++ {
		s.Row(i, func(j int, p float64) {
			c.p[i*s.n+j] += p
		})
	}
	return c
}

// StationaryPower estimates the stationary distribution by lazy power
// iteration from the uniform distribution, stopping when successive
// iterates are within tol in total variation or after maxIter steps.
func (s *Sparse) StationaryPower(tol float64, maxIter int) ([]float64, error) {
	cur := uniformDist(s.n)
	next := make([]float64, s.n)
	tmp := make([]float64, s.n)
	for it := 0; it < maxIter; it++ {
		// Lazy step: next = (cur + cur·P)/2 keeps periodic chains converging.
		s.EvolveDistInto(cur, tmp)
		for j := range next {
			next[j] = (cur[j] + tmp[j]) / 2
		}
		if tvDist(cur, next) < tol {
			copy(cur, next)
			return cur, nil
		}
		cur, next = next, cur
	}
	return nil, fmt.Errorf("markov: power iteration did not converge in %d iters", maxIter)
}

// NewSparseSampler builds per-row alias tables for the sparse chain.
func NewSparseSampler(s *Sparse) *SparseSampler {
	out := &SparseSampler{
		alias: make([]*rng.Alias, s.n),
		cols:  make([][]int32, s.n),
	}
	for i := 0; i < s.n; i++ {
		lo, hi := s.rowp[i], s.rowp[i+1]
		if lo == hi {
			panic(fmt.Sprintf("markov: state %d has no transitions", i))
		}
		out.cols[i] = s.cols[lo:hi]
		out.alias[i] = rng.NewAlias(s.vals[lo:hi])
	}
	return out
}

// SparseSampler draws transitions from a Sparse chain in O(1).
type SparseSampler struct {
	alias []*rng.Alias
	cols  [][]int32
}

// Next samples the successor of state i.
func (ss *SparseSampler) Next(i int, r *rng.RNG) int {
	k := ss.alias[i].Sample(r)
	return int(ss.cols[i][k])
}

// N returns the number of states.
func (ss *SparseSampler) N() int { return len(ss.alias) }

func uniformDist(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = 1 / float64(n)
	}
	return d
}

func tvDist(p, q []float64) float64 {
	sum := 0.0
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2
}

var errNotConverged = errors.New("markov: iteration did not converge")
