package markov

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// RandomWalkChain returns the sparse transition matrix of the simple random
// walk on g: from v, move to a uniformly random neighbor. Vertices of degree
// zero self-loop (the walk is stuck, matching the convention that an
// isolated node does not move).
func RandomWalkChain(g *graph.Graph) *Sparse {
	b := NewSparseBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d == 0 {
			b.Set(v, v, 1)
			continue
		}
		p := 1 / float64(d)
		g.ForEachNeighbor(v, func(u int) {
			b.Set(v, u, p)
		})
	}
	return b.MustBuild()
}

// LazyRandomWalkChain returns the walk that stays put with probability stay
// and otherwise moves to a uniform neighbor. Laziness guarantees
// aperiodicity on bipartite graphs such as grids.
func LazyRandomWalkChain(g *graph.Graph, stay float64) *Sparse {
	if stay < 0 || stay >= 1 {
		panic("markov: LazyRandomWalkChain needs 0 <= stay < 1")
	}
	b := NewSparseBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d == 0 {
			b.Set(v, v, 1)
			continue
		}
		b.Set(v, v, stay)
		p := (1 - stay) / float64(d)
		g.ForEachNeighbor(v, func(u int) {
			b.Set(v, u, p)
		})
	}
	return b.MustBuild()
}

// UniformChain returns the chain that jumps to a uniformly random state each
// step — mixing time 1, the fastest-mixing reference point in experiments.
func UniformChain(n int) *Chain {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		for j := range rows[i] {
			rows[i][j] = 1 / float64(n)
		}
	}
	return MustChain(rows)
}

// WalkStationary returns the exact stationary distribution of the simple
// random walk on g: π(v) = deg(v) / 2m. For graphs with isolated vertices
// the walk is not irreducible and this closed form does not apply; callers
// should check connectivity first.
func WalkStationary(g *graph.Graph) []float64 {
	pi := make([]float64, g.N())
	total := 2 * float64(g.M())
	if total == 0 {
		for i := range pi {
			pi[i] = 1 / float64(g.N())
		}
		return pi
	}
	for v := 0; v < g.N(); v++ {
		pi[v] = float64(g.Degree(v)) / total
	}
	return pi
}

// MeetingTime estimates the expected meeting time T* of two independent
// lazy random walks on g started from uniformly random distinct vertices —
// the quantity the flooding bound of Dimitriou–Nikoletseas–Spirakis [15]
// depends on. It runs trials simulations capped at maxSteps each (capped
// runs contribute maxSteps, so the estimate is a lower bound when the cap
// binds) and returns the sample mean. Walks meet when they occupy the same
// vertex after a synchronous step.
func MeetingTime(g *graph.Graph, stay float64, trials, maxSteps int, r *rng.RNG) float64 {
	chain := LazyRandomWalkChain(g, stay)
	sampler := NewSparseSampler(chain)
	total := 0.0
	for trial := 0; trial < trials; trial++ {
		a := r.Intn(g.N())
		b := r.Intn(g.N())
		for b == a && g.N() > 1 {
			b = r.Intn(g.N())
		}
		steps := maxSteps
		for t := 1; t <= maxSteps; t++ {
			a = sampler.Next(a, r)
			b = sampler.Next(b, r)
			if a == b {
				steps = t
				break
			}
		}
		total += float64(steps)
	}
	return total / float64(trials)
}
