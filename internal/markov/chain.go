// Package markov implements the finite Markov chain substrate the paper's
// models are built on: dense and sparse transition matrices, exact and
// iterative stationary distributions, total-variation mixing times, spectral
// gaps for reversible chains, and closed forms for the two-state edge chain
// of the basic edge-MEG model.
package markov

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// tolerance for row-stochasticity validation.
const rowSumTol = 1e-9

// Chain is a dense row-stochastic transition matrix over states 0..n-1.
type Chain struct {
	n int
	p []float64 // row-major n x n
}

// NewChain validates and wraps a dense transition matrix. Rows must be
// non-negative and sum to 1 within tolerance.
func NewChain(rows [][]float64) (*Chain, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("markov: empty chain")
	}
	c := &Chain{n: n, p: make([]float64, n*n)}
	for i, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("markov: row %d has length %d, want %d", i, len(row), n)
		}
		sum := 0.0
		for j, v := range row {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("markov: P[%d][%d] = %v is invalid", i, j, v)
			}
			sum += v
			c.p[i*n+j] = v
		}
		if math.Abs(sum-1) > rowSumTol {
			return nil, fmt.Errorf("markov: row %d sums to %v, want 1", i, sum)
		}
	}
	return c, nil
}

// MustChain is NewChain that panics on error, for statically known matrices
// in tests and examples.
func MustChain(rows [][]float64) *Chain {
	c, err := NewChain(rows)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of states.
func (c *Chain) N() int { return c.n }

// At returns P[i][j].
func (c *Chain) At(i, j int) float64 { return c.p[i*c.n+j] }

// Row returns row i as a shared slice; callers must not modify it.
func (c *Chain) Row(i int) []float64 { return c.p[i*c.n : (i+1)*c.n] }

// Copy returns a deep copy.
func (c *Chain) Copy() *Chain {
	out := &Chain{n: c.n, p: make([]float64, len(c.p))}
	copy(out.p, c.p)
	return out
}

// EvolveDist returns dist · P, the distribution after one step. It panics on
// a length mismatch (a programming error).
func (c *Chain) EvolveDist(dist []float64) []float64 {
	if len(dist) != c.n {
		panic("markov: EvolveDist dimension mismatch")
	}
	out := make([]float64, c.n)
	for i, d := range dist {
		if d == 0 {
			continue
		}
		row := c.Row(i)
		for j, pij := range row {
			out[j] += d * pij
		}
	}
	return out
}

// Mul returns the matrix product c · other (the two-step chain when other
// follows c).
func (c *Chain) Mul(other *Chain) *Chain {
	if c.n != other.n {
		panic("markov: Mul dimension mismatch")
	}
	n := c.n
	out := &Chain{n: n, p: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		ci := c.p[i*n : (i+1)*n]
		oi := out.p[i*n : (i+1)*n]
		for k, v := range ci {
			if v == 0 {
				continue
			}
			bk := other.p[k*n : (k+1)*n]
			for j, w := range bk {
				oi[j] += v * w
			}
		}
	}
	return out
}

// Power returns c^t via binary exponentiation. t = 0 yields the identity.
func (c *Chain) Power(t int) *Chain {
	if t < 0 {
		panic("markov: negative power")
	}
	result := Identity(c.n)
	base := c.Copy()
	for t > 0 {
		if t&1 == 1 {
			result = result.Mul(base)
		}
		t >>= 1
		if t > 0 {
			base = base.Mul(base)
		}
	}
	return result
}

// Identity returns the identity chain on n states.
func Identity(n int) *Chain {
	c := &Chain{n: n, p: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		c.p[i*n+i] = 1
	}
	return c
}

// Lazy returns the lazy version (I + P)/2, which is aperiodic and has the
// same stationary distribution.
func (c *Chain) Lazy() *Chain {
	out := c.Copy()
	for i := 0; i < c.n; i++ {
		for j := 0; j < c.n; j++ {
			out.p[i*c.n+j] /= 2
		}
		out.p[i*c.n+i] += 0.5
	}
	return out
}

// IsReversible reports whether the chain satisfies detailed balance with
// respect to pi within tolerance tol.
func (c *Chain) IsReversible(pi []float64, tol float64) bool {
	for i := 0; i < c.n; i++ {
		for j := i + 1; j < c.n; j++ {
			if math.Abs(pi[i]*c.At(i, j)-pi[j]*c.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Sampler draws state transitions in O(1) per step using per-row alias
// tables. It is the hot path of every node-MEG simulation.
type Sampler struct {
	rows []*rng.Alias
}

// NewSampler builds alias tables for every row of the chain.
func NewSampler(c *Chain) *Sampler {
	s := &Sampler{rows: make([]*rng.Alias, c.n)}
	for i := 0; i < c.n; i++ {
		s.rows[i] = rng.NewAlias(c.Row(i))
	}
	return s
}

// Next samples the successor state of state i.
func (s *Sampler) Next(i int, r *rng.RNG) int {
	return s.rows[i].Sample(r)
}

// N returns the number of states.
func (s *Sampler) N() int { return len(s.rows) }
