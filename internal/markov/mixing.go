package markov

import (
	"fmt"
	"math"
)

// DefaultMixingEps is the conventional 1/4 threshold for mixing times.
const DefaultMixingEps = 0.25

// WorstTV returns max_i TV(P^t(i,·), pi) for the already-computed power
// matrix pt.
func WorstTV(pt *Chain, pi []float64) float64 {
	worst := 0.0
	for i := 0; i < pt.n; i++ {
		if d := tvDist(pt.Row(i), pi); d > worst {
			worst = d
		}
	}
	return worst
}

// MixingTime returns the smallest t <= maxT with
// max_i TV(P^t(i,·), π) <= eps, computing π exactly first. It uses doubling
// plus binary search over stored powers, so the cost is O(n³ log maxT).
func (c *Chain) MixingTime(eps float64, maxT int) (int, error) {
	pi, err := c.StationaryExact()
	if err != nil {
		return 0, err
	}
	return c.MixingTimeWith(pi, eps, maxT)
}

// MixingTimeWith is MixingTime with a caller-provided stationary
// distribution.
func (c *Chain) MixingTimeWith(pi []float64, eps float64, maxT int) (int, error) {
	if WorstTV(c, pi) <= eps {
		// Check t = 0 (already mixed only if the chain is a point mass, but
		// t = 1 may already satisfy the bound).
		return 1, nil
	}
	// Doubling phase: powers P^(2^k) with k = 0, 1, 2, ...
	type power struct {
		t int
		m *Chain
	}
	powers := []power{{1, c.Copy()}}
	for {
		last := powers[len(powers)-1]
		if WorstTV(last.m, pi) <= eps {
			break
		}
		if last.t >= maxT {
			return 0, fmt.Errorf("markov: not mixed within %d steps (worst TV %.4g)", maxT, WorstTV(last.m, pi))
		}
		powers = append(powers, power{last.t * 2, last.m.Mul(last.m)})
	}
	if len(powers) == 1 {
		return 1, nil
	}
	// Binary search in (lo.t, hi.t]: the mixing threshold is crossed between
	// the last two powers. Build intermediate powers from the doubling
	// ladder.
	lo := powers[len(powers)-2] // not mixed
	hi := powers[len(powers)-1] // mixed
	loT, hiT := lo.t, hi.t
	base := lo.m
	baseT := lo.t
	for loT+1 < hiT {
		mid := (loT + hiT) / 2
		// Compute P^mid = base (P^baseT) times P^(mid - baseT) using the
		// ladder of stored powers.
		m := base.Copy()
		rem := mid - baseT
		for k := len(powers) - 1; k >= 0 && rem > 0; k-- {
			for rem >= powers[k].t {
				m = m.Mul(powers[k].m)
				rem -= powers[k].t
			}
		}
		if WorstTV(m, pi) <= eps {
			hiT = mid
		} else {
			loT = mid
			base = m
			baseT = mid
		}
	}
	return hiT, nil
}

// TVProfile returns max-start total-variation distances to pi at each time
// 1..maxT, computed by evolving the full matrix one step at a time. Cost is
// O(maxT · n³); intended for small chains feeding decay-curve experiments.
func (c *Chain) TVProfile(pi []float64, maxT int) []float64 {
	out := make([]float64, maxT)
	cur := c.Copy()
	for t := 1; t <= maxT; t++ {
		out[t-1] = WorstTV(cur, pi)
		if t < maxT {
			cur = cur.Mul(c)
		}
	}
	return out
}

// TVFromStart returns TV(P^t(start,·), pi) for t = 1..maxT by evolving a
// single distribution, costing O(maxT · nnz). This scales to large sparse
// chains.
func (s *Sparse) TVFromStart(start int, pi []float64, maxT int) []float64 {
	dist := make([]float64, s.n)
	dist[start] = 1
	next := make([]float64, s.n)
	out := make([]float64, maxT)
	for t := 1; t <= maxT; t++ {
		s.EvolveDistInto(dist, next)
		dist, next = next, dist
		out[t-1] = tvDist(dist, pi)
	}
	return out
}

// MixingTimeFromStart returns the first t <= maxT at which the single-start
// TV distance drops to eps, for a sparse chain. Single-start mixing lower
// bounds the worst-start mixing time; for the vertex-transitive chains used
// in experiments they coincide.
func (s *Sparse) MixingTimeFromStart(start int, pi []float64, eps float64, maxT int) (int, error) {
	dist := make([]float64, s.n)
	dist[start] = 1
	next := make([]float64, s.n)
	for t := 1; t <= maxT; t++ {
		s.EvolveDistInto(dist, next)
		dist, next = next, dist
		if tvDist(dist, pi) <= eps {
			return t, nil
		}
	}
	return 0, fmt.Errorf("markov: start %d not mixed within %d steps", start, maxT)
}

// SpectralGapReversible estimates the absolute spectral gap 1 - max(|λ₂|)
// of a reversible chain with stationary distribution pi, using power
// iteration on the symmetrized matrix S = D^{1/2} P D^{-1/2} with the top
// eigenvector deflated. It returns the gap and the second eigenvalue
// modulus. iters controls the power-iteration count.
func (c *Chain) SpectralGapReversible(pi []float64, iters int) (gap, slem float64) {
	n := c.n
	sqrtPi := make([]float64, n)
	for i, p := range pi {
		sqrtPi[i] = math.Sqrt(p)
	}
	// v starts pseudo-random deterministic, orthogonal to sqrtPi after
	// deflation.
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Sin(float64(i+1) * 2.399963)
	}
	tmp := make([]float64, n)
	deflate := func(x []float64) {
		dot := 0.0
		for i := range x {
			dot += x[i] * sqrtPi[i]
		}
		for i := range x {
			x[i] -= dot * sqrtPi[i]
		}
	}
	normalize := func(x []float64) float64 {
		norm := 0.0
		for _, xi := range x {
			norm += xi * xi
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range x {
			x[i] /= norm
		}
		return norm
	}
	deflate(v)
	normalize(v)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		// tmp = S v where S_ij = sqrt(pi_i) P_ij / sqrt(pi_j).
		for i := 0; i < n; i++ {
			sum := 0.0
			row := c.Row(i)
			for j, pij := range row {
				if pij != 0 {
					sum += pij * v[j] / sqrtPi[j]
				}
			}
			tmp[i] = sqrtPi[i] * sum
		}
		deflate(tmp)
		lambda = normalize(tmp)
		copy(v, tmp)
		_ = it
	}
	slem = lambda
	return 1 - slem, slem
}
