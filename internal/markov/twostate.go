package markov

import (
	"fmt"
	"math"
)

// TwoState is the two-state birth/death chain that drives every edge of the
// basic edge-MEG model of [Clementi et al., PODC 2008]: state 0 is "off",
// state 1 is "on"; an off edge turns on with probability P (birth rate) and
// an on edge turns off with probability Q (death rate).
//
// All the quantities the paper quotes for this chain have closed forms,
// implemented here: the stationary law (q, p)/(p+q), the TV decay
// |1-p-q|^t, and the mixing time Θ(1/(p+q)).
type TwoState struct {
	P float64 // birth rate: P(0 -> 1)
	Q float64 // death rate: P(1 -> 0)
}

// Validate returns an error unless 0 <= P, Q <= 1 and the chain is ergodic
// (P + Q > 0).
func (ts TwoState) Validate() error {
	if ts.P < 0 || ts.P > 1 || math.IsNaN(ts.P) {
		return fmt.Errorf("markov: two-state birth rate %v out of [0,1]", ts.P)
	}
	if ts.Q < 0 || ts.Q > 1 || math.IsNaN(ts.Q) {
		return fmt.Errorf("markov: two-state death rate %v out of [0,1]", ts.Q)
	}
	if ts.P+ts.Q == 0 {
		return fmt.Errorf("markov: two-state chain with p = q = 0 is not ergodic")
	}
	return nil
}

// Chain returns the dense 2x2 transition matrix.
func (ts TwoState) Chain() *Chain {
	return MustChain([][]float64{
		{1 - ts.P, ts.P},
		{ts.Q, 1 - ts.Q},
	})
}

// StationaryOn returns the stationary probability that the edge is on:
// p / (p + q). This is the α of the edge-MEG instantiation of Theorem 1.
func (ts TwoState) StationaryOn() float64 {
	return ts.P / (ts.P + ts.Q)
}

// SecondEigenvalue returns λ₂ = 1 - p - q, which governs the geometric TV
// decay.
func (ts TwoState) SecondEigenvalue() float64 {
	return 1 - ts.P - ts.Q
}

// TVAt returns the worst-start total-variation distance from stationarity
// after t steps: max(π₀, π₁)·|1-p-q|^t.
func (ts TwoState) TVAt(t int) float64 {
	pi1 := ts.StationaryOn()
	pi0 := 1 - pi1
	return math.Max(pi0, pi1) * math.Pow(math.Abs(ts.SecondEigenvalue()), float64(t))
}

// MixingTime returns the smallest t with worst-start TV <= eps, from the
// closed form. A chain with λ₂ = 0 (p + q = 1) mixes in one step.
func (ts TwoState) MixingTime(eps float64) int {
	lam := math.Abs(ts.SecondEigenvalue())
	if lam == 0 {
		return 1
	}
	m := math.Max(1-ts.StationaryOn(), ts.StationaryOn())
	if m <= eps {
		return 1
	}
	t := math.Log(eps/m) / math.Log(lam)
	return int(math.Ceil(t))
}

// OnAfter returns P(state = on at time t | state(0) = on0), the t-step
// transition probability in closed form:
//
//	P^t(x, on) = π_on + (1{x=on} - π_on)·(1-p-q)^t.
func (ts TwoState) OnAfter(t int, on0 bool) float64 {
	pi := ts.StationaryOn()
	lam := math.Pow(ts.SecondEigenvalue(), float64(t))
	x := 0.0
	if on0 {
		x = 1
	}
	return pi + (x-pi)*lam
}
