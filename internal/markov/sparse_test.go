package markov

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSparseBuilderValidation(t *testing.T) {
	b := NewSparseBuilder(2)
	b.Set(0, 0, 0.5)
	b.Set(0, 1, 0.4)
	b.Set(1, 1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("non-stochastic sparse row accepted")
	}
}

func TestSparseBuilderPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewSparseBuilder(0) did not panic")
			}
		}()
		NewSparseBuilder(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range Set did not panic")
			}
		}()
		NewSparseBuilder(2).Set(0, 5, 1)
	}()
}

func TestSparseZeroEntriesSkipped(t *testing.T) {
	b := NewSparseBuilder(2)
	b.Set(0, 0, 1)
	b.Set(0, 1, 0) // dropped
	b.Set(1, 0, 1)
	s := b.MustBuild()
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s.NNZ())
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	g := graph.Grid(3, 3)
	sp := RandomWalkChain(g)
	dense := sp.Dense()
	dist := make([]float64, g.N())
	dist[4] = 1
	a := sp.EvolveDist(dist)
	b := dense.EvolveDist(dist)
	for i := range a {
		if !almostEq(a[i], b[i], 1e-12) {
			t.Fatalf("sparse/dense mismatch at %d", i)
		}
	}
}

func TestSparseEvolvePreservesMassProperty(t *testing.T) {
	r := rng.New(41)
	f := func(seed uint16) bool {
		g := graph.Gnp(20, 0.3, rng.New(uint64(seed)+1))
		sp := LazyRandomWalkChain(g, 0.3)
		dist := make([]float64, 20)
		dist[r.Intn(20)] = 1
		for step := 0; step < 5; step++ {
			dist = sp.EvolveDist(dist)
		}
		sum := 0.0
		for _, v := range dist {
			if v < 0 {
				return false
			}
			sum += v
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseEvolveInto(t *testing.T) {
	g := graph.Cycle(5)
	sp := RandomWalkChain(g)
	dist := []float64{1, 0, 0, 0, 0}
	out := make([]float64, 5)
	sp.EvolveDistInto(dist, out)
	want := sp.EvolveDist(dist)
	for i := range out {
		if out[i] != want[i] {
			t.Fatal("EvolveDistInto differs from EvolveDist")
		}
	}
}

func TestSparseStationaryPowerWalk(t *testing.T) {
	g := graph.Star(6)
	sp := RandomWalkChain(g)
	pi, err := sp.StationaryPower(1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	want := WalkStationary(g)
	if tv := tvDist(pi, want); tv > 1e-8 {
		t.Fatalf("walk stationary TV = %v", tv)
	}
}

func TestWalkStationaryClosedForm(t *testing.T) {
	g := graph.Path(4)
	pi := WalkStationary(g)
	// Degrees 1,2,2,1; 2m = 6.
	want := []float64{1.0 / 6, 2.0 / 6, 2.0 / 6, 1.0 / 6}
	for i := range pi {
		if !almostEq(pi[i], want[i], 1e-12) {
			t.Fatalf("pi = %v", pi)
		}
	}
}

func TestWalkStationaryEmptyGraph(t *testing.T) {
	b := graph.NewBuilder(3)
	g := b.Build()
	pi := WalkStationary(g)
	for _, p := range pi {
		if !almostEq(p, 1.0/3, 1e-12) {
			t.Fatalf("empty graph stationary should be uniform: %v", pi)
		}
	}
}

func TestRandomWalkChainIsolatedVertex(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	sp := RandomWalkChain(g)
	dist := []float64{0, 0, 1}
	out := sp.EvolveDist(dist)
	if out[2] != 1 {
		t.Fatal("isolated vertex should self-loop")
	}
}

func TestLazyWalkPanicsOnBadStay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("stay=1 did not panic")
		}
	}()
	LazyRandomWalkChain(graph.Cycle(4), 1)
}

func TestSparseSamplerMatchesChain(t *testing.T) {
	g := graph.Star(5)
	sp := RandomWalkChain(g)
	sampler := NewSparseSampler(sp)
	r := rng.New(43)
	// From the hub (vertex 0), all leaves equally likely.
	counts := make([]int, 5)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[sampler.Next(0, r)]++
	}
	if counts[0] != 0 {
		t.Fatal("hub should never self-transition")
	}
	for v := 1; v < 5; v++ {
		got := float64(counts[v]) / trials
		if got < 0.22 || got > 0.28 {
			t.Fatalf("leaf %d frequency %v, want ~0.25", v, got)
		}
	}
	if sampler.N() != 5 {
		t.Fatal("sampler N wrong")
	}
}

func TestTwoStateClosedForms(t *testing.T) {
	ts := TwoState{P: 0.2, Q: 0.3}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(ts.StationaryOn(), 0.4, 1e-12) {
		t.Fatal("StationaryOn wrong")
	}
	if !almostEq(ts.SecondEigenvalue(), 0.5, 1e-12) {
		t.Fatal("SecondEigenvalue wrong")
	}
	// OnAfter converges to stationary.
	if !almostEq(ts.OnAfter(1000, false), 0.4, 1e-9) {
		t.Fatal("OnAfter should converge to stationary")
	}
	// One-step transition matches the matrix.
	if !almostEq(ts.OnAfter(1, false), 0.2, 1e-12) {
		t.Fatalf("OnAfter(1, off) = %v, want 0.2", ts.OnAfter(1, false))
	}
	if !almostEq(ts.OnAfter(1, true), 0.7, 1e-12) {
		t.Fatalf("OnAfter(1, on) = %v, want 0.7", ts.OnAfter(1, true))
	}
}

func TestTwoStateOnAfterMatchesMatrixPower(t *testing.T) {
	ts := TwoState{P: 0.15, Q: 0.05}
	c := ts.Chain()
	for _, steps := range []int{1, 2, 5, 17} {
		p := c.Power(steps)
		if !almostEq(ts.OnAfter(steps, false), p.At(0, 1), 1e-12) {
			t.Fatalf("OnAfter(%d, off) mismatch", steps)
		}
		if !almostEq(ts.OnAfter(steps, true), p.At(1, 1), 1e-12) {
			t.Fatalf("OnAfter(%d, on) mismatch", steps)
		}
	}
}

func TestTwoStateValidate(t *testing.T) {
	if err := (TwoState{P: -0.1, Q: 0.5}).Validate(); err == nil {
		t.Fatal("negative p accepted")
	}
	if err := (TwoState{P: 0, Q: 0}).Validate(); err == nil {
		t.Fatal("p=q=0 accepted")
	}
	if err := (TwoState{P: 0.5, Q: 1.5}).Validate(); err == nil {
		t.Fatal("q>1 accepted")
	}
}

func TestTwoStateMixingTimeEdgeCases(t *testing.T) {
	if (TwoState{P: 0.5, Q: 0.5}).MixingTime(0.25) != 1 {
		t.Fatal("p+q=1 should mix in one step")
	}
	slow := TwoState{P: 0.001, Q: 0.001}
	fast := TwoState{P: 0.1, Q: 0.1}
	if slow.MixingTime(0.25) <= fast.MixingTime(0.25) {
		t.Fatal("slower chain should have larger mixing time")
	}
}

func TestUniformChainRows(t *testing.T) {
	c := UniformChain(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(c.At(i, j), 1.0/3, 1e-12) {
				t.Fatal("uniform chain entries wrong")
			}
		}
	}
}

func BenchmarkSparseEvolve(b *testing.B) {
	g := graph.Grid(50, 50)
	sp := LazyRandomWalkChain(g, 0.5)
	dist := make([]float64, g.N())
	dist[0] = 1
	out := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.EvolveDistInto(dist, out)
		dist, out = out, dist
	}
}

func BenchmarkDenseMul(b *testing.B) {
	r := rng.New(1)
	c := randomChain(64, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Mul(c)
	}
}
