package markov

import "fmt"

// ExpectedHittingTimes solves the first-step equations for the expected
// hitting time of target from every state:
//
//	h[target] = 0,   h[i] = 1 + Σ_j P[i][j]·h[j]  (i ≠ target)
//
// by Gaussian elimination, O(n³). It errors when target is unreachable
// from some state (singular system). These exact values validate the
// dynamic-walk estimators on static graphs and provide the T* baseline of
// [15] in closed form for small instances.
func (c *Chain) ExpectedHittingTimes(target int) ([]float64, error) {
	n := c.n
	if target < 0 || target >= n {
		return nil, fmt.Errorf("markov: target %d out of range [0,%d)", target, n)
	}
	// Unknowns: h[i] for i != target. Build the (n-1)x(n-1) system
	// (I - Q)h = 1 where Q is P restricted to non-target states.
	idx := make([]int, 0, n-1) // row -> state
	col := make(map[int]int, n-1)
	for i := 0; i < n; i++ {
		if i != target {
			col[i] = len(idx)
			idx = append(idx, i)
		}
	}
	m := len(idx)
	a := make([][]float64, m)
	b := make([]float64, m)
	for r, i := range idx {
		a[r] = make([]float64, m)
		row := c.Row(i)
		for j, pij := range row {
			if j == target || pij == 0 {
				continue
			}
			a[r][col[j]] -= pij
		}
		a[r][col[i]] += 1
		b[r] = 1
	}
	x, err := solveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: hitting-time system: %w (target unreachable from some state?)", err)
	}
	h := make([]float64, n)
	for r, i := range idx {
		h[i] = x[r]
	}
	return h, nil
}

// ExpectedMeetingTime computes the exact expected meeting time of two
// independent copies of the chain from a uniform random pair of distinct
// states, by solving hitting-to-diagonal equations on the product chain.
// Cost is O(n⁶) in the worst case (the product chain has n² states); use
// only for small chains — MeetingTime estimates the same quantity by
// simulation for larger ones.
func (c *Chain) ExpectedMeetingTime() (float64, error) {
	n := c.n
	// Product-chain states (u, v), u ≠ v as unknowns; the diagonal absorbs.
	type pair struct{ u, v int }
	idx := make([]pair, 0, n*n-n)
	col := make(map[pair]int, n*n-n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				p := pair{u, v}
				col[p] = len(idx)
				idx = append(idx, p)
			}
		}
	}
	m := len(idx)
	a := make([][]float64, m)
	b := make([]float64, m)
	for r, p := range idx {
		a[r] = make([]float64, m)
		a[r][r] += 1
		b[r] = 1
		ru := c.Row(p.u)
		rv := c.Row(p.v)
		for ju, pu := range ru {
			if pu == 0 {
				continue
			}
			for jv, pv := range rv {
				if pv == 0 || ju == jv {
					continue // meeting: absorbed, contributes 0
				}
				a[r][col[pair{ju, jv}]] -= pu * pv
			}
		}
	}
	x, err := solveLinear(a, b)
	if err != nil {
		return 0, fmt.Errorf("markov: meeting-time system: %w", err)
	}
	total := 0.0
	for r := range idx {
		total += x[r]
	}
	return total / float64(m), nil
}
