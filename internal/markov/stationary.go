package markov

import (
	"fmt"
	"math"
)

// StationaryPower estimates the stationary distribution of the chain by lazy
// power iteration from the uniform distribution. It converges for any
// irreducible chain (the lazy step handles periodicity) and returns an error
// after maxIter non-converged iterations.
func (c *Chain) StationaryPower(tol float64, maxIter int) ([]float64, error) {
	cur := uniformDist(c.n)
	for it := 0; it < maxIter; it++ {
		step := c.EvolveDist(cur)
		next := make([]float64, c.n)
		for j := range next {
			next[j] = (cur[j] + step[j]) / 2
		}
		if tvDist(cur, next) < tol {
			return next, nil
		}
		cur = next
	}
	return nil, fmt.Errorf("%w after %d iterations", errNotConverged, maxIter)
}

// StationaryExact solves the linear system π P = π, Σπ = 1 by Gaussian
// elimination with partial pivoting. It is exact up to floating point for
// chains with a unique stationary distribution and costs O(n³).
func (c *Chain) StationaryExact() ([]float64, error) {
	n := c.n
	// Build A = Pᵀ - I; replace the last equation with Σπ = 1.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = c.At(j, i)
		}
		a[i][i] -= 1
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	b[n-1] = 1

	pi, err := solveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: stationary solve failed: %w", err)
	}
	// Clean tiny negatives from roundoff and renormalize.
	total := 0.0
	for i, v := range pi {
		if v < 0 {
			if v < -1e-8 {
				return nil, fmt.Errorf("markov: stationary solution has negative mass %v at state %d", v, i)
			}
			pi[i] = 0
		}
		total += pi[i]
	}
	if total <= 0 {
		return nil, fmt.Errorf("markov: stationary solution degenerate")
	}
	for i := range pi {
		pi[i] /= total
	}
	return pi, nil
}

// solveLinear solves a x = b in place by Gaussian elimination with partial
// pivoting. a is destroyed.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-14 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
