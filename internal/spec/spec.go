// Package spec is the generic specification layer shared by every
// registry-driven subsystem of the simulation API: a Spec names a
// definition (a dynamic-graph model, a spreading protocol) and carries its
// parameters in textual form, parseable from CLI strings
// ("edgemeg:n=512,p=0.004", "push:k=2") and from JSON, round-tripping
// through both. Registry pairs Specs with self-registered typed
// definitions: declared parameters, defaults, validation, and CLI usage
// listings come for free, so a domain package (internal/model,
// internal/protocol) only supplies its definition type and build
// functions.
package spec

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec names a definition and its parameters in textual form. The zero
// Params map means "all defaults". Specs round-trip through String/Parse
// and through JSON, so experiment configurations are serializable.
type Spec struct {
	Name   string
	Params map[string]string
}

// New returns a Spec for the named definition with default parameters.
func New(name string) Spec { return Spec{Name: name} }

// With returns a copy of s with the parameter set to the given raw text.
func (s Spec) With(name, text string) Spec {
	params := make(map[string]string, len(s.Params)+1)
	for k, v := range s.Params {
		params[k] = v
	}
	params[name] = text
	return Spec{Name: s.Name, Params: params}
}

// WithInt returns a copy of s with an integer parameter set.
func (s Spec) WithInt(name string, v int) Spec {
	return s.With(name, strconv.Itoa(v))
}

// WithFloat returns a copy of s with a float parameter set. The value is
// formatted with full precision, so the spec rebuilds the exact instance.
func (s Spec) WithFloat(name string, v float64) Spec {
	return s.With(name, strconv.FormatFloat(v, 'g', -1, 64))
}

// WithBool returns a copy of s with a bool parameter set.
func (s Spec) WithBool(name string, v bool) Spec {
	return s.With(name, strconv.FormatBool(v))
}

// String renders the spec in the canonical CLI form
// "name:key=value,key=value" (or just "name"), with keys sorted.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	return b.String()
}

// Parse reads a spec from its CLI form "name" or "name:key=value,...".
// Whitespace around tokens is ignored.
func Parse(text string) (Spec, error) {
	name, rest, hasParams := strings.Cut(strings.TrimSpace(text), ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Spec{}, fmt.Errorf("spec: empty spec %q", text)
	}
	spec := Spec{Name: name}
	if !hasParams {
		return spec, nil
	}
	spec.Params = map[string]string{}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" {
			return Spec{}, fmt.Errorf("spec: malformed parameter %q in spec %q (want key=value)", kv, text)
		}
		if _, dup := spec.Params[k]; dup {
			return Spec{}, fmt.Errorf("spec: parameter %q set twice in spec %q", k, text)
		}
		spec.Params[k] = v
	}
	return spec, nil
}

// specJSON is the wire form: {"name": "edgemeg", "params": {"n": 512}}.
// Parameter values may be JSON strings, numbers, or booleans on input and
// are emitted as strings (the canonical textual form) on output. The
// legacy "model" key from the registry's model-only era is accepted as an
// alias of "name" on input.
type specJSON struct {
	Name   string                     `json:"name,omitempty"`
	Model  string                     `json:"model,omitempty"`
	Params map[string]json.RawMessage `json:"params,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s Spec) MarshalJSON() ([]byte, error) {
	out := specJSON{Name: s.Name}
	if len(s.Params) > 0 {
		out.Params = make(map[string]json.RawMessage, len(s.Params))
		for k, v := range s.Params {
			text, err := json.Marshal(v)
			if err != nil {
				return nil, err
			}
			out.Params[k] = text
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var in specJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	name := in.Name
	if name == "" {
		name = in.Model
	}
	if name == "" {
		return fmt.Errorf("spec: spec JSON missing \"name\"")
	}
	spec := Spec{Name: name}
	if len(in.Params) > 0 {
		spec.Params = make(map[string]string, len(in.Params))
		for k, raw := range in.Params {
			var str string
			if err := json.Unmarshal(raw, &str); err == nil {
				spec.Params[k] = str
				continue
			}
			var scalar any
			if err := json.Unmarshal(raw, &scalar); err != nil {
				return fmt.Errorf("spec: parameter %q: %w", k, err)
			}
			switch v := scalar.(type) {
			case float64:
				spec.Params[k] = strconv.FormatFloat(v, 'g', -1, 64)
			case bool:
				spec.Params[k] = strconv.FormatBool(v)
			default:
				return fmt.Errorf("spec: parameter %q must be a string, number, or bool", k)
			}
		}
	}
	*s = spec
	return nil
}
