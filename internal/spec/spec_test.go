package spec_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/spec"
)

func TestParseString(t *testing.T) {
	cases := []struct {
		in   string
		want spec.Spec
	}{
		{"flood", spec.Spec{Name: "flood"}},
		{"push:k=2", spec.New("push").With("k", "2")},
		{" parsimonious : active = 8 ", spec.New("parsimonious").With("active", "8")},
		{"edgemeg:n=512,p=0.004", spec.New("edgemeg").With("n", "512").With("p", "0.004")},
	}
	for _, c := range cases {
		got, err := spec.Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got.Name != c.want.Name || !reflect.DeepEqual(got.Params, c.want.Params) {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		back, err := spec.Parse(got.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)): %v", c.in, err)
		}
		if back.Name != got.Name || !reflect.DeepEqual(back.Params, got.Params) {
			t.Errorf("String round-trip of %q: got %+v", c.in, back)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "  ", "push:k", "push:=3", "push:k=1,k=2"} {
		if _, err := spec.Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := spec.New("edgemeg").WithInt("n", 512).WithFloat("p", 0.004).WithBool("dense", true)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back spec.Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || !reflect.DeepEqual(back.Params, s.Params) {
		t.Errorf("JSON round-trip: got %+v, want %+v", back, s)
	}
}

func TestJSONAcceptsLegacyModelKey(t *testing.T) {
	var s spec.Spec
	if err := json.Unmarshal([]byte(`{"model": "edgemeg", "params": {"n": 64}}`), &s); err != nil {
		t.Fatal(err)
	}
	if s.Name != "edgemeg" || s.Params["n"] != "64" {
		t.Fatalf("legacy key decode: %+v", s)
	}
	if err := json.Unmarshal([]byte(`{"params": {"n": 64}}`), &s); err == nil {
		t.Fatal("missing name should error")
	}
}

// testDef is a minimal registry entry for registry tests.
type testDef struct {
	meta  spec.Meta
	value int
}

func (d testDef) Meta() spec.Meta { return d.meta }

func newTestRegistry(t *testing.T) *spec.Registry[testDef] {
	t.Helper()
	r := spec.NewRegistry[testDef]("widget")
	r.Register(testDef{meta: spec.Meta{
		Name: "gizmo",
		Help: "a test gizmo",
		Params: []spec.Param{
			{Name: "k", Kind: spec.Int, Default: "2", Help: "fan-out"},
			{Name: "rate", Kind: spec.Float, Default: "0.5", Help: "a rate"},
			{Name: "fast", Kind: spec.Bool, Default: "false", Help: "a switch"},
			{Name: "mode", Kind: spec.String, Default: "auto", Help: "an enum"},
		},
	}, value: 7})
	return r
}

func TestRegistryResolveDefaultsAndOverrides(t *testing.T) {
	r := newTestRegistry(t)
	def, args, err := r.Resolve(spec.New("gizmo").WithInt("k", 5))
	if err != nil {
		t.Fatal(err)
	}
	if def.value != 7 {
		t.Fatalf("wrong definition returned: %+v", def)
	}
	if args.Int("k") != 5 || args.Float("rate") != 0.5 || args.Bool("fast") || args.String("mode") != "auto" {
		t.Fatalf("resolved args wrong: k=%d rate=%v fast=%v mode=%q",
			args.Int("k"), args.Float("rate"), args.Bool("fast"), args.String("mode"))
	}
}

func TestRegistryResolveErrors(t *testing.T) {
	r := newTestRegistry(t)
	for _, s := range []spec.Spec{
		spec.New("no-such-widget"),
		spec.New("gizmo").With("bogus", "1"),
		spec.New("gizmo").With("k", "many"),
	} {
		if _, _, err := r.Resolve(s); err == nil {
			t.Errorf("Resolve(%v) succeeded, want error", s)
		}
	}
}

func TestRegistryNamesAndUsage(t *testing.T) {
	r := newTestRegistry(t)
	r.Register(testDef{meta: spec.Meta{Name: "aardvark", Help: "sorts first"}})
	names := r.Names()
	if !reflect.DeepEqual(names, []string{"aardvark", "gizmo"}) {
		t.Fatalf("Names() = %v", names)
	}
	usage := r.Usage()
	if !strings.Contains(usage, "gizmo — a test gizmo") || !strings.Contains(usage, "fan-out") {
		t.Fatalf("Usage missing entries:\n%s", usage)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := newTestRegistry(t)
	mustPanic("duplicate", func() { r.Register(testDef{meta: spec.Meta{Name: "gizmo"}}) })
	mustPanic("empty name", func() { r.Register(testDef{}) })
	mustPanic("bad default", func() {
		r.Register(testDef{meta: spec.Meta{Name: "broken",
			Params: []spec.Param{{Name: "k", Kind: spec.Int, Default: "zap"}}}})
	})
	mustPanic("dup param", func() {
		r.Register(testDef{meta: spec.Meta{Name: "broken2",
			Params: []spec.Param{{Name: "k", Kind: spec.Int, Default: "1"}, {Name: "k", Kind: spec.Int, Default: "2"}}}})
	})
	_, args, err := r.Resolve(spec.New("gizmo"))
	if err != nil {
		t.Fatal(err)
	}
	mustPanic("undeclared arg", func() { args.Int("nope") })
	mustPanic("wrong kind", func() { args.Int("rate") })
}
