package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is the type of a declared parameter.
type Kind int

const (
	Int Kind = iota
	Float
	Bool
	String
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Param declares one typed parameter of a definition.
type Param struct {
	Name    string
	Kind    Kind
	Default string // textual default, parsed with the same rules as Spec values
	Help    string
}

// Meta is the registry-facing description of a definition: its spec name,
// one-line help, and declared parameters. Domain definition types
// (model.Definition, protocol.Definition) implement Definition by
// returning their Meta.
type Meta struct {
	Name   string
	Help   string
	Params []Param
}

// Definition is the constraint a Registry places on its entries.
type Definition interface {
	Meta() Meta
}

// Registry maps definition names to self-registered definitions of one
// domain. It is safe for concurrent use; registration normally runs from
// init functions.
type Registry[D Definition] struct {
	domain string // prefixes error and panic messages, e.g. "model"
	mu     sync.RWMutex
	defs   map[string]D
}

// NewRegistry returns an empty registry whose diagnostics identify the
// given domain ("model", "protocol", ...).
func NewRegistry[D Definition](domain string) *Registry[D] {
	return &Registry[D]{domain: domain, defs: map[string]D{}}
}

// Register adds a definition. It panics on duplicate names or malformed
// parameter declarations — registration runs from init functions, where
// failing loudly at program start is the correct behavior.
func (r *Registry[D]) Register(def D) {
	m := def.Meta()
	if m.Name == "" {
		panic(r.domain + ": Register needs a name")
	}
	seen := map[string]bool{}
	for _, p := range m.Params {
		if seen[p.Name] {
			panic(fmt.Sprintf("%s: %s declares parameter %q twice", r.domain, m.Name, p.Name))
		}
		seen[p.Name] = true
		if _, err := parseValue(p.Kind, p.Default); err != nil {
			panic(fmt.Sprintf("%s: %s parameter %q has invalid default %q: %v", r.domain, m.Name, p.Name, p.Default, err))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.defs[m.Name]; dup {
		panic(r.domain + ": duplicate registration of " + m.Name)
	}
	r.defs[m.Name] = def
}

// Lookup returns the definition registered under name.
func (r *Registry[D]) Lookup(name string) (D, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	def, ok := r.defs[name]
	return def, ok
}

// Names returns the registered names, sorted.
func (r *Registry[D]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.defs))
	for name := range r.defs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Usage returns a multi-line listing of every registered definition and
// its parameters, for CLI help output.
func (r *Registry[D]) Usage() string {
	var b strings.Builder
	for _, name := range r.Names() {
		def, _ := r.Lookup(name)
		m := def.Meta()
		fmt.Fprintf(&b, "%s — %s\n", m.Name, m.Help)
		for _, p := range m.Params {
			fmt.Fprintf(&b, "    %-10s %-6s default %-12s %s\n", p.Name, p.Kind, p.Default, p.Help)
		}
	}
	return b.String()
}

// Resolve validates spec against the registered definition and returns the
// definition along with the fully-populated argument set: every declared
// parameter present, with the spec value when provided and the default
// otherwise.
func (r *Registry[D]) Resolve(spec Spec) (D, Args, error) {
	var zero D
	def, ok := r.Lookup(spec.Name)
	if !ok {
		return zero, Args{}, fmt.Errorf("%s: unknown %s %q (registered: %s)",
			r.domain, r.domain, spec.Name, strings.Join(r.Names(), ", "))
	}
	m := def.Meta()
	args := Args{owner: r.domain + " " + m.Name, values: make(map[string]value, len(m.Params))}
	for _, p := range m.Params {
		text, provided := spec.Params[p.Name]
		if !provided {
			text = p.Default
		}
		v, err := parseValue(p.Kind, text)
		if err != nil {
			return zero, Args{}, fmt.Errorf("%s: %s parameter %q: %v", r.domain, m.Name, p.Name, err)
		}
		args.values[p.Name] = v
	}
	for name := range spec.Params {
		if _, ok := args.values[name]; !ok {
			return zero, Args{}, fmt.Errorf("%s: %s has no parameter %q", r.domain, m.Name, name)
		}
	}
	return def, args, nil
}

// Args holds a definition's resolved parameter values. The typed getters
// panic on undeclared names — that is a bug in the definition, not a user
// error (user errors are caught by Resolve).
type Args struct {
	owner  string // "<domain> <name>", for panic messages
	values map[string]value
}

type value struct {
	kind Kind
	i    int64
	f    float64
	b    bool
	s    string
}

func (a Args) get(name string, kind Kind) value {
	v, ok := a.values[name]
	if !ok || v.kind != kind {
		panic(fmt.Sprintf("%s reads undeclared %s parameter %q", a.owner, kind, name))
	}
	return v
}

// Int returns the named integer parameter.
func (a Args) Int(name string) int { return int(a.get(name, Int).i) }

// Float returns the named float parameter.
func (a Args) Float(name string) float64 { return a.get(name, Float).f }

// Bool returns the named bool parameter.
func (a Args) Bool(name string) bool { return a.get(name, Bool).b }

// String returns the named string parameter.
func (a Args) String(name string) string { return a.get(name, String).s }

func parseValue(kind Kind, text string) (value, error) {
	switch kind {
	case Int:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return value{}, fmt.Errorf("want an integer, got %q", text)
		}
		return value{kind: Int, i: i}, nil
	case Float:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value{}, fmt.Errorf("want a number, got %q", text)
		}
		return value{kind: Float, f: f}, nil
	case Bool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return value{}, fmt.Errorf("want true/false, got %q", text)
		}
		return value{kind: Bool, b: b}, nil
	case String:
		return value{kind: String, s: text}, nil
	default:
		return value{}, fmt.Errorf("unknown parameter kind %v", kind)
	}
}
