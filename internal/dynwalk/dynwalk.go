// Package dynwalk implements random walks ON dynamic graphs — the process
// studied by Avin, Koucký and Lotker ("How to explore a fast-changing
// world", ICALP 2008), the work that introduced the MEG model this paper
// builds on. A token sits on a node and, each time step, moves to a
// uniformly random neighbor of its node in the *current* snapshot (staying
// put when the node is isolated, which in sparse MEGs happens often).
//
// The package provides the walker itself plus estimators for the two
// quantities [2] analyzes: hitting times and cover times.
package dynwalk

import (
	"repro/internal/bitset"
	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// Walker is a random walk on a dynamic graph. The walker owns the graph's
// clock: Step advances both the token and the graph.
type Walker struct {
	d       dyngraph.Dynamic
	lister  dyngraph.NeighborLister // d's native per-node view, if any
	r       *rng.RNG
	pos     int
	scratch []int32
}

// NewWalker places a token on start. It panics if start is out of range.
func NewWalker(d dyngraph.Dynamic, start int, r *rng.RNG) *Walker {
	if start < 0 || start >= d.N() {
		panic("dynwalk: start out of range")
	}
	w := &Walker{d: d, r: r, pos: start}
	w.lister, _ = d.(dyngraph.NeighborLister)
	return w
}

// Pos returns the token's current node.
func (w *Walker) Pos() int { return w.pos }

// Step moves the token to a uniform current neighbor (staying put if the
// node is isolated in this snapshot), then advances the dynamic graph. It
// reports whether the token actually moved — a transmission for message
// accounting; an isolated step is free.
//
// The neighbor set is read through the model's per-node batch view (the
// interface check is hoisted to construction) — a walker touches one node
// per step, so whole-snapshot batching would be wasteful, and the move
// draw indexes into the neighbor list, so walks are pinned to the model's
// neighbor order and must not read a delta-maintained engine store.
// The incremental-dynamics refactor speeds walks up model-side: edge-MEG
// simulators now serve this view from neighbor lists maintained in
// O(churn) per step (in rebuild-identical order), so a long walk on a
// sparse MEG no longer pays an O(m) adjacency rebuild every step.
func (w *Walker) Step() bool {
	if w.lister != nil {
		w.scratch = w.lister.AppendNeighbors(w.pos, w.scratch[:0])
	} else {
		w.scratch = dyngraph.AppendNeighbors(w.d, w.pos, w.scratch[:0])
	}
	moved := len(w.scratch) > 0
	if moved {
		w.pos = int(w.scratch[w.r.Intn(len(w.scratch))])
	}
	w.d.Step()
	return moved
}

// HittingTime runs the walk until it reaches target and returns the number
// of steps taken, or -1 if maxSteps elapsed first.
func HittingTime(d dyngraph.Dynamic, start, target, maxSteps int, r *rng.RNG) int {
	w := NewWalker(d, start, r)
	if w.Pos() == target {
		return 0
	}
	for t := 1; t <= maxSteps; t++ {
		w.Step()
		if w.Pos() == target {
			return t
		}
	}
	return -1
}

// CoverResult reports a cover-time run.
type CoverResult struct {
	// Steps is the time at which the last node was first visited, or -1
	// if the walk did not cover the graph within the cap.
	Steps int
	// Visited is the number of distinct nodes seen (== N on success).
	Visited int
	// Messages counts token transmissions: one per step the token actually
	// moved (a step spent isolated sends nothing and costs nothing) — the
	// walk's analogue of flood.Result.Messages.
	Messages int64
	// Useless counts moves onto already-visited nodes. Every node but the
	// start is first visited by exactly one move, so the same conservation
	// law the spreading engines obey holds here:
	// Messages == Useless + (Visited - 1).
	Useless int64
}

// CoverTime runs the walk until every node has been visited and returns
// the cover time, or the partial progress at maxSteps. The visited set is
// a word-packed bitset — n/8 bytes of state no matter how long the walk
// runs, which for the n²log n-step walks of [2] keeps it resident in cache.
func CoverTime(d dyngraph.Dynamic, start, maxSteps int, r *rng.RNG) CoverResult {
	n := d.N()
	w := NewWalker(d, start, r)
	seen := bitset.New(n)
	seen.Set(start)
	res := CoverResult{Visited: 1}
	if res.Visited == n {
		res.Steps = 0
		return res
	}
	for t := 1; t <= maxSteps; t++ {
		if !w.Step() {
			continue // isolated: the token stayed put, no transmission
		}
		res.Messages++
		if seen.Get(w.Pos()) {
			res.Useless++
		} else {
			seen.Set(w.Pos())
			res.Visited++
			if res.Visited == n {
				res.Steps = t
				return res
			}
		}
	}
	res.Steps = -1
	return res
}
