package dynwalk

import (
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/graph"
	"repro/internal/markov"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestWalkerStaysOnIsolatedNode(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(1, 2)
	w := NewWalker(dyngraph.NewStatic(b.Build()), 0, rng.New(1))
	for i := 0; i < 10; i++ {
		w.Step()
		if w.Pos() != 0 {
			t.Fatal("walker left an isolated node")
		}
	}
}

func TestWalkerMovesOnEdges(t *testing.T) {
	g := graph.Cycle(5)
	w := NewWalker(dyngraph.NewStatic(g), 0, rng.New(3))
	prev := 0
	for i := 0; i < 50; i++ {
		w.Step()
		if !g.HasEdge(prev, w.Pos()) {
			t.Fatalf("walker jumped %d -> %d (not an edge)", prev, w.Pos())
		}
		prev = w.Pos()
	}
}

func TestWalkerPanicsOnBadStart(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad start did not panic")
		}
	}()
	NewWalker(dyngraph.NewStatic(graph.Cycle(3)), 7, rng.New(1))
}

func TestHittingTimeTrivialAndCapped(t *testing.T) {
	d := dyngraph.NewStatic(graph.Cycle(6))
	if HittingTime(d, 2, 2, 10, rng.New(5)) != 0 {
		t.Fatal("hitting self should be 0")
	}
	// Disconnected target: never hit.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	if HittingTime(dyngraph.NewStatic(b.Build()), 0, 2, 100, rng.New(7)) != -1 {
		t.Fatal("unreachable target should report -1")
	}
}

func TestHittingTimeScalesOnPath(t *testing.T) {
	// Expected hitting time from end to end of a path is Θ(n²).
	r := rng.New(9)
	mean := func(n int) float64 {
		total := 0.0
		const trials = 60
		for i := 0; i < trials; i++ {
			h := HittingTime(dyngraph.NewStatic(graph.Path(n)), 0, n-1, 1<<20, r)
			total += float64(h)
		}
		return total / trials
	}
	m8, m16 := mean(8), mean(16)
	ratio := m16 / m8
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("path hitting scaling = %v, want ~4 (n²)", ratio)
	}
}

func TestCoverTimeCompleteGraph(t *testing.T) {
	// Coupon collector: cover time of K_n is ~ n ln n.
	r := rng.New(11)
	var times []float64
	for i := 0; i < 40; i++ {
		res := CoverTime(dyngraph.NewStatic(graph.Complete(16)), 0, 1<<20, r)
		if res.Steps < 0 || res.Visited != 16 {
			t.Fatalf("cover failed: %+v", res)
		}
		times = append(times, float64(res.Steps))
	}
	med := stats.Median(times)
	// n ln n ≈ 44 for n=16; accept a generous band.
	if med < 15 || med > 120 {
		t.Fatalf("K16 cover median = %v, want ≈ 44", med)
	}
}

func TestCoverTimePartialOnCap(t *testing.T) {
	res := CoverTime(dyngraph.NewStatic(graph.Path(50)), 0, 5, rng.New(13))
	if res.Steps != -1 {
		t.Fatal("tiny cap should not cover")
	}
	if res.Visited < 1 || res.Visited > 6 {
		t.Fatalf("visited = %d after 5 steps", res.Visited)
	}
}

func TestCoverCostConservation(t *testing.T) {
	// The walk's message accounting mirrors the spreading engines': one
	// message per actual move, and every visited node beyond the start was
	// first reached by exactly one move, so
	// Messages == Useless + (Visited - 1) — covered or capped alike.
	for _, cap := range []int{5, 1 << 20} {
		for seed := uint64(1); seed <= 5; seed++ {
			res := CoverTime(dyngraph.NewStatic(graph.Complete(16)), 0, cap, rng.New(seed))
			if res.Useless < 0 || res.Messages < 0 {
				t.Fatalf("negative cost: %+v", res)
			}
			if res.Messages != res.Useless+int64(res.Visited-1) {
				t.Fatalf("conservation violated: %+v", res)
			}
		}
	}
	// An isolated walker never moves: zero cost even though steps elapse.
	b := graph.NewBuilder(2)
	res := CoverTime(dyngraph.NewStatic(b.Build()), 0, 50, rng.New(3))
	if res.Messages != 0 || res.Useless != 0 {
		t.Fatalf("isolated walker reported cost: %+v", res)
	}
}

func TestCoverTimeSingleNode(t *testing.T) {
	b := graph.NewBuilder(1)
	res := CoverTime(dyngraph.NewStatic(b.Build()), 0, 10, rng.New(15))
	if res.Steps != 0 || res.Visited != 1 {
		t.Fatalf("single node cover: %+v", res)
	}
}

func TestHittingTimeMatchesExactOnStaticCycle(t *testing.T) {
	// Cross-validation: the dynamic-walk estimator on a static graph must
	// agree with the exact first-step linear system from markov.
	n := 8
	g := graph.Cycle(n)
	exact, err := markov.RandomWalkChain(g).Dense().ExpectedHittingTimes(0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	const trials = 4000
	start := 3
	total := 0.0
	for i := 0; i < trials; i++ {
		h := HittingTime(dyngraph.NewStatic(g), start, 0, 1<<20, r)
		total += float64(h)
	}
	mean := total / trials
	want := exact[start] // d(n-d) = 3*5 = 15
	if mean < 0.9*want || mean > 1.1*want {
		t.Fatalf("empirical hitting %v vs exact %v", mean, want)
	}
}

func TestCoverOnDynamicGraphBeatsStuckComponents(t *testing.T) {
	// On a static sparse disconnected graph the walk can never cover; on
	// an edge-MEG with the same stationary density, edge churn carries the
	// walker across components — the [2] phenomenon that motivates walks
	// on MEGs.
	params := edgemeg.Params{N: 40, P: 0.005, Q: 0.095} // alpha = 0.05
	staticSnap := dyngraph.Snapshot(edgemeg.NewSparse(params, edgemeg.InitStationary, rng.New(17)))
	if staticSnap.IsConnected() {
		t.Skip("unlucky seed: snapshot connected, pick another seed")
	}
	res := CoverTime(dyngraph.NewStatic(staticSnap), 0, 50000, rng.New(19))
	if res.Steps != -1 {
		t.Fatal("static disconnected snapshot should not be coverable")
	}
	dyn := edgemeg.NewSparse(params, edgemeg.InitStationary, rng.New(17))
	dynRes := CoverTime(dyn, 0, 200000, rng.New(19))
	if dynRes.Steps == -1 {
		t.Fatalf("dynamic graph should be coverable: %+v", dynRes)
	}
}
