package bitset

import "math/bits"

// TwoLevel is a hierarchical bitset over a fixed universe: the same
// word-packed membership array as Set, plus one summary level where bit i
// of summary word w is set iff words[64*w+i] is non-zero. Sweeps that
// only care about the occupied part of the set — iterate members, absorb
// into another set, clear — walk the summary first and touch only
// non-empty leaf words, so they cost O(active words) instead of O(n/64).
//
// That is the asymptotic a million-node flood needs: the active frontier
// of a sparse spreading process is a vanishing fraction of the universe
// for most of the run, and per-step work proportional to n/64 words (even
// at one compare per word) would swamp the O(churn + frontier) budget.
// At n = 10^6 a flat sweep reads 15625 words; a two-level sweep with a
// 100-node frontier reads at most ~345 (245 summary + 100 leaves).
//
// The summary costs n/4096 extra words (one bit per leaf word) — 0.4 KB
// at n = 10^6. Single-bit operations pay one extra word write to keep the
// summary exact; Unset recomputes the leaf's summary bit, so the
// invariant "summary bit set ⇔ leaf word non-zero" holds at all times.
// The zero value is an empty set over the empty universe; size it with
// Reset.
type TwoLevel struct {
	words   []uint64
	summary []uint64
	n       int
}

// NewTwoLevel returns an empty two-level set over {0, ..., n-1}.
func NewTwoLevel(n int) TwoLevel {
	var s TwoLevel
	s.Reset(n)
	return s
}

// Reset re-sizes the set for a universe of n elements and empties it,
// reusing both backing arrays when capacity allows.
func (s *TwoLevel) Reset(n int) {
	w := (n + 63) >> 6
	sw := (w + 63) >> 6
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
		clear(s.words)
	}
	if cap(s.summary) < sw {
		s.summary = make([]uint64, sw)
	} else {
		s.summary = s.summary[:sw]
		clear(s.summary)
	}
	s.n = n
}

// Len returns the universe size n.
func (s *TwoLevel) Len() int { return s.n }

// Bytes returns the heap bytes retained by both levels.
func (s *TwoLevel) Bytes() int64 {
	return int64(cap(s.words))*8 + int64(cap(s.summary))*8
}

// Get reports whether i is a member. The index contract matches Set.Get:
// word-bound checks only, universe slack undetected.
func (s *TwoLevel) Get(i int) bool {
	return s.words[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// Set adds i to the set, marking its leaf word in the summary.
func (s *TwoLevel) Set(i int) {
	w := uint(i) >> 6
	s.words[w] |= 1 << (uint(i) & 63)
	s.summary[w>>6] |= 1 << (w & 63)
}

// Unset removes i from the set, clearing the summary bit when its leaf
// word empties.
func (s *TwoLevel) Unset(i int) {
	w := uint(i) >> 6
	s.words[w] &^= 1 << (uint(i) & 63)
	if s.words[w] == 0 {
		s.summary[w>>6] &^= 1 << (w & 63)
	}
}

// Count returns the number of members, popcounting only active words.
func (s *TwoLevel) Count() int {
	c := 0
	for si, sw := range s.summary {
		base := si << 6
		for sw != 0 {
			c += bits.OnesCount64(s.words[base+bits.TrailingZeros64(sw)])
			sw &= sw - 1
		}
	}
	return c
}

// Any reports whether the set is non-empty, in O(summary words).
func (s *TwoLevel) Any() bool {
	for _, sw := range s.summary {
		if sw != 0 {
			return true
		}
	}
	return false
}

// ClearAll empties the set. Only active leaf words are cleared — the
// summary knows where they are — so a sparse clear is O(active words),
// not a memclr of the whole leaf level.
func (s *TwoLevel) ClearAll() {
	for si, sw := range s.summary {
		base := si << 6
		for sw != 0 {
			s.words[base+bits.TrailingZeros64(sw)] = 0
			sw &= sw - 1
		}
		s.summary[si] = 0
	}
}

// AppendMembers appends the members of s to dst in ascending order,
// walking only active words via the summary.
func (s *TwoLevel) AppendMembers(dst []int32) []int32 {
	for si, sw := range s.summary {
		sbase := si << 6
		for sw != 0 {
			wi := sbase + bits.TrailingZeros64(sw)
			sw &= sw - 1
			base := int32(wi << 6)
			w := s.words[wi]
			for w != 0 {
				dst = append(dst, base+int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	}
	return dst
}

// AbsorbInto merges s into the flat set dst, empties s, and returns the
// number of members newly added to dst — the two-level counterpart of
// Set.Absorb, with the roles arranged for the spreading-step commit:
// pending (sparse, two-level) absorbs into informed (dense, flat). Only
// active words are touched, so the commit is O(frontier words), and the
// returned delta lets the caller maintain |informed| incrementally
// instead of re-popcounting the dense set. The sets must share a
// universe.
func (s *TwoLevel) AbsorbInto(dst *Set) int {
	if s.n != dst.n {
		panic("bitset: AbsorbInto across different universes")
	}
	added := 0
	for si, sw := range s.summary {
		base := si << 6
		for sw != 0 {
			wi := base + bits.TrailingZeros64(sw)
			sw &= sw - 1
			w := s.words[wi]
			added += bits.OnesCount64(w &^ dst.words[wi])
			dst.words[wi] |= w
			s.words[wi] = 0
		}
		s.summary[si] = 0
	}
	return added
}
