package bitset

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestSetAgainstMap drives a Set and a map[int]bool through the same random
// operation sequence and checks membership, count, and iteration agree —
// including at word boundaries (n spans several partial words).
func TestSetAgainstMap(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128, 200} {
		s := New(n)
		ref := map[int]bool{}
		r := rng.New(uint64(n))
		for op := 0; op < 500; op++ {
			i := r.Intn(n)
			if r.Bool(0.7) {
				s.Set(i)
				ref[i] = true
			} else {
				s.Unset(i)
				delete(ref, i)
			}
			if got, want := s.Get(i), ref[i]; got != want {
				t.Fatalf("n=%d Get(%d) = %v, want %v", n, i, got, want)
			}
		}
		if got, want := s.Count(), len(ref); got != want {
			t.Fatalf("n=%d Count = %d, want %d", n, got, want)
		}
		members := s.AppendMembers(nil)
		if len(members) != len(ref) {
			t.Fatalf("n=%d AppendMembers returned %d members, want %d", n, len(members), len(ref))
		}
		for idx, m := range members {
			if !ref[int(m)] {
				t.Fatalf("n=%d AppendMembers yielded non-member %d", n, m)
			}
			if idx > 0 && members[idx-1] >= m {
				t.Fatalf("n=%d AppendMembers not ascending: %v", n, members)
			}
		}
		unset := s.AppendUnset(nil)
		if len(unset)+len(members) != n {
			t.Fatalf("n=%d members (%d) + unset (%d) != n", n, len(members), len(unset))
		}
		for _, u := range unset {
			if ref[int(u)] {
				t.Fatalf("n=%d AppendUnset yielded member %d", n, u)
			}
		}
	}
}

func TestAbsorbMatchesUnionCountClear(t *testing.T) {
	f := func(seedA, seedB uint16, nn uint8) bool {
		n := int(nn)%150 + 1
		a, b := New(n), New(n)
		a2, b2 := New(n), New(n)
		ra, rb := rng.New(uint64(seedA)), rng.New(uint64(seedB))
		for i := 0; i < n; i++ {
			if ra.Bool(0.3) {
				a.Set(i)
				a2.Set(i)
			}
			if rb.Bool(0.3) {
				b.Set(i)
				b2.Set(i)
			}
		}
		got := a.Absorb(&b)
		a2.UnionWith(&b2)
		b2.ClearAll()
		if got != a2.Count() || b.Count() != 0 {
			return false
		}
		for i := 0; i < n; i++ {
			if a.Get(i) != a2.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestResetReuses pins the warm-path contract: a Reset to any size not
// exceeding a previous one reuses the backing array and empties the set.
func TestResetReuses(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	words := &s.words[0]
	s.Reset(130)
	if &s.words[0] != words {
		t.Fatal("Reset to a smaller universe reallocated")
	}
	if s.Len() != 130 || s.Count() != 0 {
		t.Fatalf("Reset left Len=%d Count=%d", s.Len(), s.Count())
	}
	// Stale bits from the old, larger universe must not leak into the
	// complement view of the new one.
	if got := len(s.AppendUnset(nil)); got != 130 {
		t.Fatalf("AppendUnset after shrink returned %d indices, want 130", got)
	}
	s.Reset(4096)
	if s.Count() != 0 || s.Len() != 4096 {
		t.Fatal("Reset to a larger universe not empty")
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Absorb across universes did not panic")
		}
	}()
	a, b := New(10), New(20)
	a.Absorb(&b)
}

func TestZeroValue(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Count() != 0 || len(s.AppendMembers(nil)) != 0 {
		t.Fatal("zero value is not the empty set")
	}
	s.Reset(70)
	s.Set(69)
	if !s.Get(69) || s.Count() != 1 {
		t.Fatal("zero value unusable after Reset")
	}
}
