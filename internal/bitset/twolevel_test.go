package bitset

import (
	"math/bits"
	"testing"
)

// TwoLevel is property-tested against the flat Set as the reference: both
// are driven through the same operation stream, and every accessor the
// flood engines use — Get, Count, Any, AppendMembers, ClearAll,
// AbsorbInto — must agree. The summary invariant (bit set ⇔ leaf word
// non-zero) is checked directly after every stream, because a stale
// summary bit is invisible to Get yet silently drops members from the
// O(active-words) sweeps.

func checkSummaryInvariant(t *testing.T, s *TwoLevel) {
	t.Helper()
	for wi, w := range s.words {
		got := s.summary[wi>>6]&(1<<(uint(wi)&63)) != 0
		if got != (w != 0) {
			t.Fatalf("summary bit for word %d is %v, word = %#x", wi, got, w)
		}
	}
}

func FuzzTwoLevel(f *testing.F) {
	f.Add(1, []byte{})
	f.Add(64, []byte{0xff, 0x01})
	f.Add(65, []byte{7, 7, 7, 7})
	f.Add(4097, []byte{1, 3, 5, 2, 4, 6}) // straddles a summary word
	f.Add(5000, []byte{0, 64, 128, 192, 255})
	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n < 1 || n > 1<<15 {
			t.Skip()
		}
		var tl TwoLevel
		tl.Reset(n)
		ref := New(n)
		// Spread the byte stream across the universe: byte k drives element
		// (k*4099+7) % n, so runs hit distinct leaf AND summary words.
		for k, b := range data {
			i := (k*4099 + 7) % n
			if b&1 != 0 {
				tl.Set(i)
				ref.Set(i)
			}
			if b&2 != 0 {
				tl.Unset(i)
				ref.Unset(i)
			}
		}
		checkSummaryInvariant(t, &tl)

		for i := 0; i < n; i++ {
			if tl.Get(i) != ref.Get(i) {
				t.Fatalf("n=%d: Get(%d) = %v, reference %v", n, i, tl.Get(i), ref.Get(i))
			}
		}
		wantCount := ref.Count()
		if got := tl.Count(); got != wantCount {
			t.Fatalf("n=%d: Count = %d, reference %d", n, got, wantCount)
		}
		if tl.Any() != (wantCount > 0) {
			t.Fatalf("n=%d: Any = %v with %d members", n, tl.Any(), wantCount)
		}

		got := tl.AppendMembers(nil)
		want := ref.AppendMembers(nil)
		if len(got) != len(want) {
			t.Fatalf("n=%d: AppendMembers returned %d members, reference %d", n, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("n=%d: AppendMembers[%d] = %d, reference %d", n, k, got[k], want[k])
			}
		}

		// AbsorbInto against a partially-overlapping destination: the return
		// value must be the count of genuinely new members.
		dst := New(n)
		overlap := 0
		for k, i := range want {
			if k%2 == 0 {
				dst.Set(int(i))
				overlap++
			}
		}
		added := tl.AbsorbInto(&dst)
		if added != wantCount-overlap {
			t.Fatalf("n=%d: AbsorbInto added %d, want %d", n, added, wantCount-overlap)
		}
		if dst.Count() != wantCount {
			t.Fatalf("n=%d: destination has %d members after absorb, want %d", n, dst.Count(), wantCount)
		}
		if tl.Any() || tl.Count() != 0 {
			t.Fatalf("n=%d: AbsorbInto left the source non-empty", n)
		}
		checkSummaryInvariant(t, &tl)

		// ClearAll from a rebuilt set leaves no stale leaf words behind.
		for _, i := range want {
			tl.Set(int(i))
		}
		tl.ClearAll()
		if tl.Any() || tl.Count() != 0 || len(tl.AppendMembers(nil)) != 0 {
			t.Fatalf("n=%d: ClearAll left members behind", n)
		}
		checkSummaryInvariant(t, &tl)
		for _, w := range tl.words {
			if w != 0 {
				t.Fatalf("n=%d: ClearAll left a non-zero leaf word", n)
			}
		}
	})
}

// TestTwoLevelSparseSweep pins the O(active words) claim structurally: a
// single member in a large universe must make AppendMembers touch exactly
// one leaf word, which the summary popcount witnesses.
func TestTwoLevelSparseSweep(t *testing.T) {
	tl := NewTwoLevel(1 << 20)
	tl.Set(777_777)
	active := 0
	for _, sw := range tl.summary {
		active += bits.OnesCount64(sw)
	}
	if active != 1 {
		t.Fatalf("one member lit %d summary bits, want 1", active)
	}
	if m := tl.AppendMembers(nil); len(m) != 1 || m[0] != 777_777 {
		t.Fatalf("AppendMembers = %v, want [777777]", m)
	}
	tl.Unset(777_777)
	if tl.Any() {
		t.Fatal("Unset of the only member left the set non-empty")
	}
}
