package bitset

import (
	"math/bits"
	"testing"
)

// Fuzz coverage for the word-level fused operations the spreading engines
// lean on — Absorb (union + popcount + clear in one pass) and the
// word-skipping iterators — with universes deliberately straddling word
// boundaries, where the final word's slack bits hide off-by-one bugs.
// Memberships are driven by raw fuzz bytes: byte k toggles element
// (k*7+3) % n, so adjacent corpus entries exercise different words.

func buildSets(n int, data []byte) (s, t Set) {
	s, t = New(n), New(n)
	for k, b := range data {
		i := (k*7 + 3) % n
		if b&1 != 0 {
			s.Set(i)
		}
		if b&2 != 0 {
			t.Set(i)
		}
		if b&4 != 0 {
			s.Unset(i)
		}
	}
	return s, t
}

func FuzzSetOps(f *testing.F) {
	f.Add(1, []byte{})
	f.Add(63, []byte{1, 2, 3})
	f.Add(64, []byte{0xff, 0x01})
	f.Add(65, []byte{7, 7, 7, 7})
	f.Add(130, []byte{1, 3, 5, 2, 4, 6})
	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n < 1 || n > 4096 {
			t.Skip()
		}
		a, b := buildSets(n, data)

		// Reference membership arrays.
		am, bm := make([]bool, n), make([]bool, n)
		for i := 0; i < n; i++ {
			am[i], bm[i] = a.Get(i), b.Get(i)
		}

		// Count matches the reference popcount.
		wantCount := 0
		for _, on := range am {
			if on {
				wantCount++
			}
		}
		if got := a.Count(); got != wantCount {
			t.Fatalf("n=%d: Count = %d, reference %d", n, got, wantCount)
		}

		// AppendMembers and AppendUnset partition the universe, ascending,
		// with nothing from the final word's slack [n, 64*ceil(n/64)).
		members := a.AppendMembers(nil)
		unset := a.AppendUnset(nil)
		if len(members)+len(unset) != n {
			t.Fatalf("n=%d: %d members + %d unset != n", n, len(members), len(unset))
		}
		seen := make([]bool, n)
		for _, lst := range [][]int32{members, unset} {
			for k, i := range lst {
				if int(i) < 0 || int(i) >= n {
					t.Fatalf("n=%d: index %d out of universe", n, i)
				}
				if k > 0 && lst[k-1] >= i {
					t.Fatalf("n=%d: iteration not ascending at %d", n, i)
				}
				seen[i] = true
			}
		}
		for _, i := range members {
			if !am[i] {
				t.Fatalf("n=%d: AppendMembers reported non-member %d", n, i)
			}
		}
		for _, i := range unset {
			if am[i] {
				t.Fatalf("n=%d: AppendUnset reported member %d", n, i)
			}
		}

		// Absorb == union + popcount + clear, in one pass.
		gotSize := a.Absorb(&b)
		wantSize := 0
		for i := 0; i < n; i++ {
			union := am[i] || bm[i]
			if union {
				wantSize++
			}
			if a.Get(i) != union {
				t.Fatalf("n=%d: after Absorb, a.Get(%d) = %v, want %v", n, i, a.Get(i), union)
			}
			if b.Get(i) {
				t.Fatalf("n=%d: Absorb left bit %d set in the absorbed set", n, i)
			}
		}
		if gotSize != wantSize {
			t.Fatalf("n=%d: Absorb returned %d, union has %d members", n, gotSize, wantSize)
		}
		if b.Count() != 0 {
			t.Fatalf("n=%d: absorbed set has Count %d, want 0", n, b.Count())
		}

		// The final word carries no bits beyond the universe (the Get/Set
		// contract engines rely on for Count and Absorb correctness).
		if w := len(a.words); w > 0 {
			if r := uint(n) & 63; r != 0 {
				if slack := a.words[w-1] &^ ((1 << r) - 1); slack != 0 {
					t.Fatalf("n=%d: %d slack bits set beyond the universe",
						n, bits.OnesCount64(slack))
				}
			}
		}
	})
}
