// Package bitset provides the word-packed node-set representation used by
// the spreading-process hot paths: 64 membership bits per machine word, so
// an informed set over n nodes costs n/8 bytes (instead of n bytes as
// []bool), membership updates are single-word OR/AND-NOT operations, set
// union is a word-wise OR sweep, and counting is popcount — all
// cache-friendly and allocation-free once the backing array exists.
//
// A Set is sized for a fixed universe {0, ..., n-1} at New/Reset time and
// reuses its backing words across Resets whenever capacity allows, which is
// what lets internal/flood's Scratch amortize all set storage across the
// trials of a sweep.
package bitset

import "math/bits"

// Set is a fixed-universe bitset over {0, ..., Len()-1}. The zero value is
// an empty set over the empty universe; size it with Reset. Sets are not
// safe for concurrent mutation.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe {0, ..., n-1}.
func New(n int) Set {
	var s Set
	s.Reset(n)
	return s
}

// Reset re-sizes the set for a universe of n elements and empties it,
// reusing the backing array when it is large enough. It is the warm-path
// entry: after the first Reset at a given size, later Resets allocate
// nothing.
func (s *Set) Reset(n int) {
	w := (n + 63) >> 6
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
		clear(s.words)
	}
	s.n = n
}

// Len returns the universe size n.
func (s *Set) Len() int { return s.n }

// Bytes returns the heap bytes retained by the backing array — the set's
// contribution to a scratch-footprint gauge.
func (s *Set) Bytes() int64 { return int64(cap(s.words)) * 8 }

// Get reports whether i is a member. Indices must be in [0, Len()): the
// hot-path accessors check only the word bound (negative or far-out
// indices panic like a slice access), so an index in the last word's
// slack [Len(), 64·⌈Len()/64⌉) is NOT detected — and a bit planted there
// by Set would corrupt Count and Absorb. Engines guarantee valid indices;
// no range check is paid for them.
func (s *Set) Get(i int) bool {
	return s.words[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// Set adds i to the set. See Get for the index contract.
func (s *Set) Set(i int) {
	s.words[uint(i)>>6] |= 1 << (uint(i) & 63)
}

// Unset removes i from the set. See Get for the index contract.
func (s *Set) Unset(i int) {
	s.words[uint(i)>>6] &^= 1 << (uint(i) & 63)
}

// Count returns the number of members, by popcount over the words.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ClearAll empties the set, keeping its universe and backing array.
func (s *Set) ClearAll() {
	clear(s.words)
}

// UnionWith adds every member of t to s. The sets must share a universe.
func (s *Set) UnionWith(t *Set) {
	if s.n != t.n {
		panic("bitset: UnionWith across different universes")
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Absorb merges t into s, empties t, and returns the new member count of s
// — the fused commit + popcount + clear that ends one spreading step
// (informed |= pending; |informed|; pending = ∅) in a single pass over the
// words. The sets must share a universe.
func (s *Set) Absorb(t *Set) int {
	if s.n != t.n {
		panic("bitset: Absorb across different universes")
	}
	c := 0
	for i, w := range t.words {
		merged := s.words[i] | w
		s.words[i] = merged
		t.words[i] = 0
		c += bits.OnesCount64(merged)
	}
	return c
}

// AppendMembers appends the members of s to dst in ascending order and
// returns the extended slice. Iteration is word-level: whole empty words
// are skipped in one compare, and set bits are extracted with
// trailing-zero counts.
func (s *Set) AppendMembers(dst []int32) []int32 {
	for wi, w := range s.words {
		base := int32(wi << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// AppendUnset appends the non-members of s (within the universe) to dst in
// ascending order and returns the extended slice. Fully-set words — the
// common case late in a spreading process, when almost every node is
// informed — are skipped in one compare.
func (s *Set) AppendUnset(dst []int32) []int32 {
	for wi, w := range s.words {
		u := ^w
		if wi == len(s.words)-1 {
			if r := uint(s.n) & 63; r != 0 {
				u &= (1 << r) - 1
			}
		}
		base := int32(wi << 6)
		for u != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(u)))
			u &= u - 1
		}
	}
	return dst
}
