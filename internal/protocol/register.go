package protocol

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/rng"
	"repro/internal/spec"
)

// The built-in protocol family. Each implementation is a thin wrapper
// binding resolved parameters (and, where the protocol is randomized, a
// private RNG stream) to one engine of internal/flood.

// floodProto is the deterministic flooding process of Section 2.
type floodProto struct{}

func (floodProto) Run(d dyngraph.Dynamic, source int, opts flood.Opts) flood.Result {
	return flood.Run(d, source, opts)
}

// pushProto is the §5 randomized protocol: informed nodes contact at most
// k random current neighbors per step.
type pushProto struct {
	k int
	r *rng.RNG
}

func (p *pushProto) Run(d dyngraph.Dynamic, source int, opts flood.Opts) flood.Result {
	return flood.RandomizedPush(d, source, p.k, p.r, opts)
}

// pullProto is pull gossip: uninformed nodes query one random current
// neighbor per step.
type pullProto struct {
	r *rng.RNG
}

func (p *pullProto) Run(d dyngraph.Dynamic, source int, opts flood.Opts) flood.Result {
	return flood.Pull(d, source, p.r, opts)
}

// pushPullProto combines k-push and pull in one synchronous sweep.
type pushPullProto struct {
	k int
	r *rng.RNG
}

func (p *pushPullProto) Run(d dyngraph.Dynamic, source int, opts flood.Opts) flood.Result {
	return flood.PushPull(d, source, p.k, p.r, opts)
}

// asyncProto is the asynchronous Poisson-clock push protocol: nodes fire
// on private exponential clocks (rate expected firings per graph step) and
// informed firings push to one random current neighbor. Each Run derives a
// fresh clock seed from the protocol's stream, so one built instance runs
// independent trials like the other randomized protocols.
type asyncProto struct {
	rate float64
	r    *rng.RNG
}

func (p *asyncProto) Run(d dyngraph.Dynamic, source int, opts flood.Opts) flood.Result {
	return flood.Async(d, source, p.rate, p.r.Uint64(), opts)
}

// parsimoniousProto is the bounded-activity-window flooding of [4].
type parsimoniousProto struct {
	active int
}

func (p *parsimoniousProto) Run(d dyngraph.Dynamic, source int, opts flood.Opts) flood.Result {
	return flood.Parsimonious(d, source, p.active, opts)
}

// kParam declares the shared fan-out parameter of the push variants.
func kParam(help string) spec.Param {
	return spec.Param{Name: "k", Kind: spec.Int, Default: "1", Help: help}
}

func positive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s must be > 0, got %d", name, v)
	}
	return nil
}

func init() {
	Register(Definition{
		Name: "flood",
		Help: "flooding (§2): every informed node transmits on every current edge; per-step cost O(|E_t|)",
		Build: func(a spec.Args, r *rng.RNG) (Protocol, error) {
			return floodProto{}, nil
		},
	})

	Register(Definition{
		Name:   "push",
		Help:   "randomized k-push (§5): informed nodes contact ≤ k random neighbors; per-step cost O(Σ_informed deg)",
		Params: []spec.Param{kParam("max contacts per informed node per step")},
		Build: func(a spec.Args, r *rng.RNG) (Protocol, error) {
			k := a.Int("k")
			if err := positive("k", k); err != nil {
				return nil, err
			}
			return &pushProto{k: k, r: r}, nil
		},
	})

	Register(Definition{
		Name: "pull",
		Help: "pull gossip: uninformed nodes query one random neighbor; per-step cost O(Σ_uninformed deg)",
		Build: func(a spec.Args, r *rng.RNG) (Protocol, error) {
			return &pullProto{r: r}, nil
		},
	})

	Register(Definition{
		Name:   "pushpull",
		Help:   "combined push–pull: informed nodes k-push while uninformed nodes pull; cost between push and pull",
		Params: []spec.Param{kParam("max push contacts per informed node per step")},
		Build: func(a spec.Args, r *rng.RNG) (Protocol, error) {
			k := a.Int("k")
			if err := positive("k", k); err != nil {
				return nil, err
			}
			return &pushPullProto{k: k, r: r}, nil
		},
	})

	Register(Definition{
		Name: "async",
		Help: "asynchronous push (Pourmiri–Mans): per-node Poisson clocks of the given rate fire against the current snapshot; informed firings push to one random neighbor",
		Params: []spec.Param{
			{Name: "rate", Kind: spec.Float, Default: "1", Help: "expected clock firings per node per graph step"},
		},
		Build: func(a spec.Args, r *rng.RNG) (Protocol, error) {
			rate := a.Float("rate")
			if !(rate > 0) {
				return nil, fmt.Errorf("rate must be > 0, got %v", rate)
			}
			return &asyncProto{rate: rate, r: r}, nil
		},
	})

	Register(Definition{
		Name: "parsimonious",
		Help: "parsimonious flooding [4]: nodes transmit only for `active` steps after infection; per-step cost O(Σ_active deg)",
		Params: []spec.Param{
			{Name: "active", Kind: spec.Int, Default: "8", Help: "transmission window after becoming informed"},
		},
		Build: func(a spec.Args, r *rng.RNG) (Protocol, error) {
			active := a.Int("active")
			if err := positive("active", active); err != nil {
				return nil, err
			}
			return &parsimoniousProto{active: active}, nil
		},
	})
}
