package protocol_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// megSpec is the fixed edge-MEG every cross-protocol test runs on.
var megSpec = model.New("edgemeg").WithInt("n", 128).WithFloat("p", 0.02).WithFloat("q", 0.2)

const (
	modelSeed = 7
	protoSeed = 99
)

// allSpecs returns one representative spec per registered protocol, and
// fails the test if a protocol has no entry — new registrations must be
// added here.
func allSpecs(t *testing.T) []protocol.Spec {
	t.Helper()
	specs := map[string]protocol.Spec{
		"flood":        protocol.New("flood"),
		"push":         protocol.New("push").WithInt("k", 2),
		"pull":         protocol.New("pull"),
		"pushpull":     protocol.New("pushpull").WithInt("k", 1),
		"parsimonious": protocol.New("parsimonious").WithInt("active", 8),
		"async":        protocol.New("async").WithFloat("rate", 1),
	}
	names := protocol.Names()
	out := make([]protocol.Spec, 0, len(names))
	for _, name := range names {
		s, ok := specs[name]
		if !ok {
			t.Fatalf("registered protocol %q has no test spec — add it to allSpecs", name)
		}
		out = append(out, s)
	}
	return out
}

func TestSpecRoundTripEveryProtocol(t *testing.T) {
	for _, s := range allSpecs(t) {
		text := s.String()
		back, err := protocol.Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if back.String() != text {
			t.Errorf("round trip of %q: got %q", text, back.String())
		}
		if !reflect.DeepEqual(back.Params, s.Params) || back.Name != s.Name {
			t.Errorf("round trip of %q changed the spec: %+v vs %+v", text, back, s)
		}
		if _, err := protocol.Build(back, protoSeed); err != nil {
			t.Errorf("building re-parsed %q: %v", text, err)
		}
	}
}

func TestDefaultsBuildEveryProtocol(t *testing.T) {
	for _, name := range protocol.Names() {
		if _, err := protocol.Build(protocol.New(name), protoSeed); err != nil {
			t.Errorf("default-parameter build of %q: %v", name, err)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	for _, s := range []protocol.Spec{
		protocol.New("no-such-protocol"),
		protocol.New("flood").With("bogus", "1"),
		protocol.New("push").With("k", "0"),
		protocol.New("push").With("k", "many"),
		protocol.New("pushpull").WithInt("k", -1),
		protocol.New("parsimonious").WithInt("active", 0),
		protocol.New("async").WithFloat("rate", 0),
		protocol.New("async").WithFloat("rate", -2),
	} {
		if _, err := protocol.Build(s, 1); err == nil {
			t.Errorf("Build(%v) succeeded, want error", s)
		}
	}
}

// TestSpecBuiltMatchesDirectCall pins the acceptance criterion of the
// registry redesign: a spec-built protocol reproduces the direct engine
// call exactly — same model seed, same protocol seed, identical Result
// including the timeline.
func TestSpecBuiltMatchesDirectCall(t *testing.T) {
	opts := flood.Opts{MaxSteps: 1 << 14, KeepTimeline: true}
	direct := map[string]func() flood.Result{
		"flood": func() flood.Result {
			return flood.Run(model.MustBuild(megSpec, modelSeed), 0, opts)
		},
		"push:k=2": func() flood.Result {
			return flood.RandomizedPush(model.MustBuild(megSpec, modelSeed), 0, 2, rng.New(protoSeed), opts)
		},
		"pull": func() flood.Result {
			return flood.Pull(model.MustBuild(megSpec, modelSeed), 0, rng.New(protoSeed), opts)
		},
		"pushpull:k=1": func() flood.Result {
			return flood.PushPull(model.MustBuild(megSpec, modelSeed), 0, 1, rng.New(protoSeed), opts)
		},
		"parsimonious:active=8": func() flood.Result {
			return flood.Parsimonious(model.MustBuild(megSpec, modelSeed), 0, 8, opts)
		},
		"async:rate=1": func() flood.Result {
			// The async adapter draws one clock seed from its protocol RNG
			// per Run, so the direct call derives it the same way.
			return flood.Async(model.MustBuild(megSpec, modelSeed), 0, 1, rng.New(protoSeed).Uint64(), opts)
		},
	}
	for text, call := range direct {
		s, err := protocol.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		p, err := protocol.Build(s, protoSeed)
		if err != nil {
			t.Fatal(err)
		}
		got := p.Run(model.MustBuild(megSpec, modelSeed), 0, opts)
		want := call()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: spec-built result %+v != direct-call result %+v", text, got, want)
		}
	}
}

// TestCrossProtocolInvariants runs every registered protocol on the same
// fixed-seed edge-MEG realization and checks the structural invariants
// that hold across the family.
func TestCrossProtocolInvariants(t *testing.T) {
	opts := flood.Opts{MaxSteps: 1 << 14, KeepTimeline: true}
	results := map[string]flood.Result{}
	for _, s := range allSpecs(t) {
		p := protocol.MustBuild(s, protoSeed)
		res := p.Run(model.MustBuild(megSpec, modelSeed), 0, opts)
		results[s.Name] = res

		if !flood.GrowthIsMonotone(res.Timeline) {
			t.Errorf("%s: timeline not non-decreasing: %v", s.Name, res.Timeline)
		}
		if last := res.Timeline[len(res.Timeline)-1]; res.Informed != last {
			t.Errorf("%s: Informed = %d but Timeline ends at %d", s.Name, res.Informed, last)
		}
		if !res.Completed {
			t.Errorf("%s: did not complete on the test MEG (informed %d)", s.Name, res.Informed)
		}
	}
	// Flooding transmits on every edge every step: no protocol variant on
	// the same graph realization can beat it, and parsimonious (a
	// restriction of flooding) can only be slower or equal.
	if results["flood"].Time > results["parsimonious"].Time {
		t.Errorf("flooding (%d) slower than parsimonious (%d)",
			results["flood"].Time, results["parsimonious"].Time)
	}
	// Push–pull does strictly more contact work per step than pull alone.
	// Unlike flood-vs-parsimonious this is not pathwise dominance (the two
	// consume different RNG sequences), so the check is pinned to this
	// (model seed, protocol seed, MEG) tuple, where the expected gap is
	// wide; re-pin the seeds if an engine's RNG consumption order changes.
	if results["pushpull"].Time > results["pull"].Time {
		t.Errorf("push–pull (%d) slower than pull (%d)",
			results["pushpull"].Time, results["pull"].Time)
	}
}

func TestFloodingHelperMatchesRegistry(t *testing.T) {
	opts := flood.Opts{MaxSteps: 1 << 14, KeepTimeline: true}
	a := protocol.Flooding().Run(model.MustBuild(megSpec, modelSeed), 0, opts)
	b := protocol.MustBuild(protocol.New("flood"), 0).Run(model.MustBuild(megSpec, modelSeed), 0, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Flooding() result differs from registry flood: %+v vs %+v", a, b)
	}
}

func TestUsageListsEveryProtocol(t *testing.T) {
	usage := protocol.Usage()
	for _, name := range protocol.Names() {
		if !strings.Contains(usage, name+" —") {
			t.Errorf("Usage() missing protocol %q:\n%s", name, usage)
		}
	}
}
