// Package protocol is the spec-driven selection layer for spreading
// protocols, mirroring the model registry of internal/model: a registry
// mapping protocol names plus typed parameters to runnable Protocol
// instances. Every entry point — CLIs, examples, the bench harness —
// selects spreading processes through Build(spec, seed)
// ("push:k=2", "parsimonious:active=8"), so any (model, protocol) pair of
// the paper's family is one pair of spec strings, runnable at scale
// through internal/study.
//
// The built-in protocols (flood, push, pull, pushpull, parsimonious) wrap
// the engines of internal/flood, which share one Result bookkeeping core;
// production callers go through this registry rather than invoking the
// engines directly, so adding a protocol is a registration in this
// package, not an edit to every binary.
package protocol

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/rng"
	"repro/internal/spec"
)

// Protocol is one runnable spreading process. Implementations hold their
// resolved parameters and, for randomized protocols, a private RNG stream
// seeded at Build time — so a Protocol instance is single-use where
// reproducibility matters: build one per trial from a per-trial seed
// (internal/study does this), and never share one across concurrent runs.
type Protocol interface {
	// Run executes the process on d from source and reports the result.
	// The call is scratch-aware through opts: a caller running many
	// sequential trials sets opts.Scratch once (internal/study gives each
	// worker its own) and every engine reuses those buffers instead of
	// allocating per trial; results are identical either way.
	Run(d dyngraph.Dynamic, source int, opts flood.Opts) flood.Result
}

// Spec names a protocol and its parameters in textual form.
type Spec = spec.Spec

// New returns a Spec for the named protocol with default parameters.
func New(name string) Spec { return spec.New(name) }

// Parse reads a spec from its CLI form "name" or "name:key=value,...".
func Parse(text string) (Spec, error) { return spec.Parse(text) }

// Definition registers a buildable spreading protocol.
type Definition struct {
	// Name is the registry key, as written in specs.
	Name string
	// Help is a one-line description for CLI listings.
	Help string
	// Params declares the accepted parameters; Build sees every declared
	// parameter, with defaults filled in.
	Params []spec.Param
	// Build constructs the protocol. All randomness must come from r so
	// that equal (Spec, seed) pairs yield identical processes.
	Build func(args spec.Args, r *rng.RNG) (Protocol, error)
}

// Meta implements spec.Definition.
func (d Definition) Meta() spec.Meta {
	return spec.Meta{Name: d.Name, Help: d.Help, Params: d.Params}
}

var registry = spec.NewRegistry[Definition]("protocol")

// Register adds a protocol definition. It panics on duplicate names or
// malformed definitions — registration runs from init functions, where
// failing loudly at program start is the correct behavior.
func Register(def Definition) {
	if def.Build == nil {
		panic("protocol: Register needs a build function")
	}
	registry.Register(def)
}

// Lookup returns the definition registered under name.
func Lookup(name string) (Definition, bool) { return registry.Lookup(name) }

// Names returns the registered protocol names, sorted.
func Names() []string { return registry.Names() }

// Usage returns a multi-line listing of every registered protocol and its
// parameters, for CLI help output.
func Usage() string { return registry.Usage() }

// Resolve validates spec against the registered definition and returns the
// fully-populated argument set.
func Resolve(s Spec) (Definition, spec.Args, error) { return registry.Resolve(s) }

// Build constructs the protocol described by spec, drawing all randomness
// from a fresh rng seeded with seed. Equal (spec, seed) pairs build
// identical processes; derive per-trial seeds with rng.Seed for
// independent trials.
func Build(s Spec, seed uint64) (Protocol, error) {
	def, args, err := Resolve(s)
	if err != nil {
		return nil, err
	}
	p, err := def.Build(args, rng.New(seed))
	if err != nil {
		return nil, fmt.Errorf("protocol: building %s: %w", def.Name, err)
	}
	return p, nil
}

// MustBuild is Build for callers whose specs are static program text
// (examples, experiments); it panics on error.
func MustBuild(s Spec, seed uint64) Protocol {
	p, err := Build(s, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// Flooding returns the deterministic plain-flooding protocol — the one
// Protocol that needs no parameters and no RNG stream. Factory-style
// callers (internal/study.Trials) use it to run flooding grids without
// spec ceremony; it is safe to share across concurrent trials.
func Flooding() Protocol { return floodProto{} }
