package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !almostEq(s.Var, 2.5, 1e-12) {
		t.Fatalf("variance = %v, want 2.5", s.Var)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.Median) {
		t.Fatalf("empty summary should be NaN-marked: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Var != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single summary wrong: %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4, 6})
	if s.Mean != 4 || s.Median != 4 {
		t.Fatalf("ints summary wrong: %+v", s)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint16) bool {
		n := int(seed%100) + 2
		xs := make([]float64, n)
		var o Online
		for i := range xs {
			xs[i] = r.NormFloat64()*3 + 1
			o.Add(xs[i])
		}
		s := Summarize(xs)
		return almostEq(o.Mean(), s.Mean, 1e-9) &&
			almostEq(o.Var(), s.Var, 1e-9*math.Max(1, s.Var)) &&
			o.Min() == s.Min && o.Max() == s.Max && o.N() == s.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if !math.IsNaN(o.Mean()) || !math.IsNaN(o.Min()) || o.Var() != 0 {
		t.Fatal("empty Online should be NaN mean/min and zero var")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInvalid(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, -0.1)) {
		t.Fatal("q < 0 should be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, 1.1)) {
		t.Fatal("q > 1 should be NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := rng.New(9)
	f := func(n uint8) bool {
		m := int(n%40) + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianInts(t *testing.T) {
	if MedianInts([]int{1, 2, 3, 100}) != 2.5 {
		t.Fatal("MedianInts wrong")
	}
}

func TestIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := IQR(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("IQR = %v, want 2", got)
	}
}

func TestMeanCI95CoversTruth(t *testing.T) {
	// ~95% of intervals from a known distribution should contain the mean.
	r := rng.New(12)
	covered := 0
	const reps = 400
	for rep := 0; rep < reps; rep++ {
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.NormFloat64() + 10
		}
		if MeanCI95(xs).Contains(10) {
			covered++
		}
	}
	frac := float64(covered) / reps
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("CI coverage %v, want ≈0.95", frac)
	}
}

func TestMeanCI95Degenerate(t *testing.T) {
	ci := MeanCI95([]float64{3})
	if ci.Point != 3 || ci.Lo != 3 || ci.Hi != 3 {
		t.Fatalf("degenerate CI wrong: %+v", ci)
	}
}

func TestProportionCI95(t *testing.T) {
	ci := ProportionCI95(50, 100)
	if !ci.Contains(0.5) {
		t.Fatalf("CI for 50/100 should contain 0.5: %+v", ci)
	}
	zero := ProportionCI95(0, 100)
	if zero.Lo != 0 || zero.Hi <= 0 || zero.Hi > 0.1 {
		t.Fatalf("CI for 0/100 unreasonable: %+v", zero)
	}
	full := ProportionCI95(100, 100)
	if full.Hi != 1 || full.Lo >= 1 || full.Lo < 0.9 {
		t.Fatalf("CI for 100/100 unreasonable: %+v", full)
	}
	if !math.IsNaN(ProportionCI95(0, 0).Point) {
		t.Fatal("CI with n=0 should be NaN")
	}
}

func TestCIWidth(t *testing.T) {
	ci := CI{Point: 1, Lo: 0.5, Hi: 1.5}
	if ci.Width() != 1 {
		t.Fatal("Width wrong")
	}
}
