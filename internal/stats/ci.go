package stats

import "math"

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point float64
	Lo    float64
	Hi    float64
}

// Width returns Hi - Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// Contains reports whether v lies inside the interval (inclusive).
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// MeanCI95 returns the normal-approximation 95% confidence interval for the
// mean of xs. With fewer than two observations the interval degenerates to
// the point estimate.
func MeanCI95(xs []float64) CI {
	s := Summarize(xs)
	if s.N < 2 {
		return CI{Point: s.Mean, Lo: s.Mean, Hi: s.Mean}
	}
	half := 1.96 * s.Std / math.Sqrt(float64(s.N))
	return CI{Point: s.Mean, Lo: s.Mean - half, Hi: s.Mean + half}
}

// ProportionCI95 returns the Wilson score 95% interval for a binomial
// proportion with k successes out of n trials. Wilson behaves sensibly even
// for k = 0 or k = n, unlike the Wald interval.
func ProportionCI95(k, n int) CI {
	if n <= 0 {
		return CI{Point: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	ci := CI{Point: p, Lo: math.Max(0, center-half), Hi: math.Min(1, center+half)}
	// Pin exact endpoints: a 0/n or n/n sample always contains its boundary.
	if k == 0 {
		ci.Lo = 0
	}
	if k == n {
		ci.Hi = 1
	}
	return ci
}
