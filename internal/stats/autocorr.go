package stats

import "math"

// Autocorrelation returns the lag-k sample autocorrelation of xs:
//
//	r_k = Σ_{t<n-k} (x_t - x̄)(x_{t+k} - x̄) / Σ_t (x_t - x̄)²
//
// It returns NaN for k < 0, k >= len(xs), or a constant series. Used to
// quantify temporal burstiness of edge processes (E16): a two-state chain
// has r_k = (1-p-q)^k exactly; heavier-than-geometric decay indicates
// multi-timescale dynamics.
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n {
		return math.NaN()
	}
	mean := Mean(xs)
	var num, den float64
	for t := 0; t < n; t++ {
		d := xs[t] - mean
		den += d * d
		if t+k < n {
			num += d * (xs[t+k] - mean)
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// AutocorrelationFn returns r_1..r_maxLag as a slice.
func AutocorrelationFn(xs []float64, maxLag int) []float64 {
	out := make([]float64, maxLag)
	for k := 1; k <= maxLag; k++ {
		out[k-1] = Autocorrelation(xs, k)
	}
	return out
}

// IntegratedAutocorrelationTime returns 1 + 2·Σ_{k>=1} r_k, truncated at
// the first non-positive r_k (the standard initial-positive-sequence
// estimator). It measures how many steps of a stationary series equal one
// independent sample — the simulation-side cousin of the mixing time.
func IntegratedAutocorrelationTime(xs []float64, maxLag int) float64 {
	tau := 1.0
	for k := 1; k <= maxLag && k < len(xs); k++ {
		r := Autocorrelation(xs, k)
		if math.IsNaN(r) || r <= 0 {
			break
		}
		tau += 2 * r
	}
	return tau
}
