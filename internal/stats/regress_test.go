package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	f := LinearFit(x, y)
	if !almostEq(f.Slope, 2, 1e-12) || !almostEq(f.Intercept, 1, 1e-12) || !almostEq(f.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := rng.New(31)
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 3*x[i] - 7 + r.NormFloat64()*5
	}
	f := LinearFit(x, y)
	if math.Abs(f.Slope-3) > 0.05 {
		t.Fatalf("slope = %v, want ~3", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v too low for strong signal", f.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{1}, []float64{1}); !math.IsNaN(f.Slope) {
		t.Fatal("single point fit should be NaN")
	}
	if f := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(f.Slope) {
		t.Fatal("constant-x fit should be NaN")
	}
	if f := LinearFit([]float64{1, 2}, []float64{1}); !math.IsNaN(f.Slope) {
		t.Fatal("mismatched lengths should be NaN")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	f := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if !almostEq(f.Slope, 0, 1e-12) || !almostEq(f.Intercept, 5, 1e-12) || f.R2 != 1 {
		t.Fatalf("constant-y fit = %+v", f)
	}
}

func TestLogLogFitPowerLaw(t *testing.T) {
	// y = 4 x^2.5
	x := []float64{1, 2, 4, 8, 16, 32}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 4 * math.Pow(x[i], 2.5)
	}
	f := LogLogFit(x, y)
	if !almostEq(f.Slope, 2.5, 1e-9) {
		t.Fatalf("power-law exponent = %v, want 2.5", f.Slope)
	}
	if !almostEq(math.Exp(f.Intercept), 4, 1e-9) {
		t.Fatalf("power-law constant = %v, want 4", math.Exp(f.Intercept))
	}
}

func TestLogLogFitSkipsNonPositive(t *testing.T) {
	x := []float64{0, -1, 1, 2, 4}
	y := []float64{5, 5, 1, 2, 4} // y = x on the valid points
	f := LogLogFit(x, y)
	if !almostEq(f.Slope, 1, 1e-9) {
		t.Fatalf("slope = %v, want 1", f.Slope)
	}
}

func TestSemiLogFit(t *testing.T) {
	// y = 3 ln x + 2
	x := []float64{1, math.E, math.E * math.E, math.Pow(math.E, 3)}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3*math.Log(x[i]) + 2
	}
	f := SemiLogFit(x, y)
	if !almostEq(f.Slope, 3, 1e-9) || !almostEq(f.Intercept, 2, 1e-9) {
		t.Fatalf("semilog fit = %+v", f)
	}
}

func TestFitString(t *testing.T) {
	s := Fit{Slope: 1, Intercept: 2, R2: 0.5}.String()
	if s == "" {
		t.Fatal("empty fit string")
	}
}
