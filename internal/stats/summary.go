// Package stats is the statistics toolkit behind every experiment in this
// repository: summaries, quantiles, confidence intervals, histograms (1D and
// 2D), total-variation distance between distributions, and least-squares
// fits used to verify the scaling laws the paper predicts.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual scalar summaries of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary
// with NaN mean so accidental use is loud.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{Mean: math.NaN(), Median: math.NaN(), Min: math.NaN(), Max: math.NaN()}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Var)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	return s
}

// SummarizeInts converts and summarizes an integer sample.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders the summary compactly for table cells and logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g med=%.3g sd=%.3g [%.3g,%.3g]",
		s.N, s.Mean, s.Median, s.Std, s.Min, s.Max)
}

// Online accumulates a streaming mean/variance with Welford's algorithm.
// The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (NaN when empty).
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Var returns the unbiased running variance (0 for fewer than 2 points).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the running standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (NaN when empty).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

// Max returns the largest observation (NaN when empty).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}

// Mean is a convenience over Summarize for one-off use.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
