package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default). The
// input need not be sorted. NaN is returned for an empty sample or q outside
// [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile on an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MedianInts returns the median of an integer sample as a float64.
func MedianInts(xs []int) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Median(fs)
}

// IQR returns the interquartile range of xs.
func IQR(xs []float64) float64 {
	return Quantile(xs, 0.75) - Quantile(xs, 0.25)
}
