package stats

import (
	"fmt"
	"math"
)

// Hist is a fixed-bin histogram over the half-open interval [Lo, Hi).
// Observations outside the interval are counted in Under/Over rather than
// silently dropped.
type Hist struct {
	Lo, Hi float64
	Counts []int64
	Under  int64
	Over   int64
	total  int64
}

// NewHist allocates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo, which are programming errors.
func NewHist(lo, hi float64, bins int) *Hist {
	if bins <= 0 {
		panic("stats: NewHist needs bins > 0")
	}
	if hi <= lo {
		panic("stats: NewHist needs hi > lo")
	}
	return &Hist{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Hist) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // rounding guard at the right edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// N returns the total number of observations, including out-of-range ones.
func (h *Hist) N() int64 { return h.total }

// BinWidth returns the width of each bin.
func (h *Hist) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bin i.
func (h *Hist) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the histogram normalized to a probability density: the
// integral over [Lo, Hi) of the returned step function is the in-range
// fraction of the observations. An empty histogram returns all zeros.
func (h *Hist) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.total == 0 {
		return d
	}
	w := h.BinWidth()
	for i, c := range h.Counts {
		d[i] = float64(c) / (float64(h.total) * w)
	}
	return d
}

// Probabilities returns the in-range bin probabilities (summing to the
// in-range fraction of observations).
func (h *Hist) Probabilities() []float64 {
	p := make([]float64, len(h.Counts))
	if h.total == 0 {
		return p
	}
	for i, c := range h.Counts {
		p[i] = float64(c) / float64(h.total)
	}
	return p
}

// Mode returns the center of the most populated bin.
func (h *Hist) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// String summarizes the histogram.
func (h *Hist) String() string {
	return fmt.Sprintf("hist[%g,%g) bins=%d n=%d under=%d over=%d",
		h.Lo, h.Hi, len(h.Counts), h.total, h.Under, h.Over)
}

// Hist2D is a fixed-bin two-dimensional histogram over [Lo, Hi) x [Lo, Hi).
// It is used for positional stationary densities of mobility models, where
// the region is a square.
type Hist2D struct {
	Lo, Hi float64
	Bins   int
	Counts []int64 // row-major, Bins x Bins
	total  int64
	out    int64
}

// NewHist2D allocates a bins x bins histogram over the square [lo, hi)^2.
func NewHist2D(lo, hi float64, bins int) *Hist2D {
	if bins <= 0 {
		panic("stats: NewHist2D needs bins > 0")
	}
	if hi <= lo {
		panic("stats: NewHist2D needs hi > lo")
	}
	return &Hist2D{Lo: lo, Hi: hi, Bins: bins, Counts: make([]int64, bins*bins)}
}

// Add records one 2D observation.
func (h *Hist2D) Add(x, y float64) {
	h.total++
	if x < h.Lo || x >= h.Hi || y < h.Lo || y >= h.Hi {
		h.out++
		return
	}
	scale := float64(h.Bins) / (h.Hi - h.Lo)
	i := int((x - h.Lo) * scale)
	j := int((y - h.Lo) * scale)
	if i >= h.Bins {
		i = h.Bins - 1
	}
	if j >= h.Bins {
		j = h.Bins - 1
	}
	h.Counts[i*h.Bins+j]++
}

// N returns the total number of observations.
func (h *Hist2D) N() int64 { return h.total }

// At returns the count of cell (i, j).
func (h *Hist2D) At(i, j int) int64 { return h.Counts[i*h.Bins+j] }

// Density returns the 2D probability density per cell (row-major), i.e.
// count / (total * cellArea). The integral over the square of the returned
// step function equals the in-range fraction.
func (h *Hist2D) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.total == 0 {
		return d
	}
	side := (h.Hi - h.Lo) / float64(h.Bins)
	area := side * side
	for i, c := range h.Counts {
		d[i] = float64(c) / (float64(h.total) * area)
	}
	return d
}

// MaxDensity returns the maximum cell density.
func (h *Hist2D) MaxDensity() float64 {
	max := 0.0
	for _, d := range h.Density() {
		if d > max {
			max = d
		}
	}
	return max
}

// CellCenter returns the center coordinates of cell (i, j).
func (h *Hist2D) CellCenter(i, j int) (x, y float64) {
	side := (h.Hi - h.Lo) / float64(h.Bins)
	return h.Lo + (float64(i)+0.5)*side, h.Lo + (float64(j)+0.5)*side
}

// FractionAbove returns the fraction of the square's area whose cell density
// is at least threshold.
func (h *Hist2D) FractionAbove(threshold float64) float64 {
	if h.total == 0 {
		return 0
	}
	d := h.Density()
	hits := 0
	for _, v := range d {
		if v >= threshold {
			hits++
		}
	}
	return float64(hits) / float64(len(d))
}

// TVToUniform returns the total-variation distance between the in-range
// empirical cell distribution and the uniform distribution on the cells.
// The result is in [0, 1] (assuming all mass in range).
func (h *Hist2D) TVToUniform() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	u := 1.0 / float64(len(h.Counts))
	sum := 0.0
	for _, c := range h.Counts {
		sum += math.Abs(float64(c)/float64(h.total) - u)
	}
	return sum / 2
}
