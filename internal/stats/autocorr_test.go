package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestAutocorrelationLagZero(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Autocorrelation(xs, 0); !almostEq(got, 1, 1e-12) {
		t.Fatalf("r_0 = %v, want 1", got)
	}
}

func TestAutocorrelationInvalid(t *testing.T) {
	xs := []float64{1, 2, 3}
	if !math.IsNaN(Autocorrelation(xs, -1)) {
		t.Fatal("negative lag should be NaN")
	}
	if !math.IsNaN(Autocorrelation(xs, 3)) {
		t.Fatal("lag >= n should be NaN")
	}
	if !math.IsNaN(Autocorrelation([]float64{2, 2, 2}, 1)) {
		t.Fatal("constant series should be NaN")
	}
}

func TestAutocorrelationIIDNearZero(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	for _, k := range []int{1, 2, 5} {
		if got := Autocorrelation(xs, k); math.Abs(got) > 0.03 {
			t.Fatalf("iid r_%d = %v, want ~0", k, got)
		}
	}
}

func TestAutocorrelationTwoStateGeometric(t *testing.T) {
	// For the stationary two-state chain, r_k = (1-p-q)^k exactly; check
	// the empirical estimate on a long trajectory.
	r := rng.New(5)
	const p, q = 0.1, 0.2
	lambda := 1 - p - q
	state := 0.0
	if r.Bool(p / (p + q)) {
		state = 1
	}
	xs := make([]float64, 300000)
	for i := range xs {
		if state == 1 {
			if r.Bool(q) {
				state = 0
			}
		} else if r.Bool(p) {
			state = 1
		}
		xs[i] = state
	}
	for _, k := range []int{1, 2, 4} {
		want := math.Pow(lambda, float64(k))
		if got := Autocorrelation(xs, k); math.Abs(got-want) > 0.02 {
			t.Fatalf("two-state r_%d = %v, want %v", k, got, want)
		}
	}
}

func TestAutocorrelationFn(t *testing.T) {
	xs := []float64{1, 2, 1, 2, 1, 2, 1, 2}
	fn := AutocorrelationFn(xs, 2)
	if len(fn) != 2 {
		t.Fatal("length wrong")
	}
	// Perfect alternation: r_1 < 0, r_2 > 0.
	if fn[0] >= 0 || fn[1] <= 0 {
		t.Fatalf("alternating series autocorr = %v", fn)
	}
}

func TestIntegratedAutocorrelationTime(t *testing.T) {
	r := rng.New(7)
	// IID: tau ≈ 1.
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if tau := IntegratedAutocorrelationTime(xs, 100); tau < 0.8 || tau > 1.5 {
		t.Fatalf("iid tau = %v, want ~1", tau)
	}
	// Sticky chain: tau ≈ (1+λ)/(1-λ) for AR-like decay; with λ = 0.9 the
	// two-state symmetric chain p = q = 0.05 gives tau ≈ 19.
	state := 0.0
	ys := make([]float64, 400000)
	for i := range ys {
		if r.Bool(0.05) {
			state = 1 - state
		}
		ys[i] = state
	}
	tau := IntegratedAutocorrelationTime(ys, 1000)
	if tau < 10 || tau > 30 {
		t.Fatalf("sticky tau = %v, want ≈ 19", tau)
	}
}
