package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHistBinning(t *testing.T) {
	h := NewHist(0, 10, 10)
	h.Add(0)    // bin 0
	h.Add(9.99) // bin 9
	h.Add(5)    // bin 5
	h.Add(-1)   // under
	h.Add(10)   // over (half-open)
	if h.Counts[0] != 1 || h.Counts[9] != 1 || h.Counts[5] != 1 {
		t.Fatalf("bad bins: %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over wrong: %d %d", h.Under, h.Over)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistDensityIntegratesToOne(t *testing.T) {
	r := rng.New(21)
	h := NewHist(0, 1, 20)
	for i := 0; i < 10000; i++ {
		h.Add(r.Float64())
	}
	sum := 0.0
	for _, d := range h.Density() {
		sum += d * h.BinWidth()
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("density integral = %v", sum)
	}
}

func TestHistUniformDensityFlat(t *testing.T) {
	r := rng.New(22)
	h := NewHist(0, 1, 10)
	for i := 0; i < 200000; i++ {
		h.Add(r.Float64())
	}
	for i, d := range h.Density() {
		if math.Abs(d-1) > 0.05 {
			t.Fatalf("bin %d density %v, want ~1", i, d)
		}
	}
}

func TestHistMode(t *testing.T) {
	h := NewHist(0, 10, 10)
	for i := 0; i < 5; i++ {
		h.Add(3.5)
	}
	h.Add(7.5)
	if h.Mode() != 3.5 {
		t.Fatalf("Mode = %v", h.Mode())
	}
}

func TestHistPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins": func() { NewHist(0, 1, 0) },
		"bad range": func() { NewHist(1, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHist2DBinning(t *testing.T) {
	h := NewHist2D(0, 4, 4)
	h.Add(0.5, 0.5) // cell (0,0)
	h.Add(3.9, 3.9) // cell (3,3)
	h.Add(5, 1)     // out
	if h.At(0, 0) != 1 || h.At(3, 3) != 1 {
		t.Fatalf("cells wrong")
	}
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHist2DDensityIntegral(t *testing.T) {
	r := rng.New(23)
	h := NewHist2D(0, 2, 8)
	for i := 0; i < 20000; i++ {
		h.Add(r.Float64()*2, r.Float64()*2)
	}
	side := 2.0 / 8
	sum := 0.0
	for _, d := range h.Density() {
		sum += d * side * side
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("2D density integral = %v", sum)
	}
}

func TestHist2DTVToUniform(t *testing.T) {
	r := rng.New(24)
	uni := NewHist2D(0, 1, 5)
	for i := 0; i < 100000; i++ {
		uni.Add(r.Float64(), r.Float64())
	}
	if tv := uni.TVToUniform(); tv > 0.03 {
		t.Fatalf("uniform sample TV to uniform = %v, want ~0", tv)
	}
	// All mass in one cell: TV should be close to 1 - 1/cells.
	point := NewHist2D(0, 1, 5)
	for i := 0; i < 1000; i++ {
		point.Add(0.1, 0.1)
	}
	want := 1 - 1.0/25
	if tv := point.TVToUniform(); !almostEq(tv, want, 1e-9) {
		t.Fatalf("point-mass TV = %v, want %v", tv, want)
	}
}

func TestHist2DFractionAbove(t *testing.T) {
	h := NewHist2D(0, 1, 2) // 4 cells
	for i := 0; i < 100; i++ {
		h.Add(0.25, 0.25)
	}
	// One of four cells has all the mass; its density is 400.
	if got := h.FractionAbove(1); got != 0.25 {
		t.Fatalf("FractionAbove(1) = %v, want 0.25", got)
	}
	if got := h.FractionAbove(1000); got != 0 {
		t.Fatalf("FractionAbove(1000) = %v, want 0", got)
	}
}

func TestHist2DCellCenter(t *testing.T) {
	h := NewHist2D(0, 4, 4)
	x, y := h.CellCenter(0, 3)
	if x != 0.5 || y != 3.5 {
		t.Fatalf("CellCenter = (%v, %v)", x, y)
	}
}

func TestTVProperties(t *testing.T) {
	r := rng.New(25)
	randDist := func(n int) []float64 {
		p := make([]float64, n)
		for i := range p {
			p[i] = r.Float64()
		}
		return Normalize(p)
	}
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 2
		p, q, s := randDist(n), randDist(n), randDist(n)
		tvpq := TV(p, q)
		// Symmetry, identity, range, triangle inequality.
		if !almostEq(tvpq, TV(q, p), 1e-12) {
			return false
		}
		if TV(p, p) != 0 {
			return false
		}
		if tvpq < 0 || tvpq > 1+1e-12 {
			return false
		}
		return TV(p, s) <= tvpq+TV(q, s)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTVMismatchedLengths(t *testing.T) {
	if !math.IsNaN(TV([]float64{1}, []float64{0.5, 0.5})) {
		t.Fatal("mismatched TV should be NaN")
	}
}

func TestTVExtremes(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if TV(p, q) != 1 {
		t.Fatal("disjoint distributions should have TV 1")
	}
}

func TestCountsToDist(t *testing.T) {
	d := CountsToDist([]int64{1, 3})
	if d[0] != 0.25 || d[1] != 0.75 {
		t.Fatalf("CountsToDist wrong: %v", d)
	}
	z := CountsToDist([]int64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero counts should give zero dist")
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(4)
	for _, p := range u {
		if p != 0.25 {
			t.Fatalf("Uniform wrong: %v", u)
		}
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector should stay zero")
	}
}
