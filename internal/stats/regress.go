package stats

import (
	"fmt"
	"math"
)

// Fit is the result of an ordinary least-squares line fit y = Slope*x +
// Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// String renders the fit for experiment tables.
func (f Fit) String() string {
	return fmt.Sprintf("slope=%.3f intercept=%.3f R2=%.3f", f.Slope, f.Intercept, f.R2)
}

// LinearFit performs an ordinary least-squares fit of y against x. It
// returns a NaN fit when fewer than two points are given or x is constant.
func LinearFit(x, y []float64) Fit {
	if len(x) != len(y) || len(x) < 2 {
		return Fit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := syy - slope*sxy
		r2 = 1 - ssRes/syy
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// LogLogFit fits log(y) = Slope*log(x) + Intercept, i.e. estimates the
// exponent of a power law y ~ x^Slope. Non-positive points are skipped; if
// fewer than two remain the fit is NaN.
func LogLogFit(x, y []float64) Fit {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if i < len(y) && x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	return LinearFit(lx, ly)
}

// SemiLogFit fits y = Slope*log(x) + Intercept, the shape of logarithmic
// growth laws such as the O(log n / log(1+np)) flooding bound.
func SemiLogFit(x, y []float64) Fit {
	lx := make([]float64, 0, len(x))
	fy := make([]float64, 0, len(y))
	for i := range x {
		if i < len(y) && x[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			fy = append(fy, y[i])
		}
	}
	return LinearFit(lx, fy)
}
