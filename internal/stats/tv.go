package stats

import "math"

// TV returns the total-variation distance between two discrete probability
// distributions given as equal-length vectors: TV(p, q) = ½ Σ|p_i - q_i|.
// It returns NaN if the lengths differ. Vectors need not be exactly
// normalized; the caller is responsible for semantic sanity.
func TV(p, q []float64) float64 {
	if len(p) != len(q) {
		return math.NaN()
	}
	sum := 0.0
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2
}

// Normalize scales a non-negative vector to sum to 1 in place and returns
// it. A zero vector is returned unchanged.
func Normalize(p []float64) []float64 {
	total := 0.0
	for _, x := range p {
		total += x
	}
	if total == 0 {
		return p
	}
	for i := range p {
		p[i] /= total
	}
	return p
}

// CountsToDist converts integer counts to a normalized distribution.
func CountsToDist(counts []int64) []float64 {
	p := make([]float64, len(counts))
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return p
	}
	for i, c := range counts {
		p[i] = float64(c) / float64(total)
	}
	return p
}

// Uniform returns the uniform distribution on n outcomes.
func Uniform(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}
