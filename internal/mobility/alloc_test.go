package mobility

// Allocation-regression pins of the incremental mobility work: once a
// model's persistent buffers (cell-list member lists, churn batches,
// query scratch, pair scratch) have reached their high-water sizes, warm
// steps — including the native delta stream and the batch snapshot view —
// must not touch the heap. Mirrors the engine-side discipline of
// internal/flood/alloc_test.go.

import (
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/rng"
)

// warmModels builds every mobility model at a small size, as a
// delta-capable Dynamic.
func warmModels(t *testing.T) map[string]dyngraph.Dynamic {
	t.Helper()
	walk, err := NewWalk(WalkParams{N: 64, M: 8, R: 1, Stay: 0.2}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	dwp, err := NewDiscreteWaypointSim(48, 5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]dyngraph.Dynamic{
		"waypoint": NewWaypoint(WaypointParams{N: 64, L: 12, R: 1.5, VMin: 0.5, VMax: 1}, InitSteadyState, rng.New(1)),
		"waypoint/pause": NewWaypoint(WaypointParams{N: 64, L: 12, R: 1.5, VMin: 0.5, VMax: 1, Pause: 6},
			InitUniform, rng.New(5)),
		"direction": NewDirection(DirectionParams{N: 64, L: 12, R: 1.5, Speed: 1, Turn: 0.1}, rng.New(2)),
		"walk":      walk,
		"dwaypoint": dwp,
		"region":    NewRegionWaypoint(48, DiskRegion{Radius: 8}, 1.5, 0.5, 1, rng.New(6)),
	}
}

// TestMobilityWarmStepZeroAlloc pins the models' warm step at 0 allocs/op,
// with the native delta stream drained every step the way the flood delta
// engine consumes it.
func TestMobilityWarmStepZeroAlloc(t *testing.T) {
	for name, d := range warmModels(t) {
		t.Run(name, func(t *testing.T) {
			db, ok := d.(dyngraph.DeltaBatcher)
			if !ok {
				t.Fatalf("%s: expected a native DeltaBatcher", name)
			}
			var born, died []dyngraph.Edge
			step := func() {
				d.Step()
				born, died = db.AppendDeltas(born[:0], died[:0])
			}
			// Warm: drive the buffers to their high-water sizes.
			for i := 0; i < 600; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
				t.Errorf("%s: %.1f allocs per warm step, want 0", name, allocs)
			}
		})
	}
}

// TestMobilityBatchViewZeroAlloc pins the warm snapshot batch view — the
// cell list owns the pair scratch, so AppendEdges into a caller buffer at
// its high-water capacity must not allocate.
func TestMobilityBatchViewZeroAlloc(t *testing.T) {
	for name, d := range warmModels(t) {
		t.Run(name, func(t *testing.T) {
			var edges []dyngraph.Edge
			round := func() {
				d.Step()
				edges = dyngraph.AppendEdges(d, edges[:0])
			}
			for i := 0; i < 600; i++ {
				round()
			}
			if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
				t.Errorf("%s: %.1f allocs per warm step+batch, want 0", name, allocs)
			}
		})
	}
}
