package mobility

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/markov"
	"repro/internal/nodemeg"
	"repro/internal/rng"
)

// WalkParams configures the classic random-walk mobility model of the
// paper's introduction: "n nodes are placed on an m×m grid; at each time
// step, every node v independently moves to a point in the grid randomly
// chosen among the points adjacent to the one that v occupied at the
// previous time step; at each time step, the edge (u, v) is present in the
// dynamic graph if u and v are located within distance r in the grid."
type WalkParams struct {
	N int     // number of nodes
	M int     // grid side (m x m points)
	R float64 // connection radius in grid units (R = 0: same point only)
	// Stay is the per-step probability of not moving (lazy walk). The
	// classic model uses 0; laziness guarantees aperiodicity.
	Stay float64
	// Rho is the per-step movement range in hops: "every node randomly
	// chooses his next position among all points in V that are within ρ
	// hops from his current position". 0 and 1 both mean the classic
	// one-hop walk. For Rho > 1 the current point is included in the
	// choice set (which also makes the chain aperiodic).
	Rho int
}

// Validate checks the parameters.
func (p WalkParams) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("mobility: need N >= 1, got %d", p.N)
	}
	if p.M < 2 {
		return fmt.Errorf("mobility: need M >= 2, got %d", p.M)
	}
	if p.R < 0 {
		return fmt.Errorf("mobility: need R >= 0, got %v", p.R)
	}
	if p.Stay < 0 || p.Stay >= 1 {
		return fmt.Errorf("mobility: need 0 <= Stay < 1, got %v", p.Stay)
	}
	if p.Rho < 0 {
		return fmt.Errorf("mobility: need Rho >= 0, got %d", p.Rho)
	}
	return nil
}

// Walk is the random-walk mobility model, realized — exactly as Section 4
// prescribes — as a node-MEG whose chain is the (lazy) random walk on the
// grid graph and whose connection map is the grid-radius predicate. It
// implements dyngraph.Dynamic by embedding the generic node-MEG simulator.
type Walk struct {
	*nodemeg.Sim
	params WalkParams
	grid   *graph.Graph
	chain  *markov.Sparse
	pi     []float64
}

// NewWalk builds the model with nodes placed at independent stationary
// positions of the walk (degree-biased over the grid; nearly uniform away
// from the border).
func NewWalk(params WalkParams, r *rng.RNG) (*Walk, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	grid := graph.Grid(params.M, params.M)
	var chain *markov.Sparse
	switch {
	case params.Rho > 1:
		chain = ballWalkChain(grid, params.Rho)
	case params.Stay > 0:
		chain = markov.LazyRandomWalkChain(grid, params.Stay)
	default:
		chain = markov.RandomWalkChain(grid)
	}
	var pi []float64
	if params.Rho > 1 {
		est, err := chain.StationaryPower(1e-10, 200000)
		if err != nil {
			return nil, fmt.Errorf("mobility: rho-walk stationary: %w", err)
		}
		pi = est
	} else {
		pi = markov.WalkStationary(grid)
	}
	var conn nodemeg.ConnectionMap
	if params.R == 0 {
		conn = nodemeg.SameState{S: grid.N()}
	} else {
		conn = nodemeg.NewGridRadius(params.M, params.R)
	}
	sim, err := nodemeg.NewSim(params.N, markov.NewSparseSampler(chain), conn, pi, r)
	if err != nil {
		return nil, fmt.Errorf("mobility: building walk node-MEG: %w", err)
	}
	return &Walk{Sim: sim, params: params, grid: grid, chain: chain, pi: pi}, nil
}

// ballWalkChain returns the chain that jumps to a uniformly random point
// within rho hops (including the current point).
func ballWalkChain(g *graph.Graph, rho int) *markov.Sparse {
	b := markov.NewSparseBuilder(g.N())
	dist := make([]int, g.N())
	for src := 0; src < g.N(); src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int32{int32(src)}
		ball := []int32{int32(src)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if dist[v] == rho {
				continue
			}
			g.ForEachNeighbor(int(v), func(u int) {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, int32(u))
					ball = append(ball, int32(u))
				}
			})
		}
		p := 1 / float64(len(ball))
		for _, u := range ball {
			b.Set(src, int(u), p)
		}
	}
	return b.MustBuild()
}

// Params returns the model parameters.
func (w *Walk) Params() WalkParams { return w.params }

// Grid returns the underlying mobility graph.
func (w *Walk) Grid() *graph.Graph { return w.grid }

// Chain returns the per-node movement chain.
func (w *Walk) Chain() *markov.Sparse { return w.chain }

// Stationary returns the walk's stationary positional distribution (exact
// degree-proportional law for one-hop walks, power-iteration estimate for
// Rho > 1).
func (w *Walk) Stationary() []float64 { return w.pi }

// PositionOf returns node i's current grid point as (row, col).
func (w *Walk) PositionOf(i int) (row, col int) {
	s := w.State(i)
	return s / w.params.M, s % w.params.M
}
