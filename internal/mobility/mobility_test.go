package mobility

import (
	"math"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/geometry"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestWaypointParamsValidate(t *testing.T) {
	bad := []WaypointParams{
		{N: 0, L: 10, R: 1, VMin: 1, VMax: 1},
		{N: 5, L: 0, R: 1, VMin: 1, VMax: 1},
		{N: 5, L: 10, R: 0, VMin: 1, VMax: 1},
		{N: 5, L: 10, R: 1, VMin: 0, VMax: 1},
		{N: 5, L: 10, R: 1, VMin: 2, VMax: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	good := WaypointParams{N: 5, L: 10, R: 1, VMin: 1, VMax: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.MixingTimeEstimate() != 5 {
		t.Fatal("mixing estimate wrong")
	}
}

func TestWaypointStaysInSquare(t *testing.T) {
	p := WaypointParams{N: 50, L: 20, R: 2, VMin: 0.5, VMax: 1.5}
	w := NewWaypoint(p, InitUniform, rng.New(3))
	for step := 0; step < 200; step++ {
		for _, pos := range w.Positions() {
			if pos.X < 0 || pos.X > 20 || pos.Y < 0 || pos.Y > 20 {
				t.Fatalf("node escaped square: %v", pos)
			}
		}
		w.Step()
	}
}

func TestWaypointMovesAtSpeed(t *testing.T) {
	p := WaypointParams{N: 1, L: 100, R: 1, VMin: 2, VMax: 2}
	w := NewWaypoint(p, InitUniform, rng.New(5))
	for step := 0; step < 50; step++ {
		before := w.Positions()[0]
		w.Step()
		after := w.Positions()[0]
		d := geometry.Dist(before, after)
		if d > 2+1e-9 {
			t.Fatalf("moved %v > speed 2", d)
		}
	}
}

func TestWaypointNeighborsWithinRadius(t *testing.T) {
	p := WaypointParams{N: 100, L: 10, R: 1.5, VMin: 0.5, VMax: 1}
	w := NewWaypoint(p, InitSteadyState, rng.New(7))
	for step := 0; step < 10; step++ {
		for i := 0; i < p.N; i++ {
			w.ForEachNeighbor(i, func(j int) {
				if d := geometry.Dist(w.Positions()[i], w.Positions()[j]); d > 1.5 {
					t.Fatalf("neighbor at distance %v > R", d)
				}
			})
		}
		w.Step()
	}
}

func TestWaypointCenterBias(t *testing.T) {
	// The stationary positional density must be center-biased: the central
	// ninth of the square holds clearly more than 1/9 of the mass.
	p := WaypointParams{N: 200, L: 9, R: 1, VMin: 1, VMax: 1}
	w := NewWaypoint(p, InitSteadyState, rng.New(9))
	h := PositionalDensity(w, 9, 3, 3000, 10)
	centerMass := float64(h.At(1, 1)) / float64(h.N())
	if centerMass < 0.13 {
		t.Fatalf("center mass %v, want > 0.13 (uniform would be 0.111)", centerMass)
	}
}

func TestWaypointSteadyStateMatchesLongRun(t *testing.T) {
	// InitSteadyState should produce (approximately) the same positional
	// density as a long warmed-up run from InitUniform.
	p := WaypointParams{N: 300, L: 10, R: 1, VMin: 0.5, VMax: 1}
	steady := NewWaypoint(p, InitSteadyState, rng.New(11))
	hSteady := PositionalDensity(steady, 10, 5, 2000, 5)

	warmed := NewWaypoint(p, InitUniform, rng.New(13))
	warmed.WarmUp(500) // many multiples of L/vmax = 10
	hWarm := PositionalDensity(warmed, 10, 5, 2000, 5)

	tv := stats.TV(stats.CountsToDist(hSteady.Counts), stats.CountsToDist(hWarm.Counts))
	if tv > 0.05 {
		t.Fatalf("steady-state vs warmed density TV = %v", tv)
	}
}

func TestWaypointDensityAnalytic(t *testing.T) {
	// The analytic density integrates to ~1 and peaks at the center.
	L := 7.0
	integral := 0.0
	const cells = 100
	side := L / cells
	for i := 0; i < cells; i++ {
		for j := 0; j < cells; j++ {
			x, y := (float64(i)+0.5)*side, (float64(j)+0.5)*side
			integral += WaypointDensity(x, y, L) * side * side
		}
	}
	if math.Abs(integral-1) > 1e-3 { // midpoint rule on 100² cells
		t.Fatalf("analytic density integral = %v", integral)
	}
	center := WaypointDensity(L/2, L/2, L)
	if math.Abs(center-2.25/(L*L)) > 1e-12 {
		t.Fatalf("center density = %v, want %v", center, 2.25/(L*L))
	}
	if WaypointDensity(-1, 3, L) != 0 || WaypointDensity(3, L+1, L) != 0 {
		t.Fatal("outside density should be 0")
	}
}

func TestEmpiricalWaypointDensityMatchesAnalytic(t *testing.T) {
	p := WaypointParams{N: 400, L: 10, R: 1, VMin: 1, VMax: 1}
	w := NewWaypoint(p, InitSteadyState, rng.New(17))
	h := PositionalDensity(w, 10, 10, 4000, 8)
	tv := DensityTVToAnalytic(h, 10, func(x, y float64) float64 {
		return WaypointDensity(x, y, 10)
	})
	// The Bettstetter polynomial is itself an approximation; accept a
	// modest TV gap but reject uniform-level disagreement (~0.15).
	if tv > 0.08 {
		t.Fatalf("empirical vs analytic waypoint density TV = %v", tv)
	}
}

func TestMeasureUniformityUniformDensity(t *testing.T) {
	r := rng.New(19)
	h := stats.NewHist2D(0, 10, 8)
	for i := 0; i < 400000; i++ {
		h.Add(r.Float64()*10, r.Float64()*10)
	}
	rep := MeasureUniformity(h, 10, 1.0)
	if rep.Delta > 1.15 {
		t.Fatalf("uniform density delta = %v, want ~1", rep.Delta)
	}
	// B is the whole square except sampling noise; B_r loses the border
	// ring of cells (8x8 grid, reach 1 cell): interior 6x6 = 36/64.
	if rep.Lambda < 0.4 {
		t.Fatalf("uniform density lambda = %v, want >= interior fraction", rep.Lambda)
	}
	if rep.TVToUniform > 0.05 {
		t.Fatalf("uniform TV = %v", rep.TVToUniform)
	}
}

func TestMeasureUniformityWaypoint(t *testing.T) {
	p := WaypointParams{N: 300, L: 10, R: 1, VMin: 1, VMax: 1}
	w := NewWaypoint(p, InitSteadyState, rng.New(23))
	h := PositionalDensity(w, 10, 10, 3000, 10)
	rep := MeasureUniformity(h, 10, 1.0)
	// Analytic sup is 2.25/L² so δ ≈ 2.25; allow sampling slack.
	if rep.Delta < 1.8 || rep.Delta > 3.0 {
		t.Fatalf("waypoint delta = %v, want ≈ 2.25", rep.Delta)
	}
	if rep.Lambda <= 0 {
		t.Fatal("waypoint lambda must be positive (central B survives shrinking)")
	}
}

func TestWalkParamsValidate(t *testing.T) {
	if err := (WalkParams{N: 0, M: 5}).Validate(); err == nil {
		t.Fatal("n=0 accepted")
	}
	if err := (WalkParams{N: 5, M: 1}).Validate(); err == nil {
		t.Fatal("m=1 accepted")
	}
	if err := (WalkParams{N: 5, M: 5, R: -1}).Validate(); err == nil {
		t.Fatal("negative r accepted")
	}
	if err := (WalkParams{N: 5, M: 5, Stay: 1}).Validate(); err == nil {
		t.Fatal("stay=1 accepted")
	}
}

func TestWalkMovesOneHop(t *testing.T) {
	w, err := NewWalk(WalkParams{N: 20, M: 6, R: 0}, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 50; step++ {
		before := make([][2]int, 20)
		for i := 0; i < 20; i++ {
			r, c := w.PositionOf(i)
			before[i] = [2]int{r, c}
		}
		w.Step()
		for i := 0; i < 20; i++ {
			r, c := w.PositionOf(i)
			dr := abs(r - before[i][0])
			dc := abs(c - before[i][1])
			if dr+dc != 1 {
				t.Fatalf("node %d moved %d hops (non-lazy walk must move exactly 1)", i, dr+dc)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestWalkLazyCanStay(t *testing.T) {
	w, err := NewWalk(WalkParams{N: 50, M: 6, R: 0, Stay: 0.5}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	stays := 0
	for step := 0; step < 20; step++ {
		r0, c0 := w.PositionOf(0)
		w.Step()
		r1, c1 := w.PositionOf(0)
		if r0 == r1 && c0 == c1 {
			stays++
		}
	}
	if stays == 0 {
		t.Fatal("lazy walk never stayed in 20 steps (p=0.5 each)")
	}
}

func TestWalkSamePointConnection(t *testing.T) {
	w, err := NewWalk(WalkParams{N: 100, M: 3, R: 0}, rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	// With 100 nodes on 9 points, same-point neighbors must exist and be
	// exactly the co-located nodes.
	found := false
	for i := 0; i < 100; i++ {
		ri, ci := w.PositionOf(i)
		w.ForEachNeighbor(i, func(j int) {
			rj, cj := w.PositionOf(j)
			if ri != rj || ci != cj {
				t.Fatalf("connected nodes at different points")
			}
			found = true
		})
	}
	if !found {
		t.Fatal("no co-located nodes among 100 on 9 points")
	}
}

func TestWalkFloodingCompletes(t *testing.T) {
	w, err := NewWalk(WalkParams{N: 60, M: 6, R: 1.0, Stay: 0.2}, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	res := flood.Run(w, 0, flood.Opts{MaxSteps: 50000})
	if !res.Completed {
		t.Fatal("walk-model flooding did not complete")
	}
}

func TestDirectionStaysInSquareAndUniform(t *testing.T) {
	p := DirectionParams{N: 200, L: 10, R: 1, Speed: 0.8, Turn: 0.1}
	d := NewDirection(p, rng.New(43))
	h := PositionalDensity(d, 10, 5, 3000, 10)
	for _, pos := range d.Positions() {
		if pos.X < 0 || pos.X > 10 || pos.Y < 0 || pos.Y > 10 {
			t.Fatalf("node escaped: %v", pos)
		}
	}
	rep := MeasureUniformity(h, 10, 1.0)
	// Random direction is the uniform-density contrast: δ near 1.
	if rep.Delta > 1.5 {
		t.Fatalf("direction model delta = %v, want ~1", rep.Delta)
	}
}

func TestDirectionNeighborsWithinRadius(t *testing.T) {
	p := DirectionParams{N: 80, L: 8, R: 1.2, Speed: 0.5, Turn: 0.2}
	d := NewDirection(p, rng.New(47))
	for step := 0; step < 10; step++ {
		for i := 0; i < p.N; i++ {
			d.ForEachNeighbor(i, func(j int) {
				if dist := geometry.Dist(d.Positions()[i], d.Positions()[j]); dist > 1.2 {
					t.Fatalf("neighbor at distance %v", dist)
				}
			})
		}
		d.Step()
	}
}

func TestWalkRhoMovesWithinBall(t *testing.T) {
	w, err := NewWalk(WalkParams{N: 20, M: 8, R: 0, Rho: 3}, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 30; step++ {
		before := make([][2]int, 20)
		for i := 0; i < 20; i++ {
			r, c := w.PositionOf(i)
			before[i] = [2]int{r, c}
		}
		w.Step()
		for i := 0; i < 20; i++ {
			r, c := w.PositionOf(i)
			hops := abs(r-before[i][0]) + abs(c-before[i][1])
			if hops > 3 {
				t.Fatalf("node %d moved %d hops with rho=3", i, hops)
			}
		}
	}
}

func TestWalkRhoFloodsFasterThanOneHop(t *testing.T) {
	// ρ-hop movement mixes positions faster, so flooding over the same
	// connection radius accelerates — the "high mobility can make up for
	// low transmission power" phenomenon of [12].
	run := func(rho int, seed uint64) float64 {
		var times []float64
		for trial := 0; trial < 5; trial++ {
			w, err := NewWalk(WalkParams{N: 12, M: 10, R: 1, Rho: rho, Stay: 0.2}, rng.New(seed+uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			res := flood.Run(w, 0, flood.Opts{MaxSteps: 100000})
			if res.Completed {
				times = append(times, float64(res.Time))
			}
		}
		return stats.Median(times)
	}
	oneHop := run(0, 70)
	threeHop := run(3, 80)
	if threeHop >= oneHop {
		t.Fatalf("rho=3 (%v) should flood faster than rho=1 (%v)", threeHop, oneHop)
	}
}

func TestWalkRhoIncludesStaying(t *testing.T) {
	// Rho > 1 includes the current point in the choice set, so the walk
	// can stay; verify a stay happens within a reasonable window.
	w, err := NewWalk(WalkParams{N: 40, M: 6, R: 0, Rho: 2}, rng.New(91))
	if err != nil {
		t.Fatal(err)
	}
	stays := 0
	for step := 0; step < 30; step++ {
		r0, c0 := w.PositionOf(0)
		w.Step()
		r1, c1 := w.PositionOf(0)
		if r0 == r1 && c0 == c1 {
			stays++
		}
	}
	if stays == 0 {
		t.Fatal("rho-walk never stayed (ball includes the current point with prob ~1/13)")
	}
}

func TestDiskRegionGeometry(t *testing.T) {
	d := DiskRegion{Radius: 5}
	if !d.Contains(geometry.Point{X: 5, Y: 5}) {
		t.Fatal("center not contained")
	}
	if d.Contains(geometry.Point{X: 0, Y: 0}) {
		t.Fatal("bounding-box corner wrongly contained")
	}
	if math.Abs(d.Area()-math.Pi*25) > 1e-12 {
		t.Fatal("area wrong")
	}
	r := rng.New(101)
	for i := 0; i < 5000; i++ {
		if !d.Contains(d.Sample(r)) {
			t.Fatal("sample left the disk")
		}
	}
}

func TestDiskSampleUniform(t *testing.T) {
	// The polar method must be area-uniform: the inner half-radius disk
	// holds 1/4 of the samples.
	d := DiskRegion{Radius: 4}
	r := rng.New(103)
	inner := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		p := d.Sample(r)
		if geometry.Dist(p, geometry.Point{X: 4, Y: 4}) <= 2 {
			inner++
		}
	}
	frac := float64(inner) / trials
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("inner-disk fraction = %v, want 0.25", frac)
	}
}

func TestRegionWaypointStaysInDisk(t *testing.T) {
	d := DiskRegion{Radius: 8}
	w := NewRegionWaypoint(60, d, 1.5, 1, 1, rng.New(107))
	for step := 0; step < 300; step++ {
		for _, p := range w.Positions() {
			if !d.Contains(p) {
				t.Fatalf("node left the disk: %v", p)
			}
		}
		w.Step()
	}
}

func TestRegionWaypointFloodingCompletes(t *testing.T) {
	d := DiskRegion{Radius: 8}
	w := NewRegionWaypoint(60, d, 1.5, 1, 1, rng.New(109))
	res := flood.Run(w, 0, flood.Opts{MaxSteps: 100000})
	if !res.Completed {
		t.Fatal("disk waypoint flooding did not complete")
	}
}

func TestRegionWaypointCenterBias(t *testing.T) {
	// The waypoint center bias is region-generic: on a disk, the center
	// annulus is denser than uniform.
	d := DiskRegion{Radius: 6}
	w := NewRegionWaypoint(200, d, 1, 1, 1, rng.New(113))
	h := PositionalDensity(w, 12, 6, 3000, 10)
	den := h.Density()
	center := den[2*6+2] + den[2*6+3] + den[3*6+2] + den[3*6+3]
	// Uniform over the disk would put density 1/(π·36) ≈ 0.0088 per unit²
	// in interior cells; the waypoint center should clearly exceed the
	// disk-uniform level.
	uniform := 1 / (math.Pi * 36)
	if center/4 <= 1.2*uniform {
		t.Fatalf("disk waypoint center density %v not above uniform %v", center/4, uniform)
	}
}

func TestSquareRegionMatchesSquare(t *testing.T) {
	s := SquareRegion{L: 7}
	if s.Area() != 49 || s.Bounds().W() != 7 {
		t.Fatal("square region dims wrong")
	}
	r := rng.New(117)
	for i := 0; i < 1000; i++ {
		if !s.Contains(s.Sample(r)) {
			t.Fatal("square sample out of region")
		}
	}
}

func TestRegionWaypointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params did not panic")
		}
	}()
	NewRegionWaypoint(0, DiskRegion{Radius: 1}, 1, 1, 1, rng.New(1))
}

func TestDiscreteWaypointChainValid(t *testing.T) {
	if _, err := DiscreteWaypoint(1); err == nil {
		t.Fatal("m=1 accepted")
	}
	chain, err := DiscreteWaypoint(3)
	if err != nil {
		t.Fatal(err)
	}
	if chain.N() != 81 {
		t.Fatalf("state count = %d, want 81", chain.N())
	}
}

func TestDiscreteWaypointPositionalCenterBias(t *testing.T) {
	pos, tmix, err := DiscreteWaypointMixing(5, 0.25, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if tmix < 1 {
		t.Fatal("mixing time must be positive")
	}
	// Center point (2,2) = index 12 should carry more mass than corner 0.
	if pos[12] <= pos[0] {
		t.Fatalf("no center bias: center %v vs corner %v", pos[12], pos[0])
	}
	// Distribution sums to 1.
	sum := 0.0
	for _, p := range pos {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("positional mass = %v", sum)
	}
}

func TestDiscreteWaypointMixingGrowsLinearly(t *testing.T) {
	// Θ(L/v) with unit speed means mixing time ~ m.
	_, t4, err := DiscreteWaypointMixing(4, 0.25, 100000)
	if err != nil {
		t.Fatal(err)
	}
	_, t8, err := DiscreteWaypointMixing(8, 0.25, 100000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(t8) / float64(t4)
	if ratio < 1.4 || ratio > 3.5 {
		t.Fatalf("mixing ratio m=8/m=4 is %v, want ~2 (linear in m)", ratio)
	}
}

func TestWaypointFloodingCompletes(t *testing.T) {
	p := WaypointParams{N: 80, L: 12, R: 1.5, VMin: 0.8, VMax: 1.2}
	w := NewWaypoint(p, InitSteadyState, rng.New(53))
	res := flood.Run(w, 0, flood.Opts{MaxSteps: 100000, KeepTimeline: true})
	if !res.Completed {
		t.Fatal("waypoint flooding did not complete")
	}
	if !flood.GrowthIsMonotone(res.Timeline) {
		t.Fatal("timeline not monotone")
	}
}

var _ dyngraph.Dynamic = (*Waypoint)(nil)
var _ dyngraph.Dynamic = (*Direction)(nil)
var _ dyngraph.Dynamic = (*Walk)(nil)

func BenchmarkWaypointStep(b *testing.B) {
	p := WaypointParams{N: 10000, L: 100, R: 1, VMin: 1, VMax: 2}
	w := NewWaypoint(p, InitSteadyState, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}
